package jaxpp

import "repro/internal/model"

// Optimizer updates parameters from accumulated gradients (the
// apply_gradient of the paper's Fig. 4 training loop).
type Optimizer = model.Optimizer

// SGDOptimizer returns plain stochastic gradient descent.
func SGDOptimizer() Optimizer { return model.SGD{} }

// MomentumOptimizer returns SGD with classical momentum.
func MomentumOptimizer(beta float64) Optimizer { return &model.Momentum{Beta: beta} }

// AdamOptimizer returns Adam with standard hyperparameters.
func AdamOptimizer() Optimizer { return model.NewAdam() }

// AdamWOptimizer returns AdamW with decoupled weight decay.
func AdamWOptimizer(decay float64) Optimizer { return model.NewAdamW(decay) }

// LRSchedule maps a step index to a learning rate.
type LRSchedule = model.LRSchedule

// ConstantLR returns a constant learning-rate schedule.
func ConstantLR(lr float64) LRSchedule { return model.ConstantLR(lr) }

// WarmupCosineLR returns linear warmup followed by cosine decay.
func WarmupCosineLR(peak, floor float64, warmup, total int) LRSchedule {
	return model.WarmupCosineLR(peak, floor, warmup, total)
}

// GradClipByGlobalNorm clips gradients to a maximum global L2 norm.
func GradClipByGlobalNorm(grads []*Tensor, maxNorm float64) ([]*Tensor, float64) {
	return model.GradClipByGlobalNorm(grads, maxNorm)
}
