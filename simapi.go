package jaxpp

import (
	"repro/internal/baselines"
	"repro/internal/model"
	"repro/internal/perf"
	"repro/internal/sim"
)

// The simulation API re-exports the calibrated performance model used to
// regenerate the paper's evaluation (see DESIGN.md for the substitution
// rationale: no GPUs are available in this environment, so the EOS cluster
// is modeled by a discrete-event simulator over real pipeline schedules).

// TransformerConfig describes a transformer workload for the simulator.
type TransformerConfig = model.TransformerConfig

// GPT3175B is the GPT-3 175B configuration of §5.
func GPT3175B() TransformerConfig { return model.GPT3_175B() }

// Llama270B is the Llama2 70B configuration of §5.2.
func Llama270B() TransformerConfig { return model.Llama2_70B() }

// SimConfig is one simulated training configuration (a Table 1 row).
type SimConfig = sim.Config

// SimScheduleKind converts a schedule name ("gpipe", "1f1b",
// "interleaved_1f1b") for SimConfig.Schedule.
func SimScheduleKind(name string) sim.ScheduleKind { return sim.ScheduleKind(name) }

// SimResult is the simulated outcome of a training step.
type SimResult = sim.Result

// EOSCluster returns the DGX H100 cluster model the paper evaluates on.
func EOSCluster() perf.ClusterSpec { return perf.EOS() }

// DPSyncEstimate returns the simulator's analytic end-of-step data-parallel
// gradient all-reduce time for a configuration — the dpSync term the
// executable collective engine (internal/collective) validates its measured
// bucketed AllReduce wall time against.
func DPSyncEstimate(c SimConfig) (float64, error) { return c.DPSyncTime() }

// SimulateJaxPP simulates a JaxPP run: (interleaved) 1F1B schedule,
// overlapped asynchronous P2P, capacity-driven rematerialization.
func SimulateJaxPP(c SimConfig) (*SimResult, error) { return baselines.JaxPPSimulate(c) }

// SimulateSPMDPP simulates the GSPMD stacked-loop pipeline baseline.
func SimulateSPMDPP(c SimConfig) (*SimResult, error) { return baselines.SPMDPPSimulate(c) }

// SimulateNeMo simulates the NeMo/Megatron baseline.
func SimulateNeMo(c SimConfig) (*SimResult, error) { return baselines.NeMoSimulate(c) }

// FSDPConfig is a fully-sharded data-parallel configuration.
type FSDPConfig = baselines.FSDPConfig

// SimulateFSDP simulates the JAX FSDP baseline.
func SimulateFSDP(c FSDPConfig) (*SimResult, error) { return baselines.FSDPSimulate(c) }
