package jaxpp

import (
	"testing"

	"repro/internal/tensor"
)

// TestDPxPPGradientsMatchSinglePipeline is the headline DP×PP equivalence:
// R pipeline replicas each accumulating M microbatches, synchronized by the
// executable collective engine, must produce exactly the gradients of one
// pipeline accumulating R×M microbatches over the same global batch.
func TestDPxPPGradientsMatchSinglePipeline(t *testing.T) {
	const stages, mbRows, numMB, width, dp = 2, 4, 3, 8, 2

	dpMesh := NewRemoteMesh(dp * stages)
	spec := mlpSpec(stages, mbRows, width, OneFOneB(stages, numMB))
	spec.DataParallel = dp
	dpStep, err := dpMesh.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if dpStep.NumReplicas() != dp {
		t.Fatalf("NumReplicas = %d, want %d", dpStep.NumReplicas(), dp)
	}

	refMesh := NewRemoteMesh(stages)
	refStep, err := refMesh.Compile(mlpSpec(stages, mbRows, width, OneFOneB(stages, dp*numMB)))
	if err != nil {
		t.Fatal(err)
	}

	// Same global batch for both: dp×numMB microbatches of mbRows rows.
	params, x, y := mlpData(stages, mbRows, dp*numMB, width, 7)

	dpLosses, dpGrads, err := dpStep.Step(params, []*Tensor{x, y})
	if err != nil {
		t.Fatal(err)
	}
	refLosses, refGrads, err := refStep.Step(params, []*Tensor{x, y})
	if err != nil {
		t.Fatal(err)
	}

	if len(dpLosses) != dp*numMB {
		t.Fatalf("%d losses, want %d (replica-major)", len(dpLosses), dp*numMB)
	}
	// Replica r's microbatch m is global microbatch r*numMB+m — identical
	// slicing to the reference run, so losses must agree pairwise.
	for i := range dpLosses {
		if !tensor.AllClose(dpLosses[i], refLosses[i], 1e-10, 1e-12) {
			t.Fatalf("loss %d: dp %v vs ref %v", i, dpLosses[i], refLosses[i])
		}
	}
	for i := range refGrads {
		if !tensor.AllClose(dpGrads[i], refGrads[i], 1e-10, 1e-12) {
			t.Fatalf("grad %d diverged: max|Δ| = %g", i, tensor.MaxAbsDiff(dpGrads[i], refGrads[i]))
		}
	}
	if dpStep.DPSyncTime() <= 0 {
		t.Fatal("DPSyncTime must be positive after a DP step")
	}
}

// TestDPxPPTraining trains a 2-stage × 2-replica model for several steps and
// requires the loss to fall — end-to-end DP×PP on the real actor runtime.
func TestDPxPPTraining(t *testing.T) {
	const stages, mbRows, numMB, width, dp, steps = 2, 4, 2, 8, 2, 15

	mesh := NewRemoteMesh(dp * stages)
	spec := mlpSpec(stages, mbRows, width, OneFOneB(stages, numMB))
	spec.DataParallel = dp
	step, err := mesh.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRNG(13)
	params := make([]*Tensor, stages)
	for i := range params {
		params[i] = rng.Xavier(width, width)
	}
	x := rng.Normal(1, dp*numMB*mbRows, width)
	y := rng.OneHotBatch(dp*numMB*mbRows, width)

	opt := SGDOptimizer()
	var first, last float64
	for s := 0; s < steps; s++ {
		losses, grads, err := step.Step(params, []*Tensor{x, y})
		if err != nil {
			t.Fatal(err)
		}
		mean := 0.0
		for _, l := range losses {
			mean += l.Data()[0]
		}
		mean /= float64(len(losses))
		if s == 0 {
			first = mean
		}
		last = mean
		// Grads are sums over dp×numMB microbatch-mean losses; a fixed small
		// LR is enough for this smoke test.
		params, err = opt.Apply(params, grads, 0.05)
		if err != nil {
			t.Fatal(err)
		}
	}
	if !(last < first*0.9) {
		t.Fatalf("DP×PP training did not converge: %.4f -> %.4f", first, last)
	}
}

// TestDPClusterSizeValidation checks the mesh-size contract.
func TestDPClusterSizeValidation(t *testing.T) {
	mesh := NewRemoteMesh(3) // not 2×2
	spec := mlpSpec(2, 4, 8, OneFOneB(2, 2))
	spec.DataParallel = 2
	if _, err := mesh.Compile(spec); err == nil {
		t.Fatal("compile must reject a cluster smaller than DP × PP")
	}
}
