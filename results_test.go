package jaxpp

import (
	goruntime "runtime"
	"runtime/debug"
	"testing"

	"repro/internal/tensor"
)

// cloneAll deep-copies a tensor slice.
func cloneAll(ts []*Tensor) []*Tensor {
	out := make([]*Tensor, len(ts))
	for i, t := range ts {
		out[i] = t.Clone()
	}
	return out
}

func sameAll(t *testing.T, what string, got, want []*Tensor) {
	t.Helper()
	for i := range want {
		if !tensor.AllClose(got[i], want[i], 0, 0) {
			t.Fatalf("%s[%d] changed: got %v want %v", what, i, got[i], want[i])
		}
	}
}

// TestStepResultsSurviveNextStep pins the ownership-transfer contract on
// fetched results: losses and gradients returned by Step must not alias store
// buffers that the next step deletes, re-accumulates in place, or all-reduces
// — using last step's results after stepping again has to be safe.
func TestStepResultsSurviveNextStep(t *testing.T) {
	const stages, mbRows, numMB, width = 3, 4, 6, 8
	mesh := NewRemoteMesh(stages)
	step, err := mesh.Compile(mlpSpec(stages, mbRows, width, OneFOneB(stages, numMB)))
	if err != nil {
		t.Fatal(err)
	}
	params, x, y := mlpData(stages, mbRows, numMB, width, 1)
	losses1, grads1, err := step.Step(params, []*Tensor{x, y})
	if err != nil {
		t.Fatal(err)
	}
	savedLosses, savedGrads := cloneAll(losses1), cloneAll(grads1)

	// A second step with different data would overwrite any aliased storage.
	_, x2, y2 := mlpData(stages, mbRows, numMB, width, 99)
	if _, _, err := step.Step(params, []*Tensor{x2, y2}); err != nil {
		t.Fatal(err)
	}
	sameAll(t, "losses", losses1, savedLosses)
	sameAll(t, "grads", grads1, savedGrads)
}

// TestStepResultsSurviveNextStepDP repeats the pin with data parallelism on:
// the DP gradient all-reduce epilogue mutates grad accumulators in place, the
// exact recycling the fetch must be immune to.
func TestStepResultsSurviveNextStepDP(t *testing.T) {
	const stages, mbRows, numMB, width, dpN = 2, 4, 4, 8, 2
	mesh := NewRemoteMesh(dpN * stages)
	spec := mlpSpec(stages, mbRows, width, OneFOneB(stages, numMB))
	spec.DataParallel = dpN
	step, err := mesh.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	params, x, y := mlpData(stages, mbRows, dpN*numMB, width, 2)
	losses1, grads1, err := step.Step(params, []*Tensor{x, y})
	if err != nil {
		t.Fatal(err)
	}
	savedLosses, savedGrads := cloneAll(losses1), cloneAll(grads1)
	_, x2, y2 := mlpData(stages, mbRows, dpN*numMB, width, 77)
	if _, _, err := step.Step(params, []*Tensor{x2, y2}); err != nil {
		t.Fatal(err)
	}
	sameAll(t, "losses", losses1, savedLosses)
	sameAll(t, "grads", grads1, savedGrads)
}

// TestStepNeverMutatesCallerBatch proves the zero-copy microbatch row views
// are read-only in practice: two full training steps (forward, backward,
// gradient accumulation, deletes) leave the caller's batch and parameter
// tensors bit-identical. Combined with the tensor-level borrowed-view panics
// this pins the in-place-mutation safety of the view path.
func TestStepNeverMutatesCallerBatch(t *testing.T) {
	const stages, mbRows, numMB, width = 3, 4, 6, 8
	mesh := NewRemoteMesh(stages)
	step, err := mesh.Compile(mlpSpec(stages, mbRows, width, OneFOneB(stages, numMB)))
	if err != nil {
		t.Fatal(err)
	}
	params, x, y := mlpData(stages, mbRows, numMB, width, 5)
	savedParams := cloneAll(params)
	savedX, savedY := x.Clone(), y.Clone()
	for i := 0; i < 2; i++ {
		if _, _, err := step.Step(params, []*Tensor{x, y}); err != nil {
			t.Fatal(err)
		}
	}
	sameAll(t, "params", params, savedParams)
	sameAll(t, "batch x", []*Tensor{x}, []*Tensor{savedX})
	sameAll(t, "batch y", []*Tensor{y}, []*Tensor{savedY})
}

// TestStepAllocsBounded is the driver-side allocation gate: a steady-state
// pipeline step must stay well under the pre-dense-store baseline (~1.1k
// allocations), so the SliceRange0-copy/map-churn regression class cannot
// silently return. The bound is loose enough for scheduler noise (measured
// ~510 on the reference machine) and tight enough to catch the old behaviour.
func TestStepAllocsBounded(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; count is only meaningful without -race")
	}
	const maxAllocs = 800
	const stages, mbRows, numMB, width = 4, 8, 8, 32
	mesh := NewRemoteMesh(stages)
	step, err := mesh.Compile(mlpSpec(stages, mbRows, width, OneFOneB(stages, numMB)))
	if err != nil {
		t.Fatal(err)
	}
	params, x, y := mlpData(stages, mbRows, numMB, width, 3)
	for i := 0; i < 3; i++ { // warm mailboxes, scratch pools, store tables
		if _, _, err := step.Step(params, []*Tensor{x, y}); err != nil {
			t.Fatal(err)
		}
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	goruntime.GC()
	allocs := testing.AllocsPerRun(10, func() {
		if _, _, err := step.Step(params, []*Tensor{x, y}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > maxAllocs {
		t.Fatalf("steady-state Step allocates %.0f objects, want <= %d", allocs, maxAllocs)
	}
}
