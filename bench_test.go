package jaxpp

// One benchmark per table/figure of the paper's evaluation (run with
// `go test -bench=. -benchmem`). The figure benches execute the calibrated
// cluster simulator and report the headline metric (TFLOPS/device or step
// seconds) via b.ReportMetric; cmd/jaxpp-bench prints the full rows.
// Functional benches measure the real MPMD compiler and runtime.

import (
	"testing"

	"repro/internal/experiments"
	"repro/internal/schedule"
	"repro/internal/taskgraph"
	"repro/internal/timeline"
)

// BenchmarkFig2_Schedules regenerates the Fig. 2 GPipe-vs-1F1B timelines.
func BenchmarkFig2_Schedules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, s := range []*schedule.Schedule{
			schedule.GPipe(3, 6),
			schedule.OneFOneB(3, 6),
		} {
			spans := timeline.Build(s, 2)
			if len(spans) == 0 {
				b.Fatal("no spans")
			}
		}
	}
	gp := schedule.GPipe(3, 6).PeakInFlight()[0]
	ob := schedule.OneFOneB(3, 6).PeakInFlight()[0]
	b.ReportMetric(float64(gp), "gpipe-peak-mb")
	b.ReportMetric(float64(ob), "1f1b-peak-mb")
}

// BenchmarkFig6_CircularRepeat sweeps interleaving degree (Fig. 6).
func BenchmarkFig6_CircularRepeat(b *testing.B) {
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig6()
		if err != nil {
			b.Fatal(err)
		}
	}
	best := 0.0
	for _, r := range rows {
		if r.Result.TFLOPSPerDevice > best {
			best = r.Result.TFLOPSPerDevice
		}
	}
	b.ReportMetric(best, "best-TFLOPS/device")
}

// BenchmarkFig7_Microbatches sweeps gradient accumulation (Fig. 7).
func BenchmarkFig7_Microbatches(b *testing.B) {
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig7()
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.Result.TFLOPSPerDevice, "saturated-TFLOPS/device")
}

// BenchmarkFig8_WeakScaling runs the 64→1024 GPU weak-scaling sweep (Fig. 8).
func BenchmarkFig8_WeakScaling(b *testing.B) {
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig8()
		if err != nil {
			b.Fatal(err)
		}
	}
	var first, last float64
	for _, r := range rows {
		if r.System == "JaxPP" {
			if first == 0 {
				first = r.Result.TFLOPSPerDevice
			}
			last = r.Result.TFLOPSPerDevice
		}
	}
	b.ReportMetric(100*last/first, "weak-scaling-eff-%")
}

// BenchmarkFig9_Comparison runs the cross-system bars (Fig. 9).
func BenchmarkFig9_Comparison(b *testing.B) {
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig9()
		if err != nil {
			b.Fatal(err)
		}
	}
	var jaxpp, fsdp float64
	for _, r := range rows {
		if r.Label == "GPT-3 175B" && r.System == "JaxPP" {
			jaxpp = r.Result.TFLOPSPerDevice
		}
		if r.Label == "GPT-3 175B" && r.System == "JAX FSDP" {
			fsdp = r.Result.TFLOPSPerDevice
		}
	}
	b.ReportMetric(jaxpp/fsdp, "jaxpp-over-fsdp") // paper: 1.11×
}

// BenchmarkFig10_Breakdown computes the step-time breakdown (Fig. 10).
func BenchmarkFig10_Breakdown(b *testing.B) {
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig10()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.System == "JAX SPMD PP" {
			b.ReportMetric(r.Result.Breakdown.Rematerialization, "spmd-remat-s")
			b.ReportMetric(r.Result.StepTime, "spmd-step-s")
		} else {
			b.ReportMetric(r.Result.StepTime, "jaxpp-step-s")
		}
	}
}

// BenchmarkTable1_Full regenerates every Table 1 row.
func BenchmarkTable1_Full(b *testing.B) {
	var rows []experiments.Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Table1()
		if err != nil {
			b.Fatal(err)
		}
	}
	// Mean absolute step-time error vs the paper across rows with paper data.
	var sum float64
	var n int
	for _, r := range rows {
		if r.PaperStepTime > 0 {
			e := r.Result.StepTime/r.PaperStepTime - 1
			if e < 0 {
				e = -e
			}
			sum += e
			n++
		}
	}
	b.ReportMetric(100*sum/float64(n), "mean-abs-step-err-%")
}

// BenchmarkRuntimePipelineStep measures a full functional MPMD training step
// (trace/compile excluded) on the real runtime.
func BenchmarkRuntimePipelineStep(b *testing.B) {
	const stages, mbRows, numMB, width = 4, 8, 8, 32
	mesh := NewRemoteMesh(stages)
	step, err := mesh.Compile(mlpSpec(stages, mbRows, width, OneFOneB(stages, numMB)))
	if err != nil {
		b.Fatal(err)
	}
	params, x, y := mlpData(stages, mbRows, numMB, width, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := step.Step(params, []*Tensor{x, y}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuntimeDPxPPStep measures a hybrid DP×PP training step on the
// real runtime: 2 pipeline replicas × 4 stages with the end-of-step bucketed
// gradient AllReduce on the executable collective engine.
func BenchmarkRuntimeDPxPPStep(b *testing.B) {
	const stages, mbRows, numMB, width, dpN = 4, 8, 4, 32, 2
	mesh := NewRemoteMesh(dpN * stages)
	spec := mlpSpec(stages, mbRows, width, OneFOneB(stages, numMB))
	spec.DataParallel = dpN
	step, err := mesh.Compile(spec)
	if err != nil {
		b.Fatal(err)
	}
	params, x, y := mlpData(stages, mbRows, dpN*numMB, width, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := step.Step(params, []*Tensor{x, y}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(step.DPSyncTime().Seconds()*1e3, "dp-sync-ms")
}

// BenchmarkCompile measures trace→autodiff→split→unroll→load end to end.
func BenchmarkCompile(b *testing.B) {
	const stages, mbRows, numMB, width = 4, 8, 16, 32
	for i := 0; i < b.N; i++ {
		mesh := NewRemoteMesh(stages)
		if _, err := mesh.Compile(mlpSpec(stages, mbRows, width, OneFOneB(stages, numMB))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLoopCommuting measures the §3.4 rewrite's effect on
// communication volume for a tied-weight model (elements sent per step).
func BenchmarkAblationLoopCommuting(b *testing.B) {
	const mbRows, numMB, width = 4, 8, 16
	run := func(commute bool) int64 {
		mesh := NewRemoteMesh(3)
		spec := CompileSpec{
			Loss: func(bb *Builder, params, mb []*Value) *Value {
				w, v := params[0], params[1]
				h := bb.ReLU(bb.MatMul(mb[0], w))
				h = bb.PipelineYield(h)
				h = bb.ReLU(bb.MatMul(h, v))
				h = bb.PipelineYield(h)
				return bb.CrossEntropy(bb.MatMul(h, bb.Transpose(w)), mb[1])
			},
			ParamShapes:             [][]int{{width, width}, {width, width}},
			BatchShapes:             [][]int{{mbRows, width}, {mbRows, width}},
			Schedule:                OneFOneB(3, numMB),
			CommuteGradAccumulation: commute,
		}
		step, err := mesh.Compile(spec)
		if err != nil {
			b.Fatal(err)
		}
		rng := NewRNG(1)
		params := []*Tensor{rng.Xavier(width, width), rng.Xavier(width, width)}
		x := rng.Normal(1, numMB*mbRows, width)
		y := rng.OneHotBatch(numMB*mbRows, width)
		if _, _, err := step.Step(params, []*Tensor{x, y}); err != nil {
			b.Fatal(err)
		}
		sends := int64(0)
		for _, list := range step.Program().Actors {
			for _, instr := range list {
				if instr.Kind == taskgraph.OpSend {
					sends++
				}
			}
		}
		return sends
	}
	var with, without int64
	for i := 0; i < b.N; i++ {
		without = run(false)
		with = run(true)
	}
	if with >= without {
		b.Fatalf("commuting did not reduce sends: %d -> %d", without, with)
	}
	b.ReportMetric(float64(without), "sends-no-commute")
	b.ReportMetric(float64(with), "sends-commuted")
}
