package jaxpp

import (
	"strings"
	"testing"
)

// hostedSpec compiles a 2-stage pipeline onto a 2-actor mesh, hosting only
// the listed actors.
func hostedSpec(host []int) CompileSpec {
	return CompileSpec{
		Loss: func(b *Builder, params, mb []*Value) *Value {
			h := b.ReLU(b.MatMul(mb[0], params[0]))
			h = b.PipelineYield(h)
			return b.CrossEntropy(b.MatMul(h, params[1]), mb[1])
		},
		ParamShapes: [][]int{{8, 8}, {8, 8}},
		BatchShapes: [][]int{{4, 8}, {4, 8}},
		Schedule:    OneFOneB(2, 4),
		HostActors:  host,
	}
}

// TestHostedActorFilterRefusesUnhostedStep pins the filter's contract: a
// rank that materialized only its own actor must refuse — with a clear
// error, not a hang or a panic — to step an actor it never loaded, and the
// full-cluster Step path must refuse entirely.
func TestHostedActorFilterRefusesUnhostedStep(t *testing.T) {
	step, err := NewRemoteMesh(2).Compile(hostedSpec([]int{0}))
	if err != nil {
		t.Fatal(err)
	}
	defer step.Close()
	if !step.Hosts(0) || step.Hosts(1) {
		t.Fatalf("hosted filter: Hosts(0)=%v Hosts(1)=%v, want true/false", step.Hosts(0), step.Hosts(1))
	}

	rng := NewRNG(1)
	params := []*Tensor{rng.Xavier(8, 8), rng.Xavier(8, 8)}
	batch := []*Tensor{rng.Normal(1, 16, 8), rng.OneHotBatch(16, 8)}

	if err := step.StepActor(1, params, batch); err == nil || !strings.Contains(err.Error(), "not hosted") {
		t.Fatalf("StepActor(1) on a rank hosting only actor 0: err = %v, want a hosted-actor refusal", err)
	}
	if _, _, err := step.Step(params, batch); err == nil || !strings.Contains(err.Error(), "hosted-actor filter") {
		t.Fatalf("full Step on a filtered load: err = %v, want a hosted-actor refusal", err)
	}
	if _, err := step.TakeActorResults(1); err == nil || !strings.Contains(err.Error(), "not hosted") {
		t.Fatalf("TakeActorResults(1): err = %v, want a hosted-actor refusal", err)
	}
}

// TestHostedActorFilterRejectsOutOfRange pins Load's validation of the
// filter itself.
func TestHostedActorFilterRejectsOutOfRange(t *testing.T) {
	if _, err := NewRemoteMesh(2).Compile(hostedSpec([]int{2})); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("HostActors [2] on a 2-actor cluster: err = %v, want out-of-range", err)
	}
}
