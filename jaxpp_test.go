package jaxpp

import (
	"testing"

	"repro/internal/dist"
	"repro/internal/tensor"
)

// mlpSpec builds a CompileSpec for an S-stage MLP.
func mlpSpec(stages, mbRows, width int, sched *Schedule) CompileSpec {
	paramShapes := make([][]int, stages)
	for i := range paramShapes {
		paramShapes[i] = []int{width, width}
	}
	return CompileSpec{
		Loss: func(b *Builder, params, mb []*Value) *Value {
			h := mb[0]
			for i, w := range params {
				h = b.ReLU(b.MatMul(h, w))
				if i+1 < len(params) {
					h = b.PipelineYield(h)
				}
			}
			return b.CrossEntropy(h, mb[1])
		},
		ParamShapes: paramShapes,
		BatchShapes: [][]int{{mbRows, width}, {mbRows, width}},
		Schedule:    sched,
	}
}

func mlpData(stages, mbRows, numMB, width int, seed uint64) (params []*Tensor, x, y *Tensor) {
	rng := NewRNG(seed)
	for i := 0; i < stages; i++ {
		params = append(params, rng.Xavier(width, width))
	}
	return params, rng.Normal(1, numMB*mbRows, width), rng.OneHotBatch(numMB*mbRows, width)
}

func TestCompileAndStep(t *testing.T) {
	const stages, mbRows, numMB, width = 3, 4, 6, 8
	mesh := NewRemoteMesh(stages)
	step, err := mesh.Compile(mlpSpec(stages, mbRows, width, OneFOneB(stages, numMB)))
	if err != nil {
		t.Fatal(err)
	}
	if step.NumStages() != stages || step.NumMicrobatches() != numMB {
		t.Fatalf("stages=%d mbs=%d", step.NumStages(), step.NumMicrobatches())
	}
	params, x, y := mlpData(stages, mbRows, numMB, width, 1)
	losses, grads, err := step.Step(params, []*Tensor{x, y})
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != numMB || len(grads) != stages {
		t.Fatalf("losses=%d grads=%d", len(losses), len(grads))
	}
}

func TestSchedulesAgreeOnGradients(t *testing.T) {
	const stages, mbRows, numMB, width = 3, 4, 6, 8
	params, x, y := mlpData(stages, mbRows, numMB, width, 5)
	var ref []*Tensor
	for _, sched := range []*Schedule{GPipe(stages, numMB), OneFOneB(stages, numMB)} {
		mesh := NewRemoteMesh(stages)
		step, err := mesh.Compile(mlpSpec(stages, mbRows, width, sched))
		if err != nil {
			t.Fatal(err)
		}
		_, grads, err := step.Step(params, []*Tensor{x, y})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = grads
			continue
		}
		for i := range grads {
			if !tensor.AllClose(grads[i], ref[i], 1e-10, 1e-12) {
				t.Fatalf("schedule %s grad %d differs", sched.Name, i)
			}
		}
	}
}

func TestTCPTransportEndToEnd(t *testing.T) {
	const stages, mbRows, numMB, width = 3, 4, 6, 8
	tr, err := dist.NewLocalMesh(stages, dist.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	meshTCP := NewRemoteMeshWithTransport(stages, tr)
	stepTCP, err := meshTCP.Compile(mlpSpec(stages, mbRows, width, OneFOneB(stages, numMB)))
	if err != nil {
		t.Fatal(err)
	}
	meshLocal := NewRemoteMesh(stages)
	stepLocal, err := meshLocal.Compile(mlpSpec(stages, mbRows, width, OneFOneB(stages, numMB)))
	if err != nil {
		t.Fatal(err)
	}
	params, x, y := mlpData(stages, mbRows, numMB, width, 9)
	_, gTCP, err := stepTCP.Step(params, []*Tensor{x, y})
	if err != nil {
		t.Fatal(err)
	}
	_, gLoc, err := stepLocal.Step(params, []*Tensor{x, y})
	if err != nil {
		t.Fatal(err)
	}
	for i := range gTCP {
		if !tensor.AllClose(gTCP[i], gLoc[i], 1e-12, 1e-12) {
			t.Fatalf("TCP grad %d differs from in-process", i)
		}
	}
}

func TestCustomSchedule(t *testing.T) {
	// Hand-written task lists in the §4.2 format.
	const stages, numMB = 2, 2
	lists := [][]ScheduleEntry{
		{
			{MB: 0, Stage: 0, Type: 0}, {MB: 1, Stage: 0, Type: 0},
			{MB: 0, Stage: 0, Type: 1}, {MB: 1, Stage: 0, Type: 1},
		},
		{
			{MB: 0, Stage: 1, Type: 0}, {MB: 0, Stage: 1, Type: 1},
			{MB: 1, Stage: 1, Type: 0}, {MB: 1, Stage: 1, Type: 1},
		},
	}
	sched, err := CustomSchedule("mine", stages, numMB, lists)
	if err != nil {
		t.Fatal(err)
	}
	mesh := NewRemoteMesh(stages)
	step, err := mesh.Compile(mlpSpec(stages, 4, 8, sched))
	if err != nil {
		t.Fatal(err)
	}
	params, x, y := mlpData(stages, 4, numMB, 8, 13)
	if _, _, err := step.Step(params, []*Tensor{x, y}); err != nil {
		t.Fatal(err)
	}
}

func TestCompileErrors(t *testing.T) {
	mesh := NewRemoteMesh(2)
	if _, err := mesh.Compile(CompileSpec{}); err == nil {
		t.Fatal("want error for empty spec")
	}
	// Schedule stage count mismatch: 3-stage model on a 2-stage schedule.
	spec := mlpSpec(3, 4, 8, OneFOneB(2, 4))
	if _, err := mesh.Compile(spec); err == nil {
		t.Fatal("want stage mismatch error")
	}
}

func TestStepArgumentValidation(t *testing.T) {
	const stages = 2
	mesh := NewRemoteMesh(stages)
	step, err := mesh.Compile(mlpSpec(stages, 4, 8, OneFOneB(stages, 4)))
	if err != nil {
		t.Fatal(err)
	}
	params, x, y := mlpData(stages, 4, 4, 8, 17)
	if _, _, err := step.Step(params[:1], []*Tensor{x, y}); err == nil {
		t.Fatal("want param count error")
	}
	if _, _, err := step.Step(params, []*Tensor{x}); err == nil {
		t.Fatal("want batch count error")
	}
}

func TestSimAPIBaselines(t *testing.T) {
	res, err := SimulateJaxPP(SimConfig{
		Model: GPT3175B(), Cluster: EOSCluster(),
		GPUs: 64, TP: 8, PP: 8, DP: 1, GlobalBatch: 128, Microbatch: 4, CircularRepeat: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TFLOPSPerDevice < 400 {
		t.Fatalf("JaxPP sim %f TFLOPS", res.TFLOPSPerDevice)
	}
	fres, err := SimulateFSDP(FSDPConfig{Model: GPT3175B(), Cluster: EOSCluster(), GPUs: 64, GlobalBatch: 128})
	if err != nil {
		t.Fatal(err)
	}
	if fres.TFLOPSPerDevice >= res.TFLOPSPerDevice {
		t.Fatal("JaxPP should beat FSDP on GPT-3")
	}
}
