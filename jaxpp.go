// Package jaxpp is a Go reproduction of "Scaling Deep Learning Training with
// MPMD Pipeline Parallelism" (JaxPP, MLSys 2025): a compiler and
// single-controller MPMD runtime for pipeline-parallel gradient-accumulation
// training, layered over an SPMD (GSPMD-style) sharding substrate.
//
// The programming model mirrors the paper's Fig. 4: a model is written once
// as a microbatch loss function against a tracing Builder, stage boundaries
// are marked with PipelineYield, and a RemoteMesh compiles the function under
// a user-chosen pipeline schedule into one fused program per actor, executed
// with a single dispatch per actor per step.
//
//	mesh := jaxpp.NewRemoteMesh(3)              // 3 actors
//	step, err := mesh.Compile(jaxpp.CompileSpec{
//	    Loss: func(b *jaxpp.Builder, params, mb []*jaxpp.Value) *jaxpp.Value {
//	        h := b.ReLU(b.MatMul(mb[0], params[0]))
//	        h = b.PipelineYield(h)
//	        h = b.ReLU(b.MatMul(h, params[1]))
//	        h = b.PipelineYield(h)
//	        return b.CrossEntropy(b.MatMul(h, params[2]), mb[1])
//	    },
//	    ParamShapes: [][]int{{64, 64}, {64, 64}, {64, 64}},
//	    BatchShapes: [][]int{{8, 64}, {8, 64}}, // per-microbatch shapes
//	    Schedule:    jaxpp.OneFOneB(3, 8),
//	})
//	losses, grads, err := step.Step(params, batch)
//
// Performance experiments against the paper's evaluation (Figs. 6–10,
// Table 1) run on the calibrated cluster simulator; see SimulateJaxPP and
// cmd/jaxpp-bench.
package jaxpp

import (
	"fmt"

	"repro/internal/autodiff"
	"repro/internal/ir"
	"repro/internal/runtime"
	"repro/internal/schedule"
	"repro/internal/stage"
	"repro/internal/taskgraph"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// Value is a symbolic tensor handle produced during tracing.
type Value = ir.Value

// Builder records model operations during tracing (the jax.make_jaxpr role).
type Builder = trace.Builder

// Tensor is a dense float64 array.
type Tensor = tensor.Tensor

// NewTensor returns a zero tensor of the given shape.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// TensorFromSlice builds a tensor from data with the given shape.
func TensorFromSlice(data []float64, shape ...int) (*Tensor, error) {
	return tensor.FromSlice(data, shape...)
}

// RNG is a deterministic random generator for initialization.
type RNG = tensor.RNG

// NewRNG returns a seeded generator.
func NewRNG(seed uint64) *RNG { return tensor.NewRNG(seed) }

// Schedule assigns pipeline tasks to actors (§4.2 of the paper).
type Schedule = schedule.Schedule

// ScheduleEntry is one Task(i, ty, stage) element of a user-defined schedule.
type ScheduleEntry = schedule.Entry

// GPipe returns the GPipe schedule (all forwards, then all backwards).
func GPipe(actors, microbatches int) *Schedule { return schedule.GPipe(actors, microbatches) }

// OneFOneB returns the 1F1B schedule (Narayanan et al. 2019).
func OneFOneB(actors, microbatches int) *Schedule { return schedule.OneFOneB(actors, microbatches) }

// Interleaved1F1B returns the interleaved 1F1B schedule with the given
// circular repeat (stages per actor).
func Interleaved1F1B(actors, microbatches, repeat int) (*Schedule, error) {
	return schedule.Interleaved1F1B(actors, microbatches, repeat)
}

// CustomSchedule builds a user-defined schedule from per-actor task lists,
// validating executability — arbitrary MPMD schedules are first-class,
// exactly as in §4.2.
func CustomSchedule(name string, numStages, numMB int, actors [][]ScheduleEntry) (*Schedule, error) {
	return schedule.FromLists(name, numStages, numMB, actors)
}

// LossFn is a traced microbatch loss: given symbolic parameters and one
// microbatch, it returns the scalar loss. Calls to b.PipelineYield mark
// pipeline-stage boundaries.
type LossFn func(b *Builder, params []*Value, microbatch []*Value) *Value

// CompileSpec describes one distributed training step to compile.
type CompileSpec struct {
	// Loss is the microbatch loss function (auto-differentiated by the
	// library; see accumulate_grads in §3.1).
	Loss LossFn
	// ParamShapes are the model parameter shapes (pinned on actors by
	// placement inference, §3.3).
	ParamShapes [][]int
	// BatchShapes are the *per-microbatch* input shapes; Step receives the
	// full batch with leading dims multiplied by the schedule's microbatch
	// count and slices it.
	BatchShapes [][]int
	// Schedule chooses the pipeline schedule; its stage count must equal
	// 1 + number of PipelineYield calls in Loss.
	Schedule *Schedule
	// CommuteGradAccumulation enables the §3.4 loop-commuting rewrite for
	// shared (tied) weights.
	CommuteGradAccumulation bool
	// SPMDDevicesPerActor executes each task SPMD-sharded over this many
	// virtual devices inside every actor (MPMD of SPMD). 0 or 1 disables.
	SPMDDevicesPerActor int
	// DisableBufferDeletion turns off the §4.3 liveness pass (ablation).
	DisableBufferDeletion bool
}

// RemoteMesh provisions a cluster of long-lived actors (the paper's
// RemoteMesh). Actors run as goroutines over an in-process transport.
type RemoteMesh struct {
	cluster *runtime.Cluster
}

// NewRemoteMesh provisions actors on an in-process transport.
func NewRemoteMesh(actors int) *RemoteMesh {
	return &RemoteMesh{cluster: runtime.NewCluster(actors)}
}

// NewRemoteMeshWithTransport provisions actors over a custom transport
// (e.g. rpcx TCP for multi-process runs).
func NewRemoteMeshWithTransport(actors int, tr runtime.Transport) *RemoteMesh {
	return &RemoteMesh{cluster: runtime.NewClusterWithTransport(actors, tr)}
}

// TrainStep is a compiled distributed training step (the step_fn returned by
// mesh.distributed in the paper).
type TrainStep struct {
	exe   *runtime.Executable
	prog  *taskgraph.Program
	spec  CompileSpec
	graph *ir.Graph
}

// Compile traces, differentiates, stage-splits, schedules, and loads the
// training step onto the mesh.
func (m *RemoteMesh) Compile(spec CompileSpec) (*TrainStep, error) {
	if spec.Loss == nil || spec.Schedule == nil {
		return nil, fmt.Errorf("jaxpp: CompileSpec needs Loss and Schedule")
	}
	var params, batch []*ir.Value
	g, err := trace.Trace("train_step", func(b *Builder) []*ir.Value {
		params = params[:0]
		batch = batch[:0]
		for i, s := range spec.BatchShapes {
			batch = append(batch, b.Input(fmt.Sprintf("batch%d", i), s...))
		}
		for i, s := range spec.ParamShapes {
			params = append(params, b.Input(fmt.Sprintf("param%d", i), s...))
		}
		loss := spec.Loss(b, params, batch)
		return []*ir.Value{loss}
	})
	if err != nil {
		return nil, err
	}
	gg, err := autodiff.ValueAndGrad(g, params)
	if err != nil {
		return nil, err
	}
	split, err := stage.SplitGraph(gg, stage.Options{
		CommuteGradAccumulation: spec.CommuteGradAccumulation,
	})
	if err != nil {
		return nil, err
	}
	batchIdx := make([]int, len(spec.BatchShapes))
	for i := range batchIdx {
		batchIdx[i] = i
	}
	prog, err := taskgraph.Compile(split, spec.Schedule, taskgraph.Options{
		BatchInputs:     batchIdx,
		DisableDeletion: spec.DisableBufferDeletion,
	})
	if err != nil {
		return nil, err
	}
	exe, err := m.cluster.Load(prog, runtime.LoadOptions{SPMDDevices: spec.SPMDDevicesPerActor})
	if err != nil {
		return nil, err
	}
	return &TrainStep{exe: exe, prog: prog, spec: spec, graph: gg}, nil
}

// Step runs one training step. batch tensors carry the full global batch
// (per-microbatch leading dim × number of microbatches); params are the
// current weights. It returns the per-microbatch losses and the accumulated
// gradients (one per parameter).
func (t *TrainStep) Step(params, batch []*Tensor) (losses, grads []*Tensor, err error) {
	if len(params) != len(t.spec.ParamShapes) {
		return nil, nil, fmt.Errorf("jaxpp: %d params, compiled with %d", len(params), len(t.spec.ParamShapes))
	}
	if len(batch) != len(t.spec.BatchShapes) {
		return nil, nil, fmt.Errorf("jaxpp: %d batch inputs, compiled with %d", len(batch), len(t.spec.BatchShapes))
	}
	inputs := append(append([]*Tensor{}, batch...), params...)
	return t.exe.Step(inputs)
}

// NumMicrobatches returns the gradient accumulation count.
func (t *TrainStep) NumMicrobatches() int { return t.prog.Schedule.NumMB }

// NumStages returns the pipeline stage count.
func (t *TrainStep) NumStages() int { return t.prog.Schedule.NumStages }

// MemoryStats returns per-actor object-store statistics after a step.
func (t *TrainStep) MemoryStats() []runtime.StoreStats { return t.exe.StoreStatsAll() }

// Program exposes the compiled MPMD program (for inspection and tests).
func (t *TrainStep) Program() *taskgraph.Program { return t.prog }
