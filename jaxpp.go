// Package jaxpp is a Go reproduction of "Scaling Deep Learning Training with
// MPMD Pipeline Parallelism" (JaxPP, MLSys 2025): a compiler and
// single-controller MPMD runtime for pipeline-parallel gradient-accumulation
// training, layered over an SPMD (GSPMD-style) sharding substrate.
//
// The programming model mirrors the paper's Fig. 4: a model is written once
// as a microbatch loss function against a tracing Builder, stage boundaries
// are marked with PipelineYield, and a RemoteMesh compiles the function under
// a user-chosen pipeline schedule into one fused program per actor, executed
// with a single dispatch per actor per step.
//
//	mesh := jaxpp.NewRemoteMesh(3)              // 3 actors
//	step, err := mesh.Compile(jaxpp.CompileSpec{
//	    Loss: func(b *jaxpp.Builder, params, mb []*jaxpp.Value) *jaxpp.Value {
//	        h := b.ReLU(b.MatMul(mb[0], params[0]))
//	        h = b.PipelineYield(h)
//	        h = b.ReLU(b.MatMul(h, params[1]))
//	        h = b.PipelineYield(h)
//	        return b.CrossEntropy(b.MatMul(h, params[2]), mb[1])
//	    },
//	    ParamShapes: [][]int{{64, 64}, {64, 64}, {64, 64}},
//	    BatchShapes: [][]int{{8, 64}, {8, 64}}, // per-microbatch shapes
//	    Schedule:    jaxpp.OneFOneB(3, 8),
//	})
//	losses, grads, err := step.Step(params, batch)
//
// Performance experiments against the paper's evaluation (Figs. 6–10,
// Table 1) run on the calibrated cluster simulator; see SimulateJaxPP and
// cmd/jaxpp-bench.
package jaxpp

import (
	"fmt"
	"time"

	"repro/internal/autodiff"
	"repro/internal/collective"
	"repro/internal/ir"
	"repro/internal/mesh"
	"repro/internal/obs"
	"repro/internal/runtime"
	"repro/internal/schedule"
	"repro/internal/stage"
	"repro/internal/taskgraph"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// Value is a symbolic tensor handle produced during tracing.
type Value = ir.Value

// Builder records model operations during tracing (the jax.make_jaxpr role).
type Builder = trace.Builder

// Tensor is a dense float64 array.
type Tensor = tensor.Tensor

// NewTensor returns a zero tensor of the given shape.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// TensorFromSlice builds a tensor from data with the given shape.
func TensorFromSlice(data []float64, shape ...int) (*Tensor, error) {
	return tensor.FromSlice(data, shape...)
}

// RNG is a deterministic random generator for initialization.
type RNG = tensor.RNG

// NewRNG returns a seeded generator.
func NewRNG(seed uint64) *RNG { return tensor.NewRNG(seed) }

// Schedule assigns pipeline tasks to actors (§4.2 of the paper).
type Schedule = schedule.Schedule

// ScheduleEntry is one Task(i, ty, stage) element of a user-defined schedule.
type ScheduleEntry = schedule.Entry

// GPipe returns the GPipe schedule (all forwards, then all backwards).
func GPipe(actors, microbatches int) *Schedule { return schedule.GPipe(actors, microbatches) }

// OneFOneB returns the 1F1B schedule (Narayanan et al. 2019).
func OneFOneB(actors, microbatches int) *Schedule { return schedule.OneFOneB(actors, microbatches) }

// Interleaved1F1B returns the interleaved 1F1B schedule with the given
// circular repeat (stages per actor).
func Interleaved1F1B(actors, microbatches, repeat int) (*Schedule, error) {
	return schedule.Interleaved1F1B(actors, microbatches, repeat)
}

// CustomSchedule builds a user-defined schedule from per-actor task lists,
// validating executability — arbitrary MPMD schedules are first-class,
// exactly as in §4.2.
func CustomSchedule(name string, numStages, numMB int, actors [][]ScheduleEntry) (*Schedule, error) {
	return schedule.FromLists(name, numStages, numMB, actors)
}

// LossFn is a traced microbatch loss: given symbolic parameters and one
// microbatch, it returns the scalar loss. Calls to b.PipelineYield mark
// pipeline-stage boundaries.
type LossFn func(b *Builder, params []*Value, microbatch []*Value) *Value

// CompileSpec describes one distributed training step to compile.
type CompileSpec struct {
	// Loss is the microbatch loss function (auto-differentiated by the
	// library; see accumulate_grads in §3.1).
	Loss LossFn
	// ParamShapes are the model parameter shapes (pinned on actors by
	// placement inference, §3.3).
	ParamShapes [][]int
	// BatchShapes are the *per-microbatch* input shapes; Step receives the
	// full batch with leading dims multiplied by the schedule's microbatch
	// count and slices it.
	BatchShapes [][]int
	// Schedule chooses the pipeline schedule; its stage count must equal
	// 1 + number of PipelineYield calls in Loss.
	Schedule *Schedule
	// CommuteGradAccumulation enables the §3.4 loop-commuting rewrite for
	// shared (tied) weights.
	CommuteGradAccumulation bool
	// SPMDDevicesPerActor executes each task SPMD-sharded over this many
	// virtual devices inside every actor (MPMD of SPMD). 0 or 1 disables.
	SPMDDevicesPerActor int
	// DisableBufferDeletion turns off the §4.3 liveness pass (ablation).
	DisableBufferDeletion bool
	// DataParallel composes pipeline parallelism with this many data-parallel
	// pipeline replicas over a [("data", R), ("pipe", P)] actor mesh — the
	// DP×PP composition the paper scales to hundreds of GPUs (§5). The mesh
	// must hold DataParallel × Schedule.NumActors actors. Each replica
	// processes its own shard of the global batch; at step end the actors
	// owning gradients run a bucketed ring all-reduce across replicas on the
	// executable collective engine, overlapping with pipeline cooldown on
	// other actors. Step then returns globally summed gradients — identical
	// semantics to a single pipeline accumulating R × NumMB microbatches.
	// 0 or 1 disables.
	DataParallel int
	// DPBucketBytes caps the gradient-fusion bucket size of the DP
	// all-reduce (default collective.DefaultBucketBytes).
	DPBucketBytes int
	// HostActors restricts which global actors this process materializes
	// (stores, compiled segment programs, sender workers, DP-sync
	// communicators). nil hosts all. A distributed rank passes its own
	// actor ID so memory and compile time stay O(1) in the world size; the
	// resulting TrainStep steps only hosted actors (StepActor) — the full
	// Step path refuses to run.
	HostActors []int
}

// RemoteMesh provisions a cluster of long-lived actors (the paper's
// RemoteMesh). Actors run as goroutines over an in-process transport.
type RemoteMesh struct {
	cluster *runtime.Cluster
}

// NewRemoteMesh provisions actors on an in-process transport.
func NewRemoteMesh(actors int) *RemoteMesh {
	return &RemoteMesh{cluster: runtime.NewCluster(actors)}
}

// NewRemoteMeshWithTransport provisions actors over a custom transport
// (e.g. a dist TCP endpoint or LocalMesh for wire-protocol runs).
func NewRemoteMeshWithTransport(actors int, tr runtime.Transport) *RemoteMesh {
	return &RemoteMesh{cluster: runtime.NewClusterWithTransport(actors, tr)}
}

// TrainStep is a compiled distributed training step (the step_fn returned by
// mesh.distributed in the paper).
type TrainStep struct {
	exe   *runtime.Executable
	prog  *taskgraph.Program
	spec  CompileSpec
	graph *ir.Graph

	// dpSyncNanos[actor] is the wall time the actor's last DP gradient
	// all-reduce took (0 for actors without gradients or when DP is off).
	// Written by each actor's own goroutine during Step, read afterwards.
	dpSyncNanos []int64

	// inBuf is the reusable batch+params staging slice StepInto assembles
	// runtime inputs into. TrainStep drivers are single-threaded (one
	// controller), so one buffer serves every step.
	inBuf []*Tensor
}

// Compile traces, differentiates, stage-splits, schedules, and loads the
// training step onto the mesh.
func (m *RemoteMesh) Compile(spec CompileSpec) (*TrainStep, error) {
	if spec.Loss == nil || spec.Schedule == nil {
		return nil, fmt.Errorf("jaxpp: CompileSpec needs Loss and Schedule")
	}
	var params, batch []*ir.Value
	g, err := trace.Trace("train_step", func(b *Builder) []*ir.Value {
		params = params[:0]
		batch = batch[:0]
		for i, s := range spec.BatchShapes {
			batch = append(batch, b.Input(fmt.Sprintf("batch%d", i), s...))
		}
		for i, s := range spec.ParamShapes {
			params = append(params, b.Input(fmt.Sprintf("param%d", i), s...))
		}
		loss := spec.Loss(b, params, batch)
		return []*ir.Value{loss}
	})
	if err != nil {
		return nil, err
	}
	gg, err := autodiff.ValueAndGrad(g, params)
	if err != nil {
		return nil, err
	}
	split, err := stage.SplitGraph(gg, stage.Options{
		CommuteGradAccumulation: spec.CommuteGradAccumulation,
	})
	if err != nil {
		return nil, err
	}
	batchIdx := make([]int, len(spec.BatchShapes))
	for i := range batchIdx {
		batchIdx[i] = i
	}
	prog, err := taskgraph.Compile(split, spec.Schedule, taskgraph.Options{
		BatchInputs:     batchIdx,
		DisableDeletion: spec.DisableBufferDeletion,
	})
	if err != nil {
		return nil, err
	}
	exe, err := m.cluster.Load(prog, runtime.LoadOptions{
		SPMDDevices:  spec.SPMDDevicesPerActor,
		DataParallel: spec.DataParallel,
		HostActors:   spec.HostActors,
	})
	if err != nil {
		return nil, err
	}
	t := &TrainStep{exe: exe, prog: prog, spec: spec, graph: gg}
	if err := t.installDPSync(m.cluster.Transport); err != nil {
		return nil, err
	}
	return t, nil
}

// scDPSync times each actor's data-parallel gradient all-reduce epilogue,
// attributed to the actor's global ID as the trace lane.
var scDPSync = obs.Scope("step/dp_sync")

// installDPSync attaches the end-of-step data-parallel gradient all-reduce:
// for every pipeline actor that owns gradient accumulators, a bucketed ring
// AllReduce across its replica peers, derived from the "data" axis of the
// [("data", R), ("pipe", P)] actor mesh. Each actor starts its all-reduce as
// soon as its own program finishes, overlapping the sync with pipeline
// cooldown on later stages.
func (t *TrainStep) installDPSync(tr runtime.Transport) error {
	replicas := t.exe.Replicas()
	pp := t.exe.ActorsPerReplica()
	t.dpSyncNanos = make([]int64, replicas*pp)
	if replicas <= 1 {
		return nil
	}
	m, err := mesh.New(mesh.Axis{Name: "data", Size: replicas}, mesh.Axis{Name: "pipe", Size: pp})
	if err != nil {
		return err
	}
	// Row-major device IDs of the mesh coincide with the runtime's global
	// actor layout, so groups along "data" are exactly the replica peers of
	// each pipeline position.
	groups, err := collective.NewWorld(tr, m).GroupsAlong("data")
	if err != nil {
		return err
	}
	bucketBytes := t.spec.DPBucketBytes
	for a := 0; a < pp; a++ {
		var bufs []taskgraph.BufID
		for _, g := range t.prog.Grads {
			if g.Actor == a {
				bufs = append(bufs, g.Buf)
			}
		}
		if len(bufs) == 0 {
			continue
		}
		for r := 0; r < replicas; r++ {
			global := r*pp + a
			if !t.exe.Hosts(global) {
				// A hosted-actor-filtered rank never runs this actor's
				// epilogue; skip its communicator so the filter's memory
				// promise (no per-peer state for unhosted actors) holds.
				continue
			}
			comm, err := groups[a].Comm(r)
			if err != nil {
				return err
			}
			bufs := bufs
			ts := make([]*tensor.Tensor, len(bufs))
			err = t.exe.SetStepEpilogue(global, func(store *runtime.Store) error {
				start := time.Now()
				h := obs.TrackTid(scDPSync, global)
				for i, b := range bufs {
					g, err := store.Get(b)
					if err != nil {
						return fmt.Errorf("jaxpp: dp sync: %w", err)
					}
					ts[i] = g
				}
				// Gradient accumulators are store-private (the runtime clones
				// on first accumulation), so the bucketed all-reduce runs in
				// place through the communicator's persistent scratch: no
				// per-step result tensors, no store churn.
				if err := comm.AllReduceBucketsInPlace(ts, collective.OpSum, bucketBytes); err != nil {
					return fmt.Errorf("jaxpp: dp sync: %w", err)
				}
				h.Stop()
				t.dpSyncNanos[global] = time.Since(start).Nanoseconds()
				return nil
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// Step runs one training step. batch tensors carry the full global batch
// (per-microbatch leading dim × number of microbatches × data-parallel
// replicas, replica-major); params are the current weights. It returns the
// per-microbatch losses (NumReplicas × NumMicrobatches entries,
// replica-major) and the accumulated gradients (one per parameter, summed
// over every replica's microbatches when DataParallel is on).
func (t *TrainStep) Step(params, batch []*Tensor) (losses, grads []*Tensor, err error) {
	losses = make([]*Tensor, t.exe.Replicas()*t.prog.Schedule.NumMB)
	grads = make([]*Tensor, len(t.prog.Grads))
	if err := t.StepInto(params, batch, losses, grads); err != nil {
		return nil, nil, err
	}
	return losses, grads, nil
}

// StepInto is Step writing results into caller-provided slices (losses of
// len NumReplicas×NumMicrobatches, grads of len NumParams), mirroring
// interp.Program.RunInto: a driver that reuses its result buffers runs the
// whole dispatch path without per-step slice allocations. Not safe for
// concurrent use (a TrainStep is a single-controller object).
func (t *TrainStep) StepInto(params, batch, losses, grads []*Tensor) error {
	inputs, err := t.stageInputs(params, batch)
	if err != nil {
		return err
	}
	return t.exe.StepInto(inputs, losses, grads)
}

// stageInputs validates arity and assembles batch+params into the runtime's
// positional input order using the reusable staging buffer.
func (t *TrainStep) stageInputs(params, batch []*Tensor) ([]*Tensor, error) {
	if len(params) != len(t.spec.ParamShapes) {
		return nil, fmt.Errorf("jaxpp: %d params, compiled with %d", len(params), len(t.spec.ParamShapes))
	}
	if len(batch) != len(t.spec.BatchShapes) {
		return nil, fmt.Errorf("jaxpp: %d batch inputs, compiled with %d", len(batch), len(t.spec.BatchShapes))
	}
	t.inBuf = append(append(t.inBuf[:0], batch...), params...)
	return t.inBuf, nil
}

// NumActors returns the cluster's global actor count
// (NumReplicas × pipeline stages' actors) — the world size of a
// multi-process run.
func (t *TrainStep) NumActors() int { return t.exe.Replicas() * t.exe.ActorsPerReplica() }

// StepActor runs one global actor's share of a step — the per-process entry
// point for multi-process training, where each OS process hosts one actor
// and every process passes identical params and the identical full global
// batch (deterministic replication). Peers must run their shares
// concurrently; collect this rank's outputs with TakeActorResults.
func (t *TrainStep) StepActor(actor int, params, batch []*Tensor) error {
	inputs, err := t.stageInputs(params, batch)
	if err != nil {
		return err
	}
	return t.exe.StepActor(actor, inputs)
}

// ActorResults are one actor's step outputs (see runtime.ActorResults).
type ActorResults = runtime.ActorResults

// TakeActorResults fetches the losses and gradients the given global actor
// produced this step, with ownership transfer.
func (t *TrainStep) TakeActorResults(actor int) (*ActorResults, error) {
	return t.exe.TakeActorResults(actor)
}

// TakeActorResultsInto is TakeActorResults reusing the caller's ActorResults
// slices, so a steady-state distributed driver fetches results without
// per-step slice allocation.
func (t *TrainStep) TakeActorResultsInto(actor int, res *ActorResults) error {
	return t.exe.TakeActorResultsInto(actor, res)
}

// Hosts reports whether this process materialized the given global actor
// (always true without CompileSpec.HostActors).
func (t *TrainStep) Hosts(actor int) bool { return t.exe.Hosts(actor) }

// Close retires the step's per-actor sender workers. A compiled TrainStep
// owns long-lived goroutines (one per actor-to-peer link); a process that
// compiles many transient steps — benchmarks, sweeps, tests — should Close
// each one once its steps have completed, or the workers accumulate for the
// process lifetime. A closed step must not Step again.
func (t *TrainStep) Close() { t.exe.Close() }

// NumMicrobatches returns the gradient accumulation count per replica.
func (t *TrainStep) NumMicrobatches() int { return t.prog.Schedule.NumMB }

// NumReplicas returns the data-parallel replica count (1 when DP is off).
func (t *TrainStep) NumReplicas() int { return t.exe.Replicas() }

// DPSyncTime returns the slowest actor's data-parallel gradient all-reduce
// wall time during the last Step (zero when DataParallel is off) — the
// executed counterpart of the simulator's analytic dpSync term.
func (t *TrainStep) DPSyncTime() time.Duration {
	var max int64
	for _, n := range t.dpSyncNanos {
		if n > max {
			max = n
		}
	}
	return time.Duration(max)
}

// NumStages returns the pipeline stage count.
func (t *TrainStep) NumStages() int { return t.prog.Schedule.NumStages }

// MemoryStats returns per-actor object-store statistics after a step.
func (t *TrainStep) MemoryStats() []runtime.StoreStats { return t.exe.StoreStatsAll() }

// Program exposes the compiled MPMD program (for inspection and tests).
func (t *TrainStep) Program() *taskgraph.Program { return t.prog }

// GradOwners returns the producing actor of each gradient output in program
// order — the owner table the ZeRO-sharded step epilogue derives its
// owner-major layout from. Available on every rank under the hosted-actor
// filter (it reads shared program metadata, not peer state).
func (t *TrainStep) GradOwners() []int { return t.exe.GradOwners() }
