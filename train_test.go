package jaxpp

import (
	"testing"
)

// TestEndToEndTrainingWithAdam drives the full public workflow: compile a
// pipelined model, train with Adam under a warmup-cosine schedule with
// gradient clipping, and require monotonic-ish convergence.
func TestEndToEndTrainingWithAdam(t *testing.T) {
	const stages, mbRows, numMB, width, steps = 3, 4, 6, 12, 30
	mesh := NewRemoteMesh(stages)
	step, err := mesh.Compile(mlpSpec(stages, mbRows, width, OneFOneB(stages, numMB)))
	if err != nil {
		t.Fatal(err)
	}
	params, x, y := mlpData(stages, mbRows, numMB, width, 11)
	opt := AdamOptimizer()
	lrs := WarmupCosineLR(0.05, 0.001, 5, steps)

	var first, last float64
	for s := 0; s < steps; s++ {
		losses, grads, err := step.Step(params, []*Tensor{x, y})
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, l := range losses {
			total += l.Data()[0]
		}
		mean := total / numMB
		if s == 0 {
			first = mean
		}
		last = mean
		grads, norm := GradClipByGlobalNorm(grads, 5)
		if norm <= 0 {
			t.Fatal("zero grad norm")
		}
		params, err = opt.Apply(params, grads, lrs(s))
		if err != nil {
			t.Fatal(err)
		}
	}
	if !(last < first*0.7) {
		t.Fatalf("Adam training did not converge: %.4f -> %.4f", first, last)
	}
}

// TestTrainingMatchesSingleDeviceTrajectory trains the same model pipelined
// and unpipelined and requires identical loss trajectories — the strongest
// end-to-end equivalence statement.
func TestTrainingMatchesSingleDeviceTrajectory(t *testing.T) {
	const stages, mbRows, numMB, width, steps = 2, 4, 4, 8, 8
	// Pipelined run: 2 actors.
	mesh := NewRemoteMesh(stages)
	pipe, err := mesh.Compile(mlpSpec(stages, mbRows, width, OneFOneB(stages, numMB)))
	if err != nil {
		t.Fatal(err)
	}
	// "Single device" run: same model on a 1-actor GPipe degenerate
	// pipeline requires a 1-stage spec; instead reuse stages but a separate
	// mesh — pipelining is semantics-preserving, so both must match.
	mesh2 := NewRemoteMesh(stages)
	ref, err := mesh2.Compile(mlpSpec(stages, mbRows, width, GPipe(stages, numMB)))
	if err != nil {
		t.Fatal(err)
	}

	p1, x, y := mlpData(stages, mbRows, numMB, width, 21)
	p2 := make([]*Tensor, len(p1))
	for i := range p1 {
		p2[i] = p1[i].Clone()
	}
	o1, o2 := SGDOptimizer(), SGDOptimizer()
	for s := 0; s < steps; s++ {
		l1, g1, err := pipe.Step(p1, []*Tensor{x, y})
		if err != nil {
			t.Fatal(err)
		}
		l2, g2, err := ref.Step(p2, []*Tensor{x, y})
		if err != nil {
			t.Fatal(err)
		}
		for mb := range l1 {
			if d := l1[mb].Data()[0] - l2[mb].Data()[0]; d > 1e-10 || d < -1e-10 {
				t.Fatalf("step %d loss mb %d diverged by %v", s, mb, d)
			}
		}
		p1, err = o1.Apply(p1, g1, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		p2, err = o2.Apply(p2, g2, 0.2)
		if err != nil {
			t.Fatal(err)
		}
	}
}
