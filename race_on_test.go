//go:build race

package jaxpp

// raceEnabled reports whether the race detector is instrumenting this build;
// allocation counts are meaningless under -race.
const raceEnabled = true
