// Command jaxpp-viz renders pipeline schedules as ASCII timelines (the
// paper's Fig. 2: GPipe vs 1F1B) or Chrome trace JSON.
//
//	jaxpp-viz -actors 3 -mb 6 -schedule 1f1b
//	jaxpp-viz -schedule interleaved -repeat 2 -chrome trace.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/schedule"
	"repro/internal/timeline"
)

func main() {
	actors := flag.Int("actors", 3, "number of pipeline actors")
	mb := flag.Int("mb", 6, "number of microbatches")
	sched := flag.String("schedule", "all", "gpipe, 1f1b, interleaved, or all")
	repeat := flag.Int("repeat", 2, "circular repeat for interleaved")
	bwd := flag.Float64("bwd", 2, "backward/forward duration ratio")
	width := flag.Int("width", 96, "terminal columns for the timeline")
	chrome := flag.String("chrome", "", "write Chrome trace JSON to this file")
	flag.Parse()

	build := func(name string) *schedule.Schedule {
		switch name {
		case "gpipe":
			return schedule.GPipe(*actors, *mb)
		case "1f1b":
			return schedule.OneFOneB(*actors, *mb)
		case "interleaved":
			s, err := schedule.Interleaved1F1B(*actors, *mb, *repeat)
			if err != nil {
				log.Fatal(err)
			}
			return s
		default:
			log.Fatalf("unknown schedule %q", name)
			return nil
		}
	}

	names := []string{*sched}
	if *sched == "all" {
		names = []string{"gpipe", "1f1b", "interleaved"}
	}
	for _, n := range names {
		s := build(n)
		if err := s.Validate(); err != nil {
			log.Fatal(err)
		}
		timeline.RenderASCII(os.Stdout, s, *bwd, *width)
		fmt.Println()
		if *chrome != "" {
			f, err := os.Create(*chrome)
			if err != nil {
				log.Fatal(err)
			}
			if err := timeline.WriteChromeTrace(f, s, *bwd); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("wrote Chrome trace to %s\n", *chrome)
		}
	}
}
