// Command jaxpp-viz renders pipeline schedules as ASCII timelines (the
// paper's Fig. 2: GPipe vs 1F1B) or Chrome trace JSON. With -exec it instead
// renders an executed trace (jaxpp-train -trace-out) as the same per-actor
// timeline, optionally validating that every rank contributed spans.
//
// With -flight it renders a flight-recorder directory (jaxpp-train/-worker
// -flight-dir) as a chronological post-mortem event timeline — readable even
// after a SIGKILL mid-write, since replay stops at the first torn frame.
//
//	jaxpp-viz -actors 3 -mb 6 -schedule 1f1b
//	jaxpp-viz -schedule interleaved -repeat 2 -chrome trace.json
//	jaxpp-viz -exec trace.json -expect-ranks 4
//	jaxpp-viz -flight ./flight-coord
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/obs/flight"
	"repro/internal/schedule"
	"repro/internal/timeline"
)

func main() {
	actors := flag.Int("actors", 3, "number of pipeline actors")
	mb := flag.Int("mb", 6, "number of microbatches")
	sched := flag.String("schedule", "all", "gpipe, 1f1b, interleaved, or all")
	repeat := flag.Int("repeat", 2, "circular repeat for interleaved")
	bwd := flag.Float64("bwd", 2, "backward/forward duration ratio")
	width := flag.Int("width", 96, "terminal columns for the timeline")
	chrome := flag.String("chrome", "", "write Chrome trace JSON to this file")
	execTrace := flag.String("exec", "", "render an executed Chrome trace (jaxpp-train -trace-out) instead of a simulated schedule")
	expectRanks := flag.Int("expect-ranks", 0, "with -exec: require spans from every rank 0..N-1 (exit 1 otherwise)")
	flightDir := flag.String("flight", "", "render a flight-recorder directory (jaxpp-train/-worker -flight-dir) as a post-mortem event timeline")
	flag.Parse()

	if *flightDir != "" {
		if err := renderFlight(*flightDir); err != nil {
			log.Fatal(err)
		}
		return
	}

	if *execTrace != "" {
		if err := renderExec(*execTrace, *expectRanks, *width); err != nil {
			log.Fatal(err)
		}
		return
	}

	build := func(name string) *schedule.Schedule {
		switch name {
		case "gpipe":
			return schedule.GPipe(*actors, *mb)
		case "1f1b":
			return schedule.OneFOneB(*actors, *mb)
		case "interleaved":
			s, err := schedule.Interleaved1F1B(*actors, *mb, *repeat)
			if err != nil {
				log.Fatal(err)
			}
			return s
		default:
			log.Fatalf("unknown schedule %q", name)
			return nil
		}
	}

	names := []string{*sched}
	if *sched == "all" {
		names = []string{"gpipe", "1f1b", "interleaved"}
	}
	for _, n := range names {
		s := build(n)
		if err := s.Validate(); err != nil {
			log.Fatal(err)
		}
		timeline.RenderASCII(os.Stdout, s, *bwd, *width)
		fmt.Println()
		if *chrome != "" {
			f, err := os.Create(*chrome)
			if err != nil {
				log.Fatal(err)
			}
			if err := timeline.WriteChromeTrace(f, s, *bwd); err != nil {
				log.Fatal(err)
			}
			f.Close()
			fmt.Printf("wrote Chrome trace to %s\n", *chrome)
		}
	}
}

// renderExec loads an executed Chrome trace and draws the per-actor ASCII
// timeline. With expectRanks > 0 it also validates the trace covers every
// rank 0..N-1 — the CI multiprocess smoke's merged-trace assertion.
func renderExec(path string, expectRanks, width int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := timeline.ReadChromeTrace(f)
	if err != nil {
		return err
	}
	timeline.RenderEventsASCII(os.Stdout, events, width)
	if expectRanks > 0 {
		ranks := map[int]bool{}
		for _, e := range events {
			ranks[e.Pid] = true
		}
		for r := 0; r < expectRanks; r++ {
			if !ranks[r] {
				return fmt.Errorf("executed trace %s: no spans from rank %d (want ranks 0..%d)", path, r, expectRanks-1)
			}
		}
		fmt.Printf("trace OK: %d spans covering all %d ranks\n", len(events), expectRanks)
	}
	return nil
}

// renderFlight replays a flight-recorder directory as one chronological line
// per event, timestamped relative to the first event. Torn or corrupt tail
// frames (a recorder killed mid-write) are silently dropped by the decoder,
// so the timeline always renders whatever was durably committed.
func renderFlight(dir string) error {
	events, err := flight.Replay(dir)
	if err != nil {
		return err
	}
	if len(events) == 0 {
		fmt.Printf("flight %s: no events\n", dir)
		return nil
	}
	base := events[0].WallNs
	fmt.Printf("flight %s: %d events\n", dir, len(events))
	for _, ev := range events {
		rank := "-"
		if ev.Rank >= 0 {
			rank = fmt.Sprintf("%d", ev.Rank)
		}
		step := "-"
		if ev.Step >= 0 {
			step = fmt.Sprintf("%d", ev.Step)
		}
		line := fmt.Sprintf("+%9.3fs  rank %-3s step %-5s %-14s", float64(ev.WallNs-base)/1e9, rank, step, ev.Kind)
		if ev.Detail != "" {
			line += " " + ev.Detail
		}
		fmt.Println(line)
	}
	return nil
}
