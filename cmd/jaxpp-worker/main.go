// Command jaxpp-worker is the long-lived worker daemon of the multi-process
// runtime: it dials the coordinator's control address, completes the
// rendezvous (reporting its data-plane listen address, receiving its rank,
// the address book, and the job payload), then runs its share of the job
// over the dist wire transport. It needs no model flags — the coordinator's
// job payload is the single source of truth, and its kind selects the work:
// a training job steps this rank's hosted actor, a collective job runs the
// wire-collective verification.
//
//	jaxpp-worker -coordinator 127.0.0.1:29400
//
// With -reconnect the worker is elastic: a job poisoned by a peer's death
// sends it back to the rendezvous with backoff instead of exiting, and a
// coordinator release ("world formed without you") is a clean exit 0.
//
// The process exits 0 on job completion or release, 1 on any error —
// including a poisoned transport after a peer dies in non-elastic mode,
// which surfaces here as an error instead of a hang.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/dist"
	"repro/internal/distrun"
)

func main() {
	coordinator := flag.String("coordinator", "127.0.0.1:29400", "coordinator control address")
	rank := flag.Int("rank", 0, "requested rank (0 = let the coordinator assign)")
	crc := flag.Bool("crc", false, "append CRC32 trailers to wire frames")
	profile := flag.Bool("profile", false, "log a one-line per-step compute/wire/idle summary on this rank (snapshot shipping still follows the coordinator's job spec)")
	wireDType := flag.String("wire-dtype", "", "override the gradient wire encoding on this rank only: f64, f32, or int8q (empty follows the coordinator's payload; frames are self-describing, so a single canary rank can compress while its peers stay lossless)")
	reconnect := flag.Bool("reconnect", false, "elastic mode: on job failure, re-join the rendezvous instead of exiting")
	backoff := flag.Duration("reconnect-backoff", 500*time.Millisecond, "elastic mode: initial re-join delay (failed joins back off exponentially to 8x)")
	maxJoinFailures := flag.Int("max-join-failures", 5, "elastic mode: consecutive failed joins before giving up on the coordinator")
	hbInterval := flag.Duration("hb-interval", 0, "heartbeat ping interval (0 = default 1s)")
	hbMisses := flag.Int("hb-misses", 0, "missed heartbeat intervals before a peer is declared dead (0 = default 5)")
	metricsAddr := flag.String("metrics-addr", "", "serve this rank's local Prometheus /metrics, /healthz, and /debug/cluster on this address (arms per-step telemetry locally)")
	flightDir := flag.String("flight-dir", "", "record this rank's job/failure events into a crash-surviving flight-recorder ring in this directory (replay with jaxpp-viz -flight)")
	flag.Parse()

	telDone := setupTelemetry(*metricsAddr, *flightDir)
	defer telDone()

	opts := dist.SessionOptions{
		Transport:         dist.Options{CRC: *crc},
		WantRank:          *rank,
		HeartbeatInterval: *hbInterval,
		HeartbeatMisses:   *hbMisses,
	}
	if *reconnect {
		err := distrun.RunElasticWorker(*coordinator, distrun.WorkerOptions{
			Session:         opts,
			Backoff:         *backoff,
			MaxJoinFailures: *maxJoinFailures,
			Profile:         *profile,
			WireDType:       *wireDType,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "jaxpp-worker:", err)
			os.Exit(1)
		}
		fmt.Println("jaxpp-worker: done")
		return
	}

	sess, err := dist.Join(*coordinator, opts)
	if err != nil {
		if errors.Is(err, dist.ErrReleased) {
			fmt.Println("jaxpp-worker: released by coordinator; exiting")
			return
		}
		log.Fatal(err)
	}
	defer sess.Close()
	fmt.Printf("jaxpp-worker: rank %d of %d\n", sess.Rank, sess.World)
	if err := distrun.RunJobWith(sess, distrun.JobOptions{Profile: *profile, WireDType: *wireDType}); err != nil {
		fmt.Fprintln(os.Stderr, "jaxpp-worker:", err)
		os.Exit(1)
	}
	fmt.Printf("jaxpp-worker: rank %d done\n", sess.Rank)
}
