// Command jaxpp-worker is the long-lived worker daemon of the multi-process
// runtime: it dials the coordinator's control address, completes the
// rendezvous (reporting its data-plane listen address, receiving its rank,
// the address book, and the job spec), then runs its actor's share of every
// training step over the dist wire transport. It needs no model flags — the
// coordinator's job spec is the single source of truth.
//
//	jaxpp-worker -coordinator 127.0.0.1:29400
//
// The process exits 0 on job completion, 1 on any error — including a
// poisoned transport after a peer dies, which surfaces here as an error
// instead of a hang.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/dist"
	"repro/internal/distrun"
)

func main() {
	coordinator := flag.String("coordinator", "127.0.0.1:29400", "coordinator control address")
	rank := flag.Int("rank", 0, "requested rank (0 = let the coordinator assign)")
	crc := flag.Bool("crc", false, "append CRC32 trailers to wire frames")
	flag.Parse()

	sess, err := dist.Join(*coordinator, dist.SessionOptions{
		Transport: dist.Options{CRC: *crc},
		WantRank:  *rank,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	spec, err := distrun.UnmarshalJobSpec(sess.Job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("jaxpp-worker: rank %d of %d (job: %d stages × %d replicas, %d steps)\n",
		sess.Rank, sess.World, spec.Stages, spec.Replicas(), spec.Steps)
	if _, err := distrun.Run(sess, spec); err != nil {
		fmt.Fprintln(os.Stderr, "jaxpp-worker:", err)
		os.Exit(1)
	}
	fmt.Printf("jaxpp-worker: rank %d done\n", sess.Rank)
}
