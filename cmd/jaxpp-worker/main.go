// Command jaxpp-worker is the long-lived worker daemon of the multi-process
// runtime: it dials the coordinator's control address, completes the
// rendezvous (reporting its data-plane listen address, receiving its rank,
// the address book, and the job payload), then runs its share of the job
// over the dist wire transport. It needs no model flags — the coordinator's
// job payload is the single source of truth, and its kind selects the work:
// a training job steps this rank's hosted actor, a collective job runs the
// wire-collective verification.
//
//	jaxpp-worker -coordinator 127.0.0.1:29400
//
// The process exits 0 on job completion, 1 on any error — including a
// poisoned transport after a peer dies, which surfaces here as an error
// instead of a hang.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/dist"
	"repro/internal/distrun"
)

func main() {
	coordinator := flag.String("coordinator", "127.0.0.1:29400", "coordinator control address")
	rank := flag.Int("rank", 0, "requested rank (0 = let the coordinator assign)")
	crc := flag.Bool("crc", false, "append CRC32 trailers to wire frames")
	profile := flag.Bool("profile", false, "log a one-line per-step compute/wire/idle summary on this rank (snapshot shipping still follows the coordinator's job spec)")
	flag.Parse()

	sess, err := dist.Join(*coordinator, dist.SessionOptions{
		Transport: dist.Options{CRC: *crc},
		WantRank:  *rank,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	fmt.Printf("jaxpp-worker: rank %d of %d\n", sess.Rank, sess.World)
	if err := distrun.RunJobProfiled(sess, *profile); err != nil {
		fmt.Fprintln(os.Stderr, "jaxpp-worker:", err)
		os.Exit(1)
	}
	fmt.Printf("jaxpp-worker: rank %d done\n", sess.Rank)
}
