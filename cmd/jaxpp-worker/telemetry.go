package main

import (
	"fmt"
	"log"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// setupTelemetry wires this worker's slice of the live telemetry plane: a
// crash-surviving flight recorder when flightDir is set (installed globally,
// so distrun/dist event sites log into it), and a local-view HTTP metrics
// listener when metricsAddr is set — it serves this rank's own step ring
// (drained via SyncLocal on every scrape), not the cluster aggregate; that
// lives on the coordinator. Because the worker takes its JobSpec from the
// coordinator, a local -metrics-addr arms the step gates directly so the
// local view works even when the coordinator did not request telemetry.
// cleanup tears both down in reverse order.
func setupTelemetry(metricsAddr, flightDir string) func() {
	var closers []func()
	if flightDir != "" {
		rec, err := flight.Open(flightDir, flight.Options{})
		if err != nil {
			log.Fatalf("flight recorder %s: %v", flightDir, err)
		}
		flight.Install(rec)
		closers = append(closers, func() { rec.Close() })
	}
	if metricsAddr != "" {
		obs.Enable()
		obs.EnableSteps()
		tl := obs.NewClusterTimeline(obs.StragglerConfig{})
		srv, err := obs.StartMetricsServer(metricsAddr, tl)
		if err != nil {
			log.Fatalf("metrics listener %s: %v", metricsAddr, err)
		}
		fmt.Printf("jaxpp-worker: metrics: http://%s/metrics\n", srv.Addr())
		closers = append(closers, func() { srv.Close() })
	}
	return func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
}
