package main

import (
	"fmt"
	"log"

	"repro/internal/obs"
	"repro/internal/obs/flight"
)

// setupTelemetry wires this process's slice of the live telemetry plane: a
// crash-surviving flight recorder when flightDir is set (installed globally,
// so distrun/dist event sites log into it), and an HTTP metrics listener
// backed by a ClusterTimeline when metricsAddr is set. The returned timeline
// is non-nil iff the listener is up — the coordinator feeds
// heartbeat-piggybacked worker frames into it via SessionOptions.OnMetrics,
// while the process's own ring drains through SyncLocal on every scrape.
// cleanup tears both down in reverse order.
func setupTelemetry(metricsAddr, flightDir string) (*obs.ClusterTimeline, func()) {
	var closers []func()
	if flightDir != "" {
		rec, err := flight.Open(flightDir, flight.Options{})
		if err != nil {
			log.Fatalf("flight recorder %s: %v", flightDir, err)
		}
		flight.Install(rec)
		closers = append(closers, func() { rec.Close() })
	}
	var tl *obs.ClusterTimeline
	if metricsAddr != "" {
		tl = obs.NewClusterTimeline(obs.StragglerConfig{})
		srv, err := obs.StartMetricsServer(metricsAddr, tl)
		if err != nil {
			log.Fatalf("metrics listener %s: %v", metricsAddr, err)
		}
		fmt.Printf("metrics: http://%s/metrics\n", srv.Addr())
		closers = append(closers, func() { srv.Close() })
	}
	return tl, func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
}
