// Command jaxpp-train runs a real (numeric) MPMD pipeline training job on
// the functional runtime: an S-stage MLP under a chosen schedule, with
// actors communicating in-process or over localhost TCP sockets (-tcp).
//
//	jaxpp-train -stages 4 -mb 8 -schedule 1f1b -steps 20 -tcp
package main

import (
	"flag"
	"fmt"
	"log"

	jaxpp "repro"
	"repro/internal/rpcx"
)

func main() {
	stages := flag.Int("stages", 3, "pipeline stages (= actors)")
	mb := flag.Int("mb", 6, "microbatches per step (gradient accumulation)")
	mbRows := flag.Int("mbrows", 8, "rows per microbatch")
	width := flag.Int("width", 32, "hidden width")
	steps := flag.Int("steps", 20, "training steps")
	lr := flag.Float64("lr", 0.5, "learning rate")
	schedName := flag.String("schedule", "1f1b", "gpipe or 1f1b")
	tcp := flag.Bool("tcp", false, "communicate over localhost TCP sockets")
	spmd := flag.Int("spmd", 1, "virtual SPMD devices per actor")
	flag.Parse()

	var sched *jaxpp.Schedule
	switch *schedName {
	case "gpipe":
		sched = jaxpp.GPipe(*stages, *mb)
	case "1f1b":
		sched = jaxpp.OneFOneB(*stages, *mb)
	default:
		log.Fatalf("unknown schedule %q", *schedName)
	}

	var mesh *jaxpp.RemoteMesh
	if *tcp {
		tr, err := rpcx.NewTCPTransport(*stages)
		if err != nil {
			log.Fatal(err)
		}
		defer tr.Close()
		mesh = jaxpp.NewRemoteMeshWithTransport(*stages, tr)
		fmt.Printf("actors on TCP: ")
		for a := 0; a < *stages; a++ {
			fmt.Printf("%s ", tr.Addr(a))
		}
		fmt.Println()
	} else {
		mesh = jaxpp.NewRemoteMesh(*stages)
	}

	paramShapes := make([][]int, *stages)
	for i := range paramShapes {
		paramShapes[i] = []int{*width, *width}
	}
	step, err := mesh.Compile(jaxpp.CompileSpec{
		Loss: func(b *jaxpp.Builder, params, mbv []*jaxpp.Value) *jaxpp.Value {
			h := mbv[0]
			for i, w := range params {
				h = b.ReLU(b.MatMul(h, w))
				if i+1 < len(params) {
					h = b.PipelineYield(h)
				}
			}
			return b.CrossEntropy(h, mbv[1])
		},
		ParamShapes:         paramShapes,
		BatchShapes:         [][]int{{*mbRows, *width}, {*mbRows, *width}},
		Schedule:            sched,
		SPMDDevicesPerActor: *spmd,
	})
	if err != nil {
		log.Fatal(err)
	}

	rng := jaxpp.NewRNG(1)
	params := make([]*jaxpp.Tensor, *stages)
	for i := range params {
		params[i] = rng.Xavier(*width, *width)
	}
	x := rng.Normal(1, *mb**mbRows, *width)
	y := rng.OneHotBatch(*mb**mbRows, *width)

	for s := 0; s < *steps; s++ {
		losses, grads, err := step.Step(params, []*jaxpp.Tensor{x, y})
		if err != nil {
			log.Fatal(err)
		}
		total := 0.0
		for _, l := range losses {
			total += l.Data()[0]
		}
		if s%5 == 0 || s == *steps-1 {
			fmt.Printf("step %3d  loss %.4f\n", s, total/float64(*mb))
		}
		for i := range params {
			d := make([]float64, grads[i].Size())
			for j, g := range grads[i].Data() {
				d[j] = params[i].Data()[j] - *lr*g
			}
			p, err := jaxpp.TensorFromSlice(d, *width, *width)
			if err != nil {
				log.Fatal(err)
			}
			params[i] = p
		}
	}
}
