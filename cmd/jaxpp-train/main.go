// Command jaxpp-train runs a real (numeric) MPMD pipeline training job on
// the functional runtime: an S-stage MLP under a chosen schedule, with
// actors communicating in-process, over localhost TCP sockets (-tcp), or
// across OS processes (-distributed).
//
// Single process:
//
//	jaxpp-train -stages 4 -mb 8 -schedule 1f1b -steps 20 -tcp
//
// Multi-process (one coordinator + world-1 jaxpp-worker daemons; world =
// dp×stages actors, one per process):
//
//	jaxpp-train -distributed -coordinator 127.0.0.1:29400 -stages 4 -steps 20 &
//	jaxpp-worker -coordinator 127.0.0.1:29400 &   # × 3
//
// The coordinator distributes the job spec at rendezvous, so workers need
// no model flags; per-step losses are bit-identical to the in-process run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/ckpt"
	"repro/internal/dist"
	"repro/internal/distrun"
	"repro/internal/timeline"
)

func main() {
	stages := flag.Int("stages", 3, "pipeline stages (= actors per replica)")
	mb := flag.Int("mb", 6, "microbatches per step (gradient accumulation)")
	mbRows := flag.Int("mbrows", 8, "rows per microbatch")
	width := flag.Int("width", 32, "hidden width")
	steps := flag.Int("steps", 20, "training steps")
	lr := flag.Float64("lr", 0.5, "learning rate")
	momentum := flag.Float64("momentum", 0, "heavy-ball momentum coefficient (0 = plain SGD)")
	sharded := flag.Bool("sharded", false, "ZeRO-shard the optimizer states: owner-major ReduceScatter/AllGatherV step epilogue, ~1/world optimizer memory per rank, bit-identical losses (multi-process modes; the single-process run is its own full shard)")
	schedName := flag.String("schedule", "1f1b", "gpipe or 1f1b")
	dp := flag.Int("dp", 0, "data-parallel pipeline replicas (0/1 disables)")
	spmd := flag.Int("spmd", 1, "virtual SPMD devices per actor")
	seed := flag.Uint64("seed", 1, "deterministic init seed")
	tcp := flag.Bool("tcp", false, "communicate over localhost TCP sockets (binary wire protocol, single process)")
	distributed := flag.Bool("distributed", false, "run across OS processes over the dist transport")
	rank := flag.Int("rank", 0, "this process's rank in -distributed mode (0 = coordinator)")
	coordinator := flag.String("coordinator", "127.0.0.1:29400", "coordinator control address in -distributed mode")
	crc := flag.Bool("crc", false, "append CRC32 trailers to wire frames")
	wireDType := flag.String("wire-dtype", "", "gradient wire encoding: f64 (default, lossless), f32, or int8q (error-feedback int8 quantization). Training jobs compress only gradient collective frames; -collective accepts f32 (its integer payloads are f32-exact, so the bit-exact self-check still holds) and rejects int8q")
	netLatency := flag.Duration("net-latency", 0, "degraded-network mode: one-way latency added to every cross-rank frame (-distributed; distributed to workers via the job payload)")
	netJitter := flag.Duration("net-jitter", 0, "degraded-network mode: uniform ±jitter on -net-latency")
	netBW := flag.Float64("net-bw-gbs", 0, "degraded-network mode: per-link bandwidth cap in GB/s (0 = uncapped)")
	netLoss := flag.Float64("net-loss", 0, "degraded-network mode: per-frame loss probability (no retransmit: the receive side times out and poisons)")
	netSeed := flag.Uint64("net-seed", 1, "degraded-network mode: deterministic per-link jitter/loss seed")
	lossesOut := flag.String("losses-out", "", "write per-step losses as JSON to this path (rank 0 / local only)")
	profile := flag.Bool("profile", false, "arm the obs registry and log a one-line per-step compute/wire/idle summary")
	traceOut := flag.String("trace-out", "", "write the executed Chrome trace (all ranks merged) to this path (rank 0 / local only; implies -profile)")
	stepSleep := flag.Int("step-sleep-ms", 0, "sleep after every step (failure-injection test hook)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus /metrics, /healthz, and /debug/cluster on this address; in -distributed mode the coordinator aggregates heartbeat-streamed per-step samples from every rank and arms per-step telemetry for the whole world")
	flightDir := flag.String("flight-dir", "", "record rendezvous/checkpoint/failure events into a crash-surviving flight-recorder ring in this directory (replay with jaxpp-viz -flight)")
	ckptDir := flag.String("ckpt-dir", "", "enable rank-sharded checkpointing into this directory (and resume from its newest consistent checkpoint)")
	ckptEvery := flag.Int("ckpt-every", 0, "checkpoint period in steps (0 = default 10 when -ckpt-dir is set)")
	elastic := flag.Bool("elastic", false, "with -distributed rank 0: survive worker death by re-rendezvousing a smaller world and resuming from checkpoint")
	minReplicas := flag.Int("min-replicas", 1, "elastic mode: smallest data-parallel width to keep training with")
	maxAttempts := flag.Int("max-attempts", 3, "elastic mode: failed training attempts before giving up")
	joinGrace := flag.Duration("join-grace", 0, "elastic mode: extra wait for late joiners once the minimum world formed (0 = default 3s)")
	hbInterval := flag.Duration("hb-interval", 0, "heartbeat ping interval (0 = default 1s)")
	hbMisses := flag.Int("hb-misses", 0, "missed heartbeat intervals before a peer is declared dead (0 = default 5)")
	resume := flag.String("resume", "", "recover a restarted coordinator from this persisted cluster-state file (overrides job flags with the persisted spec)")
	coll := flag.Bool("collective", false, "run the wire-collective verification instead of training (ring AllReduce/AllGather/Broadcast, self-checked)")
	collWorld := flag.Int("world", 8, "collective mode: process-group size")
	collElems := flag.Int("elems", 1<<17, "collective mode: per-rank all-reduce elements")
	collIters := flag.Int("iters", 3, "collective mode: iterations")
	collBucket := flag.Int("bucket-bytes", 1<<18, "collective mode: fusion bucket cap (0 = default 4 MiB)")
	flag.Parse()

	if *coll {
		cs := distrun.CollectiveSpec{
			Kind: distrun.KindCollective, World: *collWorld,
			Elems: *collElems, Iters: *collIters, Seed: *seed, BucketBytes: *collBucket,
			WireDType: *wireDType,
		}
		if err := runCollective(cs, *distributed, *rank, *coordinator, *crc); err != nil {
			log.Fatal(err)
		}
		if *distributed && *rank != 0 {
			// A joined rank ran whatever the coordinator's payload said —
			// possibly a training job — not the local flags; report
			// neutrally instead of echoing flags that never executed.
			fmt.Println("job OK (worker rank; coordinator payload selected the work)")
		} else {
			fmt.Printf("wire collective OK: world %d, %d iters × %d elems (bucket cap %d B)\n",
				cs.World, cs.Iters, cs.Elems, cs.BucketBytes)
		}
		return
	}

	var shape *distrun.ShapeSpec
	if *netLatency > 0 || *netJitter > 0 || *netBW > 0 || *netLoss > 0 {
		shape = &distrun.ShapeSpec{
			LatencyUs: netLatency.Microseconds(), JitterUs: netJitter.Microseconds(),
			BandwidthGBs: *netBW, LossProb: *netLoss, Seed: *netSeed,
		}
	}
	spec := distrun.JobSpec{
		Stages: *stages, NumMB: *mb, MBRows: *mbRows, Width: *width,
		Steps: *steps, LR: *lr, Momentum: *momentum, Sharded: *sharded, Schedule: *schedName,
		DataParallel: *dp, SPMD: *spmd, Seed: *seed, StepSleepMs: *stepSleep,
		CkptDir: *ckptDir, CkptEvery: *ckptEvery,
		Profile:   *profile || *traceOut != "",
		Telemetry: *metricsAddr != "",
		WireDType: *wireDType, Shape: shape,
	}
	sessOpts := dist.SessionOptions{
		Transport:         dist.Options{CRC: *crc},
		HeartbeatInterval: *hbInterval,
		HeartbeatMisses:   *hbMisses,
		JoinGrace:         *joinGrace,
	}
	tl, telDone := setupTelemetry(*metricsAddr, *flightDir)
	defer telDone()
	if tl != nil {
		sessOpts.OnMetrics = tl.IngestFrame
	}

	var rep *distrun.Report
	var err error
	switch {
	case *resume != "":
		rep, err = runResumed(*resume, sessOpts, *minReplicas, *maxAttempts)
	case *distributed && *elastic:
		rep, err = runElastic(spec, *rank, *coordinator, sessOpts, *minReplicas, *maxAttempts)
	case *distributed:
		rep, err = runDistributed(spec, *rank, *coordinator, *crc, sessOpts)
	case *tcp:
		var mesh *dist.LocalMesh
		mesh, err = dist.NewLocalMesh(spec.World(), dist.Options{CRC: *crc})
		if err != nil {
			log.Fatal(err)
		}
		defer mesh.Close()
		fmt.Printf("actors on TCP: ")
		for a := 0; a < spec.World(); a++ {
			fmt.Printf("%s ", mesh.Addr(a))
		}
		fmt.Println()
		rep, err = distrun.RunLocalOn(spec, mesh)
	default:
		rep, err = distrun.RunLocal(spec)
	}
	if err != nil {
		log.Fatal(err)
	}
	if rep == nil || rep.Rank != 0 {
		return // non-coordinator rank: losses live on rank 0
	}
	for s, loss := range rep.StepLosses {
		// Loss histories cover steps StartStep..Steps-1; print absolute
		// step numbers so a resumed run's output aligns with the original.
		if s%5 == 0 || s == len(rep.StepLosses)-1 {
			fmt.Printf("step %3d  loss %.4f\n", rep.StartStep+s, loss)
		}
	}
	if *lossesOut != "" {
		if err := writeLosses(*lossesOut, rep); err != nil {
			log.Fatal(err)
		}
	}
	if *traceOut != "" {
		if err := writeTrace(*traceOut, rep); err != nil {
			log.Fatal(err)
		}
	}
}

// writeTrace merges the per-rank profile snapshots gathered on rank 0 into a
// single Chrome trace-event JSON file (chrome://tracing / Perfetto, or
// jaxpp-viz -exec). Span start times are wall-anchored per process, so the
// merged timeline aligns across ranks on one machine.
func writeTrace(path string, rep *distrun.Report) error {
	events := timeline.EventsFromSnapshots(rep.Profiles)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := timeline.WriteChromeTraceEvents(f, events); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	ranks := map[int]bool{}
	for _, s := range rep.Profiles {
		ranks[s.Rank] = true
	}
	fmt.Printf("trace: %d spans from %d rank(s) -> %s\n", len(events), len(ranks), path)
	return nil
}

// runCollective runs the wire-collective verification: across OS processes
// when -distributed (rank 0 coordinates, peers are jaxpp-worker daemons —
// the job payload's kind routes them into the collective runner), otherwise
// over a single-process dist.LocalMesh.
func runCollective(cs distrun.CollectiveSpec, distributed bool, rank int, coordinator string, crc bool) error {
	if !distributed {
		return distrun.RunCollectiveLocal(cs, dist.Options{CRC: crc})
	}
	opts := dist.SessionOptions{Transport: dist.Options{CRC: crc}, WantRank: rank}
	if rank == 0 {
		sess, err := dist.Coordinate(coordinator, cs.World, cs.Marshal(), opts)
		if err != nil {
			return err
		}
		defer sess.Close()
		fmt.Printf("coordinator up: collective world %d at %s\n", cs.World, coordinator)
		return distrun.RunCollective(sess, cs)
	}
	sess, err := dist.Join(coordinator, opts)
	if err != nil {
		return err
	}
	defer sess.Close()
	return distrun.RunJob(sess)
}

// runElastic runs the coordinator's rendezvous–train–recover loop (rank 0) —
// non-zero ranks of an elastic job are jaxpp-worker -reconnect daemons, but a
// rank flag is accepted and routed to the equivalent worker loop for symmetry
// with -distributed.
func runElastic(spec distrun.JobSpec, rank int, coordinator string, sessOpts dist.SessionOptions, minReplicas, maxAttempts int) (*distrun.Report, error) {
	if rank != 0 {
		sessOpts.WantRank = rank
		return nil, distrun.RunElasticWorker(coordinator, distrun.WorkerOptions{Session: sessOpts})
	}
	opt := distrun.ElasticOptions{
		CtrlAddr:    coordinator,
		MinReplicas: minReplicas,
		MaxAttempts: maxAttempts,
		Session:     sessOpts,
		StatePath:   ckpt.DefaultStatePath(spec.CkptDir),
	}
	fmt.Printf("elastic coordinator up: world <= %d (min %d replicas × %d stages) at %s\n",
		spec.World(), minReplicas, spec.Stages, coordinator)
	return distrun.RunElasticCoordinator(spec, opt, 0)
}

// runResumed recovers a restarted coordinator from a persisted cluster state:
// the saved spec and control address override the command line, and the
// elastic loop continues from the recorded attempt count. Workers running
// with -reconnect re-join as soon as the rendezvous listener is back.
func runResumed(statePath string, sessOpts dist.SessionOptions, minReplicas, maxAttempts int) (*distrun.Report, error) {
	st, err := ckpt.LoadState(statePath)
	if err != nil {
		return nil, err
	}
	spec, err := distrun.UnmarshalJobSpec(st.Spec)
	if err != nil {
		return nil, err
	}
	opt := distrun.ElasticOptions{
		CtrlAddr:    st.CtrlAddr,
		MinReplicas: minReplicas,
		MaxAttempts: maxAttempts,
		Session:     sessOpts,
		StatePath:   statePath,
	}
	fmt.Printf("resuming coordinator from %s: attempt %d, world <= %d at %s\n",
		statePath, st.Attempt, spec.World(), st.CtrlAddr)
	return distrun.RunElasticCoordinator(spec, opt, st.Attempt)
}

// runDistributed bootstraps this process's rank: rank 0 coordinates (and
// hosts actor 0), other ranks join exactly like a jaxpp-worker would.
func runDistributed(spec distrun.JobSpec, rank int, coordinator string, crc bool, opts dist.SessionOptions) (*distrun.Report, error) {
	opts.Transport = dist.Options{CRC: crc}
	opts.WantRank = rank
	if rank == 0 {
		sess, err := dist.Coordinate(coordinator, spec.World(), spec.Marshal(), opts)
		if err != nil {
			return nil, err
		}
		defer sess.Close()
		fmt.Printf("coordinator up: world %d (%d replicas × %d stages) at %s\n",
			spec.World(), spec.Replicas(), spec.Stages, coordinator)
		return distrun.Run(sess, spec)
	}
	sess, err := dist.Join(coordinator, opts)
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	got, err := distrun.UnmarshalJobSpec(sess.Job)
	if err != nil {
		return nil, err
	}
	fmt.Printf("joined as rank %d of %d\n", sess.Rank, sess.World)
	return distrun.Run(sess, got)
}

// lossesFile is the -losses-out JSON schema (shared with the CI smoke and
// the multi-process equivalence test).
type lossesFile struct {
	StepLosses []float64   `json:"step_losses"`
	MBLosses   [][]float64 `json:"mb_losses"`
}

func writeLosses(path string, rep *distrun.Report) error {
	data, err := json.MarshalIndent(lossesFile{StepLosses: rep.StepLosses, MBLosses: rep.MBLosses}, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
