package main

import (
	"fmt"

	"repro/internal/collective"
	"repro/internal/dist"
)

// Sharded-epilogue benchmark tier: the ZeRO exchange pair (bucketed
// ReduceScatterV → AllGatherV) over the same 8 TCP endpoints as the
// wire-collective tier, next to the dense bucketed AllReduce it replaces.
// Both epilogues move the identical 2·(n−1)/n·bytes per rank, so their bus
// bandwidths are directly comparable — the sharding win is the per-rank
// optimizer-state footprint, reported as bytes dense vs sharded.

type shardedStats struct {
	Ranks int `json:"ranks"`
	Elems int `json:"elems"`
	// Optimizer-state bytes one rank holds for an elems-element flat
	// velocity vector: the dense path replicates all of it, the sharded path
	// holds the largest balanced shard (~1/ranks).
	DenseOptStateBytes   int     `json:"dense_opt_state_bytes_per_rank"`
	ShardedOptStateBytes int     `json:"sharded_opt_state_bytes_per_rank"`
	ShardedOptStatePct   float64 `json:"sharded_opt_state_pct"`
	// NCCL-style bus bandwidth (2·(n−1)/n · bytes / time) of each epilogue
	// over TCP endpoints in one process.
	DenseAllReduceBusGBs float64 `json:"dense_allreduce_busgbs"`
	ExchangeBusGBs       float64 `json:"rs_agv_exchange_busgbs"`
}

// measureSharded times both epilogues over dist TCP endpoints and checks the
// sharded pair reproduces the all-reduce sum exactly (integer payloads).
func measureSharded() (*shardedStats, error) {
	const n, elems = wireCollectiveRanks, wireCollectiveElems
	s := &shardedStats{Ranks: n, Elems: elems}

	counts := collective.EvenCounts(elems, n)
	maxShard := 0
	for _, c := range counts {
		if c > maxShard {
			maxShard = c
		}
	}
	s.DenseOptStateBytes = elems * 8
	s.ShardedOptStateBytes = maxShard * 8
	s.ShardedOptStatePct = 100 * float64(maxShard) / float64(elems)

	busBytes := 2 * float64(n-1) / float64(n) * float64(elems*8)

	mesh, err := dist.NewLocalMesh(n, dist.Options{})
	if err != nil {
		return nil, err
	}
	arDur, arOut, err := collective.MeasureAllReduce(mesh, n, elems, collective.DefaultBucketBytes)
	mesh.Close()
	if err != nil {
		return nil, fmt.Errorf("sharded tier all-reduce: %w", err)
	}
	want := float64(n * (n + 1) / 2) // ranks contribute r+1
	if got := arOut.Data()[0]; got != want {
		return nil, fmt.Errorf("sharded tier all-reduce: reduced value %v, want %v", got, want)
	}
	s.DenseAllReduceBusGBs = busBytes / arDur.Seconds() / 1e9

	mesh, err = dist.NewLocalMesh(n, dist.Options{})
	if err != nil {
		return nil, err
	}
	exDur, exOut, err := collective.MeasureShardedExchange(mesh, n, elems, collective.DefaultBucketBytes)
	mesh.Close()
	if err != nil {
		return nil, fmt.Errorf("sharded tier exchange: %w", err)
	}
	if got := exOut.Data()[0]; got != want {
		return nil, fmt.Errorf("sharded tier exchange: gathered value %v, want %v", got, want)
	}
	s.ExchangeBusGBs = busBytes / exDur.Seconds() / 1e9
	return s, nil
}
