// Command jaxpp-bench regenerates the paper's tables and figures on the
// simulator. Usage:
//
//	jaxpp-bench -exp all|fig6|fig7|fig8|fig9|fig10|table1
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, fig6, fig7, fig8, fig9, fig10, table1, ablations")
	flag.Parse()

	run := func(name string) error {
		switch name {
		case "fig6":
			rows, err := experiments.Fig6()
			if err != nil {
				return err
			}
			experiments.Print(os.Stdout, "Fig. 6: GPT-3 175B, TP8xPP8, 64 GPUs, GBS 128 — circular repeat sweep", rows)
		case "fig7":
			rows, err := experiments.Fig7()
			if err != nil {
				return err
			}
			experiments.Print(os.Stdout, "Fig. 7: GPT-3 175B, TP8xPP8, CR 6 — microbatch sweep", rows)
		case "fig8":
			rows, err := experiments.Fig8()
			if err != nil {
				return err
			}
			experiments.Print(os.Stdout, "Fig. 8: weak scaling, GBS = 2x GPUs", rows)
		case "fig9":
			rows, err := experiments.Fig9()
			if err != nil {
				return err
			}
			experiments.Print(os.Stdout, "Fig. 9: training performance comparison", rows)
		case "fig10":
			rows, err := experiments.Fig10()
			if err != nil {
				return err
			}
			experiments.PrintBreakdown(os.Stdout, rows)
		case "ablations":
			if err := experiments.Ablations(os.Stdout); err != nil {
				return err
			}
		case "table1":
			rows, err := experiments.Table1()
			if err != nil {
				return err
			}
			experiments.Print(os.Stdout, "Table 1: training performance", rows)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		fmt.Println()
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"fig6", "fig7", "fig8", "fig9", "fig10", "table1", "ablations"}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintln(os.Stderr, "jaxpp-bench:", err)
			os.Exit(1)
		}
	}
}
