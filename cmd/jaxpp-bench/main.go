// Command jaxpp-bench regenerates the paper's tables and figures on the
// simulator, and snapshots headline metrics for trend tracking. Usage:
//
//	jaxpp-bench -exp all|fig6|fig7|fig8|fig9|fig10|table1|ablations|validate
//	jaxpp-bench -json BENCH_baseline.json   # machine-readable perf snapshot
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	goruntime "runtime"
	"runtime/debug"
	"time"

	jaxpp "repro"
	"repro/internal/autodiff"
	"repro/internal/collective"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/runtime"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// shapedRatioLo/Hi is the accepted executed-vs-analytic band for the
// shaped-network validation (-exp shaped): the analytic model is a
// store-and-forward idealization, so the band is generous, but an execution
// drifting outside it means the calibration model stopped tracking degraded
// networks — the regression the degraded-net CI tier exists to catch.
const (
	shapedRatioLo = 0.4
	shapedRatioHi = 2.5
)

// collectiveValidation compares one executed bucketed ring AllReduce on the
// in-process transport against the simulator's analytic dpSync formula under
// a calibrated link.
type collectiveValidation struct {
	Ranks         int     `json:"ranks"`
	Elems         int     `json:"elems"`
	LinkGBs       float64 `json:"link_gbs"`
	LinkLatencyUs float64 `json:"link_latency_us"`
	ExecutedMs    float64 `json:"executed_ms"`
	AnalyticMs    float64 `json:"analytic_ms"`
	Ratio         float64 `json:"ratio"`
}

func validateCollective() (*collectiveValidation, error) {
	const ranks, elems = 4, 1 << 19
	link := collective.Calibrate(runtime.NewChanTransport(), 0, 1)
	measured, _, err := collective.MeasureAllReduce(runtime.NewChanTransport(), ranks, elems, collective.DefaultBucketBytes)
	if err != nil {
		return nil, err
	}
	predicted := collective.PredictBucketedAllReduce(collective.RingLink(link, ranks), []int{elems}, ranks, collective.DefaultBucketBytes)
	return &collectiveValidation{
		Ranks:         ranks,
		Elems:         elems,
		LinkGBs:       link.BwGBs,
		LinkLatencyUs: link.Latency * 1e6,
		ExecutedMs:    measured.Seconds() * 1e3,
		AnalyticMs:    predicted * 1e3,
		Ratio:         measured.Seconds() / predicted,
	}, nil
}

// kernelStats are executed-kernel micro measurements recorded alongside the
// executed-vs-analytic ratio, so kernel regressions and model drift are
// distinguishable in the snapshot diff.
type kernelStats struct {
	MatMul256GFLOPs float64 `json:"matmul_256_gflops"`
	InterpStepUs    float64 `json:"interp_step_us"`
}

// measureKernels times a 256x256 matmul and one compiled forward+backward
// interpreter step of a 4-layer MLP (the op mix pipeline segments execute).
func measureKernels() (*kernelStats, error) {
	const size = 256
	rng := tensor.NewRNG(1)
	a := rng.Normal(1, size, size)
	b := rng.Normal(1, size, size)
	dst := tensor.New(size, size)
	const mmIters = 10
	tensor.MatMulInto(dst, a, b) // warm the worker pool
	t0 := time.Now()
	for i := 0; i < mmIters; i++ {
		tensor.MatMulInto(dst, a, b)
	}
	mmSecs := time.Since(t0).Seconds() / mmIters
	flops := 2 * float64(size) * float64(size) * float64(size)

	const depth, rows, width = 4, 8, 32
	var params []*ir.Value
	g, err := trace.Trace("bench-mlp", func(tb *trace.Builder) []*ir.Value {
		x := tb.Input("x", rows, width)
		y := tb.Input("y", rows, width)
		h := x
		for d := 0; d < depth; d++ {
			w := tb.Input(fmt.Sprintf("w%d", d), width, width)
			params = append(params, w)
			h = tb.ReLU(tb.MatMul(h, w))
		}
		return []*ir.Value{tb.CrossEntropy(h, y)}
	})
	if err != nil {
		return nil, err
	}
	gg, err := autodiff.ValueAndGrad(g, params)
	if err != nil {
		return nil, err
	}
	prog, err := interp.NewProgram(gg)
	if err != nil {
		return nil, err
	}
	inputs := []*tensor.Tensor{rng.Normal(1, rows, width), rng.OneHotBatch(rows, width)}
	for range params {
		inputs = append(inputs, rng.Xavier(width, width))
	}
	const warm, iters = 20, 200
	for i := 0; i < warm; i++ {
		if _, err := prog.Run(inputs); err != nil {
			return nil, err
		}
	}
	t1 := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := prog.Run(inputs); err != nil {
			return nil, err
		}
	}
	return &kernelStats{
		MatMul256GFLOPs: flops / mmSecs / 1e9,
		InterpStepUs:    time.Since(t1).Seconds() / iters * 1e6,
	}, nil
}

// runtimeStepStats measures steady-state training steps on the real MPMD
// runtime: wall time and heap allocations per Executable.Step, the driver
// metric the dense-store/zero-copy-view work optimizes. Allocation counts
// are deterministic enough to gate on (-max-step-allocs).
type runtimeStepStats struct {
	PipelineStepMs     float64 `json:"pipeline_step_ms"`
	PipelineStepAllocs float64 `json:"pipeline_step_allocs"`
	DPxPPStepMs        float64 `json:"dpxpp_step_ms"`
	DPxPPStepAllocs    float64 `json:"dpxpp_step_allocs"`
}

// mlpTrainStep compiles the same S-stage MLP configuration the runtime step
// benchmarks use.
func mlpTrainStep(stages, mbRows, numMB, width, dp int) (*jaxpp.TrainStep, []*jaxpp.Tensor, []*jaxpp.Tensor, error) {
	paramShapes := make([][]int, stages)
	for i := range paramShapes {
		paramShapes[i] = []int{width, width}
	}
	spec := jaxpp.CompileSpec{
		Loss: func(b *jaxpp.Builder, params, mb []*jaxpp.Value) *jaxpp.Value {
			h := mb[0]
			for i, w := range params {
				h = b.ReLU(b.MatMul(h, w))
				if i+1 < len(params) {
					h = b.PipelineYield(h)
				}
			}
			return b.CrossEntropy(h, mb[1])
		},
		ParamShapes:  paramShapes,
		BatchShapes:  [][]int{{mbRows, width}, {mbRows, width}},
		Schedule:     jaxpp.OneFOneB(stages, numMB),
		DataParallel: dp,
	}
	mesh := jaxpp.NewRemoteMesh(max(dp, 1) * stages)
	step, err := mesh.Compile(spec)
	if err != nil {
		return nil, nil, nil, err
	}
	rng := jaxpp.NewRNG(1)
	var params []*jaxpp.Tensor
	for i := 0; i < stages; i++ {
		params = append(params, rng.Xavier(width, width))
	}
	rows := max(dp, 1) * numMB * mbRows
	batch := []*jaxpp.Tensor{rng.Normal(1, rows, width), rng.OneHotBatch(rows, width)}
	return step, params, batch, nil
}

// measureStep runs warm-up steps, then times and counts heap allocations over
// iters steady-state steps with the GC paused (a collection mid-measurement
// would drop the scratch pools and charge the refill to the step). Results
// land in reused StepInto buffers, so the driver-side result slices of Step
// no longer appear in the per-step allocation count.
func measureStep(step *jaxpp.TrainStep, params, batch []*jaxpp.Tensor) (ms, allocs float64, err error) {
	const warm, iters = 5, 20
	losses := make([]*jaxpp.Tensor, step.NumReplicas()*step.NumMicrobatches())
	grads := make([]*jaxpp.Tensor, len(params))
	for i := 0; i < warm; i++ {
		if err := step.StepInto(params, batch, losses, grads); err != nil {
			return 0, 0, err
		}
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	goruntime.GC()
	var before, after goruntime.MemStats
	goruntime.ReadMemStats(&before)
	t0 := time.Now()
	for i := 0; i < iters; i++ {
		if err := step.StepInto(params, batch, losses, grads); err != nil {
			return 0, 0, err
		}
	}
	elapsed := time.Since(t0)
	goruntime.ReadMemStats(&after)
	return elapsed.Seconds() * 1e3 / iters, float64(after.Mallocs-before.Mallocs) / iters, nil
}

// measureRuntimeSteps reproduces BenchmarkRuntimePipelineStep and
// BenchmarkRuntimeDPxPPStep outside the testing harness.
func measureRuntimeSteps() (*runtimeStepStats, error) {
	s := &runtimeStepStats{}
	step, params, batch, err := mlpTrainStep(4, 8, 8, 32, 0)
	if err != nil {
		return nil, err
	}
	defer step.Close()
	if s.PipelineStepMs, s.PipelineStepAllocs, err = measureStep(step, params, batch); err != nil {
		return nil, err
	}
	dpStep, dpParams, dpBatch, err := mlpTrainStep(4, 8, 4, 32, 2)
	if err != nil {
		return nil, err
	}
	defer dpStep.Close()
	if s.DPxPPStepMs, s.DPxPPStepAllocs, err = measureStep(dpStep, dpParams, dpBatch); err != nil {
		return nil, err
	}
	return s, nil
}

// snapshot is the machine-readable perf baseline future PRs diff against.
type snapshot struct {
	Fig6BestTFLOPSPerDevice float64               `json:"fig6_best_tflops_per_device"`
	Fig8WeakScalingEffPct   float64               `json:"fig8_weak_scaling_eff_pct"`
	Table1MeanAbsStepErrPct float64               `json:"table1_mean_abs_step_err_pct"`
	Kernels                 *kernelStats          `json:"kernels"`
	RuntimeSteps            *runtimeStepStats     `json:"runtime_steps"`
	Collective              *collectiveValidation `json:"collective_validation"`
	Wire                    *wireStats            `json:"wire"`
	Sharded                 *shardedStats         `json:"sharded"`
	Profile                 *profileBlock         `json:"profile"`
}

func buildSnapshot() (*snapshot, error) {
	s := &snapshot{}
	fig6, err := experiments.Fig6()
	if err != nil {
		return nil, err
	}
	for _, r := range fig6 {
		if r.Result.TFLOPSPerDevice > s.Fig6BestTFLOPSPerDevice {
			s.Fig6BestTFLOPSPerDevice = r.Result.TFLOPSPerDevice
		}
	}
	fig8, err := experiments.Fig8()
	if err != nil {
		return nil, err
	}
	var first, last float64
	for _, r := range fig8 {
		if r.System == "JaxPP" {
			if first == 0 {
				first = r.Result.TFLOPSPerDevice
			}
			last = r.Result.TFLOPSPerDevice
		}
	}
	if first > 0 {
		s.Fig8WeakScalingEffPct = 100 * last / first
	}
	table1, err := experiments.Table1()
	if err != nil {
		return nil, err
	}
	var sum float64
	var n int
	for _, r := range table1 {
		if r.PaperStepTime > 0 {
			e := r.Result.StepTime/r.PaperStepTime - 1
			if e < 0 {
				e = -e
			}
			sum += e
			n++
		}
	}
	if n > 0 {
		s.Table1MeanAbsStepErrPct = 100 * sum / float64(n)
	}
	s.Kernels, err = measureKernels()
	if err != nil {
		return nil, err
	}
	s.RuntimeSteps, err = measureRuntimeSteps()
	if err != nil {
		return nil, err
	}
	s.Collective, err = validateCollective()
	if err != nil {
		return nil, err
	}
	s.Wire, err = measureWire()
	if err != nil {
		return nil, err
	}
	s.Sharded, err = measureSharded()
	if err != nil {
		return nil, err
	}
	// The profile tiers run last: they arm the obs registry, and every timed
	// measurement above must finish before the gate ever flips on.
	s.Profile, err = measureProfile(s.RuntimeSteps.PipelineStepMs)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// checkRegression is the trajectory gate: it compares the fresh runtime-step
// measurements against a committed baseline snapshot and fails when step
// time or allocations regress more than maxPct percent. Allocation counts
// are deterministic; timings carry machine jitter, which is why the
// threshold is a generous 25% by default rather than a tight bound.
func checkRegression(cur, base *runtimeStepStats, maxPct float64) error {
	if base == nil {
		return fmt.Errorf("baseline snapshot has no runtime_steps block")
	}
	checks := []struct {
		name      string
		cur, base float64
	}{
		{"pipeline step ms", cur.PipelineStepMs, base.PipelineStepMs},
		{"pipeline step allocs", cur.PipelineStepAllocs, base.PipelineStepAllocs},
		{"DPxPP step ms", cur.DPxPPStepMs, base.DPxPPStepMs},
		{"DPxPP step allocs", cur.DPxPPStepAllocs, base.DPxPPStepAllocs},
	}
	for _, c := range checks {
		if c.base <= 0 {
			// A zero baseline means the snapshot is schema-drifted or
			// corrupt; fail loudly rather than silently checking nothing.
			return fmt.Errorf("baseline has no usable %q value (%v)", c.name, c.base)
		}
		if limit := c.base * (1 + maxPct/100); c.cur > limit {
			return fmt.Errorf("%s regressed: %.3f vs baseline %.3f (+%.1f%%, limit +%.0f%%)",
				c.name, c.cur, c.base, 100*(c.cur/c.base-1), maxPct)
		}
	}
	return nil
}

// loadBaseline reads a committed snapshot for the regression gate.
func loadBaseline(path string) (*snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	return &s, nil
}

// checkStepAllocs enforces the allocs-per-step ceiling, the CI gate that
// keeps the SliceRange0-copy/store-churn allocation regression class from
// silently returning.
func checkStepAllocs(rs *runtimeStepStats, maxAllocs float64) error {
	if rs.PipelineStepAllocs > maxAllocs {
		return fmt.Errorf("pipeline step allocates %.0f objects, ceiling %.0f", rs.PipelineStepAllocs, maxAllocs)
	}
	if rs.DPxPPStepAllocs > maxAllocs {
		return fmt.Errorf("DPxPP step allocates %.0f objects, ceiling %.0f", rs.DPxPPStepAllocs, maxAllocs)
	}
	return nil
}

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, fig6, fig7, fig8, fig9, fig10, table1, ablations, validate, wire, sharded, shaped")
	jsonPath := flag.String("json", "", "write a machine-readable perf snapshot to this path and exit")
	maxStepAllocs := flag.Float64("max-step-allocs", 0, "fail (exit 1) if a steady-state runtime step allocates more than this many objects; without -json only the step measurement runs")
	baselinePath := flag.String("baseline", "", "committed snapshot to diff runtime_steps against; step time or allocs more than -max-regress percent worse fail (exit 1)")
	maxRegress := flag.Float64("max-regress", 25, "allowed runtime-step regression vs -baseline, in percent")
	maxDisabledOverhead := flag.Float64("max-disabled-overhead-pct", 1, "with -json: fail (exit 1) if the disabled obs registry's estimated share of a pipeline step exceeds this percentage (0 disables)")
	wirePeer := flag.String("wire-peer", "", "internal: act as the multi-process wire-bench echo peer (coordinator address)")
	flag.Parse()

	if *wirePeer != "" {
		wirePeerMain(*wirePeer)
		return
	}

	gate := func(rs *runtimeStepStats) {
		if *maxStepAllocs > 0 {
			if err := checkStepAllocs(rs, *maxStepAllocs); err != nil {
				fmt.Fprintln(os.Stderr, "jaxpp-bench:", err)
				os.Exit(1)
			}
		}
		if *baselinePath != "" {
			base, err := loadBaseline(*baselinePath)
			if err == nil {
				err = checkRegression(rs, base.RuntimeSteps, *maxRegress)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "jaxpp-bench:", err)
				os.Exit(1)
			}
			fmt.Printf("runtime steps within %.0f%% of %s\n", *maxRegress, *baselinePath)
		}
	}

	if *jsonPath != "" {
		s, err := buildSnapshot()
		if err != nil {
			fmt.Fprintln(os.Stderr, "jaxpp-bench:", err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(s, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "jaxpp-bench:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "jaxpp-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
		gate(s.RuntimeSteps)
		if *maxDisabledOverhead > 0 && s.Profile.DisabledOverheadPct > *maxDisabledOverhead {
			fmt.Fprintf(os.Stderr, "jaxpp-bench: disabled obs registry costs %.3f%% of a pipeline step (%.1f ns/site), limit %.1f%%\n",
				s.Profile.DisabledOverheadPct, s.Profile.DisabledTrackNs, *maxDisabledOverhead)
			os.Exit(1)
		}
		return
	}

	if *maxStepAllocs > 0 || *baselinePath != "" {
		rs, err := measureRuntimeSteps()
		if err != nil {
			fmt.Fprintln(os.Stderr, "jaxpp-bench:", err)
			os.Exit(1)
		}
		fmt.Printf("pipeline step: %.3f ms, %.0f allocs; DPxPP step: %.3f ms, %.0f allocs\n",
			rs.PipelineStepMs, rs.PipelineStepAllocs, rs.DPxPPStepMs, rs.DPxPPStepAllocs)
		gate(rs)
		return
	}

	run := func(name string) error {
		switch name {
		case "fig6":
			rows, err := experiments.Fig6()
			if err != nil {
				return err
			}
			experiments.Print(os.Stdout, "Fig. 6: GPT-3 175B, TP8xPP8, 64 GPUs, GBS 128 — circular repeat sweep", rows)
		case "fig7":
			rows, err := experiments.Fig7()
			if err != nil {
				return err
			}
			experiments.Print(os.Stdout, "Fig. 7: GPT-3 175B, TP8xPP8, CR 6 — microbatch sweep", rows)
		case "fig8":
			rows, err := experiments.Fig8()
			if err != nil {
				return err
			}
			experiments.Print(os.Stdout, "Fig. 8: weak scaling, GBS = 2x GPUs", rows)
		case "fig9":
			rows, err := experiments.Fig9()
			if err != nil {
				return err
			}
			experiments.Print(os.Stdout, "Fig. 9: training performance comparison", rows)
		case "fig10":
			rows, err := experiments.Fig10()
			if err != nil {
				return err
			}
			experiments.PrintBreakdown(os.Stdout, rows)
		case "ablations":
			if err := experiments.Ablations(os.Stdout); err != nil {
				return err
			}
		case "table1":
			rows, err := experiments.Table1()
			if err != nil {
				return err
			}
			experiments.Print(os.Stdout, "Table 1: training performance", rows)
		case "validate":
			v, err := validateCollective()
			if err != nil {
				return err
			}
			fmt.Printf("Collective validation: executed bucketed ring AllReduce vs analytic dpSync\n")
			fmt.Printf("  %d ranks × %d elems, calibrated link %.2f GB/s %.1fµs/hop\n", v.Ranks, v.Elems, v.LinkGBs, v.LinkLatencyUs)
			fmt.Printf("  executed %.3fms, analytic %.3fms, ratio %.2f\n", v.ExecutedMs, v.AnalyticMs, v.Ratio)
		case "wire":
			w, err := measureWire()
			if err != nil {
				return err
			}
			fmt.Printf("Wire throughput: 4 MiB tensor ping-pongs, payload GB/s both directions\n")
			fmt.Printf("  in-process chan transport: %6.2f GB/s\n", w.ChanTransportGBs)
			fmt.Printf("  TCP local mesh (1 proc):   %6.2f GB/s\n", w.TCPLocalGBs)
			if w.MultiProcErr != "" {
				fmt.Printf("  TCP across 2 processes:    unavailable (%s)\n", w.MultiProcErr)
			} else {
				fmt.Printf("  TCP across 2 processes:    %6.2f GB/s\n", w.TCPMultiProcGBs)
			}
			fmt.Printf("Gradient wire encodings: %d-rank ring AllReduce, %d elems/rank\n", wireTierRanks, wireTierElems)
			for _, t := range w.DTypeTiers {
				fmt.Printf("  %-6s %9d B/step  %6.2f bus GB/s\n", t.DType, t.BytesPerStep, t.BusGBs)
			}
		case "shaped":
			v, err := validateShaped(dist.ShapeOpts{
				Latency: 2 * time.Millisecond, Jitter: 500 * time.Microsecond,
				BandwidthGBs: 1, Seed: 7,
			})
			if err != nil {
				return err
			}
			fmt.Printf("Shaped-network validation: executed bucketed ring AllReduce vs analytic, links shaped %s\n", v.Shape)
			fmt.Printf("  %d ranks × %d elems, calibrated link %.2f GB/s %.0fµs/hop\n", v.Ranks, v.Elems, v.LinkGBs, v.LinkLatencyUs)
			fmt.Printf("  executed %.3fms, analytic %.3fms, ratio %.2f (band [%.1f, %.1f])\n",
				v.ExecutedMs, v.AnalyticMs, v.Ratio, shapedRatioLo, shapedRatioHi)
			if v.Ratio < shapedRatioLo || v.Ratio > shapedRatioHi {
				return fmt.Errorf("shaped validation: executed/analytic ratio %.2f outside [%.1f, %.1f] — the calibration model no longer tracks a degraded network", v.Ratio, shapedRatioLo, shapedRatioHi)
			}
		case "sharded":
			sh, err := measureSharded()
			if err != nil {
				return err
			}
			fmt.Printf("ZeRO-sharded epilogue: %d ranks × %d elems over TCP endpoints\n", sh.Ranks, sh.Elems)
			fmt.Printf("  optimizer state per rank: dense %d B, sharded %d B (%.1f%%)\n",
				sh.DenseOptStateBytes, sh.ShardedOptStateBytes, sh.ShardedOptStatePct)
			fmt.Printf("  dense AllReduce:          %6.2f bus GB/s\n", sh.DenseAllReduceBusGBs)
			fmt.Printf("  ReduceScatterV+AllGatherV:%6.2f bus GB/s (same wire volume)\n", sh.ExchangeBusGBs)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		fmt.Println()
		return nil
	}

	names := []string{*exp}
	if *exp == "all" {
		names = []string{"fig6", "fig7", "fig8", "fig9", "fig10", "table1", "ablations", "validate", "wire", "sharded", "shaped"}
	}
	for _, n := range names {
		if err := run(n); err != nil {
			fmt.Fprintln(os.Stderr, "jaxpp-bench:", err)
			os.Exit(1)
		}
	}
}
