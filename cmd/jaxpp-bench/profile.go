package main

import (
	"time"

	jaxpp "repro"
	"repro/internal/obs"
)

// Profile tier: the obs registry's compute/wire/idle breakdown of profiled
// steady-state steps, run separately from (and after) the timed loops so
// enabling the registry never contaminates the gated step-time measurements.

// tierProfile is one tier's breakdown. Fractions are of classified leaf-span
// time (compute + wire + idle), not wall time: spans on concurrent actors
// overlap, so the three classes describe where runtime effort goes, summing
// to 1.
type tierProfile struct {
	ComputeMs   float64 `json:"compute_ms"`
	WireMs      float64 `json:"wire_ms"`
	IdleMs      float64 `json:"idle_ms"`
	ComputeFrac float64 `json:"compute_frac"`
	WireFrac    float64 `json:"wire_frac"`
	IdleFrac    float64 `json:"idle_frac"`
}

// profileBlock joins the committed BENCH trajectory: per-tier breakdowns plus
// the two numbers the zero-overhead claim rests on — the measured cost of a
// disabled Track/Stop pair and the scratch-pool hit rate under load.
type profileBlock struct {
	Pipeline        *tierProfile `json:"pipeline"`
	DPxPP           *tierProfile `json:"dpxpp"`
	WireCollective  *tierProfile `json:"wire_collective"`
	DisabledTrackNs float64      `json:"disabled_track_ns"`
	// Disabled/EnabledStepRecordNs measure the per-step telemetry publish:
	// one obs.RecordStep into the lock-free step ring with the gate off
	// (one atomic load) and on (a seqlock slot publish). Both are
	// allocation-free; the disabled cost joins the overhead estimate below.
	DisabledStepRecordNs float64 `json:"disabled_step_record_ns"`
	EnabledStepRecordNs  float64 `json:"enabled_step_record_ns"`
	// DisabledOverheadPct estimates the disabled registry's share of a
	// pipeline step: tracked scope hits per step × the measured disabled
	// Track/Stop cost, plus one disabled per-step telemetry record, over
	// the gated step time. CI pins this ≤ 1%.
	DisabledOverheadPct float64 `json:"disabled_overhead_pct"`
	PoolHitRatePct      float64 `json:"pool_hit_rate_pct"`
}

// profileSteps is how many steady-state steps each tier records.
const profileSteps = 10

// profileUnder runs fn with the obs registry armed and returns the resulting
// breakdown plus the raw snapshot (for counter extraction).
func profileUnder(fn func() error) (*tierProfile, *obs.Snapshot, error) {
	obs.SnapshotAndReset()
	obs.Enable()
	defer obs.Disable()
	if err := fn(); err != nil {
		return nil, nil, err
	}
	snap := obs.SnapshotAndReset()
	c, w, i := snap.Breakdown()
	tp := &tierProfile{
		ComputeMs: c.Seconds() * 1e3,
		WireMs:    w.Seconds() * 1e3,
		IdleMs:    i.Seconds() * 1e3,
	}
	if total := c + w + i; total > 0 {
		tp.ComputeFrac = float64(c) / float64(total)
		tp.WireFrac = float64(w) / float64(total)
		tp.IdleFrac = float64(i) / float64(total)
	}
	return tp, snap, nil
}

// measureProfile builds the snapshot's profile block: pipeline and DP×PP
// training-step tiers, the wire-collective tier (bucketed ring AllReduce over
// TCP endpoints), the disabled-gate cost, and the pooled-scratch hit rate
// aggregated across all three profiled tiers. pipelineStepMs is the gated
// (registry-off) pipeline step time, the denominator of the disabled-overhead
// estimate.
func measureProfile(pipelineStepMs float64) (*profileBlock, error) {
	pb := &profileBlock{}

	// Disabled-gate cost: a Track/Stop pair with the registry off. With a few
	// hundred instrumentation points per step, this × count is the whole
	// disabled overhead — single-digit ns keeps it far under the ≤1%
	// step-delta budget the CI bench-regression gate enforces end to end.
	gateScope := obs.Scope("bench/disabled_gate")
	obs.Disable()
	const gateIters = 1 << 20
	t0 := time.Now()
	for i := 0; i < gateIters; i++ {
		h := obs.Track(gateScope)
		h.Stop()
	}
	pb.DisabledTrackNs = time.Since(t0).Seconds() * 1e9 / gateIters

	// Per-step telemetry publish cost, both sides of the gate. The sample is
	// stack-built each iteration like the real call site (stepSampler.record
	// assembles it from live aggregates).
	obs.DisableSteps()
	t0 = time.Now()
	for i := 0; i < gateIters; i++ {
		obs.RecordStep(obs.StepSample{Rank: 1, Step: int64(i)})
	}
	pb.DisabledStepRecordNs = time.Since(t0).Seconds() * 1e9 / gateIters
	obs.EnableSteps()
	t0 = time.Now()
	for i := 0; i < gateIters; i++ {
		obs.RecordStep(obs.StepSample{Rank: 1, Step: int64(i)})
	}
	pb.EnabledStepRecordNs = time.Since(t0).Seconds() * 1e9 / gateIters
	obs.DisableSteps()

	var hit, miss float64
	countPool := func(snap *obs.Snapshot) {
		hit += float64(snap.CounterValue("pool/hit"))
		miss += float64(snap.CounterValue("pool/miss"))
	}
	tier := func(stages, mbRows, numMB, width, dp int) (*tierProfile, *obs.Snapshot, error) {
		step, params, batch, err := mlpTrainStep(stages, mbRows, numMB, width, dp)
		if err != nil {
			return nil, nil, err
		}
		defer step.Close()
		losses := make([]*jaxpp.Tensor, step.NumReplicas()*step.NumMicrobatches())
		grads := make([]*jaxpp.Tensor, len(params))
		for i := 0; i < 3; i++ { // warm outside the profiled window
			if err := step.StepInto(params, batch, losses, grads); err != nil {
				return nil, nil, err
			}
		}
		tp, snap, err := profileUnder(func() error {
			for i := 0; i < profileSteps; i++ {
				if err := step.StepInto(params, batch, losses, grads); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return nil, nil, err
		}
		countPool(snap)
		return tp, snap, nil
	}

	pipe, pipeSnap, err := tier(4, 8, 8, 32, 0)
	if err != nil {
		return nil, err
	}
	pb.Pipeline = pipe
	if pipelineStepMs > 0 {
		var calls int64
		for _, sc := range pipeSnap.Scopes {
			calls += sc.Count
		}
		callsPerStep := float64(calls) / profileSteps
		pb.DisabledOverheadPct = 100 * (callsPerStep*pb.DisabledTrackNs + pb.DisabledStepRecordNs) / (pipelineStepMs * 1e6)
	}
	if pb.DPxPP, _, err = tier(4, 8, 4, 32, 2); err != nil {
		return nil, err
	}
	wc, wcSnap, err := profileUnder(func() error {
		_, err := measureWireCollective(wireCollectiveRanks, wireCollectiveElems)
		return err
	})
	if err != nil {
		return nil, err
	}
	pb.WireCollective = wc
	countPool(wcSnap)
	if hit+miss > 0 {
		pb.PoolHitRatePct = 100 * hit / (hit + miss)
	}
	return pb, nil
}
