package main

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"time"

	"repro/internal/collective"
	"repro/internal/dist"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

// Wire throughput benchmark: tagged tensor ping-pongs between two actors on
// each transport tier — in-process channels, localhost TCP inside one
// process (LocalMesh), and real multi-process TCP (a re-exec'd child joins
// over the coordinator rendezvous) — so the binary wire protocol's cost
// shows up next to the in-process numbers it replaces gob for.

const (
	wireElems = 1 << 19 // 4 MiB payloads
	wireIters = 24
	wireWarm  = 4
)

type wireStats struct {
	// GB/s of payload moved (both directions counted) per transport tier.
	ChanTransportGBs float64 `json:"chan_transport_gbs"`
	TCPLocalGBs      float64 `json:"tcp_local_gbs"`
	TCPMultiProcGBs  float64 `json:"tcp_multiprocess_gbs,omitempty"`
	MultiProcErr     string  `json:"multiprocess_error,omitempty"`
	// Wire-collective tier: bucketed ring AllReduce over TCP endpoints
	// (dist.LocalMesh), reported as NCCL-style bus bandwidth
	// (2·(n−1)/n · bytes / time) — the throughput the distributed gradient
	// epilogue sees, as opposed to the point-to-point tiers above.
	CollectiveRanks  int     `json:"tcp_collective_ranks,omitempty"`
	CollectiveBusGBs float64 `json:"tcp_collective_busgbs,omitempty"`
	// DTypeTiers repeats the collective tier once per gradient wire encoding
	// (f64/f32/int8q) with per-round wire-byte accounting, so the snapshot
	// diff shows compression actually shrinking traffic (f32 must be half of
	// f64's bytes per step) and what it buys in bus bandwidth.
	DTypeTiers []wireTier `json:"dtype_tiers,omitempty"`
}

// wireTier is one per-dtype wire-collective measurement: the wire payload
// bytes one bucketed ring AllReduce moves across all ranks, and the bus
// bandwidth achieved.
type wireTier struct {
	DType        string  `json:"dtype"`
	BytesPerStep int64   `json:"bytes_per_step"`
	BusGBs       float64 `json:"bus_gbs"`
}

// wireTierRanks/Elems size the per-dtype tiers: 4 TCP endpoints reducing
// 2 MiB per rank (smaller than the f64 headline tier — three encodings run).
const (
	wireTierRanks = 4
	wireTierElems = 1 << 18
)

// measureWireTier runs the wire collective with every data frame encoded as
// dt (the mesh marks its whole tag space lossy) and accounts wire payload
// bytes per all-reduce round from the transport's dtype-aware send counters.
// f64 and f32 verify the reduction exactly — MeasureAllReduce's integer
// payloads are f32-exact — while int8q, lossy by design, gets a 1% band: its
// constant per-rank chunks quantize back to themselves modulo ulp-level
// scale recomputation around the ring.
func measureWireTier(dt dist.DType, n, elems int) (wireTier, error) {
	mesh, err := dist.NewLocalMesh(n, dist.Options{DType: dt})
	if err != nil {
		return wireTier{}, err
	}
	defer mesh.Close()
	_, bytesBefore := mesh.SendCount()
	dur, out, err := collective.MeasureAllReduce(mesh, n, elems, collective.DefaultBucketBytes)
	if err != nil {
		return wireTier{}, fmt.Errorf("wire tier %s: %w", dt, err)
	}
	_, bytesAfter := mesh.SendCount()
	want := float64(n * (n + 1) / 2)
	got := out.Data()[0]
	if dt == dist.DTInt8Q {
		if rel := math.Abs(got-want) / want; rel > 0.01 {
			return wireTier{}, fmt.Errorf("wire tier %s: reduced value %v strays %.2e from %v", dt, got, rel, want)
		}
	} else if got != want {
		return wireTier{}, fmt.Errorf("wire tier %s: reduced value %v, want %v", dt, got, want)
	}
	bus := 2 * float64(n-1) / float64(n) * float64(elems*8)
	return wireTier{
		DType:        dt.String(),
		BytesPerStep: (bytesAfter - bytesBefore) / collective.MeasureAllReduceRounds,
		BusGBs:       bus / dur.Seconds() / 1e9,
	}, nil
}

// measureWireTiers runs the per-dtype tiers and cross-checks the headline
// compression claim: f32 traffic must be exactly half of f64's (payload
// accounting is deterministic — same frames, half the bytes per element).
func measureWireTiers() ([]wireTier, error) {
	var tiers []wireTier
	for _, dt := range []dist.DType{dist.DTF64, dist.DTF32, dist.DTInt8Q} {
		t, err := measureWireTier(dt, wireTierRanks, wireTierElems)
		if err != nil {
			return nil, err
		}
		tiers = append(tiers, t)
	}
	if f64, f32 := tiers[0].BytesPerStep, tiers[1].BytesPerStep; f32*2 != f64 {
		return nil, fmt.Errorf("wire tiers: f32 moves %d B/step vs f64 %d — expected exactly half", f32, f64)
	}
	return tiers, nil
}

const wireTagOut, wireTagBack = 1 << 16, 1<<16 + 1

// pingPongSender runs the timing half of a ping-pong against actor 1 on any
// transport: send wireElems-float64 tensors under tagOut, receive the echo
// under tagBack, report payload GB/s both directions. senderOwns selects
// the transport's Send ownership contract: false for ChanTransport (the
// tensor reference moves to the receiver), true for the dist wire tiers
// (Send serializes; the caller keeps the pool-owned tensor and must Recycle
// it — skipping that would flood the timed loop with 4 MiB garbage and
// measure GC pressure instead of the wire). The echo peer runs elsewhere: a
// goroutine for the in-process tiers, a child process for the cross-process
// tier.
func pingPongSender(tr runtime.Transport, iters int, senderOwns bool) (float64, error) {
	payload := make([]float64, wireElems)
	for i := range payload {
		payload[i] = float64(i)
	}
	var t0 time.Time
	for i := 0; i < iters; i++ {
		if i == wireWarm {
			t0 = time.Now()
		}
		out := tensor.GetScratch(wireElems)
		out.CopyFrom(payload)
		tr.Send(0, 1, wireTagOut, out)
		if senderOwns {
			tensor.Recycle(out)
		}
		back, err := tr.Recv(0, 1, wireTagBack)
		if err != nil {
			return 0, err
		}
		tensor.Recycle(back)
	}
	elapsed := time.Since(t0).Seconds()
	bytes := float64(2*(iters-wireWarm)) * float64(wireElems*8)
	return bytes / elapsed / 1e9, nil
}

// pingPong is pingPongSender with an in-process echo peer on actor 1.
func pingPong(tr runtime.Transport, iters int, senderOwns bool) (float64, error) {
	errCh := make(chan error, 1)
	go func() {
		for i := 0; i < iters; i++ {
			t, err := tr.Recv(1, 0, wireTagOut)
			if err != nil {
				errCh <- err
				return
			}
			tr.Send(1, 0, wireTagBack, t)
			if senderOwns {
				tensor.Recycle(t)
			}
		}
		errCh <- nil
	}()
	gbs, err := pingPongSender(tr, iters, senderOwns)
	if err != nil {
		return 0, err
	}
	if err := <-errCh; err != nil {
		return 0, err
	}
	return gbs, nil
}

// wirePeerMain is the child-process role: join the coordinator and echo.
// Entered via the hidden -wire-peer flag.
func wirePeerMain(coordinator string) {
	sess, err := dist.Join(coordinator, dist.SessionOptions{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "jaxpp-bench -wire-peer:", err)
		os.Exit(1)
	}
	defer sess.Close()
	var iters int
	if err := json.Unmarshal(sess.Job, &iters); err != nil {
		fmt.Fprintln(os.Stderr, "jaxpp-bench -wire-peer:", err)
		os.Exit(1)
	}
	tr := sess.Transport
	for i := 0; i < iters; i++ {
		t, err := tr.Recv(1, 0, wireTagOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "jaxpp-bench -wire-peer:", err)
			os.Exit(1)
		}
		tr.Send(1, 0, wireTagBack, t)
		tensor.Recycle(t)
	}
	if err := sess.Barrier(); err != nil {
		fmt.Fprintln(os.Stderr, "jaxpp-bench -wire-peer:", err)
		os.Exit(1)
	}
}

// measureMultiProc re-execs this binary as the echo peer and measures the
// cross-process wire path. Picking a coordinator port by probing :0 and
// closing the probe is inherently racy (another process can bind it before
// Coordinate does), so a failed rendezvous retries on a fresh port instead
// of flaking the snapshot.
func measureMultiProc() (float64, error) {
	self, err := os.Executable()
	if err != nil {
		return 0, err
	}
	job, _ := json.Marshal(wireIters)
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		addr := ln.Addr().String()
		ln.Close()

		child := exec.Command(self, "-wire-peer", addr)
		child.Stderr = os.Stderr
		if err := child.Start(); err != nil {
			return 0, err
		}
		sess, err := dist.Coordinate(addr, 2, job, dist.SessionOptions{RendezvousTimeout: 30 * time.Second})
		if err != nil {
			child.Process.Kill()
			child.Wait()
			lastErr = err
			continue
		}
		gbs, err := pingPongSender(sess.Transport, wireIters, true)
		if err == nil {
			err = sess.Barrier()
		}
		sess.Close()
		child.Wait()
		if err != nil {
			return 0, err
		}
		return gbs, nil
	}
	return 0, lastErr
}

// wireCollectiveRanks/Elems size the wire-collective tier: 8 TCP endpoints
// (the CI smoke's world) ring-all-reducing 2 MiB per rank.
const (
	wireCollectiveRanks = 8
	wireCollectiveElems = 1 << 18
)

// measureWireCollective times a bucketed ring AllReduce across TCP
// endpoints inside one process and converts the steady-state duration to
// bus bandwidth, verifying the reduction on the way (integer payloads sum
// exactly).
func measureWireCollective(n, elems int) (float64, error) {
	mesh, err := dist.NewLocalMesh(n, dist.Options{})
	if err != nil {
		return 0, err
	}
	defer mesh.Close()
	dur, out, err := collective.MeasureAllReduce(mesh, n, elems, collective.DefaultBucketBytes)
	if err != nil {
		return 0, fmt.Errorf("wire collective: %w", err)
	}
	want := float64(n * (n + 1) / 2) // MeasureAllReduce ranks contribute r+1
	if got := out.Data()[0]; got != want {
		return 0, fmt.Errorf("wire collective: reduced value %v, want %v", got, want)
	}
	bus := 2 * float64(n-1) / float64(n) * float64(elems*8)
	return bus / dur.Seconds() / 1e9, nil
}

// measureWire runs all four tiers. The multi-process tier degrades to an
// error note instead of failing the snapshot (sandboxes may forbid exec).
func measureWire() (*wireStats, error) {
	s := &wireStats{}
	var err error
	if s.ChanTransportGBs, err = pingPong(runtime.NewChanTransport(), wireIters, false); err != nil {
		return nil, fmt.Errorf("chan transport: %w", err)
	}
	mesh, err := dist.NewLocalMesh(2, dist.Options{})
	if err != nil {
		return nil, err
	}
	s.TCPLocalGBs, err = pingPong(mesh, wireIters, true)
	mesh.Close()
	if err != nil {
		return nil, fmt.Errorf("tcp local mesh: %w", err)
	}
	if gbs, err := measureMultiProc(); err != nil {
		s.MultiProcErr = err.Error()
	} else {
		s.TCPMultiProcGBs = gbs
	}
	s.CollectiveRanks = wireCollectiveRanks
	if s.CollectiveBusGBs, err = measureWireCollective(wireCollectiveRanks, wireCollectiveElems); err != nil {
		return nil, err
	}
	if s.DTypeTiers, err = measureWireTiers(); err != nil {
		return nil, err
	}
	return s, nil
}

// shapedValidation is the degraded-network calibration check: the same
// executed-vs-analytic comparison as collective_validation, but over links
// shaped with real latency and a bandwidth cap — validating that the
// calibration model's prediction still tracks execution when the network is
// slow, not just on localhost.
type shapedValidation struct {
	Ranks         int     `json:"ranks"`
	Elems         int     `json:"elems"`
	Shape         string  `json:"shape"`
	LinkGBs       float64 `json:"link_gbs"`
	LinkLatencyUs float64 `json:"link_latency_us"`
	ExecutedMs    float64 `json:"executed_ms"`
	AnalyticMs    float64 `json:"analytic_ms"`
	Ratio         float64 `json:"ratio"`
}

// shapedMesh routes each actor's sends through its own link shaper over a
// shared LocalMesh, so a whole in-process world sees the modeled network.
type shapedMesh struct {
	mesh *dist.LocalMesh
	eps  []*dist.ShapedTransport
}

func newShapedMesh(n int, opts dist.ShapeOpts) (*shapedMesh, error) {
	mesh, err := dist.NewLocalMesh(n, dist.Options{})
	if err != nil {
		return nil, err
	}
	m := &shapedMesh{mesh: mesh}
	for r := 0; r < n; r++ {
		m.eps = append(m.eps, dist.NewShapedTransport(mesh.Endpoint(r), opts))
	}
	return m, nil
}

func (m *shapedMesh) Send(from, to, tag int, t *tensor.Tensor) { m.eps[from].Send(from, to, tag, t) }
func (m *shapedMesh) Recv(to, from, tag int) (*tensor.Tensor, error) {
	return m.mesh.Recv(to, from, tag)
}
func (m *shapedMesh) SenderOwnsSent() bool { return true }
func (m *shapedMesh) Err() error           { return m.mesh.Err() }
func (m *shapedMesh) Poison(err error)     { m.mesh.Poison(err) }
func (m *shapedMesh) Close() {
	for _, ep := range m.eps {
		ep.Stop()
	}
	m.mesh.Close()
}

// validateShaped calibrates a shaped link pair, measures a bucketed ring
// AllReduce over a shaped 4-rank mesh, and compares against the analytic
// prediction under the calibrated link. The shape adds enough latency that
// both numbers are dominated by the modeled network rather than goroutine
// scheduling — which is exactly why the prediction must track execution
// here if the calibration model is to be trusted off-localhost.
func validateShaped(shape dist.ShapeOpts) (*shapedValidation, error) {
	const ranks, elems = 4, 1 << 18
	m, err := newShapedMesh(ranks, shape)
	if err != nil {
		return nil, err
	}
	defer m.Close()
	link := collective.Calibrate(m, 0, 1)
	measured, out, err := collective.MeasureAllReduce(m, ranks, elems, collective.DefaultBucketBytes)
	if err != nil {
		return nil, fmt.Errorf("shaped collective: %w", err)
	}
	// Shaping delays frames but never alters payload bits: the f64 reduction
	// must still verify exactly.
	if want := float64(ranks * (ranks + 1) / 2); out.Data()[0] != want {
		return nil, fmt.Errorf("shaped collective: reduced value %v, want %v", out.Data()[0], want)
	}
	predicted := collective.PredictBucketedAllReduce(collective.RingLink(link, ranks), []int{elems}, ranks, collective.DefaultBucketBytes)
	return &shapedValidation{
		Ranks:         ranks,
		Elems:         elems,
		Shape:         shape.String(),
		LinkGBs:       link.BwGBs,
		LinkLatencyUs: link.Latency * 1e6,
		ExecutedMs:    measured.Seconds() * 1e3,
		AnalyticMs:    predicted * 1e3,
		Ratio:         measured.Seconds() / predicted,
	}, nil
}
