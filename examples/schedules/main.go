// Schedules example: compare GPipe, 1F1B, and Interleaved 1F1B on (a) the
// functional runtime — same gradients, different peak memory — and (b) the
// calibrated GPT-3 175B simulator — different step times (the §2.2.1 story).
package main

import (
	"fmt"
	"log"

	jaxpp "repro"
)

func functionalComparison() {
	const (
		width, mbRows, numMB, stages = 16, 4, 12, 4
	)
	rng := jaxpp.NewRNG(3)
	params := make([]*jaxpp.Tensor, stages)
	for i := range params {
		params[i] = rng.Xavier(width, width)
	}
	x := rng.Normal(1, numMB*mbRows, width)
	y := rng.OneHotBatch(numMB*mbRows, width)

	type result struct {
		name     string
		loss     float64
		peak     int64
		gradHash float64
	}
	var results []result
	scheds := map[string]*jaxpp.Schedule{
		"gpipe": jaxpp.GPipe(stages, numMB),
		"1f1b":  jaxpp.OneFOneB(stages, numMB),
	}
	if il, err := jaxpp.Interleaved1F1B(2, numMB, 2); err == nil {
		_ = il // interleaving needs a 4-stage model on 2 actors; shown in the transformer example
	}
	for name, sched := range scheds {
		mesh := jaxpp.NewRemoteMesh(stages)
		step, err := mesh.Compile(jaxpp.CompileSpec{
			Loss: func(b *jaxpp.Builder, params, mb []*jaxpp.Value) *jaxpp.Value {
				h := mb[0]
				for i, w := range params {
					h = b.ReLU(b.MatMul(h, w))
					if i+1 < len(params) {
						h = b.PipelineYield(h)
					}
				}
				return b.CrossEntropy(h, mb[1])
			},
			ParamShapes: [][]int{{width, width}, {width, width}, {width, width}, {width, width}},
			BatchShapes: [][]int{{mbRows, width}, {mbRows, width}},
			Schedule:    sched,
		})
		if err != nil {
			log.Fatal(err)
		}
		losses, grads, err := step.Step(params, []*jaxpp.Tensor{x, y})
		if err != nil {
			log.Fatal(err)
		}
		total := 0.0
		for _, l := range losses {
			total += l.Data()[0]
		}
		var peak int64
		for _, st := range step.MemoryStats() {
			if st.PeakBytes > peak {
				peak = st.PeakBytes
			}
		}
		hash := 0.0
		for _, g := range grads {
			for _, v := range g.Data() {
				hash += v * v
			}
		}
		results = append(results, result{name, total / numMB, peak, hash})
	}
	fmt.Println("functional runtime (identical gradients, different memory):")
	for _, r := range results {
		fmt.Printf("  %-6s loss=%.6f  grad|·|²=%.6f  peak store=%6.1f KiB\n",
			r.name, r.loss, r.gradHash, float64(r.peak)/1024)
	}
	if len(results) == 2 && results[0].gradHash != results[1].gradHash {
		diff := results[0].gradHash - results[1].gradHash
		if diff > 1e-9 || diff < -1e-9 {
			log.Fatal("schedules produced different gradients!")
		}
	}
}

func simulatedComparison() {
	fmt.Println("\nGPT-3 175B on 64 H100s (simulator), GBS 128, TP8×PP8:")
	base := jaxpp.SimConfig{
		Model: jaxpp.GPT3175B(), Cluster: jaxpp.EOSCluster(),
		GPUs: 64, TP: 8, PP: 8, DP: 1, GlobalBatch: 128, Microbatch: 4,
	}
	for _, c := range []struct {
		name   string
		sched  string
		repeat int
	}{
		{"gpipe", "gpipe", 1},
		{"1f1b", "1f1b", 1},
		{"interleaved r=6", "interleaved_1f1b", 6},
	} {
		cfg := base
		cfg.Schedule = jaxpp.SimScheduleKind(c.sched)
		cfg.CircularRepeat = c.repeat
		res, err := jaxpp.SimulateJaxPP(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-16s step %6.2fs  %4.0f TFLOPS/device  remat=%-5v  bubble %.1f%%\n",
			c.name, res.StepTime, res.TFLOPSPerDevice, res.Remat, 100*res.BubbleFraction)
	}
}

func main() {
	functionalComparison()
	simulatedComparison()
}
