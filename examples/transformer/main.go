// Transformer example: a small GPT-style stack of residual FFN blocks with a
// tied input/output projection, pipelined over 2 actors with Interleaved
// 1F1B (circular repeat 2 → 4 stages), exercising loop commuting (§3.4) for
// the tied weight's gradient and SPMD execution inside each actor.
package main

import (
	"fmt"
	"log"

	jaxpp "repro"
)

const (
	hidden = 24
	vocab  = 24 // tied projection requires vocab == hidden here
	mbRows = 6
	numMB  = 8
	actors = 2
	repeat = 2 // circular repeat: 4 stages on 2 actors
	steps  = 15
	lr     = 0.05
)

func block(b *jaxpp.Builder, h *jaxpp.Value, w1, w2 *jaxpp.Value) *jaxpp.Value {
	// Pre-norm-free residual FFN block: h + W2·relu(W1·h).
	ff := b.MatMul(b.ReLU(b.MatMul(h, w1)), w2)
	return b.Add(h, ff)
}

func main() {
	mesh := jaxpp.NewRemoteMesh(actors)
	sched, err := jaxpp.Interleaved1F1B(actors, numMB, repeat)
	if err != nil {
		log.Fatal(err)
	}

	// Parameters: tied embedding E (used in stage 0 and, transposed, in the
	// last stage) plus per-stage FFN weights.
	paramShapes := [][]int{{vocab, hidden}} // E
	numStages := actors * repeat
	for s := 0; s < numStages; s++ {
		paramShapes = append(paramShapes, []int{hidden, 2 * hidden}, []int{2 * hidden, hidden})
	}

	step, err := mesh.Compile(jaxpp.CompileSpec{
		Loss: func(b *jaxpp.Builder, params, mb []*jaxpp.Value) *jaxpp.Value {
			x, y := mb[0], mb[1]
			e := params[0]
			h := b.MatMul(x, e) // "embedding"
			for s := 0; s < numStages; s++ {
				h = block(b, h, params[1+2*s], params[2+2*s])
				if s+1 < numStages {
					h = b.PipelineYield(h)
				}
			}
			logits := b.MatMul(h, b.Transpose(e)) // tied output projection
			return b.CrossEntropy(logits, y)
		},
		ParamShapes:             paramShapes,
		BatchShapes:             [][]int{{mbRows, vocab}, {mbRows, vocab}},
		Schedule:                sched,
		CommuteGradAccumulation: true, // §3.4: one transfer per step, not per microbatch
		SPMDDevicesPerActor:     2,    // SPMD inside each MPMD actor
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled tied-embedding transformer: %d stages on %d actors (repeat %d)\n",
		step.NumStages(), actors, repeat)

	rng := jaxpp.NewRNG(7)
	params := []*jaxpp.Tensor{rng.Xavier(vocab, hidden)}
	for s := 0; s < numStages; s++ {
		params = append(params, rng.Xavier(hidden, 2*hidden), rng.Xavier(2*hidden, hidden))
	}
	x := rng.OneHotBatch(numMB*mbRows, vocab) // one-hot "token" inputs
	y := rng.OneHotBatch(numMB*mbRows, vocab)

	var first, last float64
	for s := 0; s < steps; s++ {
		losses, grads, err := step.Step(params, []*jaxpp.Tensor{x, y})
		if err != nil {
			log.Fatal(err)
		}
		total := 0.0
		for _, l := range losses {
			total += l.Data()[0]
		}
		mean := total / float64(numMB)
		if s == 0 {
			first = mean
		}
		last = mean
		if s%5 == 0 || s == steps-1 {
			fmt.Printf("step %2d  loss %.4f\n", s, mean)
		}
		for i := range params {
			d := make([]float64, grads[i].Size())
			for j, g := range grads[i].Data() {
				d[j] = params[i].Data()[j] - lr*g
			}
			shape := params[i].Shape()
			p, err := jaxpp.TensorFromSlice(d, shape...)
			if err != nil {
				log.Fatal(err)
			}
			params[i] = p
		}
	}
	if !(last < first) { // also catches NaN
		log.Fatalf("loss did not improve: %.4f -> %.4f", first, last)
	}
	fmt.Printf("loss improved %.4f -> %.4f with tied weights, loop commuting, and MPMD-of-SPMD\n", first, last)
}
