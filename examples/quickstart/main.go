// Quickstart: train a 3-stage MLP with MPMD 1F1B pipeline parallelism over
// 3 actors and verify the pipelined gradients match single-device gradient
// accumulation exactly.
package main

import (
	"fmt"
	"log"

	jaxpp "repro"
)

const (
	width  = 32
	mbRows = 8  // rows per microbatch
	numMB  = 6  // gradient accumulation count
	stages = 3  // pipeline stages == actors
	steps  = 20 // training steps
	lr     = 0.5
)

func main() {
	mesh := jaxpp.NewRemoteMesh(stages)

	step, err := mesh.Compile(jaxpp.CompileSpec{
		// The microbatch loss function: written once, no collectives, no
		// explicit communication; pipeline_yield marks the stage cuts.
		Loss: func(b *jaxpp.Builder, params, mb []*jaxpp.Value) *jaxpp.Value {
			x, y := mb[0], mb[1]
			h := b.ReLU(b.MatMul(x, params[0]))
			h = b.PipelineYield(h) // end of stage 0
			h = b.ReLU(b.MatMul(h, params[1]))
			h = b.PipelineYield(h) // end of stage 1
			return b.CrossEntropy(b.MatMul(h, params[2]), y)
		},
		ParamShapes: [][]int{{width, width}, {width, width}, {width, width}},
		BatchShapes: [][]int{{mbRows, width}, {mbRows, width}},
		Schedule:    jaxpp.OneFOneB(stages, numMB),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d stages, %d microbatches, 1F1B over %d actors\n",
		step.NumStages(), step.NumMicrobatches(), stages)

	rng := jaxpp.NewRNG(42)
	params := []*jaxpp.Tensor{
		rng.Xavier(width, width),
		rng.Xavier(width, width),
		rng.Xavier(width, width),
	}
	// A fixed synthetic classification batch (global batch = numMB × mbRows).
	x := rng.Normal(1, numMB*mbRows, width)
	y := rng.OneHotBatch(numMB*mbRows, width)

	for s := 0; s < steps; s++ {
		losses, grads, err := step.Step(params, []*jaxpp.Tensor{x, y})
		if err != nil {
			log.Fatal(err)
		}
		total := 0.0
		for _, l := range losses {
			total += l.Data()[0]
		}
		if s%5 == 0 || s == steps-1 {
			fmt.Printf("step %2d  mean microbatch loss %.4f\n", s, total/float64(numMB))
		}
		for i := range params {
			scaled := make([]float64, grads[i].Size())
			for j, g := range grads[i].Data() {
				scaled[j] = params[i].Data()[j] - lr*g
			}
			p, err := jaxpp.TensorFromSlice(scaled, width, width)
			if err != nil {
				log.Fatal(err)
			}
			params[i] = p
		}
	}

	for a, st := range step.MemoryStats() {
		fmt.Printf("actor %d: peak %d buffers, %.1f KiB; %d deferred deletions\n",
			a, st.PeakBufs, float64(st.PeakBytes)/1024, st.DeferredDeletes)
	}
	fmt.Println("done: loss decreased under MPMD 1F1B pipeline execution")
}
