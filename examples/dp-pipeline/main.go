// DP×PP: train a 2-stage pipeline replicated over 2 data-parallel replicas
// — 4 actors on a [("data", 2), ("pipe", 2)] mesh — on the real MPMD actor
// runtime. Each replica accumulates gradients over its own shard of the
// global batch; at step end the gradient-owning actors run a bucketed ring
// AllReduce across replicas on the executable collective engine, overlapping
// with pipeline cooldown. The run cross-checks the executed sync time
// against the simulator's analytic dpSync formula under a calibrated link.
package main

import (
	"fmt"
	"log"

	jaxpp "repro"
	"repro/internal/collective"
	"repro/internal/runtime"
)

const (
	width  = 32
	mbRows = 8 // rows per microbatch
	numMB  = 4 // gradient accumulation count per replica
	stages = 2 // pipeline stages per replica
	dp     = 2 // data-parallel replicas
	steps  = 20
	lr     = 0.2
)

func main() {
	mesh := jaxpp.NewRemoteMesh(dp * stages) // [("data", 2), ("pipe", 2)]

	step, err := mesh.Compile(jaxpp.CompileSpec{
		Loss: func(b *jaxpp.Builder, params, mb []*jaxpp.Value) *jaxpp.Value {
			h := b.ReLU(b.MatMul(mb[0], params[0]))
			h = b.PipelineYield(h) // stage cut
			return b.CrossEntropy(b.MatMul(h, params[1]), mb[1])
		},
		ParamShapes:  [][]int{{width, width}, {width, width}},
		BatchShapes:  [][]int{{mbRows, width}, {mbRows, width}},
		Schedule:     jaxpp.OneFOneB(stages, numMB),
		DataParallel: dp,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled: %d stages × %d replicas, 1F1B, %d microbatches/replica\n",
		step.NumStages(), step.NumReplicas(), step.NumMicrobatches())

	rng := jaxpp.NewRNG(42)
	params := []*jaxpp.Tensor{rng.Xavier(width, width), rng.Xavier(width, width)}
	// Global batch: dp × numMB microbatches, replica-major.
	x := rng.Normal(1, dp*numMB*mbRows, width)
	y := rng.OneHotBatch(dp*numMB*mbRows, width)

	for s := 0; s < steps; s++ {
		losses, grads, err := step.Step(params, []*jaxpp.Tensor{x, y})
		if err != nil {
			log.Fatal(err)
		}
		mean := 0.0
		for _, l := range losses {
			mean += l.Data()[0]
		}
		mean /= float64(len(losses))
		if s%5 == 0 || s == steps-1 {
			fmt.Printf("step %2d  mean microbatch loss %.4f  (dp sync %v)\n", s, mean, step.DPSyncTime())
		}
		for i := range params {
			scaled := make([]float64, grads[i].Size())
			for j, g := range grads[i].Data() {
				scaled[j] = params[i].Data()[j] - lr*g
			}
			p, err := jaxpp.TensorFromSlice(scaled, width, width)
			if err != nil {
				log.Fatal(err)
			}
			params[i] = p
		}
	}

	// Executed vs analytic: measure a standalone bucketed all-reduce at
	// gradient scale and compare with the simulator's dpSync formula under a
	// calibrated in-process link.
	const elems = 1 << 18
	link := collective.Calibrate(runtime.NewChanTransport(), 0, 1)
	measured, _, err := collective.MeasureAllReduce(runtime.NewChanTransport(), dp, elems, collective.DefaultBucketBytes)
	if err != nil {
		log.Fatal(err)
	}
	predicted := collective.PredictBucketedAllReduce(collective.RingLink(link, dp), []int{elems}, dp, collective.DefaultBucketBytes)
	fmt.Printf("collective validation: executed %.3fms vs analytic dpSync %.3fms over %d ranks (link %.2f GB/s, %.1fµs)\n",
		measured.Seconds()*1e3, predicted*1e3, dp, link.BwGBs, link.Latency*1e6)
	fmt.Println("done: DP×PP training on the real runtime, gradients synchronized by ring AllReduce")
}
