// Weak-scaling example (Fig. 8): GPT-3 175B from 64 to 1024 simulated H100s
// with global batch 2×GPUs, comparing JaxPP's interleaved-1F1B pipeline
// against JAX FSDP through the public simulation API.
package main

import (
	"fmt"
	"log"

	jaxpp "repro"
)

func main() {
	fmt.Println("GPT-3 175B weak scaling, GBS = 2 × #GPUs (simulator)")
	fmt.Printf("%6s  %22s  %22s\n", "#GPUs", "JaxPP (TP8xPP8, CR6)", "JAX FSDP")
	var jBase, fBase float64
	for _, gpus := range []int{64, 128, 256, 512, 1024} {
		gbs := 2 * gpus
		dp := gpus / 64
		jres, err := jaxpp.SimulateJaxPP(jaxpp.SimConfig{
			Model: jaxpp.GPT3175B(), Cluster: jaxpp.EOSCluster(),
			GPUs: gpus, TP: 8, PP: 8, DP: dp,
			GlobalBatch: gbs, Microbatch: gbs / (dp * 32), CircularRepeat: 6,
		})
		if err != nil {
			log.Fatal(err)
		}
		fres, err := jaxpp.SimulateFSDP(jaxpp.FSDPConfig{
			Model: jaxpp.GPT3175B(), Cluster: jaxpp.EOSCluster(),
			GPUs: gpus, GlobalBatch: gbs,
		})
		if err != nil {
			log.Fatal(err)
		}
		if gpus == 64 {
			jBase, fBase = jres.TFLOPSPerDevice, fres.TFLOPSPerDevice
		}
		fmt.Printf("%6d  %7.2fs %5.0f TF %4.0f%%  %7.2fs %5.0f TF %4.0f%%\n",
			gpus,
			jres.StepTime, jres.TFLOPSPerDevice, 100*jres.TFLOPSPerDevice/jBase,
			fres.StepTime, fres.TFLOPSPerDevice, 100*fres.TFLOPSPerDevice/fBase)
	}
	fmt.Println("\npaper: JaxPP scales at 92.87% efficiency vs FSDP's 93.97%,")
	fmt.Println("while delivering higher absolute throughput at every scale.")
}
