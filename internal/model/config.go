// Package model provides the workload definitions of the paper's evaluation:
// transformer configurations (GPT-3 175B, Llama2 70B) with analytic
// parameter, FLOP and activation-memory models following the standard
// Megatron-LM accounting, plus small *functional* models built on the IR for
// end-to-end numeric runs.
package model

import "fmt"

// TransformerConfig describes a decoder-only transformer.
type TransformerConfig struct {
	Name    string
	Layers  int
	Hidden  int
	Heads   int
	KVHeads int // grouped-query attention; == Heads for MHA
	FFN     int // feed-forward inner width
	Vocab   int
	Seq     int
	Gated   bool // SwiGLU-style 3-matmul FFN (Llama) vs 2-matmul GELU (GPT)
	TiedEmb bool // input/output embeddings shared
}

// GPT3_175B returns the GPT-3 175B configuration used throughout §5.
func GPT3_175B() TransformerConfig {
	return TransformerConfig{
		Name:   "GPT-3 175B",
		Layers: 96, Hidden: 12288, Heads: 96, KVHeads: 96,
		FFN: 4 * 12288, Vocab: 50257, Seq: 2048,
		Gated: false, TiedEmb: true,
	}
}

// Llama2_70B returns the Llama2 70B configuration (§5.2, sequence 4096).
func Llama2_70B() TransformerConfig {
	return TransformerConfig{
		Name:   "Llama2 70B",
		Layers: 80, Hidden: 8192, Heads: 64, KVHeads: 8,
		FFN: 28672, Vocab: 32000, Seq: 4096,
		Gated: true, TiedEmb: false,
	}
}

func (c TransformerConfig) String() string {
	return fmt.Sprintf("%s(L=%d H=%d S=%d)", c.Name, c.Layers, c.Hidden, c.Seq)
}

// headDim returns the per-head dimension.
func (c TransformerConfig) headDim() int { return c.Hidden / c.Heads }

// KVDim returns the total key/value projection width.
func (c TransformerConfig) KVDim() int { return c.KVHeads * c.headDim() }

// LayerParams returns the parameter count of one transformer layer.
func (c TransformerConfig) LayerParams() int64 {
	h := int64(c.Hidden)
	kv := int64(c.KVDim())
	attn := h*h + 2*h*kv + h*h // Q, K, V, O projections
	var ffn int64
	if c.Gated {
		ffn = 3 * h * int64(c.FFN)
	} else {
		ffn = 2 * h * int64(c.FFN)
	}
	norms := 4 * h // two norms (scale+bias)
	return attn + ffn + norms
}

// EmbeddingParams returns the token-embedding parameter count (one copy).
func (c TransformerConfig) EmbeddingParams() int64 {
	return int64(c.Vocab) * int64(c.Hidden)
}

// Params returns the total parameter count.
func (c TransformerConfig) Params() int64 {
	n := int64(c.Layers)*c.LayerParams() + c.EmbeddingParams()
	if !c.TiedEmb {
		n += c.EmbeddingParams()
	}
	return n
}

// FwdFLOPsPerToken returns the forward FLOPs for a single token: 2 FLOPs per
// multiply-accumulate across all projections, attention scores/context, the
// FFN, and the final logit matmul.
func (c TransformerConfig) FwdFLOPsPerToken() float64 {
	h := float64(c.Hidden)
	kv := float64(c.KVDim())
	s := float64(c.Seq)
	ffn := float64(c.FFN)
	perLayer := 2 * (h*h + 2*h*kv + h*h) // projections
	perLayer += 2 * 2 * s * h            // QK^T and attn·V (full, no causal discount)
	if c.Gated {
		perLayer += 2 * 3 * h * ffn
	} else {
		perLayer += 2 * 2 * h * ffn
	}
	logits := 2 * h * float64(c.Vocab)
	return float64(c.Layers)*perLayer + logits
}

// StepFLOPs returns the model FLOPs of one training step at the given global
// batch size (sequences): forward + backward = 3× forward, the standard
// "model FLOPs" convention the paper's TFLOPS/device numbers follow (no
// rematerialization FLOPs counted).
func (c TransformerConfig) StepFLOPs(globalBatch int) float64 {
	tokens := float64(globalBatch) * float64(c.Seq)
	return 3 * c.FwdFLOPsPerToken() * tokens
}

// ActivationBytesPerLayerNaive returns the activation memory (bytes, BF16
// training) one microbatch pins in one transformer layer with *unfused*
// attention — Korthikanti et al.'s s·b·h·(34 + 5·a·s/h), including the s²
// attention matrices.
func (c TransformerConfig) ActivationBytesPerLayerNaive(microbatch int) float64 {
	s := float64(c.Seq)
	b := float64(microbatch)
	h := float64(c.Hidden)
	a := float64(c.Heads)
	return s * b * h * (34 + 5*a*s/h)
}

// ActivationBytesPerLayer returns the activation footprint with fused
// (cuDNN/flash) attention, which all systems in §5 use ("JaxPP uses no
// custom kernels except for the attention APIs from cuDNN"): the s²
// attention matrices are never materialized and cheap pointwise
// intermediates are recomputed or reused in place by XLA, leaving ≈13 bytes
// per token per hidden unit — calibrated so the interleaved 1F1B configs of
// Fig. 6 fit in HBM without rematerialization (as the paper's Fig. 10
// breakdown shows) while GPipe-scheduled runs do not.
func (c TransformerConfig) ActivationBytesPerLayer(microbatch int) float64 {
	return float64(c.Seq) * float64(microbatch) * float64(c.Hidden) * 13
}

// ActivationBytesPerLayerRemat returns the activation footprint with full
// rematerialization: only the layer input (s·b·h·2 bytes) is kept.
func (c TransformerConfig) ActivationBytesPerLayerRemat(microbatch int) float64 {
	return float64(c.Seq) * float64(microbatch) * float64(c.Hidden) * 2
}

// TPCollectiveBytesPerLayer returns the bytes all-reduced per layer per
// microbatch in Megatron tensor parallelism (two all-reduces forward, two
// backward, each of s·b·h BF16 elements).
func (c TransformerConfig) TPCollectiveBytesPerLayer(microbatch int) float64 {
	return float64(c.Seq) * float64(microbatch) * float64(c.Hidden) * 2
}

// P2PBytesPerBoundary returns the bytes crossing one pipeline-stage boundary
// per microbatch (hidden states, BF16).
func (c TransformerConfig) P2PBytesPerBoundary(microbatch int) float64 {
	return float64(c.Seq) * float64(microbatch) * float64(c.Hidden) * 2
}
