package model

import (
	"math"
	"testing"
)

// rangeFixture builds deterministic, sign-mixed inputs including negative
// zeros (ReLU masking produces them) so bit-comparison is meaningful.
func rangeFixture(n int) (params, grads []float64) {
	params = make([]float64, n)
	grads = make([]float64, n)
	for j := range params {
		params[j] = math.Sin(float64(j)*0.7) * 3
		grads[j] = math.Cos(float64(j)*1.3) * 0.5
		if j%17 == 0 {
			grads[j] = math.Copysign(0, -1)
		}
	}
	return
}

// splits partitions [0, n) into uneven contiguous ranges, including an empty
// one — the shapes the balanced world partition produces.
func splits(n int) [][2]int {
	a := n / 3
	b := n / 2
	return [][2]int{{0, a}, {a, a}, {a, b}, {b, n}}
}

func requireSameBits(t *testing.T, kernel string, got, want []float64) {
	t.Helper()
	for j := range want {
		if math.Float64bits(got[j]) != math.Float64bits(want[j]) {
			t.Fatalf("%s: elem %d: sharded %v (bits %x) != full %v (bits %x)",
				kernel, j, got[j], math.Float64bits(got[j]), want[j], math.Float64bits(want[j]))
		}
	}
}

// TestSGDRangeShardDecomposition pins the property the ZeRO epilogue rests
// on: applying the kernel to disjoint sub-ranges composes to the full-range
// result bit for bit.
func TestSGDRangeShardDecomposition(t *testing.T) {
	const n, lr = 257, 0.3
	params, grads := rangeFixture(n)
	full := make([]float64, n)
	SGDRange(full, params, grads, lr)

	sharded := make([]float64, n)
	for _, s := range splits(n) {
		lo, hi := s[0], s[1]
		SGDRange(sharded[lo:hi], params[lo:hi], grads[lo:hi], lr)
	}
	requireSameBits(t, "sgd", sharded, full)
}

// TestMomentumRangeShardDecomposition proves the same with in-place optimizer
// state: shard-local velocity slices evolve identically to slices of the full
// velocity vector across multiple steps.
func TestMomentumRangeShardDecomposition(t *testing.T) {
	const n, lr, mu = 257, 0.3, 0.9
	params, grads := rangeFixture(n)
	fullVel := make([]float64, n)
	shardVel := make([]float64, n)
	full := make([]float64, n)
	sharded := make([]float64, n)
	fp := append([]float64(nil), params...)
	sp := append([]float64(nil), params...)
	for step := 0; step < 4; step++ {
		MomentumRange(full, fp, grads, fullVel, lr, mu)
		for _, s := range splits(n) {
			lo, hi := s[0], s[1]
			MomentumRange(sharded[lo:hi], sp[lo:hi], grads[lo:hi], shardVel[lo:hi], lr, mu)
		}
		requireSameBits(t, "momentum", sharded, full)
		requireSameBits(t, "momentum vel", shardVel, fullVel)
		copy(fp, full)
		copy(sp, sharded)
	}
}

// TestAdamRangeShardDecomposition proves Adam decomposes too: bias correction
// is a function of the global step alone, so shard-local m/v slices plus the
// shared step counter reproduce the full update bit for bit (with and without
// decoupled weight decay).
func TestAdamRangeShardDecomposition(t *testing.T) {
	for _, wd := range []float64{0, 0.01} {
		const n, lr = 257, 0.01
		cfg := AdamConfig{Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, WeightDecay: wd}
		params, grads := rangeFixture(n)
		fullM := make([]float64, n)
		fullV := make([]float64, n)
		shardM := make([]float64, n)
		shardV := make([]float64, n)
		full := make([]float64, n)
		sharded := make([]float64, n)
		fp := append([]float64(nil), params...)
		sp := append([]float64(nil), params...)
		for step := 1; step <= 4; step++ {
			AdamRange(full, fp, grads, fullM, fullV, cfg, lr, step)
			for _, s := range splits(n) {
				lo, hi := s[0], s[1]
				AdamRange(sharded[lo:hi], sp[lo:hi], grads[lo:hi], shardM[lo:hi], shardV[lo:hi], cfg, lr, step)
			}
			requireSameBits(t, "adam", sharded, full)
			requireSameBits(t, "adam m", shardM, fullM)
			requireSameBits(t, "adam v", shardV, fullV)
			copy(fp, full)
			copy(sp, sharded)
		}
	}
}
