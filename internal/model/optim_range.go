package model

import "math"

// Fused flat-range optimizer kernels: the single source of truth for the
// elementwise update arithmetic of SGD, heavy-ball momentum, and Adam. Every
// lane is independent, so applying a kernel to sub-ranges of the flat
// parameter vector composes to the full-range result bit-for-bit — the
// property the ZeRO-sharded epilogue rests on: each rank updates only its
// owner-major shard (with shard-local optimizer state) and the gathered
// parameters are identical to a replicated update. The whole-tensor
// Optimizer.Apply implementations and distrun's distributed epilogue both
// call these, so the two paths cannot drift.

// SGDRange writes params - lr·grads into dst elementwise.
func SGDRange(dst, params, grads []float64, lr float64) {
	for j, g := range grads {
		dst[j] = params[j] - lr*g
	}
}

// MomentumRange runs one fused heavy-ball step: vel updates in place
// (v ← mu·v + g) and dst receives params − lr·v.
func MomentumRange(dst, params, grads, vel []float64, lr, mu float64) {
	for j, g := range grads {
		v := mu*vel[j] + g
		vel[j] = v
		dst[j] = params[j] - lr*v
	}
}

// AdamConfig carries Adam's hyperparameters for the range kernel.
type AdamConfig struct {
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64 // decoupled (AdamW); 0 disables
}

// AdamRange runs one fused bias-corrected Adam step over a flat range: the
// first and second moments m, v update in place and dst receives the updated
// parameters. step is the 1-based global optimizer step (bias correction is a
// function of it, not of the range), so sharded ranks applying disjoint
// ranges at the same step agree with the full-range update bit-for-bit.
func AdamRange(dst, params, grads, m, v []float64, cfg AdamConfig, lr float64, step int) {
	bc1 := 1 - math.Pow(cfg.Beta1, float64(step))
	bc2 := 1 - math.Pow(cfg.Beta2, float64(step))
	wd := lr * cfg.WeightDecay
	for j, g := range grads {
		mj := cfg.Beta1*m[j] + (1-cfg.Beta1)*g
		vj := cfg.Beta2*v[j] + (1-cfg.Beta2)*(g*g)
		m[j], v[j] = mj, vj
		u := (mj / bc1) / (math.Sqrt(vj/bc2) + cfg.Eps)
		p := params[j] - lr*u
		if cfg.WeightDecay != 0 {
			p -= wd * params[j]
		}
		dst[j] = p
	}
}
