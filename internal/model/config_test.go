package model

import (
	"math"
	"testing"
)

func TestGPT3ParameterCount(t *testing.T) {
	n := GPT3_175B().Params()
	// ~174-176B parameters.
	if n < 170e9 || n > 180e9 {
		t.Fatalf("GPT-3 params = %d, want ≈175B", n)
	}
}

func TestLlama2ParameterCount(t *testing.T) {
	n := Llama2_70B().Params()
	if n < 66e9 || n > 72e9 {
		t.Fatalf("Llama2 params = %d, want ≈70B", n)
	}
}

func TestStepFLOPsMatchesPaperTable(t *testing.T) {
	// Table 1 is internally consistent: TFLOPS × GPUs × step = model FLOPs.
	// JaxPP GPT-3 row: 462 TF × 64 GPUs × 9.53 s ⇒ 2.82e17 FLOPs at GBS 128.
	got := GPT3_175B().StepFLOPs(128)
	want := 462e12 * 64 * 9.53
	if math.Abs(got-want)/want > 0.03 {
		t.Fatalf("GPT-3 StepFLOPs(128) = %.3e, paper-implied %.3e", got, want)
	}
	// Llama2 row: 432 TF × 64 × 8.42 s at GBS 128.
	gotL := Llama2_70B().StepFLOPs(128)
	wantL := 432e12 * 64 * 8.42
	if math.Abs(gotL-wantL)/wantL > 0.05 {
		t.Fatalf("Llama2 StepFLOPs(128) = %.3e, paper-implied %.3e", gotL, wantL)
	}
}

func TestStepFLOPsLinearInBatch(t *testing.T) {
	c := GPT3_175B()
	if c.StepFLOPs(256) != 2*c.StepFLOPs(128) {
		t.Fatal("StepFLOPs not linear in batch")
	}
}

func TestSixNDApproximation(t *testing.T) {
	// fwd+bwd FLOPs per token ≈ 6N for large dense models (within ~15%,
	// attention and logits add the rest).
	c := GPT3_175B()
	perToken := 3 * c.FwdFLOPsPerToken()
	sixND := 6 * float64(c.Params())
	if ratio := perToken / sixND; ratio < 1.0 || ratio > 1.2 {
		t.Fatalf("fwd+bwd/token / 6N = %v, want in [1.0, 1.2]", ratio)
	}
}

func TestActivationOrdering(t *testing.T) {
	c := GPT3_175B()
	if !(c.ActivationBytesPerLayerRemat(4) < c.ActivationBytesPerLayer(4)) {
		t.Fatal("remat footprint must be below fused footprint")
	}
	if !(c.ActivationBytesPerLayer(4) < c.ActivationBytesPerLayerNaive(4)) {
		t.Fatal("fused footprint must be below naive footprint")
	}
}

func TestActivationScalesWithMicrobatch(t *testing.T) {
	c := GPT3_175B()
	if c.ActivationBytesPerLayer(8) != 2*c.ActivationBytesPerLayer(4) {
		t.Fatal("activation bytes not linear in microbatch")
	}
}

func TestKVDimGQA(t *testing.T) {
	l := Llama2_70B()
	if l.KVDim() != 8*128 {
		t.Fatalf("llama KV dim = %d, want 1024", l.KVDim())
	}
	g := GPT3_175B()
	if g.KVDim() != g.Hidden {
		t.Fatalf("MHA KV dim = %d, want hidden %d", g.KVDim(), g.Hidden)
	}
}

func TestCommBytesFormulas(t *testing.T) {
	c := GPT3_175B()
	want := float64(2048 * 4 * 12288 * 2)
	if c.TPCollectiveBytesPerLayer(4) != want {
		t.Fatalf("TP collective bytes = %v want %v", c.TPCollectiveBytesPerLayer(4), want)
	}
	if c.P2PBytesPerBoundary(4) != want {
		t.Fatalf("P2P bytes = %v want %v", c.P2PBytesPerBoundary(4), want)
	}
}
