package model

import (
	"math"
	"testing"

	"repro/internal/tensor"
)

func quadGrad(p *tensor.Tensor) *tensor.Tensor {
	// d/dp of 0.5·|p|² is p.
	return p.Clone()
}

func quadLoss(p *tensor.Tensor) float64 {
	s := 0.0
	for _, v := range p.Data() {
		s += 0.5 * v * v
	}
	return s
}

func optimizeQuadratic(t *testing.T, opt Optimizer, lr float64, steps int) float64 {
	t.Helper()
	p := tensor.MustFromSlice([]float64{3, -2, 1.5, -0.5}, 4)
	params := []*tensor.Tensor{p}
	for i := 0; i < steps; i++ {
		grads := []*tensor.Tensor{quadGrad(params[0])}
		var err error
		params, err = opt.Apply(params, grads, lr)
		if err != nil {
			t.Fatal(err)
		}
	}
	return quadLoss(params[0])
}

func TestSGDConvergesOnQuadratic(t *testing.T) {
	final := optimizeQuadratic(t, SGD{}, 0.1, 100)
	if final > 1e-6 {
		t.Fatalf("SGD final loss %v", final)
	}
}

func TestMomentumConverges(t *testing.T) {
	final := optimizeQuadratic(t, &Momentum{Beta: 0.9}, 0.05, 200)
	if final > 1e-6 {
		t.Fatalf("momentum final loss %v", final)
	}
}

func TestAdamConverges(t *testing.T) {
	final := optimizeQuadratic(t, NewAdam(), 0.1, 300)
	if final > 1e-6 {
		t.Fatalf("adam final loss %v", final)
	}
}

func TestAdamFirstStepIsSignSGD(t *testing.T) {
	// With bias correction, Adam's first update is ≈ lr·sign(g).
	a := NewAdam()
	p := tensor.MustFromSlice([]float64{1, -1}, 2)
	g := tensor.MustFromSlice([]float64{0.3, -0.7}, 2)
	out, err := a.Apply([]*tensor.Tensor{p}, []*tensor.Tensor{g}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	want0 := 1 - 0.01 // moves against sign(+)
	want1 := -1 + 0.01
	if math.Abs(out[0].At(0)-want0) > 1e-4 || math.Abs(out[0].At(1)-want1) > 1e-4 {
		t.Fatalf("first Adam step %v, want ≈ [%v %v]", out[0].Data(), want0, want1)
	}
}

func TestAdamWDecaysWeights(t *testing.T) {
	aw := NewAdamW(0.1)
	p := tensor.MustFromSlice([]float64{1, 1}, 2)
	zero := tensor.New(2)
	out, err := aw.Apply([]*tensor.Tensor{p}, []*tensor.Tensor{zero}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Zero gradient: pure decoupled decay p − lr·wd·p = 0.95.
	if math.Abs(out[0].At(0)-0.95) > 1e-9 {
		t.Fatalf("adamw decay gave %v", out[0].At(0))
	}
	plain := NewAdam()
	out2, err := plain.Apply([]*tensor.Tensor{p}, []*tensor.Tensor{zero}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if out2[0].At(0) != 1 {
		t.Fatalf("adam without decay moved weights on zero grad: %v", out2[0].At(0))
	}
}

func TestApplyShapeChecks(t *testing.T) {
	p := []*tensor.Tensor{tensor.New(2)}
	g := []*tensor.Tensor{tensor.New(3)}
	if _, err := (SGD{}).Apply(p, g, 0.1); err == nil {
		t.Fatal("want shape error")
	}
	if _, err := (SGD{}).Apply(p, nil, 0.1); err == nil {
		t.Fatal("want count error")
	}
}

func TestWarmupCosineLR(t *testing.T) {
	s := WarmupCosineLR(1.0, 0.1, 10, 110)
	if lr := s(0); lr <= 0 || lr > 0.11 {
		t.Fatalf("warmup start lr %v", lr)
	}
	if lr := s(9); math.Abs(lr-1.0) > 1e-9 {
		t.Fatalf("end of warmup lr %v", lr)
	}
	mid := s(60)
	if mid >= 1.0 || mid <= 0.1 {
		t.Fatalf("mid decay lr %v", mid)
	}
	if lr := s(200); lr != 0.1 {
		t.Fatalf("post-schedule lr %v", lr)
	}
	// Monotone decreasing during decay.
	prev := s(10)
	for step := 11; step < 110; step++ {
		cur := s(step)
		if cur > prev+1e-12 {
			t.Fatalf("cosine decay not monotone at %d: %v > %v", step, cur, prev)
		}
		prev = cur
	}
}

func TestLinearDecayLR(t *testing.T) {
	s := LinearDecayLR(1.0, 0.0, 10)
	if s(0) != 1.0 || math.Abs(s(5)-0.5) > 1e-12 || s(10) != 0 || s(20) != 0 {
		t.Fatalf("linear decay wrong: %v %v %v", s(0), s(5), s(10))
	}
}

func TestConstantLR(t *testing.T) {
	s := ConstantLR(0.25)
	if s(0) != 0.25 || s(1000) != 0.25 {
		t.Fatal("constant lr not constant")
	}
}

func TestGradClip(t *testing.T) {
	g := []*tensor.Tensor{tensor.MustFromSlice([]float64{3, 4}, 2)} // norm 5
	clipped, norm := GradClipByGlobalNorm(g, 1.0)
	if norm != 5 {
		t.Fatalf("norm %v", norm)
	}
	var sq float64
	for _, v := range clipped[0].Data() {
		sq += v * v
	}
	if math.Abs(math.Sqrt(sq)-1.0) > 1e-9 {
		t.Fatalf("clipped norm %v", math.Sqrt(sq))
	}
	// Below threshold: untouched.
	same, _ := GradClipByGlobalNorm(g, 10)
	if same[0] != g[0] {
		t.Fatal("clip should be identity below threshold")
	}
}

func TestOptimizerNames(t *testing.T) {
	if (SGD{}).Name() != "sgd" || (&Momentum{}).Name() != "momentum" ||
		NewAdam().Name() != "adam" || NewAdamW(0.1).Name() != "adamw" {
		t.Fatal("names wrong")
	}
}
