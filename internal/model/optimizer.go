package model

import (
	"fmt"
	"math"

	"repro/internal/tensor"
)

// Optimizer updates parameters from accumulated gradients — the
// state.apply_gradient of the paper's training loop (Fig. 4).
type Optimizer interface {
	// Apply updates params in a new slice given grads and the learning rate.
	Apply(params, grads []*tensor.Tensor, lr float64) ([]*tensor.Tensor, error)
	// Name identifies the optimizer.
	Name() string
}

// SGD is plain stochastic gradient descent.
type SGD struct{}

// Name implements Optimizer.
func (SGD) Name() string { return "sgd" }

// Apply implements Optimizer.
func (SGD) Apply(params, grads []*tensor.Tensor, lr float64) ([]*tensor.Tensor, error) {
	if err := checkShapes(params, grads); err != nil {
		return nil, err
	}
	out := make([]*tensor.Tensor, len(params))
	for i := range params {
		out[i] = tensor.New(params[i].Shape()...)
		SGDRange(out[i].Data(), params[i].Data(), grads[i].Data(), lr)
	}
	return out, nil
}

// Momentum is SGD with classical momentum.
type Momentum struct {
	Beta     float64 // momentum coefficient, e.g. 0.9
	velocity []*tensor.Tensor
}

// Name implements Optimizer.
func (m *Momentum) Name() string { return "momentum" }

// Apply implements Optimizer.
func (m *Momentum) Apply(params, grads []*tensor.Tensor, lr float64) ([]*tensor.Tensor, error) {
	if err := checkShapes(params, grads); err != nil {
		return nil, err
	}
	if m.velocity == nil {
		m.velocity = make([]*tensor.Tensor, len(params))
		for i := range params {
			m.velocity[i] = tensor.New(params[i].Shape()...)
		}
	}
	out := make([]*tensor.Tensor, len(params))
	for i := range params {
		out[i] = tensor.New(params[i].Shape()...)
		MomentumRange(out[i].Data(), params[i].Data(), grads[i].Data(), m.velocity[i].Data(), lr, m.Beta)
	}
	return out, nil
}

// Adam is the Adam optimizer (Kingma & Ba) with optional decoupled weight
// decay (AdamW).
type Adam struct {
	Beta1       float64 // default 0.9
	Beta2       float64 // default 0.999
	Eps         float64 // default 1e-8
	WeightDecay float64 // decoupled (AdamW); 0 disables

	step int
	m, v []*tensor.Tensor
}

// NewAdam returns Adam with standard hyperparameters.
func NewAdam() *Adam { return &Adam{Beta1: 0.9, Beta2: 0.999, Eps: 1e-8} }

// NewAdamW returns AdamW with the given decoupled weight decay.
func NewAdamW(decay float64) *Adam {
	a := NewAdam()
	a.WeightDecay = decay
	return a
}

// Name implements Optimizer.
func (a *Adam) Name() string {
	if a.WeightDecay != 0 {
		return "adamw"
	}
	return "adam"
}

// Apply implements Optimizer.
func (a *Adam) Apply(params, grads []*tensor.Tensor, lr float64) ([]*tensor.Tensor, error) {
	if err := checkShapes(params, grads); err != nil {
		return nil, err
	}
	if a.m == nil {
		a.m = make([]*tensor.Tensor, len(params))
		a.v = make([]*tensor.Tensor, len(params))
		for i := range params {
			a.m[i] = tensor.New(params[i].Shape()...)
			a.v[i] = tensor.New(params[i].Shape()...)
		}
	}
	a.step++
	cfg := AdamConfig{Beta1: a.Beta1, Beta2: a.Beta2, Eps: a.Eps, WeightDecay: a.WeightDecay}
	out := make([]*tensor.Tensor, len(params))
	for i := range params {
		out[i] = tensor.New(params[i].Shape()...)
		AdamRange(out[i].Data(), params[i].Data(), grads[i].Data(), a.m[i].Data(), a.v[i].Data(), cfg, lr, a.step)
	}
	return out, nil
}

func checkShapes(params, grads []*tensor.Tensor) error {
	if len(params) != len(grads) {
		return fmt.Errorf("model: %d params vs %d grads", len(params), len(grads))
	}
	for i := range params {
		if !tensor.SameShape(params[i], grads[i]) {
			return fmt.Errorf("model: param %d shape %v vs grad %v", i, params[i].Shape(), grads[i].Shape())
		}
	}
	return nil
}

// LRSchedule maps a step index to a learning rate — the lr_scheduler of
// Fig. 4.
type LRSchedule func(step int) float64

// ConstantLR returns a constant schedule.
func ConstantLR(lr float64) LRSchedule {
	return func(int) float64 { return lr }
}

// WarmupCosineLR implements the standard LLM-training schedule: linear
// warmup over warmupSteps to peak, then cosine decay to floor over
// totalSteps.
func WarmupCosineLR(peak, floor float64, warmupSteps, totalSteps int) LRSchedule {
	return func(step int) float64 {
		if warmupSteps > 0 && step < warmupSteps {
			return peak * float64(step+1) / float64(warmupSteps)
		}
		if step >= totalSteps {
			return floor
		}
		progress := float64(step-warmupSteps) / float64(totalSteps-warmupSteps)
		return floor + 0.5*(peak-floor)*(1+math.Cos(math.Pi*progress))
	}
}

// LinearDecayLR decays linearly from peak to floor over totalSteps.
func LinearDecayLR(peak, floor float64, totalSteps int) LRSchedule {
	return func(step int) float64 {
		if step >= totalSteps {
			return floor
		}
		return peak - (peak-floor)*float64(step)/float64(totalSteps)
	}
}

// GradClipByGlobalNorm rescales gradients so their global L2 norm is at most
// maxNorm, returning the clipped gradients and the pre-clip norm.
func GradClipByGlobalNorm(grads []*tensor.Tensor, maxNorm float64) ([]*tensor.Tensor, float64) {
	var sq float64
	for _, g := range grads {
		for _, v := range g.Data() {
			sq += v * v
		}
	}
	norm := math.Sqrt(sq)
	if norm <= maxNorm || norm == 0 {
		return grads, norm
	}
	scale := maxNorm / norm
	out := make([]*tensor.Tensor, len(grads))
	for i, g := range grads {
		out[i] = tensor.Scale(g, scale)
	}
	return out, norm
}
