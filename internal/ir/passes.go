package ir

import (
	"fmt"

	"repro/internal/tensor"
)

// Verify checks SSA well-formedness: every value is defined exactly once
// (as a graph input or a single equation output), every use is dominated by
// its definition in list order, output shapes match shape inference, and all
// graph outputs are defined.
func (g *Graph) Verify() error {
	defined := make(map[int]bool, len(g.Inputs)+len(g.Eqns))
	for _, v := range g.Inputs {
		if defined[v.ID] {
			return fmt.Errorf("ir: input %s defined twice", v)
		}
		defined[v.ID] = true
	}
	for i, e := range g.Eqns {
		for _, in := range e.Inputs {
			if !defined[in.ID] {
				return fmt.Errorf("ir: eqn %d (%s) uses undefined value %s", i, e.Op, in)
			}
		}
		shapes := make([][]int, len(e.Inputs))
		for j, in := range e.Inputs {
			shapes[j] = in.Shape
		}
		want, err := InferShape(e.Op, e.Attrs, shapes)
		if err != nil {
			return fmt.Errorf("ir: eqn %d: %w", i, err)
		}
		if len(e.Outputs) != 1 {
			return fmt.Errorf("ir: eqn %d (%s) must have exactly one output", i, e.Op)
		}
		if !tensor.ShapeEq(e.Outputs[0].Shape, want) {
			return fmt.Errorf("ir: eqn %d (%s) output shape %v, inference says %v", i, e.Op, e.Outputs[0].Shape, want)
		}
		for _, out := range e.Outputs {
			if defined[out.ID] {
				return fmt.Errorf("ir: value %s defined twice", out)
			}
			defined[out.ID] = true
		}
	}
	for _, o := range g.Outputs {
		if !defined[o.ID] {
			return fmt.Errorf("ir: graph output %s is undefined", o)
		}
	}
	return nil
}

// Producer returns a map from value ID to the index of the equation defining
// it; graph inputs map to -1.
func (g *Graph) Producer() map[int]int {
	p := make(map[int]int, len(g.Inputs)+len(g.Eqns))
	for _, v := range g.Inputs {
		p[v.ID] = -1
	}
	for i, e := range g.Eqns {
		for _, o := range e.Outputs {
			p[o.ID] = i
		}
	}
	return p
}

// DCE removes equations whose outputs are not (transitively) needed by the
// graph outputs. It returns the number of equations removed.
func (g *Graph) DCE() int {
	live := make(map[int]bool)
	for _, o := range g.Outputs {
		live[o.ID] = true
	}
	// Equations are in definition order; walk backwards propagating liveness.
	keep := make([]bool, len(g.Eqns))
	for i := len(g.Eqns) - 1; i >= 0; i-- {
		e := g.Eqns[i]
		needed := false
		for _, o := range e.Outputs {
			if live[o.ID] {
				needed = true
			}
		}
		keep[i] = needed
		if needed {
			for _, in := range e.Inputs {
				live[in.ID] = true
			}
		}
	}
	out := g.Eqns[:0]
	removed := 0
	for i, e := range g.Eqns {
		if keep[i] {
			out = append(out, e)
		} else {
			removed++
		}
	}
	g.Eqns = out
	return removed
}

// Uses returns, for each value ID, the indices of equations consuming it.
// Graph outputs are recorded with index len(Eqns).
func (g *Graph) Uses() map[int][]int {
	u := make(map[int][]int)
	for i, e := range g.Eqns {
		for _, in := range e.Inputs {
			u[in.ID] = append(u[in.ID], i)
		}
	}
	for _, o := range g.Outputs {
		u[o.ID] = append(u[o.ID], len(g.Eqns))
	}
	return u
}

// LastUse returns, for each value ID, the index of the equation consuming it
// last. Graph outputs are pinned to len(Eqns) so they outlive every equation;
// values no equation consumes are absent. This is the liveness information
// the interpreter's compiled programs use to free dead intermediates into the
// tensor buffer pool.
func (g *Graph) LastUse() map[int]int {
	last := make(map[int]int, len(g.Eqns)+len(g.Outputs))
	for i, e := range g.Eqns {
		for _, in := range e.Inputs {
			last[in.ID] = i
		}
	}
	for _, o := range g.Outputs {
		last[o.ID] = len(g.Eqns)
	}
	return last
}

// Clone deep-copies the graph. Values are re-minted with identical IDs so
// that ID-keyed maps carry over.
func (g *Graph) Clone() *Graph {
	c := &Graph{Name: g.Name, nextID: g.nextID}
	vals := make(map[int]*Value)
	cv := func(v *Value) *Value {
		if n, ok := vals[v.ID]; ok {
			return n
		}
		n := &Value{ID: v.ID, Shape: append([]int(nil), v.Shape...), Name: v.Name}
		vals[v.ID] = n
		return n
	}
	for _, v := range g.Inputs {
		c.Inputs = append(c.Inputs, cv(v))
	}
	for _, e := range g.Eqns {
		ne := &Equation{Op: e.Op, Attrs: e.Attrs.clone()}
		for _, in := range e.Inputs {
			ne.Inputs = append(ne.Inputs, cv(in))
		}
		for _, o := range e.Outputs {
			ne.Outputs = append(ne.Outputs, cv(o))
		}
		c.Eqns = append(c.Eqns, ne)
	}
	for _, o := range g.Outputs {
		c.Outputs = append(c.Outputs, cv(o))
	}
	return c
}

// YieldBoundaries returns the indices of OpYield equations, split into
// forward (in trace order) and backward (in list order) yields.
func (g *Graph) YieldBoundaries() (fwd, bwd []int) {
	for i, e := range g.Eqns {
		if e.Op != OpYield {
			continue
		}
		if e.Attrs.Bwd {
			bwd = append(bwd, i)
		} else {
			fwd = append(fwd, i)
		}
	}
	return fwd, bwd
}

// NumStages returns the number of forward pipeline stages implied by the
// yield markers (#forward yields + 1).
func (g *Graph) NumStages() int {
	fwd, _ := g.YieldBoundaries()
	return len(fwd) + 1
}
