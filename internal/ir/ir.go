// Package ir defines the typed SSA dataflow intermediate representation that
// plays the role of JAX's Jaxpr in this reproduction. A Graph is a flat list
// of Equations over immutable Values; every compiler pass in the system
// (autodiff, stage splitting, placement inference, loop commuting, task-graph
// construction) operates on this representation.
package ir

import (
	"fmt"
	"strings"

	"repro/internal/tensor"
)

// Op identifies a primitive operation.
type Op string

// The primitive op set. It is intentionally small: large models are built by
// composing these, exactly as JAX programs lower to a small HLO vocabulary.
const (
	OpMatMul     Op = "matmul"         // (m,k),(k,n) -> (m,n)
	OpAdd        Op = "add"            // elementwise; scalar broadcast allowed
	OpSub        Op = "sub"            // elementwise; scalar broadcast allowed
	OpMul        Op = "mul"            // elementwise; scalar broadcast allowed
	OpScale      Op = "scale"          // x * Attrs.Factor
	OpReLU       Op = "relu"           // max(x, 0)
	OpReLUMask   Op = "relu_mask"      // 1 where x > 0
	OpTanh       Op = "tanh"           // tanh(x)
	OpTanhGrad   Op = "tanh_grad"      // (x, dy) -> dy * (1 - tanh(x)^2)
	OpTranspose  Op = "transpose"      // rank-2 transpose
	OpReshape    Op = "reshape"        // to Attrs.Shape
	OpSum        Op = "sum"            // all elements -> scalar
	OpSumAxis0   Op = "sum_axis0"      // (d0, rest...) -> (rest...)
	OpBroadcast0 Op = "broadcast0"     // (rest...) -> (Attrs.N, rest...), repeat
	OpBroadcastS Op = "broadcast_s"    // scalar -> Attrs.Shape, filled
	OpSoftmax    Op = "softmax"        // row-wise softmax, rank 2
	OpXent       Op = "xent"           // (logits, targets) -> scalar mean loss
	OpXentGrad   Op = "xent_grad"      // (logits, targets) -> dloss/dlogits
	OpZeros      Op = "zeros"          // constant zeros of Attrs.Shape
	OpConst      Op = "const"          // constant Attrs.Factor-filled Attrs.Shape
	OpYield      Op = "pipeline_yield" // identity; marks a stage boundary
)

// Attrs carries per-equation static attributes. A struct (not a map) keeps it
// comparable, gob-friendly and cheap to clone.
type Attrs struct {
	Shape  []int   // OpReshape, OpBroadcastS, OpZeros target shape
	N      int     // OpBroadcast0 leading dim
	Factor float64 // OpScale factor
	Stage  int     // OpYield: boundary index (1-based, in trace order)
	Bwd    bool    // OpYield: true if this yield was produced by autodiff
}

func (a Attrs) clone() Attrs {
	c := a
	if a.Shape != nil {
		c.Shape = append([]int(nil), a.Shape...)
	}
	return c
}

// Value is an SSA value: produced by exactly one equation or listed as a
// graph input.
type Value struct {
	ID    int
	Shape []int
	Name  string // optional debug name
}

func (v *Value) String() string {
	if v.Name != "" {
		return fmt.Sprintf("%%%d:%s%v", v.ID, v.Name, v.Shape)
	}
	return fmt.Sprintf("%%%d%v", v.ID, v.Shape)
}

// Size returns the element count of the value.
func (v *Value) Size() int { return tensor.NumElements(v.Shape) }

// Equation is one primitive application.
type Equation struct {
	Op      Op
	Inputs  []*Value
	Outputs []*Value
	Attrs   Attrs
}

func (e *Equation) String() string {
	outs := make([]string, len(e.Outputs))
	for i, o := range e.Outputs {
		outs[i] = o.String()
	}
	ins := make([]string, len(e.Inputs))
	for i, in := range e.Inputs {
		ins[i] = in.String()
	}
	s := fmt.Sprintf("%s = %s(%s)", strings.Join(outs, ", "), e.Op, strings.Join(ins, ", "))
	switch e.Op {
	case OpReshape, OpZeros, OpBroadcastS:
		s += fmt.Sprintf(" shape=%v", e.Attrs.Shape)
	case OpScale:
		s += fmt.Sprintf(" factor=%g", e.Attrs.Factor)
	case OpBroadcast0:
		s += fmt.Sprintf(" n=%d", e.Attrs.N)
	case OpYield:
		s += fmt.Sprintf(" stage=%d bwd=%v", e.Attrs.Stage, e.Attrs.Bwd)
	}
	return s
}

// Graph is a traced function: typed inputs, a list of equations in
// topological (definition) order, and outputs.
type Graph struct {
	Name    string
	Inputs  []*Value
	Outputs []*Value
	Eqns    []*Equation

	nextID int
}

// NewGraph returns an empty graph.
func NewGraph(name string) *Graph {
	return &Graph{Name: name}
}

// NewValue mints a fresh SSA value owned by this graph.
func (g *Graph) NewValue(shape []int, name string) *Value {
	v := &Value{ID: g.nextID, Shape: append([]int(nil), shape...), Name: name}
	g.nextID++
	return v
}

// AddInput registers a new graph input value.
func (g *Graph) AddInput(shape []int, name string) *Value {
	v := g.NewValue(shape, name)
	g.Inputs = append(g.Inputs, v)
	return v
}

// Emit appends an equation applying op to inputs, inferring the output shape.
// It returns the single output value (all current ops have one output).
func (g *Graph) Emit(op Op, attrs Attrs, inputs ...*Value) (*Value, error) {
	shapes := make([][]int, len(inputs))
	for i, in := range inputs {
		shapes[i] = in.Shape
	}
	outShape, err := InferShape(op, attrs, shapes)
	if err != nil {
		return nil, fmt.Errorf("ir: %s: %w", op, err)
	}
	out := g.NewValue(outShape, "")
	g.Eqns = append(g.Eqns, &Equation{Op: op, Inputs: inputs, Outputs: []*Value{out}, Attrs: attrs.clone()})
	return out, nil
}

// MustEmit is Emit panicking on shape errors; used by internal builders where
// shapes are constructed programmatically.
func (g *Graph) MustEmit(op Op, attrs Attrs, inputs ...*Value) *Value {
	v, err := g.Emit(op, attrs, inputs...)
	if err != nil {
		panic(err)
	}
	return v
}

// SetOutputs declares the graph outputs.
func (g *Graph) SetOutputs(vs ...*Value) { g.Outputs = vs }

// String renders the graph in a Jaxpr-like textual form.
func (g *Graph) String() string {
	var b strings.Builder
	ins := make([]string, len(g.Inputs))
	for i, v := range g.Inputs {
		ins[i] = v.String()
	}
	fmt.Fprintf(&b, "%s(%s) {\n", g.Name, strings.Join(ins, ", "))
	for _, e := range g.Eqns {
		fmt.Fprintf(&b, "  %s\n", e)
	}
	outs := make([]string, len(g.Outputs))
	for i, v := range g.Outputs {
		outs[i] = v.String()
	}
	fmt.Fprintf(&b, "  return %s\n}", strings.Join(outs, ", "))
	return b.String()
}

// InferShape computes the output shape of op applied to the input shapes.
func InferShape(op Op, attrs Attrs, in [][]int) ([]int, error) {
	argc := func(n int) error {
		if len(in) != n {
			return fmt.Errorf("want %d operands, got %d", n, len(in))
		}
		return nil
	}
	switch op {
	case OpMatMul:
		if err := argc(2); err != nil {
			return nil, err
		}
		a, b := in[0], in[1]
		if len(a) != 2 || len(b) != 2 {
			return nil, fmt.Errorf("rank-2 operands required, got %v x %v", a, b)
		}
		if a[1] != b[0] {
			return nil, fmt.Errorf("inner dims differ: %v x %v", a, b)
		}
		return []int{a[0], b[1]}, nil
	case OpAdd, OpSub, OpMul:
		if err := argc(2); err != nil {
			return nil, err
		}
		a, b := in[0], in[1]
		switch {
		case tensor.ShapeEq(a, b):
			return append([]int(nil), a...), nil
		case len(b) == 0:
			return append([]int(nil), a...), nil
		case len(a) == 0:
			return append([]int(nil), b...), nil
		default:
			return nil, fmt.Errorf("shape mismatch %v vs %v", a, b)
		}
	case OpScale, OpReLU, OpReLUMask, OpTanh, OpYield:
		if err := argc(1); err != nil {
			return nil, err
		}
		return append([]int(nil), in[0]...), nil
	case OpTanhGrad:
		if err := argc(2); err != nil {
			return nil, err
		}
		if !tensor.ShapeEq(in[0], in[1]) {
			return nil, fmt.Errorf("shape mismatch %v vs %v", in[0], in[1])
		}
		return append([]int(nil), in[0]...), nil
	case OpTranspose:
		if err := argc(1); err != nil {
			return nil, err
		}
		if len(in[0]) != 2 {
			return nil, fmt.Errorf("rank-2 operand required, got %v", in[0])
		}
		return []int{in[0][1], in[0][0]}, nil
	case OpReshape:
		if err := argc(1); err != nil {
			return nil, err
		}
		if tensor.NumElements(attrs.Shape) != tensor.NumElements(in[0]) {
			return nil, fmt.Errorf("cannot reshape %v to %v", in[0], attrs.Shape)
		}
		return append([]int(nil), attrs.Shape...), nil
	case OpSum:
		if err := argc(1); err != nil {
			return nil, err
		}
		return []int{}, nil
	case OpSumAxis0:
		if err := argc(1); err != nil {
			return nil, err
		}
		if len(in[0]) == 0 {
			return nil, fmt.Errorf("cannot reduce a scalar on axis 0")
		}
		return append([]int(nil), in[0][1:]...), nil
	case OpBroadcast0:
		if err := argc(1); err != nil {
			return nil, err
		}
		if attrs.N <= 0 {
			return nil, fmt.Errorf("broadcast0 needs positive N, got %d", attrs.N)
		}
		return append([]int{attrs.N}, in[0]...), nil
	case OpBroadcastS:
		if err := argc(1); err != nil {
			return nil, err
		}
		if len(in[0]) != 0 {
			return nil, fmt.Errorf("broadcast_s wants a scalar operand, got %v", in[0])
		}
		return append([]int(nil), attrs.Shape...), nil
	case OpSoftmax:
		if err := argc(1); err != nil {
			return nil, err
		}
		if len(in[0]) != 2 {
			return nil, fmt.Errorf("rank-2 operand required, got %v", in[0])
		}
		return append([]int(nil), in[0]...), nil
	case OpXent:
		if err := argc(2); err != nil {
			return nil, err
		}
		if !tensor.ShapeEq(in[0], in[1]) || len(in[0]) != 2 {
			return nil, fmt.Errorf("rank-2 matching operands required, got %v vs %v", in[0], in[1])
		}
		return []int{}, nil
	case OpXentGrad:
		if err := argc(2); err != nil {
			return nil, err
		}
		if !tensor.ShapeEq(in[0], in[1]) || len(in[0]) != 2 {
			return nil, fmt.Errorf("rank-2 matching operands required, got %v vs %v", in[0], in[1])
		}
		return append([]int(nil), in[0]...), nil
	case OpZeros, OpConst:
		if err := argc(0); err != nil {
			return nil, err
		}
		return append([]int(nil), attrs.Shape...), nil
	default:
		return nil, fmt.Errorf("unknown op %q", op)
	}
}
