package ir

import (
	"strings"
	"testing"
)

func buildFFN(t *testing.T) (*Graph, *Value, *Value, *Value, *Value) {
	t.Helper()
	g := NewGraph("ffn")
	x := g.AddInput([]int{4, 8}, "x")
	w1 := g.AddInput([]int{8, 16}, "w1")
	w2 := g.AddInput([]int{16, 8}, "w2")
	h, err := g.Emit(OpMatMul, Attrs{}, x, w1)
	if err != nil {
		t.Fatal(err)
	}
	h = g.MustEmit(OpReLU, Attrs{}, h)
	h = g.MustEmit(OpYield, Attrs{Stage: 1}, h)
	out := g.MustEmit(OpMatMul, Attrs{}, h, w2)
	g.SetOutputs(out)
	return g, x, w1, w2, out
}

func TestEmitShapeInference(t *testing.T) {
	g, _, _, _, out := buildFFN(t)
	if out.Shape[0] != 4 || out.Shape[1] != 8 {
		t.Fatalf("output shape %v", out.Shape)
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestEmitRejectsBadShapes(t *testing.T) {
	g := NewGraph("bad")
	a := g.AddInput([]int{2, 3}, "a")
	b := g.AddInput([]int{2, 3}, "b")
	if _, err := g.Emit(OpMatMul, Attrs{}, a, b); err == nil {
		t.Fatal("want matmul shape error")
	}
	if _, err := g.Emit(OpAdd, Attrs{}, a, g.AddInput([]int{3, 2}, "c")); err == nil {
		t.Fatal("want add shape error")
	}
	if _, err := g.Emit(OpReshape, Attrs{Shape: []int{7}}, a); err == nil {
		t.Fatal("want reshape element-count error")
	}
}

func TestScalarBroadcastShapes(t *testing.T) {
	g := NewGraph("bc")
	a := g.AddInput([]int{2, 3}, "a")
	s := g.AddInput([]int{}, "s")
	v, err := g.Emit(OpAdd, Attrs{}, a, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Shape) != 2 {
		t.Fatalf("scalar broadcast lost shape: %v", v.Shape)
	}
}

func TestVerifyCatchesUndefinedUse(t *testing.T) {
	g := NewGraph("broken")
	a := g.AddInput([]int{2}, "a")
	phantom := &Value{ID: 999, Shape: []int{2}}
	g.Eqns = append(g.Eqns, &Equation{Op: OpAdd, Inputs: []*Value{a, phantom}, Outputs: []*Value{g.NewValue([]int{2}, "")}})
	if err := g.Verify(); err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Fatalf("want undefined-use error, got %v", err)
	}
}

func TestVerifyCatchesDoubleDefinition(t *testing.T) {
	g := NewGraph("dup")
	a := g.AddInput([]int{2}, "a")
	v := g.MustEmit(OpReLU, Attrs{}, a)
	g.Eqns = append(g.Eqns, &Equation{Op: OpReLU, Inputs: []*Value{a}, Outputs: []*Value{v}})
	if err := g.Verify(); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("want double-definition error, got %v", err)
	}
}

func TestVerifyCatchesWrongOutputShape(t *testing.T) {
	g := NewGraph("wrongshape")
	a := g.AddInput([]int{2, 3}, "a")
	bad := g.NewValue([]int{3, 3}, "")
	g.Eqns = append(g.Eqns, &Equation{Op: OpTranspose, Inputs: []*Value{a}, Outputs: []*Value{bad}})
	g.SetOutputs(bad)
	if err := g.Verify(); err == nil {
		t.Fatal("want shape mismatch error")
	}
}

func TestDCE(t *testing.T) {
	g := NewGraph("dce")
	a := g.AddInput([]int{2, 2}, "a")
	used := g.MustEmit(OpReLU, Attrs{}, a)
	g.MustEmit(OpTanh, Attrs{}, a) // dead
	dead2 := g.MustEmit(OpTranspose, Attrs{}, a)
	g.MustEmit(OpReLU, Attrs{}, dead2) // dead chain
	g.SetOutputs(used)
	removed := g.DCE()
	if removed != 3 {
		t.Fatalf("removed %d, want 3", removed)
	}
	if len(g.Eqns) != 1 {
		t.Fatalf("left %d eqns", len(g.Eqns))
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestDCEKeepsTransitiveDeps(t *testing.T) {
	g := NewGraph("dce2")
	a := g.AddInput([]int{2, 2}, "a")
	x := g.MustEmit(OpReLU, Attrs{}, a)
	y := g.MustEmit(OpTanh, Attrs{}, x)
	g.SetOutputs(y)
	if removed := g.DCE(); removed != 0 {
		t.Fatalf("removed %d live eqns", removed)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g, _, _, _, _ := buildFFN(t)
	c := g.Clone()
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	c.Eqns[0].Attrs.Factor = 99
	if g.Eqns[0].Attrs.Factor == 99 {
		t.Fatal("clone shares attrs")
	}
	c.Inputs[0].Shape[0] = 77
	if g.Inputs[0].Shape[0] == 77 {
		t.Fatal("clone shares value shapes")
	}
	if len(c.Eqns) != len(g.Eqns) {
		t.Fatal("clone eqn count differs")
	}
}

func TestProducerAndUses(t *testing.T) {
	g, x, w1, _, out := buildFFN(t)
	p := g.Producer()
	if p[x.ID] != -1 || p[w1.ID] != -1 {
		t.Fatal("inputs should have producer -1")
	}
	if p[out.ID] != len(g.Eqns)-1 {
		t.Fatalf("output producer %d", p[out.ID])
	}
	u := g.Uses()
	if len(u[out.ID]) != 1 || u[out.ID][0] != len(g.Eqns) {
		t.Fatalf("graph output should be used by sentinel index: %v", u[out.ID])
	}
	if len(u[x.ID]) != 1 {
		t.Fatalf("x uses: %v", u[x.ID])
	}
}

func TestYieldBoundariesAndNumStages(t *testing.T) {
	g, _, _, _, _ := buildFFN(t)
	fwd, bwd := g.YieldBoundaries()
	if len(fwd) != 1 || len(bwd) != 0 {
		t.Fatalf("fwd=%v bwd=%v", fwd, bwd)
	}
	if g.NumStages() != 2 {
		t.Fatalf("stages=%d", g.NumStages())
	}
}

func TestStringRendering(t *testing.T) {
	g, _, _, _, _ := buildFFN(t)
	s := g.String()
	for _, want := range []string{"ffn(", "matmul", "pipeline_yield", "stage=1", "return"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
}

func TestInferShapeUnknownOp(t *testing.T) {
	if _, err := InferShape(Op("bogus"), Attrs{}, nil); err == nil {
		t.Fatal("want unknown-op error")
	}
}

func TestInferShapeBroadcasts(t *testing.T) {
	s, err := InferShape(OpBroadcast0, Attrs{N: 4}, [][]int{{3, 2}})
	if err != nil || s[0] != 4 || s[1] != 3 || s[2] != 2 {
		t.Fatalf("broadcast0: %v %v", s, err)
	}
	if _, err := InferShape(OpBroadcast0, Attrs{N: 0}, [][]int{{3}}); err == nil {
		t.Fatal("want error for N=0")
	}
	s, err = InferShape(OpBroadcastS, Attrs{Shape: []int{2, 2}}, [][]int{{}})
	if err != nil || len(s) != 2 {
		t.Fatalf("broadcast_s: %v %v", s, err)
	}
	if _, err := InferShape(OpBroadcastS, Attrs{Shape: []int{2}}, [][]int{{3}}); err == nil {
		t.Fatal("broadcast_s wants scalar operand")
	}
}
