package distrun

import (
	"runtime/metrics"
	"time"

	"repro/internal/obs"
)

// Per-step telemetry sampling: at each step boundary the sampler reads the
// live obs aggregates (allocation-free BreakdownNow/CounterNow), the runtime
// allocation count, and the transport's sender-queue depth, differences them
// against the previous boundary, and publishes one obs.StepSample into the
// process-global ring — where the control-plane heartbeat picks it up for
// streaming to the coordinator. Everything here is gated on
// obs.StepsEnabled(): an unarmed job pays one atomic load per step.

// Registered (or looked up) once; the wire and pool layers own the actual
// counting, the sampler only reads.
var (
	ctBytesSent  = obs.Counter("wire/bytes_sent")
	ctBytesRecvd = obs.Counter("wire/bytes_recvd")
	ctPoolHit    = obs.Counter("pool/hit")
	ctPoolMiss   = obs.Counter("pool/miss")
)

// queueDepther is the optional transport probe: the TCP transport reports
// its deepest sender mailbox; transports without queues report nothing.
type queueDepther interface{ QueueDepth() int }

// stepSampler differences cumulative aggregates into per-step deltas.
type stepSampler struct {
	rank int
	qd   queueDepther // nil when the transport has no sender queues

	prevCompute, prevWire, prevIdle int64
	prevSent, prevRecvd             int64
	prevHit, prevMiss               int64
	prevAllocs                      uint64
	allocSamples                    []metrics.Sample
}

// newStepSampler primes the baselines so the first step's deltas do not
// absorb bootstrap-time traffic. tr may be anything; only transports
// implementing QueueDepth are probed.
func newStepSampler(rank int, tr any) *stepSampler {
	s := &stepSampler{rank: rank}
	s.qd, _ = tr.(queueDepther)
	s.allocSamples = []metrics.Sample{{Name: "/gc/heap/allocs:objects"}}
	if obs.StepsEnabled() {
		s.prime()
	}
	return s
}

func (s *stepSampler) prime() {
	s.prevCompute, s.prevWire, s.prevIdle = obs.BreakdownNow()
	s.prevSent = obs.CounterNow(ctBytesSent)
	s.prevRecvd = obs.CounterNow(ctBytesRecvd)
	s.prevHit = obs.CounterNow(ctPoolHit)
	s.prevMiss = obs.CounterNow(ctPoolMiss)
	metrics.Read(s.allocSamples)
	s.prevAllocs = s.allocSamples[0].Value.Uint64()
}

// record publishes one sample for a completed step. No-op (one atomic load)
// when the telemetry plane is off.
func (s *stepSampler) record(step int, wall time.Duration) {
	if !obs.StepsEnabled() {
		return
	}
	compute, wire, idle := obs.BreakdownNow()
	sent := obs.CounterNow(ctBytesSent)
	recvd := obs.CounterNow(ctBytesRecvd)
	hit := obs.CounterNow(ctPoolHit)
	miss := obs.CounterNow(ctPoolMiss)
	metrics.Read(s.allocSamples)
	allocs := s.allocSamples[0].Value.Uint64()
	depth := 0
	if s.qd != nil {
		depth = s.qd.QueueDepth()
	}
	obs.RecordStep(obs.StepSample{
		Rank:       int64(s.rank),
		Step:       int64(step),
		WallNs:     int64(wall),
		ComputeNs:  compute - s.prevCompute,
		WireNs:     wire - s.prevWire,
		IdleNs:     idle - s.prevIdle,
		BytesSent:  sent - s.prevSent,
		BytesRecvd: recvd - s.prevRecvd,
		QueueDepth: int64(depth),
		PoolHit:    hit - s.prevHit,
		PoolMiss:   miss - s.prevMiss,
		Allocs:     int64(allocs - s.prevAllocs),
	})
	s.prevCompute, s.prevWire, s.prevIdle = compute, wire, idle
	s.prevSent, s.prevRecvd = sent, recvd
	s.prevHit, s.prevMiss = hit, miss
	s.prevAllocs = allocs
}

// beginTelemetry arms the per-step telemetry plane (and the obs registry it
// reads through) for a job's duration, returning the teardown that restores
// prior gate state. Composes with beginProfiling: both may arm the registry,
// each restores only what it changed.
func beginTelemetry() (restore func()) {
	wasSteps := obs.StepsEnabled()
	wasObs := obs.Enabled()
	obs.EnableSteps()
	obs.Enable()
	return func() {
		if !wasSteps {
			obs.DisableSteps()
		}
		if !wasObs {
			obs.Disable()
		}
	}
}
