package distrun

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/collective"
	"repro/internal/dist"
	"repro/internal/tensor"
)

// The wire-collective verification job: every rank of a bootstrapped world
// runs the same deterministic sequence of ring collectives — bucketed
// AllReduce, AllGather, Broadcast, Barrier — over the TCP data plane and
// checks the results against locally computed expectations. Payloads are
// integer-valued floats, so every reduction order produces identical bits
// and verification needs no tolerance and no reference rank: each process
// can convict the wire path on its own and exit nonzero. This is the job
// the 8-process CI smoke runs — the first collective larger than 4
// processes ever exercised over real sockets.

// KindCollective is the CollectiveSpec payload kind.
const KindCollective = "collective"

// CollectiveSpec is the coordinator-distributed description of one
// wire-collective verification job.
type CollectiveSpec struct {
	Kind  string `json:"kind"` // KindCollective
	World int    `json:"world"`
	// Elems is the per-rank element count of the all-reduced vector (split
	// into several tensors so bucket fusion is exercised).
	Elems int    `json:"elems"`
	Iters int    `json:"iters"`
	Seed  uint64 `json:"seed"`
	// BucketBytes caps fusion buckets (0 = collective.DefaultBucketBytes).
	// The CI smoke passes a small cap so one iteration walks several
	// buckets and chunked rings rather than a single fused transfer.
	BucketBytes int `json:"bucket_bytes,omitempty"`
	// WireDType selects the collective wire encoding ("" or "f64" lossless,
	// "f32" single-precision). The verification payloads are integers far
	// below 2^24, so every value and partial sum is exactly representable in
	// f32 and the bit-exact self-checks still hold — which is precisely what
	// makes the f32 smoke a real verification and rules out "int8q": its
	// round trip is lossy by design, so a bit-exact check is impossible and
	// Validate rejects it.
	WireDType string `json:"wire_dtype,omitempty"`
}

// Marshal encodes the spec for the rendezvous job payload.
func (s CollectiveSpec) Marshal() []byte {
	s.Kind = KindCollective
	data, err := json.Marshal(s)
	if err != nil {
		panic(err) // plain struct of scalars; cannot fail
	}
	return data
}

// Validate checks the spec's invariants — shared by the decode path and the
// local/coordinator entry points, so a degenerate spec (world 0 would
// "verify" nothing and report success) fails loudly everywhere.
func (s CollectiveSpec) Validate() error {
	if s.World < 1 || s.Elems < 1 || s.Iters < 1 {
		return fmt.Errorf("distrun: invalid collective spec %+v", s)
	}
	dt, err := dist.ParseDType(s.WireDType)
	if err != nil {
		return err
	}
	if dt == dist.DTInt8Q {
		return fmt.Errorf("distrun: collective verification cannot run on int8q: the quantized round trip is lossy, so the job's bit-exact self-check cannot pass")
	}
	return nil
}

// UnmarshalCollectiveSpec decodes a rendezvous job payload.
func UnmarshalCollectiveSpec(data []byte) (CollectiveSpec, error) {
	var s CollectiveSpec
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("distrun: bad collective job payload: %w", err)
	}
	if s.Kind != KindCollective {
		return s, fmt.Errorf("distrun: payload kind %q is not a collective job", s.Kind)
	}
	if err := s.Validate(); err != nil {
		return s, err
	}
	return s, nil
}

// RunCollective executes the verification job on this rank of a
// bootstrapped session and blocks until every rank has passed (the session
// barrier at the end keeps a fast rank from tearing down the mesh under a
// slower one).
func RunCollective(sess *dist.Session, spec CollectiveSpec) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	if sess.World != spec.World {
		return fmt.Errorf("distrun: session world %d, collective job wants %d", sess.World, spec.World)
	}
	if err := RunCollectiveOn(sess.Transport, sess.Rank, spec); err != nil {
		return err
	}
	if err := sess.Barrier(); err != nil {
		return fmt.Errorf("distrun: rank %d end-of-job barrier: %w", sess.Rank, err)
	}
	return nil
}

// RunCollectiveLocal runs the same verification inside one process over a
// dist.LocalMesh (one TCP endpoint per rank, one goroutine per rank) — the
// single-binary rehearsal of the multi-process smoke. opts configures the
// endpoints (CRC trailers, receive timeouts).
func RunCollectiveLocal(spec CollectiveSpec, opts dist.Options) error {
	if err := spec.Validate(); err != nil {
		return err
	}
	mesh, err := dist.NewLocalMesh(spec.World, opts)
	if err != nil {
		return err
	}
	defer mesh.Close()
	errs := make([]error, spec.World)
	done := make(chan int, spec.World)
	for r := 0; r < spec.World; r++ {
		go func(r int) {
			errs[r] = RunCollectiveOn(mesh, r, spec)
			if errs[r] != nil {
				// A failed rank stops participating in the ring; poison the
				// mesh so its peers fail out of their receives immediately
				// instead of blocking until the receive timeout.
				mesh.Poison(fmt.Errorf("distrun: local collective rank %d failed: %w", r, errs[r]))
			}
			done <- r
		}(r)
	}
	for i := 0; i < spec.World; i++ {
		<-done
	}
	// Report the verification failure that started the collapse, not a
	// peer's secondary poisoned-transport error.
	if err := mesh.Err(); err != nil {
		return err
	}
	for r, err := range errs {
		if err != nil {
			return fmt.Errorf("distrun: local collective rank %d: %w", r, err)
		}
	}
	return nil
}

// vShardCounts is the deliberately uneven variable-shard partition the
// verification job exercises: the balanced split with the middle rank's
// allotment handed to its successor, so every world of two or more ranks
// walks the empty-shard edge case (zero-size ring chunks must still keep the
// tag windows in lockstep).
func vShardCounts(elems, n int) []int {
	counts := collective.EvenCounts(elems, n)
	if n >= 2 {
		z := n / 2
		counts[(z+1)%n] += counts[z]
		counts[z] = 0
	}
	return counts
}

// rankValue is the deterministic integer-valued payload element for (rank,
// element, iteration): small enough that world-size sums stay far below
// 2^53, so floating-point addition is exact in every order.
func rankValue(spec CollectiveSpec, rank, i, iter int) float64 {
	base := float64(spec.Seed%1000+1) + float64(iter)
	return (base + float64(rank+1)) * float64(i%97+1)
}

// RunCollectiveOn is the transport-level core of the verification job,
// shared by the multi-process path (dist.Transport) and the LocalMesh
// rehearsal. rank is this caller's actor ID; every actor 0..World-1 must
// run it concurrently.
func RunCollectiveOn(tr collective.Transport, rank int, spec CollectiveSpec) error {
	if dt, err := dist.ParseDType(spec.WireDType); err != nil {
		return err
	} else if !dt.Lossless() {
		// Mark the world communicator's whole tag window lossy: unlike a
		// training job, every collective here is the thing under test, so all
		// of them ride the requested encoding.
		if !armLossyWire(tr, dt, worldGroupID) {
			return fmt.Errorf("distrun: transport %T cannot carry wire dtype %s", tr, dt)
		}
	}
	comm, err := worldComm(tr, spec.World, rank)
	if err != nil {
		return err
	}
	n := spec.World

	// Split the per-rank vector into three tensors sized so the bucketed
	// all-reduce walks both of its paths: the two small tensors together fit
	// one fusion bucket (the flat pack/reduce/unpack staging path), while
	// the remainder — larger than the cap for every shipped configuration —
	// forms its own single-tensor bucket (the direct in-place path).
	bb := spec.BucketBytes
	if bb <= 0 {
		bb = collective.DefaultBucketBytes
	}
	capElems := max(bb/8, 2)
	small := max(min(spec.Elems/4, capElems/2), 1)
	sizes := []int{small, small, max(spec.Elems-2*small, 1)}
	ts := make([]*tensor.Tensor, len(sizes))
	for i, sz := range sizes {
		ts[i] = tensor.GetScratch(sz)
	}
	defer func() {
		for _, t := range ts {
			tensor.Recycle(t)
		}
	}()

	shardLen := max(spec.Elems/n, 1)
	shard := tensor.GetScratch(shardLen)
	gathered := tensor.GetScratch(n * shardLen)
	bcast := tensor.GetScratch(shardLen)
	defer tensor.Recycle(shard)
	defer tensor.Recycle(gathered)
	defer tensor.Recycle(bcast)

	// Variable-shard pair: uneven counts (one deliberately empty shard for
	// n >= 2 — see vShardCounts), a full per-rank vector reduced-scattered
	// down to this rank's slice, then gathered back, which must reproduce
	// the all-reduce sum bit for bit on every rank.
	vcounts := vShardCounts(spec.Elems, n)
	vfull := tensor.GetScratch(spec.Elems)
	vshard := tensor.GetScratch(vcounts[rank])
	vout := tensor.GetScratch(spec.Elems)
	defer tensor.Recycle(vfull)
	defer tensor.Recycle(vshard)
	defer tensor.Recycle(vout)
	vstart := 0
	for r := 0; r < rank; r++ {
		vstart += vcounts[r]
	}

	for iter := 0; iter < spec.Iters; iter++ {
		// Bucketed ring AllReduce: verify the element-wise sum over ranks.
		off := 0
		for _, t := range ts {
			for j := range t.Data() {
				t.Data()[j] = rankValue(spec, rank, off+j, iter)
			}
			off += t.Size()
		}
		if err := comm.AllReduceBucketsInPlace(ts, collective.OpSum, spec.BucketBytes); err != nil {
			return fmt.Errorf("rank %d iter %d all-reduce: %w", rank, iter, err)
		}
		off = 0
		for ti, t := range ts {
			for j, got := range t.Data() {
				var want float64
				for r := 0; r < n; r++ {
					want += rankValue(spec, r, off+j, iter)
				}
				if math.Float64bits(got) != math.Float64bits(want) {
					return fmt.Errorf("rank %d iter %d all-reduce tensor %d elem %d: got %v, want %v", rank, iter, ti, j, got, want)
				}
			}
			off += t.Size()
		}

		// Ring AllGather: verify every rank's shard lands in its slot.
		for j := range shard.Data() {
			shard.Data()[j] = rankValue(spec, rank, j, iter)
		}
		if err := comm.AllGatherInto(gathered, shard); err != nil {
			return fmt.Errorf("rank %d iter %d all-gather: %w", rank, iter, err)
		}
		for r := 0; r < n; r++ {
			for j := 0; j < shardLen; j++ {
				got, want := gathered.Data()[r*shardLen+j], rankValue(spec, r, j, iter)
				if math.Float64bits(got) != math.Float64bits(want) {
					return fmt.Errorf("rank %d iter %d all-gather slot (%d,%d): got %v, want %v", rank, iter, r, j, got, want)
				}
			}
		}

		// ReduceScatterV → AllGatherV: the ZeRO epilogue's exchange pair over
		// uneven shards (including an empty one). The reduce-scatter consumes
		// the full input as scratch and delivers only this rank's slice; the
		// gather of the variable-size slices must equal the all-reduce sum.
		for j := range vfull.Data() {
			vfull.Data()[j] = rankValue(spec, rank, j, iter)
		}
		if err := comm.ReduceScatterVInto(vshard, vfull, vcounts, collective.OpSum, spec.BucketBytes); err != nil {
			return fmt.Errorf("rank %d iter %d reduce-scatterv: %w", rank, iter, err)
		}
		for j, got := range vshard.Data() {
			var want float64
			for r := 0; r < n; r++ {
				want += rankValue(spec, r, vstart+j, iter)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				return fmt.Errorf("rank %d iter %d reduce-scatterv elem %d: got %v, want %v", rank, iter, j, got, want)
			}
		}
		if err := comm.AllGatherVInto(vout, vshard, vcounts); err != nil {
			return fmt.Errorf("rank %d iter %d all-gatherv: %w", rank, iter, err)
		}
		for j, got := range vout.Data() {
			var want float64
			for r := 0; r < n; r++ {
				want += rankValue(spec, r, j, iter)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				return fmt.Errorf("rank %d iter %d all-gatherv elem %d: got %v, want %v", rank, iter, j, got, want)
			}
		}

		// Pipelined ring Broadcast from a rotating root.
		root := iter % n
		if rank == root {
			for j := range bcast.Data() {
				bcast.Data()[j] = rankValue(spec, root, j, iter)
			}
		} else {
			clear(bcast.Data())
		}
		if err := comm.BroadcastInto(bcast, root); err != nil {
			return fmt.Errorf("rank %d iter %d broadcast: %w", rank, iter, err)
		}
		for j, got := range bcast.Data() {
			if want := rankValue(spec, root, j, iter); math.Float64bits(got) != math.Float64bits(want) {
				return fmt.Errorf("rank %d iter %d broadcast elem %d: got %v, want %v", rank, iter, j, got, want)
			}
		}

		// Dissemination barrier rounds off the iteration, keeping tag
		// windows in lockstep across ranks of any speed.
		if err := comm.Barrier(); err != nil {
			return fmt.Errorf("rank %d iter %d barrier: %w", rank, iter, err)
		}
	}
	return nil
}
