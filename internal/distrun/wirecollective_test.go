package distrun

import (
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/collective"
	"repro/internal/dist"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

// TestHostedFilterMatchesUnfiltered2Ranks is the hosted-actor-filter
// equivalence bar: a 2-rank run where each process materializes only its own
// actor must produce losses and final parameters bit-identical to the same
// run with every rank loading the full world-size cluster — and both must
// match the in-process reference.
func TestHostedFilterMatchesUnfiltered2Ranks(t *testing.T) {
	spec := JobSpec{
		Stages: 2, NumMB: 4, MBRows: 4, Width: 16,
		Steps: 5, LR: 0.5, Schedule: "1f1b", Seed: 11,
	}
	local, err := RunLocal(spec)
	if err != nil {
		t.Fatal(err)
	}
	filtered := launchWorld(t, spec) // distrun.Run hosts one actor per rank by default
	spec.NoHostedFilter = true
	unfiltered := launchWorld(t, spec)
	requireBitIdentical(t, filtered, local)
	requireBitIdentical(t, unfiltered, local)
	requireBitIdentical(t, filtered, unfiltered)
}

// TestNegZeroFillIsExactAdditiveIdentity pins the IEEE identity the gradient
// exchange rests on: an all-reduce where one rank contributes the payload
// and every other rank contributes negative zeros must reproduce the
// owner's bits exactly — including for payload elements that are themselves
// ±0.0, denormal, or negative (a +0.0 fill would flip -0.0 payloads to +0.0
// and break bit-for-bit parity with the in-process reference).
func TestNegZeroFillIsExactAdditiveIdentity(t *testing.T) {
	payload := []float64{
		math.Copysign(0, -1), 0.0, 1.5, -1.5,
		5e-324, -5e-324, // denormals
		math.MaxFloat64, -math.MaxFloat64, 1e-300, -3.75,
	}
	const n = 4
	tr := runtime.NewChanTransport()
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = i
	}
	group, err := collective.NewGroup(tr, ranks, 0)
	if err != nil {
		t.Fatal(err)
	}
	outs := make([][]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r, owner int) {
			defer wg.Done()
			comm, err := group.Comm(r)
			if err != nil {
				errs[r] = err
				return
			}
			buf := tensor.GetScratch(len(payload))
			if r == owner {
				buf.CopyFrom(payload)
			} else {
				for i := range buf.Data() {
					buf.Data()[i] = negZero
				}
			}
			errs[r] = comm.AllReduceBucketsInPlace([]*tensor.Tensor{buf}, collective.OpSum, 0)
			outs[r] = append([]float64(nil), buf.Data()...)
		}(r, 2)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	for r, out := range outs {
		for i, got := range out {
			if math.Float64bits(got) != math.Float64bits(payload[i]) {
				t.Fatalf("rank %d elem %d: got %v (bits %x), want %v (bits %x)",
					r, i, got, math.Float64bits(got), payload[i], math.Float64bits(payload[i]))
			}
		}
	}
}

// TestCollectiveJobOverLocalMesh runs the self-verifying wire-collective job
// across 8 TCP endpoints inside one process — the same world size and op
// sequence as the CI smoke, minus the OS-process fan-out.
func TestCollectiveJobOverLocalMesh(t *testing.T) {
	spec := CollectiveSpec{
		Kind: KindCollective, World: 8, Elems: 4096, Iters: 2,
		Seed: 7, BucketBytes: 1 << 13, // several fusion buckets per iteration
	}
	if err := RunCollectiveLocal(spec, dist.Options{CRC: true}); err != nil {
		t.Fatal(err)
	}
}

// TestJobPayloadKindDispatch pins the payload-kind discrimination both
// decoders enforce: a collective payload must not decode as a training job
// and vice versa, so a mixed-version world fails loudly at rendezvous
// instead of running the wrong job.
func TestJobPayloadKindDispatch(t *testing.T) {
	cs := CollectiveSpec{World: 4, Elems: 64, Iters: 1}
	if _, err := UnmarshalJobSpec(cs.Marshal()); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Fatalf("training decoder accepted a collective payload: %v", err)
	}
	js := JobSpec{Stages: 2, NumMB: 2, MBRows: 2, Width: 8, Steps: 1, LR: 0.1, Seed: 1}
	if _, err := UnmarshalCollectiveSpec(js.Marshal()); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Fatalf("collective decoder accepted a training payload: %v", err)
	}
	if _, err := UnmarshalCollectiveSpec(CollectiveSpec{Kind: KindCollective}.Marshal()); err == nil {
		t.Fatal("collective decoder accepted an empty spec")
	}
}
