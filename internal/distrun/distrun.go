// Package distrun executes a training job across OS processes on the dist
// runtime: every rank compiles the identical program from a shared JobSpec
// (deterministic replication — same seeds, same schedule), runs its own
// actor's share of each step over the wire transport, and exchanges step
// results through the collective engine so parameters evolve bit-identically
// on every rank. It is the glue between the jaxpp compiler/runtime and the
// dist coordinator/worker topology that cmd/jaxpp-train -distributed and
// cmd/jaxpp-worker share.
package distrun

import (
	"encoding/json"
	"fmt"
	"log"
	"math"
	"sort"
	"time"

	jaxpp "repro"
	"repro/internal/ckpt"
	"repro/internal/collective"
	"repro/internal/dist"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

// Step-epilogue profiling scopes: the actor's share of the step, then the
// exchange wall time split into its loss AllGather and gradient AllReduce
// halves, then the SGD update. These are envelope scopes (they contain the
// collective and wire leaf spans), so the breakdown classifier excludes them.
var (
	scStepActor    = obs.Scope("step/actor")
	scLossGather   = obs.Scope("step/loss_gather")
	scGradReduce   = obs.Scope("step/grad_allreduce")
	scSGD          = obs.Scope("step/sgd")
	cStepsProfiled = obs.Counter("step/count")
	// scQuantEF times the error-feedback fold + local quantization;
	// scQuantResidual observes the per-step residual L2 norm in nano-units
	// (norm × 1e9 as an integer), so profiles show whether the carried
	// quantization error stays bounded or drifts.
	scQuantEF       = obs.Scope("step/quant_ef")
	scQuantResidual = obs.Scope("wire/quant_residual_norm")
)

// The collective engine runs directly over the multi-process wire transport:
// dist endpoints (and the single-process LocalMesh) satisfy the collective
// point-to-point contract, including the SenderOwnsSent capability that lets
// ring chunks recycle on serializing transports.
var (
	_ collective.Transport = (*dist.Transport)(nil)
	_ collective.Transport = (*dist.LocalMesh)(nil)
)

// JobSpec is the coordinator-distributed description of one training job.
// Workers receive it as the rendezvous job payload and reconstruct the
// identical compiled program from it.
type JobSpec struct {
	// Kind discriminates rendezvous job payloads ("" or "train" is a
	// training job); RunJob dispatches on it.
	Kind   string  `json:"kind,omitempty"`
	Stages int     `json:"stages"`
	NumMB  int     `json:"num_mb"`
	MBRows int     `json:"mb_rows"`
	Width  int     `json:"width"`
	Steps  int     `json:"steps"`
	LR     float64 `json:"lr"`
	// Momentum enables heavy-ball SGD (v ← μ·v + g; p ← p − lr·v) when
	// nonzero — real optimizer state for checkpoints to carry alongside the
	// parameters. Zero keeps plain SGD.
	Momentum float64 `json:"momentum,omitempty"`
	// Sharded switches the step epilogue from "AllReduce everything, every
	// rank updates everything" to ZeRO-1-style owner-major sharding: a
	// bucketed ring ReduceScatter delivers each rank only the gradient slice
	// it owns, the fused optimizer update runs on that slice against
	// shard-local optimizer state (~1/world of the replicated footprint), and
	// a ring AllGatherV of the variable-size updated slices redistributes the
	// parameters. Bit-identical losses and parameters to the dense path;
	// checkpoints switch to the owner-major shard layout, which restores
	// across world-size changes (elastic shrink included).
	Sharded      bool   `json:"sharded,omitempty"`
	Schedule     string `json:"schedule"`      // "gpipe" or "1f1b"
	DataParallel int    `json:"data_parallel"` // replicas; 0 or 1 disables
	SPMD         int    `json:"spmd"`          // virtual SPMD devices per actor; 0/1 disables
	Seed         uint64 `json:"seed"`
	// CkptDir enables rank-sharded checkpointing when nonempty: every
	// CkptEvery completed steps each rank writes its owned slice of the
	// training state (round-robin over the world) as wire-codec frames, a
	// barrier fences durability, and rank 0 commits the step with a manifest
	// (see package ckpt). On start, every rank independently restores the
	// newest consistent checkpoint and the job resumes at its step. The
	// directory must be reachable by every rank (one host, or a shared
	// filesystem).
	CkptDir string `json:"ckpt_dir,omitempty"`
	// CkptEvery is the checkpoint period in steps (default 0 = only if
	// CkptDir is set, every 10 steps).
	CkptEvery int `json:"ckpt_every,omitempty"`
	// StepSleepMs inserts an artificial pause after every step on every
	// rank — test instrumentation that stretches a job out so failure
	// injection (worker kill) has a stable window to land in.
	StepSleepMs int `json:"step_sleep_ms,omitempty"`
	// NoHostedFilter makes every rank materialize the full world-size
	// cluster instead of only its own actor — test instrumentation proving
	// the hosted-actor filter does not change numerics.
	NoHostedFilter bool `json:"no_hosted_filter,omitempty"`
	// Profile enables the obs registry on every rank for the job's duration:
	// per-step one-line summaries, and an end-of-job profile snapshot per rank
	// shipped to the coordinator (Report.Profiles on rank 0). Travels in the
	// rendezvous payload so one flag on the coordinator profiles the world.
	Profile bool `json:"profile,omitempty"`
	// ProfileLocal arms the registry and per-step summaries on this rank only
	// (jaxpp-worker -profile). Deliberately unmarshaled: the end-of-job
	// snapshot exchange must stay symmetric across ranks, so shipping follows
	// Profile (the payload) alone.
	ProfileLocal bool `json:"-"`
	// Telemetry arms the live telemetry plane on every rank: one
	// obs.StepSample per step into the process-local ring, streamed to the
	// coordinator piggybacked on control-plane heartbeats. Travels in the
	// rendezvous payload so the coordinator's -metrics-addr flag lights up
	// the whole world without per-worker flags.
	Telemetry bool `json:"telemetry,omitempty"`
	// WireDType selects the wire encoding of gradient collective traffic:
	// "" or "f64" (lossless, the default), "f32" (halves gradient wire
	// bytes), or "int8q" (~8× smaller, with rank-local error-feedback
	// residuals carrying the quantization error into the next step). Only
	// the gradient communicator's tag window compresses — losses, pipeline
	// activations, control frames, and checkpoints always ship f64. Travels
	// in the rendezvous payload so one coordinator flag arms the world.
	WireDType string `json:"wire_dtype,omitempty"`
	// Shape, when set, wraps every rank's data plane in a dist.ShapedTransport
	// modeling a degraded network (latency/jitter/bandwidth/loss) — the CI
	// tier that validates multi-host behavior without netem. Travels in the
	// payload so all ranks shape identically.
	Shape *ShapeSpec `json:"shape,omitempty"`
}

// ShapeSpec is the JSON-friendly form of dist.ShapeOpts carried in the
// rendezvous payload.
type ShapeSpec struct {
	LatencyUs    int64   `json:"latency_us,omitempty"`
	JitterUs     int64   `json:"jitter_us,omitempty"`
	BandwidthGBs float64 `json:"bandwidth_gbs,omitempty"`
	LossProb     float64 `json:"loss_prob,omitempty"`
	Seed         uint64  `json:"seed,omitempty"`
}

// Opts converts the payload form into the shaper's options.
func (s *ShapeSpec) Opts() dist.ShapeOpts {
	return dist.ShapeOpts{
		Latency:      time.Duration(s.LatencyUs) * time.Microsecond,
		Jitter:       time.Duration(s.JitterUs) * time.Microsecond,
		BandwidthGBs: s.BandwidthGBs,
		LossProb:     s.LossProb,
		Seed:         s.Seed,
	}
}

// KindTrain is the JobSpec payload kind (the empty string means the same).
const KindTrain = "train"

// World returns the process count the job needs: one per global actor.
func (s JobSpec) World() int {
	return max(s.DataParallel, 1) * s.Stages
}

// Replicas returns the data-parallel replica count (>= 1).
func (s JobSpec) Replicas() int { return max(s.DataParallel, 1) }

// Marshal encodes the spec for the rendezvous job payload.
func (s JobSpec) Marshal() []byte {
	data, err := json.Marshal(s)
	if err != nil {
		panic(err) // plain struct of scalars; cannot fail
	}
	return data
}

// UnmarshalJobSpec decodes a rendezvous job payload.
func UnmarshalJobSpec(data []byte) (JobSpec, error) {
	var s JobSpec
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("distrun: bad job payload: %w", err)
	}
	if s.Kind != "" && s.Kind != KindTrain {
		return s, fmt.Errorf("distrun: payload kind %q is not a training job", s.Kind)
	}
	if s.Stages < 1 || s.NumMB < 1 || s.Steps < 0 {
		return s, fmt.Errorf("distrun: invalid job spec %+v", s)
	}
	if _, err := dist.ParseDType(s.WireDType); err != nil {
		return s, err
	}
	return s, nil
}

// worldGroupID selects the tag window of the all-ranks process group the
// result exchange runs on. DP-sync groups derived from the actor mesh use
// IDs 0..pp-1 (data axis) and pp..pp+replicas-1 (pipe axis, if anyone builds
// them), so a constant far above any realistic stage or replica count keeps
// the windows disjoint. The calibration window (TagSpaceBase/2) and pipeline
// P2P tags (small sequential ints) are below every group window by
// construction.
const worldGroupID = 1 << 10

// gradGroupID is the dedicated all-ranks group the gradient exchange moves
// to when a lossy wire dtype is armed: its tag window is disjoint from
// worldGroupID's, so marking it lossy on the transport compresses exactly
// the gradient collectives — the loss AllGather, start-step agreement, and
// every other world-group operation stay on the lossless window.
const gradGroupID = worldGroupID + 1

// worldComm returns this rank's communicator on the all-ranks process group
// (ranks 0..world-1 under worldGroupID) — the single construction both the
// training epilogue and the collective verification job use, so the two
// paths can never drift onto different tag windows.
func worldComm(tr collective.Transport, world, rank int) (*collective.Communicator, error) {
	return worldCommID(tr, world, rank, worldGroupID)
}

// worldCommID is worldComm on an explicit group ID (the lossy gradient
// exchange runs on gradGroupID's window).
func worldCommID(tr collective.Transport, world, rank, groupID int) (*collective.Communicator, error) {
	ranks := make([]int, world)
	for i := range ranks {
		ranks[i] = i
	}
	group, err := collective.NewGroup(tr, ranks, groupID)
	if err != nil {
		return nil, err
	}
	return group.Comm(rank)
}

// lossyWireConfigurer is the transport capability the lossy plane needs;
// the dist TCP Transport and LocalMesh implement it. A transport without it
// (in-process channels) simply trains lossless.
type lossyWireConfigurer interface {
	SetWireDType(dist.DType)
	SetLossyTagWindow(lo, hi int)
}

// armLossyWire marks groupID's collective tag window lossy with the given
// dtype on a capable transport. Reports whether the transport accepted it.
func armLossyWire(tr any, dt dist.DType, groupID int) bool {
	lw, ok := tr.(lossyWireConfigurer)
	if !ok {
		return false
	}
	lo, hi := collective.GroupTagRange(groupID)
	lw.SetLossyTagWindow(lo, hi)
	lw.SetWireDType(dt)
	return true
}

// RunJob dispatches a rendezvous job payload to its runner: training jobs go
// to Run, wire-collective verification jobs to RunCollective. It is the
// single entry point a jaxpp-worker needs — the payload kind, not a CLI
// flag, selects the work.
func RunJob(sess *dist.Session) error { return RunJobProfiled(sess, false) }

// RunJobProfiled is RunJob with a rank-local profiling override: when
// localProfile is set, a training job logs per-step summaries on this rank
// even if the coordinator's payload did not request profiling. The end-of-job
// snapshot exchange still follows the payload alone.
func RunJobProfiled(sess *dist.Session, localProfile bool) error {
	return RunJobWith(sess, JobOptions{Profile: localProfile})
}

// JobOptions are rank-local overrides a worker applies on top of the
// coordinator's payload.
type JobOptions struct {
	// Profile logs per-step summaries on this rank (see RunJobProfiled).
	Profile bool
	// WireDType overrides the payload's gradient wire encoding on this rank
	// only. The codec is self-describing per frame, so ranks may legitimately
	// mix encodings — e.g. canarying compression on one rank of a world.
	WireDType string
}

// RunJobWith is RunJob with rank-local JobOptions applied.
func RunJobWith(sess *dist.Session, opt JobOptions) error {
	var probe struct {
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal(sess.Job, &probe); err != nil {
		return fmt.Errorf("distrun: bad job payload: %w", err)
	}
	switch probe.Kind {
	case "", KindTrain:
		spec, err := UnmarshalJobSpec(sess.Job)
		if err != nil {
			return err
		}
		spec.ProfileLocal = opt.Profile
		if opt.WireDType != "" {
			if _, err := dist.ParseDType(opt.WireDType); err != nil {
				return err
			}
			spec.WireDType = opt.WireDType
		}
		_, err = Run(sess, spec)
		return err
	case KindCollective:
		spec, err := UnmarshalCollectiveSpec(sess.Job)
		if err != nil {
			return err
		}
		return RunCollective(sess, spec)
	default:
		return fmt.Errorf("distrun: unknown job kind %q", probe.Kind)
	}
}

// ckptEvery resolves the checkpoint period: explicit when set, a default of
// 10 steps when checkpointing is enabled without one, 0 when disabled.
func (s JobSpec) ckptEvery() int {
	if s.CkptDir == "" {
		return 0
	}
	if s.CkptEvery > 0 {
		return s.CkptEvery
	}
	return 10
}

// Report is a job's outcome on one rank.
type Report struct {
	Rank  int
	World int
	// StartStep is the optimizer step the job resumed from (0 for a fresh
	// start): the loss/param histories below cover steps StartStep..Steps-1.
	StartStep int
	// MBLosses[step] holds the per-microbatch losses of that step in global
	// (replica-major) microbatch order. Populated on rank 0 only — workers
	// ship their losses to the coordinator.
	MBLosses [][]float64
	// StepLosses[step] is the mean microbatch loss (rank 0 only).
	StepLosses []float64
	// FinalParams are the post-training parameters (identical on every
	// rank; recorded everywhere for verification).
	FinalParams []*jaxpp.Tensor
	// Profiles holds every rank's end-of-job obs snapshot in rank order when
	// the spec requested profiling. Populated on rank 0 (workers ship theirs
	// over the control plane) and on the local runner (one snapshot).
	Profiles []*obs.Snapshot
}

// beginProfiling arms the obs registry for a profiled job and returns the
// teardown that restores the prior gate state. The reset discards any stale
// aggregates a previous job (or an unprofiled warmup) left behind.
func beginProfiling() (restore func()) {
	was := obs.Enabled()
	obs.SnapshotAndReset()
	obs.Enable()
	return func() {
		if !was {
			obs.Disable()
		}
	}
}

// logStepSummary emits the one-line per-step profile: wall time plus the
// compute/wire/idle delta since the previous step, read via Peek (no reset —
// the end-of-job snapshot keeps the full job's spans).
func logStepSummary(rank, step int, wall time.Duration, prev *[3]time.Duration) {
	p := obs.Peek()
	c, w, i := p.Breakdown()
	log.Printf("profile rank %d step %d: wall %.3fms compute %.3fms wire %.3fms idle %.3fms",
		rank, step, wall.Seconds()*1e3,
		(c-prev[0]).Seconds()*1e3, (w-prev[1]).Seconds()*1e3, (i-prev[2]).Seconds()*1e3)
	*prev = [3]time.Duration{c, w, i}
}

// InitModel builds the deterministic initial parameters and global batch
// every rank derives from the spec's seed — byte-identical across
// processes, which is what lets ranks replicate driver state instead of
// shipping it.
func InitModel(spec JobSpec) (params, batch []*jaxpp.Tensor) {
	rng := jaxpp.NewRNG(spec.Seed)
	params = make([]*jaxpp.Tensor, spec.Stages)
	for i := range params {
		params[i] = rng.Xavier(spec.Width, spec.Width)
	}
	rows := spec.Replicas() * spec.NumMB * spec.MBRows
	x := rng.Normal(1, rows, spec.Width)
	y := rng.OneHotBatch(rows, spec.Width)
	return params, []*jaxpp.Tensor{x, y}
}

// Compile builds the training step for a spec over the given transport
// (nil compiles onto a fresh in-process cluster), materializing every actor.
func Compile(spec JobSpec, tr runtime.Transport) (*jaxpp.TrainStep, error) {
	return CompileHosted(spec, tr, nil)
}

// CompileHosted is Compile with a hosted-actor filter: a distributed rank
// passes its own actor ID so the process materializes one actor's store,
// compiled programs, and sender workers instead of all World()'s — actor and
// loss/gradient owners are derived from the shared program metadata, which
// every rank compiles identically, so nothing about peers needs to exist
// locally. nil hosts every actor.
func CompileHosted(spec JobSpec, tr runtime.Transport, hostActors []int) (*jaxpp.TrainStep, error) {
	var sched *jaxpp.Schedule
	switch spec.Schedule {
	case "gpipe":
		sched = jaxpp.GPipe(spec.Stages, spec.NumMB)
	case "", "1f1b":
		sched = jaxpp.OneFOneB(spec.Stages, spec.NumMB)
	default:
		return nil, fmt.Errorf("distrun: unknown schedule %q", spec.Schedule)
	}
	paramShapes := make([][]int, spec.Stages)
	for i := range paramShapes {
		paramShapes[i] = []int{spec.Width, spec.Width}
	}
	var mesh *jaxpp.RemoteMesh
	if tr == nil {
		mesh = jaxpp.NewRemoteMesh(spec.World())
	} else {
		mesh = jaxpp.NewRemoteMeshWithTransport(spec.World(), tr)
	}
	return mesh.Compile(jaxpp.CompileSpec{
		Loss: func(b *jaxpp.Builder, params, mb []*jaxpp.Value) *jaxpp.Value {
			h := mb[0]
			for i, w := range params {
				h = b.ReLU(b.MatMul(h, w))
				if i+1 < len(params) {
					h = b.PipelineYield(h)
				}
			}
			return b.CrossEntropy(h, mb[1])
		},
		ParamShapes:         paramShapes,
		BatchShapes:         [][]int{{spec.MBRows, spec.Width}, {spec.MBRows, spec.Width}},
		Schedule:            sched,
		DataParallel:        spec.DataParallel,
		SPMDDevicesPerActor: spec.SPMD,
		HostActors:          hostActors,
	})
}

// ApplySGD returns params - lr·grads as fresh tensors.
func ApplySGD(params, grads []*jaxpp.Tensor, lr float64) ([]*jaxpp.Tensor, error) {
	next := make([]*jaxpp.Tensor, len(params))
	for i := range params {
		next[i] = jaxpp.NewTensor(params[i].Shape()...)
	}
	if err := ApplySGDInto(next, params, grads, lr); err != nil {
		return nil, err
	}
	return next, nil
}

// ApplySGDInto writes params - lr·grads into dst elementwise via the shared
// model.SGDRange kernel. Both the in-process reference and every distributed
// rank (dense or sharded) run this exact arithmetic, so parameter
// trajectories agree bit for bit; drivers double-buffer dst and params and
// swap after each step, so steady-state training allocates no parameter
// tensors.
func ApplySGDInto(dst, params, grads []*jaxpp.Tensor, lr float64) error {
	if len(dst) != len(params) || len(grads) != len(params) {
		return fmt.Errorf("distrun: SGD arity mismatch: %d dst, %d params, %d grads", len(dst), len(params), len(grads))
	}
	for i := range params {
		pd, gd, dd := params[i].Data(), grads[i].Data(), dst[i].Data()
		if len(pd) != len(gd) || len(pd) != len(dd) {
			return fmt.Errorf("distrun: SGD size mismatch at %d: %d params, %d grads, %d dst", i, len(pd), len(gd), len(dd))
		}
		model.SGDRange(dd, pd, gd, lr)
	}
	return nil
}

// ApplyMomentumInto runs one fused heavy-ball step elementwise via the
// shared model.MomentumRange kernel: velocity updates in place (v ← mu·v + g)
// and dst receives params − lr·v. Every rank runs this identical arithmetic
// over identical inputs, so parameter and velocity trajectories agree bit for
// bit — the property that lets checkpoints of either be rank-sharded
// arbitrarily and lets the sharded epilogue update disjoint slices.
func ApplyMomentumInto(dst, params, grads, vel []*jaxpp.Tensor, lr, mu float64) error {
	if len(dst) != len(params) || len(grads) != len(params) || len(vel) != len(params) {
		return fmt.Errorf("distrun: momentum arity mismatch: %d dst, %d params, %d grads, %d vel", len(dst), len(params), len(grads), len(vel))
	}
	for i := range params {
		pd, gd, dd, vd := params[i].Data(), grads[i].Data(), dst[i].Data(), vel[i].Data()
		if len(pd) != len(gd) || len(pd) != len(dd) || len(pd) != len(vd) {
			return fmt.Errorf("distrun: momentum size mismatch at %d", i)
		}
		model.MomentumRange(dd, pd, gd, vd, lr, mu)
	}
	return nil
}

// ApplyAdamInto runs one fused bias-corrected Adam step elementwise via the
// shared model.AdamRange kernel: moments m and v update in place and dst
// receives the updated parameters. step is the 1-based optimizer step. Like
// the other kernels it is shard-decomposable: applying it to disjoint
// owner-major slices with shard-local m/v reproduces the full update bit for
// bit (pinned by TestAdamRangeShardDecomposition).
func ApplyAdamInto(dst, params, grads, m, v []*jaxpp.Tensor, cfg model.AdamConfig, lr float64, step int) error {
	if len(dst) != len(params) || len(grads) != len(params) || len(m) != len(params) || len(v) != len(params) {
		return fmt.Errorf("distrun: adam arity mismatch: %d dst, %d params, %d grads, %d m, %d v", len(dst), len(params), len(grads), len(m), len(v))
	}
	for i := range params {
		pd, gd, dd, md, vd := params[i].Data(), grads[i].Data(), dst[i].Data(), m[i].Data(), v[i].Data()
		if len(pd) != len(gd) || len(pd) != len(dd) || len(pd) != len(md) || len(pd) != len(vd) {
			return fmt.Errorf("distrun: adam size mismatch at %d", i)
		}
		model.AdamRange(dd, pd, gd, md, vd, cfg, lr, step)
	}
	return nil
}

// applyUpdate dispatches the optimizer step the spec selects.
func applyUpdate(spec JobSpec, dst, params, grads, vel []*jaxpp.Tensor) error {
	if spec.Momentum != 0 {
		return ApplyMomentumInto(dst, params, grads, vel, spec.LR, spec.Momentum)
	}
	return ApplySGDInto(dst, params, grads, spec.LR)
}

// newVelocity allocates zeroed momentum buffers (nil when momentum is off —
// plain SGD carries no optimizer state).
func newVelocity(spec JobSpec, params []*jaxpp.Tensor) []*jaxpp.Tensor {
	if spec.Momentum == 0 {
		return nil
	}
	vel := make([]*jaxpp.Tensor, len(params))
	for i, p := range params {
		vel[i] = jaxpp.NewTensor(p.Shape()...)
	}
	return vel
}

// stateEntries flattens the driver-held training state into the checkpoint
// entry list: parameters first, then velocities when momentum is on. The
// order is part of the on-disk contract (manifest Entries counts it).
func stateEntries(params, vel []*jaxpp.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, 0, len(params)+len(vel))
	out = append(out, params...)
	return append(out, vel...)
}

// velFlat reassembles a checkpoint's optimizer velocity state into the
// owner-major flat vector, whichever on-disk layout the manifest uses: a
// sharded manifest's per-rank flat slices concatenate in rank order (the
// writing world's partition, recorded in OptShardCounts), a dense manifest's
// per-tensor velocities pack through the plan's order. Because the flat
// layout is a function of the compiled program only, this is the pivot that
// lets any (layout, world) checkpoint restore into any (layout, world) job.
func velFlat(m *ckpt.Manifest, entries []*tensor.Tensor, nparams int, plan *shardPlan, flat []float64) error {
	if m.Sharded() {
		off := 0
		for r, cnt := range m.OptShardCounts {
			t := entries[nparams+r]
			if t.Size() != cnt {
				return fmt.Errorf("distrun: checkpoint velocity shard %d has %d elements, manifest promises %d", r, t.Size(), cnt)
			}
			copy(flat[off:off+cnt], t.Data())
			off += cnt
		}
		if off != plan.total {
			return fmt.Errorf("distrun: checkpoint velocity vector has %d elements, program wants %d", off, plan.total)
		}
		return nil
	}
	for k, gi := range plan.order {
		t := entries[nparams+gi]
		if t.Size() != plan.off[k+1]-plan.off[k] {
			return fmt.Errorf("distrun: checkpoint velocity %d has %d elements, parameter wants %d", gi, t.Size(), plan.off[k+1]-plan.off[k])
		}
		copy(flat[plan.off[k]:plan.off[k+1]], t.Data())
	}
	return nil
}

// restoreState loads the newest consistent checkpoint under spec.CkptDir into
// the already-allocated training state and returns the step to resume at (0
// when no usable checkpoint exists — fresh start). Parameters restore
// directly (replicated in every layout); momentum state pivots through the
// plan's owner-major flat vector, so dense and sharded checkpoints restore
// into dense (vel) and sharded (velShard — this rank's slice of the current
// partition) jobs in any combination and across world-size changes. Every
// rank calls this independently; the caller is responsible for cross-rank
// agreement on the returned step.
func restoreState(spec JobSpec, rank int, params, vel []*jaxpp.Tensor, plan *shardPlan, velShard *tensor.Tensor) (int, error) {
	m, entries, skipped, err := ckpt.Restore(spec.CkptDir)
	if err != nil {
		return 0, fmt.Errorf("distrun: rank %d restore: %w", rank, err)
	}
	for _, s := range skipped {
		log.Printf("distrun: rank %d skipped unusable checkpoint step %d under %s", rank, s, spec.CkptDir)
	}
	if m == nil {
		return 0, nil
	}
	defer func() {
		for _, t := range entries {
			tensor.Recycle(t)
		}
	}()
	if err := m.Compatible(spec.Stages, spec.Width, len(params), spec.Momentum); err != nil {
		return 0, fmt.Errorf("distrun: rank %d: %w", rank, err)
	}
	for i, p := range params {
		p.CopyFrom(entries[i].Data())
	}
	if spec.Momentum != 0 {
		flat := tensor.GetScratch(plan.total)
		defer tensor.Recycle(flat)
		if err := velFlat(m, entries, len(params), plan, flat.Data()); err != nil {
			return 0, fmt.Errorf("distrun: rank %d: %w", rank, err)
		}
		if velShard != nil {
			lo := plan.starts[rank]
			copy(velShard.Data(), flat.Data()[lo:lo+plan.counts[rank]])
		} else {
			plan.scatter(vel, flat.Data())
		}
	}
	log.Printf("distrun: rank %d restored checkpoint step %d (world %d wrote it, sharded=%v)", rank, m.Step, m.World, m.Sharded())
	return m.Step, nil
}

// saveCheckpoint writes this rank's shard of the state at the given completed
// step, barriers so every shard is durable, and has rank 0 commit the step
// with its manifest and prune old checkpoints. A checkpoint failure is a job
// failure: half-checkpointing silently would turn the next recovery into a
// rollback surprise.
func saveCheckpoint(sess *dist.Session, spec JobSpec, step int, params, vel []*jaxpp.Tensor) error {
	entries := stateEntries(params, vel)
	owned := ckpt.Owned(sess.Rank, sess.World, len(entries))
	if err := ckpt.WriteShard(spec.CkptDir, step, sess.Rank, entries, owned); err != nil {
		return fmt.Errorf("distrun: rank %d checkpoint step %d: %w", sess.Rank, step, err)
	}
	if err := sess.Barrier(); err != nil {
		return fmt.Errorf("distrun: rank %d checkpoint barrier step %d: %w", sess.Rank, step, err)
	}
	if sess.Rank != 0 {
		return nil
	}
	m := ckpt.NewManifest(step, sess.World, spec.Stages, spec.Width, len(params), spec.Momentum)
	if err := ckpt.WriteManifest(spec.CkptDir, m); err != nil {
		return fmt.Errorf("distrun: commit checkpoint step %d: %w", step, err)
	}
	if err := ckpt.Prune(spec.CkptDir, 0); err != nil {
		return fmt.Errorf("distrun: prune checkpoints: %w", err)
	}
	return nil
}

// saveCheckpointSharded writes a checkpoint in the owner-major sharded
// optimizer layout: each rank's shard carries its round-robin share of the
// replicated parameters plus the one flat velocity-shard entry only it holds
// (entry len(params)+rank). Rank 0 commits with a sharded manifest recording
// the writing world's partition, which any future world re-slices on restore.
func saveCheckpointSharded(sess *dist.Session, spec JobSpec, step int, params []*jaxpp.Tensor, sh *shardedState) error {
	entries := make([]*tensor.Tensor, len(params)+sh.plan.world)
	copy(entries, params)
	entries[len(params)+sess.Rank] = sh.vel
	owned := append(ckpt.Owned(sess.Rank, sess.World, len(params)), len(params)+sess.Rank)
	if err := ckpt.WriteShard(spec.CkptDir, step, sess.Rank, entries, owned); err != nil {
		return fmt.Errorf("distrun: rank %d sharded checkpoint step %d: %w", sess.Rank, step, err)
	}
	if err := sess.Barrier(); err != nil {
		return fmt.Errorf("distrun: rank %d checkpoint barrier step %d: %w", sess.Rank, step, err)
	}
	if sess.Rank != 0 {
		return nil
	}
	m := ckpt.NewManifestSharded(step, sess.World, spec.Stages, spec.Width, len(params), spec.Momentum, sh.plan.counts)
	if err := ckpt.WriteManifest(spec.CkptDir, m); err != nil {
		return fmt.Errorf("distrun: commit sharded checkpoint step %d: %w", step, err)
	}
	if err := ckpt.Prune(spec.CkptDir, 0); err != nil {
		return fmt.Errorf("distrun: prune checkpoints: %w", err)
	}
	return nil
}

// saveCheckpointLocal is saveCheckpoint for the single-process runner: one
// shard (rank 0 owns every entry), immediately committed.
func saveCheckpointLocal(spec JobSpec, step int, params, vel []*jaxpp.Tensor) error {
	entries := stateEntries(params, vel)
	if err := ckpt.WriteShard(spec.CkptDir, step, 0, entries, ckpt.Owned(0, 1, len(entries))); err != nil {
		return fmt.Errorf("distrun: local checkpoint step %d: %w", step, err)
	}
	m := ckpt.NewManifest(step, 1, spec.Stages, spec.Width, len(params), spec.Momentum)
	if err := ckpt.WriteManifest(spec.CkptDir, m); err != nil {
		return fmt.Errorf("distrun: commit local checkpoint step %d: %w", step, err)
	}
	if err := ckpt.Prune(spec.CkptDir, 0); err != nil {
		return fmt.Errorf("distrun: prune checkpoints: %w", err)
	}
	return nil
}

// negZero fills the slots a rank does not own in the gradient exchange:
// IEEE-754 addition has x + (-0.0) == x bit for bit for every x (including
// x == -0.0, which x + (+0.0) would flip to +0.0), so a ring all-reduce over
// one real contribution and world-1 negative-zero fills reproduces the
// owner's gradient exactly — in any combine order — and the exchange stays
// bit-compatible with the in-process reference even for gradients that
// contain negative zeros (ReLU masking produces them).
var negZero = math.Copysign(0, -1)

// applyErrorFeedback runs the rank-local half of int8 error-feedback
// compression on the dense gradient exchange. For each owned gradient with
// carried residual r and fresh contribution g: the compensated value is
// c = g + r, the wire carries q = Q(c) (the int8 round trip, applied here so
// this rank reduces exactly the values remote ranks decode), and the new
// residual is r' = c − q. Unowned slots hold negative-zero fills, which
// quantize to themselves, so they need no compensation. The residual L2 norm
// is observed per step (in nano-units) — bounded norm means the compression
// error re-enters the sum instead of accumulating as drift.
func applyErrorFeedback(exch, res []*tensor.Tensor, owned []bool) {
	var sq float64
	for gi, r := range res {
		if r == nil || !owned[gi] {
			continue
		}
		g := exch[gi].Data()
		rd := r.Data()
		for i := range g {
			rd[i] += g[i]
			g[i] = rd[i]
		}
		dist.LossyRoundTrip(dist.DTInt8Q, g)
		for i := range g {
			rd[i] -= g[i]
			sq += rd[i] * rd[i]
		}
	}
	obs.Observe(scQuantResidual, int64(math.Sqrt(sq)*1e9))
}

// Run executes the job on this rank of a bootstrapped session: compile the
// shared program with this rank's actor hosted, run the actor every step,
// and run the result exchange on the collective engine over the wire
// transport — losses travel to every rank (rank 0 records them) through one
// ring AllGather, gradients through one bucketed ring AllReduce whose
// traffic is the ring's 2·(N−1)/N volume per rank instead of the O(world)
// point-to-point sends the pre-wire-collective epilogue issued. Every rank
// then applies the identical SGD update. Blocks until the job completes or
// the transport is poisoned (a dead peer surfaces here as an error, not a
// hang).
func Run(sess *dist.Session, spec JobSpec) (*Report, error) {
	if sess.World != spec.World() {
		return nil, fmt.Errorf("distrun: session world %d, job wants %d (= %d replicas × %d stages)", sess.World, spec.World(), spec.Replicas(), spec.Stages)
	}
	wireDT, err := dist.ParseDType(spec.WireDType)
	if err != nil {
		return nil, err
	}
	var tr runtime.Transport = sess.Transport
	if spec.Shape != nil {
		// Degraded-network mode: every cross-rank frame rides the link shaper.
		// The shaper sits above the dist transport, so the wire codec (and the
		// lossy dtype plane below) is unchanged — only delivery timing is.
		shaped := dist.NewShapedTransport(sess.Transport, spec.Shape.Opts())
		defer shaped.Stop()
		tr = shaped
	}
	rank := sess.Rank
	flight.Log("run_start", rank, -1, fmt.Sprintf("world %d sharded=%v telemetry=%v wire=%s shaped=%v", sess.World, spec.Sharded, spec.Telemetry, wireDT, spec.Shape != nil))
	host := []int{rank}
	if spec.NoHostedFilter {
		host = nil
	}
	ts, err := CompileHosted(spec, tr, host)
	if err != nil {
		return nil, err
	}
	defer ts.Close()
	prog := ts.Program()
	pp := ts.NumActors() / ts.NumReplicas()
	numMB := ts.NumMicrobatches()
	totalMB := ts.NumReplicas() * numMB

	// Loss owners, derived from program metadata identically on every rank
	// (no peer actor exists locally under the hosted filter): loss (r, mb)
	// lives on replica r's instance of its pipeline actor. lossesByRank[r]
	// lists rank r's global microbatch indices in the order the rank packs
	// them into its AllGather shard.
	lossesByRank := make([][]int, sess.World)
	for r := 0; r < ts.NumReplicas(); r++ {
		for mb, l := range prog.Losses {
			owner := r*pp + l.Actor
			lossesByRank[owner] = append(lossesByRank[owner], r*numMB+mb)
		}
	}
	lossSlots := 0
	for _, mbs := range lossesByRank {
		lossSlots = max(lossSlots, len(mbs))
	}

	// The all-ranks process group the epilogue collectives run on. The dist
	// transport serializes sends (SenderOwnsSent), so ring chunks come from
	// and return to this process's scratch pool.
	comm, err := worldComm(tr, sess.World, rank)
	if err != nil {
		return nil, err
	}
	// Gradient traffic optionally rides a lossy wire encoding. The transport's
	// lossy plane is armed per collective tag window, so only frames in the
	// gradient communicator's window compress — control frames, loss gathers,
	// checkpoint traffic, and the parameter AllGather of the sharded epilogue
	// all stay f64 end to end. When no lossy dtype is requested, gradComm is
	// simply the world communicator and nothing changes on the wire.
	gradComm := comm
	if !wireDT.Lossless() {
		if !armLossyWire(sess.Transport, wireDT, gradGroupID) {
			return nil, fmt.Errorf("distrun: transport %T cannot carry lossy wire dtype %s", sess.Transport, wireDT)
		}
		if gradComm, err = worldCommID(tr, sess.World, rank, gradGroupID); err != nil {
			return nil, err
		}
	}

	params, batch := InitModel(spec)
	if len(prog.Grads) != len(params) {
		return nil, fmt.Errorf("distrun: program has %d gradients for %d parameters", len(prog.Grads), len(params))
	}
	// The owner-major shard plan is derived from program metadata on every
	// rank identically. Built even for dense jobs: the restore path pivots
	// momentum state through it, so dense jobs resume from sharded
	// checkpoints (and vice versa).
	plan, err := planForStep(ts, params, sess.World)
	if err != nil {
		return nil, err
	}
	var sh *shardedState
	var vel []*jaxpp.Tensor
	if spec.Sharded {
		sh = newShardedState(spec, plan, rank)
		defer sh.release()
	} else {
		vel = newVelocity(spec, params)
	}
	startStep := 0
	if spec.CkptDir != "" {
		var velShard *tensor.Tensor
		if sh != nil {
			velShard = sh.vel
		}
		if startStep, err = restoreState(spec, rank, params, vel, plan, velShard); err != nil {
			return nil, err
		}
		// Start-step agreement: every rank restored independently from disk,
		// and a rank that locally fell back to an older checkpoint (corrupt
		// shard only it can see) must not silently train from different state.
		// One 1-element-per-rank AllGather compares the resume steps.
		mine := tensor.GetScratch(1)
		all := tensor.GetScratch(sess.World)
		mine.Data()[0] = float64(startStep)
		gerr := comm.AllGatherInto(all, mine)
		if gerr == nil {
			for r, v := range all.Data() {
				if int(v) != startStep {
					gerr = fmt.Errorf("distrun: rank %d resumes at step %d but rank %d at step %d: checkpoint disagreement, refusing to train", rank, startStep, r, int(v))
					break
				}
			}
		}
		tensor.Recycle(mine)
		tensor.Recycle(all)
		if gerr != nil {
			return nil, gerr
		}
		if startStep > 0 {
			flight.Log("restore", rank, startStep, "resumed from checkpoint")
		}
	}
	// Gradient owners are the replica-0 actors, whose global IDs equal
	// their per-replica IDs — derived from metadata once, so the per-step
	// fill below skips the tensors this rank overwrites with real payloads.
	ownedGrad := make([]bool, len(prog.Grads))
	for gi, g := range prog.Grads {
		ownedGrad[gi] = g.Actor == rank
	}
	// Steady-state buffers, reused every step: the SGD double buffer and the
	// gradient-exchange tensors the ring reduces in place (dense path only —
	// the sharded epilogue carries its own flat buffer set in shardedState,
	// with the update landing in a persistent ~1/world shard buffer instead
	// of a full-size double buffer), the loss shard and gather destination,
	// and the per-step result struct.
	var next []*jaxpp.Tensor
	var exch []*tensor.Tensor
	var efRes []*tensor.Tensor
	if sh == nil {
		next = make([]*jaxpp.Tensor, len(params))
		exch = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			next[i] = jaxpp.NewTensor(p.Shape()...)
			exch[i] = tensor.GetScratchShaped(p.Shape()...)
		}
		if wireDT == dist.DTInt8Q {
			// Error-feedback residuals, one per owned gradient, zeroed at the
			// start: each step the carried residual folds into the contribution
			// before quantization and retains the new quantization error after,
			// so what the wire drops this step re-enters the sum next step.
			// Residuals are strictly rank-local — they never travel and never
			// enter checkpoints.
			efRes = make([]*tensor.Tensor, len(params))
			for gi, p := range params {
				if ownedGrad[gi] {
					efRes[gi] = tensor.GetScratchShaped(p.Shape()...)
					clear(efRes[gi].Data())
				}
			}
		}
	} else {
		sh.syncParams(params)
		sh.armErrorFeedback(wireDT == dist.DTInt8Q)
	}
	shard := tensor.GetScratch(lossSlots)
	gathered := tensor.GetScratch(sess.World * lossSlots)
	defer func() {
		// Recycled on every exit, including mid-step errors, so a process
		// that retries jobs keeps its scratch pool warm.
		tensor.Recycle(shard)
		tensor.Recycle(gathered)
		for _, t := range exch {
			tensor.Recycle(t)
		}
		for _, t := range efRes {
			if t != nil {
				tensor.Recycle(t)
			}
		}
	}()
	res := &jaxpp.ActorResults{}

	profiling := spec.Profile || spec.ProfileLocal
	if profiling {
		defer beginProfiling()()
	}
	// Telemetry arms after profiling: beginProfiling's SnapshotAndReset must
	// run before the sampler primes its baselines, or the first step's deltas
	// go negative.
	if spec.Telemetry {
		defer beginTelemetry()()
	}
	sampler := newStepSampler(rank, tr)
	var stepPrev [3]time.Duration
	rep := &Report{Rank: rank, World: sess.World, StartStep: startStep}
	for step := startStep; step < spec.Steps; step++ {
		stepStart := time.Now()
		ha := obs.TrackTid(scStepActor, rank)
		err := ts.StepActor(rank, params, batch)
		ha.Stop()
		if err != nil {
			return nil, fmt.Errorf("distrun: rank %d step %d: %w", rank, step, err)
		}
		if err := ts.TakeActorResultsInto(rank, res); err != nil {
			return nil, fmt.Errorf("distrun: rank %d step %d results: %w", rank, step, err)
		}

		// Losses: every rank packs its owned microbatch losses into a
		// fixed-size shard (padded — shard sizes must match around the
		// ring) and one AllGather hands rank 0 the full set. The gather
		// doubles as the step-exchange ordering fence the point-to-point
		// path got from its grad-receipt barrier.
		sd := shard.Data()
		clear(sd)
		for i, l := range res.Losses {
			sd[i] = l.Data()[0]
			tensor.Recycle(l)
		}
		hl := obs.TrackTid(scLossGather, rank)
		err = comm.AllGatherInto(gathered, shard)
		hl.Stop()
		if err != nil {
			return nil, fmt.Errorf("distrun: rank %d step %d loss gather: %w", rank, step, err)
		}
		var mbLosses []float64
		if rank == 0 {
			mbLosses = make([]float64, totalMB)
			gd := gathered.Data()
			for r, mbs := range lossesByRank {
				for j, mb := range mbs {
					mbLosses[mb] = gd[r*lossSlots+j]
				}
			}
		}

		if sh != nil {
			// Sharded epilogue: ReduceScatterV → shard-local update →
			// AllGatherV, bit-identical to the dense path (see exchange).
			if err := sh.exchange(comm, gradComm, spec, res, ownedGrad, params); err != nil {
				return nil, fmt.Errorf("distrun: rank %d step %d %w", rank, step, err)
			}
		} else {
			// Gradients: the owning ranks (replica-0 actors) hold the already
			// DP-all-reduced sums; everyone else contributes negative zeros,
			// the IEEE additive identity (see negZero), so the bucketed ring
			// AllReduce delivers every gradient to every rank bit-exactly.
			for gi, t := range exch {
				if ownedGrad[gi] {
					continue // overwritten with the real payload below
				}
				d := t.Data()
				for i := range d {
					d[i] = negZero
				}
			}
			for i, gi := range res.GradIdx {
				exch[gi].CopyFrom(res.Grads[i].Data())
				tensor.Recycle(res.Grads[i])
			}
			if efRes != nil {
				hq := obs.TrackTid(scQuantEF, rank)
				applyErrorFeedback(exch, efRes, ownedGrad)
				hq.Stop()
			}
			hg := obs.TrackTid(scGradReduce, rank)
			err = gradComm.AllReduceBucketsInPlace(exch, collective.OpSum, 0)
			hg.Stop()
			if err != nil {
				return nil, fmt.Errorf("distrun: rank %d step %d grad all-reduce: %w", rank, step, err)
			}

			hs := obs.TrackTid(scSGD, rank)
			err = applyUpdate(spec, next, params, exch, vel)
			hs.Stop()
			if err != nil {
				return nil, err
			}
			params, next = next, params
		}
		if every := spec.ckptEvery(); every > 0 && (step+1)%every == 0 && step+1 < spec.Steps {
			if sh != nil && sh.vel != nil {
				if err := saveCheckpointSharded(sess, spec, step+1, params, sh); err != nil {
					return nil, err
				}
			} else if err := saveCheckpoint(sess, spec, step+1, params, vel); err != nil {
				return nil, err
			}
			flight.Log("ckpt_commit", rank, step+1, "")
		}
		obs.Add(cStepsProfiled, 1)
		sampler.record(step, time.Since(stepStart))
		if profiling {
			logStepSummary(rank, step, time.Since(stepStart), &stepPrev)
		}
		if rank == 0 {
			rep.MBLosses = append(rep.MBLosses, mbLosses)
			var total float64
			for _, l := range mbLosses {
				total += l
			}
			rep.StepLosses = append(rep.StepLosses, total/float64(totalMB))
		}
		if spec.StepSleepMs > 0 {
			time.Sleep(time.Duration(spec.StepSleepMs) * time.Millisecond)
		}
	}
	// End-of-job barrier: no rank tears its session down while a slower peer
	// is still mid-step — without it, a fast rank's graceful shutdown is
	// indistinguishable from a crash to ranks still exchanging tensors.
	if err := sess.Barrier(); err != nil {
		return nil, fmt.Errorf("distrun: rank %d end-of-job barrier: %w", rank, err)
	}
	// Profile exchange, strictly after the barrier: the control plane's reply
	// channel is free of barrier traffic, and every rank's spans are final (all
	// instrumented goroutines are quiescent — the snapshot ownership rule).
	if spec.Profile {
		snap := obs.SnapshotAndReset()
		snap.Rank = rank
		if rank == 0 {
			rep.Profiles = append(rep.Profiles, snap)
			raws, err := sess.GatherProfiles()
			if err != nil {
				return nil, fmt.Errorf("distrun: rank 0 profile gather: %w", err)
			}
			for _, raw := range raws {
				ws := &obs.Snapshot{}
				if err := json.Unmarshal(raw, ws); err != nil {
					return nil, fmt.Errorf("distrun: bad worker profile: %w", err)
				}
				rep.Profiles = append(rep.Profiles, ws)
			}
			sort.Slice(rep.Profiles, func(i, j int) bool { return rep.Profiles[i].Rank < rep.Profiles[j].Rank })
		} else {
			data, err := json.Marshal(snap)
			if err != nil {
				return nil, fmt.Errorf("distrun: rank %d profile marshal: %w", rank, err)
			}
			if err := sess.SendProfile(data); err != nil {
				return nil, fmt.Errorf("distrun: rank %d profile send: %w", rank, err)
			}
		}
	}
	rep.FinalParams = params
	return rep, nil
}

// RunLocal executes the identical job in one process on the in-process
// runtime — the reference the multi-process path must match bit for bit.
func RunLocal(spec JobSpec) (*Report, error) { return RunLocalOn(spec, nil) }

// RunLocalOn is RunLocal over a caller-provided transport (e.g. a
// dist.LocalMesh, exercising the binary wire path inside one process). The
// driver runs the allocation-lean dispatch path: results land in reused
// StepInto buffers, exchanged tensors are recycled once consumed, and the
// SGD update writes into a double-buffered parameter set.
func RunLocalOn(spec JobSpec, tr runtime.Transport) (*Report, error) {
	ts, err := Compile(spec, tr)
	if err != nil {
		return nil, err
	}
	defer ts.Close()
	params, batch := InitModel(spec)
	totalMB := ts.NumReplicas() * ts.NumMicrobatches()
	next := make([]*jaxpp.Tensor, len(params))
	for i, p := range params {
		next[i] = jaxpp.NewTensor(p.Shape()...)
	}
	losses := make([]*jaxpp.Tensor, totalMB)
	grads := make([]*jaxpp.Tensor, len(ts.Program().Grads))
	vel := newVelocity(spec, params)
	startStep := 0
	if spec.CkptDir != "" {
		// World-1 plan: the owner-major flat order is world-independent, so
		// the single-process runner restores sharded checkpoints too.
		plan, perr := planForStep(ts, params, 1)
		if perr != nil {
			return nil, perr
		}
		if startStep, err = restoreState(spec, 0, params, vel, plan, nil); err != nil {
			return nil, err
		}
	}
	if spec.Profile {
		defer beginProfiling()()
	}
	var stepPrev [3]time.Duration
	rep := &Report{Rank: 0, World: 1, StartStep: startStep}
	for step := startStep; step < spec.Steps; step++ {
		stepStart := time.Now()
		ha := obs.Track(scStepActor)
		err := ts.StepInto(params, batch, losses, grads)
		ha.Stop()
		if err != nil {
			return nil, fmt.Errorf("distrun: local step %d: %w", step, err)
		}
		mbLosses := make([]float64, totalMB)
		var total float64
		for i, l := range losses {
			mbLosses[i] = l.Data()[0]
			total += mbLosses[i]
			tensor.Recycle(l)
		}
		rep.MBLosses = append(rep.MBLosses, mbLosses)
		rep.StepLosses = append(rep.StepLosses, total/float64(totalMB))
		hs := obs.Track(scSGD)
		err = applyUpdate(spec, next, params, grads, vel)
		hs.Stop()
		if err != nil {
			return nil, err
		}
		for i := range grads {
			// Take-transferred accumulators; the update consumed them.
			tensor.Recycle(grads[i])
			grads[i] = nil
		}
		params, next = next, params
		if every := spec.ckptEvery(); every > 0 && (step+1)%every == 0 && step+1 < spec.Steps {
			if err := saveCheckpointLocal(spec, step+1, params, vel); err != nil {
				return nil, err
			}
		}
		obs.Add(cStepsProfiled, 1)
		if spec.Profile {
			logStepSummary(0, step, time.Since(stepStart), &stepPrev)
		}
	}
	if spec.Profile {
		snap := obs.SnapshotAndReset()
		snap.Rank = 0
		rep.Profiles = append(rep.Profiles, snap)
	}
	rep.FinalParams = params
	return rep, nil
}
