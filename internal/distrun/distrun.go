// Package distrun executes a training job across OS processes on the dist
// runtime: every rank compiles the identical program from a shared JobSpec
// (deterministic replication — same seeds, same schedule), runs its own
// actor's share of each step over the wire transport, and exchanges step
// results through reserved tags so parameters evolve bit-identically on
// every rank. It is the glue between the jaxpp compiler/runtime and the
// dist coordinator/worker topology that cmd/jaxpp-train -distributed and
// cmd/jaxpp-worker share.
package distrun

import (
	"encoding/json"
	"fmt"
	"time"

	jaxpp "repro"
	"repro/internal/dist"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

// JobSpec is the coordinator-distributed description of one training job.
// Workers receive it as the rendezvous job payload and reconstruct the
// identical compiled program from it.
type JobSpec struct {
	Stages       int     `json:"stages"`
	NumMB        int     `json:"num_mb"`
	MBRows       int     `json:"mb_rows"`
	Width        int     `json:"width"`
	Steps        int     `json:"steps"`
	LR           float64 `json:"lr"`
	Schedule     string  `json:"schedule"`      // "gpipe" or "1f1b"
	DataParallel int     `json:"data_parallel"` // replicas; 0 or 1 disables
	SPMD         int     `json:"spmd"`          // virtual SPMD devices per actor; 0/1 disables
	Seed         uint64  `json:"seed"`
	// StepSleepMs inserts an artificial pause after every step on every
	// rank — test instrumentation that stretches a job out so failure
	// injection (worker kill) has a stable window to land in.
	StepSleepMs int `json:"step_sleep_ms,omitempty"`
}

// World returns the process count the job needs: one per global actor.
func (s JobSpec) World() int {
	return max(s.DataParallel, 1) * s.Stages
}

// Replicas returns the data-parallel replica count (>= 1).
func (s JobSpec) Replicas() int { return max(s.DataParallel, 1) }

// Marshal encodes the spec for the rendezvous job payload.
func (s JobSpec) Marshal() []byte {
	data, err := json.Marshal(s)
	if err != nil {
		panic(err) // plain struct of scalars; cannot fail
	}
	return data
}

// UnmarshalJobSpec decodes a rendezvous job payload.
func UnmarshalJobSpec(data []byte) (JobSpec, error) {
	var s JobSpec
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("distrun: bad job payload: %w", err)
	}
	if s.Stages < 1 || s.NumMB < 1 || s.Steps < 0 {
		return s, fmt.Errorf("distrun: invalid job spec %+v", s)
	}
	return s, nil
}

// Result-exchange tag space: distinct from pipeline P2P tags (small
// sequential ints), the calibration window (TagSpaceBase/2), and the
// collective group windows (TagSpaceBase and above). Tag reuse across steps
// is safe because every rank's step s+1 exchange is ordered behind its
// receipt of all step-s gradients (a de facto barrier), and per-connection
// FIFO keeps same-tag frames in step order.
const (
	resultTagBase = 1 << 18
	gradTagBase   = resultTagBase
	lossTagBase   = resultTagBase + 1<<12
)

// Report is a job's outcome on one rank.
type Report struct {
	Rank  int
	World int
	// MBLosses[step] holds the per-microbatch losses of that step in global
	// (replica-major) microbatch order. Populated on rank 0 only — workers
	// ship their losses to the coordinator.
	MBLosses [][]float64
	// StepLosses[step] is the mean microbatch loss (rank 0 only).
	StepLosses []float64
	// FinalParams are the post-training parameters (identical on every
	// rank; recorded everywhere for verification).
	FinalParams []*jaxpp.Tensor
}

// InitModel builds the deterministic initial parameters and global batch
// every rank derives from the spec's seed — byte-identical across
// processes, which is what lets ranks replicate driver state instead of
// shipping it.
func InitModel(spec JobSpec) (params, batch []*jaxpp.Tensor) {
	rng := jaxpp.NewRNG(spec.Seed)
	params = make([]*jaxpp.Tensor, spec.Stages)
	for i := range params {
		params[i] = rng.Xavier(spec.Width, spec.Width)
	}
	rows := spec.Replicas() * spec.NumMB * spec.MBRows
	x := rng.Normal(1, rows, spec.Width)
	y := rng.OneHotBatch(rows, spec.Width)
	return params, []*jaxpp.Tensor{x, y}
}

// Compile builds the training step for a spec over the given transport
// (nil compiles onto a fresh in-process cluster).
func Compile(spec JobSpec, tr runtime.Transport) (*jaxpp.TrainStep, error) {
	var sched *jaxpp.Schedule
	switch spec.Schedule {
	case "gpipe":
		sched = jaxpp.GPipe(spec.Stages, spec.NumMB)
	case "", "1f1b":
		sched = jaxpp.OneFOneB(spec.Stages, spec.NumMB)
	default:
		return nil, fmt.Errorf("distrun: unknown schedule %q", spec.Schedule)
	}
	paramShapes := make([][]int, spec.Stages)
	for i := range paramShapes {
		paramShapes[i] = []int{spec.Width, spec.Width}
	}
	var mesh *jaxpp.RemoteMesh
	if tr == nil {
		mesh = jaxpp.NewRemoteMesh(spec.World())
	} else {
		mesh = jaxpp.NewRemoteMeshWithTransport(spec.World(), tr)
	}
	return mesh.Compile(jaxpp.CompileSpec{
		Loss: func(b *jaxpp.Builder, params, mb []*jaxpp.Value) *jaxpp.Value {
			h := mb[0]
			for i, w := range params {
				h = b.ReLU(b.MatMul(h, w))
				if i+1 < len(params) {
					h = b.PipelineYield(h)
				}
			}
			return b.CrossEntropy(h, mb[1])
		},
		ParamShapes:         paramShapes,
		BatchShapes:         [][]int{{spec.MBRows, spec.Width}, {spec.MBRows, spec.Width}},
		Schedule:            sched,
		DataParallel:        spec.DataParallel,
		SPMDDevicesPerActor: spec.SPMD,
	})
}

// ApplySGD returns params - lr·grads as fresh tensors. Both the in-process
// reference and every distributed rank run this exact loop, so parameter
// trajectories agree bit for bit.
func ApplySGD(params, grads []*jaxpp.Tensor, lr float64) ([]*jaxpp.Tensor, error) {
	next := make([]*jaxpp.Tensor, len(params))
	for i := range params {
		d := make([]float64, grads[i].Size())
		pd := params[i].Data()
		for j, g := range grads[i].Data() {
			d[j] = pd[j] - lr*g
		}
		p, err := jaxpp.TensorFromSlice(d, params[i].Shape()...)
		if err != nil {
			return nil, err
		}
		next[i] = p
	}
	return next, nil
}

// Run executes the job on this rank of a bootstrapped session: compile the
// shared program, run this rank's actor every step, broadcast locally owned
// gradients to all ranks (every rank applies the identical SGD update), and
// ship per-microbatch losses to rank 0. Blocks until the job completes or
// the transport is poisoned (a dead peer surfaces here as an error, not a
// hang).
func Run(sess *dist.Session, spec JobSpec) (*Report, error) {
	if sess.World != spec.World() {
		return nil, fmt.Errorf("distrun: session world %d, job wants %d (= %d replicas × %d stages)", sess.World, spec.World(), spec.Replicas(), spec.Stages)
	}
	tr := sess.Transport
	ts, err := Compile(spec, tr)
	if err != nil {
		return nil, err
	}
	defer ts.Close()
	rank := sess.Rank
	prog := ts.Program()
	pp := ts.NumActors() / ts.NumReplicas()
	numMB := ts.NumMicrobatches()
	totalMB := ts.NumReplicas() * numMB

	// Owners, derived from the program identically on every rank: gradient
	// gi lives on its replica-0 actor; loss (r, mb) on replica r's actor.
	gradOwner := make([]int, len(prog.Grads))
	for gi, g := range prog.Grads {
		gradOwner[gi] = g.Actor
	}
	lossOwner := make([]int, totalMB)
	for r := 0; r < ts.NumReplicas(); r++ {
		for mb, l := range prog.Losses {
			lossOwner[r*numMB+mb] = r*pp + l.Actor
		}
	}

	params, batch := InitModel(spec)
	rep := &Report{Rank: rank, World: sess.World}
	grads := make([]*jaxpp.Tensor, len(prog.Grads))
	for step := 0; step < spec.Steps; step++ {
		if err := ts.StepActor(rank, params, batch); err != nil {
			return nil, fmt.Errorf("distrun: rank %d step %d: %w", rank, step, err)
		}
		res, err := ts.TakeActorResults(rank)
		if err != nil {
			return nil, fmt.Errorf("distrun: rank %d step %d results: %w", rank, step, err)
		}

		// Losses to rank 0 first: the coordinator consumes them before it
		// broadcasts its own gradients, so a worker cannot lap the
		// coordinator's loss mailboxes (grad receipt is the step barrier).
		if rank != 0 {
			for i, mb := range res.LossMB {
				tr.Send(rank, 0, lossTagBase+mb, res.Losses[i])
				// dist Send serializes before returning; the caller keeps the
				// Take-transferred tensor and returns it to the pool.
				tensor.Recycle(res.Losses[i])
			}
		}
		var mbLosses []float64
		if rank == 0 {
			mbLosses = make([]float64, totalMB)
			for i, mb := range res.LossMB {
				mbLosses[mb] = res.Losses[i].Data()[0]
				tensor.Recycle(res.Losses[i])
			}
			for mb, owner := range lossOwner {
				if owner == 0 {
					continue
				}
				l, err := tr.Recv(0, owner, lossTagBase+mb)
				if err != nil {
					return nil, fmt.Errorf("distrun: step %d loss %d from rank %d: %w", step, mb, owner, err)
				}
				mbLosses[mb] = l.Data()[0]
				tensor.Recycle(l)
			}
		}

		// Gradient exchange: each replica-0 owner broadcasts its (already
		// DP-all-reduced) gradients; every rank ends the step holding the
		// full gradient list and applies the same update.
		for i, gi := range res.GradIdx {
			g := res.Grads[i]
			for to := 0; to < sess.World; to++ {
				if to != rank {
					tr.Send(rank, to, gradTagBase+gi, g)
				}
			}
			grads[gi] = g
		}
		for gi, owner := range gradOwner {
			if owner == rank {
				continue
			}
			g, err := tr.Recv(rank, owner, gradTagBase+gi)
			if err != nil {
				return nil, fmt.Errorf("distrun: rank %d step %d grad %d from rank %d: %w", rank, step, gi, owner, err)
			}
			grads[gi] = g
		}

		next, err := ApplySGD(params, grads, spec.LR)
		if err != nil {
			return nil, err
		}
		for gi := range gradOwner {
			// Wire-received grads are pool-owned; this rank's own grads were
			// Take-transferred from the store and fully serialized by their
			// broadcast sends — both go back to the pool after the update.
			tensor.Recycle(grads[gi])
			grads[gi] = nil
		}
		params = next
		if rank == 0 {
			rep.MBLosses = append(rep.MBLosses, mbLosses)
			var total float64
			for _, l := range mbLosses {
				total += l
			}
			rep.StepLosses = append(rep.StepLosses, total/float64(totalMB))
		}
		if spec.StepSleepMs > 0 {
			time.Sleep(time.Duration(spec.StepSleepMs) * time.Millisecond)
		}
	}
	// End-of-job barrier: no rank tears its session down while a slower peer
	// is still mid-step — without it, a fast rank's graceful shutdown is
	// indistinguishable from a crash to ranks still exchanging tensors.
	if err := sess.Barrier(); err != nil {
		return nil, fmt.Errorf("distrun: rank %d end-of-job barrier: %w", rank, err)
	}
	rep.FinalParams = params
	return rep, nil
}

// RunLocal executes the identical job in one process on the in-process
// runtime — the reference the multi-process path must match bit for bit.
func RunLocal(spec JobSpec) (*Report, error) { return RunLocalOn(spec, nil) }

// RunLocalOn is RunLocal over a caller-provided transport (e.g. a
// dist.LocalMesh, exercising the binary wire path inside one process).
func RunLocalOn(spec JobSpec, tr runtime.Transport) (*Report, error) {
	ts, err := Compile(spec, tr)
	if err != nil {
		return nil, err
	}
	defer ts.Close()
	params, batch := InitModel(spec)
	totalMB := ts.NumReplicas() * ts.NumMicrobatches()
	rep := &Report{Rank: 0, World: 1}
	for step := 0; step < spec.Steps; step++ {
		losses, grads, err := ts.Step(params, batch)
		if err != nil {
			return nil, fmt.Errorf("distrun: local step %d: %w", step, err)
		}
		mbLosses := make([]float64, totalMB)
		var total float64
		for i, l := range losses {
			mbLosses[i] = l.Data()[0]
			total += l.Data()[0]
		}
		rep.MBLosses = append(rep.MBLosses, mbLosses)
		rep.StepLosses = append(rep.StepLosses, total/float64(totalMB))
		if params, err = ApplySGD(params, grads, spec.LR); err != nil {
			return nil, err
		}
	}
	rep.FinalParams = params
	return rep, nil
}
