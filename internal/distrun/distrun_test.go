package distrun

import (
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
)

// launchWorld bootstraps spec.World() sessions over real localhost TCP
// (control and data planes) with one goroutine per "process" and runs the
// job on each, returning rank 0's report.
func launchWorld(t *testing.T, spec JobSpec) *Report {
	t.Helper()
	world := spec.World()
	opts := dist.SessionOptions{
		RendezvousTimeout: 30 * time.Second,
		HeartbeatInterval: 100 * time.Millisecond,
		HeartbeatTimeout:  5 * time.Second,
		Transport:         dist.Options{RecvTimeout: 30 * time.Second},
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	reports := make([]*Report, world)
	errs := make([]error, world)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess, err := dist.Coordinate(addr, world, spec.Marshal(), opts)
		if err != nil {
			errs[0] = err
			return
		}
		defer sess.Close()
		reports[0], errs[0] = Run(sess, spec)
	}()
	for w := 1; w < world; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var sess *dist.Session
			var err error
			for i := 0; i < 150; i++ {
				sess, err = dist.Join(addr, opts)
				if err == nil || !strings.Contains(err.Error(), "connect") {
					break
				}
				time.Sleep(20 * time.Millisecond)
			}
			if err != nil {
				errs[w] = err
				return
			}
			defer sess.Close()
			got, err := UnmarshalJobSpec(sess.Job)
			if err != nil {
				errs[w] = err
				return
			}
			reports[sess.Rank], errs[sess.Rank] = Run(sess, got)
		}(w)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return reports[0]
}

// requireBitIdentical compares two reports' loss trajectories and final
// parameters bit for bit — the acceptance bar for the multi-process
// runtime: real sockets and binary frames must not perturb a single ULP.
func requireBitIdentical(t *testing.T, got, want *Report) {
	t.Helper()
	if len(got.MBLosses) != len(want.MBLosses) {
		t.Fatalf("steps: %d vs %d", len(got.MBLosses), len(want.MBLosses))
	}
	for s := range want.MBLosses {
		for mb := range want.MBLosses[s] {
			g, w := got.MBLosses[s][mb], want.MBLosses[s][mb]
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("step %d mb %d: loss %v (bits %x) != reference %v (bits %x)",
					s, mb, g, math.Float64bits(g), w, math.Float64bits(w))
			}
		}
	}
	if len(got.FinalParams) != len(want.FinalParams) {
		t.Fatalf("final params: %d vs %d", len(got.FinalParams), len(want.FinalParams))
	}
	for i := range want.FinalParams {
		gd, wd := got.FinalParams[i].Data(), want.FinalParams[i].Data()
		for j := range wd {
			if math.Float64bits(gd[j]) != math.Float64bits(wd[j]) {
				t.Fatalf("param %d elem %d: %v != %v", i, j, gd[j], wd[j])
			}
		}
	}
	// Sanity: the job actually trained (loss decreased).
	first, last := want.StepLosses[0], want.StepLosses[len(want.StepLosses)-1]
	if !(last < first) {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
}

// TestPipelineLossesBitForBitAcross4Ranks trains a 4-stage 1F1B pipeline
// across 4 TCP-connected ranks and requires per-step losses and final
// parameters bit-identical to the in-process reference.
func TestPipelineLossesBitForBitAcross4Ranks(t *testing.T) {
	spec := JobSpec{
		Stages: 4, NumMB: 4, MBRows: 4, Width: 16,
		Steps: 6, LR: 0.5, Schedule: "1f1b", Seed: 1,
	}
	local, err := RunLocal(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := launchWorld(t, spec)
	requireBitIdentical(t, got, local)
}

// TestDPxPPLossesBitForBitAcross4Ranks trains the 2×2 DP×PP configuration
// (2 replicas × 2 stages, end-of-step collective gradient sync over the
// wire) across 4 ranks with the same bit-for-bit bar.
func TestDPxPPLossesBitForBitAcross4Ranks(t *testing.T) {
	spec := JobSpec{
		Stages: 2, NumMB: 4, MBRows: 4, Width: 16,
		Steps: 6, LR: 0.5, Schedule: "1f1b", DataParallel: 2, Seed: 3,
	}
	local, err := RunLocal(spec)
	if err != nil {
		t.Fatal(err)
	}
	got := launchWorld(t, spec)
	requireBitIdentical(t, got, local)
}

// TestRunRejectsWorldMismatch pins the guard between a session's size and
// the job's actor count.
func TestRunRejectsWorldMismatch(t *testing.T) {
	spec := JobSpec{Stages: 4, NumMB: 2, MBRows: 2, Width: 8, Steps: 1, LR: 0.1, Seed: 1}
	sess := &dist.Session{Rank: 0, World: 2}
	if _, err := Run(sess, spec); err == nil || !strings.Contains(err.Error(), "world") {
		t.Fatalf("world mismatch accepted: %v", err)
	}
}

// TestWorkerDeathSurfacesPoisonNotHang kills one rank mid-job (its sockets
// slam shut with no goodbye, as SIGKILL would) and requires the coordinator
// to fail with a transport error well before the recv timeout would expire.
func TestWorkerDeathSurfacesPoisonNotHang(t *testing.T) {
	spec := JobSpec{
		Stages: 3, NumMB: 3, MBRows: 2, Width: 8,
		Steps: 100000, LR: 0.1, Schedule: "1f1b", Seed: 1, StepSleepMs: 1,
	}
	world := spec.World()
	opts := dist.SessionOptions{
		RendezvousTimeout: 30 * time.Second,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  1 * time.Second,
		Transport:         dist.Options{RecvTimeout: 120 * time.Second},
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	type outcome struct {
		rank int
		err  error
	}
	results := make(chan outcome, world)
	sessions := make([]*dist.Session, world)
	var mu sync.Mutex
	launch := func(rank int, mk func() (*dist.Session, error)) {
		sess, err := mk()
		if err != nil {
			results <- outcome{rank, fmt.Errorf("bootstrap: %w", err)}
			return
		}
		mu.Lock()
		sessions[sess.Rank] = sess
		mu.Unlock()
		_, err = Run(sess, spec)
		results <- outcome{sess.Rank, err}
	}
	go launch(0, func() (*dist.Session, error) { return dist.Coordinate(addr, world, spec.Marshal(), opts) })
	for w := 1; w < world; w++ {
		go launch(w, func() (*dist.Session, error) {
			var sess *dist.Session
			var err error
			for i := 0; i < 150; i++ {
				sess, err = dist.Join(addr, opts)
				if err == nil || !strings.Contains(err.Error(), "connect") {
					break
				}
				time.Sleep(20 * time.Millisecond)
			}
			return sess, err
		})
	}

	// Let the job run a few steps, then kill the last rank abruptly.
	time.Sleep(500 * time.Millisecond)
	mu.Lock()
	victim := sessions[world-1]
	mu.Unlock()
	if victim == nil {
		t.Fatal("victim rank never bootstrapped")
	}
	victim.Abort() // SIGKILL-faithful: no goodbyes on either plane

	// Every surviving rank must fail out promptly. The victim itself is
	// "dead": its goroutine may stay blocked until its long recv timeout,
	// exactly like a killed process — we do not wait for it.
	deadline := time.After(60 * time.Second)
	sawCoordinatorError := false
	for done := 0; done < world-1; done++ {
		select {
		case o := <-results:
			if o.rank == world-1 {
				done-- // the victim checked out early; still need the survivors
				continue
			}
			if o.err == nil {
				t.Fatalf("rank %d finished cleanly despite a dead worker", o.rank)
			}
			if o.rank == 0 {
				sawCoordinatorError = true
				t.Logf("coordinator error (expected): %v", o.err)
			}
		case <-deadline:
			t.Fatalf("surviving ranks still hung %v after worker death (transport not poisoned); %d exited", 60*time.Second, done)
		}
	}
	if !sawCoordinatorError {
		t.Fatal("coordinator never reported an error")
	}
	mu.Lock()
	for _, s := range sessions {
		if s != nil {
			s.Close()
		}
	}
	mu.Unlock()
}
