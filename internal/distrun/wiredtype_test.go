package distrun

import (
	"math"
	"strings"
	"testing"

	"repro/internal/dist"
)

// TestInt8QErrorFeedbackBoundedDivergence trains 200 steps with int8q
// gradient compression and error feedback over real TCP ranks and pins the
// loss divergence against the f64 in-process reference: quantization noise
// must stay bounded (the residuals re-inject what each lossy send dropped)
// and must not stop the model from converging. This is the acceptance test
// for the lossy wire plane — without error feedback the quantization bias
// accumulates and the divergence grows without bound.
func TestInt8QErrorFeedbackBoundedDivergence(t *testing.T) {
	spec := JobSpec{
		Stages: 2, NumMB: 4, MBRows: 4, Width: 16,
		Steps: 200, LR: 0.1, Schedule: "1f1b", Seed: 1,
	}
	ref, err := RunLocal(spec)
	if err != nil {
		t.Fatal(err)
	}

	spec.WireDType = "int8q"
	got := launchWorld(t, spec)

	if len(got.StepLosses) != len(ref.StepLosses) {
		t.Fatalf("steps: %d vs %d", len(got.StepLosses), len(ref.StepLosses))
	}
	// Divergence metric: per-step loss error relative to the reference loss,
	// floored so near-zero reference losses do not inflate the ratio.
	maxRel := 0.0
	for s := range ref.StepLosses {
		rel := math.Abs(got.StepLosses[s]-ref.StepLosses[s]) / math.Max(math.Abs(ref.StepLosses[s]), 1e-3)
		if rel > maxRel {
			maxRel = rel
		}
	}
	t.Logf("max relative loss divergence over %d steps: %.4g", spec.Steps, maxRel)
	// Pinned bound: observed ~1e-2 on this config; 0.05 leaves margin for
	// platform FP scheduling differences without masking an EF regression
	// (dropping the residual re-injection sends this over 1 within tens of
	// steps).
	const tol = 0.05
	if maxRel > tol {
		t.Fatalf("loss divergence %.4g exceeds pinned bound %v", maxRel, tol)
	}
	// The quantized run must still train, not merely track the reference.
	first, last := got.StepLosses[0], got.StepLosses[len(got.StepLosses)-1]
	if !(last < 0.5*first) {
		t.Fatalf("int8q run failed to converge: loss %v -> %v", first, last)
	}
}

// TestShardedInt8QErrorFeedbackConverges runs the ZeRO-sharded epilogue under
// int8q: the lossy ReduceScatterV carries quantized gradients (with the
// shard-local residual), while the parameter AllGatherV must stay lossless.
func TestShardedInt8QErrorFeedbackConverges(t *testing.T) {
	spec := JobSpec{
		Stages: 2, NumMB: 4, MBRows: 4, Width: 16,
		Steps: 120, LR: 0.1, Schedule: "1f1b", Seed: 2, Sharded: true,
	}
	ref, err := RunLocal(spec)
	if err != nil {
		t.Fatal(err)
	}

	spec.WireDType = "int8q"
	got := launchWorld(t, spec)

	maxRel := 0.0
	for s := range ref.StepLosses {
		rel := math.Abs(got.StepLosses[s]-ref.StepLosses[s]) / math.Max(math.Abs(ref.StepLosses[s]), 1e-3)
		if rel > maxRel {
			maxRel = rel
		}
	}
	t.Logf("sharded max relative loss divergence: %.4g", maxRel)
	if maxRel > 0.05 {
		t.Fatalf("sharded int8q divergence %.4g exceeds bound", maxRel)
	}
	first, last := got.StepLosses[0], got.StepLosses[len(got.StepLosses)-1]
	if !(last < 0.5*first) {
		t.Fatalf("sharded int8q run failed to converge: loss %v -> %v", first, last)
	}
}

// TestF32WireStaysConvergentAndClose runs the same job with f32 gradient
// frames: no error feedback is needed at f32 precision, and the loss
// trajectory must track the f64 reference to float32-roundoff tightness —
// far tighter than the int8q band.
func TestF32WireStaysConvergentAndClose(t *testing.T) {
	spec := JobSpec{
		Stages: 2, NumMB: 4, MBRows: 4, Width: 16,
		Steps: 50, LR: 0.1, Schedule: "1f1b", Seed: 1,
	}
	ref, err := RunLocal(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.WireDType = "f32"
	got := launchWorld(t, spec)
	for s := range ref.StepLosses {
		rel := math.Abs(got.StepLosses[s]-ref.StepLosses[s]) / math.Max(math.Abs(ref.StepLosses[s]), 1e-6)
		if rel > 1e-3 {
			t.Fatalf("step %d: f32 loss %v strays %v from reference %v", s, got.StepLosses[s], rel, ref.StepLosses[s])
		}
	}
}

// TestShapedRunStaysBitIdentical runs the DP×PP job through ShapedTransport
// (latency, jitter, and a bandwidth cap) and requires losses and final
// parameters bit-identical to the in-process reference: shaping delays
// frames but must never alter payload bits or delivery order.
func TestShapedRunStaysBitIdentical(t *testing.T) {
	spec := JobSpec{
		Stages: 2, NumMB: 4, MBRows: 4, Width: 16,
		Steps: 6, LR: 0.5, Schedule: "1f1b", DataParallel: 2, Seed: 3,
	}
	local, err := RunLocal(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Shape = &ShapeSpec{LatencyUs: 1000, JitterUs: 200, BandwidthGBs: 2, Seed: 7}
	got := launchWorld(t, spec)
	requireBitIdentical(t, got, local)
}

// TestCollectiveSpecWireDTypes pins the collective job's dtype policy: f32 is
// a real verification (integer payloads are f32-exact), int8q is rejected
// up front because a lossy round trip cannot pass a bit-exact self-check.
func TestCollectiveSpecWireDTypes(t *testing.T) {
	base := CollectiveSpec{World: 4, Elems: 1 << 10, Iters: 2, Seed: 5, BucketBytes: 4096}

	bad := base
	bad.WireDType = "int8q"
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "int8q") {
		t.Fatalf("int8q collective spec accepted: %v", err)
	}

	unknown := base
	unknown.WireDType = "q4"
	if err := unknown.Validate(); err == nil {
		t.Fatal("unknown wire dtype accepted")
	}

	f32 := base
	f32.WireDType = "f32"
	if err := RunCollectiveLocal(f32, dist.Options{}); err != nil {
		t.Fatalf("f32 collective verification failed: %v", err)
	}
}

// TestJobSpecRejectsBadWireDType checks the rendezvous payload validation: a
// typo'd wire dtype fails at decode on every rank, not at step time.
func TestJobSpecRejectsBadWireDType(t *testing.T) {
	spec := JobSpec{
		Stages: 2, NumMB: 2, MBRows: 2, Width: 8,
		Steps: 1, LR: 0.1, Schedule: "1f1b", Seed: 1, WireDType: "q4",
	}
	if _, err := UnmarshalJobSpec(spec.Marshal()); err == nil || !strings.Contains(err.Error(), "wire dtype") {
		t.Fatalf("bad wire_dtype accepted: %v", err)
	}
}
