package distrun

import (
	"fmt"
	"math"
	"os"
	"testing"

	"repro/internal/collective"
)

// TestShardPlanOwnerMajorLayout pins the owner-major flat layout: gradient
// tensors sort by (producing actor, gradient index), offsets are exact prefix
// sums, gradOff inverts the permutation, and the balanced partition covers
// [0, total) contiguously.
func TestShardPlanOwnerMajorLayout(t *testing.T) {
	owners := []int{1, 0, 2, 0}
	sizes := []int{3, 4, 2, 5}
	p, err := newShardPlan(owners, sizes, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantOrder := []int{1, 3, 0, 2} // owner 0: g1,g3; owner 1: g0; owner 2: g2
	wantOff := []int{0, 4, 9, 12, 14}
	for k, gi := range wantOrder {
		if p.order[k] != gi {
			t.Fatalf("order %v, want %v", p.order, wantOrder)
		}
		if p.off[k] != wantOff[k] {
			t.Fatalf("off %v, want %v", p.off, wantOff)
		}
		if p.gradOff[gi] != wantOff[k] {
			t.Fatalf("gradOff[%d] = %d, want %d", gi, p.gradOff[gi], wantOff[k])
		}
	}
	if p.total != 14 {
		t.Fatalf("total %d, want 14", p.total)
	}
	wantCounts := collective.EvenCounts(14, 3)
	sum, start := 0, 0
	for r := range p.counts {
		if p.counts[r] != wantCounts[r] {
			t.Fatalf("counts %v, want %v", p.counts, wantCounts)
		}
		if p.starts[r] != start {
			t.Fatalf("starts %v: rank %d at %d, want %d", p.starts, r, p.starts[r], start)
		}
		start += p.counts[r]
		sum += p.counts[r]
	}
	if sum != p.total {
		t.Fatalf("partition covers %d of %d", sum, p.total)
	}

	// The layout must be world-independent: only counts/starts change.
	p2, err := newShardPlan(owners, sizes, 5)
	if err != nil {
		t.Fatal(err)
	}
	for k := range p.order {
		if p2.order[k] != p.order[k] {
			t.Fatalf("order depends on world: %v vs %v", p2.order, p.order)
		}
	}
}

// TestShardedStateMemoryIsOneOverWorld pins the ZeRO memory claim at the unit
// level: the shard-local velocity buffer holds at most ceil(total/world)
// elements — the balanced 1/world slice — versus the dense path's full total.
func TestShardedStateMemoryIsOneOverWorld(t *testing.T) {
	owners := []int{0, 1, 2, 3}
	sizes := []int{100, 100, 100, 100}
	for _, world := range []int{2, 3, 4, 7} {
		p, err := newShardPlan(owners, sizes, world)
		if err != nil {
			t.Fatal(err)
		}
		ceil := (p.total + world - 1) / world
		for r := 0; r < world; r++ {
			s := newShardedState(JobSpec{Momentum: 0.9}, p, r)
			if got := s.vel.Size(); got > ceil {
				t.Fatalf("world %d rank %d: velocity shard %d elems, want <= ceil(%d/%d)=%d", world, r, got, p.total, world, ceil)
			}
			s.release()
		}
	}
}

// TestShardedMatchesReplicated is the tentpole acceptance test: the
// ZeRO-sharded epilogue (ReduceScatterV → shard-local update → AllGatherV)
// must produce per-step losses AND post-step parameter bits identical to the
// dense in-process reference, for plain SGD and momentum, across NPOT and
// power-of-two worlds over real TCP ranks.
func TestShardedMatchesReplicated(t *testing.T) {
	configs := []struct {
		name   string
		stages int
		dp     int
	}{
		{"pp2", 2, 0},
		{"pp3", 3, 0},
		{"dp2xpp2", 2, 2},
		{"dp2xpp4", 4, 2},
	}
	for _, cfg := range configs {
		for _, mu := range []float64{0, 0.9} {
			name := fmt.Sprintf("%s/momentum=%v", cfg.name, mu)
			t.Run(name, func(t *testing.T) {
				spec := JobSpec{
					Stages: cfg.stages, NumMB: 4, MBRows: 4, Width: 16,
					Steps: 5, LR: 0.5, Momentum: mu, Schedule: "1f1b",
					DataParallel: cfg.dp, Seed: 21,
				}
				local, err := RunLocal(spec)
				if err != nil {
					t.Fatal(err)
				}
				sharded := spec
				sharded.Sharded = true
				got := launchWorld(t, sharded)
				requireBitIdentical(t, got, local)
			})
		}
	}
}

// TestShardedCheckpointRestoresAcrossWorlds is the elastic-format acceptance
// test: a world-4 sharded momentum run commits an owner-major checkpoint;
// both a dense and a sharded world-3 job restore it (re-deriving owner tables
// for the new world) and finish bit-identical to each other — proving the
// sharded layout pivots across world sizes and across layouts in both
// directions.
func TestShardedCheckpointRestoresAcrossWorlds(t *testing.T) {
	base := JobSpec{
		Stages: 1, DataParallel: 4, NumMB: 2, MBRows: 4, Width: 16,
		Steps: 12, LR: 0.1, Momentum: 0.9, Schedule: "1f1b", Seed: 7,
		CkptEvery: 5, Sharded: true,
	}
	srcDir := t.TempDir()
	leg1 := base
	leg1.CkptDir = srcDir
	leg1.Steps = 7 // "crash" after step 7; the committed checkpoint is step 5
	if rep := launchWorld(t, leg1); rep.StartStep != 0 {
		t.Fatalf("fresh run claims resume from %d", rep.StartStep)
	}

	// Two independent copies of the checkpoint directory: each resumed leg
	// writes (and prunes) its own checkpoints.
	resume := func(sharded bool) *Report {
		dir := t.TempDir()
		if err := os.CopyFS(dir, os.DirFS(srcDir)); err != nil {
			t.Fatal(err)
		}
		spec := base
		spec.DataParallel = 3 // world 4 -> world 3
		spec.CkptDir = dir
		spec.Sharded = sharded
		rep := launchWorld(t, spec)
		if rep.StartStep != 5 {
			t.Fatalf("sharded=%v leg resumed at %d, want 5", sharded, rep.StartStep)
		}
		return rep
	}
	dense := resume(false)
	shard := resume(true)

	if len(shard.MBLosses) != len(dense.MBLosses) {
		t.Fatalf("steps: %d vs %d", len(shard.MBLosses), len(dense.MBLosses))
	}
	for s := range dense.MBLosses {
		for mb := range dense.MBLosses[s] {
			g, w := shard.MBLosses[s][mb], dense.MBLosses[s][mb]
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("step %d mb %d: sharded loss %v != dense %v", s, mb, g, w)
			}
		}
	}
	for i := range dense.FinalParams {
		gd, wd := shard.FinalParams[i].Data(), dense.FinalParams[i].Data()
		for j := range wd {
			if math.Float64bits(gd[j]) != math.Float64bits(wd[j]) {
				t.Fatalf("param %d elem %d: sharded %v != dense %v", i, j, gd[j], wd[j])
			}
		}
	}
}
