package distrun

import (
	"fmt"
	"log"
	"math"
	"sort"

	jaxpp "repro"
	"repro/internal/collective"
	"repro/internal/dist"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/tensor"
)

// Sharded-epilogue profiling scopes: the two collectives that replace the
// dense gradient AllReduce when JobSpec.Sharded is on. Envelope scopes (they
// contain the collective and wire leaf spans), so the breakdown classifier
// excludes them; step/sgd still times the (now shard-local) update.
var (
	scGradRS  = obs.Scope("step/grad_reducescatter")
	scParamAG = obs.Scope("step/param_allgatherv")
)

// shardPlan is the owner-major flat layout of the gradient/parameter vector
// and its balanced partition over the world — the owner tables of the
// ZeRO-1-style epilogue. The layout orders gradient tensors by producing
// actor (the replica-0 stage actors, from program metadata every rank
// compiles identically), then by gradient index, and concatenates them into
// one flat vector. The ordering depends only on the compiled program — not
// on the world size — which is what makes it the canonical representation
// owner-major checkpoints restore through across world-size changes; only
// the counts partition is a function of the world.
type shardPlan struct {
	world int
	total int
	// order[k] is the gradient index occupying flat range [off[k], off[k+1]).
	order []int
	off   []int
	// gradOff[gi] is the flat offset of gradient gi (inverse of order/off).
	gradOff []int
	// counts/starts is the balanced per-rank partition of [0, total): rank r
	// owns (updates) flat range [starts[r], starts[r]+counts[r]). Shards are
	// uneven whenever world does not divide total, and empty when the world
	// outnumbers the elements.
	counts []int
	starts []int
}

// newShardPlan derives the plan from the gradient owner table and tensor
// sizes (owners[gi] is the producing actor of gradient gi, sizes[gi] its
// element count).
func newShardPlan(owners, sizes []int, world int) (*shardPlan, error) {
	if len(owners) != len(sizes) {
		return nil, fmt.Errorf("distrun: shard plan wants %d owners for %d tensors", len(owners), len(sizes))
	}
	if world < 1 {
		return nil, fmt.Errorf("distrun: shard plan world %d", world)
	}
	p := &shardPlan{
		world:   world,
		order:   make([]int, len(owners)),
		off:     make([]int, len(owners)+1),
		gradOff: make([]int, len(owners)),
	}
	for i := range p.order {
		p.order[i] = i
	}
	sort.SliceStable(p.order, func(a, b int) bool {
		ga, gb := p.order[a], p.order[b]
		if owners[ga] != owners[gb] {
			return owners[ga] < owners[gb]
		}
		return ga < gb
	})
	for k, gi := range p.order {
		p.off[k+1] = p.off[k] + sizes[gi]
		p.gradOff[gi] = p.off[k]
	}
	p.total = p.off[len(p.order)]
	p.counts = collective.EvenCounts(p.total, world)
	p.starts = make([]int, world)
	for r := 1; r < world; r++ {
		p.starts[r] = p.starts[r-1] + p.counts[r-1]
	}
	return p, nil
}

// planForStep builds the plan for a compiled step over the given world:
// owners come from the shared program metadata (TrainStep.GradOwners), sizes
// from the replicated parameters the gradients mirror.
func planForStep(ts *jaxpp.TrainStep, params []*jaxpp.Tensor, world int) (*shardPlan, error) {
	sizes := make([]int, len(params))
	for i, p := range params {
		sizes[i] = p.Size()
	}
	return newShardPlan(ts.GradOwners(), sizes, world)
}

// gather packs the tensor list into the owner-major flat vector.
func (p *shardPlan) gather(flat []float64, ts []*jaxpp.Tensor) {
	for k, gi := range p.order {
		copy(flat[p.off[k]:p.off[k+1]], ts[gi].Data())
	}
}

// scatter unpacks the owner-major flat vector into the tensor list.
func (p *shardPlan) scatter(ts []*jaxpp.Tensor, flat []float64) {
	for k, gi := range p.order {
		ts[gi].CopyFrom(flat[p.off[k]:p.off[k+1]])
	}
}

// shardedState is the steady-state buffer set of the sharded epilogue, all
// allocated once per job and reused every step (the step-alloc ceiling
// counts on it):
//
//	flatG  — packed per-rank gradient contribution, consumed by the RS-V ring
//	gShard — this rank's fully reduced owned gradient slice
//	uShard — this rank's updated parameter slice (the persistent shard buffer
//	         that replaces the dense path's full-size double buffer)
//	flatP  — the full flat parameter vector: AGV destination and the update's
//	         parameter source, kept in sync with the param tensors
//	vel    — shard-local optimizer state (momentum velocities), the ~1/world
//	         memory win; nil for plain SGD
type shardedState struct {
	plan   *shardPlan
	rank   int
	flatG  *tensor.Tensor
	gShard *tensor.Tensor
	uShard *tensor.Tensor
	flatP  *tensor.Tensor
	vel    *tensor.Tensor
	// ef arms int8 error-feedback compression of the gradient ReduceScatterV;
	// efRes carries the rank-local quantization residual over this rank's
	// contributed flat range (allocated lazily on the first exchange, sized to
	// the contribution — not plan.total — to preserve the sharded memory win).
	// Like the dense path's residuals, it never travels and is not
	// checkpointed: a restore restarts compensation from zero.
	ef     bool
	efRes  *tensor.Tensor
	efBase int
}

// newShardedState allocates the epilogue buffers for this rank and logs the
// per-rank optimizer-state footprint (the line the CI memory assertion
// greps).
func newShardedState(spec JobSpec, plan *shardPlan, rank int) *shardedState {
	s := &shardedState{
		plan:   plan,
		rank:   rank,
		flatG:  tensor.GetScratchZero(plan.total),
		gShard: tensor.GetScratchZero(plan.counts[rank]),
		uShard: tensor.GetScratchZero(plan.counts[rank]),
		flatP:  tensor.GetScratchZero(plan.total),
	}
	shardBytes, denseBytes := 0, 0
	if spec.Momentum != 0 {
		s.vel = tensor.GetScratchZero(plan.counts[rank])
		shardBytes, denseBytes = 8*plan.counts[rank], 8*plan.total
	}
	pct := 0.0
	if denseBytes > 0 {
		pct = 100 * float64(shardBytes) / float64(denseBytes)
	}
	log.Printf("distrun: rank %d sharded optimizer state %d/%d bytes (%.1f%% of replicated, world %d)",
		rank, shardBytes, denseBytes, pct, plan.world)
	return s
}

// release recycles the buffer set (keeps a job-retrying process's scratch
// pool warm).
func (s *shardedState) release() {
	tensor.Recycle(s.flatG)
	tensor.Recycle(s.gShard)
	tensor.Recycle(s.uShard)
	tensor.Recycle(s.flatP)
	if s.vel != nil {
		tensor.Recycle(s.vel)
	}
	if s.efRes != nil {
		tensor.Recycle(s.efRes)
	}
}

// armErrorFeedback turns the int8 error-feedback transform on (or off) for
// subsequent exchanges.
func (s *shardedState) armErrorFeedback(on bool) { s.ef = on }

// syncParams refreshes the flat parameter mirror from the param tensors.
// Called once after init/restore; every subsequent step's AllGatherV writes
// the updated vector straight into flatP.
func (s *shardedState) syncParams(params []*jaxpp.Tensor) {
	s.plan.gather(s.flatP.Data(), params)
}

// exchange runs one sharded step epilogue: pack this rank's gradient
// contribution (owned gradients real, everything else the −0.0 additive
// identity), ReduceScatterV so each rank receives only the slice it owns,
// run the fused optimizer update on that slice against shard-local state,
// AllGatherV the updated slices back into the full flat vector, and scatter
// it into the param tensors. Because −0.0 filler reduces to the owner's bits
// in any combine order and the update kernels are elementwise, the resulting
// parameters are bit-identical to the dense AllReduce path.
//
// The gradient ReduceScatterV runs on gradComm — the communicator whose tag
// window the transport may mark lossy — while the parameter AllGatherV stays
// on comm: parameters must never quantize, or every rank's weights would
// degrade once per step regardless of error feedback.
func (s *shardedState) exchange(comm, gradComm *collective.Communicator, spec JobSpec, res *jaxpp.ActorResults, ownedGrad []bool, params []*jaxpp.Tensor) error {
	p := s.plan
	fg := s.flatG.Data()
	// Contributed flat range: the union of this rank's owned gradient
	// segments. The owner-major layout makes the union contiguous, so the
	// sparse ReduceScatterV can skip the −0.0 filler writes — and the wire
	// traffic — for every shard this rank contributes nothing to, sending a
	// zero-length identity marker instead. If the owner table is ever
	// non-contiguous (or a payload lands outside it), fall back to the dense
	// filler path; both produce bit-identical shards.
	contribLo, contribHi, ownedElems := p.total, 0, 0
	for k, gi := range p.order {
		if !ownedGrad[gi] {
			continue
		}
		if p.off[k] < contribLo {
			contribLo = p.off[k]
		}
		if p.off[k+1] > contribHi {
			contribHi = p.off[k+1]
		}
		ownedElems += p.off[k+1] - p.off[k]
	}
	if contribLo > contribHi {
		contribLo, contribHi = 0, 0
	}
	sparse := ownedElems == contribHi-contribLo
	for _, gi := range res.GradIdx {
		if !ownedGrad[gi] {
			sparse = false
			break
		}
	}
	if !sparse {
		for k, gi := range p.order {
			if ownedGrad[gi] {
				continue // overwritten with the real payload below
			}
			seg := fg[p.off[k]:p.off[k+1]]
			for i := range seg {
				seg[i] = negZero
			}
		}
	}
	for i, gi := range res.GradIdx {
		gd := res.Grads[i].Data()
		copy(fg[p.gradOff[gi]:p.gradOff[gi]+len(gd)], gd)
		tensor.Recycle(res.Grads[i])
	}
	if s.ef && contribHi > contribLo {
		// Error feedback over the contributed segments, per owned gradient
		// (matching the dense path's per-tensor quantization grid): fold the
		// carried residual in, replace the contribution with its own int8
		// round trip, keep the new error for next step.
		hq := obs.TrackTid(scQuantEF, s.rank)
		if s.efRes == nil {
			s.efRes = tensor.GetScratchZero(contribHi - contribLo)
			s.efBase = contribLo
		}
		var sq float64
		rd := s.efRes.Data()
		for k, gi := range p.order {
			if !ownedGrad[gi] {
				continue
			}
			g := fg[p.off[k]:p.off[k+1]]
			r := rd[p.off[k]-s.efBase : p.off[k+1]-s.efBase]
			for i := range g {
				r[i] += g[i]
				g[i] = r[i]
			}
			dist.LossyRoundTrip(dist.DTInt8Q, g)
			for i := range g {
				r[i] -= g[i]
				sq += r[i] * r[i]
			}
		}
		obs.Observe(scQuantResidual, int64(math.Sqrt(sq)*1e9))
		hq.Stop()
	}

	hg := obs.TrackTid(scGradRS, s.rank)
	var err error
	if sparse {
		err = gradComm.ReduceScatterVSparseInto(s.gShard, s.flatG, p.counts, contribLo, contribHi, collective.OpSum, 0)
	} else {
		err = gradComm.ReduceScatterVInto(s.gShard, s.flatG, p.counts, collective.OpSum, 0)
	}
	hg.Stop()
	if err != nil {
		return fmt.Errorf("grad reduce-scatter: %w", err)
	}

	lo := p.starts[s.rank]
	hi := lo + p.counts[s.rank]
	hs := obs.TrackTid(scSGD, s.rank)
	if spec.Momentum != 0 {
		model.MomentumRange(s.uShard.Data(), s.flatP.Data()[lo:hi], s.gShard.Data(), s.vel.Data(), spec.LR, spec.Momentum)
	} else {
		model.SGDRange(s.uShard.Data(), s.flatP.Data()[lo:hi], s.gShard.Data(), spec.LR)
	}
	hs.Stop()

	ha := obs.TrackTid(scParamAG, s.rank)
	err = comm.AllGatherVInto(s.flatP, s.uShard, p.counts)
	ha.Stop()
	if err != nil {
		return fmt.Errorf("param all-gatherv: %w", err)
	}
	// The param tensors the actors are stepped with mirror the flat vector.
	p.scatter(params, s.flatP.Data())
	return nil
}
