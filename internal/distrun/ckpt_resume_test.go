package distrun

import (
	"errors"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	jaxpp "repro"
	"repro/internal/ckpt"
	"repro/internal/dist"
	"repro/internal/tensor"
)

// requireResumedSuffix checks a resumed report against the uninterrupted
// reference: the resume point, the per-microbatch losses of every step after
// it, and the final parameters must all match bit for bit. This is the
// recovery guarantee — a crash plus restore is invisible in the math.
func requireResumedSuffix(t *testing.T, got, want *Report, from int) {
	t.Helper()
	if got.StartStep != from {
		t.Fatalf("resumed at step %d, want %d", got.StartStep, from)
	}
	if len(got.MBLosses) != len(want.MBLosses)-from {
		t.Fatalf("resumed run logged %d steps, want %d", len(got.MBLosses), len(want.MBLosses)-from)
	}
	for s := range got.MBLosses {
		for mb := range got.MBLosses[s] {
			g, w := got.MBLosses[s][mb], want.MBLosses[s+from][mb]
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("step %d mb %d: loss %v != reference %v", s+from, mb, g, w)
			}
		}
	}
	if len(got.FinalParams) != len(want.FinalParams) {
		t.Fatalf("final params: %d vs %d", len(got.FinalParams), len(want.FinalParams))
	}
	for i := range want.FinalParams {
		gd, wd := got.FinalParams[i].Data(), want.FinalParams[i].Data()
		for j := range wd {
			if math.Float64bits(gd[j]) != math.Float64bits(wd[j]) {
				t.Fatalf("param %d elem %d: %v != %v", i, j, gd[j], wd[j])
			}
		}
	}
}

// TestLocalResumeBitIdenticalWithMomentum is the acceptance pin for the
// checkpoint format: interrupt a momentum-SGD run after its step-5
// checkpoint, resume in a fresh process state, and require the tail of the
// run — losses and final parameters — bit-identical to never having stopped.
// Momentum matters here: it proves the optimizer state (velocity) round-trips
// too, not just the parameters.
func TestLocalResumeBitIdenticalWithMomentum(t *testing.T) {
	base := JobSpec{
		Stages: 2, NumMB: 4, MBRows: 4, Width: 16,
		Steps: 12, LR: 0.5, Momentum: 0.9, Schedule: "1f1b", Seed: 1,
	}
	ref, err := RunLocal(base) // uninterrupted, no checkpointing at all
	if err != nil {
		t.Fatal(err)
	}

	ckptSpec := base
	ckptSpec.CkptDir = t.TempDir()
	ckptSpec.CkptEvery = 5

	// Leg 1: "crash" after step 7 (the only committed checkpoint is step 5).
	leg1 := ckptSpec
	leg1.Steps = 7
	rep1, err := RunLocal(leg1)
	if err != nil {
		t.Fatal(err)
	}
	if rep1.StartStep != 0 {
		t.Fatalf("fresh run claims resume from %d", rep1.StartStep)
	}

	// Leg 2: full spec, same directory — must restore step 5 and replay the
	// remaining 7 steps exactly.
	rep2, err := RunLocal(ckptSpec)
	if err != nil {
		t.Fatal(err)
	}
	requireResumedSuffix(t, rep2, ref, 5)

	// Checkpointing itself must not perturb the math: a run that writes
	// checkpoints but never crashes is bit-identical to one that doesn't.
	clean := base
	clean.CkptDir = t.TempDir()
	clean.CkptEvery = 5
	rep3, err := RunLocal(clean)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, rep3, ref)
}

// TestDistributedResumeBitIdentical runs the same interrupt/resume sequence
// across 4 real TCP ranks (2 replicas × 2 stages): every rank writes its
// shard, rank 0 commits the manifest, and the reformed (same-size) world
// restores and finishes bit-identical to the uninterrupted local reference.
func TestDistributedResumeBitIdentical(t *testing.T) {
	base := JobSpec{
		Stages: 2, NumMB: 4, MBRows: 4, Width: 16,
		Steps: 12, LR: 0.5, Momentum: 0.9, Schedule: "1f1b", DataParallel: 2, Seed: 3,
	}
	ref, err := RunLocal(base)
	if err != nil {
		t.Fatal(err)
	}

	ckptSpec := base
	ckptSpec.CkptDir = t.TempDir()
	ckptSpec.CkptEvery = 5

	leg1 := ckptSpec
	leg1.Steps = 7
	if rep := launchWorld(t, leg1); rep.StartStep != 0 {
		t.Fatalf("fresh distributed run claims resume from %d", rep.StartStep)
	}
	rep := launchWorld(t, ckptSpec)
	requireResumedSuffix(t, rep, ref, 5)
}

// TestElasticRecoveryResumesFromCheckpoint is the end-to-end tentpole
// scenario in-process: a 4-rank data-parallel job loses one rank mid-training
// (sockets slam shut, no goodbye), the survivors drain back to the
// rendezvous, the coordinator reforms a smaller world, and training resumes
// from the newest committed checkpoint instead of step 0.
func TestElasticRecoveryResumesFromCheckpoint(t *testing.T) {
	elasticRecoveryScenario(t, false)
}

// TestElasticRecoveryShardedResumesAcrossShrink runs the same chaos scenario
// with the ZeRO-sharded epilogue: the owner-major checkpoints written by the
// 4-rank world must restore into the reformed smaller world, whose ranks
// re-derive the owner tables and shard partition for their new size. (The
// bit-identity of a 4→3 sharded restore against the dense path is pinned
// deterministically by TestShardedCheckpointRestoresAcrossWorlds; this test
// proves the same machinery under real failure-driven re-rendezvous.)
func TestElasticRecoveryShardedResumesAcrossShrink(t *testing.T) {
	elasticRecoveryScenario(t, true)
}

func elasticRecoveryScenario(t *testing.T, sharded bool) {
	t.Helper()
	dir := t.TempDir()
	spec := JobSpec{
		Stages: 1, DataParallel: 4, NumMB: 2, MBRows: 4, Width: 16,
		Steps: 80, LR: 0.1, Momentum: 0.9, Schedule: "1f1b", Seed: 7,
		StepSleepMs: 20, CkptDir: dir, CkptEvery: 5, Sharded: sharded,
	}
	opts := dist.SessionOptions{
		RendezvousTimeout: 30 * time.Second,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  1 * time.Second,
		JoinGrace:         1 * time.Second,
		Transport:         dist.Options{RecvTimeout: 60 * time.Second},
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	statePath := ckpt.DefaultStatePath(dir)

	var wg sync.WaitGroup
	var rep *Report
	var coordErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		rep, coordErr = RunElasticCoordinator(spec, ElasticOptions{
			CtrlAddr:    addr,
			MinReplicas: 2,
			MaxAttempts: 3,
			Session:     opts,
			StatePath:   statePath,
		}, 0)
	}()

	// Two elastic survivors: on job failure they back off and rejoin.
	workerErrs := make([]error, 2)
	for w := range workerErrs {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			workerErrs[w] = RunElasticWorker(addr, WorkerOptions{
				Session:         opts,
				Backoff:         100 * time.Millisecond,
				MaxJoinFailures: 20,
			})
		}(w)
	}

	// The victim joins like any worker but will be killed mid-job. Its
	// goroutine is deliberately not waited on: like a SIGKILLed process, it
	// may stay blocked until its own recv timeout — the survivors are the
	// subject here.
	var mu sync.Mutex
	var victim *dist.Session
	go func() {
		var sess *dist.Session
		var err error
		for i := 0; i < 300; i++ {
			sess, err = dist.Join(addr, opts)
			if err == nil || !strings.Contains(err.Error(), "connect") {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if err != nil {
			return // main loop reports "victim never joined"
		}
		mu.Lock()
		victim = sess
		mu.Unlock()
		_ = RunJob(sess) // errors out once aborted — that is the point
	}()

	// Wait for the victim to be seated (Join returns only once the world has
	// formed, so training is underway), let a few checkpoints commit, then
	// kill it abruptly.
	deadline := time.Now().Add(25 * time.Second)
	for {
		mu.Lock()
		v := victim
		mu.Unlock()
		if v != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim never joined the first world")
		}
		time.Sleep(10 * time.Millisecond)
	}
	time.Sleep(1 * time.Second) // ≥5 steps at 20ms/step: step-5 checkpoint committed
	mu.Lock()
	victim.Abort() // SIGKILL-faithful: both planes close with no goodbye
	mu.Unlock()

	wg.Wait()
	if coordErr != nil {
		t.Fatalf("elastic coordinator: %v", coordErr)
	}
	for w, werr := range workerErrs {
		if werr != nil {
			t.Fatalf("elastic worker %d: %v", w, werr)
		}
	}
	if rep.World >= 4 || rep.World < 2 {
		t.Fatalf("final attempt ran world %d, want a shrunken world in [2,3]", rep.World)
	}
	if rep.StartStep < 5 {
		t.Fatalf("final attempt started at step %d, want resume from a committed checkpoint (>= 5)", rep.StartStep)
	}
	t.Logf("recovered: world %d resumed from step %d", rep.World, rep.StartStep)

	// The persisted cluster state reflects the post-recovery generation.
	st, err := ckpt.LoadState(statePath)
	if err != nil {
		t.Fatalf("cluster state: %v", err)
	}
	if st.Attempt != 2 || st.World != rep.World {
		t.Fatalf("cluster state %+v, want attempt 2 / world %d", st, rep.World)
	}
}

// TestPoisonedTransportFailsStepFast pins the runtime fast-fail: once the
// data plane is poisoned, the next step must error out immediately rather
// than discovering the failure send-by-send under a long recv timeout.
func TestPoisonedTransportFailsStepFast(t *testing.T) {
	spec := JobSpec{
		Stages: 2, NumMB: 2, MBRows: 4, Width: 16,
		Steps: 1, LR: 0.5, Schedule: "1f1b", Seed: 1,
	}
	mesh, err := dist.NewLocalMesh(spec.World(), dist.Options{RecvTimeout: 120 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Close()
	ts, err := Compile(spec, mesh)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	params, batch := InitModel(spec)
	losses := make([]*jaxpp.Tensor, ts.NumReplicas()*ts.NumMicrobatches())
	grads := make([]*jaxpp.Tensor, len(ts.Program().Grads))
	if err := ts.StepInto(params, batch, losses, grads); err != nil {
		t.Fatalf("healthy step: %v", err)
	}
	for _, l := range losses {
		tensor.Recycle(l)
	}
	for _, g := range grads {
		tensor.Recycle(g)
	}

	mesh.Poison(errors.New("injected peer death"))
	start := time.Now()
	err = ts.StepInto(params, batch, losses, grads)
	if err == nil || !strings.Contains(err.Error(), "transport poisoned") {
		t.Fatalf("step on poisoned transport: %v, want a transport-poisoned error", err)
	}
	if since := time.Since(start); since > 5*time.Second {
		t.Fatalf("poisoned step took %v to fail; fast-fail should beat the 120s recv timeout", since)
	}
}
