package distrun

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// buildCmds compiles jaxpp-train and jaxpp-worker once per test binary run
// (the Go build cache makes reruns near-instant) and returns their paths.
var buildCmds = sync.OnceValues(func() (map[string]string, error) {
	dir, err := os.MkdirTemp("", "jaxpp-dist-cmds-")
	if err != nil {
		return nil, err
	}
	out := map[string]string{}
	for _, name := range []string{"jaxpp-train", "jaxpp-worker"} {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/"+name)
		cmd.Dir = repoRoot()
		if b, err := cmd.CombinedOutput(); err != nil {
			return nil, fmt.Errorf("go build %s: %v\n%s", name, err, b)
		}
		out[name] = bin
	}
	return out, nil
})

func repoRoot() string {
	// Tests run with CWD = package dir (internal/distrun).
	wd, _ := os.Getwd()
	return filepath.Dir(filepath.Dir(wd))
}

func procFreeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// launchProcesses starts 1 coordinator jaxpp-train + (world-1) jaxpp-worker
// OS processes for the spec and returns the coordinator cmd, worker cmds,
// and the losses-out path.
func launchProcesses(t *testing.T, bins map[string]string, spec JobSpec, extra ...string) (*exec.Cmd, []*exec.Cmd, string) {
	t.Helper()
	addr := procFreeAddr(t)
	lossesPath := filepath.Join(t.TempDir(), "losses.json")
	args := []string{
		"-distributed", "-coordinator", addr,
		"-stages", fmt.Sprint(spec.Stages), "-mb", fmt.Sprint(spec.NumMB),
		"-mbrows", fmt.Sprint(spec.MBRows), "-width", fmt.Sprint(spec.Width),
		"-steps", fmt.Sprint(spec.Steps), "-lr", fmt.Sprint(spec.LR),
		"-schedule", spec.Schedule, "-dp", fmt.Sprint(spec.DataParallel),
		"-seed", fmt.Sprint(spec.Seed), "-losses-out", lossesPath,
		"-step-sleep-ms", fmt.Sprint(spec.StepSleepMs),
	}
	args = append(args, extra...)
	coord := exec.Command(bins["jaxpp-train"], args...)
	var coordOut strings.Builder
	coord.Stdout, coord.Stderr = &coordOut, &coordOut
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if coord.Process != nil {
			coord.Process.Kill()
		}
		coord.Wait() // second Wait errors harmlessly; ensures the output copier finished
		t.Logf("coordinator output:\n%s", coordOut.String())
	})
	var workers []*exec.Cmd
	for w := 1; w < spec.World(); w++ {
		wk := exec.Command(bins["jaxpp-worker"], "-coordinator", addr)
		var out strings.Builder
		wk.Stdout, wk.Stderr = &out, &out
		if err := wk.Start(); err != nil {
			t.Fatal(err)
		}
		w := w
		t.Cleanup(func() {
			if wk.Process != nil {
				wk.Process.Kill()
			}
			wk.Wait()
			t.Logf("worker %d output:\n%s", w, out.String())
		})
		workers = append(workers, wk)
	}
	return coord, workers, lossesPath
}

func waitWithTimeout(t *testing.T, cmd *exec.Cmd, d time.Duration, who string) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		cmd.Process.Kill()
		t.Fatalf("%s did not exit within %v", who, d)
		return nil
	}
}

// TestFourOSProcessesMatchInProcessLosses is the end-to-end acceptance test:
// a 2×2 DP×PP job trains across 4 real OS processes (1 jaxpp-train
// coordinator + 3 jaxpp-worker daemons) over the dist TCP transport, and
// every per-microbatch loss of every step must be bit-identical to the
// single-process in-process run.
func TestFourOSProcessesMatchInProcessLosses(t *testing.T) {
	bins, err := buildCmds()
	if err != nil {
		t.Skipf("cannot build cmd binaries in this environment: %v", err)
	}
	spec := JobSpec{
		Stages: 2, NumMB: 4, MBRows: 4, Width: 16,
		Steps: 5, LR: 0.5, Schedule: "1f1b", DataParallel: 2, Seed: 11,
	}
	local, err := RunLocal(spec)
	if err != nil {
		t.Fatal(err)
	}

	coord, workers, lossesPath := launchProcesses(t, bins, spec)
	if err := waitWithTimeout(t, coord, 90*time.Second, "coordinator"); err != nil {
		t.Fatalf("coordinator failed: %v", err)
	}
	for i, wk := range workers {
		if err := waitWithTimeout(t, wk, 30*time.Second, fmt.Sprintf("worker %d", i+1)); err != nil {
			t.Fatalf("worker %d failed: %v", i+1, err)
		}
	}

	data, err := os.ReadFile(lossesPath)
	if err != nil {
		t.Fatalf("coordinator wrote no losses: %v", err)
	}
	var got struct {
		StepLosses []float64   `json:"step_losses"`
		MBLosses   [][]float64 `json:"mb_losses"`
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.MBLosses) != len(local.MBLosses) {
		t.Fatalf("steps: %d vs %d", len(got.MBLosses), len(local.MBLosses))
	}
	for s := range local.MBLosses {
		for mb := range local.MBLosses[s] {
			g, w := got.MBLosses[s][mb], local.MBLosses[s][mb]
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("step %d mb %d: process loss %v != in-process %v", s, mb, g, w)
			}
		}
	}
}

// TestKilledWorkerProcessFailsDriver SIGKILLs one worker process mid-job and
// requires the coordinator process to exit nonzero (transport poisoned)
// instead of hanging.
func TestKilledWorkerProcessFailsDriver(t *testing.T) {
	bins, err := buildCmds()
	if err != nil {
		t.Skipf("cannot build cmd binaries in this environment: %v", err)
	}
	spec := JobSpec{
		Stages: 3, NumMB: 3, MBRows: 2, Width: 8,
		Steps: 100000, LR: 0.1, Schedule: "1f1b", Seed: 1, StepSleepMs: 2,
	}
	coord, workers, _ := launchProcesses(t, bins, spec)

	// Give the job time to bootstrap and run a few steps, then kill -9 the
	// last worker.
	time.Sleep(3 * time.Second)
	victim := workers[len(workers)-1]
	if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}

	err = waitWithTimeout(t, coord, 60*time.Second, "coordinator")
	if err == nil {
		t.Fatal("coordinator exited cleanly despite a SIGKILLed worker")
	}
}
