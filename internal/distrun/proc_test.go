package distrun

import (
	"encoding/json"
	"fmt"
	"math"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// buildCmds compiles jaxpp-train and jaxpp-worker once per test binary run
// (the Go build cache makes reruns near-instant) and returns their paths.
var buildCmds = sync.OnceValues(func() (map[string]string, error) {
	dir, err := os.MkdirTemp("", "jaxpp-dist-cmds-")
	if err != nil {
		return nil, err
	}
	out := map[string]string{}
	for _, name := range []string{"jaxpp-train", "jaxpp-worker"} {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "repro/cmd/"+name)
		cmd.Dir = repoRoot()
		if b, err := cmd.CombinedOutput(); err != nil {
			return nil, fmt.Errorf("go build %s: %v\n%s", name, err, b)
		}
		out[name] = bin
	}
	return out, nil
})

func repoRoot() string {
	// Tests run with CWD = package dir (internal/distrun).
	wd, _ := os.Getwd()
	return filepath.Dir(filepath.Dir(wd))
}

func procFreeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// launchProcesses starts 1 coordinator jaxpp-train + (world-1) jaxpp-worker
// OS processes for the spec and returns the coordinator cmd, worker cmds,
// and the losses-out path.
func launchProcesses(t *testing.T, bins map[string]string, spec JobSpec, extra ...string) (*exec.Cmd, []*exec.Cmd, string) {
	t.Helper()
	addr := procFreeAddr(t)
	lossesPath := filepath.Join(t.TempDir(), "losses.json")
	args := []string{
		"-distributed", "-coordinator", addr,
		"-stages", fmt.Sprint(spec.Stages), "-mb", fmt.Sprint(spec.NumMB),
		"-mbrows", fmt.Sprint(spec.MBRows), "-width", fmt.Sprint(spec.Width),
		"-steps", fmt.Sprint(spec.Steps), "-lr", fmt.Sprint(spec.LR),
		"-schedule", spec.Schedule, "-dp", fmt.Sprint(spec.DataParallel),
		"-seed", fmt.Sprint(spec.Seed), "-losses-out", lossesPath,
		"-step-sleep-ms", fmt.Sprint(spec.StepSleepMs),
	}
	args = append(args, extra...)
	coord := exec.Command(bins["jaxpp-train"], args...)
	var coordOut strings.Builder
	coord.Stdout, coord.Stderr = &coordOut, &coordOut
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if coord.Process != nil {
			coord.Process.Kill()
		}
		coord.Wait() // second Wait errors harmlessly; ensures the output copier finished
		t.Logf("coordinator output:\n%s", coordOut.String())
	})
	var workers []*exec.Cmd
	for w := 1; w < spec.World(); w++ {
		wk := exec.Command(bins["jaxpp-worker"], "-coordinator", addr)
		var out strings.Builder
		wk.Stdout, wk.Stderr = &out, &out
		if err := wk.Start(); err != nil {
			t.Fatal(err)
		}
		w := w
		t.Cleanup(func() {
			if wk.Process != nil {
				wk.Process.Kill()
			}
			wk.Wait()
			t.Logf("worker %d output:\n%s", w, out.String())
		})
		workers = append(workers, wk)
	}
	return coord, workers, lossesPath
}

func waitWithTimeout(t *testing.T, cmd *exec.Cmd, d time.Duration, who string) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		cmd.Process.Kill()
		t.Fatalf("%s did not exit within %v", who, d)
		return nil
	}
}

// TestFourOSProcessesMatchInProcessLosses is the end-to-end acceptance test:
// a 2×2 DP×PP job trains across 4 real OS processes (1 jaxpp-train
// coordinator + 3 jaxpp-worker daemons) over the dist TCP transport, and
// every per-microbatch loss of every step must be bit-identical to the
// single-process in-process run.
func TestFourOSProcessesMatchInProcessLosses(t *testing.T) {
	bins, err := buildCmds()
	if err != nil {
		t.Skipf("cannot build cmd binaries in this environment: %v", err)
	}
	spec := JobSpec{
		Stages: 2, NumMB: 4, MBRows: 4, Width: 16,
		Steps: 5, LR: 0.5, Schedule: "1f1b", DataParallel: 2, Seed: 11,
	}
	local, err := RunLocal(spec)
	if err != nil {
		t.Fatal(err)
	}

	coord, workers, lossesPath := launchProcesses(t, bins, spec)
	if err := waitWithTimeout(t, coord, 90*time.Second, "coordinator"); err != nil {
		t.Fatalf("coordinator failed: %v", err)
	}
	for i, wk := range workers {
		if err := waitWithTimeout(t, wk, 30*time.Second, fmt.Sprintf("worker %d", i+1)); err != nil {
			t.Fatalf("worker %d failed: %v", i+1, err)
		}
	}

	data, err := os.ReadFile(lossesPath)
	if err != nil {
		t.Fatalf("coordinator wrote no losses: %v", err)
	}
	var got struct {
		StepLosses []float64   `json:"step_losses"`
		MBLosses   [][]float64 `json:"mb_losses"`
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.MBLosses) != len(local.MBLosses) {
		t.Fatalf("steps: %d vs %d", len(got.MBLosses), len(local.MBLosses))
	}
	for s := range local.MBLosses {
		for mb := range local.MBLosses[s] {
			g, w := got.MBLosses[s][mb], local.MBLosses[s][mb]
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("step %d mb %d: process loss %v != in-process %v", s, mb, g, w)
			}
		}
	}
}

// TestShardedFourOSProcessesMatchInProcessLosses is the sharded-epilogue
// variant of the 4-process acceptance test: the same 2×2 DP×PP job with
// momentum trains with -sharded (ReduceScatterV → shard-local update →
// AllGatherV over real sockets) and every per-microbatch loss must stay
// bit-identical to the dense single-process run.
func TestShardedFourOSProcessesMatchInProcessLosses(t *testing.T) {
	bins, err := buildCmds()
	if err != nil {
		t.Skipf("cannot build cmd binaries in this environment: %v", err)
	}
	spec := JobSpec{
		Stages: 2, NumMB: 4, MBRows: 4, Width: 16,
		Steps: 5, LR: 0.5, Momentum: 0.9, Schedule: "1f1b", DataParallel: 2, Seed: 11,
	}
	local, err := RunLocal(spec)
	if err != nil {
		t.Fatal(err)
	}

	coord, workers, lossesPath := launchProcesses(t, bins, spec,
		"-momentum", fmt.Sprint(spec.Momentum), "-sharded")
	if err := waitWithTimeout(t, coord, 90*time.Second, "coordinator"); err != nil {
		t.Fatalf("coordinator failed: %v", err)
	}
	for i, wk := range workers {
		if err := waitWithTimeout(t, wk, 30*time.Second, fmt.Sprintf("worker %d", i+1)); err != nil {
			t.Fatalf("worker %d failed: %v", i+1, err)
		}
	}

	data, err := os.ReadFile(lossesPath)
	if err != nil {
		t.Fatalf("coordinator wrote no losses: %v", err)
	}
	var got struct {
		StepLosses []float64   `json:"step_losses"`
		MBLosses   [][]float64 `json:"mb_losses"`
	}
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.MBLosses) != len(local.MBLosses) {
		t.Fatalf("steps: %d vs %d", len(got.MBLosses), len(local.MBLosses))
	}
	for s := range local.MBLosses {
		for mb := range local.MBLosses[s] {
			g, w := got.MBLosses[s][mb], local.MBLosses[s][mb]
			if math.Float64bits(g) != math.Float64bits(w) {
				t.Fatalf("step %d mb %d: sharded process loss %v != in-process %v", s, mb, g, w)
			}
		}
	}
}

// TestKilledWorkerProcessFailsDriver SIGKILLs one worker process mid-job and
// requires the coordinator process to exit nonzero (transport poisoned)
// instead of hanging.
func TestKilledWorkerProcessFailsDriver(t *testing.T) {
	bins, err := buildCmds()
	if err != nil {
		t.Skipf("cannot build cmd binaries in this environment: %v", err)
	}
	spec := JobSpec{
		Stages: 3, NumMB: 3, MBRows: 2, Width: 8,
		Steps: 100000, LR: 0.1, Schedule: "1f1b", Seed: 1, StepSleepMs: 2,
	}
	coord, workers, _ := launchProcesses(t, bins, spec)

	// Give the job time to bootstrap and run a few steps, then kill -9 the
	// last worker.
	time.Sleep(3 * time.Second)
	victim := workers[len(workers)-1]
	if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}

	err = waitWithTimeout(t, coord, 60*time.Second, "coordinator")
	if err == nil {
		t.Fatal("coordinator exited cleanly despite a SIGKILLed worker")
	}
}

// TestElasticOSProcessesSurviveSIGKILL is the chaos acceptance test: a
// 4-process elastic job (1 jaxpp-train -elastic coordinator + 3 jaxpp-worker
// -reconnect daemons) loses one worker to SIGKILL mid-training, and the
// survivors must re-rendezvous into a smaller world, resume from the newest
// committed checkpoint, and run the job to completion with exit 0 all round.
func TestElasticOSProcessesSurviveSIGKILL(t *testing.T) {
	bins, err := buildCmds()
	if err != nil {
		t.Skipf("cannot build cmd binaries in this environment: %v", err)
	}
	addr := procFreeAddr(t)
	ckptDir := t.TempDir()
	lossesPath := filepath.Join(t.TempDir(), "losses.json")

	coord := exec.Command(bins["jaxpp-train"],
		"-distributed", "-elastic", "-coordinator", addr,
		"-stages", "1", "-dp", "4", "-mb", "2", "-mbrows", "4", "-width", "16",
		"-steps", "250", "-lr", "0.1", "-momentum", "0.9", "-schedule", "1f1b",
		"-seed", "7", "-step-sleep-ms", "20",
		"-ckpt-dir", ckptDir, "-ckpt-every", "5", "-min-replicas", "2",
		"-hb-interval", "50ms", "-hb-misses", "10", "-join-grace", "1s",
		"-losses-out", lossesPath,
	)
	var coordOut strings.Builder
	coord.Stdout, coord.Stderr = &coordOut, &coordOut
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if coord.Process != nil {
			coord.Process.Kill()
		}
		coord.Wait()
		t.Logf("coordinator output:\n%s", coordOut.String())
	})

	workers := make([]*exec.Cmd, 3)
	outs := make([]*strings.Builder, 3)
	for w := range workers {
		wk := exec.Command(bins["jaxpp-worker"],
			"-coordinator", addr, "-reconnect", "-reconnect-backoff", "100ms",
			"-hb-interval", "50ms", "-hb-misses", "10",
		)
		outs[w] = &strings.Builder{}
		wk.Stdout, wk.Stderr = outs[w], outs[w]
		if err := wk.Start(); err != nil {
			t.Fatal(err)
		}
		workers[w] = wk
		w := w
		t.Cleanup(func() {
			if wk.Process != nil {
				wk.Process.Kill()
			}
			wk.Wait()
			t.Logf("worker %d output:\n%s", w, outs[w].String())
		})
	}

	// Let the world form and train past several checkpoint commits (250
	// steps at 20ms/step is >= 5s of training; the step-5 checkpoint lands
	// within the first few hundred ms), then kill -9 a worker.
	time.Sleep(3 * time.Second)
	victim := workers[1]
	if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}

	if err := waitWithTimeout(t, coord, 120*time.Second, "coordinator"); err != nil {
		t.Fatalf("elastic coordinator failed to recover: %v\n%s", err, coordOut.String())
	}
	for w, wk := range workers {
		if wk == victim {
			wk.Wait() // reaps the SIGKILLed process; error expected
			continue
		}
		if err := waitWithTimeout(t, wk, 30*time.Second, fmt.Sprintf("worker %d", w)); err != nil {
			t.Fatalf("surviving worker %d failed: %v\n%s", w, err, outs[w].String())
		}
	}

	out := coordOut.String()
	if !strings.Contains(out, "elastic attempt 2") {
		t.Fatalf("coordinator never re-rendezvoused:\n%s", out)
	}
	if !strings.Contains(out, "restored checkpoint step") {
		t.Fatalf("coordinator resumed without restoring a checkpoint:\n%s", out)
	}
	if _, err := os.Stat(lossesPath); err != nil {
		t.Fatalf("recovered run wrote no losses: %v", err)
	}
}
