package distrun

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/ckpt"
	"repro/internal/dist"
	"repro/internal/obs/flight"
)

// Elastic training: the coordinator runs a rendezvous–train–recover loop.
// When a worker dies mid-job, the failure fan-out poisons every survivor's
// transport, Run returns an error on every rank, and each side comes back to
// the rendezvous — the coordinator reforms a (possibly smaller) world along
// the data-parallel axis and everyone resumes from the newest committed
// checkpoint. Workers mirror the loop with reconnect-plus-backoff, and a
// persisted cluster state lets a restarted coordinator (jaxpp-train -resume)
// pick the job back up instead of orphaning the pool.

// ElasticOptions configures the coordinator side of an elastic job.
type ElasticOptions struct {
	// CtrlAddr is the rendezvous control address to listen on.
	CtrlAddr string
	// MinReplicas is the smallest data-parallel width worth training with
	// (default 1). The world only ever shrinks in whole pipeline replicas:
	// a pool of P processes forms world (P/Stages)·Stages.
	MinReplicas int
	// MaxAttempts bounds how many failed training attempts (rendezvous
	// generations) the coordinator tolerates before giving up (default 3).
	MaxAttempts int
	// Session carries heartbeat/rendezvous tuning shared with the workers.
	Session dist.SessionOptions
	// StatePath persists the cluster state (address book, pins, spec) after
	// every successful rendezvous; "" disables persistence.
	StatePath string
}

// SpecForReplicas resizes a job spec to the given data-parallel width. The
// model shape (stages, width, params, momentum) is untouched, so checkpoints
// restore across the resize; the global batch is Replicas×NumMB×MBRows, so
// the loss trajectory legitimately changes when the world shrinks.
func SpecForReplicas(spec JobSpec, replicas int) JobSpec {
	spec.DataParallel = replicas
	return spec
}

// RunElasticCoordinator runs the coordinator's rendezvous–train–recover loop
// until the job completes, the pool shrinks below MinReplicas, or MaxAttempts
// training attempts have failed. attempt numbers continue from prevAttempts
// (nonzero when resuming a persisted cluster state).
func RunElasticCoordinator(spec JobSpec, opt ElasticOptions, prevAttempts int) (*Report, error) {
	if opt.MinReplicas < 1 {
		opt.MinReplicas = 1
	}
	if opt.MaxAttempts <= 0 {
		opt.MaxAttempts = 3
	}
	if spec.Stages < 1 {
		return nil, fmt.Errorf("distrun: elastic job needs >= 1 stage")
	}
	maxWorld := spec.World()
	attempt := prevAttempts
	var lastErr error
	for failures := 0; failures < opt.MaxAttempts; failures++ {
		cur := spec
		sopts := opt.Session
		sopts.MinWorld = opt.MinReplicas * spec.Stages
		sess, err := dist.CoordinateFlexible(opt.CtrlAddr, maxWorld, sopts, func(procs int) (int, []byte) {
			replicas := procs / spec.Stages
			if replicas < opt.MinReplicas {
				return 0, nil // pool too small for even the minimum world
			}
			if replicas > spec.Replicas() {
				replicas = spec.Replicas() // never grow past the requested job
			}
			cur = SpecForReplicas(spec, replicas)
			return cur.World(), cur.Marshal()
		})
		if err != nil {
			if lastErr != nil {
				return nil, fmt.Errorf("distrun: elastic re-rendezvous failed: %w (after training failure: %v)", err, lastErr)
			}
			return nil, fmt.Errorf("distrun: elastic rendezvous: %w", err)
		}
		attempt++
		if opt.StatePath != "" {
			if serr := saveClusterState(opt, cur, sess, attempt); serr != nil {
				sess.Close()
				return nil, serr
			}
		}
		log.Printf("distrun: elastic attempt %d: world %d (%d replicas × %d stages)", attempt, sess.World, cur.Replicas(), cur.Stages)
		flight.Log("rendezvous", -1, -1, fmt.Sprintf("attempt %d world %d (%d replicas × %d stages)", attempt, sess.World, cur.Replicas(), cur.Stages))
		rep, runErr := Run(sess, cur)
		world := sess.World
		sess.Close()
		if runErr == nil {
			// A world that finished below full strength may have left a
			// survivor mid-rejoin (it missed the join-grace window when the
			// world reformed). Linger on the control address long enough to
			// answer its next dial with a clean release instead of letting it
			// grind through failed joins against a dead coordinator.
			if world < maxWorld {
				grace := opt.Session.JoinGrace
				if grace <= 0 {
					grace = dist.DefaultJoinGrace
				}
				if n := dist.ReleaseStragglers(opt.CtrlAddr, 2*grace); n > 0 {
					log.Printf("distrun: released %d straggler worker(s) after job completion", n)
				}
			}
			flight.Log("job_done", -1, -1, fmt.Sprintf("attempt %d complete", attempt))
			return rep, nil
		}
		lastErr = runErr
		flight.Log("attempt_fail", -1, -1, fmt.Sprintf("attempt %d: %v", attempt, runErr))
		log.Printf("distrun: elastic attempt %d failed: %v; returning to rendezvous at %s", attempt, runErr, opt.CtrlAddr)
	}
	return nil, fmt.Errorf("distrun: elastic job failed %d attempts, giving up: %w", opt.MaxAttempts, lastErr)
}

// saveClusterState persists the coordinator's recovery record alongside the
// checkpoints.
func saveClusterState(opt ElasticOptions, cur JobSpec, sess *dist.Session, attempt int) error {
	st := &ckpt.ClusterState{
		CtrlAddr: opt.CtrlAddr,
		World:    sess.World,
		MinWorld: opt.MinReplicas * cur.Stages,
		Attempt:  attempt,
		Book:     sess.Book,
		Pinned:   sess.Pinned,
		Spec:     json.RawMessage(cur.Marshal()),
		CkptDir:  cur.CkptDir,
	}
	if err := ckpt.SaveState(opt.StatePath, st); err != nil {
		return fmt.Errorf("distrun: persist cluster state: %w", err)
	}
	return nil
}

// WorkerOptions configures the worker side of an elastic job.
type WorkerOptions struct {
	// Session carries heartbeat/rendezvous tuning (must agree with the
	// coordinator's or failure detection skews).
	Session dist.SessionOptions
	// Backoff is the initial reconnect delay after a failed join or a failed
	// job (default 500ms); failed joins back off exponentially to 8×.
	Backoff time.Duration
	// MaxJoinFailures bounds consecutive failed joins before the worker
	// concludes the coordinator is gone for good (default 5). Each join
	// itself retries dialing for the session's RendezvousTimeout.
	MaxJoinFailures int
	// Profile arms rank-local profiling for every job this worker runs.
	Profile bool
	// WireDType overrides the gradient wire encoding on this worker only
	// ("f64", "f32", or "int8q"; empty follows the coordinator's payload).
	WireDType string
}

// RunElasticWorker joins, trains, and — when a peer failure poisons the job —
// returns to the rendezvous with backoff instead of exiting. It returns nil
// when a job completes or the coordinator releases this worker (world formed
// without it), and an error only when the coordinator stays unreachable for
// MaxJoinFailures consecutive joins or the rendezvous rejects the worker.
func RunElasticWorker(ctrlAddr string, opt WorkerOptions) error {
	if opt.Backoff <= 0 {
		opt.Backoff = 500 * time.Millisecond
	}
	if opt.MaxJoinFailures <= 0 {
		opt.MaxJoinFailures = 5
	}
	joinFails := 0
	backoff := opt.Backoff
	for {
		sess, err := dist.Join(ctrlAddr, opt.Session)
		if err != nil {
			if errors.Is(err, dist.ErrReleased) {
				log.Printf("distrun: released by coordinator (world formed without this worker); exiting cleanly")
				return nil
			}
			joinFails++
			if joinFails >= opt.MaxJoinFailures {
				return fmt.Errorf("distrun: giving up after %d failed joins: %w", joinFails, err)
			}
			log.Printf("distrun: join %s failed (%v); retrying in %v", ctrlAddr, err, backoff)
			time.Sleep(backoff)
			if backoff < 8*opt.Backoff {
				backoff *= 2
			}
			continue
		}
		joinFails = 0
		backoff = opt.Backoff
		runErr := RunJobWith(sess, JobOptions{Profile: opt.Profile, WireDType: opt.WireDType})
		sess.Close()
		if runErr == nil {
			return nil
		}
		flight.Log("rejoin", sess.Rank, -1, runErr.Error())
		log.Printf("distrun: rank %d job failed (%v); rejoining %s in %v", sess.Rank, runErr, ctrlAddr, opt.Backoff)
		time.Sleep(opt.Backoff)
	}
}
