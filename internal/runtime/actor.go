package runtime

import (
	"fmt"
	"sync"

	"repro/internal/dist"
	"repro/internal/obs"
	"repro/internal/taskgraph"
	"repro/internal/tensor"
)

// Profiling scopes for the actor step loop. Spans are attributed to the
// actor's ID as the trace lane, so an executed Chrome trace reads like the
// Fig. 2 per-actor timeline.
var (
	scRecv  = obs.Scope("actor/recv")
	scAccum = obs.Scope("actor/accum")
	scAdd   = obs.Scope("actor/add")
)

// Actor is one long-lived SPMD execution unit: it owns an object store and
// executes fused instruction programs, communicating with peers only through
// the transport.
type Actor struct {
	ID    int
	Store *Store

	// SyncSends executes sends inline on the actor's thread instead of
	// asynchronously — the blocking behaviour JaxPP avoids (§4.2). Used for
	// the Fig. 5 deadlock demonstration.
	SyncSends bool

	transport Transport
	prog      []taskgraph.Instr
	segs      []*segmentExecutable

	// argBuf and outBuf are the reusable OpRun dispatch buffers, sized at
	// Load to the widest instruction. The actor executes its program
	// sequentially, so one pair serves every instruction without per-step
	// slice allocation.
	argBuf []*tensor.Tensor
	outBuf []*tensor.Tensor

	// senders holds one persistent sender worker per destination actor,
	// created at Load from the program's OpSend peers. Asynchronous sends
	// enqueue into the destination's non-blocking mailbox instead of
	// spawning a goroutine per send: the §4.2 guarantee (initiating a send
	// never blocks the actor, a slow peer stalls only its own queue) is
	// preserved by the per-destination fan-out, and the per-send goroutine
	// + closure allocations disappear from the steady-state step.
	senders map[int]*dist.Mailbox[sendItem]

	sendWG sync.WaitGroup
}

// sendItem is one queued asynchronous send: the payload plus the store
// buffer whose deferred deletion unblocks when the transfer completes.
type sendItem struct {
	tag int
	t   *tensor.Tensor
	buf taskgraph.BufID
}

// segmentExecutable is a "compiled" pipeline segment: in this reproduction
// compilation is graph verification plus closure capture; XLA's role as the
// per-task executor is played by the compiled IR program (see Cluster.Load).
// runInto writes the segment's outputs into a caller slice so steady-state
// dispatch performs no allocation; inputs are borrowed (never mutated, never
// retained).
type segmentExecutable struct {
	seg     int
	scope   obs.ScopeID // "seg/<idx>" timing scope, assigned at Load
	runInto func(outs, inputs []*tensor.Tensor) error
}

// NewActor builds an actor bound to a transport.
func NewActor(id int, tr Transport) *Actor {
	return &Actor{ID: id, Store: NewStore(), transport: tr}
}

// Load installs the actor's slice of the program and its segment
// executables, and (re)provisions one sender worker per OpSend destination.
func (a *Actor) Load(prog []taskgraph.Instr, segs []*segmentExecutable) {
	a.prog = prog
	a.segs = segs
	for _, s := range segs {
		if s.scope == 0 {
			s.scope = obs.Scope(fmt.Sprintf("seg/%d", s.seg))
		}
	}
	maxIns, maxOuts := 0, 0
	peers := map[int]bool{}
	for _, in := range prog {
		if len(in.Ins) > maxIns {
			maxIns = len(in.Ins)
		}
		if len(in.Outs) > maxOuts {
			maxOuts = len(in.Outs)
		}
		if in.Kind == taskgraph.OpSend {
			peers[in.Peer] = true
		}
	}
	a.argBuf = make([]*tensor.Tensor, maxIns)
	a.outBuf = make([]*tensor.Tensor, maxOuts)
	a.Close() // retire workers from a previous Load
	a.senders = make(map[int]*dist.Mailbox[sendItem], len(peers))
	for peer := range peers {
		peer := peer
		a.senders[peer] = dist.NewMailbox(0, func(it sendItem) {
			a.transport.Send(a.ID, peer, it.tag, it.t)
			a.Store.SendDone(it.buf)
			a.sendWG.Done()
		})
	}
}

// Close retires the actor's sender workers, draining any queued sends.
// A closed actor can be re-armed by another Load.
func (a *Actor) Close() {
	for _, mb := range a.senders {
		mb.Stop()
	}
	a.senders = nil
}

func (a *Actor) segment(idx int) (*segmentExecutable, error) {
	for _, s := range a.segs {
		if s.seg == idx {
			return s, nil
		}
	}
	return nil, fmt.Errorf("runtime: actor %d has no executable for segment %d", a.ID, idx)
}

// RunStep executes the actor's program for one training step. It is the body
// of the single fused RPC of §4.4: all control flow for the step happens here
// with no further driver round trips.
func (a *Actor) RunStep() error {
	for pc, in := range a.prog {
		if err := a.exec(in); err != nil {
			return fmt.Errorf("runtime: actor %d pc %d (%s): %w", a.ID, pc, in, err)
		}
	}
	// Step boundary: all sends must have drained before the driver reads
	// results.
	a.sendWG.Wait()
	return nil
}

func (a *Actor) exec(in taskgraph.Instr) error {
	switch in.Kind {
	case taskgraph.OpRun:
		se, err := a.segment(in.Seg)
		if err != nil {
			return err
		}
		args := a.argBuf[:len(in.Ins)]
		for i, b := range in.Ins {
			t, err := a.Store.Get(b)
			if err != nil {
				return err
			}
			args[i] = t
		}
		outs := a.outBuf[:len(in.Outs)]
		h := obs.TrackTid(se.scope, a.ID)
		err = se.runInto(outs, args)
		h.Stop()
		if err != nil {
			return err
		}
		for i, b := range in.Outs {
			a.Store.Put(b, outs[i])
		}
		clear(args)
		clear(outs)
		return nil

	case taskgraph.OpSend:
		t, err := a.Store.Get(in.Buf)
		if err != nil {
			return err
		}
		if a.SyncSends {
			a.transport.Send(a.ID, in.Peer, in.Tag, t)
			return nil
		}
		// Asynchronous send: the instruction only *initiates* the transfer;
		// the store defers deletion until completion (§4.3). The enqueue
		// into the destination's persistent sender worker never blocks.
		a.Store.SendStarted(in.Buf)
		a.sendWG.Add(1)
		a.senders[in.Peer].Put(sendItem{tag: in.Tag, t: t, buf: in.Buf})
		return nil

	case taskgraph.OpRecv:
		// Blocking receive: the span is the actor's per-microbatch idle
		// (queue) time waiting on an upstream peer.
		h := obs.TrackTid(scRecv, a.ID)
		t, err := a.transport.Recv(a.ID, in.Peer, in.Tag)
		h.Stop()
		if err != nil {
			return err
		}
		a.Store.Put(in.Buf, t)
		return nil

	case taskgraph.OpAccum:
		src, err := a.Store.Get(in.Buf)
		if err != nil {
			return err
		}
		// In-place gradient accumulation: the store mutates its private
		// accumulator instead of allocating a fresh sum every microbatch.
		h := obs.TrackTid(scAccum, a.ID)
		a.Store.Accumulate(in.Dst, src)
		h.Stop()
		return nil

	case taskgraph.OpAdd:
		x, err := a.Store.Get(in.A)
		if err != nil {
			return err
		}
		y, err := a.Store.Get(in.B)
		if err != nil {
			return err
		}
		h := obs.TrackTid(scAdd, a.ID)
		a.Store.Put(in.Dst, tensor.Add(x, y))
		h.Stop()
		return nil

	case taskgraph.OpDelete:
		a.Store.Delete(in.Buf)
		return nil
	}
	return fmt.Errorf("unknown instruction kind %v", in.Kind)
}
