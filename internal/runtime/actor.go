package runtime

import (
	"fmt"
	"sync"

	"repro/internal/taskgraph"
	"repro/internal/tensor"
)

// Actor is one long-lived SPMD execution unit: it owns an object store and
// executes fused instruction programs, communicating with peers only through
// the transport.
type Actor struct {
	ID    int
	Store *Store

	// SyncSends executes sends inline on the actor's thread instead of
	// asynchronously — the blocking behaviour JaxPP avoids (§4.2). Used for
	// the Fig. 5 deadlock demonstration.
	SyncSends bool

	transport Transport
	prog      []taskgraph.Instr
	segs      []*segmentExecutable

	// argBuf and outBuf are the reusable OpRun dispatch buffers, sized at
	// Load to the widest instruction. The actor executes its program
	// sequentially, so one pair serves every instruction without per-step
	// slice allocation.
	argBuf []*tensor.Tensor
	outBuf []*tensor.Tensor

	sendWG sync.WaitGroup
}

// segmentExecutable is a "compiled" pipeline segment: in this reproduction
// compilation is graph verification plus closure capture; XLA's role as the
// per-task executor is played by the compiled IR program (see Cluster.Load).
// runInto writes the segment's outputs into a caller slice so steady-state
// dispatch performs no allocation; inputs are borrowed (never mutated, never
// retained).
type segmentExecutable struct {
	seg     int
	runInto func(outs, inputs []*tensor.Tensor) error
}

// NewActor builds an actor bound to a transport.
func NewActor(id int, tr Transport) *Actor {
	return &Actor{ID: id, Store: NewStore(), transport: tr}
}

// Load installs the actor's slice of the program and its segment
// executables.
func (a *Actor) Load(prog []taskgraph.Instr, segs []*segmentExecutable) {
	a.prog = prog
	a.segs = segs
	maxIns, maxOuts := 0, 0
	for _, in := range prog {
		if len(in.Ins) > maxIns {
			maxIns = len(in.Ins)
		}
		if len(in.Outs) > maxOuts {
			maxOuts = len(in.Outs)
		}
	}
	a.argBuf = make([]*tensor.Tensor, maxIns)
	a.outBuf = make([]*tensor.Tensor, maxOuts)
}

func (a *Actor) segment(idx int) (*segmentExecutable, error) {
	for _, s := range a.segs {
		if s.seg == idx {
			return s, nil
		}
	}
	return nil, fmt.Errorf("runtime: actor %d has no executable for segment %d", a.ID, idx)
}

// RunStep executes the actor's program for one training step. It is the body
// of the single fused RPC of §4.4: all control flow for the step happens here
// with no further driver round trips.
func (a *Actor) RunStep() error {
	for pc, in := range a.prog {
		if err := a.exec(in); err != nil {
			return fmt.Errorf("runtime: actor %d pc %d (%s): %w", a.ID, pc, in, err)
		}
	}
	// Step boundary: all sends must have drained before the driver reads
	// results.
	a.sendWG.Wait()
	return nil
}

func (a *Actor) exec(in taskgraph.Instr) error {
	switch in.Kind {
	case taskgraph.OpRun:
		se, err := a.segment(in.Seg)
		if err != nil {
			return err
		}
		args := a.argBuf[:len(in.Ins)]
		for i, b := range in.Ins {
			t, err := a.Store.Get(b)
			if err != nil {
				return err
			}
			args[i] = t
		}
		outs := a.outBuf[:len(in.Outs)]
		if err := se.runInto(outs, args); err != nil {
			return err
		}
		for i, b := range in.Outs {
			a.Store.Put(b, outs[i])
		}
		clear(args)
		clear(outs)
		return nil

	case taskgraph.OpSend:
		t, err := a.Store.Get(in.Buf)
		if err != nil {
			return err
		}
		if a.SyncSends {
			a.transport.Send(a.ID, in.Peer, in.Tag, t)
			return nil
		}
		// Asynchronous send: the instruction only *initiates* the transfer;
		// the store defers deletion until completion (§4.3).
		a.Store.SendStarted(in.Buf)
		a.sendWG.Add(1)
		go func(buf taskgraph.BufID, peer, tag int, payload *tensor.Tensor) {
			defer a.sendWG.Done()
			a.transport.Send(a.ID, peer, tag, payload)
			a.Store.SendDone(buf)
		}(in.Buf, in.Peer, in.Tag, t)
		return nil

	case taskgraph.OpRecv:
		t, err := a.transport.Recv(a.ID, in.Peer, in.Tag)
		if err != nil {
			return err
		}
		a.Store.Put(in.Buf, t)
		return nil

	case taskgraph.OpAccum:
		src, err := a.Store.Get(in.Buf)
		if err != nil {
			return err
		}
		// In-place gradient accumulation: the store mutates its private
		// accumulator instead of allocating a fresh sum every microbatch.
		a.Store.Accumulate(in.Dst, src)
		return nil

	case taskgraph.OpAdd:
		x, err := a.Store.Get(in.A)
		if err != nil {
			return err
		}
		y, err := a.Store.Get(in.B)
		if err != nil {
			return err
		}
		a.Store.Put(in.Dst, tensor.Add(x, y))
		return nil

	case taskgraph.OpDelete:
		a.Store.Delete(in.Buf)
		return nil
	}
	return fmt.Errorf("unknown instruction kind %v", in.Kind)
}
