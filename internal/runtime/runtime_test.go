package runtime

import (
	"fmt"
	"testing"

	"repro/internal/autodiff"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/schedule"
	"repro/internal/stage"
	"repro/internal/taskgraph"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// buildMLPGrad traces an S-stage MLP microbatch grad graph.
func buildMLPGrad(t *testing.T, stages, mbRows, width int) *ir.Graph {
	t.Helper()
	g, err := trace.Trace("mlp", func(b *trace.Builder) []*ir.Value {
		x := b.Input("x", mbRows, width)
		y := b.Input("y", mbRows, width)
		var ws []*ir.Value
		for i := 0; i < stages; i++ {
			ws = append(ws, b.Input("w", width, width))
		}
		h := x
		for i, w := range ws {
			h = b.ReLU(b.MatMul(h, w))
			if i+1 < len(ws) {
				h = b.PipelineYield(h)
			}
		}
		return []*ir.Value{b.CrossEntropy(h, y)}
	})
	if err != nil {
		t.Fatal(err)
	}
	gg, err := autodiff.ValueAndGrad(g, g.Inputs[2:])
	if err != nil {
		t.Fatal(err)
	}
	return gg
}

// referenceAccumulate computes the ground truth: loop over microbatches on a
// single device, summing gradients and collecting losses — the semantic
// definition of accumulate_grads in §3.1.
func referenceAccumulate(t *testing.T, g *ir.Graph, params []*tensor.Tensor, fullX, fullY *tensor.Tensor, numMB int) ([]*tensor.Tensor, []*tensor.Tensor) {
	t.Helper()
	mbRows := fullX.Dim(0) / numMB
	var losses []*tensor.Tensor
	var grads []*tensor.Tensor
	for mb := 0; mb < numMB; mb++ {
		x := tensor.SliceRange0(fullX, mb*mbRows, (mb+1)*mbRows)
		y := tensor.SliceRange0(fullY, mb*mbRows, (mb+1)*mbRows)
		ins := append([]*tensor.Tensor{x, y}, params...)
		outs, err := interp.Eval(g, ins)
		if err != nil {
			t.Fatal(err)
		}
		losses = append(losses, outs[0])
		if grads == nil {
			grads = append(grads, outs[1:]...)
		} else {
			for i := range grads {
				grads[i] = tensor.Add(grads[i], outs[1+i])
			}
		}
	}
	return losses, grads
}

type pipelineCase struct {
	name  string
	sched func(actors, mbs int) *schedule.Schedule
}

func stdSchedules() []pipelineCase {
	return []pipelineCase{
		{"gpipe", schedule.GPipe},
		{"1f1b", schedule.OneFOneB},
	}
}

// runPipeline compiles and executes the MPMD program and returns losses and
// gradients.
func runPipeline(t *testing.T, g *ir.Graph, sched *schedule.Schedule, commute bool, spmdDevs int, params []*tensor.Tensor, fullX, fullY *tensor.Tensor) ([]*tensor.Tensor, []*tensor.Tensor, *Executable) {
	t.Helper()
	split, err := stage.SplitGraph(g, stage.Options{CommuteGradAccumulation: commute})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := taskgraph.Compile(split, sched, taskgraph.Options{BatchInputs: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	cl := NewCluster(sched.NumActors)
	exe, err := cl.Load(prog, LoadOptions{SPMDDevices: spmdDevs})
	if err != nil {
		t.Fatal(err)
	}
	inputs := append([]*tensor.Tensor{fullX, fullY}, params...)
	losses, grads, err := exe.Step(inputs)
	if err != nil {
		t.Fatal(err)
	}
	return losses, grads, exe
}

func TestMPMDGradientEquivalence(t *testing.T) {
	for _, stages := range []int{2, 3, 4} {
		for _, numMB := range []int{stages, 2 * stages, 8} {
			for _, sc := range stdSchedules() {
				name := fmt.Sprintf("%s/S%d/MB%d", sc.name, stages, numMB)
				t.Run(name, func(t *testing.T) {
					width, mbRows := 6, 4
					g := buildMLPGrad(t, stages, mbRows, width)
					rng := tensor.NewRNG(uint64(stages*100 + numMB))
					params := make([]*tensor.Tensor, stages)
					for i := range params {
						params[i] = rng.Normal(0.5, width, width)
					}
					fullX := rng.Normal(1, numMB*mbRows, width)
					fullY := rng.OneHotBatch(numMB*mbRows, width)
					wantL, wantG := referenceAccumulate(t, g, params, fullX, fullY, numMB)
					gotL, gotG, _ := runPipeline(t, g, sc.sched(stages, numMB), false, 1, params, fullX, fullY)
					for mb := range wantL {
						if !tensor.AllClose(gotL[mb], wantL[mb], 1e-10, 1e-12) {
							t.Fatalf("loss mb %d: got %v want %v", mb, gotL[mb], wantL[mb])
						}
					}
					for i := range wantG {
						if !tensor.AllClose(gotG[i], wantG[i], 1e-10, 1e-12) {
							t.Fatalf("grad %d differs by %v", i, tensor.MaxAbsDiff(gotG[i], wantG[i]))
						}
					}
				})
			}
		}
	}
}

func TestInterleavedGradientEquivalence(t *testing.T) {
	// 4 stages over 2 actors (circular repeat 2), 4 microbatches.
	stages, actors, numMB, width, mbRows := 4, 2, 4, 6, 4
	g := buildMLPGrad(t, stages, mbRows, width)
	sched, err := schedule.Interleaved1F1B(actors, numMB, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(77)
	params := make([]*tensor.Tensor, stages)
	for i := range params {
		params[i] = rng.Normal(0.5, width, width)
	}
	fullX := rng.Normal(1, numMB*mbRows, width)
	fullY := rng.OneHotBatch(numMB*mbRows, width)
	wantL, wantG := referenceAccumulate(t, g, params, fullX, fullY, numMB)
	gotL, gotG, _ := runPipeline(t, g, sched, false, 1, params, fullX, fullY)
	for mb := range wantL {
		if !tensor.AllClose(gotL[mb], wantL[mb], 1e-10, 1e-12) {
			t.Fatalf("loss mb %d differs", mb)
		}
	}
	for i := range wantG {
		if !tensor.AllClose(gotG[i], wantG[i], 1e-10, 1e-12) {
			t.Fatalf("grad %d differs by %v", i, tensor.MaxAbsDiff(gotG[i], wantG[i]))
		}
	}
}

func TestMPMDOfSPMD(t *testing.T) {
	// Each actor executes its segments SPMD-sharded over 2 virtual devices.
	stages, numMB, width, mbRows := 3, 6, 6, 4
	g := buildMLPGrad(t, stages, mbRows, width)
	rng := tensor.NewRNG(5)
	params := make([]*tensor.Tensor, stages)
	for i := range params {
		params[i] = rng.Normal(0.5, width, width)
	}
	fullX := rng.Normal(1, numMB*mbRows, width)
	fullY := rng.OneHotBatch(numMB*mbRows, width)
	wantL, wantG := referenceAccumulate(t, g, params, fullX, fullY, numMB)
	gotL, gotG, _ := runPipeline(t, g, schedule.OneFOneB(stages, numMB), false, 2, params, fullX, fullY)
	for mb := range wantL {
		if !tensor.AllClose(gotL[mb], wantL[mb], 1e-9, 1e-12) {
			t.Fatalf("loss mb %d differs", mb)
		}
	}
	for i := range wantG {
		if !tensor.AllClose(gotG[i], wantG[i], 1e-9, 1e-12) {
			t.Fatalf("grad %d differs by %v", i, tensor.MaxAbsDiff(gotG[i], wantG[i]))
		}
	}
}

func buildTiedGrad(t *testing.T, mbRows, width int) *ir.Graph {
	t.Helper()
	g, err := trace.Trace("tied", func(b *trace.Builder) []*ir.Value {
		x := b.Input("x", mbRows, width)
		y := b.Input("y", mbRows, width)
		w := b.Input("w", width, width)
		v := b.Input("v", width, width)
		h := b.ReLU(b.MatMul(x, w))
		h = b.PipelineYield(h)
		h = b.ReLU(b.MatMul(h, v))
		h = b.PipelineYield(h)
		out := b.MatMul(h, b.Transpose(w))
		return []*ir.Value{b.CrossEntropy(out, y)}
	})
	if err != nil {
		t.Fatal(err)
	}
	gg, err := autodiff.ValueAndGrad(g, []*ir.Value{g.Inputs[2], g.Inputs[3]})
	if err != nil {
		t.Fatal(err)
	}
	return gg
}

func TestTiedWeightsWithAndWithoutCommuting(t *testing.T) {
	numMB, width, mbRows := 6, 6, 4
	g := buildTiedGrad(t, mbRows, width)
	rng := tensor.NewRNG(13)
	params := []*tensor.Tensor{rng.Normal(0.5, width, width), rng.Normal(0.5, width, width)}
	fullX := rng.Normal(1, numMB*mbRows, width)
	fullY := rng.OneHotBatch(numMB*mbRows, width)
	wantL, wantG := referenceAccumulate(t, g, params, fullX, fullY, numMB)

	var sendElems [2]int64
	for ci, commute := range []bool{false, true} {
		split, err := stage.SplitGraph(g.Clone(), stage.Options{CommuteGradAccumulation: commute})
		if err != nil {
			t.Fatal(err)
		}
		prog, err := taskgraph.Compile(split, schedule.OneFOneB(3, numMB), taskgraph.Options{BatchInputs: []int{0, 1}})
		if err != nil {
			t.Fatal(err)
		}
		cl := NewCluster(3)
		exe, err := cl.Load(prog, LoadOptions{})
		if err != nil {
			t.Fatal(err)
		}
		inputs := append([]*tensor.Tensor{fullX, fullY}, params...)
		gotL, gotG, err := exe.Step(inputs)
		if err != nil {
			t.Fatal(err)
		}
		for mb := range wantL {
			if !tensor.AllClose(gotL[mb], wantL[mb], 1e-10, 1e-12) {
				t.Fatalf("commute=%v loss mb %d differs", commute, mb)
			}
		}
		for i := range wantG {
			if !tensor.AllClose(gotG[i], wantG[i], 1e-10, 1e-12) {
				t.Fatalf("commute=%v grad %d differs by %v", commute, i, tensor.MaxAbsDiff(gotG[i], wantG[i]))
			}
		}
		_, elems := cl.Transport.(*ChanTransport).SendCount()
		sendElems[ci] = elems
	}
	// §3.4: commuting must strictly reduce communication volume (one final
	// partial transfer instead of one per microbatch).
	if sendElems[1] >= sendElems[0] {
		t.Fatalf("loop commuting did not reduce traffic: %d -> %d elems", sendElems[0], sendElems[1])
	}
}

func TestMultiStepReuse(t *testing.T) {
	// The executable must be reusable across steps (training loop) without
	// stale accumulators leaking in.
	stages, numMB, width, mbRows := 3, 6, 6, 4
	g := buildMLPGrad(t, stages, mbRows, width)
	split, err := stage.SplitGraph(g, stage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := taskgraph.Compile(split, schedule.OneFOneB(stages, numMB), taskgraph.Options{BatchInputs: []int{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	cl := NewCluster(stages)
	exe, err := cl.Load(prog, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(21)
	params := make([]*tensor.Tensor, stages)
	for i := range params {
		params[i] = rng.Normal(0.5, width, width)
	}
	lr := 0.1
	var prevLoss float64
	for step := 0; step < 5; step++ {
		fullX := tensor.NewRNG(100).Normal(1, numMB*mbRows, width) // fixed batch
		fullY := tensor.NewRNG(101).OneHotBatch(numMB*mbRows, width)
		wantL, wantG := referenceAccumulate(t, g, params, fullX, fullY, numMB)
		inputs := append([]*tensor.Tensor{fullX, fullY}, params...)
		gotL, gotG, err := exe.Step(inputs)
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		total := 0.0
		for mb := range gotL {
			if !tensor.AllClose(gotL[mb], wantL[mb], 1e-10, 1e-12) {
				t.Fatalf("step %d loss mb %d differs", step, mb)
			}
			total += gotL[mb].Data()[0]
		}
		for i := range gotG {
			if !tensor.AllClose(gotG[i], wantG[i], 1e-10, 1e-12) {
				t.Fatalf("step %d grad %d differs", step, i)
			}
			params[i] = tensor.Sub(params[i], tensor.Scale(gotG[i], lr))
		}
		if step > 0 && total >= prevLoss {
			t.Fatalf("step %d: loss did not decrease (%v -> %v)", step, prevLoss, total)
		}
		prevLoss = total
	}
}

func TestPeakMemory1F1BBelowGPipe(t *testing.T) {
	// Invariant 4: 1F1B's peak live bytes on the first actor are below
	// GPipe's for enough microbatches (its activation lifetime is bounded by
	// stages, not microbatches).
	stages, numMB, width, mbRows := 4, 16, 8, 4
	g := buildMLPGrad(t, stages, mbRows, width)
	rng := tensor.NewRNG(31)
	params := make([]*tensor.Tensor, stages)
	for i := range params {
		params[i] = rng.Normal(0.5, width, width)
	}
	fullX := rng.Normal(1, numMB*mbRows, width)
	fullY := rng.OneHotBatch(numMB*mbRows, width)

	peak := func(sched *schedule.Schedule) int64 {
		_, _, exe := runPipeline(t, g, sched, false, 1, params, fullX, fullY)
		stats := exe.StoreStatsAll()
		return stats[0].PeakBytes
	}
	gp := peak(schedule.GPipe(stages, numMB))
	ob := peak(schedule.OneFOneB(stages, numMB))
	if ob >= gp {
		t.Fatalf("1F1B peak %d >= GPipe peak %d", ob, gp)
	}
}

func TestDeletionBoundsMemory(t *testing.T) {
	stages, numMB, width, mbRows := 3, 12, 8, 4
	g := buildMLPGrad(t, stages, mbRows, width)
	rng := tensor.NewRNG(41)
	params := make([]*tensor.Tensor, stages)
	for i := range params {
		params[i] = rng.Normal(0.5, width, width)
	}
	fullX := rng.Normal(1, numMB*mbRows, width)
	fullY := rng.OneHotBatch(numMB*mbRows, width)

	split, err := stage.SplitGraph(g, stage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	peak := func(disable bool) int64 {
		prog, err := taskgraph.Compile(split, schedule.OneFOneB(stages, numMB), taskgraph.Options{BatchInputs: []int{0, 1}, DisableDeletion: disable})
		if err != nil {
			t.Fatal(err)
		}
		cl := NewCluster(stages)
		exe, err := cl.Load(prog, LoadOptions{})
		if err != nil {
			t.Fatal(err)
		}
		inputs := append([]*tensor.Tensor{fullX, fullY}, params...)
		if _, _, err := exe.Step(inputs); err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, st := range exe.StoreStatsAll() {
			total += st.PeakBytes
		}
		return total
	}
	withDel := peak(false)
	withoutDel := peak(true)
	if withDel >= withoutDel {
		t.Fatalf("deletion pass did not reduce peak memory: %d vs %d", withDel, withoutDel)
	}
}

func TestStoreBasics(t *testing.T) {
	s := NewStore()
	s.Put(1, tensor.New(4))
	if _, err := s.Get(1); err != nil {
		t.Fatal(err)
	}
	s.Delete(1)
	if _, err := s.Get(1); err == nil {
		t.Fatal("deleted buffer still present")
	}
	// Pending deletion while send in flight.
	s.Put(2, tensor.New(4))
	s.SendStarted(2)
	s.Delete(2)
	if _, err := s.Get(2); err != nil {
		t.Fatal("buffer reclaimed while send in flight")
	}
	s.SendDone(2)
	if _, err := s.Get(2); err == nil {
		t.Fatal("buffer not reclaimed after send completion")
	}
	st := s.Stats()
	if st.DeferredDeletes != 1 {
		t.Fatalf("deferred deletes %d", st.DeferredDeletes)
	}
}

func TestChanTransport(t *testing.T) {
	tr := NewChanTransport()
	done := make(chan *tensor.Tensor)
	go func() {
		got, err := tr.Recv(1, 0, 7)
		if err != nil {
			t.Error(err)
		}
		done <- got
	}()
	want := tensor.MustFromSlice([]float64{1, 2}, 2)
	tr.Send(0, 1, 7, want)
	got := <-done
	if !tensor.AllClose(got, want, 0, 0) {
		t.Fatal("payload mismatch")
	}
	n, elems := tr.SendCount()
	if n != 1 || elems != 2 {
		t.Fatalf("count=%d elems=%d", n, elems)
	}
}
