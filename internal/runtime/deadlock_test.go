package runtime

import (
	"testing"
	"time"

	"repro/internal/schedule"
	"repro/internal/stage"
	"repro/internal/taskgraph"
	"repro/internal/tensor"
)

// stepOutcome runs one step under the given communication ordering and
// synchronous rendezvous sends, reporting whether it completed within the
// timeout — the experimental apparatus for the paper's Fig. 5.
func stepOutcome(t *testing.T, naive bool, timeout time.Duration) (completed bool, grads []*tensor.Tensor) {
	t.Helper()
	const stages, mbRows, numMB, width = 3, 4, 6, 8
	g := buildMLPGrad(t, stages, mbRows, width)
	split, err := stage.SplitGraph(g, stage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := taskgraph.Compile(split, schedule.OneFOneB(stages, numMB), taskgraph.Options{
		BatchInputs:       []int{0, 1},
		NaiveCommOrdering: naive,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := NewClusterWithTransport(stages, NewRendezvousTransport())
	exe, err := cl.Load(prog, LoadOptions{SyncSends: true})
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(2)
	params := make([]*tensor.Tensor, stages)
	for i := range params {
		params[i] = rng.Normal(0.5, width, width)
	}
	inputs := append([]*tensor.Tensor{
		rng.Normal(1, numMB*mbRows, width),
		rng.OneHotBatch(numMB*mbRows, width),
	}, params...)

	type result struct {
		grads []*tensor.Tensor
		err   error
	}
	done := make(chan result, 1)
	go func() {
		_, gr, err := exe.Step(inputs)
		done <- result{gr, err}
	}()
	select {
	case r := <-done:
		if r.err != nil {
			t.Fatal(r.err)
		}
		return true, r.grads
	case <-time.After(timeout):
		return false, nil
	}
}

// TestFig5NaiveOrderingDeadlocks reproduces the §4.2 claim: emitting each
// receive just before its consuming task, combined with blocking sends,
// deadlocks under 1F1B (actors attempt mutual synchronous sends).
func TestFig5NaiveOrderingDeadlocks(t *testing.T) {
	completed, _ := stepOutcome(t, true, 300*time.Millisecond)
	if completed {
		t.Fatal("naive comm ordering with rendezvous sends should deadlock under 1F1B")
	}
	// Note: the deadlocked goroutines leak for the remainder of the test
	// binary; that is inherent to demonstrating a deadlock.
}

// TestFig5TopologicalOrderingCompletes shows JaxPP's ordering (receives
// posted at production time, in global topological order) completes even
// with fully synchronous rendezvous sends.
func TestFig5TopologicalOrderingCompletes(t *testing.T) {
	completed, grads := stepOutcome(t, false, 10*time.Second)
	if !completed {
		t.Fatal("topological ordering must not deadlock")
	}
	if len(grads) != 3 {
		t.Fatalf("grads %d", len(grads))
	}
}

// TestNaiveOrderingWorksWithAsyncSends confirms the other half of the
// design: with JaxPP's asynchronous sends even the naive receive placement
// cannot deadlock (sends never block the actor's program).
func TestNaiveOrderingWorksWithAsyncSends(t *testing.T) {
	const stages, mbRows, numMB, width = 3, 4, 6, 8
	g := buildMLPGrad(t, stages, mbRows, width)
	split, err := stage.SplitGraph(g, stage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prog, err := taskgraph.Compile(split, schedule.OneFOneB(stages, numMB), taskgraph.Options{
		BatchInputs:       []int{0, 1},
		NaiveCommOrdering: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl := NewCluster(stages)
	exe, err := cl.Load(prog, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(2)
	params := make([]*tensor.Tensor, stages)
	for i := range params {
		params[i] = rng.Normal(0.5, width, width)
	}
	fullX := rng.Normal(1, numMB*mbRows, width)
	fullY := rng.OneHotBatch(numMB*mbRows, width)
	wantL, wantG := referenceAccumulate(t, g, params, fullX, fullY, numMB)
	inputs := append([]*tensor.Tensor{fullX, fullY}, params...)
	gotL, gotG, err := exe.Step(inputs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantL {
		if !tensor.AllClose(gotL[i], wantL[i], 1e-10, 1e-12) {
			t.Fatalf("loss %d differs", i)
		}
	}
	for i := range wantG {
		if !tensor.AllClose(gotG[i], wantG[i], 1e-10, 1e-12) {
			t.Fatalf("grad %d differs", i)
		}
	}
}
