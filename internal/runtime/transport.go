package runtime

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/tensor"
)

// Transport is the point-to-point communication layer between actors — the
// role NCCL P2P plays in the paper. Sends are asynchronous and tag-matched;
// receives block until the matching send arrives.
type Transport interface {
	// Send delivers t from actor `from` to actor `to` under tag. It must not
	// block indefinitely on the receiver.
	Send(from, to, tag int, t *tensor.Tensor)
	// Recv blocks until the matching Send and returns its payload, or an
	// error if the transport gives up (e.g. a receive timeout fires because
	// no send with a matching tag ever arrives).
	Recv(to, from, tag int) (*tensor.Tensor, error)
}

// DefaultRecvTimeout bounds how long the in-process transports wait for a
// matching send before reporting a mismatched tag / deadlock as an error.
// At in-process scale no legitimate receive waits anywhere near this long;
// a receive that does is a tag-allocation bug or a communication deadlock,
// and an error beats a hung process.
const DefaultRecvTimeout = 30 * time.Second

// recvTimeoutErr formats the diagnostic for a receive that never matched.
func recvTimeoutErr(timeout time.Duration, to, from, tag int) error {
	return fmt.Errorf("runtime: recv on actor %d from %d tag %d timed out after %v: no matching send (mismatched tag or communication deadlock)", to, from, tag, timeout)
}

// recvWithTimeout waits on ch up to timeout (forever if timeout <= 0).
func recvWithTimeout(ch chan *tensor.Tensor, timeout time.Duration, to, from, tag int) (*tensor.Tensor, error) {
	if timeout <= 0 {
		return <-ch, nil
	}
	select {
	case t := <-ch:
		return t, nil
	default:
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case t := <-ch:
		return t, nil
	case <-timer.C:
		return nil, recvTimeoutErr(timeout, to, from, tag)
	}
}

type chanKey struct{ from, to, tag int }

// ChanTransport is the in-process Transport: one buffered channel per
// (sender, receiver, tag) triple, created lazily by whichever side arrives
// first. Buffering size 1 plus unique tags make sends non-blocking.
type ChanTransport struct {
	mu  sync.Mutex
	chs map[chanKey]chan *tensor.Tensor

	// RecvTimeout bounds every Recv; when it fires, Recv returns an error
	// instead of hanging forever on a tag no sender will ever match.
	// Zero or negative waits indefinitely. Set before actors start.
	RecvTimeout time.Duration

	sent      int
	sentElems int64
}

// NewChanTransport returns an empty in-process transport with the default
// receive timeout.
func NewChanTransport() *ChanTransport {
	return &ChanTransport{chs: map[chanKey]chan *tensor.Tensor{}, RecvTimeout: DefaultRecvTimeout}
}

func (c *ChanTransport) ch(k chanKey) chan *tensor.Tensor {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch, ok := c.chs[k]
	if !ok {
		ch = make(chan *tensor.Tensor, 1)
		c.chs[k] = ch
	}
	return ch
}

// Send implements Transport.
func (c *ChanTransport) Send(from, to, tag int, t *tensor.Tensor) {
	c.mu.Lock()
	c.sent++
	c.sentElems += int64(t.Size())
	c.mu.Unlock()
	c.ch(chanKey{from, to, tag}) <- t
}

// Recv implements Transport. On timeout the channel is left registered so a
// late sender still completes against it instead of blocking forever.
func (c *ChanTransport) Recv(to, from, tag int) (*tensor.Tensor, error) {
	k := chanKey{from, to, tag}
	t, err := recvWithTimeout(c.ch(k), c.RecvTimeout, to, from, tag)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	delete(c.chs, k)
	c.mu.Unlock()
	return t, nil
}

// SendCount returns the number of sends and total elements moved.
func (c *ChanTransport) SendCount() (int, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sent, c.sentElems
}

// RendezvousTransport is a Transport whose sends block until the matching
// receive executes — the synchronous point-to-point semantics whose deadlock
// hazard §4.2 (Fig. 5) analyzes. Used by tests to demonstrate that the naive
// communication ordering deadlocks while JaxPP's topological ordering and
// asynchronous sends do not.
type RendezvousTransport struct {
	mu  sync.Mutex
	chs map[chanKey]chan *tensor.Tensor

	// RecvTimeout mirrors ChanTransport.RecvTimeout: a receive whose tag no
	// sender ever matches errors out instead of hanging forever. Sends keep
	// their deliberately blocking rendezvous semantics — that hazard is the
	// point of this transport.
	RecvTimeout time.Duration
}

// NewRendezvousTransport returns an empty rendezvous transport with the
// default receive timeout.
func NewRendezvousTransport() *RendezvousTransport {
	return &RendezvousTransport{chs: map[chanKey]chan *tensor.Tensor{}, RecvTimeout: DefaultRecvTimeout}
}

func (r *RendezvousTransport) ch(k chanKey) chan *tensor.Tensor {
	r.mu.Lock()
	defer r.mu.Unlock()
	ch, ok := r.chs[k]
	if !ok {
		ch = make(chan *tensor.Tensor) // unbuffered: send blocks on receive
		r.chs[k] = ch
	}
	return ch
}

// Send implements Transport, blocking until the receiver arrives.
func (r *RendezvousTransport) Send(from, to, tag int, t *tensor.Tensor) {
	r.ch(chanKey{from, to, tag}) <- t
}

// Recv implements Transport.
func (r *RendezvousTransport) Recv(to, from, tag int) (*tensor.Tensor, error) {
	k := chanKey{from, to, tag}
	t, err := recvWithTimeout(r.ch(k), r.RecvTimeout, to, from, tag)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	delete(r.chs, k)
	r.mu.Unlock()
	return t, nil
}
