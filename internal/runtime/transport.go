package runtime

import (
	"sync"

	"repro/internal/tensor"
)

// Transport is the point-to-point communication layer between actors — the
// role NCCL P2P plays in the paper. Sends are asynchronous and tag-matched;
// receives block until the matching send arrives.
type Transport interface {
	// Send delivers t from actor `from` to actor `to` under tag. It must not
	// block indefinitely on the receiver.
	Send(from, to, tag int, t *tensor.Tensor)
	// Recv blocks until the matching Send and returns its payload.
	Recv(to, from, tag int) (*tensor.Tensor, error)
}

type chanKey struct{ from, to, tag int }

// ChanTransport is the in-process Transport: one buffered channel per
// (sender, receiver, tag) triple, created lazily by whichever side arrives
// first. Buffering size 1 plus unique tags make sends non-blocking.
type ChanTransport struct {
	mu  sync.Mutex
	chs map[chanKey]chan *tensor.Tensor

	sent      int
	sentElems int64
}

// NewChanTransport returns an empty in-process transport.
func NewChanTransport() *ChanTransport {
	return &ChanTransport{chs: map[chanKey]chan *tensor.Tensor{}}
}

func (c *ChanTransport) ch(k chanKey) chan *tensor.Tensor {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch, ok := c.chs[k]
	if !ok {
		ch = make(chan *tensor.Tensor, 1)
		c.chs[k] = ch
	}
	return ch
}

// Send implements Transport.
func (c *ChanTransport) Send(from, to, tag int, t *tensor.Tensor) {
	c.mu.Lock()
	c.sent++
	c.sentElems += int64(t.Size())
	c.mu.Unlock()
	c.ch(chanKey{from, to, tag}) <- t
}

// Recv implements Transport.
func (c *ChanTransport) Recv(to, from, tag int) (*tensor.Tensor, error) {
	k := chanKey{from, to, tag}
	t := <-c.ch(k)
	c.mu.Lock()
	delete(c.chs, k)
	c.mu.Unlock()
	return t, nil
}

// SendCount returns the number of sends and total elements moved.
func (c *ChanTransport) SendCount() (int, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sent, c.sentElems
}

// RendezvousTransport is a Transport whose sends block until the matching
// receive executes — the synchronous point-to-point semantics whose deadlock
// hazard §4.2 (Fig. 5) analyzes. Used by tests to demonstrate that the naive
// communication ordering deadlocks while JaxPP's topological ordering and
// asynchronous sends do not.
type RendezvousTransport struct {
	mu  sync.Mutex
	chs map[chanKey]chan *tensor.Tensor
}

// NewRendezvousTransport returns an empty rendezvous transport.
func NewRendezvousTransport() *RendezvousTransport {
	return &RendezvousTransport{chs: map[chanKey]chan *tensor.Tensor{}}
}

func (r *RendezvousTransport) ch(k chanKey) chan *tensor.Tensor {
	r.mu.Lock()
	defer r.mu.Unlock()
	ch, ok := r.chs[k]
	if !ok {
		ch = make(chan *tensor.Tensor) // unbuffered: send blocks on receive
		r.chs[k] = ch
	}
	return ch
}

// Send implements Transport, blocking until the receiver arrives.
func (r *RendezvousTransport) Send(from, to, tag int, t *tensor.Tensor) {
	r.ch(chanKey{from, to, tag}) <- t
}

// Recv implements Transport.
func (r *RendezvousTransport) Recv(to, from, tag int) (*tensor.Tensor, error) {
	k := chanKey{from, to, tag}
	t := <-r.ch(k)
	r.mu.Lock()
	delete(r.chs, k)
	r.mu.Unlock()
	return t, nil
}
