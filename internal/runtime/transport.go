package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/tensor"
)

// Transport is the point-to-point communication layer between actors — the
// role NCCL P2P plays in the paper. Sends are asynchronous and tag-matched;
// receives block until the matching send arrives.
type Transport interface {
	// Send delivers t from actor `from` to actor `to` under tag. It must not
	// block indefinitely on the receiver.
	Send(from, to, tag int, t *tensor.Tensor)
	// Recv blocks until the matching Send and returns its payload, or an
	// error if the transport gives up (e.g. a receive timeout fires because
	// no send with a matching tag ever arrives).
	Recv(to, from, tag int) (*tensor.Tensor, error)
}

// DefaultRecvTimeout bounds how long the in-process transports wait for a
// matching send before reporting a mismatched tag / deadlock as an error.
// At in-process scale no legitimate receive waits anywhere near this long;
// a receive that does is a tag-allocation bug or a communication deadlock,
// and an error beats a hung process.
const DefaultRecvTimeout = 30 * time.Second

// recvTimeoutErr formats the diagnostic for a receive that never matched.
func recvTimeoutErr(timeout time.Duration, to, from, tag int) error {
	return fmt.Errorf("runtime: recv on actor %d from %d tag %d timed out after %v: no matching send (mismatched tag or communication deadlock)", to, from, tag, timeout)
}

// timerPool recycles the timeout timers blocking Sends and Recvs arm,
// keeping both hot paths allocation-free (Go 1.23+ timer semantics make
// Reset-after-fire safe without draining).
var timerPool sync.Pool

func getTimer(d time.Duration) *time.Timer {
	if v := timerPool.Get(); v != nil {
		timer := v.(*time.Timer)
		timer.Reset(d)
		return timer
	}
	return time.NewTimer(d)
}

func putTimer(timer *time.Timer) {
	timer.Stop()
	timerPool.Put(timer)
}

// recvWithTimeout waits on ch up to timeout (forever if timeout <= 0).
func recvWithTimeout(ch chan *tensor.Tensor, timeout time.Duration, to, from, tag int) (*tensor.Tensor, error) {
	if timeout <= 0 {
		return <-ch, nil
	}
	select {
	case t := <-ch:
		return t, nil
	default:
	}
	timer := getTimer(timeout)
	defer putTimer(timer)
	select {
	case t := <-ch:
		return t, nil
	case <-timer.C:
		return nil, recvTimeoutErr(timeout, to, from, tag)
	}
}

type chanKey struct{ from, to, tag int }

// numShards spreads the mailbox registry over independently locked shards so
// concurrent actors' Send/Recv never serialize on one global mutex. Must be a
// power of two.
const numShards = 32

type chanShard struct {
	mu  sync.Mutex
	chs map[chanKey]chan *tensor.Tensor
	// Pad shards to a full 64-byte cache line (8B mutex + 8B map + 48B) so
	// neighbouring locks don't false-share under contention.
	_ [48]byte
}

func (k chanKey) shard() int {
	h := uint64(k.from)*0x9e3779b97f4a7c15 ^ uint64(k.to)*0xbf58476d1ce4e5b9 ^ uint64(k.tag)*0x94d049bb133111eb
	h ^= h >> 29
	return int(h & (numShards - 1))
}

// ChanTransport is the in-process Transport: one buffered channel per
// (sender, receiver, tag) triple, created lazily by whichever side arrives
// first and kept registered as a persistent mailbox — tag reuse (the
// collective engine's windows wrap, the pipeline reuses its tags every step)
// rebinds the same channel, so steady-state traffic allocates nothing.
// Buffering size 1 plus unique live tags make sends non-blocking.
type ChanTransport struct {
	shards [numShards]chanShard

	// RecvTimeout bounds every Recv; when it fires, Recv returns an error
	// instead of hanging forever on a tag no sender will ever match.
	// Zero or negative waits indefinitely. Set before actors start.
	RecvTimeout time.Duration

	// SendTimeout bounds a Send into a mailbox whose previous message was
	// never consumed — reachable when the receiving actor aborted its
	// program, or (pathologically) when it stalls longer than the timeout.
	// When it fires, the payload is dropped and the transport is poisoned:
	// every subsequent Recv errors, because after a drop, tag reuse could
	// otherwise match a later same-shape message to an earlier receive and
	// corrupt data silently. Zero or negative waits indefinitely. Set before
	// actors start.
	SendTimeout time.Duration

	// dropped is set when a timed-out Send discarded its payload; the
	// transport is then permanently poisoned (re-provision the cluster, the
	// same recovery Step errors already require).
	dropped atomic.Bool

	sent      atomic.Int64
	sentElems atomic.Int64
}

// NewChanTransport returns an empty in-process transport with the default
// timeouts.
func NewChanTransport() *ChanTransport {
	c := &ChanTransport{RecvTimeout: DefaultRecvTimeout, SendTimeout: DefaultRecvTimeout}
	for i := range c.shards {
		c.shards[i].chs = map[chanKey]chan *tensor.Tensor{}
	}
	return c
}

func (c *ChanTransport) ch(k chanKey) chan *tensor.Tensor {
	s := &c.shards[k.shard()]
	s.mu.Lock()
	ch, ok := s.chs[k]
	if !ok {
		ch = make(chan *tensor.Tensor, 1)
		s.chs[k] = ch
	}
	s.mu.Unlock()
	return ch
}

// Send implements Transport. Steady-state sends are non-blocking (a live
// tag's mailbox is empty by the tag-reuse discipline); a send that finds the
// mailbox still full backpressures up to SendTimeout for the receiver to
// drain it, then drops the payload and poisons the transport so the failure
// surfaces as errors on every rank instead of wedging this one or silently
// skewing tag matching.
func (c *ChanTransport) Send(from, to, tag int, t *tensor.Tensor) {
	// Ownership of t transfers to the receiver the moment the channel send
	// completes (it may recycle the tensor immediately), so read the size
	// up front.
	size := int64(t.Size())
	ch := c.ch(chanKey{from, to, tag})
	select {
	case ch <- t:
		c.sent.Add(1)
		c.sentElems.Add(size)
		return
	default:
	}
	if c.SendTimeout <= 0 {
		ch <- t
		c.sent.Add(1)
		c.sentElems.Add(size)
		return
	}
	timer := getTimer(c.SendTimeout)
	defer putTimer(timer)
	select {
	case ch <- t:
		c.sent.Add(1)
		c.sentElems.Add(size)
	case <-timer.C:
		c.dropped.Store(true)
	}
}

// Recv implements Transport. The mailbox stays registered after delivery
// (and after a timeout, so a late sender still completes against it instead
// of blocking forever); a future reuse of the tag matches the same channel.
func (c *ChanTransport) Recv(to, from, tag int) (*tensor.Tensor, error) {
	if c.dropped.Load() {
		return nil, fmt.Errorf("runtime: transport poisoned: a send timed out and dropped its payload; re-provision the cluster")
	}
	return recvWithTimeout(c.ch(chanKey{from, to, tag}), c.RecvTimeout, to, from, tag)
}

// SendCount returns the number of sends and total elements moved.
func (c *ChanTransport) SendCount() (int, int64) {
	return int(c.sent.Load()), c.sentElems.Load()
}

// RendezvousTransport is a Transport whose sends block until the matching
// receive executes — the synchronous point-to-point semantics whose deadlock
// hazard §4.2 (Fig. 5) analyzes. Used by tests to demonstrate that the naive
// communication ordering deadlocks while JaxPP's topological ordering and
// asynchronous sends do not.
type RendezvousTransport struct {
	mu  sync.Mutex
	chs map[chanKey]chan *tensor.Tensor

	// RecvTimeout mirrors ChanTransport.RecvTimeout: a receive whose tag no
	// sender ever matches errors out instead of hanging forever. Sends keep
	// their deliberately blocking rendezvous semantics — that hazard is the
	// point of this transport.
	RecvTimeout time.Duration
}

// NewRendezvousTransport returns an empty rendezvous transport with the
// default receive timeout.
func NewRendezvousTransport() *RendezvousTransport {
	return &RendezvousTransport{chs: map[chanKey]chan *tensor.Tensor{}, RecvTimeout: DefaultRecvTimeout}
}

func (r *RendezvousTransport) ch(k chanKey) chan *tensor.Tensor {
	r.mu.Lock()
	defer r.mu.Unlock()
	ch, ok := r.chs[k]
	if !ok {
		ch = make(chan *tensor.Tensor) // unbuffered: send blocks on receive
		r.chs[k] = ch
	}
	return ch
}

// Send implements Transport, blocking until the receiver arrives.
func (r *RendezvousTransport) Send(from, to, tag int, t *tensor.Tensor) {
	r.ch(chanKey{from, to, tag}) <- t
}

// Recv implements Transport.
func (r *RendezvousTransport) Recv(to, from, tag int) (*tensor.Tensor, error) {
	return recvWithTimeout(r.ch(chanKey{from, to, tag}), r.RecvTimeout, to, from, tag)
}
