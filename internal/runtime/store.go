// Package runtime implements JaxPP's single-controller MPMD runtime (§4):
// long-lived SPMD actors each own an object store of device buffers and
// execute one fused instruction program per training step, communicating
// exclusively through asynchronous point-to-point sends and receives. Actors
// run as goroutines over an in-process transport or as TCP peers (package
// rpcx), playing the role Ray workers + NCCL play for JaxPP.
package runtime

import (
	"fmt"
	"sync"

	"repro/internal/taskgraph"
	"repro/internal/tensor"
)

// Store is an actor's on-device object store (§4.1). Deletions of buffers
// with in-flight sends are deferred to a pending queue and performed when the
// send completes (§4.3).
type Store struct {
	mu       sync.Mutex
	bufs     map[taskgraph.BufID]*tensor.Tensor
	inflight map[taskgraph.BufID]int
	pending  map[taskgraph.BufID]bool

	liveBytes int64
	peakBytes int64
	peakBufs  int
	deferred  int // deletions that had to wait on a send at least once
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		bufs:     map[taskgraph.BufID]*tensor.Tensor{},
		inflight: map[taskgraph.BufID]int{},
		pending:  map[taskgraph.BufID]bool{},
	}
}

func bytesOf(t *tensor.Tensor) int64 { return int64(t.Size()) * 8 }

// Put stores a buffer, replacing any previous value.
func (s *Store) Put(id taskgraph.BufID, t *tensor.Tensor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if old, ok := s.bufs[id]; ok {
		s.liveBytes -= bytesOf(old)
	}
	s.bufs[id] = t
	s.liveBytes += bytesOf(t)
	if s.liveBytes > s.peakBytes {
		s.peakBytes = s.liveBytes
	}
	if len(s.bufs) > s.peakBufs {
		s.peakBufs = len(s.bufs)
	}
}

// Get returns the buffer or an error if absent (deleted or never produced).
func (s *Store) Get(id taskgraph.BufID) (*tensor.Tensor, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.bufs[id]
	if !ok {
		return nil, fmt.Errorf("runtime: buffer %d not in store", id)
	}
	return t, nil
}

// SendStarted marks one in-flight send of the buffer.
func (s *Store) SendStarted(id taskgraph.BufID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight[id]++
}

// SendDone marks completion of one send; if a deletion was pending and no
// sends remain, the buffer is reclaimed now.
func (s *Store) SendDone(id taskgraph.BufID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inflight[id]--
	if s.inflight[id] <= 0 {
		delete(s.inflight, id)
		if s.pending[id] {
			delete(s.pending, id)
			s.reclaim(id)
		}
	}
}

// Delete reclaims the buffer, deferring while sends are in flight (§4.3).
func (s *Store) Delete(id taskgraph.BufID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.inflight[id] > 0 {
		s.pending[id] = true
		s.deferred++
		return
	}
	s.reclaim(id)
}

// Accumulate adds src into the buffer, in place when the store owns the
// accumulator exclusively: a buffer with in-flight sends may be concurrently
// read by the transport, so those fall back to an out-of-place add (the same
// reason deletions defer, §4.3). A missing buffer is initialized to a copy of
// src, which is what makes every later accumulation exclusively store-owned.
func (s *Store) Accumulate(id taskgraph.BufID, src *tensor.Tensor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dst, ok := s.bufs[id]
	if ok && s.inflight[id] == 0 && tensor.SameShape(dst, src) {
		tensor.AddInto(dst, dst, src)
		return
	}
	var out *tensor.Tensor
	if ok {
		out = tensor.Add(dst, src)
		s.liveBytes -= bytesOf(dst)
	} else {
		out = src.Clone()
	}
	s.bufs[id] = out
	s.liveBytes += bytesOf(out)
	if s.liveBytes > s.peakBytes {
		s.peakBytes = s.liveBytes
	}
	if len(s.bufs) > s.peakBufs {
		s.peakBufs = len(s.bufs)
	}
}

func (s *Store) reclaim(id taskgraph.BufID) {
	if t, ok := s.bufs[id]; ok {
		s.liveBytes -= bytesOf(t)
		delete(s.bufs, id)
	}
}

// Stats reports live/peak occupancy.
type StoreStats struct {
	LiveBufs         int
	LiveBytes        int64
	PeakBufs         int
	PeakBytes        int64
	DeferredDeletes  int
	PendingDeletions int
}

// Stats returns a snapshot of occupancy counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		LiveBufs:         len(s.bufs),
		LiveBytes:        s.liveBytes,
		PeakBufs:         s.peakBufs,
		PeakBytes:        s.peakBytes,
		DeferredDeletes:  s.deferred,
		PendingDeletions: len(s.pending),
	}
}

// ResetPeaks clears peak counters (e.g. between steps).
func (s *Store) ResetPeaks() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.peakBytes = s.liveBytes
	s.peakBufs = len(s.bufs)
}
