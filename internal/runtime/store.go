// Package runtime implements JaxPP's single-controller MPMD runtime (§4):
// long-lived SPMD actors each own an object store of device buffers and
// execute one fused instruction program per training step, communicating
// exclusively through asynchronous point-to-point sends and receives. Actors
// run as goroutines over an in-process transport or as TCP peers across OS
// processes (package dist), playing the role Ray workers + NCCL play for
// JaxPP.
package runtime

import (
	"fmt"
	"sync"

	"repro/internal/taskgraph"
	"repro/internal/tensor"
)

// slot is one dense store entry. BufIDs are allocated compactly per program
// (taskgraph.Program.NumBufs), so a slice of slots indexed directly by BufID
// replaces the three maps the store used to keep — no hashing, no bucket
// churn, and the per-buffer bookkeeping bits live next to the buffer pointer.
type slot struct {
	t        *tensor.Tensor
	inflight int32 // sends in progress reading this buffer
	pending  bool  // deletion deferred until inflight drains (§4.3)
}

// Store is an actor's on-device object store (§4.1). Deletions of buffers
// with in-flight sends are deferred and performed when the send completes
// (§4.3).
type Store struct {
	mu    sync.Mutex
	slots []slot

	liveBufs     int
	pendingCount int
	liveBytes    int64
	peakBytes    int64
	peakBufs     int
	deferred     int // deletions that had to wait on a send at least once
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{}
}

// Reserve grows the dense slot table to hold BufIDs [0, n) without further
// allocation. The driver calls it at program-load time with the program's
// NumBufs; stores still grow on demand if an ID beyond the reservation
// appears.
func (s *Store) Reserve(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.grow(taskgraph.BufID(n - 1))
}

// grow ensures slots covers id. Callers hold s.mu.
func (s *Store) grow(id taskgraph.BufID) {
	if int(id) < len(s.slots) {
		return
	}
	n := len(s.slots)*2 + 1
	if n <= int(id) {
		n = int(id) + 1
	}
	grown := make([]slot, n)
	copy(grown, s.slots)
	s.slots = grown
}

// slotFor returns the slot for id, growing the table as needed. Callers hold
// s.mu.
func (s *Store) slotFor(id taskgraph.BufID) *slot {
	s.grow(id)
	return &s.slots[id]
}

func bytesOf(t *tensor.Tensor) int64 { return int64(t.Size()) * 8 }

// Put stores a buffer, replacing any previous value.
func (s *Store) Put(id taskgraph.BufID, t *tensor.Tensor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sl := s.slotFor(id)
	if sl.t != nil {
		s.liveBytes -= bytesOf(sl.t)
	} else {
		s.liveBufs++
	}
	sl.t = t
	s.liveBytes += bytesOf(t)
	if s.liveBytes > s.peakBytes {
		s.peakBytes = s.liveBytes
	}
	if s.liveBufs > s.peakBufs {
		s.peakBufs = s.liveBufs
	}
}

// Get returns the buffer or an error if absent (deleted or never produced).
func (s *Store) Get(id taskgraph.BufID) (*tensor.Tensor, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= len(s.slots) || s.slots[id].t == nil {
		return nil, fmt.Errorf("runtime: buffer %d not in store", id)
	}
	return s.slots[id].t, nil
}

// Take removes the buffer from the store and transfers ownership of it to the
// caller: the runtime holds no further reference, so nothing the next step
// does (deletes, accumulations, in-place collectives) can touch the returned
// tensor. A buffer with sends still in flight is cloned instead — the
// transport may still be reading the original — and the original stays in the
// store under its deferred-deletion discipline.
func (s *Store) Take(id taskgraph.BufID) (*tensor.Tensor, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= len(s.slots) || s.slots[id].t == nil {
		return nil, fmt.Errorf("runtime: buffer %d not in store", id)
	}
	sl := &s.slots[id]
	if sl.inflight > 0 {
		return sl.t.Clone(), nil
	}
	t := sl.t
	sl.t = nil
	s.liveBufs--
	s.liveBytes -= bytesOf(t)
	return t, nil
}

// SendStarted marks one in-flight send of the buffer.
func (s *Store) SendStarted(id taskgraph.BufID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.slotFor(id).inflight++
}

// SendDone marks completion of one send; if a deletion was pending and no
// sends remain, the buffer is reclaimed now. An unmatched SendDone panics:
// letting the count go negative would silently corrupt the deferred-deletion
// accounting (a later SendStarted/Delete pair would reclaim the buffer while
// the transport still reads it).
func (s *Store) SendDone(id taskgraph.BufID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= len(s.slots) || s.slots[id].inflight <= 0 {
		panic(fmt.Sprintf("runtime: SendDone(%d) without matching SendStarted", id))
	}
	sl := &s.slots[id]
	sl.inflight--
	if sl.inflight == 0 && sl.pending {
		sl.pending = false
		s.pendingCount--
		s.reclaim(sl)
	}
}

// Delete reclaims the buffer, deferring while sends are in flight (§4.3).
func (s *Store) Delete(id taskgraph.BufID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(id) >= len(s.slots) {
		return
	}
	sl := &s.slots[id]
	if sl.inflight > 0 {
		if !sl.pending {
			sl.pending = true
			s.pendingCount++
		}
		s.deferred++
		return
	}
	s.reclaim(sl)
}

// Accumulate adds src into the buffer, in place when the store owns the
// accumulator exclusively: a buffer with in-flight sends may be concurrently
// read by the transport, and a borrowed view (a zero-copy batch row) is
// caller-owned storage — both fall back to an out-of-place add (the same
// reason deletions defer, §4.3). A missing buffer is initialized to a copy of
// src, which is what makes every later accumulation exclusively store-owned.
func (s *Store) Accumulate(id taskgraph.BufID, src *tensor.Tensor) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sl := s.slotFor(id)
	dst := sl.t
	if dst != nil && sl.inflight == 0 && !dst.Borrowed() && tensor.SameShape(dst, src) {
		tensor.AddInto(dst, dst, src)
		return
	}
	var out *tensor.Tensor
	if dst != nil {
		out = tensor.Add(dst, src)
		s.liveBytes -= bytesOf(dst)
	} else {
		out = src.Clone()
		s.liveBufs++
	}
	sl.t = out
	s.liveBytes += bytesOf(out)
	if s.liveBytes > s.peakBytes {
		s.peakBytes = s.liveBytes
	}
	if s.liveBufs > s.peakBufs {
		s.peakBufs = s.liveBufs
	}
}

// reclaim drops the slot's buffer. Callers hold s.mu.
func (s *Store) reclaim(sl *slot) {
	if sl.t != nil {
		s.liveBytes -= bytesOf(sl.t)
		s.liveBufs--
		sl.t = nil
	}
}

// Stats reports live/peak occupancy.
type StoreStats struct {
	LiveBufs         int
	LiveBytes        int64
	PeakBufs         int
	PeakBytes        int64
	DeferredDeletes  int
	PendingDeletions int
}

// Stats returns a snapshot of occupancy counters.
func (s *Store) Stats() StoreStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return StoreStats{
		LiveBufs:         s.liveBufs,
		LiveBytes:        s.liveBytes,
		PeakBufs:         s.peakBufs,
		PeakBytes:        s.peakBytes,
		DeferredDeletes:  s.deferred,
		PendingDeletions: s.pendingCount,
	}
}

// ResetPeaks clears peak counters (e.g. between steps).
func (s *Store) ResetPeaks() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.peakBytes = s.liveBytes
	s.peakBufs = s.liveBufs
}
