package runtime

import (
	"math/rand"
	"testing"

	"repro/internal/taskgraph"
	"repro/internal/tensor"
)

// modelStore is a reference implementation of the store contract with the
// original three-map layout, used to property-test the dense slice store: any
// divergence in Get results, Take results, or Stats under a random operation
// sequence is a regression in the dense rewrite.
type modelStore struct {
	bufs     map[taskgraph.BufID]*tensor.Tensor
	inflight map[taskgraph.BufID]int
	pending  map[taskgraph.BufID]bool

	liveBytes int64
	peakBytes int64
	peakBufs  int
	deferred  int
}

func newModelStore() *modelStore {
	return &modelStore{
		bufs:     map[taskgraph.BufID]*tensor.Tensor{},
		inflight: map[taskgraph.BufID]int{},
		pending:  map[taskgraph.BufID]bool{},
	}
}

func (m *modelStore) bump() {
	if m.liveBytes > m.peakBytes {
		m.peakBytes = m.liveBytes
	}
	if len(m.bufs) > m.peakBufs {
		m.peakBufs = len(m.bufs)
	}
}

func (m *modelStore) put(id taskgraph.BufID, t *tensor.Tensor) {
	if old, ok := m.bufs[id]; ok {
		m.liveBytes -= bytesOf(old)
	}
	m.bufs[id] = t
	m.liveBytes += bytesOf(t)
	m.bump()
}

func (m *modelStore) reclaim(id taskgraph.BufID) {
	if t, ok := m.bufs[id]; ok {
		m.liveBytes -= bytesOf(t)
		delete(m.bufs, id)
	}
}

func (m *modelStore) del(id taskgraph.BufID) {
	if m.inflight[id] > 0 {
		m.pending[id] = true
		m.deferred++
		return
	}
	m.reclaim(id)
}

func (m *modelStore) sendStarted(id taskgraph.BufID) { m.inflight[id]++ }

func (m *modelStore) sendDone(id taskgraph.BufID) {
	m.inflight[id]--
	if m.inflight[id] <= 0 {
		delete(m.inflight, id)
		if m.pending[id] {
			delete(m.pending, id)
			m.reclaim(id)
		}
	}
}

func (m *modelStore) accumulate(id taskgraph.BufID, src *tensor.Tensor) {
	dst, ok := m.bufs[id]
	var out *tensor.Tensor
	if ok {
		out = tensor.Add(dst, src)
		m.liveBytes -= bytesOf(dst)
	} else {
		out = src.Clone()
	}
	m.bufs[id] = out
	m.liveBytes += bytesOf(out)
	m.bump()
}

func (m *modelStore) take(id taskgraph.BufID) (*tensor.Tensor, bool) {
	t, ok := m.bufs[id]
	if !ok {
		return nil, false
	}
	if m.inflight[id] > 0 {
		return t.Clone(), true
	}
	m.liveBytes -= bytesOf(t)
	delete(m.bufs, id)
	return t, true
}

func (m *modelStore) stats() StoreStats {
	return StoreStats{
		LiveBufs:         len(m.bufs),
		LiveBytes:        m.liveBytes,
		PeakBufs:         m.peakBufs,
		PeakBytes:        m.peakBytes,
		DeferredDeletes:  m.deferred,
		PendingDeletions: len(m.pending),
	}
}

// TestDenseStoreMatchesMapSemantics drives the dense store and the map model
// through the same random operation sequence and demands identical observable
// behaviour after every operation.
func TestDenseStoreMatchesMapSemantics(t *testing.T) {
	const ids = 12
	const ops = 20000
	rng := rand.New(rand.NewSource(7))
	s := NewStore()
	m := newModelStore()

	// Buffer shapes are fixed per ID, as the task-graph compiler guarantees:
	// accumulation only ever meets matching shapes.
	val := func(id taskgraph.BufID) *tensor.Tensor {
		t := tensor.New(1 + int(id)%3)
		for i := range t.Data() {
			t.Data()[i] = rng.Float64()
		}
		return t
	}

	for op := 0; op < ops; op++ {
		id := taskgraph.BufID(rng.Intn(ids))
		switch rng.Intn(7) {
		case 0: // Put
			v := val(id)
			s.Put(id, v)
			m.put(id, v.Clone())
		case 1: // Delete
			s.Delete(id)
			m.del(id)
		case 2: // SendStarted (only on present buffers, as the actor does)
			if _, err := s.Get(id); err == nil {
				s.SendStarted(id)
				m.sendStarted(id)
			}
		case 3: // SendDone, matched — unmatched ones are a panic, tested below
			if m.inflight[id] > 0 {
				s.SendDone(id)
				m.sendDone(id)
			}
		case 4: // Accumulate
			v := val(id)
			// The in-place/out-of-place split is an implementation detail;
			// values must match either way. Clone into the model so the two
			// stores never share storage.
			s.Accumulate(id, v)
			m.accumulate(id, v.Clone())
		case 5: // Get
			got, err := s.Get(id)
			want, ok := m.bufs[id]
			if ok != (err == nil) {
				t.Fatalf("op %d: Get(%d) err=%v, model present=%v", op, id, err, ok)
			}
			if ok && !tensor.AllClose(got, want, 0, 0) {
				t.Fatalf("op %d: Get(%d) = %v, model %v", op, id, got, want)
			}
		case 6: // Take
			got, err := s.Take(id)
			want, ok := m.take(id)
			if ok != (err == nil) {
				t.Fatalf("op %d: Take(%d) err=%v, model present=%v", op, id, err, ok)
			}
			if ok && !tensor.AllClose(got, want, 0, 0) {
				t.Fatalf("op %d: Take(%d) = %v, model %v", op, id, got, want)
			}
		}
		gs, ms := s.Stats(), m.stats()
		if gs != ms {
			t.Fatalf("op %d: stats diverged: dense %+v, model %+v", op, gs, ms)
		}
	}
}

// TestSendDoneUnderflowPanics is the regression test for the silent
// inflight-count corruption: an unmatched SendDone must fail loudly instead
// of writing a negative count that poisons deferred-deletion accounting.
func TestSendDoneUnderflowPanics(t *testing.T) {
	check := func(name string, f func(s *Store)) {
		t.Run(name, func(t *testing.T) {
			s := NewStore()
			s.Put(3, tensor.Scalar(1))
			defer func() {
				if recover() == nil {
					t.Fatalf("unmatched SendDone did not panic")
				}
			}()
			f(s)
		})
	}
	check("never-started", func(s *Store) {
		s.SendDone(3)
	})
	check("double-done", func(s *Store) {
		s.SendStarted(3)
		s.SendDone(3)
		s.SendDone(3)
	})
	check("unknown-buffer", func(s *Store) {
		s.SendDone(99)
	})
}

// TestStoreTakeTransfersOwnership pins the fetch contract Executable.Step
// relies on: after Take, the buffer is gone from the store and later deletes
// or accumulations build fresh storage instead of touching the taken tensor.
func TestStoreTakeTransfersOwnership(t *testing.T) {
	s := NewStore()
	v := tensor.MustFromSlice([]float64{1, 2, 3}, 3)
	s.Put(0, v)
	got, err := s.Take(0)
	if err != nil {
		t.Fatal(err)
	}
	if got != v {
		t.Fatalf("Take without in-flight sends should return the stored tensor itself")
	}
	if _, err := s.Get(0); err == nil {
		t.Fatalf("buffer still present after Take")
	}
	s.Delete(0) // must be a no-op, not a panic
	s.Accumulate(0, tensor.MustFromSlice([]float64{10, 10, 10}, 3))
	if got.Data()[0] != 1 {
		t.Fatalf("accumulate after Take mutated the taken tensor: %v", got)
	}

	// With a send in flight the transport may still read the buffer, so Take
	// must return an independent clone and leave the original stored.
	s2 := NewStore()
	w := tensor.MustFromSlice([]float64{5, 6}, 2)
	s2.Put(1, w)
	s2.SendStarted(1)
	got2, err := s2.Take(1)
	if err != nil {
		t.Fatal(err)
	}
	if got2 == w {
		t.Fatalf("Take during an in-flight send must clone, not transfer")
	}
	if !tensor.AllClose(got2, w, 0, 0) {
		t.Fatalf("clone mismatch: %v vs %v", got2, w)
	}
	if _, err := s2.Get(1); err != nil {
		t.Fatalf("original must remain stored while the send drains: %v", err)
	}
	s2.SendDone(1)
}
