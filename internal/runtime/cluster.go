package runtime

import (
	"fmt"
	"sync"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mesh"
	"repro/internal/spmd"
	"repro/internal/taskgraph"
	"repro/internal/tensor"
)

// Cluster is the set of long-lived actors managed by the single controller
// (the driver). In the paper the driver provisions Ray actors over hosts;
// here actors are goroutines over a Transport.
type Cluster struct {
	Transport Transport
	Actors    []*Actor
}

// NewCluster provisions n actors over an in-process transport.
func NewCluster(n int) *Cluster {
	tr := NewChanTransport()
	c := &Cluster{Transport: tr}
	for i := 0; i < n; i++ {
		c.Actors = append(c.Actors, NewActor(i, tr))
	}
	return c
}

// NewClusterWithTransport provisions n actors over a custom transport.
func NewClusterWithTransport(n int, tr Transport) *Cluster {
	c := &Cluster{Transport: tr}
	for i := 0; i < n; i++ {
		c.Actors = append(c.Actors, NewActor(i, tr))
	}
	return c
}

// LoadOptions configures how segments are "compiled" onto actors.
type LoadOptions struct {
	// SPMDDevices > 1 executes each segment SPMD-sharded over that many
	// virtual devices inside the actor (batch-dimension data parallelism on
	// a [("intra", n)] mesh), demonstrating the MPMD-of-SPMD structure: XLA
	// SPMD within a task, JaxPP MPMD across tasks.
	SPMDDevices int

	// SyncSends makes every actor block on sends (Fig. 5 ablation).
	SyncSends bool
}

// Executable is a loaded MPMD program ready for repeated Step calls — the
// returned step_fn of mesh.distributed in the paper.
type Executable struct {
	cluster *Cluster
	prog    *taskgraph.Program
}

// Load installs a compiled program on the cluster.
func (c *Cluster) Load(prog *taskgraph.Program, opts LoadOptions) (*Executable, error) {
	if prog.Schedule.NumActors != len(c.Actors) {
		return nil, fmt.Errorf("runtime: program wants %d actors, cluster has %d", prog.Schedule.NumActors, len(c.Actors))
	}
	for a, instrs := range prog.Actors {
		needed := map[int]bool{}
		for _, in := range instrs {
			if in.Kind == taskgraph.OpRun {
				needed[in.Seg] = true
			}
		}
		var segs []*segmentExecutable
		for segIdx := range needed {
			seg := prog.Split.Segments[segIdx]
			run, err := makeRunner(seg.Graph, opts)
			if err != nil {
				return nil, fmt.Errorf("runtime: compiling segment %d: %w", segIdx, err)
			}
			segs = append(segs, &segmentExecutable{seg: segIdx, run: run})
		}
		c.Actors[a].SyncSends = opts.SyncSends
		c.Actors[a].Load(instrs, segs)
	}
	return &Executable{cluster: c, prog: prog}, nil
}

// makeRunner builds the per-segment executor: plain interpretation, or SPMD
// execution over the actor's intra-actor device mesh. With SPMD enabled,
// every input whose leading dimension divides evenly is sharded over the
// intra-actor mesh; the partitioner inserts whatever collectives the sharding
// choice requires, so numerics are preserved for any choice.
func makeRunner(g *ir.Graph, opts LoadOptions) (func([]*tensor.Tensor) ([]*tensor.Tensor, error), error) {
	if opts.SPMDDevices <= 1 {
		return func(ins []*tensor.Tensor) ([]*tensor.Tensor, error) {
			return interp.Eval(g, ins)
		}, nil
	}
	m, err := mesh.New(mesh.Axis{Name: "intra", Size: opts.SPMDDevices})
	if err != nil {
		return nil, err
	}
	specs := make([]mesh.Spec, len(g.Inputs))
	for i, v := range g.Inputs {
		specs[i] = mesh.Replicated(len(v.Shape))
		if len(v.Shape) >= 1 && v.Shape[0]%opts.SPMDDevices == 0 {
			specs[i][0] = "intra"
		}
	}
	plan, err := spmd.Partition(g, m, specs)
	if err != nil {
		return nil, err
	}
	return func(ins []*tensor.Tensor) ([]*tensor.Tensor, error) {
		outs, _, err := spmd.Run(plan, ins)
		return outs, err
	}, nil
}

// Step runs one training step. inputs must match the original traced graph's
// inputs positionally; batch inputs carry the full batch with leading
// dimension NumMB × microbatch rows and are sliced per microbatch by the
// driver. Returns the per-microbatch losses and the final gradients.
func (e *Executable) Step(inputs []*tensor.Tensor) (losses []*tensor.Tensor, grads []*tensor.Tensor, err error) {
	prog := e.prog
	src := prog.Split.Source
	if len(inputs) != len(src.Inputs) {
		return nil, nil, fmt.Errorf("runtime: %d inputs for %d graph inputs", len(inputs), len(src.Inputs))
	}
	actors := e.cluster.Actors

	// Clear last step's results so accumulators restart.
	for _, g := range prog.Grads {
		actors[g.Actor].Store.Delete(g.Buf)
	}
	for _, l := range prog.Losses {
		actors[l.Actor].Store.Delete(l.Buf)
	}

	// Place parameters (owner copies; replicas flow through the pre-loop
	// send/recv instructions already in the programs).
	for i, p := range prog.Params {
		if p == nil {
			continue
		}
		if !tensor.ShapeEq(inputs[i].Shape(), src.Inputs[i].Shape) {
			return nil, nil, fmt.Errorf("runtime: input %d shape %v, expected %v", i, inputs[i].Shape(), src.Inputs[i].Shape)
		}
		actors[p.Actor].Store.Put(p.Buf, inputs[i])
	}
	// Place batch microbatches.
	numMB := prog.Schedule.NumMB
	for i, placements := range prog.Batch {
		want := src.Inputs[i].Shape
		full := inputs[i]
		if full.Rank() == 0 || full.Dim(0) != want[0]*numMB {
			return nil, nil, fmt.Errorf("runtime: batch input %d has leading dim %v, expected %d×%d", i, full.Shape(), numMB, want[0])
		}
		for mb := 0; mb < numMB; mb++ {
			slice := tensor.SliceRange0(full, mb*want[0], (mb+1)*want[0])
			actors[placements[mb].Actor].Store.Put(placements[mb].Buf, slice)
		}
	}

	// Dispatch: one fused "RPC" per actor (§4.4), all concurrent.
	errs := make([]error, len(actors))
	var wg sync.WaitGroup
	for i, a := range actors {
		wg.Add(1)
		go func(i int, a *Actor) {
			defer wg.Done()
			errs[i] = a.RunStep()
		}(i, a)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("runtime: actor %d failed: %w", i, err)
		}
	}

	// Fetch results.
	losses = make([]*tensor.Tensor, numMB)
	for mb, l := range prog.Losses {
		t, err := actors[l.Actor].Store.Get(l.Buf)
		if err != nil {
			return nil, nil, fmt.Errorf("runtime: loss mb %d: %w", mb, err)
		}
		losses[mb] = t
	}
	grads = make([]*tensor.Tensor, len(prog.Grads))
	for gi, g := range prog.Grads {
		t, err := actors[g.Actor].Store.Get(g.Buf)
		if err != nil {
			return nil, nil, fmt.Errorf("runtime: grad %d: %w", gi, err)
		}
		grads[gi] = t
	}
	return losses, grads, nil
}

// StoreStatsAll returns each actor's store statistics.
func (e *Executable) StoreStatsAll() []StoreStats {
	out := make([]StoreStats, len(e.cluster.Actors))
	for i, a := range e.cluster.Actors {
		out[i] = a.Store.Stats()
	}
	return out
}

// ResetPeaks clears peak-memory counters on all actors.
func (e *Executable) ResetPeaks() {
	for _, a := range e.cluster.Actors {
		a.Store.ResetPeaks()
	}
}
