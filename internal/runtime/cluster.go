package runtime

import (
	"fmt"
	"sync"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mesh"
	"repro/internal/spmd"
	"repro/internal/taskgraph"
	"repro/internal/tensor"
)

// Cluster is the set of long-lived actors managed by the single controller
// (the driver). In the paper the driver provisions Ray actors over hosts;
// here actors are goroutines over a Transport.
type Cluster struct {
	Transport Transport
	Actors    []*Actor
}

// NewCluster provisions n actors over an in-process transport.
func NewCluster(n int) *Cluster {
	tr := NewChanTransport()
	c := &Cluster{Transport: tr}
	for i := 0; i < n; i++ {
		c.Actors = append(c.Actors, NewActor(i, tr))
	}
	return c
}

// NewClusterWithTransport provisions n actors over a custom transport.
func NewClusterWithTransport(n int, tr Transport) *Cluster {
	c := &Cluster{Transport: tr}
	for i := 0; i < n; i++ {
		c.Actors = append(c.Actors, NewActor(i, tr))
	}
	return c
}

// LoadOptions configures how segments are "compiled" onto actors.
type LoadOptions struct {
	// SPMDDevices > 1 executes each segment SPMD-sharded over that many
	// virtual devices inside the actor (batch-dimension data parallelism on
	// a [("intra", n)] mesh), demonstrating the MPMD-of-SPMD structure: XLA
	// SPMD within a task, JaxPP MPMD across tasks.
	SPMDDevices int

	// SyncSends makes every actor block on sends (Fig. 5 ablation).
	SyncSends bool

	// DataParallel loads the program onto this many pipeline replicas over
	// disjoint actor ranges: replica r owns actors [r·P, (r+1)·P) where P is
	// the program's actor count, the row-major layout of a
	// [("data", R), ("pipe", P)] device mesh. Peer IDs inside each replica's
	// instruction streams are offset accordingly; tags need no remapping
	// because transport matching is per (sender, receiver, tag) triple.
	// 0 or 1 loads a single replica.
	DataParallel int
}

// Executable is a loaded MPMD program ready for repeated Step calls — the
// returned step_fn of mesh.distributed in the paper.
type Executable struct {
	cluster  *Cluster
	prog     *taskgraph.Program
	replicas int // data-parallel replica count (>= 1)
	pp       int // actors per replica

	// epilogues run on the owning actor's goroutine after its program each
	// step — the hook the driver uses to attach end-of-step collectives
	// (e.g. the data-parallel gradient all-reduce), overlapping them with
	// other actors' pipeline cooldown.
	epilogues []func(*Store) error
}

// Load installs a compiled program on the cluster, replicated over
// opts.DataParallel pipeline replicas.
func (c *Cluster) Load(prog *taskgraph.Program, opts LoadOptions) (*Executable, error) {
	replicas := opts.DataParallel
	if replicas < 1 {
		replicas = 1
	}
	pp := prog.Schedule.NumActors
	if pp*replicas != len(c.Actors) {
		return nil, fmt.Errorf("runtime: program wants %d actors × %d replicas, cluster has %d", pp, replicas, len(c.Actors))
	}
	// Compile each pipeline actor's segments once; the runner closures are
	// pure over immutable graphs/plans, so replicas share them.
	segsByActor := make([][]*segmentExecutable, pp)
	for a, instrs := range prog.Actors {
		needed := map[int]bool{}
		for _, in := range instrs {
			if in.Kind == taskgraph.OpRun {
				needed[in.Seg] = true
			}
		}
		for segIdx := range needed {
			seg := prog.Split.Segments[segIdx]
			run, err := makeRunner(seg.Graph, opts)
			if err != nil {
				return nil, fmt.Errorf("runtime: compiling segment %d: %w", segIdx, err)
			}
			segsByActor[a] = append(segsByActor[a], &segmentExecutable{seg: segIdx, runInto: run})
		}
	}
	for r := 0; r < replicas; r++ {
		base := r * pp
		for a, instrs := range prog.Actors {
			local := instrs
			if base > 0 {
				local = make([]taskgraph.Instr, len(instrs))
				copy(local, instrs)
				for i := range local {
					if local[i].Kind == taskgraph.OpSend || local[i].Kind == taskgraph.OpRecv {
						local[i].Peer += base
					}
				}
			}
			c.Actors[base+a].SyncSends = opts.SyncSends
			c.Actors[base+a].Store.Reserve(prog.NumBufs)
			c.Actors[base+a].Load(local, segsByActor[a])
		}
	}
	return &Executable{
		cluster:   c,
		prog:      prog,
		replicas:  replicas,
		pp:        pp,
		epilogues: make([]func(*Store) error, len(c.Actors)),
	}, nil
}

// Replicas returns the data-parallel replica count.
func (e *Executable) Replicas() int { return e.replicas }

// ActorsPerReplica returns the pipeline actor count of one replica.
func (e *Executable) ActorsPerReplica() int { return e.pp }

// SetStepEpilogue installs fn to run on the given global actor's goroutine
// after its instruction program completes each step (e.g. a data-parallel
// gradient all-reduce). fn receives the actor's object store. Pass nil to
// clear.
func (e *Executable) SetStepEpilogue(actor int, fn func(*Store) error) error {
	if actor < 0 || actor >= len(e.epilogues) {
		return fmt.Errorf("runtime: epilogue actor %d out of range", actor)
	}
	e.epilogues[actor] = fn
	return nil
}

// makeRunner builds the per-segment executor: compiled interpretation, or
// SPMD execution over the actor's intra-actor device mesh. With SPMD enabled,
// every input whose leading dimension divides evenly is sharded over the
// intra-actor mesh; the partitioner inserts whatever collectives the sharding
// choice requires, so numerics are preserved for any choice. Either way the
// runner writes outputs into the caller's slice (allocation-free dispatch).
func makeRunner(g *ir.Graph, opts LoadOptions) (func(outs, inputs []*tensor.Tensor) error, error) {
	if opts.SPMDDevices <= 1 {
		// Compile once to a closure program with liveness-driven buffer
		// pooling; replicas share the immutable program.
		prog, err := interp.NewProgram(g)
		if err != nil {
			return nil, err
		}
		return prog.RunInto, nil
	}
	m, err := mesh.New(mesh.Axis{Name: "intra", Size: opts.SPMDDevices})
	if err != nil {
		return nil, err
	}
	specs := make([]mesh.Spec, len(g.Inputs))
	for i, v := range g.Inputs {
		specs[i] = mesh.Replicated(len(v.Shape))
		if len(v.Shape) >= 1 && v.Shape[0]%opts.SPMDDevices == 0 {
			specs[i][0] = "intra"
		}
	}
	plan, err := spmd.Partition(g, m, specs)
	if err != nil {
		return nil, err
	}
	return func(outs, ins []*tensor.Tensor) error {
		res, _, err := spmd.Run(plan, ins)
		if err != nil {
			return err
		}
		if len(res) != len(outs) {
			return fmt.Errorf("runtime: SPMD segment returned %d outputs, program expects %d", len(res), len(outs))
		}
		copy(outs, res)
		return nil
	}, nil
}

// Step runs one training step. inputs must match the original traced graph's
// inputs positionally; batch inputs carry the full global batch with leading
// dimension Replicas × NumMB × microbatch rows — replica-major — and are
// sliced per replica per microbatch by the driver. Returns the per-microbatch
// losses (replica-major, Replicas × NumMB entries) and the final gradients of
// replica 0 (after any epilogue collectives, so with a DP gradient
// all-reduce installed these are the globally synchronized gradients).
//
// A Step error poisons the transport: peers of the failed actor may have
// already buffered sends under tags the next step reuses, so a retried Step
// could consume a stale payload (the same reason NCCL aborts a communicator
// after a collective error). Re-provision the cluster instead of retrying.
func (e *Executable) Step(inputs []*tensor.Tensor) (losses []*tensor.Tensor, grads []*tensor.Tensor, err error) {
	prog := e.prog
	src := prog.Split.Source
	if len(inputs) != len(src.Inputs) {
		return nil, nil, fmt.Errorf("runtime: %d inputs for %d graph inputs", len(inputs), len(src.Inputs))
	}
	actors := e.cluster.Actors
	numMB := prog.Schedule.NumMB

	// Validate replica-invariant inputs once, before the replica loop.
	for i, p := range prog.Params {
		if p == nil {
			continue
		}
		if !inputs[i].HasShape(src.Inputs[i].Shape) {
			return nil, nil, fmt.Errorf("runtime: input %d shape %v, expected %v", i, inputs[i].Shape(), src.Inputs[i].Shape)
		}
	}

	for r := 0; r < e.replicas; r++ {
		base := r * e.pp
		// Clear last step's results so accumulators restart.
		for _, g := range prog.Grads {
			actors[base+g.Actor].Store.Delete(g.Buf)
		}
		for _, l := range prog.Losses {
			actors[base+l.Actor].Store.Delete(l.Buf)
		}
		// Place parameters (owner copies; intra-replica tied-weight copies
		// flow through the pre-loop send/recv instructions already in the
		// programs; tensors are immutable, so replicas share storage).
		for i, p := range prog.Params {
			if p == nil {
				continue
			}
			actors[base+p.Actor].Store.Put(p.Buf, inputs[i])
		}
		// Place this replica's shard of the batch, microbatch by microbatch.
		for i, placements := range prog.Batch {
			want := src.Inputs[i].Shape
			full := inputs[i]
			if full.Rank() == 0 || full.Dim(0) != want[0]*numMB*e.replicas {
				return nil, nil, fmt.Errorf("runtime: batch input %d has leading dim %v, expected %d×%d×%d", i, full.Shape(), e.replicas, numMB, want[0])
			}
			for mb := 0; mb < numMB; mb++ {
				row := (r*numMB + mb) * want[0]
				// Zero-copy borrowed row view: the actor reads the caller's
				// batch rows in place. The borrowed flag makes every mutating
				// path (in-place kernels, scratch recycling) refuse the
				// tensor, so caller batch data cannot be written through it.
				view := tensor.ViewRange0(full, row, row+want[0])
				actors[base+placements[mb].Actor].Store.Put(placements[mb].Buf, view)
			}
		}
	}

	// Dispatch: one fused "RPC" per actor (§4.4), all concurrent. Each actor
	// runs its program, then its step epilogue (e.g. the DP gradient
	// all-reduce), which overlaps with peers still in pipeline cooldown.
	errs := make([]error, len(actors))
	var wg sync.WaitGroup
	for i, a := range actors {
		wg.Add(1)
		go func(i int, a *Actor) {
			defer wg.Done()
			if errs[i] = a.RunStep(); errs[i] != nil {
				return
			}
			if fn := e.epilogues[i]; fn != nil {
				errs[i] = fn(a.Store)
			}
		}(i, a)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("runtime: actor %d failed: %w", i, err)
		}
	}

	// Fetch results: losses replica-major, gradients from replica 0.
	// Ownership of each result buffer transfers to the caller (Store.Take),
	// so the returned tensors no longer alias store state and nothing a later
	// Step does — deletes, in-place accumulation, epilogue collectives — can
	// mutate or reclaim them under the caller.
	losses = make([]*tensor.Tensor, e.replicas*numMB)
	for r := 0; r < e.replicas; r++ {
		base := r * e.pp
		for mb, l := range prog.Losses {
			t, err := actors[base+l.Actor].Store.Take(l.Buf)
			if err != nil {
				return nil, nil, fmt.Errorf("runtime: replica %d loss mb %d: %w", r, mb, err)
			}
			losses[r*numMB+mb] = t
		}
	}
	grads = make([]*tensor.Tensor, len(prog.Grads))
	for gi, g := range prog.Grads {
		t, err := actors[g.Actor].Store.Take(g.Buf)
		if err != nil {
			return nil, nil, fmt.Errorf("runtime: grad %d: %w", gi, err)
		}
		grads[gi] = t
	}
	return losses, grads, nil
}

// StoreStatsAll returns each actor's store statistics.
func (e *Executable) StoreStatsAll() []StoreStats {
	out := make([]StoreStats, len(e.cluster.Actors))
	for i, a := range e.cluster.Actors {
		out[i] = a.Store.Stats()
	}
	return out
}

// ResetPeaks clears peak-memory counters on all actors.
func (e *Executable) ResetPeaks() {
	for _, a := range e.cluster.Actors {
		a.Store.ResetPeaks()
	}
}
