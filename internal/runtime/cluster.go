package runtime

import (
	"fmt"
	"sync"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mesh"
	"repro/internal/spmd"
	"repro/internal/taskgraph"
	"repro/internal/tensor"
)

// Cluster is the set of long-lived actors managed by the single controller
// (the driver). In the paper the driver provisions Ray actors over hosts;
// here actors are goroutines over a Transport.
type Cluster struct {
	Transport Transport
	Actors    []*Actor
}

// NewCluster provisions n actors over an in-process transport.
func NewCluster(n int) *Cluster {
	tr := NewChanTransport()
	c := &Cluster{Transport: tr}
	for i := 0; i < n; i++ {
		c.Actors = append(c.Actors, NewActor(i, tr))
	}
	return c
}

// NewClusterWithTransport provisions n actors over a custom transport.
func NewClusterWithTransport(n int, tr Transport) *Cluster {
	c := &Cluster{Transport: tr}
	for i := 0; i < n; i++ {
		c.Actors = append(c.Actors, NewActor(i, tr))
	}
	return c
}

// Close retires every actor's sender workers. The cluster can be reloaded
// afterwards; in-flight steps must have completed.
func (c *Cluster) Close() {
	for _, a := range c.Actors {
		a.Close()
	}
}

// LoadOptions configures how segments are "compiled" onto actors.
type LoadOptions struct {
	// SPMDDevices > 1 executes each segment SPMD-sharded over that many
	// virtual devices inside the actor (batch-dimension data parallelism on
	// a [("intra", n)] mesh), demonstrating the MPMD-of-SPMD structure: XLA
	// SPMD within a task, JaxPP MPMD across tasks.
	SPMDDevices int

	// SyncSends makes every actor block on sends (Fig. 5 ablation).
	SyncSends bool

	// DataParallel loads the program onto this many pipeline replicas over
	// disjoint actor ranges: replica r owns actors [r·P, (r+1)·P) where P is
	// the program's actor count, the row-major layout of a
	// [("data", R), ("pipe", P)] device mesh. Peer IDs inside each replica's
	// instruction streams are offset accordingly; tags need no remapping
	// because transport matching is per (sender, receiver, tag) triple.
	// 0 or 1 loads a single replica.
	DataParallel int

	// HostActors restricts which global actors this load materializes: only
	// the listed actors get compiled segment programs, reserved store slots,
	// instruction streams, and sender workers. nil hosts every actor (the
	// single-process driver). A distributed rank passes its own actor ID, so
	// a world-N process carries one actor's state instead of N copies —
	// peers are reachable through the transport, not materialized locally.
	// A filtered executable steps only hosted actors (StepActor); the full
	// Step/StepInto path refuses to run.
	HostActors []int
}

// Executable is a loaded MPMD program ready for repeated Step calls — the
// returned step_fn of mesh.distributed in the paper.
type Executable struct {
	cluster  *Cluster
	prog     *taskgraph.Program
	replicas int // data-parallel replica count (>= 1)
	pp       int // actors per replica

	// hosted[actor] marks the global actors this load materialized; nil
	// means every actor is hosted (unfiltered load).
	hosted []bool

	// epilogues run on the owning actor's goroutine after its program each
	// step — the hook the driver uses to attach end-of-step collectives
	// (e.g. the data-parallel gradient all-reduce), overlapping them with
	// other actors' pipeline cooldown.
	epilogues []func(*Store) error
}

// Load installs a compiled program on the cluster, replicated over
// opts.DataParallel pipeline replicas.
func (c *Cluster) Load(prog *taskgraph.Program, opts LoadOptions) (*Executable, error) {
	replicas := opts.DataParallel
	if replicas < 1 {
		replicas = 1
	}
	pp := prog.Schedule.NumActors
	if pp*replicas != len(c.Actors) {
		return nil, fmt.Errorf("runtime: program wants %d actors × %d replicas, cluster has %d", pp, replicas, len(c.Actors))
	}
	// Hosted-actor filter: materialize only the listed global actors. The
	// hostedPos set picks which pipeline positions need compiled segments at
	// all (replicas share position programs).
	var hosted []bool
	hostedPos := make([]bool, pp)
	if opts.HostActors == nil {
		for a := range hostedPos {
			hostedPos[a] = true
		}
	} else {
		hosted = make([]bool, len(c.Actors))
		for _, a := range opts.HostActors {
			if a < 0 || a >= len(c.Actors) {
				return nil, fmt.Errorf("runtime: hosted actor %d out of range (cluster of %d)", a, len(c.Actors))
			}
			hosted[a] = true
			hostedPos[a%pp] = true
		}
	}
	// Compile each hosted pipeline position's segments once; the runner
	// closures are pure over immutable graphs/plans, so replicas share them.
	segsByActor := make([][]*segmentExecutable, pp)
	for a, instrs := range prog.Actors {
		if !hostedPos[a] {
			continue
		}
		needed := map[int]bool{}
		for _, in := range instrs {
			if in.Kind == taskgraph.OpRun {
				needed[in.Seg] = true
			}
		}
		for segIdx := range needed {
			seg := prog.Split.Segments[segIdx]
			run, err := makeRunner(seg.Graph, opts)
			if err != nil {
				return nil, fmt.Errorf("runtime: compiling segment %d: %w", segIdx, err)
			}
			segsByActor[a] = append(segsByActor[a], &segmentExecutable{seg: segIdx, runInto: run})
		}
	}
	for r := 0; r < replicas; r++ {
		base := r * pp
		for a, instrs := range prog.Actors {
			if hosted != nil && !hosted[base+a] {
				continue
			}
			local := instrs
			if base > 0 {
				local = make([]taskgraph.Instr, len(instrs))
				copy(local, instrs)
				for i := range local {
					if local[i].Kind == taskgraph.OpSend || local[i].Kind == taskgraph.OpRecv {
						local[i].Peer += base
					}
				}
			}
			c.Actors[base+a].SyncSends = opts.SyncSends
			c.Actors[base+a].Store.Reserve(prog.NumBufs)
			c.Actors[base+a].Load(local, segsByActor[a])
		}
	}
	return &Executable{
		cluster:   c,
		prog:      prog,
		replicas:  replicas,
		pp:        pp,
		hosted:    hosted,
		epilogues: make([]func(*Store) error, len(c.Actors)),
	}, nil
}

// Replicas returns the data-parallel replica count.
func (e *Executable) Replicas() int { return e.replicas }

// transportErr probes the cluster transport for poisoning before a step
// begins. Poisonable transports (the dist wire transport after a peer death)
// expose Err(); failing fast here turns "every send and recv of the doomed
// step times out one by one" into an immediate, attributable step error —
// the drain an elastic recovery needs before it can re-rendezvous.
func (e *Executable) transportErr() error {
	if p, ok := e.cluster.Transport.(interface{ Err() error }); ok {
		if err := p.Err(); err != nil {
			return fmt.Errorf("runtime: transport poisoned: %w", err)
		}
	}
	return nil
}

// GradOwners returns the producing actor of each gradient output in program
// order (replica-0 global actor IDs). It is derived purely from the shared
// program metadata every rank compiles identically, so under the hosted-actor
// filter a rank learns the full owner table — who produces which gradient —
// without any peer actor existing locally. The sharded optimizer epilogue
// lays its owner-major flat layout out from exactly this table.
func (e *Executable) GradOwners() []int {
	out := make([]int, len(e.prog.Grads))
	for i, g := range e.prog.Grads {
		out[i] = g.Actor
	}
	return out
}

// Hosts reports whether this load materialized the given global actor (true
// for every actor on an unfiltered load).
func (e *Executable) Hosts(actor int) bool {
	return e.hosted == nil || (actor >= 0 && actor < len(e.hosted) && e.hosted[actor])
}

// Close retires the cluster's per-actor sender workers. Call it when the
// executable is done stepping (steps must have completed); the cluster can
// be reloaded afterwards.
func (e *Executable) Close() { e.cluster.Close() }

// ActorsPerReplica returns the pipeline actor count of one replica.
func (e *Executable) ActorsPerReplica() int { return e.pp }

// SetStepEpilogue installs fn to run on the given global actor's goroutine
// after its instruction program completes each step (e.g. a data-parallel
// gradient all-reduce). fn receives the actor's object store. Pass nil to
// clear.
func (e *Executable) SetStepEpilogue(actor int, fn func(*Store) error) error {
	if actor < 0 || actor >= len(e.epilogues) {
		return fmt.Errorf("runtime: epilogue actor %d out of range", actor)
	}
	e.epilogues[actor] = fn
	return nil
}

// makeRunner builds the per-segment executor: compiled interpretation, or
// SPMD execution over the actor's intra-actor device mesh. With SPMD enabled,
// every input whose leading dimension divides evenly is sharded over the
// intra-actor mesh; the partitioner inserts whatever collectives the sharding
// choice requires, so numerics are preserved for any choice. Either way the
// runner writes outputs into the caller's slice (allocation-free dispatch).
func makeRunner(g *ir.Graph, opts LoadOptions) (func(outs, inputs []*tensor.Tensor) error, error) {
	if opts.SPMDDevices <= 1 {
		// Compile once to a closure program with liveness-driven buffer
		// pooling; replicas share the immutable program.
		prog, err := interp.NewProgram(g)
		if err != nil {
			return nil, err
		}
		return prog.RunInto, nil
	}
	m, err := mesh.New(mesh.Axis{Name: "intra", Size: opts.SPMDDevices})
	if err != nil {
		return nil, err
	}
	specs := make([]mesh.Spec, len(g.Inputs))
	for i, v := range g.Inputs {
		specs[i] = mesh.Replicated(len(v.Shape))
		if len(v.Shape) >= 1 && v.Shape[0]%opts.SPMDDevices == 0 {
			specs[i][0] = "intra"
		}
	}
	plan, err := spmd.Partition(g, m, specs)
	if err != nil {
		return nil, err
	}
	return func(outs, ins []*tensor.Tensor) error {
		res, _, err := spmd.Run(plan, ins)
		if err != nil {
			return err
		}
		if len(res) != len(outs) {
			return fmt.Errorf("runtime: SPMD segment returned %d outputs, program expects %d", len(res), len(outs))
		}
		copy(outs, res)
		return nil
	}, nil
}

// Step runs one training step. inputs must match the original traced graph's
// inputs positionally; batch inputs carry the full global batch with leading
// dimension Replicas × NumMB × microbatch rows — replica-major — and are
// sliced per replica per microbatch by the driver. Returns the per-microbatch
// losses (replica-major, Replicas × NumMB entries) and the final gradients of
// replica 0 (after any epilogue collectives, so with a DP gradient
// all-reduce installed these are the globally synchronized gradients).
//
// A Step error poisons the transport: peers of the failed actor may have
// already buffered sends under tags the next step reuses, so a retried Step
// could consume a stale payload (the same reason NCCL aborts a communicator
// after a collective error). Re-provision the cluster instead of retrying.
func (e *Executable) Step(inputs []*tensor.Tensor) (losses []*tensor.Tensor, grads []*tensor.Tensor, err error) {
	losses = make([]*tensor.Tensor, e.replicas*e.prog.Schedule.NumMB)
	grads = make([]*tensor.Tensor, len(e.prog.Grads))
	if err := e.StepInto(inputs, losses, grads); err != nil {
		return nil, nil, err
	}
	return losses, grads, nil
}

// StepInto is Step writing the per-microbatch losses and final gradients
// into caller-provided slices (len Replicas×NumMB and len(grads)
// respectively), mirroring interp.Program.RunInto: a driver that reuses its
// result buffers across steps runs the dispatch path without any
// driver-side slice allocation. The tensors placed into the slices follow
// the same ownership-transfer contract as Step.
func (e *Executable) StepInto(inputs, losses, grads []*tensor.Tensor) error {
	prog := e.prog
	numMB := prog.Schedule.NumMB
	if len(losses) != e.replicas*numMB {
		return fmt.Errorf("runtime: losses buffer holds %d, step produces %d", len(losses), e.replicas*numMB)
	}
	if len(grads) != len(prog.Grads) {
		return fmt.Errorf("runtime: grads buffer holds %d, step produces %d", len(grads), len(prog.Grads))
	}
	if e.hosted != nil {
		return fmt.Errorf("runtime: executable loaded with a hosted-actor filter; a filtered rank steps only its own actor via StepActor")
	}
	if err := e.transportErr(); err != nil {
		return err
	}
	if err := e.validateInputs(inputs); err != nil {
		return err
	}
	actors := e.cluster.Actors
	for r := 0; r < e.replicas; r++ {
		e.place(r, -1, inputs)
	}

	// Dispatch: one fused "RPC" per actor (§4.4), all concurrent. Each actor
	// runs its program, then its step epilogue (e.g. the DP gradient
	// all-reduce), which overlaps with peers still in pipeline cooldown.
	errs := make([]error, len(actors))
	var wg sync.WaitGroup
	for i, a := range actors {
		wg.Add(1)
		go func(i int, a *Actor) {
			defer wg.Done()
			errs[i] = e.runActor(i, a)
		}(i, a)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("runtime: actor %d failed: %w", i, err)
		}
	}

	// Fetch results: losses replica-major, gradients from replica 0.
	// Ownership of each result buffer transfers to the caller (Store.Take),
	// so the returned tensors no longer alias store state and nothing a later
	// Step does — deletes, in-place accumulation, epilogue collectives — can
	// mutate or reclaim them under the caller.
	for r := 0; r < e.replicas; r++ {
		base := r * e.pp
		for mb, l := range prog.Losses {
			t, err := actors[base+l.Actor].Store.Take(l.Buf)
			if err != nil {
				return fmt.Errorf("runtime: replica %d loss mb %d: %w", r, mb, err)
			}
			losses[r*numMB+mb] = t
		}
	}
	for gi, g := range prog.Grads {
		t, err := actors[g.Actor].Store.Take(g.Buf)
		if err != nil {
			return fmt.Errorf("runtime: grad %d: %w", gi, err)
		}
		grads[gi] = t
	}
	return nil
}

// validateInputs checks arity, parameter shapes, and batch leading
// dimensions once per step.
func (e *Executable) validateInputs(inputs []*tensor.Tensor) error {
	prog := e.prog
	src := prog.Split.Source
	if len(inputs) != len(src.Inputs) {
		return fmt.Errorf("runtime: %d inputs for %d graph inputs", len(inputs), len(src.Inputs))
	}
	for i, p := range prog.Params {
		if p == nil {
			continue
		}
		if !inputs[i].HasShape(src.Inputs[i].Shape) {
			return fmt.Errorf("runtime: input %d shape %v, expected %v", i, inputs[i].Shape(), src.Inputs[i].Shape)
		}
	}
	numMB := prog.Schedule.NumMB
	for i := range prog.Batch {
		want := src.Inputs[i].Shape
		full := inputs[i]
		if full.Rank() == 0 || full.Dim(0) != want[0]*numMB*e.replicas {
			return fmt.Errorf("runtime: batch input %d has leading dim %v, expected %d×%d×%d", i, full.Shape(), e.replicas, numMB, want[0])
		}
	}
	return nil
}

// place prepares replica r's actors for a step: clears last step's results
// so accumulators restart, places parameters, and places the replica's
// batch shard microbatch by microbatch. only filters the pass: only < 0
// places every actor of the replica in one walk over the program (the
// in-process driver path), only >= 0 places just that per-replica actor
// index (the multi-process path, where each OS process hosts one actor).
// One function serves both paths so the indexing — especially the
// (r·numMB+mb)·rows batch-row math the bit-for-bit local-vs-distributed
// equivalence depends on — cannot diverge. Inputs must have been validated.
func (e *Executable) place(r, only int, inputs []*tensor.Tensor) {
	prog := e.prog
	src := prog.Split.Source
	numMB := prog.Schedule.NumMB
	actors := e.cluster.Actors
	base := r * e.pp
	// Clear last step's results so accumulators restart.
	for _, g := range prog.Grads {
		if only < 0 || g.Actor == only {
			actors[base+g.Actor].Store.Delete(g.Buf)
		}
	}
	for _, l := range prog.Losses {
		if only < 0 || l.Actor == only {
			actors[base+l.Actor].Store.Delete(l.Buf)
		}
	}
	// Parameters: owner copies; intra-replica tied-weight copies flow
	// through the pre-loop send/recv instructions already in the programs;
	// tensors are immutable, so replicas share storage.
	for i, p := range prog.Params {
		if p != nil && (only < 0 || p.Actor == only) {
			actors[base+p.Actor].Store.Put(p.Buf, inputs[i])
		}
	}
	// This replica's shard of the batch, microbatch by microbatch.
	for i, placements := range prog.Batch {
		want := src.Inputs[i].Shape
		full := inputs[i]
		for mb := 0; mb < numMB; mb++ {
			if only >= 0 && placements[mb].Actor != only {
				continue
			}
			row := (r*numMB + mb) * want[0]
			// Zero-copy borrowed row view: the actor reads the caller's
			// batch rows in place. The borrowed flag makes every mutating
			// path (in-place kernels, scratch recycling) refuse the
			// tensor, so caller batch data cannot be written through it.
			view := tensor.ViewRange0(full, row, row+want[0])
			actors[base+placements[mb].Actor].Store.Put(placements[mb].Buf, view)
		}
	}
}

// runActor executes one global actor's program and step epilogue.
func (e *Executable) runActor(global int, a *Actor) error {
	if err := a.RunStep(); err != nil {
		return err
	}
	if fn := e.epilogues[global]; fn != nil {
		return fn(a.Store)
	}
	return nil
}

// StepActor runs one global actor's share of a step: placement, program,
// and epilogue for that actor only. It is the per-process entry point of
// the multi-process runtime (package dist), where every OS process hosts
// exactly one of the executable's actors and peers run their own shares
// concurrently over a shared wire transport. inputs carry the same full
// global batch and parameters on every process (deterministic replication);
// only the slices this actor owns are placed. Collect this actor's results
// with TakeActorResults afterwards.
func (e *Executable) StepActor(actor int, inputs []*tensor.Tensor) error {
	if actor < 0 || actor >= len(e.cluster.Actors) {
		return fmt.Errorf("runtime: actor %d out of range (cluster of %d)", actor, len(e.cluster.Actors))
	}
	if !e.Hosts(actor) {
		return fmt.Errorf("runtime: actor %d is not hosted by this load (hosted-actor filter); its store and programs were never materialized", actor)
	}
	if err := e.transportErr(); err != nil {
		return err
	}
	if err := e.validateInputs(inputs); err != nil {
		return err
	}
	e.place(actor/e.pp, actor%e.pp, inputs)
	if err := e.runActor(actor, e.cluster.Actors[actor]); err != nil {
		return fmt.Errorf("runtime: actor %d failed: %w", actor, err)
	}
	return nil
}

// ActorResults are the step outputs owned by one global actor: losses by
// global microbatch index (replica-major, as Step orders them) and final
// gradients by parameter-gradient index. Gradients are reported only by
// replica-0 actors — after the DP epilogue all-reduce every replica holds
// identical sums, and Step's contract returns replica 0's.
type ActorResults struct {
	LossMB  []int
	Losses  []*tensor.Tensor
	GradIdx []int
	Grads   []*tensor.Tensor
}

// TakeActorResults fetches (with ownership transfer, like Step) the losses
// and gradients the given global actor produced this step.
func (e *Executable) TakeActorResults(actor int) (*ActorResults, error) {
	res := &ActorResults{}
	if err := e.TakeActorResultsInto(actor, res); err != nil {
		return nil, err
	}
	return res, nil
}

// TakeActorResultsInto is TakeActorResults reusing the caller's ActorResults:
// its slices are truncated and refilled, so a driver that passes the same
// struct every step fetches results without per-step slice allocation
// (the StepInto counterpart for the per-actor path).
func (e *Executable) TakeActorResultsInto(actor int, res *ActorResults) error {
	if actor < 0 || actor >= len(e.cluster.Actors) {
		return fmt.Errorf("runtime: actor %d out of range (cluster of %d)", actor, len(e.cluster.Actors))
	}
	if !e.Hosts(actor) {
		return fmt.Errorf("runtime: actor %d is not hosted by this load (hosted-actor filter); it has no results to take", actor)
	}
	prog := e.prog
	numMB := prog.Schedule.NumMB
	r, a := actor/e.pp, actor%e.pp
	store := e.cluster.Actors[actor].Store
	res.LossMB = res.LossMB[:0]
	res.Losses = res.Losses[:0]
	res.GradIdx = res.GradIdx[:0]
	res.Grads = res.Grads[:0]
	for mb, l := range prog.Losses {
		if l.Actor != a {
			continue
		}
		t, err := store.Take(l.Buf)
		if err != nil {
			return fmt.Errorf("runtime: actor %d loss mb %d: %w", actor, mb, err)
		}
		res.LossMB = append(res.LossMB, r*numMB+mb)
		res.Losses = append(res.Losses, t)
	}
	if r == 0 {
		for gi, g := range prog.Grads {
			if g.Actor != a {
				continue
			}
			t, err := store.Take(g.Buf)
			if err != nil {
				return fmt.Errorf("runtime: actor %d grad %d: %w", actor, gi, err)
			}
			res.GradIdx = append(res.GradIdx, gi)
			res.Grads = append(res.Grads, t)
		}
	}
	return nil
}

// StoreStatsAll returns each actor's store statistics.
func (e *Executable) StoreStatsAll() []StoreStats {
	out := make([]StoreStats, len(e.cluster.Actors))
	for i, a := range e.cluster.Actors {
		out[i] = a.Store.Stats()
	}
	return out
}

// ResetPeaks clears peak-memory counters on all actors.
func (e *Executable) ResetPeaks() {
	for _, a := range e.cluster.Actors {
		a.Store.ResetPeaks()
	}
}
