package runtime

import (
	"testing"
	"time"

	"repro/internal/tensor"
)

// TestSendTimeoutPoisonsTransport pins the bounded-send behaviour of the
// persistent-mailbox transport: a send into a mailbox whose previous message
// was never consumed (the receiver aborted or stalled) must drop after
// SendTimeout instead of wedging the sending actor, and the drop must poison
// the transport — after it, tag matching can no longer be trusted, so every
// Recv errors and the dropped payload is not counted as sent.
func TestSendTimeoutPoisonsTransport(t *testing.T) {
	c := NewChanTransport()
	c.SendTimeout = 20 * time.Millisecond
	c.Send(0, 1, 7, tensor.Scalar(1)) // fills the mailbox; the receiver aborted
	done := make(chan struct{})
	go func() {
		c.Send(0, 1, 7, tensor.Scalar(2)) // tag reuse against the full mailbox
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Send hung on a full mailbox with an aborted receiver")
	}
	if _, err := c.Recv(1, 0, 7); err == nil {
		t.Fatal("Recv succeeded on a poisoned transport")
	}
	if n, _ := c.SendCount(); n != 1 {
		t.Fatalf("SendCount = %d, want 1 (dropped payloads must not count)", n)
	}
}

// TestSendAfterConsumeDoesNotBlock checks the steady-state contract: once a
// mailbox's message is consumed, reusing its tag sends without blocking.
func TestSendAfterConsumeDoesNotBlock(t *testing.T) {
	c := NewChanTransport()
	c.SendTimeout = time.Second
	for i := 0; i < 100; i++ {
		c.Send(2, 3, 9, tensor.Scalar(float64(i)))
		got, err := c.Recv(3, 2, 9)
		if err != nil {
			t.Fatal(err)
		}
		if got.Data()[0] != float64(i) {
			t.Fatalf("iteration %d delivered %v", i, got.Data()[0])
		}
	}
}
