package runtime

import (
	"strings"
	"testing"
	"time"

	"repro/internal/tensor"
)

// TestRecvMismatchedTagErrors is the regression test for the transports
// hanging forever on tags no sender will ever use: with a receive timeout
// configured, Recv must return a diagnostic error instead.
func TestRecvMismatchedTagErrors(t *testing.T) {
	for name, tr := range map[string]Transport{
		"chan":       func() Transport { c := NewChanTransport(); c.RecvTimeout = 50 * time.Millisecond; return c }(),
		"rendezvous": func() Transport { r := NewRendezvousTransport(); r.RecvTimeout = 50 * time.Millisecond; return r }(),
	} {
		t.Run(name, func(t *testing.T) {
			// Async: rendezvous sends block until the matching receive runs.
			go tr.Send(0, 1, 7, tensor.Scalar(1))
			done := make(chan error, 1)
			go func() {
				_, err := tr.Recv(1, 0, 8) // tag mismatch: sender used 7
				done <- err
			}()
			select {
			case err := <-done:
				if err == nil {
					t.Fatal("mismatched tag must produce an error")
				}
				if !strings.Contains(err.Error(), "tag 8") {
					t.Fatalf("error should name the tag: %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("Recv hung despite timeout")
			}
			// The matching tag still works after the failed receive.
			got, err := tr.Recv(1, 0, 7)
			if err != nil {
				t.Fatal(err)
			}
			if got.Data()[0] != 1 {
				t.Fatalf("payload corrupted: %v", got)
			}
		})
	}
}

// TestRecvMatchedAfterTimeoutWindowStillDelivers checks the fast path: a
// send that is already buffered is returned immediately even with a tiny
// timeout configured.
func TestRecvMatchedImmediateDelivery(t *testing.T) {
	c := NewChanTransport()
	c.RecvTimeout = time.Nanosecond
	c.Send(2, 3, 1, tensor.Scalar(42))
	got, err := c.Recv(3, 2, 1)
	if err != nil {
		t.Fatalf("buffered send must win over a tiny timeout: %v", err)
	}
	if got.Data()[0] != 42 {
		t.Fatalf("payload corrupted: %v", got)
	}
}

// TestCollectiveDeadlockSurfacesAsError is the collective-engine companion
// to the Fig. 5 pipeline deadlock tests: a ring collective missing one
// participant (here simulated by an actor whose matching send never happens)
// must fail with a timeout error on the stuck rank rather than hanging the
// whole step. The collective engine drives exactly this Recv path, so
// bounding it here bounds every ring primitive.
func TestCollectiveDeadlockSurfacesAsError(t *testing.T) {
	c := NewChanTransport()
	c.RecvTimeout = 50 * time.Millisecond
	// Rank 1 of a would-be 2-ring waits for its predecessor's chunk, but
	// rank 0 never joined the collective.
	start := time.Now()
	_, err := c.Recv(1, 0, 1<<20 /* a collective-space tag */)
	if err == nil {
		t.Fatal("missing participant must surface as an error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("error took %v, timeout not honored", elapsed)
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("error should mention the deadlock hazard: %v", err)
	}
}
