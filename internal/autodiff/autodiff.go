// Package autodiff implements reverse-mode automatic differentiation over the
// IR — the analogue of jax.grad / jax.value_and_grad. Differentiating a graph
// containing pipeline_yield markers produces mirrored backward yields, which
// is exactly the structure JaxPP's stage splitter relies on (§3.2 of the
// paper): backward computations for a stage are delimited by the backward
// copies of the stage's yields and therefore co-locate with their forward
// stage.
package autodiff

import (
	"fmt"

	"repro/internal/ir"
	"repro/internal/tensor"
)

// ValueAndGrad transforms g — whose first output must be a scalar loss — into
// a new graph with identical inputs whose outputs are
// [loss, dloss/dwrt[0], dloss/dwrt[1], ...]. Each wrt value must be an input
// of g. Inputs with no path to the loss receive explicit zero gradients.
func ValueAndGrad(g *ir.Graph, wrt []*ir.Value) (*ir.Graph, error) {
	if len(g.Outputs) == 0 {
		return nil, fmt.Errorf("autodiff: graph %q has no outputs", g.Name)
	}
	loss := g.Outputs[0]
	if len(loss.Shape) != 0 {
		return nil, fmt.Errorf("autodiff: first output must be scalar, got shape %v", loss.Shape)
	}
	inputIDs := make(map[int]bool, len(g.Inputs))
	for _, in := range g.Inputs {
		inputIDs[in.ID] = true
	}
	for _, w := range wrt {
		if !inputIDs[w.ID] {
			return nil, fmt.Errorf("autodiff: wrt value %s is not a graph input", w)
		}
	}

	out := g.Clone()
	out.Name = g.Name + ".grad"
	// Map from original value ID to the cloned *ir.Value (IDs are preserved
	// by Clone, but we need the cloned pointers for emitting).
	byID := make(map[int]*ir.Value)
	for _, v := range out.Inputs {
		byID[v.ID] = v
	}
	for _, e := range out.Eqns {
		for _, o := range e.Outputs {
			byID[o.ID] = o
		}
	}

	d := differ{g: out}

	// Seed: d(loss)/d(loss) = 1.
	one := d.emit(ir.OpConst, ir.Attrs{Factor: 1, Shape: []int{}})
	d.addCT(byID[loss.ID], one)

	// Walk the forward equations in reverse, emitting VJPs.
	fwdLen := len(out.Eqns) - 1 // exclude the const we just appended
	for i := fwdLen - 1; i >= 0; i-- {
		e := out.Eqns[i]
		ct := d.ct[e.Outputs[0].ID]
		if ct == nil {
			continue
		}
		if err := d.vjp(e, ct); err != nil {
			return nil, fmt.Errorf("autodiff: eqn %d (%s): %w", i, e.Op, err)
		}
	}

	outputs := []*ir.Value{byID[loss.ID]}
	for _, w := range wrt {
		gv := d.ct[w.ID]
		if gv == nil {
			gv = d.emit(ir.OpZeros, ir.Attrs{Shape: w.Shape})
		}
		outputs = append(outputs, gv)
	}
	out.SetOutputs(outputs...)
	if err := out.Verify(); err != nil {
		return nil, fmt.Errorf("autodiff: produced invalid graph: %w", err)
	}
	return out, nil
}

type differ struct {
	g  *ir.Graph
	ct map[int]*ir.Value // value ID -> accumulated cotangent
}

func (d *differ) emit(op ir.Op, attrs ir.Attrs, ins ...*ir.Value) *ir.Value {
	v, err := d.g.Emit(op, attrs, ins...)
	if err != nil {
		panic(fmt.Sprintf("autodiff: internal emit error: %v", err))
	}
	return v
}

// addCT accumulates a cotangent contribution for v, emitting an add when a
// contribution already exists. These merge adds are exactly the "gradient
// merging operations that do not belong to any function" discussed in §3.2.
func (d *differ) addCT(v *ir.Value, contrib *ir.Value) {
	if d.ct == nil {
		d.ct = make(map[int]*ir.Value)
	}
	if prev, ok := d.ct[v.ID]; ok {
		d.ct[v.ID] = d.emit(ir.OpAdd, ir.Attrs{}, prev, contrib)
		return
	}
	d.ct[v.ID] = contrib
}

// reduceTo adapts a cotangent of shape ct.Shape to the operand shape, undoing
// scalar broadcasting performed by add/sub/mul.
func (d *differ) reduceTo(ct *ir.Value, shape []int) *ir.Value {
	if tensor.ShapeEq(ct.Shape, shape) {
		return ct
	}
	if len(shape) == 0 {
		return d.emit(ir.OpSum, ir.Attrs{}, ct)
	}
	panic(fmt.Sprintf("autodiff: cannot reduce cotangent %v to %v", ct.Shape, shape))
}

func (d *differ) vjp(e *ir.Equation, ct *ir.Value) error {
	in := e.Inputs
	switch e.Op {
	case ir.OpMatMul:
		a, b := in[0], in[1]
		bt := d.emit(ir.OpTranspose, ir.Attrs{}, b)
		d.addCT(a, d.emit(ir.OpMatMul, ir.Attrs{}, ct, bt))
		at := d.emit(ir.OpTranspose, ir.Attrs{}, a)
		d.addCT(b, d.emit(ir.OpMatMul, ir.Attrs{}, at, ct))
	case ir.OpAdd:
		d.addCT(in[0], d.reduceTo(ct, in[0].Shape))
		d.addCT(in[1], d.reduceTo(ct, in[1].Shape))
	case ir.OpSub:
		d.addCT(in[0], d.reduceTo(ct, in[0].Shape))
		neg := d.emit(ir.OpScale, ir.Attrs{Factor: -1}, ct)
		d.addCT(in[1], d.reduceTo(neg, in[1].Shape))
	case ir.OpMul:
		ga := d.emit(ir.OpMul, ir.Attrs{}, ct, in[1])
		d.addCT(in[0], d.reduceTo(ga, in[0].Shape))
		gb := d.emit(ir.OpMul, ir.Attrs{}, ct, in[0])
		d.addCT(in[1], d.reduceTo(gb, in[1].Shape))
	case ir.OpScale:
		d.addCT(in[0], d.emit(ir.OpScale, ir.Attrs{Factor: e.Attrs.Factor}, ct))
	case ir.OpReLU:
		mask := d.emit(ir.OpReLUMask, ir.Attrs{}, in[0])
		d.addCT(in[0], d.emit(ir.OpMul, ir.Attrs{}, ct, mask))
	case ir.OpTanh:
		d.addCT(in[0], d.emit(ir.OpTanhGrad, ir.Attrs{}, in[0], ct))
	case ir.OpTranspose:
		d.addCT(in[0], d.emit(ir.OpTranspose, ir.Attrs{}, ct))
	case ir.OpReshape:
		d.addCT(in[0], d.emit(ir.OpReshape, ir.Attrs{Shape: in[0].Shape}, ct))
	case ir.OpSum:
		d.addCT(in[0], d.emit(ir.OpBroadcastS, ir.Attrs{Shape: in[0].Shape}, ct))
	case ir.OpSumAxis0:
		d.addCT(in[0], d.emit(ir.OpBroadcast0, ir.Attrs{N: in[0].Shape[0]}, ct))
	case ir.OpBroadcast0:
		d.addCT(in[0], d.emit(ir.OpSumAxis0, ir.Attrs{}, ct))
	case ir.OpBroadcastS:
		d.addCT(in[0], d.emit(ir.OpSum, ir.Attrs{}, ct))
	case ir.OpXent:
		// d/dlogits mean-xent = (softmax - targets)/rows, scaled by the
		// (scalar) upstream cotangent. Targets are non-differentiable.
		gl := d.emit(ir.OpXentGrad, ir.Attrs{}, in[0], in[1])
		d.addCT(in[0], d.emit(ir.OpMul, ir.Attrs{}, gl, ct))
	case ir.OpYield:
		// The backward of a stage-boundary marker is a mirrored marker: it
		// delimits the backward stage corresponding to the same boundary.
		bw := d.emit(ir.OpYield, ir.Attrs{Stage: e.Attrs.Stage, Bwd: true}, ct)
		d.addCT(in[0], bw)
	case ir.OpReLUMask, ir.OpZeros, ir.OpConst:
		// Zero derivative (mask is treated as locally constant) or no inputs.
	case ir.OpSoftmax, ir.OpXentGrad, ir.OpTanhGrad:
		return fmt.Errorf("op is not differentiable (use the fused loss primitives)")
	default:
		return fmt.Errorf("no VJP rule registered")
	}
	return nil
}
