package autodiff

import (
	"math"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// traceMLP builds loss(x, y, w1, w2, w3) = xent(relu(x@w1)@w2 @ w3, y) with
// optional pipeline yields between layers.
func traceMLP(t *testing.T, withYields bool, dims []int) *ir.Graph {
	t.Helper()
	g, err := trace.Trace("mlp", func(b *trace.Builder) []*ir.Value {
		x := b.Input("x", 4, dims[0])
		y := b.Input("y", 4, dims[len(dims)-1])
		var ws []*ir.Value
		for i := 0; i+1 < len(dims); i++ {
			ws = append(ws, b.Input("w", dims[i], dims[i+1]))
		}
		h := x
		for i, w := range ws {
			h = b.MatMul(h, w)
			if i+1 < len(ws) {
				h = b.ReLU(h)
				if withYields {
					h = b.PipelineYield(h)
				}
			}
		}
		return []*ir.Value{b.CrossEntropy(h, y)}
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func mlpInputs(dims []int, seed uint64) []*tensor.Tensor {
	rng := tensor.NewRNG(seed)
	x := rng.Normal(1, 4, dims[0])
	y := rng.OneHotBatch(4, dims[len(dims)-1])
	ins := []*tensor.Tensor{x, y}
	for i := 0; i+1 < len(dims); i++ {
		ins = append(ins, rng.Normal(0.5, dims[i], dims[i+1]))
	}
	return ins
}

func TestValueAndGradMatchesFiniteDifference(t *testing.T) {
	dims := []int{3, 5, 4, 3}
	g := traceMLP(t, false, dims)
	gg, err := ValueAndGrad(g, g.Inputs[2:]) // wrt the weights
	if err != nil {
		t.Fatal(err)
	}
	ins := mlpInputs(dims, 42)
	outs, err := interp.Eval(gg, ins)
	if err != nil {
		t.Fatal(err)
	}
	loss0 := outs[0].Data()[0]

	evalLoss := func(perturbed []*tensor.Tensor) float64 {
		r, err := interp.Eval(g, perturbed)
		if err != nil {
			t.Fatal(err)
		}
		return r[0].Data()[0]
	}
	eps := 1e-6
	for wi := 2; wi < len(ins); wi++ {
		grad := outs[1+wi-2]
		w := ins[wi]
		// Spot-check a few entries of each weight gradient.
		for _, flat := range []int{0, w.Size() / 2, w.Size() - 1} {
			plus := make([]*tensor.Tensor, len(ins))
			minus := make([]*tensor.Tensor, len(ins))
			copy(plus, ins)
			copy(minus, ins)
			wp := w.Clone()
			wp.Data()[flat] += eps
			wm := w.Clone()
			wm.Data()[flat] -= eps
			plus[wi], minus[wi] = wp, wm
			fd := (evalLoss(plus) - evalLoss(minus)) / (2 * eps)
			if math.Abs(fd-grad.Data()[flat]) > 1e-5 {
				t.Fatalf("w%d[%d]: grad=%v fd=%v (loss %v)", wi, flat, grad.Data()[flat], fd, loss0)
			}
		}
	}
}

func TestYieldsDoNotChangeGradients(t *testing.T) {
	dims := []int{3, 6, 5, 3}
	plain := traceMLP(t, false, dims)
	marked := traceMLP(t, true, dims)
	gp, err := ValueAndGrad(plain, plain.Inputs[2:])
	if err != nil {
		t.Fatal(err)
	}
	gm, err := ValueAndGrad(marked, marked.Inputs[2:])
	if err != nil {
		t.Fatal(err)
	}
	ins := mlpInputs(dims, 7)
	a, err := interp.Eval(gp, ins)
	if err != nil {
		t.Fatal(err)
	}
	b, err := interp.Eval(gm, ins)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !tensor.AllClose(a[i], b[i], 1e-12, 1e-12) {
			t.Fatalf("output %d differs with yields: %v", i, tensor.MaxAbsDiff(a[i], b[i]))
		}
	}
}

func TestBackwardYieldsMirrorForward(t *testing.T) {
	dims := []int{3, 6, 5, 3}
	g := traceMLP(t, true, dims)
	gg, err := ValueAndGrad(g, g.Inputs[2:])
	if err != nil {
		t.Fatal(err)
	}
	fwd, bwd := gg.YieldBoundaries()
	if len(fwd) != 2 || len(bwd) != 2 {
		t.Fatalf("fwd=%d bwd=%d yields", len(fwd), len(bwd))
	}
	// Backward yields must appear in reverse stage order.
	s1 := gg.Eqns[bwd[0]].Attrs.Stage
	s2 := gg.Eqns[bwd[1]].Attrs.Stage
	if !(s1 > s2) {
		t.Fatalf("backward yields not reversed: %d then %d", s1, s2)
	}
}

func TestSharedWeightAccumulatesPartialGrads(t *testing.T) {
	// Tied weights: the same W used in two layers (second use transposed).
	g, err := trace.Trace("tied", func(b *trace.Builder) []*ir.Value {
		x := b.Input("x", 4, 5)
		y := b.Input("y", 4, 5)
		w := b.Input("w", 5, 5)
		h := b.ReLU(b.MatMul(x, w))
		h = b.PipelineYield(h)
		out := b.MatMul(h, b.Transpose(w))
		return []*ir.Value{b.CrossEntropy(out, y)}
	})
	if err != nil {
		t.Fatal(err)
	}
	gg, err := ValueAndGrad(g, []*ir.Value{g.Inputs[2]})
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(3)
	ins := []*tensor.Tensor{rng.Normal(1, 4, 5), rng.OneHotBatch(4, 5), rng.Normal(0.5, 5, 5)}
	outs, err := interp.Eval(gg, ins)
	if err != nil {
		t.Fatal(err)
	}
	grad := outs[1]
	// Finite-difference check on one entry: both uses must contribute.
	eps := 1e-6
	evalLoss := func(w *tensor.Tensor) float64 {
		r, err := interp.Eval(g, []*tensor.Tensor{ins[0], ins[1], w})
		if err != nil {
			t.Fatal(err)
		}
		return r[0].Data()[0]
	}
	for _, flat := range []int{0, 12, 24} {
		wp := ins[2].Clone()
		wp.Data()[flat] += eps
		wm := ins[2].Clone()
		wm.Data()[flat] -= eps
		fd := (evalLoss(wp) - evalLoss(wm)) / (2 * eps)
		if math.Abs(fd-grad.Data()[flat]) > 1e-5 {
			t.Fatalf("tied grad[%d]=%v fd=%v", flat, grad.Data()[flat], fd)
		}
	}
}

func TestUnusedInputGetsZeroGrad(t *testing.T) {
	g, err := trace.Trace("unused", func(b *trace.Builder) []*ir.Value {
		x := b.Input("x", 2, 2)
		y := b.Input("y", 2, 2)
		unused := b.Input("u", 3, 3)
		_ = unused
		return []*ir.Value{b.CrossEntropy(x, y)}
	})
	if err != nil {
		t.Fatal(err)
	}
	gg, err := ValueAndGrad(g, []*ir.Value{g.Inputs[2]})
	if err != nil {
		t.Fatal(err)
	}
	rng := tensor.NewRNG(1)
	outs, err := interp.Eval(gg, []*tensor.Tensor{rng.Normal(1, 2, 2), rng.OneHotBatch(2, 2), rng.Normal(1, 3, 3)})
	if err != nil {
		t.Fatal(err)
	}
	z := outs[1]
	if !tensor.AllClose(z, tensor.New(3, 3), 0, 0) {
		t.Fatalf("unused grad not zero: %v", z)
	}
}

func TestErrorsOnNonScalarLoss(t *testing.T) {
	g, err := trace.Trace("vecloss", func(b *trace.Builder) []*ir.Value {
		x := b.Input("x", 2, 2)
		return []*ir.Value{b.ReLU(x)}
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ValueAndGrad(g, g.Inputs); err == nil {
		t.Fatal("want error for non-scalar loss")
	}
}

func TestErrorsOnNonInputWrt(t *testing.T) {
	g, err := trace.Trace("nonin", func(b *trace.Builder) []*ir.Value {
		x := b.Input("x", 2, 2)
		y := b.Input("y", 2, 2)
		return []*ir.Value{b.CrossEntropy(x, y)}
	})
	if err != nil {
		t.Fatal(err)
	}
	phantom := &ir.Value{ID: 12345, Shape: []int{2, 2}}
	if _, err := ValueAndGrad(g, []*ir.Value{phantom}); err == nil {
		t.Fatal("want error for non-input wrt")
	}
}

func TestGradGraphVerifies(t *testing.T) {
	dims := []int{4, 8, 6, 4}
	g := traceMLP(t, true, dims)
	gg, err := ValueAndGrad(g, g.Inputs[2:])
	if err != nil {
		t.Fatal(err)
	}
	if err := gg.Verify(); err != nil {
		t.Fatal(err)
	}
	// DCE should not remove anything load-bearing.
	gg.DCE()
	if err := gg.Verify(); err != nil {
		t.Fatal(err)
	}
	ins := mlpInputs(dims, 9)
	if _, err := interp.Eval(gg, ins); err != nil {
		t.Fatal(err)
	}
}

func TestScaleSumBroadcastGrads(t *testing.T) {
	// loss = sum(scale(x, 3)) => dloss/dx = 3 everywhere.
	g, err := trace.Trace("scalesum", func(b *trace.Builder) []*ir.Value {
		x := b.Input("x", 2, 3)
		return []*ir.Value{b.Sum(b.Scale(x, 3))}
	})
	if err != nil {
		t.Fatal(err)
	}
	gg, err := ValueAndGrad(g, g.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := interp.Eval(gg, []*tensor.Tensor{tensor.NewRNG(2).Normal(1, 2, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(outs[1], tensor.Full(3, 2, 3), 1e-12, 1e-12) {
		t.Fatalf("grad=%v", outs[1])
	}
}

func TestTanhGrad(t *testing.T) {
	g, err := trace.Trace("tanh", func(b *trace.Builder) []*ir.Value {
		x := b.Input("x", 3)
		return []*ir.Value{b.Sum(b.Tanh(x))}
	})
	if err != nil {
		t.Fatal(err)
	}
	gg, err := ValueAndGrad(g, g.Inputs)
	if err != nil {
		t.Fatal(err)
	}
	x := tensor.MustFromSlice([]float64{-1, 0, 0.5}, 3)
	outs, err := interp.Eval(gg, []*tensor.Tensor{x})
	if err != nil {
		t.Fatal(err)
	}
	for i, xv := range x.Data() {
		want := 1 - math.Tanh(xv)*math.Tanh(xv)
		if math.Abs(outs[1].Data()[i]-want) > 1e-12 {
			t.Fatalf("tanh'(%v)=%v want %v", xv, outs[1].Data()[i], want)
		}
	}
}

func TestSumAxis0AndBroadcastGradRoundTrip(t *testing.T) {
	// loss = sum(sum_axis0(x) * c); grad should be c broadcast up.
	g, err := trace.Trace("axis0", func(b *trace.Builder) []*ir.Value {
		x := b.Input("x", 4, 3)
		c := b.Input("c", 3)
		return []*ir.Value{b.Sum(b.Mul(b.SumAxis0(x), c))}
	})
	if err != nil {
		t.Fatal(err)
	}
	gg, err := ValueAndGrad(g, []*ir.Value{g.Inputs[0]})
	if err != nil {
		t.Fatal(err)
	}
	c := tensor.MustFromSlice([]float64{1, 2, 3}, 3)
	outs, err := interp.Eval(gg, []*tensor.Tensor{tensor.NewRNG(4).Normal(1, 4, 3), c})
	if err != nil {
		t.Fatal(err)
	}
	for row := 0; row < 4; row++ {
		for col := 0; col < 3; col++ {
			if outs[1].At(row, col) != c.At(col) {
				t.Fatalf("grad[%d,%d]=%v want %v", row, col, outs[1].At(row, col), c.At(col))
			}
		}
	}
}
