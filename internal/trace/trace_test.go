package trace

import (
	"strings"
	"testing"

	"repro/internal/ir"
)

func TestTraceBuildsVerifiedGraph(t *testing.T) {
	g, err := Trace("f", func(b *Builder) []*ir.Value {
		x := b.Input("x", 2, 4)
		w := b.Input("w", 4, 3)
		h := b.ReLU(b.MatMul(x, w))
		h = b.PipelineYield(h)
		return []*ir.Value{b.Sum(h)}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
	if g.NumStages() != 2 {
		t.Fatalf("stages=%d", g.NumStages())
	}
}

func TestTraceConvertsPanicToError(t *testing.T) {
	_, err := Trace("bad", func(b *Builder) []*ir.Value {
		x := b.Input("x", 2, 3)
		y := b.Input("y", 2, 3)
		return []*ir.Value{b.MatMul(x, y)} // inner dims mismatch
	})
	if err == nil || !strings.Contains(err.Error(), "matmul") {
		t.Fatalf("want matmul trace error, got %v", err)
	}
}

func TestYieldNumbering(t *testing.T) {
	g, err := Trace("multi", func(b *Builder) []*ir.Value {
		x := b.Input("x", 2, 2)
		h := b.PipelineYield(b.ReLU(x))
		h = b.PipelineYield(b.Tanh(h))
		if b.YieldCount() != 2 {
			t.Fatalf("yield count %d", b.YieldCount())
		}
		return []*ir.Value{b.Sum(h)}
	})
	if err != nil {
		t.Fatal(err)
	}
	fwd, _ := g.YieldBoundaries()
	if len(fwd) != 2 {
		t.Fatalf("fwd yields %d", len(fwd))
	}
	if g.Eqns[fwd[0]].Attrs.Stage != 1 || g.Eqns[fwd[1]].Attrs.Stage != 2 {
		t.Fatal("yield stage attrs not sequential")
	}
}

func TestBuilderHelpers(t *testing.T) {
	g, err := Trace("helpers", func(b *Builder) []*ir.Value {
		x := b.Input("x", 2, 3)
		y := b.Input("y", 2, 3)
		v := b.Add(x, y)
		v = b.Sub(v, x)
		v = b.Mul(v, y)
		v = b.Scale(v, 0.5)
		v2 := b.Reshape(v, 3, 2)
		v2 = b.Transpose(v2)
		sm := b.Softmax(v2)
		_ = sm
		z := b.Zeros(2, 3)
		v = b.Add(v, z)
		s0 := b.SumAxis0(v)
		_ = s0
		return []*ir.Value{b.CrossEntropy(v, y)}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Verify(); err != nil {
		t.Fatal(err)
	}
}
