// Package trace provides the tracing builder that turns a Go closure into an
// IR graph — the analogue of calling a Python function under jax.make_jaxpr.
// Model code receives a *Builder and symbolic *ir.Value handles; arithmetic
// on the handles records equations.
package trace

import (
	"fmt"

	"repro/internal/ir"
)

// Builder records equations into an underlying IR graph. All emit methods
// panic on shape errors, mirroring how JAX tracing aborts with a TypeError;
// Trace converts the panic into an error for callers.
type Builder struct {
	g          *ir.Graph
	yieldCount int
}

// Trace runs fn with a fresh builder. fn declares inputs via Input and
// returns the output values. The resulting graph is verified before return.
func Trace(name string, fn func(b *Builder) []*ir.Value) (g *ir.Graph, err error) {
	b := &Builder{g: ir.NewGraph(name)}
	defer func() {
		if r := recover(); r != nil {
			g = nil
			err = fmt.Errorf("trace: %v", r)
		}
	}()
	outs := fn(b)
	b.g.SetOutputs(outs...)
	if verr := b.g.Verify(); verr != nil {
		return nil, verr
	}
	return b.g, nil
}

// Graph exposes the graph under construction (for advanced callers).
func (b *Builder) Graph() *ir.Graph { return b.g }

// Input declares a graph input of the given shape.
func (b *Builder) Input(name string, shape ...int) *ir.Value {
	return b.g.AddInput(shape, name)
}

func (b *Builder) emit(op ir.Op, attrs ir.Attrs, ins ...*ir.Value) *ir.Value {
	v, err := b.g.Emit(op, attrs, ins...)
	if err != nil {
		panic(err)
	}
	return v
}

// MatMul records a matrix product.
func (b *Builder) MatMul(x, y *ir.Value) *ir.Value { return b.emit(ir.OpMatMul, ir.Attrs{}, x, y) }

// Add records an elementwise sum (scalar broadcast allowed).
func (b *Builder) Add(x, y *ir.Value) *ir.Value { return b.emit(ir.OpAdd, ir.Attrs{}, x, y) }

// Sub records an elementwise difference.
func (b *Builder) Sub(x, y *ir.Value) *ir.Value { return b.emit(ir.OpSub, ir.Attrs{}, x, y) }

// Mul records an elementwise product.
func (b *Builder) Mul(x, y *ir.Value) *ir.Value { return b.emit(ir.OpMul, ir.Attrs{}, x, y) }

// Scale records multiplication by a compile-time constant.
func (b *Builder) Scale(x *ir.Value, f float64) *ir.Value {
	return b.emit(ir.OpScale, ir.Attrs{Factor: f}, x)
}

// ReLU records a rectified linear unit.
func (b *Builder) ReLU(x *ir.Value) *ir.Value { return b.emit(ir.OpReLU, ir.Attrs{}, x) }

// Tanh records a tanh activation.
func (b *Builder) Tanh(x *ir.Value) *ir.Value { return b.emit(ir.OpTanh, ir.Attrs{}, x) }

// Transpose records a rank-2 transpose.
func (b *Builder) Transpose(x *ir.Value) *ir.Value { return b.emit(ir.OpTranspose, ir.Attrs{}, x) }

// Reshape records a reshape to the given shape.
func (b *Builder) Reshape(x *ir.Value, shape ...int) *ir.Value {
	return b.emit(ir.OpReshape, ir.Attrs{Shape: shape}, x)
}

// Sum records a full reduction to a scalar.
func (b *Builder) Sum(x *ir.Value) *ir.Value { return b.emit(ir.OpSum, ir.Attrs{}, x) }

// SumAxis0 records a reduction over the leading axis.
func (b *Builder) SumAxis0(x *ir.Value) *ir.Value { return b.emit(ir.OpSumAxis0, ir.Attrs{}, x) }

// Softmax records a row-wise softmax.
func (b *Builder) Softmax(x *ir.Value) *ir.Value { return b.emit(ir.OpSoftmax, ir.Attrs{}, x) }

// CrossEntropy records the fused mean softmax-cross-entropy loss.
func (b *Builder) CrossEntropy(logits, targets *ir.Value) *ir.Value {
	return b.emit(ir.OpXent, ir.Attrs{}, logits, targets)
}

// Zeros records a zero constant of the given shape.
func (b *Builder) Zeros(shape ...int) *ir.Value {
	return b.emit(ir.OpZeros, ir.Attrs{Shape: shape})
}

// PipelineYield marks the end of the current pipeline stage, exactly like
// jaxpp.pipeline_yield: it is an identity on the value, and every computation
// the result transitively feeds belongs to a later stage.
func (b *Builder) PipelineYield(x *ir.Value) *ir.Value {
	b.yieldCount++
	return b.emit(ir.OpYield, ir.Attrs{Stage: b.yieldCount}, x)
}

// YieldCount reports how many forward yields were traced.
func (b *Builder) YieldCount() int { return b.yieldCount }
