package sim

import (
	"fmt"
	"math"

	"repro/internal/schedule"
)

// Simulate runs one training step of the configuration and returns timing,
// throughput, memory, and breakdown.
func Simulate(c Config) (*Result, error) {
	cm, err := c.deriveCosts()
	if err != nil {
		return nil, err
	}
	if c.SyncPerIteration {
		return simulateSPMDLoop(c, cm)
	}
	sched, err := c.buildSchedule()
	if err != nil {
		return nil, err
	}

	peaks := sched.PeakInFlight()
	maxPeak := 0
	for _, p := range peaks {
		maxPeak = maxInt(maxPeak, p)
	}
	remat := c.decideRemat(cm, maxPeak)
	cm.remat = remat
	if remat {
		cm.rematExtra = cm.fwdCompute + cm.fwdColl
	}

	res := simulateEvents(c, cm, sched)
	res.Remat = remat
	actPer := cm.actPerMB
	if remat {
		actPer = cm.actPerMBR
	}
	res.WeightsMemGiB = cm.weightsMem / (1024 * 1024 * 1024)
	res.ActivationGiB = float64(maxPeak) * actPer / (1024 * 1024 * 1024)
	res.PeakMemGiB = res.WeightsMemGiB + res.ActivationGiB
	res.NumMicrobatches = c.NumMicrobatches()
	res.Stages = c.PP * c.CircularRepeat
	res.TFLOPSPerDevice = c.Model.StepFLOPs(c.GlobalBatch) / res.StepTime / float64(c.GPUs) / 1e12
	return res, nil
}

// simulateEvents is the discrete-event core: it executes the per-actor task
// lists with data-dependency availability times, asynchronous (or
// synchronous) P2P, and per-task dispatch overhead.
func simulateEvents(c Config, cm *costModel, sched *schedule.Schedule) *Result {
	type key struct {
		mb, stage int
		ty        schedule.TaskType
	}
	doneAt := map[key]float64{}

	numActors := sched.NumActors
	heads := make([]int, numActors)
	now := make([]float64, numActors)
	busyCompute := make([]float64, numActors)
	busyRemat := make([]float64, numActors)
	busyP2P := make([]float64, numActors)
	busyDispatch := make([]float64, numActors)
	tasks := 0

	crossActor := func(s1, s2 int) bool {
		return sched.StageActor[s1] != sched.StageActor[s2]
	}

	// availAt returns when entry e's operands are available on its actor,
	// accounting for P2P transfer delay on cross-actor edges (overlapped
	// mode: the delay rides on the data, not on either endpoint's clock).
	availAt := func(e schedule.Entry) (float64, bool) {
		p2p := cm.p2p
		switch e.Type {
		case schedule.Forward:
			if e.Stage == 0 {
				return 0, true
			}
			t, ok := doneAt[key{e.MB, e.Stage - 1, schedule.Forward}]
			if !ok {
				return 0, false
			}
			if crossActor(e.Stage-1, e.Stage) && c.OverlapP2P {
				t += p2p
			}
			return t, true
		default:
			tf, ok := doneAt[key{e.MB, e.Stage, schedule.Forward}]
			if !ok {
				return 0, false
			}
			if e.Stage == sched.NumStages-1 {
				return tf, true
			}
			tb, ok := doneAt[key{e.MB, e.Stage + 1, schedule.Backward}]
			if !ok {
				return 0, false
			}
			if crossActor(e.Stage+1, e.Stage) && c.OverlapP2P {
				tb += p2p
			}
			if tb > tf {
				return tb, true
			}
			return tf, true
		}
	}

	for {
		progressed := false
		finished := true
		for a := 0; a < numActors; a++ {
			if heads[a] >= len(sched.Actors[a]) {
				continue
			}
			finished = false
			e := sched.Actors[a][heads[a]]
			ready, ok := availAt(e)
			if !ok {
				continue
			}
			start := now[a]
			if ready > start {
				start = ready
			}
			var dur float64
			switch e.Type {
			case schedule.Forward:
				dur = cm.fwdCompute + cm.fwdColl
				busyCompute[a] += dur
			default:
				dur = cm.bwdCompute + cm.bwdColl
				busyCompute[a] += dur
				if cm.remat {
					dur += cm.rematExtra
					busyRemat[a] += cm.rematExtra
				}
			}
			dur += cm.dispatch
			busyDispatch[a] += cm.dispatch
			end := start + dur
			// Synchronous P2P (SPMD-style): the producer is blocked while
			// the boundary transfer runs; the consumer sees data only at
			// transfer end.
			sendsCross := false
			if e.Type == schedule.Forward && e.Stage < sched.NumStages-1 && crossActor(e.Stage, e.Stage+1) {
				sendsCross = true
			}
			if e.Type == schedule.Backward && e.Stage > 0 && crossActor(e.Stage, e.Stage-1) {
				sendsCross = true
			}
			if sendsCross && !c.OverlapP2P {
				end += cm.p2p
				busyP2P[a] += cm.p2p
			}
			doneAt[key{e.MB, e.Stage, e.Type}] = end
			now[a] = end
			heads[a]++
			tasks++
			progressed = true
		}
		if finished {
			break
		}
		if !progressed {
			// Validated schedules cannot stall; guard anyway.
			return &Result{StepTime: -1}
		}
	}

	makespan := 0.0
	slowest := 0
	for a := range now {
		if now[a] > makespan {
			makespan = now[a]
			slowest = a
		}
	}
	jitter := JitterPerLog2 * math.Log2(float64(c.GPUs))
	step := makespan + cm.dpSync + jitter

	res := &Result{
		StepTime: step,
		NumTasks: tasks,
		Breakdown: Breakdown{
			ComputeCollectives: busyCompute[slowest],
			Rematerialization:  busyRemat[slowest],
			P2P:                busyP2P[slowest],
			Dispatch:           busyDispatch[slowest],
			DPGradSync:         cm.dpSync,
		},
	}
	res.Breakdown.Bubble = step - busyCompute[slowest] - busyRemat[slowest] -
		busyP2P[slowest] - busyDispatch[slowest] - cm.dpSync
	totBusy := 0.0
	for a := range now {
		totBusy += busyCompute[a] + busyRemat[a] + busyP2P[a] + busyDispatch[a]
	}
	res.BubbleFraction = 1 - totBusy/(makespan*float64(numActors))
	return res
}

// simulateSPMDLoop models the GSPMD stacked-stage encoding of pipeline
// parallelism (§2.2.2): one SPMD program where every loop iteration all
// actors perform the same (possibly discarded) computation, synchronize, and
// exchange boundary state with synchronous collective-permutes. Memory is
// GPipe-like — activations for all microbatches — which forces full
// rematerialization for large models.
func simulateSPMDLoop(c Config, cm *costModel) (*Result, error) {
	if c.CircularRepeat != 1 {
		return nil, fmt.Errorf("sim: the SPMD loop encoding supports only circular repeat 1")
	}
	numMB := c.NumMicrobatches()
	// GPipe-style memory: all in-flight microbatches pinned on stage 0.
	remat := c.ForceRemat || c.decideRemat(cm, numMB)
	cm.remat = remat
	if remat {
		cm.rematExtra = cm.fwdCompute + cm.fwdColl
	}

	fwdIters := float64(numMB + c.PP - 1)
	bwdIters := float64(numMB + c.PP - 1)
	syncOverhead := 2 * c.Cluster.Device.NVLinkLatency * float64(c.PP) // loop-step barrier

	fwdIterTime := cm.fwdCompute + cm.fwdColl + cm.dispatch + cm.p2p + syncOverhead
	bwdIterTime := cm.bwdCompute + cm.bwdColl + cm.dispatch + cm.p2p + syncOverhead
	if remat {
		bwdIterTime += cm.rematExtra
	}
	step := fwdIters*fwdIterTime + bwdIters*bwdIterTime + cm.dpSync +
		JitterPerLog2*math.Log2(float64(c.GPUs))

	res := &Result{
		StepTime:        step,
		Remat:           remat,
		NumTasks:        int(fwdIters + bwdIters),
		NumMicrobatches: numMB,
		Stages:          c.PP,
		Breakdown: Breakdown{
			ComputeCollectives: fwdIters*(cm.fwdCompute+cm.fwdColl) + bwdIters*(cm.bwdCompute+cm.bwdColl),
			Rematerialization:  bwdIters * cm.rematExtra,
			P2P:                (fwdIters + bwdIters) * (cm.p2p + syncOverhead),
			Dispatch:           (fwdIters + bwdIters) * cm.dispatch,
			DPGradSync:         cm.dpSync,
		},
	}
	// In the SPMD encoding the bubble is embodied as discarded compute: the
	// (PP-1)/(numMB+PP-1) share of iterations is wasted work, not idleness.
	res.BubbleFraction = float64(c.PP-1) / float64(numMB+c.PP-1)
	res.Breakdown.Bubble = 0
	actPer := cm.actPerMB
	if remat {
		actPer = cm.actPerMBR
	}
	res.WeightsMemGiB = cm.weightsMem / (1024 * 1024 * 1024)
	res.ActivationGiB = float64(numMB) * actPer / (1024 * 1024 * 1024)
	res.PeakMemGiB = res.WeightsMemGiB + res.ActivationGiB
	res.TFLOPSPerDevice = c.Model.StepFLOPs(c.GlobalBatch) / step / float64(c.GPUs) / 1e12
	return res, nil
}
