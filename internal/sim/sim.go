// Package sim is the discrete-event performance simulator standing in for
// the paper's EOS cluster (repro substitution: no GPUs available). It
// executes real pipeline schedules from package schedule over the perf cost
// model, tracking per-actor timelines, exposed communication, forced
// rematerialization from the HBM capacity model, and dispatch overheads —
// producing the step times and TFLOPS/device that Figures 6–10 and Table 1
// report.
package sim

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/perf"
	"repro/internal/schedule"
)

// ScheduleKind selects the pipeline schedule to simulate.
type ScheduleKind string

const (
	SchedGPipe       ScheduleKind = "gpipe"
	Sched1F1B        ScheduleKind = "1f1b"
	SchedInterleaved ScheduleKind = "interleaved_1f1b"
)

// Config is one simulated training configuration (a row of Table 1).
type Config struct {
	Model   model.TransformerConfig
	Cluster perf.ClusterSpec

	GPUs int
	TP   int // tensor parallel degree (within node)
	PP   int // pipeline parallel actors
	DP   int // data parallel replicas

	GlobalBatch    int // sequences
	Microbatch     int // sequences per microbatch
	CircularRepeat int // stages per actor (interleaved 1F1B)
	Schedule       ScheduleKind

	// OverlapP2P: asynchronous sends/recvs overlapped with compute (JaxPP,
	// §4.2). When false, P2P time blocks both endpoints (the synchronous
	// collective-permute behaviour of the SPMD-PP baseline).
	OverlapP2P bool

	// ForceRemat always rematerializes; AutoRemat decides from HBM capacity.
	ForceRemat bool
	AutoRemat  bool

	// SyncPerIteration models the GSPMD stacked-loop encoding: a barrier at
	// every loop iteration forces all actors to wait for stragglers.
	SyncPerIteration bool

	// KernelEfficiency multiplies the achievable-efficiency curve (NeMo's
	// fused kernels; JAX/XLA baseline 1.0).
	KernelEfficiency float64

	// DistributedOptimizer shards fp32 optimizer state over the DP group
	// (ZeRO-1 / Megatron distributed optimizer): 2 + 16/DP bytes per
	// parameter instead of 18. NeMo's large-model recipes require it.
	DistributedOptimizer bool

	// SelectiveRecompute recomputes attention internals in the backward pass
	// (Megatron selective recomputation), adding ≈11% compute FLOPs that
	// NeMo's own TFLOPS counter reports as useful work.
	SelectiveRecompute bool
}

// TaskOverhead is the device-side overhead per dispatched task (kernel
// launch chains, XLA async dispatch) — the cost that "emerges when the
// device work dispatched is too small" (§5.1.1, the circular-repeat-12 drop
// in Fig. 6).
var TaskOverhead = 0.4e-3

// JitterPerLog2 models cluster noise/stragglers per log2(GPUs), seconds.
var JitterPerLog2 = 0.03

// SelectiveRecomputeFraction is the extra compute fraction of selective
// attention recomputation relative to the full fwd+bwd step.
const SelectiveRecomputeFraction = 0.11

// Breakdown splits the step time of the slowest actor into categories
// (seconds), the Fig. 10 decomposition.
type Breakdown struct {
	ComputeCollectives float64
	Rematerialization  float64
	P2P                float64
	Bubble             float64
	DPGradSync         float64
	Dispatch           float64
}

// Result is the simulated outcome of one training step.
type Result struct {
	StepTime        float64
	TFLOPSPerDevice float64
	Breakdown       Breakdown
	Remat           bool
	PeakMemGiB      float64
	WeightsMemGiB   float64
	ActivationGiB   float64
	NumTasks        int
	NumMicrobatches int
	Stages          int
	BubbleFraction  float64
}

// Validate checks the configuration's internal consistency.
func (c *Config) Validate() error {
	if c.TP*c.PP*c.DP != c.GPUs {
		return fmt.Errorf("sim: TP(%d)×PP(%d)×DP(%d) != GPUs(%d)", c.TP, c.PP, c.DP, c.GPUs)
	}
	if c.GlobalBatch%(c.DP*c.Microbatch) != 0 {
		return fmt.Errorf("sim: global batch %d not divisible by DP(%d)×MBS(%d)", c.GlobalBatch, c.DP, c.Microbatch)
	}
	if c.CircularRepeat < 1 {
		c.CircularRepeat = 1
	}
	if c.KernelEfficiency == 0 {
		c.KernelEfficiency = 1
	}
	if c.Model.Layers%(c.PP*c.CircularRepeat) != 0 {
		// Allowed, but stage shares become fractional; warn via error only
		// for degenerate cases.
		if c.PP*c.CircularRepeat > c.Model.Layers {
			return fmt.Errorf("sim: %d stages exceed %d layers", c.PP*c.CircularRepeat, c.Model.Layers)
		}
	}
	return nil
}

// NumMicrobatches returns the gradient-accumulation count per replica.
func (c *Config) NumMicrobatches() int {
	return c.GlobalBatch / (c.DP * c.Microbatch)
}

// buildSchedule instantiates the actual schedule object.
func (c *Config) buildSchedule() (*schedule.Schedule, error) {
	mbs := c.NumMicrobatches()
	switch c.Schedule {
	case SchedGPipe:
		return schedule.GPipe(c.PP, mbs), nil
	case Sched1F1B:
		return schedule.OneFOneB(c.PP, mbs), nil
	case SchedInterleaved:
		return schedule.Interleaved1F1B(c.PP, mbs, c.CircularRepeat)
	default:
		return nil, fmt.Errorf("sim: unknown schedule %q", c.Schedule)
	}
}

// costModel carries the derived per-task costs.
type costModel struct {
	fwdCompute float64 // seconds per stage-chunk forward per microbatch
	bwdCompute float64
	fwdColl    float64 // TP collective time during forward
	bwdColl    float64
	rematExtra float64 // extra recompute time per backward when remat is on
	p2p        float64 // stage-boundary transfer time per microbatch
	dispatch   float64 // per-task dispatch overhead
	dpSync     float64 // end-of-step DP gradient all-reduce
	remat      bool

	weightsMem float64 // bytes per GPU for weights + optimizer
	actPerMB   float64 // activation bytes per in-flight microbatch per stage (no remat)
	actPerMBR  float64 // with remat
}

func (c *Config) deriveCosts() (*costModel, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	dev := c.Cluster.Device
	m := c.Model
	stages := c.PP * c.CircularRepeat
	layersPerStage := float64(m.Layers) / float64(stages)
	share := layersPerStage / float64(m.Layers)

	tokensPerMB := float64(c.Microbatch) * float64(m.Seq)
	tokensPerRank := tokensPerMB / float64(c.TP)
	eta := perf.MatmulEfficiency(tokensPerRank) * c.KernelEfficiency
	if eta <= 0 {
		return nil, fmt.Errorf("sim: zero efficiency")
	}

	fwdFLOPsPerMB := m.FwdFLOPsPerToken() * tokensPerMB
	cm := &costModel{}
	cm.fwdCompute = fwdFLOPsPerMB * share / (dev.PeakTFLOPS * 1e12 * eta * float64(c.TP))
	cm.bwdCompute = 2 * cm.fwdCompute

	// Megatron TP: two all-reduces per layer forward, two backward, each of
	// s·b·h BF16 over NVLink within the node.
	arBytes := m.TPCollectiveBytesPerLayer(c.Microbatch)
	ar := perf.NVSwitchAllReduceTime(arBytes, c.TP, dev.NVLinkGBs, dev.NVLinkLatency)
	cm.fwdColl = 2 * layersPerStage * ar
	cm.bwdColl = 2 * layersPerStage * ar

	cm.p2p = perf.P2PTime(m.P2PBytesPerBoundary(c.Microbatch), dev.NetGBs, dev.NetLatency)
	cm.dispatch = dev.DispatchOverhd + TaskOverhead

	if c.SelectiveRecompute {
		// Recompute attention internals before each backward task.
		extra := SelectiveRecomputeFraction * 3 * cm.fwdCompute
		cm.bwdCompute += extra
	}

	// Memory model.
	paramsPerGPU := float64(m.Params()) / float64(c.TP*c.PP)
	bytesPerParam := perf.OptimizerBytesPerParam
	if c.DistributedOptimizer && c.DP > 1 {
		bytesPerParam = 2 + 16/float64(c.DP)
	}
	cm.weightsMem = paramsPerGPU * bytesPerParam
	cm.actPerMB = m.ActivationBytesPerLayer(c.Microbatch) * layersPerStage / float64(c.TP)
	cm.actPerMBR = m.ActivationBytesPerLayerRemat(c.Microbatch) * layersPerStage / float64(c.TP)

	// DP gradient all-reduce (fp32 accumulated grads) over the data-parallel
	// dimension, inter-node bandwidth.
	if c.DP > 1 {
		gradBytes := paramsPerGPU * 4
		link := perf.Link{BwGBs: dev.NetGBs, Latency: dev.NetLatency}
		cm.dpSync = link.AllReduce(gradBytes, c.DP)
	}
	return cm, nil
}

// DPSyncTime exposes the analytic end-of-step DP gradient all-reduce
// estimate (the dpSync term of the cost model). The executable collective
// engine validates its measured bucketed AllReduce wall time against this
// same formula under a calibrated link (see collective.Calibrate).
func (c *Config) DPSyncTime() (float64, error) {
	cm, err := c.deriveCosts()
	if err != nil {
		return 0, err
	}
	return cm.dpSync, nil
}

// decideRemat applies the HBM capacity rule given the schedule's peak
// in-flight activation count per actor.
func (c *Config) decideRemat(cm *costModel, peakInFlight int) bool {
	if c.ForceRemat {
		return true
	}
	if !c.AutoRemat {
		return false
	}
	const workspace = 6e9 // CUDA context, workspace, fragmentation headroom
	free := c.Cluster.Device.HBMBytes - cm.weightsMem - workspace
	need := float64(peakInFlight) * cm.actPerMB
	return need > free
}

// maxInt returns the larger of a and b.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
