package sim

import (
	"testing"

	"repro/internal/model"
	"repro/internal/perf"
)

func jaxppGPT3(gpus, tp, pp, dp, gbs, mbs, cr int) Config {
	return Config{
		Model: model.GPT3_175B(), Cluster: perf.EOS(),
		GPUs: gpus, TP: tp, PP: pp, DP: dp,
		GlobalBatch: gbs, Microbatch: mbs, CircularRepeat: cr,
		Schedule: SchedInterleaved, OverlapP2P: true, AutoRemat: true,
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	c := jaxppGPT3(64, 8, 8, 2, 128, 4, 6) // TP*PP*DP != GPUs
	if _, err := Simulate(c); err == nil {
		t.Fatal("want degree mismatch error")
	}
	c = jaxppGPT3(64, 8, 8, 1, 100, 3, 6) // non-divisible batch
	if _, err := Simulate(c); err == nil {
		t.Fatal("want divisibility error")
	}
	c = jaxppGPT3(64, 8, 8, 1, 128, 4, 13) // 104 stages > 96 layers
	if _, err := Simulate(c); err == nil {
		t.Fatal("want stages>layers error")
	}
}

func TestBaselineRow(t *testing.T) {
	res, err := Simulate(jaxppGPT3(64, 8, 8, 1, 128, 4, 6))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 9.53s, 462 TFLOPS. Accept ±8%.
	if res.StepTime < 8.7 || res.StepTime > 10.3 {
		t.Fatalf("GPT-3 64-GPU step %.2fs, paper 9.53s", res.StepTime)
	}
	if res.TFLOPSPerDevice < 425 || res.TFLOPSPerDevice > 500 {
		t.Fatalf("TFLOPS %.0f, paper 462", res.TFLOPSPerDevice)
	}
	if res.Remat {
		t.Fatal("interleaved 1F1B must fit without rematerialization (Fig. 10)")
	}
	if res.PeakMemGiB >= 80 {
		t.Fatalf("peak memory %.1f GiB exceeds HBM", res.PeakMemGiB)
	}
}

func TestMoreMicrobatchesImproveUtilization(t *testing.T) {
	// Fig. 7: TFLOPS/device increases (saturating) with gradient
	// accumulation count at fixed microbatch size.
	prev := 0.0
	for _, ga := range []int{8, 16, 32, 64, 128} {
		res, err := Simulate(jaxppGPT3(64, 8, 8, 1, 4*ga, 4, 6))
		if err != nil {
			t.Fatal(err)
		}
		if res.TFLOPSPerDevice <= prev {
			t.Fatalf("GA %d: TFLOPS %.0f did not improve over %.0f", ga, res.TFLOPSPerDevice, prev)
		}
		prev = res.TFLOPSPerDevice
	}
}

func TestLargerMicrobatchMoreEfficient(t *testing.T) {
	// Fig. 6/7: at equal bubble structure, MBS 4 > MBS 2 > MBS 1.
	prev := 0.0
	for _, mbs := range []int{1, 2, 4} {
		res, err := Simulate(jaxppGPT3(64, 8, 8, 1, mbs*32, mbs, 6))
		if err != nil {
			t.Fatal(err)
		}
		if res.TFLOPSPerDevice <= prev {
			t.Fatalf("MBS %d: TFLOPS %.0f not above %.0f", mbs, res.TFLOPSPerDevice, prev)
		}
		prev = res.TFLOPSPerDevice
	}
}

func TestCircularRepeatSweepShape(t *testing.T) {
	// Fig. 6: throughput improves from CR 1 toward the middle and declines
	// by CR 12 (dispatch overheads emerge).
	tf := map[int]float64{}
	for _, cr := range []int{1, 6, 12} {
		res, err := Simulate(jaxppGPT3(64, 8, 8, 1, 128, 4, cr))
		if err != nil {
			t.Fatal(err)
		}
		tf[cr] = res.TFLOPSPerDevice
	}
	if !(tf[6] > tf[1]) {
		t.Fatalf("CR6 (%.0f) should beat CR1 (%.0f)", tf[6], tf[1])
	}
	if !(tf[6] > tf[12]) {
		t.Fatalf("CR6 (%.0f) should beat CR12 (%.0f)", tf[6], tf[12])
	}
}

func TestGPipeTriggersRemat1F1BDoesNot(t *testing.T) {
	// §5.3 / Fig. 10: GPipe's microbatch-proportional activation lifetime
	// forces rematerialization where (interleaved) 1F1B fits.
	g := jaxppGPT3(64, 8, 8, 1, 128, 4, 1)
	g.Schedule = SchedGPipe
	gres, err := Simulate(g)
	if err != nil {
		t.Fatal(err)
	}
	if !gres.Remat {
		t.Fatal("GPipe at GA32 must rematerialize")
	}
	o := jaxppGPT3(64, 8, 8, 1, 128, 4, 1)
	o.Schedule = Sched1F1B
	ores, err := Simulate(o)
	if err != nil {
		t.Fatal(err)
	}
	if ores.Remat {
		t.Fatal("1F1B must not rematerialize")
	}
	if ores.StepTime >= gres.StepTime {
		t.Fatalf("1F1B (%.2fs) must beat GPipe (%.2fs)", ores.StepTime, gres.StepTime)
	}
	// The ≈20% claim of §2.2.1/§5.3.
	gain := (gres.StepTime - ores.StepTime) / gres.StepTime
	if gain < 0.10 || gain > 0.35 {
		t.Fatalf("1F1B gain over GPipe %.1f%%, paper ≈20%%", 100*gain)
	}
}

func TestSPMDLoopSlowerThanMPMD(t *testing.T) {
	spmd := Config{
		Model: model.GPT3_175B(), Cluster: perf.EOS(),
		GPUs: 128, TP: 4, PP: 16, DP: 2, GlobalBatch: 256, Microbatch: 1,
		CircularRepeat: 1, Schedule: SchedGPipe, SyncPerIteration: true, AutoRemat: true,
	}
	sres, err := Simulate(spmd)
	if err != nil {
		t.Fatal(err)
	}
	jax := jaxppGPT3(128, 8, 8, 2, 256, 4, 6)
	jres, err := Simulate(jax)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: JaxPP is 44.6% faster than SPMD PP; accept 25–60%.
	speedup := sres.StepTime/jres.StepTime - 1
	if speedup < 0.25 || speedup > 0.60 {
		t.Fatalf("JaxPP speedup over SPMD PP = %.1f%%, paper 44.6%%", 100*speedup)
	}
	if !sres.Remat {
		t.Fatal("SPMD loop encoding must rematerialize")
	}
	if sres.Breakdown.Rematerialization <= 0 || sres.Breakdown.P2P <= 0 {
		t.Fatal("SPMD breakdown must expose remat and P2P costs")
	}
	if jres.Breakdown.Rematerialization != 0 {
		t.Fatal("JaxPP should not pay rematerialization here")
	}
}

func TestOverlapP2PHelps(t *testing.T) {
	sync := jaxppGPT3(64, 8, 8, 1, 128, 4, 6)
	sync.OverlapP2P = false
	sres, err := Simulate(sync)
	if err != nil {
		t.Fatal(err)
	}
	asyncCfg := jaxppGPT3(64, 8, 8, 1, 128, 4, 6)
	ares, err := Simulate(asyncCfg)
	if err != nil {
		t.Fatal(err)
	}
	if ares.StepTime >= sres.StepTime {
		t.Fatalf("overlapped P2P (%.3fs) must beat synchronous (%.3fs)", ares.StepTime, sres.StepTime)
	}
}

func TestDistributedOptimizerShrinksWeights(t *testing.T) {
	a := jaxppGPT3(128, 4, 8, 4, 256, 1, 6)
	ra, err := Simulate(a)
	if err != nil {
		t.Fatal(err)
	}
	b := a
	b.DistributedOptimizer = true
	rb, err := Simulate(b)
	if err != nil {
		t.Fatal(err)
	}
	if rb.WeightsMemGiB >= ra.WeightsMemGiB {
		t.Fatalf("distributed optimizer should shrink weights: %.1f vs %.1f GiB", rb.WeightsMemGiB, ra.WeightsMemGiB)
	}
	// TP4×PP8 for 175B does not fit without it.
	if ra.WeightsMemGiB < 80 {
		t.Fatalf("undistributed weights should exceed HBM: %.1f GiB", ra.WeightsMemGiB)
	}
}

func TestSelectiveRecomputeAddsCompute(t *testing.T) {
	a := jaxppGPT3(64, 8, 8, 1, 128, 4, 6)
	ra, err := Simulate(a)
	if err != nil {
		t.Fatal(err)
	}
	b := a
	b.SelectiveRecompute = true
	rb, err := Simulate(b)
	if err != nil {
		t.Fatal(err)
	}
	if rb.StepTime <= ra.StepTime {
		t.Fatal("selective recompute must add time")
	}
}

func TestWeakScalingEfficiency(t *testing.T) {
	base, err := Simulate(jaxppGPT3(64, 8, 8, 1, 128, 4, 6))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Simulate(jaxppGPT3(1024, 8, 8, 16, 2048, 4, 6))
	if err != nil {
		t.Fatal(err)
	}
	eff := big.TFLOPSPerDevice / base.TFLOPSPerDevice
	// Paper: 92.87% from 64→1024.
	if eff < 0.88 || eff > 0.99 {
		t.Fatalf("weak scaling efficiency %.1f%%, paper 92.87%%", 100*eff)
	}
}

func TestBreakdownSumsToStep(t *testing.T) {
	res, err := Simulate(jaxppGPT3(64, 8, 8, 1, 128, 4, 6))
	if err != nil {
		t.Fatal(err)
	}
	b := res.Breakdown
	sum := b.ComputeCollectives + b.Rematerialization + b.P2P + b.Bubble + b.DPGradSync + b.Dispatch
	if diff := sum - res.StepTime; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("breakdown sums to %.4f, step is %.4f", sum, res.StepTime)
	}
}

func TestNumTasksMatchesSchedule(t *testing.T) {
	res, err := Simulate(jaxppGPT3(64, 8, 8, 1, 128, 4, 6))
	if err != nil {
		t.Fatal(err)
	}
	// 32 microbatches × 48 stages × (fwd+bwd) / 8 actors each... total
	// tasks across actors = 2 × 32 × 48.
	if res.NumTasks != 2*32*48 {
		t.Fatalf("tasks %d, want %d", res.NumTasks, 2*32*48)
	}
}
