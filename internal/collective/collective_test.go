package collective

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/mesh"
	"repro/internal/runtime"
	"repro/internal/tensor"
)

// runGroup executes fn concurrently on every rank of a fresh n-rank group
// over an in-process transport and returns the per-rank results.
func runGroup(t *testing.T, n int, fn func(c *Communicator) (*tensor.Tensor, error)) []*tensor.Tensor {
	t.Helper()
	tr := runtime.NewChanTransport()
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = i
	}
	g, err := NewGroup(tr, ranks, 0)
	if err != nil {
		t.Fatal(err)
	}
	outs := make([]*tensor.Tensor, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := g.Comm(r)
			if err != nil {
				errs[r] = err
				return
			}
			outs[r], errs[r] = fn(c)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
	return outs
}

// rankTensor builds a deterministic per-rank tensor.
func rankTensor(rank, elems int) *tensor.Tensor {
	data := make([]float64, elems)
	for i := range data {
		data[i] = float64(rank+1)*100 + float64(i)
	}
	t, _ := tensor.FromSlice(data, elems)
	return t
}

// TestAllReduceSumMatchesLocalSum checks the headline contract across ring
// sizes 2..8 (including every non-power-of-two) and awkward tensor sizes:
// empty, scalar-sized, odd, smaller than the ring, and not divisible by it.
func TestAllReduceSumMatchesLocalSum(t *testing.T) {
	for n := 2; n <= 8; n++ {
		for _, elems := range []int{0, 1, 3, 5, 17, 64, 1000} {
			t.Run(fmt.Sprintf("ranks=%d/elems=%d", n, elems), func(t *testing.T) {
				want := make([]float64, elems)
				for r := 0; r < n; r++ {
					for i, v := range rankTensor(r, elems).Data() {
						want[i] += v
					}
				}
				outs := runGroup(t, n, func(c *Communicator) (*tensor.Tensor, error) {
					return c.AllReduce(rankTensor(c.Rank(), elems), OpSum)
				})
				wantT, _ := tensor.FromSlice(want, elems)
				for r, got := range outs {
					if !tensor.AllClose(got, wantT, 1e-12, 1e-12) {
						t.Fatalf("rank %d: got %v want %v", r, got, wantT)
					}
				}
			})
		}
	}
}

func TestAllReduceMaxMin(t *testing.T) {
	const n, elems = 5, 23
	outs := runGroup(t, n, func(c *Communicator) (*tensor.Tensor, error) {
		return c.AllReduce(rankTensor(c.Rank(), elems), OpMax)
	})
	want := rankTensor(n-1, elems)
	for r, got := range outs {
		if !tensor.AllClose(got, want, 0, 0) {
			t.Fatalf("max rank %d mismatch", r)
		}
	}
	outs = runGroup(t, n, func(c *Communicator) (*tensor.Tensor, error) {
		return c.AllReduce(rankTensor(c.Rank(), elems), OpMin)
	})
	want = rankTensor(0, elems)
	for r, got := range outs {
		if !tensor.AllClose(got, want, 0, 0) {
			t.Fatalf("min rank %d mismatch", r)
		}
	}
}

// TestReduceScatterThenAllGatherEqualsAllReduce exercises the composition
// identity the balanced chunk partition guarantees.
func TestReduceScatterThenAllGatherEqualsAllReduce(t *testing.T) {
	for _, n := range []int{2, 3, 7} {
		for _, elems := range []int{8, 29} {
			outs := runGroup(t, n, func(c *Communicator) (*tensor.Tensor, error) {
				shard, err := c.ReduceScatter(rankTensor(c.Rank(), elems), OpSum)
				if err != nil {
					return nil, err
				}
				return c.AllGather(shard)
			})
			want := make([]float64, elems)
			for r := 0; r < n; r++ {
				for i, v := range rankTensor(r, elems).Data() {
					want[i] += v
				}
			}
			wantT, _ := tensor.FromSlice(want, elems)
			for r, got := range outs {
				if !tensor.AllClose(got, wantT, 1e-12, 1e-12) {
					t.Fatalf("n=%d elems=%d rank %d: got %v want %v", n, elems, r, got, wantT)
				}
			}
		}
	}
}

func TestBroadcastFromEveryRoot(t *testing.T) {
	const n = 4
	for root := 0; root < n; root++ {
		want := rankTensor(root, 37)
		outs := runGroup(t, n, func(c *Communicator) (*tensor.Tensor, error) {
			var in *tensor.Tensor
			if c.Rank() == root {
				in = want
			}
			return c.Broadcast(in, root)
		})
		for r, got := range outs {
			if !tensor.AllClose(got, want, 0, 0) {
				t.Fatalf("root %d rank %d mismatch", root, r)
			}
		}
	}
}

// TestBroadcastPreservesShape checks the shape prologue for rank-2 payloads.
func TestBroadcastPreservesShape(t *testing.T) {
	const n = 3
	src := tensor.MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	outs := runGroup(t, n, func(c *Communicator) (*tensor.Tensor, error) {
		var in *tensor.Tensor
		if c.Rank() == 1 {
			in = src
		}
		return c.Broadcast(in, 1)
	})
	for r, got := range outs {
		if !tensor.ShapeEq(got.Shape(), []int{2, 3}) {
			t.Fatalf("rank %d shape %v", r, got.Shape())
		}
		if !tensor.AllClose(got, src, 0, 0) {
			t.Fatalf("rank %d data mismatch", r)
		}
	}
}

func TestBarrierCompletesAndOpsStayInLockstep(t *testing.T) {
	// Several barriers followed by an all-reduce: if any rank's op counter
	// drifted, tags would mismatch and the transport timeout would fire.
	outs := runGroup(t, 6, func(c *Communicator) (*tensor.Tensor, error) {
		for i := 0; i < 3; i++ {
			if err := c.Barrier(); err != nil {
				return nil, err
			}
		}
		return c.AllReduce(tensor.Scalar(float64(c.Rank())), OpSum)
	})
	for r, got := range outs {
		if got.Data()[0] != 15 { // 0+1+..+5
			t.Fatalf("rank %d: %v", r, got)
		}
	}
}

func TestAllGatherUnequalShards(t *testing.T) {
	// Rank r contributes r+1 rows of width 2; sizes travel with payloads.
	const n = 4
	outs := runGroup(t, n, func(c *Communicator) (*tensor.Tensor, error) {
		rows := c.Rank() + 1
		data := make([]float64, rows*2)
		for i := range data {
			data[i] = float64(c.Rank()*1000 + i)
		}
		shard, _ := tensor.FromSlice(data, rows, 2)
		return c.AllGather(shard)
	})
	for r, got := range outs {
		if !tensor.ShapeEq(got.Shape(), []int{1 + 2 + 3 + 4, 2}) {
			t.Fatalf("rank %d shape %v", r, got.Shape())
		}
		if got.At(0, 0) != 0 || got.At(1, 0) != 1000 || got.At(3, 0) != 2000 || got.At(6, 0) != 3000 {
			t.Fatalf("rank %d wrong rank-order concat: %v", r, got)
		}
	}
}

// TestBucketedAllReduce forces multiple buckets and checks shape-preserving
// reassembly.
func TestBucketedAllReduce(t *testing.T) {
	const n = 3
	shapes := [][]int{{4, 4}, {7}, {2, 3, 2}, {1}, {5, 5}}
	mk := func(rank int) []*tensor.Tensor {
		ts := make([]*tensor.Tensor, len(shapes))
		for i, s := range shapes {
			elems := tensor.NumElements(s)
			data := make([]float64, elems)
			for j := range data {
				data[j] = float64(rank+1) * float64(i*100+j)
			}
			ts[i], _ = tensor.FromSlice(data, s...)
		}
		return ts
	}
	// 100-byte buckets force one bucket per tensor except the smallest.
	for _, bucketBytes := range []int{100, DefaultBucketBytes} {
		tr := runtime.NewChanTransport()
		g, err := NewGroup(tr, []int{0, 1, 2}, 0)
		if err != nil {
			t.Fatal(err)
		}
		results := make([][]*tensor.Tensor, n)
		errs := make([]error, n)
		var wg sync.WaitGroup
		for r := 0; r < n; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				c, _ := g.Comm(r)
				results[r], errs[r] = c.AllReduceBuckets(mk(r), OpSum, bucketBytes)
			}(r)
		}
		wg.Wait()
		for r, err := range errs {
			if err != nil {
				t.Fatalf("bucketBytes=%d rank %d: %v", bucketBytes, r, err)
			}
		}
		// Reference: local sum over ranks.
		for i, s := range shapes {
			elems := tensor.NumElements(s)
			want := make([]float64, elems)
			for r := 0; r < n; r++ {
				for j, v := range mk(r)[i].Data() {
					want[j] += v
				}
			}
			wantT, _ := tensor.FromSlice(want, s...)
			for r := 0; r < n; r++ {
				if !tensor.AllClose(results[r][i], wantT, 1e-12, 1e-12) {
					t.Fatalf("bucketBytes=%d tensor %d rank %d mismatch", bucketBytes, i, r)
				}
			}
		}
	}
}

func TestNumBuckets(t *testing.T) {
	// 8-byte elems: sizes 10,10,10 with 200-byte cap -> (10+10)*8=160 fits,
	// adding third would be 240 > 200 -> 2 buckets.
	if got := NumBuckets([]int{10, 10, 10}, 200); got != 2 {
		t.Fatalf("NumBuckets = %d, want 2", got)
	}
	if got := NumBuckets([]int{1000}, 8); got != 1 {
		t.Fatalf("oversized tensor must still form one bucket, got %d", got)
	}
	if got := NumBuckets(nil, 100); got != 0 {
		t.Fatalf("no tensors -> 0 buckets, got %d", got)
	}
}

// TestGroupsAlongMeshAxes checks DP×PP group derivation on a 2×3 mesh:
// groups along "data" pair devices with equal pipe coordinate; groups along
// "pipe" are the per-replica pipelines.
func TestGroupsAlongMeshAxes(t *testing.T) {
	m := mesh.MustNew(mesh.Axis{Name: "data", Size: 2}, mesh.Axis{Name: "pipe", Size: 3})
	w := NewWorld(runtime.NewChanTransport(), m)
	dataGroups, err := w.GroupsAlong("data")
	if err != nil {
		t.Fatal(err)
	}
	wantData := [][]int{{0, 3}, {1, 4}, {2, 5}}
	if len(dataGroups) != len(wantData) {
		t.Fatalf("%d data groups", len(dataGroups))
	}
	for i, g := range dataGroups {
		got := g.Ranks()
		for j := range got {
			if got[j] != wantData[i][j] {
				t.Fatalf("data group %d = %v, want %v", i, got, wantData[i])
			}
		}
	}
	pipeGroups, err := w.GroupsAlong("pipe")
	if err != nil {
		t.Fatal(err)
	}
	wantPipe := [][]int{{0, 1, 2}, {3, 4, 5}}
	for i, g := range pipeGroups {
		got := g.Ranks()
		for j := range got {
			if got[j] != wantPipe[i][j] {
				t.Fatalf("pipe group %d = %v, want %v", i, got, wantPipe[i])
			}
		}
	}
	// Disjoint tag windows across axes: no (group, tag window) overlap for
	// groups that share actors.
	if dataGroups[0].tagBase == pipeGroups[0].tagBase {
		t.Fatal("groups along different axes must own distinct tag windows")
	}
	if _, err := w.GroupsAlong("model"); err == nil {
		t.Fatal("unknown axis must error")
	}
	comm, err := w.CommFor("data", 4)
	if err != nil {
		t.Fatal(err)
	}
	if comm.Rank() != 1 || comm.Size() != 2 {
		t.Fatalf("device 4 along data: rank %d size %d", comm.Rank(), comm.Size())
	}
}

// TestCollectivesCoexistWithPipelineP2P runs a gradient-style all-reduce
// concurrently with pipeline point-to-point traffic on the same transport
// and actors, using low tags like the taskgraph compiler does — the
// deterministic tag spaces must keep them from ever matching each other.
func TestCollectivesCoexistWithPipelineP2P(t *testing.T) {
	const n, elems, p2pMsgs = 4, 501, 200
	tr := runtime.NewChanTransport()
	ranks := []int{0, 1, 2, 3}
	g, err := NewGroup(tr, ranks, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	collErrs := make([]error, n)
	outs := make([]*tensor.Tensor, n)
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, _ := g.Comm(r)
			// Interleave several collectives to stress the tag sequencing.
			for i := 0; i < 3; i++ {
				out, err := c.AllReduce(rankTensor(r, elems), OpSum)
				if err != nil {
					collErrs[r] = err
					return
				}
				outs[r] = out
			}
		}(r)
	}
	// Pipeline-style traffic: actor i sends to i+1 with small sequential tags.
	p2pErr := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for m := 0; m < p2pMsgs; m++ {
			payload := tensor.Scalar(float64(m))
			tr.Send(0, 1, m, payload)
			got, err := tr.Recv(1, 0, m)
			if err != nil {
				p2pErr <- err
				return
			}
			if got.Data()[0] != float64(m) {
				p2pErr <- fmt.Errorf("p2p message %d corrupted: %v", m, got)
				return
			}
		}
		p2pErr <- nil
	}()
	wg.Wait()
	if err := <-p2pErr; err != nil {
		t.Fatal(err)
	}
	for r, err := range collErrs {
		if err != nil {
			t.Fatalf("collective rank %d: %v", r, err)
		}
	}
	want := make([]float64, elems)
	for r := 0; r < n; r++ {
		for i, v := range rankTensor(r, elems).Data() {
			want[i] += v
		}
	}
	wantT, _ := tensor.FromSlice(want, elems)
	for r := 0; r < n; r++ {
		if !tensor.AllClose(outs[r], wantT, 1e-12, 1e-12) {
			t.Fatalf("rank %d collective result corrupted by P2P traffic", r)
		}
	}
}
