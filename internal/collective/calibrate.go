package collective

import (
	"fmt"
	goruntime "runtime"
	"sync"
	"time"

	"repro/internal/perf"
	"repro/internal/tensor"
)

// calibTagBase is a reserved tag window for calibration traffic, below the
// group windows and far above pipeline P2P tags.
const calibTagBase = TagSpaceBase / 2

// Calibrate measures the effective per-hop link of a transport as the ring
// collectives experience it, between actor IDs a and b: per-hop latency from
// small-message ping-pongs, and bandwidth from bulk transfers that perform
// the same per-hop work the executed ring performs in steady state. A ring
// all-reduce spends half its hops in the reduce-scatter phase (receiver
// folds the chunk in: combineChunk) and half in the all-gather phase
// (receiver copies the chunk over: copyChunk), with a sender-side copy into
// a pooled chunk on every hop — so the calibration alternates combine and
// copy on the receiving side hop for hop. (Modeling every hop as a combine,
// as the pre-PR4 profile did, overstates per-hop cost and drove the
// executed-vs-analytic ratio to ~0.91 once the PR 3 chunk path landed.)
// The returned perf.Link feeds the same analytic formulas the simulator's
// dpSync cost model uses, which is what makes executed-vs-analytic
// validation apples-to-apples.
func Calibrate(tr Transport, a, b int) perf.Link {
	const (
		pingIters = 200
		bwWarmup  = 2
		bwIters   = 8
		bwElems   = 1 << 19 // 4 MiB per hop
	)

	// Strictly alternating round trips reuse two fixed tags per direction, so
	// after the first iteration every message lands in a warm persistent
	// mailbox — the same steady state the ring collectives reach once their
	// tag windows wrap.
	const (
		tagPing = calibTagBase
		tagPong = calibTagBase + 1
		tagBulk = calibTagBase + 2
		tagEcho = calibTagBase + 3
	)

	var wg sync.WaitGroup
	wg.Add(1)
	// Responder.
	go func() {
		defer wg.Done()
		for i := 0; i < pingIters; i++ {
			t, err := tr.Recv(b, a, tagPing)
			if err != nil {
				return
			}
			tr.Send(b, a, tagPong, t)
		}
		acc := make([]float64, bwElems)
		for i := 0; i < bwWarmup+bwIters; i++ {
			t, err := tr.Recv(b, a, tagBulk)
			if err != nil {
				return
			}
			// Alternate the two receive-side hop profiles of a ring
			// all-reduce: reduce-scatter hops fold the chunk in, all-gather
			// hops copy it over.
			if i%2 == 0 {
				OpSum.combine(acc, t.Data())
			} else {
				copy(acc, t.Data())
			}
			tensor.Recycle(t)
			// Echo with the sender-side work profile (pooled copy + send).
			back := tensor.GetScratch(bwElems)
			back.CopyFrom(acc)
			tr.Send(b, a, tagEcho, back)
		}
	}()

	// Latency: round trips of 1-element tensors.
	ping := tensor.Scalar(1)
	t0 := time.Now()
	for i := 0; i < pingIters; i++ {
		tr.Send(a, b, tagPing, ping)
		if _, err := tr.Recv(a, b, tagPong); err != nil {
			return perf.Link{BwGBs: 1, Latency: 1e-6}
		}
	}
	latency := time.Since(t0).Seconds() / float64(2*pingIters)

	// Bandwidth: bulk round trips with reduce work on the receiving side.
	// Warmup iterations populate the scratch pool so the timed ones measure
	// steady state.
	payload := make([]float64, bwElems)
	for i := range payload {
		payload[i] = float64(i)
	}
	acc := make([]float64, bwElems)
	var t1 time.Time
	for i := 0; i < bwWarmup+bwIters; i++ {
		if i == bwWarmup {
			t1 = time.Now()
		}
		out := tensor.GetScratch(bwElems)
		out.CopyFrom(payload)
		tr.Send(a, b, tagBulk, out)
		back, err := tr.Recv(a, b, tagEcho)
		if err != nil {
			return perf.Link{BwGBs: 1, Latency: latency}
		}
		if i%2 == 0 {
			OpSum.combine(acc, back.Data())
		} else {
			copy(acc, back.Data())
		}
		tensor.Recycle(back)
	}
	elapsed := time.Since(t1).Seconds()
	wg.Wait()

	hops := float64(2 * bwIters)
	bytesPerHop := float64(bwElems * bytesPerElem)
	perHop := elapsed/hops - latency
	if perHop <= 0 {
		perHop = elapsed / hops
	}
	return perf.Link{
		BwGBs:   bytesPerHop / perHop / 1e9,
		Latency: latency,
	}
}

// RingLink derates a calibrated link for an n-rank in-process ring. The
// analytic ring formulas assume every rank makes progress simultaneously —
// true of GPUs and NICs, but goroutine ranks share min(GOMAXPROCS, n) OS
// cores, so per-rank effective bandwidth shrinks by n/min(GOMAXPROCS, n)
// (perf.EffectiveBandwidthShare's contention model applied to cores instead
// of links). On a machine with >= n cores this is the identity.
func RingLink(l perf.Link, n int) perf.Link {
	procs := goruntime.GOMAXPROCS(0)
	if procs > n {
		procs = n
	}
	if procs < 1 {
		procs = 1
	}
	return perf.Link{
		BwGBs:   perf.EffectiveBandwidthShare(l.BwGBs*float64(procs), n), // l.BwGBs · procs/n
		Latency: l.Latency,
	}
}

// PredictBucketedAllReduce returns the analytic wall time of a bucketed
// all-reduce over the given link: the sum of ring all-reduce times of each
// fused bucket, computed with the identical perf formula the simulator's
// dpSync cost term uses. Pass the per-tensor element counts in the order
// they would be reduced.
func PredictBucketedAllReduce(l perf.Link, sizes []int, n, bucketBytes int) float64 {
	total := 0.0
	for _, b := range bucketBoundaries(sizes, bucketBytes) {
		elems := 0
		for _, s := range sizes[b[0]:b[1]] {
			elems += s
		}
		total += l.AllReduce(float64(elems*bytesPerElem), n)
	}
	return total
}

// Each MeasureAllReduce iteration consumes two op tag windows (barrier +
// all-reduce); opReuseWindows/2 iterations walk the whole tag-reuse cycle, so
// these warmups cover it almost three times over — the timed iterations run
// entirely on warm mailboxes and pooled chunks.
const (
	measureWarmups = 24
	measureIters   = 5
	// MeasureAllReduceRounds is the total number of all-reduce rounds one
	// MeasureAllReduce call runs (warmups + timed iterations), exported so
	// byte accounting around a measurement can normalize per round.
	MeasureAllReduceRounds = measureWarmups + measureIters
)

// MeasureAllReduce runs bucketed all-reduces of elems float64 elements over
// n ranks (actor IDs 0..n-1 on tr) and returns the steady-state wall time —
// the slowest rank's duration from a barrier-aligned start, averaged over
// several timed iterations after warmup rounds that populate the scratch
// pools — plus the reduced tensor from rank 0 for correctness checks.
func MeasureAllReduce(tr Transport, n, elems, bucketBytes int) (time.Duration, *tensor.Tensor, error) {
	const warmups, iters = measureWarmups, measureIters
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = i
	}
	g, err := NewGroup(tr, ranks, 0)
	if err != nil {
		return 0, nil, err
	}

	durs := make([][iters]time.Duration, n)
	outs := make([]*tensor.Tensor, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			comm, err := g.Comm(r)
			if err != nil {
				errs[r] = err
				return
			}
			data := make([]float64, elems)
			for i := range data {
				data[i] = float64(r + 1)
			}
			in, err := tensor.FromSlice(data, elems)
			if err != nil {
				errs[r] = err
				return
			}
			work := in.Clone()
			bufs := []*tensor.Tensor{work}
			for it := 0; it < warmups+iters; it++ {
				work.CopyFrom(in.Data())
				if err := comm.Barrier(); err != nil {
					errs[r] = err
					return
				}
				start := time.Now()
				if err := comm.AllReduceBucketsInPlace(bufs, OpSum, bucketBytes); err != nil {
					errs[r] = err
					return
				}
				if it >= warmups {
					durs[r][it-warmups] = time.Since(start)
				}
			}
			outs[r] = work
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return 0, nil, fmt.Errorf("collective: measure rank %d: %w", r, err)
		}
	}
	// Per iteration, the collective's wall time is the slowest rank's;
	// average those maxima over the timed iterations.
	var total time.Duration
	for it := 0; it < iters; it++ {
		max := durs[0][it]
		for r := 1; r < n; r++ {
			if durs[r][it] > max {
				max = durs[r][it]
			}
		}
		total += max
	}
	return total / iters, outs[0], nil
}
