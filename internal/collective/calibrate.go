package collective

import (
	"fmt"
	goruntime "runtime"
	"sync"
	"time"

	"repro/internal/perf"
	"repro/internal/tensor"
)

// calibTagBase is a reserved tag window for calibration traffic, below the
// group windows and far above pipeline P2P tags.
const calibTagBase = TagSpaceBase / 2

// Calibrate measures the effective per-hop link of a transport as the ring
// collectives experience it, between actor IDs a and b: per-hop latency from
// small-message ping-pongs, and bandwidth from bulk transfers that perform
// the same per-hop work a reduce-scatter step does (sender-side chunk copy +
// receiver-side elementwise reduce). The returned perf.Link feeds the same
// analytic formulas the simulator's dpSync cost model uses, which is what
// makes executed-vs-analytic validation apples-to-apples.
func Calibrate(tr Transport, a, b int) perf.Link {
	const (
		pingIters = 200
		bwIters   = 8
		bwElems   = 1 << 19 // 4 MiB per hop
	)

	var wg sync.WaitGroup
	wg.Add(1)
	// Responder.
	go func() {
		defer wg.Done()
		for i := 0; i < pingIters; i++ {
			t, err := tr.Recv(b, a, calibTagBase+i)
			if err != nil {
				return
			}
			tr.Send(b, a, calibTagBase+pingIters+i, t)
		}
		acc := make([]float64, bwElems)
		for i := 0; i < bwIters; i++ {
			t, err := tr.Recv(b, a, calibTagBase+2*pingIters+2*i)
			if err != nil {
				return
			}
			OpSum.combine(acc, t.Data())
			// Echo with the same per-hop work profile (copy + send).
			back := make([]float64, bwElems)
			copy(back, acc)
			bt, _ := tensor.FromSlice(back, bwElems)
			tr.Send(b, a, calibTagBase+2*pingIters+2*i+1, bt)
		}
	}()

	// Latency: round trips of 1-element tensors.
	ping := tensor.Scalar(1)
	t0 := time.Now()
	for i := 0; i < pingIters; i++ {
		tr.Send(a, b, calibTagBase+i, ping)
		if _, err := tr.Recv(a, b, calibTagBase+pingIters+i); err != nil {
			return perf.Link{BwGBs: 1, Latency: 1e-6}
		}
	}
	latency := time.Since(t0).Seconds() / float64(2*pingIters)

	// Bandwidth: bulk round trips with reduce work on the receiving side.
	payload := make([]float64, bwElems)
	for i := range payload {
		payload[i] = float64(i)
	}
	acc := make([]float64, bwElems)
	t1 := time.Now()
	for i := 0; i < bwIters; i++ {
		out := make([]float64, bwElems)
		copy(out, payload)
		ot, _ := tensor.FromSlice(out, bwElems)
		tr.Send(a, b, calibTagBase+2*pingIters+2*i, ot)
		back, err := tr.Recv(a, b, calibTagBase+2*pingIters+2*i+1)
		if err != nil {
			return perf.Link{BwGBs: 1, Latency: latency}
		}
		OpSum.combine(acc, back.Data())
	}
	elapsed := time.Since(t1).Seconds()
	wg.Wait()

	hops := float64(2 * bwIters)
	bytesPerHop := float64(bwElems * bytesPerElem)
	perHop := elapsed/hops - latency
	if perHop <= 0 {
		perHop = elapsed / hops
	}
	return perf.Link{
		BwGBs:   bytesPerHop / perHop / 1e9,
		Latency: latency,
	}
}

// RingLink derates a calibrated link for an n-rank in-process ring. The
// analytic ring formulas assume every rank makes progress simultaneously —
// true of GPUs and NICs, but goroutine ranks share min(GOMAXPROCS, n) OS
// cores, so per-rank effective bandwidth shrinks by n/min(GOMAXPROCS, n)
// (perf.EffectiveBandwidthShare's contention model applied to cores instead
// of links). On a machine with >= n cores this is the identity.
func RingLink(l perf.Link, n int) perf.Link {
	procs := goruntime.GOMAXPROCS(0)
	if procs > n {
		procs = n
	}
	if procs < 1 {
		procs = 1
	}
	return perf.Link{
		BwGBs:   perf.EffectiveBandwidthShare(l.BwGBs*float64(procs), n), // l.BwGBs · procs/n
		Latency: l.Latency,
	}
}

// PredictBucketedAllReduce returns the analytic wall time of
// AllReduceBuckets over the given link: the sum of ring all-reduce times of
// each fused bucket, computed with the identical perf formula the
// simulator's dpSync cost term uses. Pass the per-tensor element counts in
// the order they would be reduced.
func PredictBucketedAllReduce(l perf.Link, sizes []int, n, bucketBytes int) float64 {
	total := 0.0
	for _, b := range bucketBoundaries(sizes, bucketBytes) {
		elems := 0
		for _, s := range sizes[b[0]:b[1]] {
			elems += s
		}
		total += l.AllReduce(float64(elems*bytesPerElem), n)
	}
	return total
}

// MeasureAllReduce runs one bucketed all-reduce of elems float64 elements
// over n ranks (actor IDs 0..n-1 on tr) and returns the slowest rank's wall
// time, measured from a barrier-aligned start, plus the reduced tensor from
// rank 0 for correctness checks.
func MeasureAllReduce(tr Transport, n, elems, bucketBytes int) (time.Duration, *tensor.Tensor, error) {
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = i
	}
	g, err := NewGroup(tr, ranks, 0)
	if err != nil {
		return 0, nil, err
	}

	durs := make([]time.Duration, n)
	outs := make([]*tensor.Tensor, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			comm, err := g.Comm(r)
			if err != nil {
				errs[r] = err
				return
			}
			data := make([]float64, elems)
			for i := range data {
				data[i] = float64(r + 1)
			}
			in, err := tensor.FromSlice(data, elems)
			if err != nil {
				errs[r] = err
				return
			}
			if err := comm.Barrier(); err != nil {
				errs[r] = err
				return
			}
			start := time.Now()
			red, err := comm.AllReduceBuckets([]*tensor.Tensor{in}, OpSum, bucketBytes)
			if err != nil {
				errs[r] = err
				return
			}
			durs[r] = time.Since(start)
			outs[r] = red[0]
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return 0, nil, fmt.Errorf("collective: measure rank %d: %w", r, err)
		}
	}
	max := durs[0]
	for _, d := range durs[1:] {
		if d > max {
			max = d
		}
	}
	return max, outs[0], nil
}
