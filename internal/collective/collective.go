// Package collective is the executable collective-communication engine: the
// role NCCL collectives play for JaxPP's data-parallel dimension, layered on
// the runtime's tag-matched point-to-point transport. It provides process
// groups derived from mesh.Mesh axes and ring-based AllReduce, ReduceScatter,
// AllGather, Broadcast, and Barrier with chunked transfers and bucketed
// gradient fusion.
//
// Tag discipline: pipeline P2P traffic uses the small sequential tags the
// taskgraph compiler allocates (0..NumTags). Collective tags live in a
// disjoint space starting at TagSpaceBase, carved into per-group windows;
// within a group every operation consumes a deterministic window of tags
// derived from a per-rank operation counter. Because every rank of a group
// must issue the same sequence of collective calls (the usual collective
// contract), the counters agree across ranks without coordination, so
// collectives and pipeline sends can share one transport without tag
// collisions or deadlock.
package collective

import (
	"fmt"

	"repro/internal/mesh"
	"repro/internal/tensor"
)

// Transport is the point-to-point substrate collectives run over. It is
// structurally identical to runtime.Transport so any runtime transport
// (in-process channels, rendezvous, TCP) satisfies it without importing this
// package — and package runtime can import collective without a cycle.
type Transport interface {
	Send(from, to, tag int, t *tensor.Tensor)
	Recv(to, from, tag int) (*tensor.Tensor, error)
}

// Op is a reduction operator.
type Op int

const (
	// OpSum adds elementwise (gradient accumulation).
	OpSum Op = iota
	// OpMax takes the elementwise maximum.
	OpMax
	// OpMin takes the elementwise minimum.
	OpMin
)

func (o Op) String() string {
	switch o {
	case OpSum:
		return "sum"
	case OpMax:
		return "max"
	case OpMin:
		return "min"
	}
	return "?"
}

// combine reduces src into dst elementwise.
func (o Op) combine(dst, src []float64) {
	switch o {
	case OpSum:
		for i, v := range src {
			dst[i] += v
		}
	case OpMax:
		for i, v := range src {
			if v > dst[i] {
				dst[i] = v
			}
		}
	case OpMin:
		for i, v := range src {
			if v < dst[i] {
				dst[i] = v
			}
		}
	}
}

const (
	// TagSpaceBase is the first tag reserved for collectives. Pipeline P2P
	// tags are allocated sequentially from zero by the taskgraph compiler and
	// never reach this region.
	TagSpaceBase = 1 << 20

	// GroupTagWindow is the tag window owned by one group. Its size caps
	// group membership: every operation's tag window (2n+2 tags) must fit at
	// least twice, so 1<<12 admits groups of up to 1023 ranks — sized for
	// the multi-process dist transport, whose process groups can outgrow the
	// 63-rank ceiling the previous 1<<8 window imposed.
	//
	// Tag reuse within the window is governed separately by opReuseWindows:
	// operation windows wrap quickly regardless of how wide the group window
	// is, so steady-state collectives rebind warm persistent mailboxes
	// instead of walking thousands of cold tags between reuses. Wrapping is
	// safe regardless of rank skew: a mailbox delivers its messages in FIFO
	// order and has capacity one, so a send that reuses a tag whose previous
	// message is still unconsumed simply backpressures until the receiver —
	// which consumes tags in the same per-pair order every rank issues them
	// (the collective contract) — drains it.
	GroupTagWindow = 1 << 12

	// opReuseWindows is how many distinct operation tag windows a
	// communicator cycles through before reuse. Two is the safety minimum
	// (back-to-back reuse of a single window could match a laggard's send
	// from operation k to a peer's receive in operation k+1 under extreme
	// skew); sixteen keeps a healthy margin while bounding the number of
	// persistent mailboxes a steady-state ring touches — the mailbox-reuse
	// warmup horizon tests and calibration must cover.
	opReuseWindows = 16
)

// Group is a process group: an ordered set of transport actor IDs that
// perform collectives together, plus a private tag window.
type Group struct {
	tr      Transport
	ranks   []int // actor IDs; position in the slice is the rank
	tagBase int
	// senderOwns caches the transport's Send ownership contract: true for
	// serializing transports (dist), where the sender keeps its pooled chunk
	// after Send and must recycle it, false for reference-passing transports
	// (runtime.ChanTransport), where the receiver recycles.
	senderOwns bool
}

// GroupTagRange returns the half-open wire-tag window [lo, hi) that a group
// with the given ID uses for all its collective traffic. The transport's
// lossy-dtype plane keys on it: marking a gradient communicator's window
// lossy compresses exactly that group's frames, while every other tag —
// pipeline P2P, loss exchange, other groups — stays lossless.
func GroupTagRange(groupID int) (lo, hi int) {
	lo = TagSpaceBase + groupID*GroupTagWindow
	return lo, lo + GroupTagWindow
}

// NewGroup builds a process group over the given actor IDs. groupID selects
// the group's tag window and must be unique among groups that could share a
// (sender, receiver) actor pair; groups over disjoint actor sets may reuse
// IDs. Rank order is the order of `ranks`.
func NewGroup(tr Transport, ranks []int, groupID int) (*Group, error) {
	if len(ranks) == 0 {
		return nil, fmt.Errorf("collective: empty group")
	}
	if groupID < 0 {
		return nil, fmt.Errorf("collective: negative group ID %d", groupID)
	}
	// Every operation's tag window (2n+2) must fit the group window at least
	// twice, or opWindow's modulus degenerates to reusing one window
	// back-to-back.
	if maxRanks := (GroupTagWindow/2 - 2) / 2; len(ranks) > maxRanks {
		return nil, fmt.Errorf("collective: group of %d ranks exceeds the %d-rank tag-window limit", len(ranks), maxRanks)
	}
	seen := map[int]bool{}
	for _, r := range ranks {
		if seen[r] {
			return nil, fmt.Errorf("collective: duplicate actor %d in group", r)
		}
		seen[r] = true
	}
	senderOwns := false
	if so, ok := tr.(interface{ SenderOwnsSent() bool }); ok {
		senderOwns = so.SenderOwnsSent()
	}
	return &Group{
		tr:         tr,
		ranks:      append([]int(nil), ranks...),
		tagBase:    TagSpaceBase + groupID*GroupTagWindow,
		senderOwns: senderOwns,
	}, nil
}

// Size returns the number of ranks.
func (g *Group) Size() int { return len(g.ranks) }

// Ranks returns a copy of the member actor IDs in rank order.
func (g *Group) Ranks() []int { return append([]int(nil), g.ranks...) }

// Comm returns the communicator handle for the given rank (0-based position
// in the group). Each participating goroutine must use its own Communicator;
// the per-rank operation counter it carries is what makes tag allocation
// deterministic.
func (g *Group) Comm(rank int) (*Communicator, error) {
	if rank < 0 || rank >= len(g.ranks) {
		return nil, fmt.Errorf("collective: rank %d out of range for group of %d", rank, len(g.ranks))
	}
	return &Communicator{g: g, rank: rank}, nil
}

// CommForActor returns the communicator for the member with the given
// transport actor ID.
func (g *Group) CommForActor(actor int) (*Communicator, error) {
	for i, r := range g.ranks {
		if r == actor {
			return g.Comm(i)
		}
	}
	return nil, fmt.Errorf("collective: actor %d not in group %v", actor, g.ranks)
}

// Communicator is one rank's handle on a group. Not safe for concurrent use
// by multiple goroutines (like an NCCL communicator).
type Communicator struct {
	g    *Group
	rank int
	seq  int

	// flat is the reusable gradient-fusion scratch AllReduceBucketsInPlace
	// coalesces bucket tensors into; it grows to the largest bucket seen and
	// is then reused every step.
	flat []float64

	// Cached fusion plan: the gradient list's sizes are invariant across
	// steps, so bucket boundaries are computed once and reused until the
	// sizes or the bucket cap change.
	planSizes  []int
	planBounds [][2]int
	planBytes  int

	// vcounts is the reusable per-bucket shard-counts scratch of the
	// variable-shard collectives (vshard.go); vvalid is the segment-validity
	// scratch of the sparse reduce-scatter (2×group size: global validity
	// plus the per-bucket working copy).
	vcounts []int
	vvalid  []bool
}

// bucketPlan returns the fusion-bucket boundaries for ts, recomputing only
// when the tensor sizes or bucket cap differ from the cached plan (the
// steady-state path performs no allocations).
func (c *Communicator) bucketPlan(ts []*tensor.Tensor, bucketBytes int) [][2]int {
	same := c.planBounds != nil && c.planBytes == bucketBytes && len(c.planSizes) == len(ts)
	if same {
		for i, t := range ts {
			if c.planSizes[i] != t.Size() {
				same = false
				break
			}
		}
	}
	if same {
		return c.planBounds
	}
	c.planSizes = c.planSizes[:0]
	for _, t := range ts {
		c.planSizes = append(c.planSizes, t.Size())
	}
	c.planBounds = bucketBoundaries(c.planSizes, bucketBytes)
	c.planBytes = bucketBytes
	return c.planBounds
}

// flatScratch returns an n-element scratch slice private to this
// communicator, growing it on first use and reusing it afterwards.
func (c *Communicator) flatScratch(n int) []float64 {
	if cap(c.flat) < n {
		c.flat = make([]float64, n)
	}
	return c.flat[:n]
}

// Rank returns this communicator's rank within the group.
func (c *Communicator) Rank() int { return c.rank }

// Size returns the group size.
func (c *Communicator) Size() int { return c.g.Size() }

// opWindow reserves the next deterministic tag window for one collective
// operation and returns its base tag. The window must cover every distinct
// (ring step) tag the operation uses: 2(n-1) for all-reduce, n for broadcast,
// ceil(log2 n)+1 for barrier — opTagStride bounds them all. Windows cycle
// after min(opReuseWindows, GroupTagWindow/stride) operations, so warm
// mailbox reuse kicks in after a bounded warmup even under the wide group
// window large dist process groups need.
func (c *Communicator) opWindow() int {
	stride := c.opTagStride()
	opsPerWindow := GroupTagWindow / stride
	if opsPerWindow > opReuseWindows {
		opsPerWindow = opReuseWindows
	}
	base := c.g.tagBase + (c.seq%opsPerWindow)*stride
	c.seq++
	return base
}

func (c *Communicator) opTagStride() int {
	return 2*len(c.g.ranks) + 2
}

// next and prev are the ring neighbours in group-rank space.
func (c *Communicator) next() int { return c.g.ranks[(c.rank+1)%len(c.g.ranks)] }
func (c *Communicator) prev() int {
	n := len(c.g.ranks)
	return c.g.ranks[(c.rank-1+n)%n]
}

// self returns this rank's transport actor ID.
func (c *Communicator) self() int { return c.g.ranks[c.rank] }

// World derives process groups from a device mesh: actor IDs are the mesh's
// row-major device IDs, exactly how the runtime lays out DP×PP actor grids.
type World struct {
	tr   Transport
	mesh *mesh.Mesh
}

// NewWorld binds a mesh to a transport.
func NewWorld(tr Transport, m *mesh.Mesh) *World {
	return &World{tr: tr, mesh: m}
}

// GroupsAlong returns one process group per slice of the mesh along the
// named axis: every combination of the remaining axes' coordinates yields a
// group whose ranks vary only along `axis`, ordered by that coordinate.
// Group IDs are deterministic: slices are numbered by the row-major order of
// their fixed coordinates, offset so different axes get disjoint windows.
func (w *World) GroupsAlong(axis string) ([]*Group, error) {
	axisIdx := w.mesh.AxisIndex(axis)
	if axisIdx < 0 {
		return nil, fmt.Errorf("collective: mesh %v has no axis %q", w.mesh, axis)
	}
	axisSize := w.mesh.Axes[axisIdx].Size
	numSlices := w.mesh.NumDevices() / axisSize
	idOffset := 0
	for i := 0; i < axisIdx; i++ {
		idOffset += w.mesh.NumDevices() / w.mesh.Axes[i].Size
	}

	groups := make([]*Group, 0, numSlices)
	seen := map[int]bool{}
	for dev := 0; dev < w.mesh.NumDevices(); dev++ {
		coords := w.mesh.Coords(dev)
		if coords[axisIdx] != 0 {
			continue
		}
		ranks := make([]int, axisSize)
		for k := 0; k < axisSize; k++ {
			coords[axisIdx] = k
			ranks[k] = w.mesh.DeviceID(coords)
		}
		g, err := NewGroup(w.tr, ranks, idOffset+len(groups))
		if err != nil {
			return nil, err
		}
		for _, r := range ranks {
			if seen[r] {
				return nil, fmt.Errorf("collective: device %d in two slices along %q", r, axis)
			}
			seen[r] = true
		}
		groups = append(groups, g)
	}
	return groups, nil
}

// CommFor returns the communicator of the given device for its group along
// the named axis.
func (w *World) CommFor(axis string, device int) (*Communicator, error) {
	groups, err := w.GroupsAlong(axis)
	if err != nil {
		return nil, err
	}
	for _, g := range groups {
		for _, r := range g.ranks {
			if r == device {
				return g.CommForActor(device)
			}
		}
	}
	return nil, fmt.Errorf("collective: device %d not on mesh %v", device, w.mesh)
}
