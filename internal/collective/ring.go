package collective

import (
	"fmt"

	"repro/internal/tensor"
)

// chunkRange returns the [lo, hi) element range of chunk i when n elements
// are balanced over parts chunks: the first n%parts chunks get one extra
// element, so any length (including zero and odd sizes) and any ring size
// (including non-powers-of-two) partition cleanly.
func chunkRange(n, parts, i int) (lo, hi int) {
	base := n / parts
	rem := n % parts
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

// sendChunk ships data[lo:hi] as a flat tensor.
func (c *Communicator) sendChunk(to, tag int, data []float64, lo, hi int) {
	chunk := make([]float64, hi-lo)
	copy(chunk, data[lo:hi])
	t, _ := tensor.FromSlice(chunk, hi-lo)
	c.g.tr.Send(c.self(), to, tag, t)
}

// recvChunk receives a flat tensor and checks its length.
func (c *Communicator) recvChunk(from, tag, want int) ([]float64, error) {
	t, err := c.g.tr.Recv(c.self(), from, tag)
	if err != nil {
		return nil, err
	}
	if t.Size() != want {
		return nil, fmt.Errorf("collective: rank %d received chunk of %d elements, expected %d", c.rank, t.Size(), want)
	}
	return t.Data(), nil
}

// AllReduce performs a ring all-reduce of t with the given operator and
// returns the result (same shape on every rank). The tensor is split into
// Size() chunks; a reduce-scatter pass (n-1 steps) leaves each rank with one
// fully reduced chunk, and an all-gather pass (n-1 steps) circulates the
// reduced chunks — the bandwidth-optimal 2(n-1)/n·bytes schedule the
// simulator's perf.RingAllReduceTime models.
func (c *Communicator) AllReduce(t *tensor.Tensor, op Op) (*tensor.Tensor, error) {
	n := c.Size()
	base := c.opWindow() // consumed even on the fast paths to keep ranks in lockstep
	if n == 1 || t.Size() == 0 {
		return t.Clone(), nil
	}
	acc := t.Clone()
	data := acc.Data()
	L := len(data)

	// Reduce-scatter: at step s, send the chunk you most recently reduced
	// (rank-s) and fold the incoming chunk (rank-s-1) into the accumulator.
	for s := 0; s < n-1; s++ {
		sendIdx := ((c.rank-s)%n + n) % n
		recvIdx := ((c.rank-s-1)%n + n) % n
		slo, shi := chunkRange(L, n, sendIdx)
		rlo, rhi := chunkRange(L, n, recvIdx)
		c.sendChunk(c.next(), base+s, data, slo, shi)
		in, err := c.recvChunk(c.prev(), base+s, rhi-rlo)
		if err != nil {
			return nil, err
		}
		op.combine(data[rlo:rhi], in)
	}

	// All-gather: circulate the fully reduced chunks.
	for s := 0; s < n-1; s++ {
		sendIdx := ((c.rank+1-s)%n + n) % n
		recvIdx := ((c.rank-s)%n + n) % n
		slo, shi := chunkRange(L, n, sendIdx)
		rlo, rhi := chunkRange(L, n, recvIdx)
		c.sendChunk(c.next(), base+n-1+s, data, slo, shi)
		in, err := c.recvChunk(c.prev(), base+n-1+s, rhi-rlo)
		if err != nil {
			return nil, err
		}
		copy(data[rlo:rhi], in)
	}
	return acc, nil
}

// ReduceScatter reduces t across the group and returns this rank's chunk of
// the result as a flat tensor (chunk boundaries follow the balanced
// partition chunkRange uses everywhere, so AllGather(ReduceScatter(t))
// reassembles the full AllReduce result).
func (c *Communicator) ReduceScatter(t *tensor.Tensor, op Op) (*tensor.Tensor, error) {
	n := c.Size()
	base := c.opWindow()
	acc := t.Clone()
	data := acc.Data()
	L := len(data)
	if n == 1 {
		out, _ := tensor.FromSlice(data, L)
		return out, nil
	}
	// Shifted ring indices relative to AllReduce so that after n-1 steps
	// rank r owns fully reduced chunk r (the NCCL ReduceScatter layout).
	for s := 0; s < n-1; s++ {
		sendIdx := ((c.rank-s-1)%n + 2*n) % n
		recvIdx := ((c.rank-s-2)%n + 2*n) % n
		slo, shi := chunkRange(L, n, sendIdx)
		rlo, rhi := chunkRange(L, n, recvIdx)
		c.sendChunk(c.next(), base+s, data, slo, shi)
		in, err := c.recvChunk(c.prev(), base+s, rhi-rlo)
		if err != nil {
			return nil, err
		}
		op.combine(data[rlo:rhi], in)
	}
	lo, hi := chunkRange(L, n, c.rank)
	chunk := make([]float64, hi-lo)
	copy(chunk, data[lo:hi])
	out, _ := tensor.FromSlice(chunk, hi-lo)
	return out, nil
}

// AllGather concatenates every rank's shard along axis 0 in rank order.
// Shards may have different leading dimensions (sizes travel with the
// payloads around the ring) but must share trailing dimensions.
func (c *Communicator) AllGather(shard *tensor.Tensor) (*tensor.Tensor, error) {
	n := c.Size()
	base := c.opWindow()
	if n == 1 {
		return shard.Clone(), nil
	}
	if shard.Rank() == 0 {
		return nil, fmt.Errorf("collective: AllGather needs rank >= 1 shards (got a scalar)")
	}
	parts := make([]*tensor.Tensor, n)
	parts[c.rank] = shard
	// Ring circulation: at step s forward the shard originally owned by
	// rank-s, receive the one owned by rank-s-1.
	cur := shard
	for s := 0; s < n-1; s++ {
		c.g.tr.Send(c.self(), c.next(), base+s, cur)
		in, err := c.g.tr.Recv(c.self(), c.prev(), base+s)
		if err != nil {
			return nil, err
		}
		owner := ((c.rank-s-1)%n + n) % n
		parts[owner] = in
		cur = in
	}
	return tensor.Concat0(parts), nil
}

// Broadcast distributes root's tensor to every rank (ranks other than root
// pass t == nil or any placeholder; the root's value wins). The transfer is
// a chunked pipelined ring: the root streams n chunks to its successor and
// each intermediate rank forwards chunks as they arrive, so total time
// approaches one tensor transfer instead of n-1 sequential hops.
func (c *Communicator) Broadcast(t *tensor.Tensor, root int) (*tensor.Tensor, error) {
	n := c.Size()
	base := c.opWindow()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("collective: broadcast root %d out of range for group of %d", root, n)
	}
	if n == 1 {
		return t.Clone(), nil
	}
	dist := ((c.rank-root)%n + n) % n
	if dist == 0 {
		if t == nil {
			return nil, fmt.Errorf("collective: broadcast root has nil tensor")
		}
		data := t.Data()
		L := len(data)
		// Shape prologue so receivers can rebuild the tensor; then chunks.
		shape := t.Shape()
		shapeData := make([]float64, len(shape))
		for i, d := range shape {
			shapeData[i] = float64(d)
		}
		st, _ := tensor.FromSlice(shapeData, len(shape))
		c.g.tr.Send(c.self(), c.next(), base+n, st)
		for k := 0; k < n; k++ {
			lo, hi := chunkRange(L, n, k)
			c.sendChunk(c.next(), base+k, data, lo, hi)
		}
		return t.Clone(), nil
	}
	st, err := c.g.tr.Recv(c.self(), c.prev(), base+n)
	if err != nil {
		return nil, err
	}
	shape := make([]int, st.Size())
	for i, v := range st.Data() {
		shape[i] = int(v)
	}
	if dist < n-1 {
		c.g.tr.Send(c.self(), c.next(), base+n, st)
	}
	L := tensor.NumElements(shape)
	data := make([]float64, L)
	for k := 0; k < n; k++ {
		lo, hi := chunkRange(L, n, k)
		in, err := c.recvChunk(c.prev(), base+k, hi-lo)
		if err != nil {
			return nil, err
		}
		copy(data[lo:hi], in)
		if dist < n-1 {
			c.sendChunk(c.next(), base+k, data, lo, hi)
		}
	}
	return tensor.FromSlice(data, shape...)
}

// Barrier blocks until every rank of the group has entered it. It is a
// dissemination barrier: ceil(log2 n) rounds of token passes at
// exponentially growing distance, so each rank transitively hears from all.
func (c *Communicator) Barrier() error {
	n := c.Size()
	base := c.opWindow()
	if n == 1 {
		return nil
	}
	token := tensor.Scalar(1)
	round := 0
	for d := 1; d < n; d *= 2 {
		to := c.g.ranks[(c.rank+d)%n]
		from := c.g.ranks[((c.rank-d)%n+n)%n]
		c.g.tr.Send(c.self(), to, base+round, token)
		if _, err := c.g.tr.Recv(c.self(), from, base+round); err != nil {
			return err
		}
		round++
	}
	return nil
}
