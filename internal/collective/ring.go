package collective

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// Profiling scopes for the ring phases: send is chunk staging + transport
// handoff, wait is the blocking receive (ring skew + wire latency), reduce
// and copy are the arithmetic/memcpy consuming a received chunk. Spans carry
// the rank as their trace lane.
var (
	scCollSend   = obs.Scope("coll/send")
	scCollWait   = obs.Scope("coll/wait")
	scCollReduce = obs.Scope("coll/reduce")
	scCollCopy   = obs.Scope("coll/copy")
)

// Chunk transfer discipline: every chunked collective ships pooled scratch
// tensors (tensor.GetScratch) and reduces or copies incoming chunks directly
// into the rank-private accumulator. Ownership of a chunk transfers with the
// message — the sender never touches it again and the receiver recycles it
// after consuming — so steady-state collectives perform zero heap
// allocations and exactly one copy per hop (the profile Calibrate measures).

// chunkRange returns the [lo, hi) element range of chunk i when n elements
// are balanced over parts chunks: the first n%parts chunks get one extra
// element, so any length (including zero and odd sizes) and any ring size
// (including non-powers-of-two) partition cleanly.
func chunkRange(n, parts, i int) (lo, hi int) {
	base := n / parts
	rem := n % parts
	lo = i*base + min(i, rem)
	hi = lo + base
	if i < rem {
		hi++
	}
	return lo, hi
}

// sendChunk ships data[lo:hi] as a flat pooled tensor. Over a
// reference-passing transport the receiver owns (and recycles) the chunk;
// over a serializing transport (dist) the sender keeps it and recycles it
// here — otherwise every ring hop would orphan a pooled chunk to GC and the
// scratch pool could never warm on the distributed gradient-sync path.
func (c *Communicator) sendChunk(to, tag int, data []float64, lo, hi int) {
	h := obs.TrackTid(scCollSend, c.self())
	chunk := tensor.GetScratch(hi - lo)
	chunk.CopyFrom(data[lo:hi])
	c.g.tr.Send(c.self(), to, tag, chunk)
	if c.g.senderOwns {
		tensor.Recycle(chunk)
	}
	h.StopBytes(int64(hi-lo) * 8)
}

// combineChunk receives a chunk, reduces it into dst with op, and recycles
// the chunk's storage.
func (c *Communicator) combineChunk(from, tag int, dst []float64, op Op) error {
	hw := obs.TrackTid(scCollWait, c.self())
	t, err := c.g.tr.Recv(c.self(), from, tag)
	hw.Stop()
	if err != nil {
		return err
	}
	if t.Size() != len(dst) {
		return fmt.Errorf("collective: rank %d received chunk of %d elements, expected %d", c.rank, t.Size(), len(dst))
	}
	hr := obs.TrackTid(scCollReduce, c.self())
	op.combine(dst, t.Data())
	hr.StopBytes(int64(len(dst)) * 8)
	tensor.Recycle(t)
	return nil
}

// combineChunkSparse is combineChunk for the identity-marker protocol of
// ReduceScatterVSparseInto: a zero-length incoming chunk where data was
// expected is an identity marker (the sender had accumulated nothing for the
// segment) and leaves dst untouched. A full-size chunk is reduced into dst
// when the local accumulation is valid, or copied over it when not —
// bit-identical to reducing into an identity-filled buffer, without ever
// materializing one. Returns whether real data arrived.
func (c *Communicator) combineChunkSparse(from, tag int, dst []float64, dstValid bool, op Op) (bool, error) {
	hw := obs.TrackTid(scCollWait, c.self())
	t, err := c.g.tr.Recv(c.self(), from, tag)
	hw.Stop()
	if err != nil {
		return false, err
	}
	if t.Size() == 0 && len(dst) > 0 {
		tensor.Recycle(t) // identity marker: accumulated value unchanged
		return false, nil
	}
	if t.Size() != len(dst) {
		tensor.Recycle(t)
		return false, fmt.Errorf("collective: rank %d received chunk of %d elements, expected %d", c.rank, t.Size(), len(dst))
	}
	if dstValid {
		hr := obs.TrackTid(scCollReduce, c.self())
		op.combine(dst, t.Data())
		hr.StopBytes(int64(len(dst)) * 8)
	} else {
		hc := obs.TrackTid(scCollCopy, c.self())
		copy(dst, t.Data())
		hc.StopBytes(int64(len(dst)) * 8)
	}
	tensor.Recycle(t)
	return true, nil
}

// copyChunk receives a chunk, copies it over dst, and recycles its storage.
func (c *Communicator) copyChunk(from, tag int, dst []float64) error {
	hw := obs.TrackTid(scCollWait, c.self())
	t, err := c.g.tr.Recv(c.self(), from, tag)
	hw.Stop()
	if err != nil {
		return err
	}
	if t.Size() != len(dst) {
		return fmt.Errorf("collective: rank %d received chunk of %d elements, expected %d", c.rank, t.Size(), len(dst))
	}
	hc := obs.TrackTid(scCollCopy, c.self())
	copy(dst, t.Data())
	hc.StopBytes(int64(len(dst)) * 8)
	tensor.Recycle(t)
	return nil
}

// allReduceData ring-all-reduces data in place across the group: a
// reduce-scatter pass (n-1 steps) leaves each rank with one fully reduced
// chunk, and an all-gather pass (n-1 steps) circulates the reduced chunks —
// the bandwidth-optimal 2(n-1)/n·bytes schedule the simulator's
// perf.RingAllReduceTime models. data must be rank-private storage.
func (c *Communicator) allReduceData(base int, data []float64, op Op) error {
	n := c.Size()
	L := len(data)

	// Reduce-scatter: at step s, send the chunk you most recently reduced
	// (rank-s) and fold the incoming chunk (rank-s-1) into the accumulator.
	for s := 0; s < n-1; s++ {
		sendIdx := ((c.rank-s)%n + n) % n
		recvIdx := ((c.rank-s-1)%n + n) % n
		slo, shi := chunkRange(L, n, sendIdx)
		rlo, rhi := chunkRange(L, n, recvIdx)
		c.sendChunk(c.next(), base+s, data, slo, shi)
		if err := c.combineChunk(c.prev(), base+s, data[rlo:rhi], op); err != nil {
			return err
		}
	}

	// All-gather: circulate the fully reduced chunks.
	for s := 0; s < n-1; s++ {
		sendIdx := ((c.rank+1-s)%n + n) % n
		recvIdx := ((c.rank-s)%n + n) % n
		slo, shi := chunkRange(L, n, sendIdx)
		rlo, rhi := chunkRange(L, n, recvIdx)
		c.sendChunk(c.next(), base+n-1+s, data, slo, shi)
		if err := c.copyChunk(c.prev(), base+n-1+s, data[rlo:rhi]); err != nil {
			return err
		}
	}
	return nil
}

// AllReduce performs a ring all-reduce of t with the given operator and
// returns the result as a fresh tensor (same shape on every rank).
func (c *Communicator) AllReduce(t *tensor.Tensor, op Op) (*tensor.Tensor, error) {
	out := t.Clone()
	if err := c.AllReduceInto(out, out, op); err != nil {
		return nil, err
	}
	return out, nil
}

// AllReduceInto reduces src across the group into dst, which must have the
// same shape and be rank-private mutable storage (dst == src reduces in
// place). At steady state the operation performs no heap allocations: chunks
// come from the scratch pool and return to it on the receiving rank.
func (c *Communicator) AllReduceInto(dst, src *tensor.Tensor, op Op) error {
	if !tensor.SameShape(dst, src) {
		return fmt.Errorf("collective: AllReduceInto shape mismatch %v vs %v", dst.Shape(), src.Shape())
	}
	if dst.Borrowed() {
		return fmt.Errorf("collective: AllReduceInto destination is a borrowed view")
	}
	base := c.opWindow() // consumed even on the fast paths to keep ranks in lockstep
	if dst != src {
		dst.CopyFrom(src.Data())
	}
	if c.Size() == 1 || dst.Size() == 0 {
		return nil
	}
	return c.allReduceData(base, dst.Data(), op)
}

// ReduceScatter reduces t across the group and returns this rank's chunk of
// the result as a flat tensor (chunk boundaries follow the balanced
// partition chunkRange uses everywhere, so AllGather(ReduceScatter(t))
// reassembles the full AllReduce result).
func (c *Communicator) ReduceScatter(t *tensor.Tensor, op Op) (*tensor.Tensor, error) {
	n := c.Size()
	base := c.opWindow()
	L := t.Size()
	if n == 1 {
		return tensor.FromSlice(t.Data(), L)
	}
	w := tensor.GetScratch(L)
	w.CopyFrom(t.Data())
	data := w.Data()
	// Shifted ring indices relative to AllReduce so that after n-1 steps
	// rank r owns fully reduced chunk r (the NCCL ReduceScatter layout).
	for s := 0; s < n-1; s++ {
		sendIdx := ((c.rank-s-1)%n + 2*n) % n
		recvIdx := ((c.rank-s-2)%n + 2*n) % n
		slo, shi := chunkRange(L, n, sendIdx)
		rlo, rhi := chunkRange(L, n, recvIdx)
		c.sendChunk(c.next(), base+s, data, slo, shi)
		if err := c.combineChunk(c.prev(), base+s, data[rlo:rhi], op); err != nil {
			return nil, err
		}
	}
	lo, hi := chunkRange(L, n, c.rank)
	out, err := tensor.FromSlice(data[lo:hi], hi-lo)
	tensor.Recycle(w)
	return out, err
}

// AllGather concatenates every rank's shard along axis 0 in rank order.
// Shards may have different leading dimensions (sizes travel with the
// payloads around the ring) but must share trailing dimensions. Shard
// tensors are forwarded zero-copy: each hop relays the received tensor
// object itself, so no rank may mutate its shard until the gather returns on
// every rank.
func (c *Communicator) AllGather(shard *tensor.Tensor) (*tensor.Tensor, error) {
	n := c.Size()
	base := c.opWindow()
	if n == 1 {
		return shard.Clone(), nil
	}
	if shard.Rank() == 0 {
		return nil, fmt.Errorf("collective: AllGather needs rank >= 1 shards (got a scalar)")
	}
	parts := make([]*tensor.Tensor, n)
	parts[c.rank] = shard
	// Ring circulation: at step s forward the shard originally owned by
	// rank-s, receive the one owned by rank-s-1.
	cur := shard
	for s := 0; s < n-1; s++ {
		hs := obs.TrackTid(scCollSend, c.self())
		c.g.tr.Send(c.self(), c.next(), base+s, cur)
		hs.StopBytes(int64(cur.Size()) * 8)
		hw := obs.TrackTid(scCollWait, c.self())
		in, err := c.g.tr.Recv(c.self(), c.prev(), base+s)
		hw.Stop()
		if err != nil {
			return nil, err
		}
		owner := ((c.rank-s-1)%n + n) % n
		parts[owner] = in
		cur = in
	}
	out := tensor.Concat0(parts)
	if c.g.senderOwns {
		// Serializing transport: received parts are rank-private pooled
		// decodes, not shared relay objects — return them after the concat
		// copies them out. (Over a reference-passing transport the same
		// objects live on other ranks; recycling would corrupt them.)
		for i, p := range parts {
			if i != c.rank {
				tensor.Recycle(p)
			}
		}
	}
	return out, nil
}

// AllGatherInto gathers equal-shape shards from every rank into dst along
// axis 0 in rank order: dst row block r holds rank r's shard. dst must have
// leading dimension Size()×shard.Dim(0), identical trailing dimensions, and
// be rank-private mutable storage. Unlike AllGather, shards are never relayed
// as caller tensors: each rank copies its shard into a pooled chunk before
// the first hop, chunks move around the ring with ownership (the final
// receiver recycles them), and the caller's shard may be reused the moment
// the call returns. Zero heap allocations at steady state.
func (c *Communicator) AllGatherInto(dst, shard *tensor.Tensor) error {
	n := c.Size()
	base := c.opWindow() // consumed even on fast paths to keep ranks in lockstep
	if shard.Rank() == 0 || dst.Rank() != shard.Rank() {
		return fmt.Errorf("collective: AllGatherInto wants rank >= 1 shards and a matching destination, got shard %v dst %v", shard.Shape(), dst.Shape())
	}
	if dst.Borrowed() {
		return fmt.Errorf("collective: AllGatherInto destination is a borrowed view")
	}
	if dst.Dim(0) != n*shard.Dim(0) {
		return fmt.Errorf("collective: AllGatherInto destination leading dim %d, want %d×%d", dst.Dim(0), n, shard.Dim(0))
	}
	for i := 1; i < shard.Rank(); i++ {
		if dst.Dim(i) != shard.Dim(i) {
			return fmt.Errorf("collective: AllGatherInto trailing dims differ: shard %v dst %v", shard.Shape(), dst.Shape())
		}
	}
	stride := shard.Size()
	data := dst.Data()
	copy(data[c.rank*stride:(c.rank+1)*stride], shard.Data())
	if n == 1 || stride == 0 {
		return nil
	}
	// Seed the ring with a pooled copy of the local shard, then circulate:
	// at step s forward the chunk originally owned by rank-s and keep the
	// incoming chunk (owned by rank-s-1) for the next hop.
	cur := tensor.GetScratch(stride)
	cur.CopyFrom(shard.Data())
	for s := 0; s < n-1; s++ {
		hs := obs.TrackTid(scCollSend, c.self())
		c.g.tr.Send(c.self(), c.next(), base+s, cur)
		if c.g.senderOwns {
			tensor.Recycle(cur) // serialized; the relayed chunk stays ours
		}
		hs.StopBytes(int64(stride) * 8)
		hw := obs.TrackTid(scCollWait, c.self())
		in, err := c.g.tr.Recv(c.self(), c.prev(), base+s)
		hw.Stop()
		if err != nil {
			return err
		}
		if in.Size() != stride {
			return fmt.Errorf("collective: rank %d received chunk of %d elements, expected %d", c.rank, in.Size(), stride)
		}
		owner := ((c.rank-s-1)%n + n) % n
		hc := obs.TrackTid(scCollCopy, c.self())
		copy(data[owner*stride:(owner+1)*stride], in.Data())
		hc.StopBytes(int64(stride) * 8)
		cur = in
	}
	tensor.Recycle(cur) // final hop: this rank is the chunk's last reader
	return nil
}

// BroadcastInto distributes root's tensor in place: on the root, t is the
// source; on every other rank, t is rank-private mutable storage of the same
// shape that receives the payload. The transfer is the same chunked pipelined
// ring as Broadcast, but with the destination preallocated there is no shape
// prologue and no allocation: intermediate ranks copy each incoming pooled
// chunk into t and forward the chunk object itself, and the last rank in the
// chain recycles it.
func (c *Communicator) BroadcastInto(t *tensor.Tensor, root int) error {
	n := c.Size()
	base := c.opWindow() // consumed even on fast paths to keep ranks in lockstep
	if root < 0 || root >= n {
		return fmt.Errorf("collective: broadcast root %d out of range for group of %d", root, n)
	}
	if t == nil {
		return fmt.Errorf("collective: BroadcastInto needs a destination tensor on every rank")
	}
	if n == 1 {
		return nil
	}
	L := t.Size()
	data := t.Data()
	dist := ((c.rank-root)%n + n) % n
	if dist == 0 {
		for k := 0; k < n; k++ {
			lo, hi := chunkRange(L, n, k)
			c.sendChunk(c.next(), base+k, data, lo, hi)
		}
		return nil
	}
	if t.Borrowed() {
		return fmt.Errorf("collective: BroadcastInto destination is a borrowed view")
	}
	last := dist == n-1
	for k := 0; k < n; k++ {
		lo, hi := chunkRange(L, n, k)
		hw := obs.TrackTid(scCollWait, c.self())
		in, err := c.g.tr.Recv(c.self(), c.prev(), base+k)
		hw.Stop()
		if err != nil {
			return err
		}
		if in.Size() != hi-lo {
			return fmt.Errorf("collective: rank %d received chunk of %d elements, expected %d", c.rank, in.Size(), hi-lo)
		}
		hc := obs.TrackTid(scCollCopy, c.self())
		copy(data[lo:hi], in.Data())
		hc.StopBytes(int64(hi-lo) * 8)
		if !last {
			// Forward the chunk object itself; over a reference-passing
			// transport ownership moves on, over a serializing one we keep
			// (and recycle) it.
			c.g.tr.Send(c.self(), c.next(), base+k, in)
			if c.g.senderOwns {
				tensor.Recycle(in)
			}
		} else {
			tensor.Recycle(in)
		}
	}
	return nil
}

// Broadcast distributes root's tensor to every rank (ranks other than root
// pass t == nil or any placeholder; the root's value wins). The transfer is
// a chunked pipelined ring: the root streams n chunks to its successor and
// each intermediate rank forwards chunks as they arrive, so total time
// approaches one tensor transfer instead of n-1 sequential hops.
func (c *Communicator) Broadcast(t *tensor.Tensor, root int) (*tensor.Tensor, error) {
	n := c.Size()
	base := c.opWindow()
	if root < 0 || root >= n {
		return nil, fmt.Errorf("collective: broadcast root %d out of range for group of %d", root, n)
	}
	if n == 1 {
		return t.Clone(), nil
	}
	dist := ((c.rank-root)%n + n) % n
	if dist == 0 {
		if t == nil {
			return nil, fmt.Errorf("collective: broadcast root has nil tensor")
		}
		data := t.Data()
		L := len(data)
		// Shape prologue so receivers can rebuild the tensor; then chunks.
		shape := t.Shape()
		st := tensor.GetScratch(len(shape))
		for i, d := range shape {
			st.Data()[i] = float64(d)
		}
		c.g.tr.Send(c.self(), c.next(), base+n, st)
		if c.g.senderOwns {
			tensor.Recycle(st)
		}
		for k := 0; k < n; k++ {
			lo, hi := chunkRange(L, n, k)
			c.sendChunk(c.next(), base+k, data, lo, hi)
		}
		return t.Clone(), nil
	}
	st, err := c.g.tr.Recv(c.self(), c.prev(), base+n)
	if err != nil {
		return nil, err
	}
	shape := make([]int, st.Size())
	for i, v := range st.Data() {
		shape[i] = int(v)
	}
	last := dist == n-1
	if !last {
		// Forward the shape prologue tensor itself (see BroadcastInto's
		// relay ownership note).
		c.g.tr.Send(c.self(), c.next(), base+n, st)
		if c.g.senderOwns {
			tensor.Recycle(st)
		}
	} else {
		tensor.Recycle(st)
	}
	L := tensor.NumElements(shape)
	data := make([]float64, L)
	for k := 0; k < n; k++ {
		lo, hi := chunkRange(L, n, k)
		if err := c.copyChunk(c.prev(), base+k, data[lo:hi]); err != nil {
			return nil, err
		}
		if !last {
			c.sendChunk(c.next(), base+k, data, lo, hi)
		}
	}
	return tensor.View(data, shape...), nil
}

// barrierToken is the shared payload of every barrier message: barriers
// carry no data, so all ranks send the same immutable tensor.
var barrierToken = tensor.Scalar(1)

// Barrier blocks until every rank of the group has entered it. It is a
// dissemination barrier: ceil(log2 n) rounds of token passes at
// exponentially growing distance, so each rank transitively hears from all.
func (c *Communicator) Barrier() error {
	n := c.Size()
	base := c.opWindow()
	if n == 1 {
		return nil
	}
	round := 0
	for d := 1; d < n; d *= 2 {
		to := c.g.ranks[(c.rank+d)%n]
		from := c.g.ranks[((c.rank-d)%n+n)%n]
		c.g.tr.Send(c.self(), to, base+round, barrierToken)
		hw := obs.TrackTid(scCollWait, c.self())
		tok, err := c.g.tr.Recv(c.self(), from, base+round)
		hw.Stop()
		if err != nil {
			return err
		}
		if c.g.senderOwns {
			// Serializing transport: the received token is a pooled decode,
			// not the shared barrierToken object.
			tensor.Recycle(tok)
		}
		round++
	}
	return nil
}
