package collective

import (
	"fmt"
	"math"
	goruntime "runtime"
	"runtime/debug"
	"sync"
	"testing"

	"repro/internal/runtime"
	"repro/internal/tensor"
)

// unevenCounts builds a deterministic uneven partition of elems over n shards
// that always contains an empty shard for n >= 2: the balanced partition with
// the middle rank's allotment handed to its successor.
func unevenCounts(elems, n int) []int {
	counts := EvenCounts(elems, n)
	if n >= 2 {
		z := n / 2
		counts[(z+1)%n] += counts[z]
		counts[z] = 0
	}
	return counts
}

func TestEvenCountsMatchesChunkRange(t *testing.T) {
	for _, n := range []int{1, 3, 7, 64} {
		for _, parts := range []int{1, 2, 3, 5, 8} {
			counts := EvenCounts(n, parts)
			sum := 0
			for _, c := range counts {
				sum += c
			}
			if sum != n || len(counts) != parts {
				t.Fatalf("EvenCounts(%d,%d) = %v", n, parts, counts)
			}
		}
	}
}

// TestReduceScatterVIntoMatchesLocalSum checks the variable-shard
// reduce-scatter across every world size 1..8 (all non-powers-of-two
// included), even and uneven counts tables (uneven always contains an empty
// shard), and bucket caps that force both the single-bucket and the
// many-bucket path.
func TestReduceScatterVIntoMatchesLocalSum(t *testing.T) {
	const elems = 1003
	for n := 1; n <= 8; n++ {
		for _, layout := range []string{"even", "uneven"} {
			for _, bucketBytes := range []int{0, 512} {
				counts := EvenCounts(elems, n)
				if layout == "uneven" {
					counts = unevenCounts(elems, n)
				}
				t.Run(fmt.Sprintf("ranks=%d/%s/bucket=%d", n, layout, bucketBytes), func(t *testing.T) {
					want := make([]float64, elems)
					for r := 0; r < n; r++ {
						for i, v := range rankTensor(r, elems).Data() {
							want[i] += v
						}
					}
					outs := runGroup(t, n, func(c *Communicator) (*tensor.Tensor, error) {
						dst := tensor.New(counts[c.Rank()])
						err := c.ReduceScatterVInto(dst, rankTensor(c.Rank(), elems), counts, OpSum, bucketBytes)
						return dst, err
					})
					for r, got := range outs {
						lo, hi := vRange(counts, r)
						for i, v := range got.Data() {
							if math.Float64bits(v) != math.Float64bits(want[lo+i]) {
								t.Fatalf("rank %d shard [%d,%d) elem %d = %v, want %v", r, lo, hi, i, v, want[lo+i])
							}
						}
					}
				})
			}
		}
	}
}

// TestAllGatherVIntoReassemblesShards checks the variable-shard all-gather:
// every rank ends up with the concatenation of all shards at their counts
// offsets, for even/uneven (empty-shard) layouts across worlds 1..8.
func TestAllGatherVIntoReassemblesShards(t *testing.T) {
	const elems = 977
	for n := 1; n <= 8; n++ {
		for _, layout := range []string{"even", "uneven"} {
			counts := EvenCounts(elems, n)
			if layout == "uneven" {
				counts = unevenCounts(elems, n)
			}
			t.Run(fmt.Sprintf("ranks=%d/%s", n, layout), func(t *testing.T) {
				want := make([]float64, elems)
				for r := 0; r < n; r++ {
					lo, hi := vRange(counts, r)
					for i := lo; i < hi; i++ {
						want[i] = float64(r+1)*1000 + float64(i)
					}
				}
				outs := runGroup(t, n, func(c *Communicator) (*tensor.Tensor, error) {
					lo, hi := vRange(counts, c.Rank())
					shard := tensor.New(hi - lo)
					for i := lo; i < hi; i++ {
						shard.Data()[i-lo] = float64(c.Rank()+1)*1000 + float64(i)
					}
					dst := tensor.New(elems)
					err := c.AllGatherVInto(dst, shard, counts)
					// The shard buffer must be reusable immediately: scribble
					// over it before returning to catch aliasing with
					// in-flight ring chunks.
					for i := range shard.Data() {
						shard.Data()[i] = -7
					}
					return dst, err
				})
				for r, got := range outs {
					for i, v := range got.Data() {
						if v != want[i] {
							t.Fatalf("rank %d elem %d = %v, want %v", r, i, v, want[i])
						}
					}
				}
			})
		}
	}
}

// TestReduceScatterVThenAllGatherVEqualsAllReduce pins the composition the
// sharded epilogue relies on: RS-V followed by AGV over the same counts table
// reproduces the dense AllReduce result bit-for-bit on every rank.
func TestReduceScatterVThenAllGatherVEqualsAllReduce(t *testing.T) {
	const elems = 640
	for _, n := range []int{2, 3, 5, 7, 8} {
		counts := unevenCounts(elems, n)
		t.Run(fmt.Sprintf("ranks=%d", n), func(t *testing.T) {
			dense := runGroup(t, n, func(c *Communicator) (*tensor.Tensor, error) {
				return c.AllReduce(rankTensor(c.Rank(), elems), OpSum)
			})
			sharded := runGroup(t, n, func(c *Communicator) (*tensor.Tensor, error) {
				shard := tensor.New(counts[c.Rank()])
				if err := c.ReduceScatterVInto(shard, rankTensor(c.Rank(), elems), counts, OpSum, 0); err != nil {
					return nil, err
				}
				dst := tensor.New(elems)
				err := c.AllGatherVInto(dst, shard, counts)
				return dst, err
			})
			for r := range sharded {
				for i, v := range sharded[r].Data() {
					if math.Float64bits(v) != math.Float64bits(dense[r].Data()[i]) {
						t.Fatalf("rank %d elem %d: sharded %v != dense %v", r, i, v, dense[r].Data()[i])
					}
				}
			}
		})
	}
}

// TestVShardValidation exercises the error paths: malformed counts tables and
// mis-sized buffers must be rejected before any traffic is sent.
func TestVShardValidation(t *testing.T) {
	tr := runtime.NewChanTransport()
	g, err := NewGroup(tr, []int{0, 1}, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, _ := g.Comm(0)
	full := tensor.New(10)
	shard := tensor.New(5)
	cases := []struct {
		name string
		fn   func() error
	}{
		{"rsv-bad-len", func() error { return c.ReduceScatterVInto(shard, full, []int{10}, OpSum, 0) }},
		{"rsv-negative", func() error { return c.ReduceScatterVInto(shard, full, []int{12, -2}, OpSum, 0) }},
		{"rsv-bad-sum", func() error { return c.ReduceScatterVInto(shard, full, []int{4, 4}, OpSum, 0) }},
		{"rsv-bad-dst", func() error { return c.ReduceScatterVInto(tensor.New(3), full, []int{5, 5}, OpSum, 0) }},
		{"agv-bad-len", func() error { return c.AllGatherVInto(full, shard, []int{5, 4, 1}) }},
		{"agv-bad-sum", func() error { return c.AllGatherVInto(full, shard, []int{5, 6}) }},
		{"agv-bad-shard", func() error { return c.AllGatherVInto(full, tensor.New(4), []int{5, 5}) }},
	}
	for _, tc := range cases {
		if err := tc.fn(); err == nil {
			t.Errorf("%s: expected an error", tc.name)
		}
	}
}

// vshardHarness pre-spawns one goroutine per rank running a full sharded
// exchange round (refill contribution → ReduceScatterVInto → AllGatherVInto)
// so the measurement loop adds no goroutine or closure allocations.
type vshardHarness struct {
	n      int
	counts []int
	kick   []chan struct{}
	done   chan error
	fulls  []*tensor.Tensor
	close  func()
}

func newVShardHarness(tb testing.TB, n, elems int, counts []int) *vshardHarness {
	tb.Helper()
	tr := runtime.NewChanTransport()
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = i
	}
	g, err := NewGroup(tr, ranks, 0)
	if err != nil {
		tb.Fatal(err)
	}
	h := &vshardHarness{
		n:      n,
		counts: counts,
		kick:   make([]chan struct{}, n),
		done:   make(chan error, n),
		fulls:  make([]*tensor.Tensor, n),
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < n; r++ {
		h.kick[r] = make(chan struct{})
		full := tensor.GetScratch(elems)
		h.fulls[r] = full
		shard := tensor.GetScratch(counts[r])
		comm, err := g.Comm(r)
		if err != nil {
			tb.Fatal(err)
		}
		wg.Add(1)
		go func(r int, comm *Communicator, full, shard *tensor.Tensor) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				case <-h.kick[r]:
				}
				// RS-V consumes full as scratch, so refill the contribution
				// every round (allocation-free).
				for i, d := 0, full.Data(); i < len(d); i++ {
					d[i] = float64(r + 1)
				}
				if err := comm.ReduceScatterVInto(shard, full, counts, OpSum, DefaultBucketBytes); err != nil {
					h.done <- err
					continue
				}
				h.done <- comm.AllGatherVInto(full, shard, counts)
			}
		}(r, comm, full, shard)
	}
	h.close = func() { close(stop); wg.Wait() }
	return h
}

func (h *vshardHarness) round() error {
	for r := 0; r < h.n; r++ {
		h.kick[r] <- struct{}{}
	}
	var first error
	for r := 0; r < h.n; r++ {
		if err := <-h.done; err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (h *vshardHarness) warm(tb testing.TB) {
	tb.Helper()
	rounds := GroupTagWindow/(2*h.n+2) + 2
	for i := 0; i < rounds; i++ {
		if err := h.round(); err != nil {
			tb.Fatal(err)
		}
	}
}

// TestVShardZeroAllocSteadyState is the allocation regression gate for the
// variable-shard exchange, matching the AllReduce one: once mailboxes and
// scratch pools are warm, a ReduceScatterVInto + AllGatherVInto round over an
// uneven counts table (empty shard included) must not allocate at all.
func TestVShardZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; count is only meaningful without -race")
	}
	const n, elems = 4, 1 << 14
	counts := unevenCounts(elems, n)
	h := newVShardHarness(t, n, elems, counts)
	defer h.close()
	h.warm(t)

	// The scratch pool is sync.Pool-backed; a GC mid-measurement would drop
	// its contents and charge the refill to the collective.
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	goruntime.GC()

	allocs := testing.AllocsPerRun(50, func() {
		if err := h.round(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state sharded exchange allocates %.2f objects per round, want 0", allocs)
	}

	// Sanity: the round actually reduced — every element is sum(1..n).
	want := float64(n * (n + 1) / 2)
	for r, full := range h.fulls {
		for i, v := range full.Data() {
			if v != want {
				t.Fatalf("rank %d elem %d = %v, want %v", r, i, v, want)
			}
		}
	}
}

// sparseContrib builds rank r's contiguous contribution range for the sparse
// reduce-scatter tests: deliberately misaligned with the counts partition
// (so range boundaries cut through shard segments), with rank 1 contributing
// nothing and a gap nobody covers at the very end of the flat range.
func sparseContrib(elems, n, r int) (lo, hi int) {
	if r == 1 && n > 2 {
		return 0, 0 // empty contribution: the rank still rides the ring
	}
	span := elems / (n + 1) // leaves [n*span, elems) uncovered by anyone
	lo = r * span
	hi = lo + span
	if hi > elems {
		hi = elems
	}
	return lo, hi
}

// TestReduceScatterVSparseBitIdenticalToFiller is the satellite pin: a rank
// that owns no producers for a region contributes a zero-length shard
// instead of a materialized −0.0 buffer, and the result must be
// bit-identical to the dense filler path — including the signs of zeros in
// regions nobody contributed to, denormals, and ±0.0 payloads.
func TestReduceScatterVSparseBitIdenticalToFiller(t *testing.T) {
	const elems = 1003
	negZero := math.Copysign(0, -1)
	payload := func(r, i int) float64 {
		switch i % 5 {
		case 0:
			return negZero
		case 1:
			return 0.0
		case 2:
			return 5e-324 // smallest denormal
		case 3:
			return -float64(r+1) * 1.5
		default:
			return float64(r+1)*100 + float64(i)
		}
	}
	for n := 2; n <= 5; n++ {
		for _, layout := range []string{"even", "uneven"} {
			for _, bucketBytes := range []int{0, 512} {
				counts := EvenCounts(elems, n)
				if layout == "uneven" {
					counts = unevenCounts(elems, n)
				}
				t.Run(fmt.Sprintf("ranks=%d/%s/bucket=%d", n, layout, bucketBytes), func(t *testing.T) {
					// Dense filler path: full −0.0 buffer with the payload
					// written into the contribution range.
					dense := runGroup(t, n, func(c *Communicator) (*tensor.Tensor, error) {
						data := tensor.New(elems)
						d := data.Data()
						for i := range d {
							d[i] = negZero
						}
						lo, hi := sparseContrib(elems, n, c.Rank())
						for i := lo; i < hi; i++ {
							d[i] = payload(c.Rank(), i)
						}
						dst := tensor.New(counts[c.Rank()])
						err := c.ReduceScatterVInto(dst, data, counts, OpSum, bucketBytes)
						return dst, err
					})
					// Sparse path: payload only; everything outside the
					// contribution range is a NaN canary — if the collective
					// ever reads unfilled garbage, the result shows it.
					sparse := runGroup(t, n, func(c *Communicator) (*tensor.Tensor, error) {
						data := tensor.New(elems)
						d := data.Data()
						for i := range d {
							d[i] = math.NaN()
						}
						lo, hi := sparseContrib(elems, n, c.Rank())
						for i := lo; i < hi; i++ {
							d[i] = payload(c.Rank(), i)
						}
						dst := tensor.New(counts[c.Rank()])
						err := c.ReduceScatterVSparseInto(dst, data, counts, lo, hi, OpSum, bucketBytes)
						return dst, err
					})
					for r := 0; r < n; r++ {
						dd, sd := dense[r].Data(), sparse[r].Data()
						if len(dd) != len(sd) {
							t.Fatalf("rank %d shard sizes differ: %d vs %d", r, len(dd), len(sd))
						}
						for i := range dd {
							if math.Float64bits(dd[i]) != math.Float64bits(sd[i]) {
								t.Fatalf("rank %d elem %d: dense %v (%016x) vs sparse %v (%016x)",
									r, i, dd[i], math.Float64bits(dd[i]), sd[i], math.Float64bits(sd[i]))
							}
						}
					}
				})
			}
		}
	}
}

// TestReduceScatterVSparseSingleRank pins the n==1 fast path: the valid range
// copies through, the rest is the sum identity.
func TestReduceScatterVSparseSingleRank(t *testing.T) {
	const elems = 64
	outs := runGroup(t, 1, func(c *Communicator) (*tensor.Tensor, error) {
		data := tensor.New(elems)
		for i := range data.Data() {
			data.Data()[i] = math.NaN()
		}
		for i := 10; i < 20; i++ {
			data.Data()[i] = float64(i)
		}
		dst := tensor.New(elems)
		err := c.ReduceScatterVSparseInto(dst, data, []int{elems}, 10, 20, OpSum, 0)
		return dst, err
	})
	d := outs[0].Data()
	for i := range d {
		switch {
		case i >= 10 && i < 20:
			if d[i] != float64(i) {
				t.Fatalf("elem %d = %v, want %v", i, d[i], float64(i))
			}
		default:
			if math.Float64bits(d[i]) != math.Float64bits(math.Copysign(0, -1)) {
				t.Fatalf("elem %d = %v (%016x), want -0.0", i, d[i], math.Float64bits(d[i]))
			}
		}
	}
}

// TestReduceScatterVSparseValidation covers the sparse-specific error paths.
func TestReduceScatterVSparseValidation(t *testing.T) {
	tr := runtime.NewChanTransport()
	g, err := NewGroup(tr, []int{0}, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := g.Comm(0)
	if err != nil {
		t.Fatal(err)
	}
	data := tensor.New(10)
	dst := tensor.New(10)
	if err := c.ReduceScatterVSparseInto(dst, data, []int{10}, 0, 10, OpMax, 0); err == nil {
		t.Fatal("non-sum op accepted")
	}
	if err := c.ReduceScatterVSparseInto(dst, data, []int{10}, -1, 5, OpSum, 0); err == nil {
		t.Fatal("negative contribLo accepted")
	}
	if err := c.ReduceScatterVSparseInto(dst, data, []int{10}, 5, 11, OpSum, 0); err == nil {
		t.Fatal("out-of-range contribHi accepted")
	}
	if err := c.ReduceScatterVSparseInto(dst, data, []int{10}, 7, 3, OpSum, 0); err == nil {
		t.Fatal("inverted contribution range accepted")
	}
}
