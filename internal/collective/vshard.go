package collective

import (
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// Variable-shard collectives: ReduceScatterVInto and AllGatherVInto operate
// on a flat buffer partitioned by an explicit per-rank counts table instead
// of the balanced chunkRange partition. They are the exchange primitives of
// the ZeRO-style sharded optimizer epilogue: counts come from the owner-major
// gradient layout, so shards are uneven in general and may be empty (a rank
// that owns no entries still participates in every ring step with zero-size
// chunks to keep tags in lockstep).

// EvenCounts returns the balanced partition of n elements over parts shards
// (the same split chunkRange uses): the first n%parts shards get one extra
// element. It is the canonical counts table when no ownership structure
// dictates a different one.
func EvenCounts(n, parts int) []int {
	out := make([]int, parts)
	for i := range out {
		lo, hi := chunkRange(n, parts, i)
		out[i] = hi - lo
	}
	return out
}

// vRange returns the [lo, hi) element range of shard i under the counts
// partition. O(len(counts)) and allocation-free — ring loops call it per step
// rather than materializing a prefix-sum table.
func vRange(counts []int, i int) (lo, hi int) {
	for k := 0; k < i; k++ {
		lo += counts[k]
	}
	return lo, lo + counts[i]
}

// checkCounts validates a counts table against the group size and total
// element count.
func (c *Communicator) checkCounts(counts []int, total int) error {
	if len(counts) != c.Size() {
		return fmt.Errorf("collective: counts table has %d entries for a group of %d", len(counts), c.Size())
	}
	sum := 0
	for r, cnt := range counts {
		if cnt < 0 {
			return fmt.Errorf("collective: negative shard count %d for rank %d", cnt, r)
		}
		sum += cnt
	}
	if sum != total {
		return fmt.Errorf("collective: counts sum to %d, want %d", sum, total)
	}
	return nil
}

// vcountsScratch returns the communicator-private per-bucket counts scratch,
// grown once and reused (the steady-state path performs no allocations).
func (c *Communicator) vcountsScratch(n int) []int {
	if cap(c.vcounts) < n {
		c.vcounts = make([]int, n)
	}
	return c.vcounts[:n]
}

// ReduceScatterVInto ring-reduce-scatters data across the group under an
// explicit counts partition: every rank passes a rank-private flat buffer of
// sum(counts) elements holding its local contribution, and on return dst
// (counts[rank] elements) holds the fully reduced shard [start(rank),
// start(rank)+counts[rank]) of the elementwise reduction. data is consumed as
// in-place scratch — its contents are partially reduced garbage afterwards.
//
// The transfer is bucketed like AllReduceBucketsInPlace: the flat range is
// cut into buckets of at most bucketBytes (<=0 selects DefaultBucketBytes)
// and each bucket runs one ring pass over the per-rank overlap segments, so
// in-flight chunk memory is bounded regardless of model size. Shards may be
// uneven or empty; empty segments travel as zero-size chunks so every rank
// executes the identical tag schedule. Zero heap allocations at steady state.
func (c *Communicator) ReduceScatterVInto(dst, data *tensor.Tensor, counts []int, op Op, bucketBytes int) error {
	n := c.Size()
	total := data.Size()
	if err := c.checkCounts(counts, total); err != nil {
		return err
	}
	if dst.Size() != counts[c.rank] {
		return fmt.Errorf("collective: ReduceScatterVInto destination has %d elements, rank %d owns %d", dst.Size(), c.rank, counts[c.rank])
	}
	if dst.Borrowed() || data.Borrowed() {
		return fmt.Errorf("collective: ReduceScatterVInto buffers must not be borrowed views")
	}
	myLo, myHi := vRange(counts, c.rank)
	if n == 1 {
		c.opWindow() // consumed even on the fast path to keep counters uniform
		copy(dst.Data(), data.Data()[myLo:myHi])
		return nil
	}
	if bucketBytes <= 0 {
		bucketBytes = DefaultBucketBytes
	}
	numBuckets := (total*bytesPerElem + bucketBytes - 1) / bucketBytes
	if numBuckets < 1 {
		numBuckets = 1 // total == 0 still runs one (empty-chunk) pass
	}
	bcounts := c.vcountsScratch(n)
	full := data.Data()
	dstOff := 0
	for b := 0; b < numBuckets; b++ {
		blo, bhi := chunkRange(total, numBuckets, b)
		// Per-rank overlap of the global counts partition with this bucket.
		gs := 0
		for r := 0; r < n; r++ {
			ge := gs + counts[r]
			lo, hi := max(gs, blo), min(ge, bhi)
			if hi < lo {
				hi = lo
			}
			bcounts[r] = hi - lo
			gs = ge
		}
		base := c.opWindow()
		sub := full[blo:bhi]
		// Shifted ring indices (the NCCL ReduceScatter layout): after n-1
		// steps rank r holds the fully reduced segment r of this bucket.
		for s := 0; s < n-1; s++ {
			sendIdx := ((c.rank-s-1)%n + 2*n) % n
			recvIdx := ((c.rank-s-2)%n + 2*n) % n
			slo, shi := vRange(bcounts, sendIdx)
			rlo, rhi := vRange(bcounts, recvIdx)
			c.sendChunk(c.next(), base+s, sub, slo, shi)
			if err := c.combineChunk(c.prev(), base+s, sub[rlo:rhi], op); err != nil {
				return fmt.Errorf("collective: ReduceScatterVInto bucket %d: %w", b, err)
			}
		}
		lo, hi := vRange(bcounts, c.rank)
		copy(dst.Data()[dstOff:dstOff+(hi-lo)], sub[lo:hi])
		dstOff += hi - lo
	}
	if dstOff != myHi-myLo {
		return fmt.Errorf("collective: ReduceScatterVInto reassembled %d elements for rank %d, want %d", dstOff, c.rank, myHi-myLo)
	}
	return nil
}

// sumIdentity is the IEEE-754 additive identity: x + (−0.0) is bit-identical
// to x for every x (including ±0.0), so segments nobody contributed to reduce
// to −0.0 — exactly what the dense filler path produces when every rank
// contributes a −0.0 buffer.
var sumIdentity = math.Copysign(0, -1)

// vvalidScratch returns the communicator-private 2n-element validity scratch
// (global validity + per-bucket working copy), grown once and reused.
func (c *Communicator) vvalidScratch(n int) []bool {
	if cap(c.vvalid) < 2*n {
		c.vvalid = make([]bool, 2*n)
	}
	return c.vvalid[:2*n]
}

// ReduceScatterVSparseInto is ReduceScatterVInto for a rank whose
// contribution is confined to the contiguous element range [contribLo,
// contribHi) of the flat buffer: instead of materializing the additive
// identity (−0.0) across every element it does not produce — the dense
// filler path — the rank ships zero-length identity-marker chunks for
// segments it has nothing for, and receivers copy (rather than reduce) the
// first real chunk of a segment. data outside the contribution range is
// never read except in the at-most-two shard segments the range boundaries
// cut through, which are identity-filled in place up front. The result is
// bit-identical to the dense path (x + (−0.0) == x bitwise, in any
// combination order) while skipping both the O(total) fill and the wire
// traffic for untouched segments. OpSum only — the marker protocol encodes
// the sum identity. An empty contribution (contribLo == contribHi) is legal:
// the rank still participates in every ring step.
func (c *Communicator) ReduceScatterVSparseInto(dst, data *tensor.Tensor, counts []int, contribLo, contribHi int, op Op, bucketBytes int) error {
	if op != OpSum {
		return fmt.Errorf("collective: ReduceScatterVSparseInto supports OpSum only (the identity-marker protocol encodes the sum identity)")
	}
	n := c.Size()
	total := data.Size()
	if err := c.checkCounts(counts, total); err != nil {
		return err
	}
	if dst.Size() != counts[c.rank] {
		return fmt.Errorf("collective: ReduceScatterVSparseInto destination has %d elements, rank %d owns %d", dst.Size(), c.rank, counts[c.rank])
	}
	if dst.Borrowed() || data.Borrowed() {
		return fmt.Errorf("collective: ReduceScatterVSparseInto buffers must not be borrowed views")
	}
	if contribLo < 0 || contribHi > total || contribLo > contribHi {
		return fmt.Errorf("collective: contribution range [%d, %d) outside flat range [0, %d)", contribLo, contribHi, total)
	}
	full := data.Data()
	valid := c.vvalidScratch(n)
	gvalid, bvalid := valid[:n], valid[n:]
	// Global per-shard validity: a shard segment is valid when the
	// contribution range overlaps it. The at-most-two segments the range
	// boundaries cut through get their non-contributed portions
	// identity-filled so the whole segment can travel as real data.
	gs := 0
	for r := 0; r < n; r++ {
		ge := gs + counts[r]
		olo, ohi := max(gs, contribLo), min(ge, contribHi)
		gvalid[r] = olo < ohi
		if gvalid[r] {
			for i := gs; i < olo; i++ {
				full[i] = sumIdentity
			}
			for i := ohi; i < ge; i++ {
				full[i] = sumIdentity
			}
		}
		gs = ge
	}
	myLo, myHi := vRange(counts, c.rank)
	if n == 1 {
		c.opWindow() // consumed even on the fast path to keep counters uniform
		out := dst.Data()
		if gvalid[0] {
			copy(out, full[myLo:myHi])
		} else {
			for i := range out {
				out[i] = sumIdentity
			}
		}
		return nil
	}
	if bucketBytes <= 0 {
		bucketBytes = DefaultBucketBytes
	}
	numBuckets := (total*bytesPerElem + bucketBytes - 1) / bucketBytes
	if numBuckets < 1 {
		numBuckets = 1
	}
	bcounts := c.vcountsScratch(n)
	dstOff := 0
	for b := 0; b < numBuckets; b++ {
		blo, bhi := chunkRange(total, numBuckets, b)
		gs := 0
		for r := 0; r < n; r++ {
			ge := gs + counts[r]
			lo, hi := max(gs, blo), min(ge, bhi)
			if hi < lo {
				hi = lo
			}
			bcounts[r] = hi - lo
			// A bucket piece of shard r inherits r's global validity (the
			// boundary fill above already made partial segments whole).
			bvalid[r] = gvalid[r]
			gs = ge
		}
		base := c.opWindow()
		sub := full[blo:bhi]
		for s := 0; s < n-1; s++ {
			sendIdx := ((c.rank-s-1)%n + 2*n) % n
			recvIdx := ((c.rank-s-2)%n + 2*n) % n
			slo, shi := vRange(bcounts, sendIdx)
			rlo, rhi := vRange(bcounts, recvIdx)
			if bvalid[sendIdx] {
				c.sendChunk(c.next(), base+s, sub, slo, shi)
			} else {
				// Identity marker: zero-length chunk in place of a segment
				// this rank has accumulated nothing for. Tags stay in
				// lockstep; the receiver's accumulated value is unchanged.
				c.sendChunk(c.next(), base+s, sub, slo, slo)
			}
			gotData, err := c.combineChunkSparse(c.prev(), base+s, sub[rlo:rhi], bvalid[recvIdx], op)
			if err != nil {
				return fmt.Errorf("collective: ReduceScatterVSparseInto bucket %d: %w", b, err)
			}
			if gotData {
				bvalid[recvIdx] = true
			}
		}
		lo, hi := vRange(bcounts, c.rank)
		out := dst.Data()[dstOff : dstOff+(hi-lo)]
		if bvalid[c.rank] {
			copy(out, sub[lo:hi])
		} else {
			// No rank contributed to this segment: the dense path would have
			// summed world copies of −0.0, which is −0.0.
			for i := range out {
				out[i] = sumIdentity
			}
		}
		dstOff += hi - lo
	}
	if dstOff != myHi-myLo {
		return fmt.Errorf("collective: ReduceScatterVSparseInto reassembled %d elements for rank %d, want %d", dstOff, c.rank, myHi-myLo)
	}
	return nil
}

// AllGatherVInto gathers variable-size shards from every rank into dst under
// an explicit counts partition: rank r contributes shard (counts[r] elements)
// and dst (sum(counts) elements, rank-private mutable storage) receives every
// rank's shard at its counts offset. Like AllGatherInto, the caller's shard
// is copied into a pooled chunk before the first hop and chunks circulate the
// ring with ownership — the shard buffer may be reused the moment the call
// returns, and whoever receives a chunk last recycles it. Shards may be
// uneven or empty (empty shards travel as zero-size chunks so the ring stays
// in lockstep). Zero heap allocations at steady state.
func (c *Communicator) AllGatherVInto(dst, shard *tensor.Tensor, counts []int) error {
	n := c.Size()
	total := dst.Size()
	if err := c.checkCounts(counts, total); err != nil {
		return err
	}
	if shard.Size() != counts[c.rank] {
		return fmt.Errorf("collective: AllGatherVInto shard has %d elements, rank %d owns %d", shard.Size(), c.rank, counts[c.rank])
	}
	if dst.Borrowed() {
		return fmt.Errorf("collective: AllGatherVInto destination is a borrowed view")
	}
	base := c.opWindow() // consumed even on fast paths to keep ranks in lockstep
	data := dst.Data()
	myLo, myHi := vRange(counts, c.rank)
	copy(data[myLo:myHi], shard.Data())
	if n == 1 || total == 0 {
		return nil
	}
	// Seed the ring with a pooled copy of the local shard, then circulate: at
	// step s forward the chunk originally owned by rank-s and keep the
	// incoming chunk (owned by rank-s-1) for the next hop.
	cur := tensor.GetScratch(counts[c.rank])
	cur.CopyFrom(shard.Data())
	for s := 0; s < n-1; s++ {
		hs := obs.TrackTid(scCollSend, c.self())
		sent := cur.Size() // read before Recycle: the pool may rehome cur instantly
		c.g.tr.Send(c.self(), c.next(), base+s, cur)
		if c.g.senderOwns {
			tensor.Recycle(cur) // serialized; the relayed chunk stays ours
		}
		hs.StopBytes(int64(sent) * 8)
		hw := obs.TrackTid(scCollWait, c.self())
		in, err := c.g.tr.Recv(c.self(), c.prev(), base+s)
		hw.Stop()
		if err != nil {
			return err
		}
		owner := ((c.rank-s-1)%n + n) % n
		if in.Size() != counts[owner] {
			return fmt.Errorf("collective: rank %d received shard of %d elements from rank %d, expected %d", c.rank, in.Size(), owner, counts[owner])
		}
		olo, ohi := vRange(counts, owner)
		hc := obs.TrackTid(scCollCopy, c.self())
		copy(data[olo:ohi], in.Data())
		hc.StopBytes(int64(ohi-olo) * 8)
		cur = in
	}
	tensor.Recycle(cur) // final hop: this rank is the chunk's last reader
	return nil
}

// MeasureShardedExchange times the ZeRO epilogue's collective pair — a
// bucketed ReduceScatterV of elems float64 elements into balanced per-rank
// shards followed by an AllGatherV of those shards — over n ranks on tr,
// mirroring MeasureAllReduce's harness: barrier-aligned starts, warmups that
// cover the tag-reuse cycle, and the slowest rank's duration averaged over
// the timed iterations. Returns the steady-state duration of the pair and
// rank 0's gathered tensor for correctness checks.
func MeasureShardedExchange(tr Transport, n, elems, bucketBytes int) (time.Duration, *tensor.Tensor, error) {
	const warmups, iters = 24, 5
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = i
	}
	g, err := NewGroup(tr, ranks, 0)
	if err != nil {
		return 0, nil, err
	}
	counts := EvenCounts(elems, n)

	durs := make([][iters]time.Duration, n)
	outs := make([]*tensor.Tensor, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			comm, err := g.Comm(r)
			if err != nil {
				errs[r] = err
				return
			}
			data := make([]float64, elems)
			for i := range data {
				data[i] = float64(r + 1)
			}
			in, err := tensor.FromSlice(data, elems)
			if err != nil {
				errs[r] = err
				return
			}
			work := in.Clone()
			shard := tensor.GetScratch(counts[r])
			out := tensor.GetScratch(elems)
			defer tensor.Recycle(shard)
			defer tensor.Recycle(out)
			for it := 0; it < warmups+iters; it++ {
				// The reduce-scatter consumes work as scratch; refill per iter.
				work.CopyFrom(in.Data())
				if err := comm.Barrier(); err != nil {
					errs[r] = err
					return
				}
				start := time.Now()
				if err := comm.ReduceScatterVInto(shard, work, counts, OpSum, bucketBytes); err != nil {
					errs[r] = err
					return
				}
				if err := comm.AllGatherVInto(out, shard, counts); err != nil {
					errs[r] = err
					return
				}
				if it >= warmups {
					durs[r][it-warmups] = time.Since(start)
				}
			}
			outs[r] = out.Clone()
			tensor.Recycle(in)
			tensor.Recycle(work)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			return 0, nil, fmt.Errorf("collective: measure sharded exchange rank %d: %w", r, err)
		}
	}
	for r := 1; r < n; r++ {
		tensor.Recycle(outs[r])
	}
	var total time.Duration
	for it := 0; it < iters; it++ {
		max := durs[0][it]
		for r := 1; r < n; r++ {
			if durs[r][it] > max {
				max = durs[r][it]
			}
		}
		total += max
	}
	return total / iters, outs[0], nil
}
