package collective

import (
	"fmt"
	goruntime "runtime"
	"runtime/debug"
	"sync"
	"testing"

	"repro/internal/runtime"
	"repro/internal/tensor"
)

// ringHarness pre-spawns one goroutine per rank that performs an in-place
// all-reduce each time it is kicked, so measurement loops add no goroutine
// or closure allocations of their own.
type ringHarness struct {
	n     int
	kick  []chan struct{}
	done  chan error
	bufs  []*tensor.Tensor
	close func()

	// bucketed routes rounds through AllReduceBucketsInPlace (flat scratch,
	// cached fusion plan) instead of AllReduceInto.
	bucketed bool
}

func newRingHarness(tb testing.TB, n, elems int) *ringHarness {
	tb.Helper()
	tr := runtime.NewChanTransport()
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = i
	}
	g, err := NewGroup(tr, ranks, 0)
	if err != nil {
		tb.Fatal(err)
	}
	h := &ringHarness{
		n:    n,
		kick: make([]chan struct{}, n),
		done: make(chan error, n),
		bufs: make([]*tensor.Tensor, n),
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < n; r++ {
		h.kick[r] = make(chan struct{})
		buf := tensor.GetScratch(elems)
		for i, d := 0, buf.Data(); i < elems; i++ {
			d[i] = float64(r + 1)
		}
		h.bufs[r] = buf
		comm, err := g.Comm(r)
		if err != nil {
			tb.Fatal(err)
		}
		wg.Add(1)
		go func(r int, comm *Communicator, buf *tensor.Tensor) {
			defer wg.Done()
			bufs := []*tensor.Tensor{buf}
			for {
				select {
				case <-stop:
					return
				case <-h.kick[r]:
				}
				if h.bucketed {
					h.done <- comm.AllReduceBucketsInPlace(bufs, OpSum, DefaultBucketBytes)
				} else {
					h.done <- comm.AllReduceInto(buf, buf, OpSum)
				}
			}
		}(r, comm, buf)
	}
	h.close = func() { close(stop); wg.Wait() }
	return h
}

// round triggers one collective round on every rank and waits for them all.
func (h *ringHarness) round() error {
	for r := 0; r < h.n; r++ {
		h.kick[r] <- struct{}{}
	}
	var first error
	for r := 0; r < h.n; r++ {
		if err := <-h.done; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// warm walks the group's tag window all the way around so every mailbox and
// pooled chunk the steady state needs already exists.
func (h *ringHarness) warm(tb testing.TB) {
	tb.Helper()
	rounds := GroupTagWindow/h.opStride() + 2
	for i := 0; i < rounds; i++ {
		if err := h.round(); err != nil {
			tb.Fatal(err)
		}
	}
}

func (h *ringHarness) opStride() int { return 2*h.n + 2 }

// TestAllReduceZeroAllocSteadyState is the allocation regression gate for
// the whole collective stack: once mailboxes and scratch pools are warm, an
// in-place ring AllReduce must not allocate at all — not in the ring, not in
// the transport, not in the chunk pool.
func TestAllReduceZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; count is only meaningful without -race")
	}
	for _, bucketed := range []bool{false, true} {
		name := "AllReduceInto"
		if bucketed {
			name = "AllReduceBucketsInPlace"
		}
		t.Run(name, func(t *testing.T) {
			const n, elems = 4, 1 << 14
			h := newRingHarness(t, n, elems)
			h.bucketed = bucketed
			defer h.close()
			h.warm(t)

			// The scratch pool is sync.Pool-backed; a GC mid-measurement
			// would drop its contents and charge the refill to the
			// collective.
			defer debug.SetGCPercent(debug.SetGCPercent(-1))
			goruntime.GC()

			allocs := testing.AllocsPerRun(50, func() {
				if err := h.round(); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 0 {
				t.Fatalf("steady-state %s allocates %.2f objects per step, want 0", name, allocs)
			}
		})
	}
}

// TestAllReduceIntoMatchesAllReduce pins the in-place path to the pure one.
func TestAllReduceIntoMatchesAllReduce(t *testing.T) {
	const n, elems = 3, 1000
	h := newRingHarness(t, n, elems)
	defer h.close()
	if err := h.round(); err != nil {
		t.Fatal(err)
	}
	// Every rank contributed the constant r+1, so one round leaves
	// sum(1..n) everywhere.
	want := float64(n * (n + 1) / 2)
	for r, buf := range h.bufs {
		for i, v := range buf.Data() {
			if v != want {
				t.Fatalf("rank %d elem %d = %v, want %v", r, i, v, want)
			}
		}
	}
}

// BenchmarkAllReduce measures the steady-state bucketed ring across group
// sizes (run with -benchmem: allocs/op should stay at the harness's
// coordination floor, not scale with payload).
func BenchmarkAllReduce(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("ranks=%d", n), func(b *testing.B) {
			const elems = 1 << 16
			h := newRingHarness(b, n, elems)
			defer h.close()
			h.warm(b)
			b.SetBytes(int64(8 * elems))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := h.round(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
