package collective

import (
	"fmt"

	"repro/internal/tensor"
)

// DefaultBucketBytes is the default gradient-fusion bucket size (4 MiB, the
// NCCL/DDP-style tradeoff: large enough to amortize per-message latency,
// small enough to overlap with remaining compute).
const DefaultBucketBytes = 4 << 20

const bytesPerElem = 8 // float64

// bucketBoundaries partitions consecutive tensor sizes into fusion buckets
// of at most bucketBytes (an oversized tensor forms its own bucket) and
// returns the [start, end) tensor-index range of each bucket. It is the
// single source of truth for the fusion rule: the executing path
// (AllReduceBucketsInPlace) and the analytic paths (NumBuckets,
// PredictBucketedAllReduce) must agree on boundaries for the
// executed-vs-analytic validation to stay meaningful.
func bucketBoundaries(sizes []int, bucketBytes int) [][2]int {
	if bucketBytes <= 0 {
		bucketBytes = DefaultBucketBytes
	}
	var out [][2]int
	for start := 0; start < len(sizes); {
		end := start + 1
		elems := sizes[start]
		for end < len(sizes) && (elems+sizes[end])*bytesPerElem <= bucketBytes {
			elems += sizes[end]
			end++
		}
		out = append(out, [2]int{start, end})
		start = end
	}
	return out
}

// AllReduceBucketsInPlace all-reduces a list of rank-private mutable tensors
// in place, coalescing consecutive tensors into flat buckets of at most
// bucketBytes (a tensor larger than the cap forms its own bucket) and ring
// all-reducing each bucket through the communicator's reusable scratch.
// Every rank must pass tensors with identical shapes in identical order —
// the same contract that makes bucketing deterministic in DDP-style gradient
// synchronization. This is the steady-state gradient-sync path: per step it
// touches only the persistent scratch and pooled chunks.
func (c *Communicator) AllReduceBucketsInPlace(ts []*tensor.Tensor, op Op, bucketBytes int) error {
	for _, b := range c.bucketPlan(ts, bucketBytes) {
		start, end := b[0], b[1]
		base := c.opWindow()
		if end-start == 1 {
			// Single-tensor bucket (the oversized-gradient case): reduce
			// directly in the tensor's own storage, no staging copies.
			if c.Size() > 1 && ts[start].Size() > 0 {
				if err := c.allReduceData(base, ts[start].Data(), op); err != nil {
					return fmt.Errorf("collective: bucket [%d,%d): %w", start, end, err)
				}
			}
			continue
		}
		elems := 0
		for i := start; i < end; i++ {
			elems += ts[i].Size()
		}
		flat := c.flatScratch(elems)
		off := 0
		for i := start; i < end; i++ {
			copy(flat[off:], ts[i].Data())
			off += ts[i].Size()
		}
		if c.Size() > 1 && elems > 0 {
			if err := c.allReduceData(base, flat, op); err != nil {
				return fmt.Errorf("collective: bucket [%d,%d): %w", start, end, err)
			}
		}
		off = 0
		for i := start; i < end; i++ {
			ts[i].CopyFrom(flat[off : off+ts[i].Size()])
			off += ts[i].Size()
		}
	}
	return nil
}

// AllReduceBuckets is the pure form of AllReduceBucketsInPlace: inputs are
// left untouched and freshly allocated reduced tensors are returned.
func (c *Communicator) AllReduceBuckets(ts []*tensor.Tensor, op Op, bucketBytes int) ([]*tensor.Tensor, error) {
	out := make([]*tensor.Tensor, len(ts))
	for i, t := range ts {
		out[i] = t.Clone()
	}
	if err := c.AllReduceBucketsInPlace(out, op, bucketBytes); err != nil {
		return nil, err
	}
	return out, nil
}

// NumBuckets reports how many buckets AllReduceBucketsInPlace would form for
// the given tensor sizes — exposed so cost models and tests can predict the
// latency term without running the collective.
func NumBuckets(sizes []int, bucketBytes int) int {
	return len(bucketBoundaries(sizes, bucketBytes))
}
