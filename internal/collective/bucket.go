package collective

import (
	"fmt"

	"repro/internal/tensor"
)

// DefaultBucketBytes is the default gradient-fusion bucket size (4 MiB, the
// NCCL/DDP-style tradeoff: large enough to amortize per-message latency,
// small enough to overlap with remaining compute).
const DefaultBucketBytes = 4 << 20

const bytesPerElem = 8 // float64

// bucketBoundaries partitions consecutive tensor sizes into fusion buckets
// of at most bucketBytes (an oversized tensor forms its own bucket) and
// returns the [start, end) tensor-index range of each bucket. It is the
// single source of truth for the fusion rule: the executing path
// (AllReduceBuckets) and the analytic paths (NumBuckets,
// PredictBucketedAllReduce) must agree on boundaries for the
// executed-vs-analytic validation to stay meaningful.
func bucketBoundaries(sizes []int, bucketBytes int) [][2]int {
	if bucketBytes <= 0 {
		bucketBytes = DefaultBucketBytes
	}
	var out [][2]int
	for start := 0; start < len(sizes); {
		end := start + 1
		elems := sizes[start]
		for end < len(sizes) && (elems+sizes[end])*bytesPerElem <= bucketBytes {
			elems += sizes[end]
			end++
		}
		out = append(out, [2]int{start, end})
		start = end
	}
	return out
}

func tensorSizes(ts []*tensor.Tensor) []int {
	sizes := make([]int, len(ts))
	for i, t := range ts {
		sizes[i] = t.Size()
	}
	return sizes
}

// AllReduceBuckets all-reduces a list of tensors by coalescing consecutive
// tensors into flat buckets of at most bucketBytes (a tensor larger than the
// cap forms its own bucket) and ring all-reducing each bucket. Shapes are
// restored on return. Every rank must pass tensors with identical shapes in
// identical order — the same contract that makes bucketing deterministic in
// DDP-style gradient synchronization.
func (c *Communicator) AllReduceBuckets(ts []*tensor.Tensor, op Op, bucketBytes int) ([]*tensor.Tensor, error) {
	out := make([]*tensor.Tensor, len(ts))
	for _, b := range bucketBoundaries(tensorSizes(ts), bucketBytes) {
		start, end := b[0], b[1]
		elems := 0
		for i := start; i < end; i++ {
			elems += ts[i].Size()
		}
		flat := make([]float64, 0, elems)
		for i := start; i < end; i++ {
			flat = append(flat, ts[i].Data()...)
		}
		bucket, err := tensor.FromSlice(flat, len(flat))
		if err != nil {
			return nil, err
		}
		reduced, err := c.AllReduce(bucket, op)
		if err != nil {
			return nil, fmt.Errorf("collective: bucket [%d,%d): %w", start, end, err)
		}
		rd := reduced.Data()
		off := 0
		for i := start; i < end; i++ {
			t, err := tensor.FromSlice(rd[off:off+ts[i].Size()], ts[i].Shape()...)
			if err != nil {
				return nil, err
			}
			out[i] = t
			off += ts[i].Size()
		}
	}
	return out, nil
}

// NumBuckets reports how many buckets AllReduceBuckets would form for the
// given tensor sizes — exposed so cost models and tests can predict the
// latency term without running the collective.
func NumBuckets(sizes []int, bucketBytes int) int {
	return len(bucketBoundaries(sizes, bucketBytes))
}
