package collective

import (
	"fmt"
	goruntime "runtime"
	"runtime/debug"
	"sync"
	"testing"

	"repro/internal/runtime"
	"repro/internal/tensor"
)

// TestAllGatherIntoMatchesAllGather pins the pooled-chunk in-place gather to
// the relay-based reference across ring sizes and shard sizes.
func TestAllGatherIntoMatchesAllGather(t *testing.T) {
	for n := 1; n <= 5; n++ {
		for _, rows := range []int{1, 2, 7} {
			t.Run(fmt.Sprintf("ranks=%d/rows=%d", n, rows), func(t *testing.T) {
				const width = 3
				shard := func(r int) *tensor.Tensor {
					s := tensor.New(rows, width)
					for i := 0; i < s.Size(); i++ {
						s.Data()[i] = float64(r+1)*1000 + float64(i)
					}
					return s
				}
				want := runGroup(t, n, func(c *Communicator) (*tensor.Tensor, error) {
					return c.AllGather(shard(c.Rank()))
				})
				got := runGroup(t, n, func(c *Communicator) (*tensor.Tensor, error) {
					dst := tensor.New(n*rows, width)
					if err := c.AllGatherInto(dst, shard(c.Rank())); err != nil {
						return nil, err
					}
					return dst, nil
				})
				for r := range got {
					if !tensor.AllClose(got[r], want[r], 0, 0) {
						t.Fatalf("rank %d: AllGatherInto %v != AllGather %v", r, got[r], want[r])
					}
				}
			})
		}
	}
}

// TestAllGatherIntoLeavesShardOwned verifies the no-relay contract: the
// caller's shard is only read, never forwarded, so mutating it immediately
// after the call cannot corrupt any other rank's result.
func TestAllGatherIntoLeavesShardOwned(t *testing.T) {
	const n, rows, width = 4, 2, 3
	outs := runGroup(t, n, func(c *Communicator) (*tensor.Tensor, error) {
		shard := tensor.New(rows, width)
		for i := range shard.Data() {
			shard.Data()[i] = float64(c.Rank() + 1)
		}
		dst := tensor.New(n*rows, width)
		if err := c.AllGatherInto(dst, shard); err != nil {
			return nil, err
		}
		for i := range shard.Data() {
			shard.Data()[i] = -999 // would poison peers if the shard were relayed
		}
		if err := c.Barrier(); err != nil {
			return nil, err
		}
		return dst, nil
	})
	for r, out := range outs {
		for owner := 0; owner < n; owner++ {
			for i := 0; i < rows*width; i++ {
				if got := out.Data()[owner*rows*width+i]; got != float64(owner+1) {
					t.Fatalf("rank %d block %d elem %d = %v, want %v", r, owner, i, got, float64(owner+1))
				}
			}
		}
	}
}

// TestBroadcastIntoMatchesBroadcast pins the preallocated-destination path
// to the shape-prologue reference.
func TestBroadcastIntoMatchesBroadcast(t *testing.T) {
	for n := 1; n <= 5; n++ {
		for root := 0; root < n; root++ {
			t.Run(fmt.Sprintf("ranks=%d/root=%d", n, root), func(t *testing.T) {
				const elems = 17
				src := rankTensor(root, elems)
				outs := runGroup(t, n, func(c *Communicator) (*tensor.Tensor, error) {
					var buf *tensor.Tensor
					if c.Rank() == root {
						buf = rankTensor(root, elems)
					} else {
						buf = tensor.New(elems)
					}
					if err := c.BroadcastInto(buf, root); err != nil {
						return nil, err
					}
					return buf, nil
				})
				for r, got := range outs {
					if !tensor.AllClose(got, src, 0, 0) {
						t.Fatalf("rank %d: got %v want %v", r, got, src)
					}
				}
			})
		}
	}
}

// TestIntoCollectivesRejectBorrowedDst pins the ownership guard: a borrowed
// batch-row view is caller-owned storage, so the in-place collectives must
// refuse to write through it.
func TestIntoCollectivesRejectBorrowedDst(t *testing.T) {
	const n = 2
	backing := tensor.New(4, 3)
	runGroup(t, n, func(c *Communicator) (*tensor.Tensor, error) {
		view := tensor.ViewRange0(backing, 0, 2)
		shard := tensor.New(1, 3)
		if err := c.AllGatherInto(view, shard); err == nil {
			return nil, fmt.Errorf("AllGatherInto accepted a borrowed destination")
		}
		if err := c.AllReduceInto(view, view, OpSum); err == nil {
			return nil, fmt.Errorf("AllReduceInto accepted a borrowed destination")
		}
		// Tag windows advance on every rank in lockstep even on the error
		// path, so the group stays usable; nothing further to send.
		return nil, nil
	})
}

// intoHarness pre-spawns one goroutine per rank running one AllGatherInto
// and one BroadcastInto per kick, so steady-state allocation measurement adds
// no goroutine or closure allocations of its own.
type intoHarness struct {
	n    int
	kick []chan struct{}
	done chan error
	stop func()
}

func newIntoHarness(tb testing.TB, n, rows, width int) *intoHarness {
	tb.Helper()
	tr := runtime.NewChanTransport()
	ranks := make([]int, n)
	for i := range ranks {
		ranks[i] = i
	}
	g, err := NewGroup(tr, ranks, 0)
	if err != nil {
		tb.Fatal(err)
	}
	h := &intoHarness{n: n, kick: make([]chan struct{}, n), done: make(chan error, n)}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < n; r++ {
		h.kick[r] = make(chan struct{})
		comm, err := g.Comm(r)
		if err != nil {
			tb.Fatal(err)
		}
		shard := tensor.GetScratchShaped(rows, width)
		dst := tensor.GetScratchShaped(n*rows, width)
		wg.Add(1)
		go func(r int, comm *Communicator) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				case <-h.kick[r]:
				}
				if err := comm.AllGatherInto(dst, shard); err != nil {
					h.done <- err
					continue
				}
				h.done <- comm.BroadcastInto(dst, 0)
			}
		}(r, comm)
	}
	h.stop = func() { close(stop); wg.Wait() }
	return h
}

func (h *intoHarness) round() error {
	for r := 0; r < h.n; r++ {
		h.kick[r] <- struct{}{}
	}
	var first error
	for r := 0; r < h.n; r++ {
		if err := <-h.done; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// TestIntoCollectivesZeroAllocSteadyState extends the allocation gate to the
// new in-place collectives: once mailboxes and chunk pools are warm, a round
// of AllGatherInto + BroadcastInto must not allocate.
func TestIntoCollectivesZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; count is only meaningful without -race")
	}
	const n, rows, width = 4, 16, 64
	h := newIntoHarness(t, n, rows, width)
	defer h.stop()
	// Each round issues two operations (AllGatherInto + BroadcastInto), so
	// opReuseWindows/2 rounds walk the whole reuse cycle and warm every
	// persistent mailbox the steady state touches; +2 rounds of slack also
	// fill the chunk pools.
	warmRounds := opReuseWindows/2 + 2
	for i := 0; i < warmRounds; i++ {
		if err := h.round(); err != nil {
			t.Fatal(err)
		}
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	goruntime.GC()
	allocs := testing.AllocsPerRun(50, func() {
		if err := h.round(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("steady-state AllGatherInto+BroadcastInto allocates %.2f objects per round, want 0", allocs)
	}
}

// TestNewGroupRejectsOversizedGroups is the regression test for the tag
// window cap: a group whose rank count the GroupTagWindow cannot address must
// fail loudly at construction instead of silently wrapping operation tag
// windows into collisions. The 1<<12 window pins the cap at 1023 ranks —
// wide enough for external-transport process groups far beyond the 63-rank
// ceiling the original 1<<8 window imposed.
func TestNewGroupRejectsOversizedGroups(t *testing.T) {
	tr := runtime.NewChanTransport()
	maxRanks := (GroupTagWindow/2 - 2) / 2 // every op window (2n+2 tags) must fit twice
	if maxRanks != 1023 {
		t.Fatalf("tag-window rank cap = %d, want 1023 (GroupTagWindow = 1<<12)", maxRanks)
	}
	mk := func(n int) []int {
		ranks := make([]int, n)
		for i := range ranks {
			ranks[i] = i
		}
		return ranks
	}
	// Groups beyond the old 63-rank ceiling must now construct.
	for _, n := range []int{64, 257, maxRanks} {
		if _, err := NewGroup(tr, mk(n), 0); err != nil {
			t.Fatalf("NewGroup(%d ranks): %v, want success under the %d-rank cap", n, err, maxRanks)
		}
	}
	if _, err := NewGroup(tr, mk(maxRanks+1), 0); err == nil {
		t.Fatalf("NewGroup(%d ranks) succeeded; tags would alias within the %d-tag group window", maxRanks+1, GroupTagWindow)
	}
}
