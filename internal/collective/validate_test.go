package collective

import (
	"testing"

	"repro/internal/runtime"
)

// TestExecutedAllReduceMatchesAnalyticDPSync is the executed-vs-analytic
// validation the subsystem exists for: the measured wall time of a bucketed
// ring AllReduce on the real transport must agree with the simulator's
// analytic dpSync formula (perf.Link.AllReduce — exactly what
// sim.Config.DPSyncTime computes from device specs) once the link is
// calibrated on the same transport.
//
// Stated tolerance: measured/predicted within [1/5, 5]. The analytic model
// captures first-order behaviour (volume·2(n-1)/n / bandwidth + hop
// latencies); scheduling noise on a shared in-process machine motivates the
// generous band, which is still tight enough to catch a broken chunk
// schedule (ring→star regressions are ≥ n/2 off at these sizes) or a
// miscalibrated link (orders of magnitude).
func TestExecutedAllReduceMatchesAnalyticDPSync(t *testing.T) {
	const (
		n     = 4
		elems = 1 << 20 // 8 MiB per rank: bandwidth-dominated
		runs  = 3
	)
	link := Calibrate(runtime.NewChanTransport(), 0, 1)
	if link.BwGBs <= 0 || link.Latency <= 0 {
		t.Fatalf("degenerate calibration: %+v", link)
	}
	t.Logf("calibrated in-process link: %.2f GB/s, %.1fµs/hop", link.BwGBs, link.Latency*1e6)

	// RingLink accounts for goroutine ranks sharing the host's cores; on a
	// machine with >= n cores it is the identity.
	predicted := PredictBucketedAllReduce(RingLink(link, n), []int{elems}, n, DefaultBucketBytes)

	best := 0.0
	for i := 0; i < runs; i++ {
		d, out, err := MeasureAllReduce(runtime.NewChanTransport(), n, elems, DefaultBucketBytes)
		if err != nil {
			t.Fatal(err)
		}
		// Correctness ride-along: sum of ranks 1..n on every element.
		if got := out.Data()[elems/2]; got != float64(n*(n+1)/2) {
			t.Fatalf("reduced value %v, want %d", got, n*(n+1)/2)
		}
		if s := d.Seconds(); best == 0 || s < best {
			best = s
		}
	}

	ratio := best / predicted
	t.Logf("executed %.3fms vs analytic %.3fms (ratio %.2f)", best*1e3, predicted*1e3, ratio)
	if ratio < 0.2 || ratio > 5 {
		t.Fatalf("executed all-reduce %.3fms disagrees with analytic dpSync %.3fms (ratio %.2f outside [0.2, 5])", best*1e3, predicted*1e3, ratio)
	}
}
