package ckpt

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/tensor"
)

// testState builds a deterministic entry list with awkward values a sloppy
// codec would mangle: negative zero, denormals, NaN payloads survive only a
// bit-exact round trip.
func testState(entries, elems int) []*tensor.Tensor {
	out := make([]*tensor.Tensor, entries)
	for e := range out {
		t := tensor.New(elems)
		d := t.Data()
		for i := range d {
			switch i % 4 {
			case 0:
				d[i] = float64(e*1000+i) * 1.25
			case 1:
				d[i] = math.Copysign(0, -1)
			case 2:
				d[i] = 5e-324 // smallest denormal
			default:
				d[i] = -float64(i) / 3
			}
		}
		out[e] = t
	}
	return out
}

// writeWorld writes one complete committed checkpoint as a world of the given
// size would: every rank's shard, then the manifest.
func writeWorld(t *testing.T, dir string, step, world int, entries []*tensor.Tensor) {
	t.Helper()
	for r := 0; r < world; r++ {
		if err := WriteShard(dir, step, r, entries, Owned(r, world, len(entries))); err != nil {
			t.Fatalf("shard %d: %v", r, err)
		}
	}
	m := NewManifest(step, world, 2, 16, len(entries), 0)
	if err := WriteManifest(dir, m); err != nil {
		t.Fatalf("manifest: %v", err)
	}
}

func requireBitEqual(t *testing.T, got, want []*tensor.Tensor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%d entries, want %d", len(got), len(want))
	}
	for e := range want {
		gd, wd := got[e].Data(), want[e].Data()
		if len(gd) != len(wd) {
			t.Fatalf("entry %d: %d elems, want %d", e, len(gd), len(wd))
		}
		for i := range wd {
			if math.Float64bits(gd[i]) != math.Float64bits(wd[i]) {
				t.Fatalf("entry %d elem %d: %x != %x", e, i, math.Float64bits(gd[i]), math.Float64bits(wd[i]))
			}
		}
	}
}

// TestOwnershipPartition pins the round-robin map: every entry has exactly
// one owner, and the per-rank Owned lists partition the entry range.
func TestOwnershipPartition(t *testing.T) {
	const world, entries = 3, 10
	seen := make([]int, entries)
	for r := 0; r < world; r++ {
		for _, e := range Owned(r, world, entries) {
			if OwnerOf(e, world) != r {
				t.Fatalf("entry %d owned by rank %d but OwnerOf says %d", e, r, OwnerOf(e, world))
			}
			seen[e]++
		}
	}
	for e, n := range seen {
		if n != 1 {
			t.Fatalf("entry %d covered %d times", e, n)
		}
	}
}

// TestShardedRoundTripBitIdentical is the core property: a checkpoint written
// rank-sharded by a world of 3 restores bit-identical, whatever process reads
// it back.
func TestShardedRoundTripBitIdentical(t *testing.T) {
	dir := t.TempDir()
	state := testState(7, 12)
	writeWorld(t, dir, 42, 3, state)

	m, got, skipped, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped %v on a clean restore", skipped)
	}
	if m == nil || m.Step != 42 || m.World != 3 || m.Entries != 7 {
		t.Fatalf("manifest %+v", m)
	}
	requireBitEqual(t, got, state)
	for _, g := range got {
		tensor.Recycle(g)
	}
}

// TestRestoreDetectsCorruptionAndFallsBack flips one payload byte in the
// newest checkpoint: the CRC trailer must catch it, and Restore must fall
// back to the older consistent step instead of returning damaged state.
func TestRestoreDetectsCorruptionAndFallsBack(t *testing.T) {
	dir := t.TempDir()
	old := testState(5, 8)
	writeWorld(t, dir, 10, 2, old)
	newer := testState(5, 8)
	newer[0].Data()[0] = 999 // make the two steps distinguishable
	writeWorld(t, dir, 20, 2, newer)

	shard := filepath.Join(StepDir(dir, 20), ShardFile(1))
	data, err := os.ReadFile(shard)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40 // flip a bit mid-file (header, dims, or payload)
	if err := os.WriteFile(shard, data, 0o644); err != nil {
		t.Fatal(err)
	}

	m, got, skipped, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || m.Step != 10 {
		t.Fatalf("restored step %v, want fallback to 10", m)
	}
	if len(skipped) != 1 || skipped[0] != 20 {
		t.Fatalf("skipped %v, want [20]", skipped)
	}
	requireBitEqual(t, got, old)
	for _, g := range got {
		tensor.Recycle(g)
	}
}

// TestRestoreSkipsUncommitted: a step directory with shards but no manifest
// (the writer died mid-checkpoint) is invisible to recovery.
func TestRestoreSkipsUncommitted(t *testing.T) {
	dir := t.TempDir()
	committed := testState(4, 6)
	writeWorld(t, dir, 5, 2, committed)
	torn := testState(4, 6)
	// Newer step: every shard written, manifest never committed.
	for r := 0; r < 2; r++ {
		if err := WriteShard(dir, 9, r, torn, Owned(r, 2, len(torn))); err != nil {
			t.Fatal(err)
		}
	}

	m, got, skipped, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m == nil || m.Step != 5 {
		t.Fatalf("restored %v, want committed step 5", m)
	}
	if len(skipped) != 1 || skipped[0] != 9 {
		t.Fatalf("skipped %v, want [9]", skipped)
	}
	requireBitEqual(t, got, committed)
	for _, g := range got {
		tensor.Recycle(g)
	}
}

// TestRestoreEmptyAndAllCorrupt: no directory and no usable checkpoint both
// mean "start fresh", not an error.
func TestRestoreEmptyAndAllCorrupt(t *testing.T) {
	m, got, skipped, err := Restore(filepath.Join(t.TempDir(), "nonexistent"))
	if err != nil || m != nil || got != nil || len(skipped) != 0 {
		t.Fatalf("empty restore: %v %v %v %v", m, got, skipped, err)
	}

	dir := t.TempDir()
	writeWorld(t, dir, 3, 1, testState(2, 4))
	if err := os.Remove(filepath.Join(StepDir(dir, 3), ShardFile(0))); err != nil {
		t.Fatal(err)
	}
	m, got, skipped, err = Restore(dir)
	if err != nil || m != nil || got != nil {
		t.Fatalf("all-corrupt restore: %v %v %v", m, got, err)
	}
	if len(skipped) != 1 || skipped[0] != 3 {
		t.Fatalf("skipped %v, want [3]", skipped)
	}
}

// TestManifestCompatibility pins what restores across worlds: a different
// world size is fine (elastic resume), a different model shape or a
// missing/extra optimizer state is not.
func TestManifestCompatibility(t *testing.T) {
	m := NewManifest(7, 4, 2, 16, 3, 0.9)
	if err := m.Compatible(2, 16, 3, 0.5); err != nil {
		t.Fatalf("momentum coefficient change rejected: %v", err)
	}
	if err := m.Compatible(2, 16, 3, 0); err == nil {
		t.Fatal("momentum->plain accepted; velocity entries would be orphaned")
	}
	if err := m.Compatible(3, 16, 3, 0.9); err == nil {
		t.Fatal("stage mismatch accepted")
	}
	if err := m.Compatible(2, 32, 3, 0.9); err == nil {
		t.Fatal("width mismatch accepted")
	}
	if m.Entries != 6 {
		t.Fatalf("momentum manifest has %d entries for 3 params, want 6", m.Entries)
	}
}

// TestPruneKeepsFallbackAndInFlight: prune retains the newest keep committed
// checkpoints plus any newer uncommitted (in-flight) step directory.
func TestPruneKeepsFallbackAndInFlight(t *testing.T) {
	dir := t.TempDir()
	state := testState(2, 4)
	for _, step := range []int{10, 20, 30} {
		writeWorld(t, dir, step, 1, state)
	}
	// In-flight newest step: shard only.
	if err := WriteShard(dir, 40, 0, state, Owned(0, 1, len(state))); err != nil {
		t.Fatal(err)
	}
	if err := Prune(dir, 2); err != nil {
		t.Fatal(err)
	}
	for step, want := range map[int]bool{10: false, 20: true, 30: true, 40: true} {
		_, err := os.Stat(StepDir(dir, step))
		if got := err == nil; got != want {
			t.Fatalf("step %d present=%v, want %v", step, got, want)
		}
	}
}

// TestClusterStateRoundTrip pins the coordinator recovery record.
func TestClusterStateRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), StateFileName)
	st := &ClusterState{
		CtrlAddr: "127.0.0.1:29400",
		World:    5, MinWorld: 2, Attempt: 3,
		Book:    map[int]string{0: "a:1", 1: "b:2"},
		Pinned:  []int{1},
		Spec:    []byte(`{"stages":1}`),
		CkptDir: "/tmp/ckpt",
	}
	if err := SaveState(path, st); err != nil {
		t.Fatal(err)
	}
	got, err := LoadState(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.CtrlAddr != st.CtrlAddr || got.World != 5 || got.Attempt != 3 || got.Book[1] != "b:2" || got.CkptDir != st.CkptDir {
		t.Fatalf("round trip: %+v", got)
	}
	if got.Version != Version || got.UpdatedAtUnix == 0 {
		t.Fatalf("stamps missing: %+v", got)
	}
	// Damaged or incomplete states are rejected, not half-loaded.
	if err := os.WriteFile(path, []byte(`{"world":3}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadState(path); err == nil {
		t.Fatal("state without ctrl_addr/spec accepted")
	}
}

// TestOwnerMajorShardedManifestRoundTrip pins the PR-8 sharded optimizer
// layout: each rank's shard carries its round-robin parameter share plus the
// single flat velocity-shard entry only it holds (entry params+rank, sparse
// in every other rank's entry list), and Restore reassembles the full entry
// list bit-identically with the manifest advertising the writing partition.
func TestOwnerMajorShardedManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	const params, world, step = 4, 3, 17
	pstate := testState(params, 10)
	// Uneven flat velocity partition, one shard per rank.
	counts := []int{9, 0, 5}
	vshards := make([]*tensor.Tensor, world)
	for r, c := range counts {
		v := tensor.New(c)
		for i := range v.Data() {
			v.Data()[i] = float64(r*100+i) - 0.5
		}
		vshards[r] = v
	}

	for r := 0; r < world; r++ {
		entries := make([]*tensor.Tensor, params+world)
		copy(entries, pstate)
		entries[params+r] = vshards[r] // the only velocity entry this rank holds
		owned := append(Owned(r, world, params), params+r)
		if err := WriteShard(dir, step, r, entries, owned); err != nil {
			t.Fatalf("shard %d: %v", r, err)
		}
	}
	m := NewManifestSharded(step, world, 2, 16, params, 0.9, counts)
	if !m.Sharded() {
		t.Fatal("sharded manifest does not report Sharded()")
	}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}

	got, entries, skipped, err := Restore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(skipped) != 0 {
		t.Fatalf("skipped %v on a clean restore", skipped)
	}
	if got == nil || !got.Sharded() || got.Entries != params+world {
		t.Fatalf("manifest %+v", got)
	}
	for r, c := range counts {
		if got.OptShardCounts[r] != c {
			t.Fatalf("OptShardCounts %v, want %v", got.OptShardCounts, counts)
		}
		if got.Owners[params+r] != r {
			t.Fatalf("velocity entry %d owned by %d, want %d", params+r, got.Owners[params+r], r)
		}
	}
	want := append(append([]*tensor.Tensor(nil), pstate...), vshards...)
	requireBitEqual(t, entries, want)
	for _, e := range entries {
		tensor.Recycle(e)
	}
}

// TestShardedManifestRejectsMissingVelocityEntry pins WriteShard's guard: a
// rank asked to write a velocity shard it does not hold (nil entry) must fail
// loudly instead of committing a checkpoint with a silent hole.
func TestShardedManifestRejectsMissingVelocityEntry(t *testing.T) {
	dir := t.TempDir()
	const params, world = 2, 2
	entries := make([]*tensor.Tensor, params+world)
	copy(entries, testState(params, 4))
	// Rank 0's own velocity shard deliberately absent.
	owned := append(Owned(0, world, params), params+0)
	if err := WriteShard(dir, 3, 0, entries, owned); err == nil {
		t.Fatal("WriteShard accepted a nil velocity entry")
	}
}
