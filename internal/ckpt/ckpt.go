// Package ckpt implements rank-sharded training checkpoints for the
// multi-process runtime. A checkpoint is one directory per step:
//
//	<dir>/step-00000042/shard-000.ckpt   one file per rank, wire-codec frames
//	<dir>/step-00000042/manifest.json    written last, by rank 0, after a barrier
//
// Each rank serializes the state entries it owns (round-robin over the world)
// as dist wire frames — CRC32 trailers always on, the frame tag carrying the
// entry index — into a temp file renamed into place, so a crash mid-write
// never leaves a half shard under a published name. The manifest records the
// step, the world size, and the entry→rank ownership map; it is only written
// once every shard of the step is durable, which makes "manifest present"
// the atomic commit point of the whole checkpoint. Restore walks checkpoints
// newest-first and falls back past any step whose shards are missing or fail
// their CRC, so a torn or bit-flipped checkpoint degrades to the previous
// consistent one instead of poisoning recovery.
//
// State entries are the driver-held training state, which in this runtime is
// the single source of truth the actors are stepped with: the replicated
// parameter tensors, followed by the optimizer velocity tensors when momentum
// is enabled. Actor object stores are transient within a step (buffers are
// reserved at load and consumed by the step's own instructions), so exporting
// driver state is exporting actor state.
package ckpt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/dist"
	"repro/internal/tensor"
)

// Version is the checkpoint format version recorded in every manifest.
const Version = 1

// ManifestName is the per-step commit file, written last.
const ManifestName = "manifest.json"

// DefaultKeep is how many complete checkpoints Prune retains: the newest to
// restore from, plus one fallback in case the newest turns out corrupt.
const DefaultKeep = 2

// Manifest describes one complete checkpoint.
type Manifest struct {
	Version int `json:"version"`
	// Step is the number of completed optimizer steps the state reflects;
	// resuming continues at step index Step.
	Step  int `json:"step"`
	World int `json:"world"`
	// Model-shape identity: a checkpoint restores into any world whose
	// compiled program has the same stages/width/params, regardless of the
	// world size that wrote it.
	Stages int `json:"stages"`
	Width  int `json:"width"`
	Params int `json:"params"`
	// Entries is the total serialized tensor count: Params parameters,
	// followed by the optimizer state — Params velocity tensors in the dense
	// layout, or len(OptShardCounts) flat velocity shards in the owner-major
	// sharded layout.
	Entries  int     `json:"entries"`
	Momentum float64 `json:"momentum,omitempty"`
	// OptShardCounts, when non-empty, marks the owner-major sharded optimizer
	// layout: entry Params+r is rank r's slice of the owner-major flat
	// velocity vector (OptShardCounts[r] elements, the balanced partition of
	// the writing world). The flat vector itself — gradient tensors
	// concatenated in producing-actor order — is a function of the compiled
	// program only, so a reader of any world size reassembles it and re-slices
	// (or unpacks to dense per-tensor state) for its own layout: sharded
	// checkpoints restore across world-size changes and across layout changes
	// in both directions.
	OptShardCounts []int `json:"opt_shard_counts,omitempty"`
	// Owners[e] is the rank that wrote entry e (round-robin: e mod World).
	Owners []int `json:"owners"`
	// Shards lists every rank's shard file and the entries it carries.
	Shards      []ShardInfo `json:"shards"`
	SavedAtUnix int64       `json:"saved_at_unix"`
}

// ShardInfo locates one rank's shard within a checkpoint directory.
type ShardInfo struct {
	Rank    int    `json:"rank"`
	File    string `json:"file"`
	Entries []int  `json:"entries"`
}

// OwnerOf is the ownership map: entry e is written by rank e mod world.
// Parameters are replicated on every rank, so any assignment is correct;
// round-robin spreads checkpoint I/O across the world instead of serializing
// it through the gradient owners.
func OwnerOf(entry, world int) int { return entry % world }

// Owned returns the entry indices rank writes under the round-robin map.
func Owned(rank, world, entries int) []int {
	var out []int
	for e := rank; e < entries; e += world {
		out = append(out, e)
	}
	return out
}

// StepDir returns the directory of one step's checkpoint.
func StepDir(dir string, step int) string {
	return filepath.Join(dir, fmt.Sprintf("step-%08d", step))
}

// ShardFile returns one rank's shard filename within a step directory.
func ShardFile(rank int) string { return fmt.Sprintf("shard-%03d.ckpt", rank) }

// NewManifest fills a manifest for the given training shape.
func NewManifest(step, world, stages, width, params int, momentum float64) *Manifest {
	entries := params
	if momentum != 0 {
		entries *= 2
	}
	m := &Manifest{
		Version: Version, Step: step, World: world,
		Stages: stages, Width: width, Params: params,
		Entries: entries, Momentum: momentum,
		Owners:      make([]int, entries),
		SavedAtUnix: time.Now().Unix(),
	}
	for e := range m.Owners {
		m.Owners[e] = OwnerOf(e, world)
	}
	for r := 0; r < world; r++ {
		m.Shards = append(m.Shards, ShardInfo{
			Rank: r, File: ShardFile(r), Entries: Owned(r, world, entries),
		})
	}
	return m
}

// NewManifestSharded fills a manifest for the owner-major sharded optimizer
// layout: Params replicated parameter entries (round-robin ownership, as in
// the dense layout) followed by one flat velocity-shard entry per writing
// rank — entry Params+r is written by rank r alone, since rank r is the only
// process that holds that slice of the optimizer state.
func NewManifestSharded(step, world, stages, width, params int, momentum float64, optCounts []int) *Manifest {
	entries := params + len(optCounts)
	m := &Manifest{
		Version: Version, Step: step, World: world,
		Stages: stages, Width: width, Params: params,
		Entries: entries, Momentum: momentum,
		OptShardCounts: append([]int(nil), optCounts...),
		Owners:         make([]int, entries),
		SavedAtUnix:    time.Now().Unix(),
	}
	for e := 0; e < params; e++ {
		m.Owners[e] = OwnerOf(e, world)
	}
	for r := range optCounts {
		m.Owners[params+r] = r
	}
	for r := 0; r < world; r++ {
		ents := Owned(r, world, params)
		if r < len(optCounts) {
			ents = append(ents, params+r)
		}
		m.Shards = append(m.Shards, ShardInfo{Rank: r, File: ShardFile(r), Entries: ents})
	}
	return m
}

// Sharded reports whether the manifest uses the owner-major sharded
// optimizer layout.
func (m *Manifest) Sharded() bool { return len(m.OptShardCounts) > 0 }

// Compatible reports whether a manifest's state restores into a job with the
// given model shape. The world size deliberately does not participate: elastic
// resume restores old-world checkpoints into reformed (smaller or larger)
// worlds.
func (m *Manifest) Compatible(stages, width, params int, momentum float64) error {
	if m.Version != Version {
		return fmt.Errorf("ckpt: manifest version %d, this build reads %d", m.Version, Version)
	}
	if m.Stages != stages || m.Width != width || m.Params != params {
		return fmt.Errorf("ckpt: checkpoint is for stages=%d width=%d params=%d, job wants stages=%d width=%d params=%d",
			m.Stages, m.Width, m.Params, stages, width, params)
	}
	if (m.Momentum != 0) != (momentum != 0) {
		return fmt.Errorf("ckpt: checkpoint momentum %v, job momentum %v (velocity entries cannot be synthesized)", m.Momentum, momentum)
	}
	return nil
}

// WriteShard serializes this rank's owned entries into the step directory,
// atomically: frames stream into a dot-temp file (ignored by directory
// scans), fsync, then rename into the published shard name. CRC trailers are
// always on — corruption detection is the reason shards exist.
func WriteShard(dir string, step, rank int, entries []*tensor.Tensor, owned []int) error {
	sd := StepDir(dir, step)
	if err := os.MkdirAll(sd, 0o755); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	tmp := filepath.Join(sd, fmt.Sprintf(".tmp-%s", ShardFile(rank)))
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	for _, e := range owned {
		if e < 0 || e >= len(entries) || entries[e] == nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("ckpt: rank %d asked to write missing entry %d of %d", rank, e, len(entries))
		}
		h := dist.Header{
			Kind: dist.KindData, From: rank, To: rank, Tag: e,
			DType: dist.DTF64, Shape: entries[e].Shape(),
		}
		if err := dist.WriteFrame(bw, &h, entries[e].Data(), true); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("ckpt: rank %d shard write: %w", rank, err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ckpt: rank %d shard flush: %w", rank, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("ckpt: rank %d shard sync: %w", rank, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(sd, ShardFile(rank))); err != nil {
		return fmt.Errorf("ckpt: publish shard: %w", err)
	}
	return nil
}

// WriteManifest publishes a checkpoint: the manifest lands under a temp name
// and renames into place, so readers only ever observe absent or complete.
// Call it strictly after every shard of the step is durable (the distributed
// writer barriers first) — the manifest is the commit record.
func WriteManifest(dir string, m *Manifest) error {
	sd := StepDir(dir, m.Step)
	data, err := json.MarshalIndent(m, "", " ")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	tmp := filepath.Join(sd, ".tmp-"+ManifestName)
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(sd, ManifestName)); err != nil {
		return fmt.Errorf("ckpt: publish manifest: %w", err)
	}
	return nil
}

// steps lists the checkpoint step numbers present under dir (committed or
// not), descending.
func steps(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	var out []int
	for _, e := range ents {
		var step int
		if !e.IsDir() {
			continue
		}
		if _, err := fmt.Sscanf(e.Name(), "step-%d", &step); err == nil {
			out = append(out, step)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(out)))
	return out, nil
}

// readManifest loads a step's commit record, or an error if the checkpoint
// was never committed (no manifest) or the manifest itself is damaged.
func readManifest(dir string, step int) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(StepDir(dir, step), ManifestName))
	if err != nil {
		return nil, fmt.Errorf("ckpt: step %d has no committed manifest: %w", step, err)
	}
	m := &Manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("ckpt: step %d manifest damaged: %w", step, err)
	}
	return m, nil
}

// load reads every shard of a committed checkpoint and reassembles the full
// entry list. Any missing file, truncated frame, CRC mismatch, duplicate or
// out-of-range entry fails the whole load — the caller falls back to an older
// checkpoint. Returned tensors are pool-owned (the wire decode rule): the
// caller recycles them or keeps ownership.
func load(dir string, m *Manifest) (entries []*tensor.Tensor, err error) {
	sd := StepDir(dir, m.Step)
	entries = make([]*tensor.Tensor, m.Entries)
	defer func() {
		if err != nil {
			for _, t := range entries {
				tensor.Recycle(t)
			}
		}
	}()
	for _, sh := range m.Shards {
		f, ferr := os.Open(filepath.Join(sd, sh.File))
		if ferr != nil {
			return nil, fmt.Errorf("ckpt: step %d: %w", m.Step, ferr)
		}
		dec := dist.NewDecoder(bufio.NewReaderSize(f, 1<<16))
		n := 0
		for {
			h, t, derr := dec.ReadFrame()
			if derr == io.EOF {
				break
			}
			if derr != nil {
				f.Close()
				return nil, fmt.Errorf("ckpt: step %d shard %s: %w", m.Step, sh.File, derr)
			}
			if h.Kind != dist.KindData || t == nil {
				f.Close()
				return nil, fmt.Errorf("ckpt: step %d shard %s: unexpected frame kind %d", m.Step, sh.File, h.Kind)
			}
			if h.Tag < 0 || h.Tag >= m.Entries {
				tensor.Recycle(t)
				f.Close()
				return nil, fmt.Errorf("ckpt: step %d shard %s: entry %d out of range [0,%d)", m.Step, sh.File, h.Tag, m.Entries)
			}
			if entries[h.Tag] != nil {
				tensor.Recycle(t)
				f.Close()
				return nil, fmt.Errorf("ckpt: step %d shard %s: duplicate entry %d", m.Step, sh.File, h.Tag)
			}
			entries[h.Tag] = t
			n++
		}
		f.Close()
		if n != len(sh.Entries) {
			return nil, fmt.Errorf("ckpt: step %d shard %s: %d entries, manifest promises %d", m.Step, sh.File, n, len(sh.Entries))
		}
	}
	for e, t := range entries {
		if t == nil {
			return nil, fmt.Errorf("ckpt: step %d: entry %d missing from every shard", m.Step, e)
		}
	}
	return entries, nil
}

// Restore loads the newest consistent checkpoint under dir. Uncommitted
// (manifest-less) and corrupt checkpoints are skipped — their step numbers
// are returned in skipped so the caller can report the fallback — and
// (nil, nil, skipped, nil) means no usable checkpoint exists: start fresh.
// Returned tensors are pool-owned; the caller takes ownership.
func Restore(dir string) (m *Manifest, entries []*tensor.Tensor, skipped []int, err error) {
	if dir == "" {
		return nil, nil, nil, nil
	}
	ss, err := steps(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, step := range ss {
		mf, merr := readManifest(dir, step)
		if merr != nil {
			skipped = append(skipped, step)
			continue
		}
		ts, lerr := load(dir, mf)
		if lerr != nil {
			skipped = append(skipped, step)
			continue
		}
		return mf, ts, skipped, nil
	}
	return nil, nil, skipped, nil
}

// Prune deletes all but the newest keep committed checkpoints (plus any
// newer uncommitted step directories, which belong to an in-flight write).
// keep <= 0 uses DefaultKeep.
func Prune(dir string, keep int) error {
	if keep <= 0 {
		keep = DefaultKeep
	}
	ss, err := steps(dir)
	if err != nil {
		return err
	}
	committed := 0
	for _, step := range ss {
		if _, merr := readManifest(dir, step); merr != nil {
			// Uncommitted: a concurrent writer's in-flight step (newer than
			// every committed one) must survive; older manifest-less debris
			// goes once enough committed checkpoints precede it.
			if committed == 0 {
				continue
			}
		} else {
			committed++
			if committed <= keep {
				continue
			}
		}
		if err := os.RemoveAll(StepDir(dir, step)); err != nil {
			return fmt.Errorf("ckpt: prune step %d: %w", step, err)
		}
	}
	return nil
}
