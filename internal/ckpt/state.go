package ckpt

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// ClusterState is the coordinator's persisted view of the cluster: enough to
// restart a dead coordinator (jaxpp-train -resume <state file>) and recover
// the job instead of orphaning the worker pool. The address book and rank
// pins are recorded for forensics and HA tooling; a restarted coordinator
// re-derives both at the re-rendezvous (worker data-plane ports are
// ephemeral), but the control address, job spec, and checkpoint directory are
// exactly what it needs to reform the world and resume from the last
// committed manifest.
type ClusterState struct {
	Version int `json:"version"`
	// CtrlAddr is the rendezvous control address workers reconnect to.
	CtrlAddr string `json:"ctrl_addr"`
	// World / MinWorld bound the elastic membership.
	World    int `json:"world"`
	MinWorld int `json:"min_world"`
	// Attempt counts rendezvous generations (0 = first bootstrap).
	Attempt int `json:"attempt"`
	// Book is the data-plane address book of the last formed mesh.
	Book map[int]string `json:"book,omitempty"`
	// Pinned lists ranks that were operator-pinned at the last rendezvous.
	Pinned []int `json:"pinned,omitempty"`
	// Spec is the marshaled JobSpec the cluster is running.
	Spec json.RawMessage `json:"spec"`
	// CkptDir is where sharded checkpoints live.
	CkptDir       string `json:"ckpt_dir,omitempty"`
	UpdatedAtUnix int64  `json:"updated_at_unix"`
}

// StateFileName is the conventional cluster-state filename inside a
// checkpoint directory.
const StateFileName = "cluster-state.json"

// DefaultStatePath places the cluster state inside the checkpoint directory
// ("" when there is no checkpoint directory to anchor it).
func DefaultStatePath(ckptDir string) string {
	if ckptDir == "" {
		return ""
	}
	return filepath.Join(ckptDir, StateFileName)
}

// SaveState atomically persists the cluster state (temp file + rename).
func SaveState(path string, st *ClusterState) error {
	st.Version = Version
	st.UpdatedAtUnix = time.Now().Unix()
	data, err := json.MarshalIndent(st, "", " ")
	if err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if dir := filepath.Dir(path); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("ckpt: %w", err)
		}
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("ckpt: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("ckpt: publish cluster state: %w", err)
	}
	return nil
}

// LoadState reads a persisted cluster state.
func LoadState(path string) (*ClusterState, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("ckpt: %w", err)
	}
	st := &ClusterState{}
	if err := json.Unmarshal(data, st); err != nil {
		return nil, fmt.Errorf("ckpt: cluster state damaged: %w", err)
	}
	if st.CtrlAddr == "" || len(st.Spec) == 0 {
		return nil, fmt.Errorf("ckpt: cluster state %s missing ctrl_addr or spec", path)
	}
	return st, nil
}
