package spmd

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mesh"
)

// Compiled SPMD execution. A plan's equation list is split into maximal runs
// that need no resharding and no post collectives; each run is lowered once
// into a *local* ir.Graph (global shapes divided by the mesh axis sizes their
// sharding names) and compiled with interp.NewProgram. Run then executes the
// compiled program per device instead of interpreting equation by equation —
// the same fused kernels, liveness-driven scratch pooling, and in-place
// rewrites the MPMD pipeline segments get. Equations that reshard operands or
// end in collectives stay on the reference per-equation path, which is where
// the shard/gather bookkeeping lives.
//
// Compilation is cached on the Plan (sync.Once): repeated Run calls — the
// steady state for an SPMD-loaded pipeline segment — reuse the programs.

// execStep is one unit of compiled execution: either a compiled local
// program over the half-open equation range [lo, hi), or a single reference
// equation at index lo (prog == nil) that needs reshard/collective handling.
type execStep struct {
	lo, hi int
	prog   *interp.Program
	inIDs  []int // global value IDs feeding the program, in input order
	outIDs []int // global value IDs the program defines for later steps
}

// compile lowers the plan into execSteps once.
func (p *Plan) compile() error {
	p.compileOnce.Do(func() { p.compileErr = p.buildSteps() })
	return p.compileErr
}

// breaker reports whether eqn i must run on the reference path: it reshards
// an operand or applies post collectives (including the scalar mean fixups).
func (p *Plan) breaker(i int) bool {
	ep := p.Eqns[i]
	return len(ep.PreGathers) > 0 || len(ep.Post) > 0
}

func (p *Plan) buildSteps() error {
	g := p.Graph
	// lastOutside[id] = true when value id is consumed by the gather of graph
	// outputs or any equation outside the segment being built; computed per
	// segment below from consumer indices.
	consumers := make(map[int][]int, len(g.Eqns)) // value ID -> eqn indices
	for i, e := range g.Eqns {
		for _, v := range e.Inputs {
			consumers[v.ID] = append(consumers[v.ID], i)
		}
	}
	isOutput := make(map[int]bool, len(g.Outputs))
	for _, o := range g.Outputs {
		isOutput[o.ID] = true
	}

	for lo := 0; lo < len(g.Eqns); {
		if p.breaker(lo) {
			p.steps = append(p.steps, execStep{lo: lo, hi: lo + 1})
			lo++
			continue
		}
		hi := lo + 1
		for hi < len(g.Eqns) && !p.breaker(hi) {
			hi++
		}
		st, err := p.compileSegment(lo, hi, consumers, isOutput)
		if err != nil {
			return err
		}
		p.steps = append(p.steps, st)
		lo = hi
	}
	return nil
}

// specAt returns the canonical spec a value carries when consumed: its input
// spec or the OutSpec of its defining equation.
func (p *Plan) specAt(id int) (mesh.Spec, error) {
	s, ok := p.specs[id]
	if !ok {
		return nil, fmt.Errorf("spmd: no spec for value %d", id)
	}
	return s, nil
}

// localShape divides the sharded dims of shape by their mesh axis sizes.
func localShape(shape []int, spec mesh.Spec, m *mesh.Mesh) []int {
	out := append([]int(nil), shape...)
	for i, name := range spec {
		if name == "" {
			continue
		}
		sz, err := m.AxisSize(name)
		if err != nil {
			panic(err)
		}
		out[i] /= sz
	}
	return out
}

// compileSegment lowers eqns [lo, hi) to a compiled local program.
func (p *Plan) compileSegment(lo, hi int, consumers map[int][]int, isOutput map[int]bool) (execStep, error) {
	g := p.Graph
	local := ir.NewGraph(fmt.Sprintf("%s.spmd[%d:%d)", g.Name, lo, hi))
	valueOf := make(map[int]*ir.Value) // global value ID -> local value
	st := execStep{lo: lo, hi: hi}

	for i := lo; i < hi; i++ {
		e := g.Eqns[i]
		ep := p.Eqns[i]
		ins := make([]*ir.Value, len(e.Inputs))
		for j, v := range e.Inputs {
			lv, ok := valueOf[v.ID]
			if !ok {
				// Defined outside the segment: becomes a program input with
				// the operand's local (sharded) shape. No pre-gathers inside
				// a segment, so the operand spec is the canonical spec.
				spec, err := p.specAt(v.ID)
				if err != nil {
					return st, err
				}
				lv = local.AddInput(localShape(v.Shape, spec, p.Mesh), v.Name)
				valueOf[v.ID] = lv
				st.inIDs = append(st.inIDs, v.ID)
			}
			ins[j] = lv
		}
		out, err := local.Emit(e.Op, e.Attrs, ins...)
		if err != nil {
			return st, fmt.Errorf("spmd: lowering eqn %d (%s): %w", i, e.Op, err)
		}
		if ep.ScaleCorrection != 1 {
			// Fold the mean-loss sharding fixup into the local program.
			out, err = local.Emit(ir.OpScale, ir.Attrs{Factor: ep.ScaleCorrection}, out)
			if err != nil {
				return st, fmt.Errorf("spmd: lowering scale fixup for eqn %d: %w", i, err)
			}
		}
		valueOf[e.Outputs[0].ID] = out
	}

	// Program outputs: values the rest of the execution still needs — graph
	// outputs and operands of equations at or beyond hi.
	var outs []*ir.Value
	for i := lo; i < hi; i++ {
		id := g.Eqns[i].Outputs[0].ID
		needed := isOutput[id]
		for _, c := range consumers[id] {
			if c >= hi {
				needed = true
				break
			}
		}
		if needed {
			outs = append(outs, valueOf[id])
			st.outIDs = append(st.outIDs, id)
		}
	}
	local.SetOutputs(outs...)

	prog, err := interp.NewProgram(local)
	if err != nil {
		return st, fmt.Errorf("spmd: compiling segment [%d,%d): %w", lo, hi, err)
	}
	st.prog = prog
	return st, nil
}
