package spmd

import (
	"testing"

	"repro/internal/autodiff"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mesh"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// ffnGraph traces the Fig. 1a feed-forward network:
// H2 = relu(X W1) W2, loss = xent(H2, Y).
func ffnGraph(t *testing.T) *ir.Graph {
	t.Helper()
	g, err := trace.Trace("ffn", func(b *trace.Builder) []*ir.Value {
		x := b.Input("x", 8, 6)
		y := b.Input("y", 8, 6)
		w1 := b.Input("w1", 6, 12)
		w2 := b.Input("w2", 12, 6)
		h := b.ReLU(b.MatMul(x, w1))
		out := b.MatMul(h, w2)
		return []*ir.Value{b.CrossEntropy(out, y)}
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func ffnInputs(seed uint64) []*tensor.Tensor {
	rng := tensor.NewRNG(seed)
	return []*tensor.Tensor{
		rng.Normal(1, 8, 6),
		rng.OneHotBatch(8, 6),
		rng.Normal(0.5, 6, 12),
		rng.Normal(0.5, 12, 6),
	}
}

func runBoth(t *testing.T, g *ir.Graph, m *mesh.Mesh, specs []mesh.Spec, inputs []*tensor.Tensor) ([]*tensor.Tensor, []*tensor.Tensor, *Stats) {
	t.Helper()
	ref, err := interp.Eval(g, inputs)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Partition(g, m, specs)
	if err != nil {
		t.Fatal(err)
	}
	got, stats, err := Run(plan, inputs)
	if err != nil {
		t.Fatal(err)
	}
	return ref, got, stats
}

// TestDataParallelMatchesUnsharded reproduces Fig. 1c (top): mesh
// [("data", 2) ("model", 1)], batch sharded over data, weights replicated.
func TestDataParallelMatchesUnsharded(t *testing.T) {
	g := ffnGraph(t)
	m := mesh.MustNew(mesh.Axis{Name: "data", Size: 2}, mesh.Axis{Name: "model", Size: 1})
	specs := []mesh.Spec{
		mesh.P("data", ""), // x row-sharded
		mesh.P("data", ""), // y row-sharded
		mesh.Replicated(2), // w1 replicated
		mesh.Replicated(2), // w2 replicated
	}
	ref, got, _ := runBoth(t, g, m, specs, ffnInputs(1))
	for i := range ref {
		if !tensor.AllClose(got[i], ref[i], 1e-9, 1e-12) {
			t.Fatalf("output %d differs: %v", i, tensor.MaxAbsDiff(got[i], ref[i]))
		}
	}
}

// TestTensorParallelMatchesUnsharded reproduces Fig. 1c (bottom):
// Megatron-style TP — W1 column-sharded, W2 row-sharded, one all-reduce.
func TestTensorParallelMatchesUnsharded(t *testing.T) {
	g := ffnGraph(t)
	m := mesh.MustNew(mesh.Axis{Name: "data", Size: 1}, mesh.Axis{Name: "model", Size: 2})
	specs := []mesh.Spec{
		mesh.Replicated(2),  // x replicated
		mesh.Replicated(2),  // y replicated
		mesh.P("", "model"), // w1 column-sharded
		mesh.P("model", ""), // w2 row-sharded
	}
	ref, got, stats := runBoth(t, g, m, specs, ffnInputs(2))
	for i := range ref {
		if !tensor.AllClose(got[i], ref[i], 1e-9, 1e-12) {
			t.Fatalf("output %d differs: %v", i, tensor.MaxAbsDiff(got[i], ref[i]))
		}
	}
	// The second matmul must have triggered exactly one all-reduce
	// ("the second matrix-multiply requires only one final all-reduce").
	if stats.CollectiveCount[AllReduce] != 1 {
		t.Fatalf("all_reduce count %d, want 1", stats.CollectiveCount[AllReduce])
	}
	if stats.CollectiveCount[AllGather] != 0 {
		t.Fatalf("unexpected all-gathers: %d", stats.CollectiveCount[AllGather])
	}
}

// TestDPxTPMatchesUnsharded combines both on a 2x2 mesh.
func TestDPxTPMatchesUnsharded(t *testing.T) {
	g := ffnGraph(t)
	m := mesh.MustNew(mesh.Axis{Name: "data", Size: 2}, mesh.Axis{Name: "model", Size: 2})
	specs := []mesh.Spec{
		mesh.P("data", ""),
		mesh.P("data", ""),
		mesh.P("", "model"),
		mesh.P("model", ""),
	}
	ref, got, _ := runBoth(t, g, m, specs, ffnInputs(3))
	for i := range ref {
		if !tensor.AllClose(got[i], ref[i], 1e-9, 1e-12) {
			t.Fatalf("output %d differs: %v", i, tensor.MaxAbsDiff(got[i], ref[i]))
		}
	}
}

// TestGradientsUnderDataParallelism checks the full value-and-grad graph,
// including the xent mean correction under batch sharding.
func TestGradientsUnderDataParallelism(t *testing.T) {
	g := ffnGraph(t)
	gg, err := autodiff.ValueAndGrad(g, g.Inputs[2:])
	if err != nil {
		t.Fatal(err)
	}
	m := mesh.MustNew(mesh.Axis{Name: "data", Size: 4})
	specs := []mesh.Spec{
		mesh.P("data", ""),
		mesh.P("data", ""),
		mesh.Replicated(2),
		mesh.Replicated(2),
	}
	ref, got, _ := runBoth(t, gg, m, specs, ffnInputs(4))
	for i := range ref {
		if !tensor.AllClose(got[i], ref[i], 1e-9, 1e-12) {
			t.Fatalf("grad output %d differs: %v", i, tensor.MaxAbsDiff(got[i], ref[i]))
		}
	}
}

func TestGradientsUnderTensorParallelism(t *testing.T) {
	g := ffnGraph(t)
	gg, err := autodiff.ValueAndGrad(g, g.Inputs[2:])
	if err != nil {
		t.Fatal(err)
	}
	m := mesh.MustNew(mesh.Axis{Name: "model", Size: 3})
	specs := []mesh.Spec{
		mesh.Replicated(2),
		mesh.Replicated(2),
		mesh.P("", "model"),
		mesh.P("model", ""),
	}
	ref, got, _ := runBoth(t, gg, m, specs, ffnInputs(5))
	for i := range ref {
		if !tensor.AllClose(got[i], ref[i], 1e-9, 1e-12) {
			t.Fatalf("grad output %d differs: %v", i, tensor.MaxAbsDiff(got[i], ref[i]))
		}
	}
}

func TestShardGatherRoundTrip(t *testing.T) {
	m := mesh.MustNew(mesh.Axis{Name: "a", Size: 2}, mesh.Axis{Name: "b", Size: 3})
	rng := tensor.NewRNG(6)
	global := rng.Normal(1, 6, 6)
	for _, spec := range []mesh.Spec{
		mesh.Replicated(2),
		mesh.P("a", ""),
		mesh.P("", "b"),
		mesh.P("a", "b"),
		mesh.P("b", "a"),
	} {
		shards := make([]*tensor.Tensor, m.NumDevices())
		for d := 0; d < m.NumDevices(); d++ {
			sh, err := Shard(global, spec, m, d)
			if err != nil {
				t.Fatalf("spec %s: %v", spec, err)
			}
			shards[d] = sh
		}
		back, err := Gather(shards, spec, m, global.Shape())
		if err != nil {
			t.Fatalf("spec %s: %v", spec, err)
		}
		if !tensor.AllClose(back, global, 0, 0) {
			t.Fatalf("spec %s: gather(shard(x)) != x", spec)
		}
	}
}

func TestShardShapesMatchSpec(t *testing.T) {
	m := mesh.MustNew(mesh.Axis{Name: "a", Size: 2}, mesh.Axis{Name: "b", Size: 3})
	global := tensor.New(4, 6)
	sh, err := Shard(global, mesh.P("a", "b"), m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Dim(0) != 2 || sh.Dim(1) != 2 {
		t.Fatalf("shard shape %v", sh.Shape())
	}
}

func TestPartitionRejectsBadSpecs(t *testing.T) {
	g := ffnGraph(t)
	m := mesh.MustNew(mesh.Axis{Name: "data", Size: 3})
	// 8 rows not divisible by 3.
	specs := []mesh.Spec{mesh.P("data", ""), mesh.P("data", ""), mesh.Replicated(2), mesh.Replicated(2)}
	if _, err := Partition(g, m, specs); err == nil {
		t.Fatal("want divisibility error")
	}
	if _, err := Partition(g, m, specs[:2]); err == nil {
		t.Fatal("want input count error")
	}
}

func TestMismatchedElementwiseGathers(t *testing.T) {
	// a sharded + b sharded differently forces gathers but stays correct.
	g, err := trace.Trace("mix", func(b *trace.Builder) []*ir.Value {
		x := b.Input("x", 4, 4)
		y := b.Input("y", 4, 4)
		return []*ir.Value{b.Sum(b.Add(x, b.Transpose(y)))}
	})
	if err != nil {
		t.Fatal(err)
	}
	m := mesh.MustNew(mesh.Axis{Name: "d", Size: 2})
	specs := []mesh.Spec{mesh.P("d", ""), mesh.P("d", "")}
	rng := tensor.NewRNG(8)
	inputs := []*tensor.Tensor{rng.Normal(1, 4, 4), rng.Normal(1, 4, 4)}
	ref, got, stats := runBoth(t, g, m, specs, inputs)
	if !tensor.AllClose(got[0], ref[0], 1e-9, 1e-12) {
		t.Fatalf("differs: %v vs %v", got[0], ref[0])
	}
	if stats.CollectiveCount[AllGather] == 0 {
		t.Fatal("expected at least one all-gather for mismatched operands")
	}
}

func TestReplicationIsConsistentAcrossDevices(t *testing.T) {
	// After a TP matmul + all-reduce, every device must hold identical
	// replicated outputs. Run the plan and gather: already covered; here we
	// verify plan metadata instead.
	g := ffnGraph(t)
	m := mesh.MustNew(mesh.Axis{Name: "model", Size: 2})
	specs := []mesh.Spec{
		mesh.Replicated(2), mesh.Replicated(2),
		mesh.P("", "model"), mesh.P("model", ""),
	}
	plan, err := Partition(g, m, specs)
	if err != nil {
		t.Fatal(err)
	}
	// Final loss must be fully replicated.
	if !plan.Out[0].IsReplicated() {
		t.Fatalf("loss spec %s", plan.Out[0])
	}
	tot := plan.TotalCollectives()
	if tot[AllReduce] == 0 {
		t.Fatal("TP plan must contain an all-reduce")
	}
}

func TestDeviceFLOPsScaleWithSharding(t *testing.T) {
	g := ffnGraph(t)
	mTP := mesh.MustNew(mesh.Axis{Name: "model", Size: 2})
	specsTP := []mesh.Spec{
		mesh.Replicated(2), mesh.Replicated(2),
		mesh.P("", "model"), mesh.P("model", ""),
	}
	planTP, err := Partition(g, mTP, specsTP)
	if err != nil {
		t.Fatal(err)
	}
	mRep := mesh.MustNew(mesh.Axis{Name: "model", Size: 1})
	specsRep := []mesh.Spec{
		mesh.Replicated(2), mesh.Replicated(2), mesh.Replicated(2), mesh.Replicated(2),
	}
	planRep, err := Partition(g, mRep, specsRep)
	if err != nil {
		t.Fatal(err)
	}
	var fTP, fRep int64
	for _, ep := range planTP.Eqns {
		fTP += ep.DeviceFLOPs
	}
	for _, ep := range planRep.Eqns {
		fRep += ep.DeviceFLOPs
	}
	if fTP*2 != fRep {
		t.Fatalf("TP per-device FLOPs %d, replicated %d; want exactly half", fTP, fRep)
	}
}
