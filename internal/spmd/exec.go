package spmd

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mesh"
	"repro/internal/tensor"
)

// Stats aggregates what the sharded execution actually did, for assertions
// and for cost accounting.
type Stats struct {
	CollectiveCount map[CollectiveKind]int
	CollectiveElems map[CollectiveKind]int
	LocalFLOPs      int64
}

func newStats() *Stats {
	return &Stats{
		CollectiveCount: map[CollectiveKind]int{},
		CollectiveElems: map[CollectiveKind]int{},
	}
}

// Run executes a partitioned graph with real per-device shards and returns
// the gathered global outputs. Collective-free equation runs execute through
// compiled interp.Programs cached on the plan (see compile.go); equations
// that reshard operands or end in collectives run on the reference
// per-equation path below.
func Run(p *Plan, inputs []*tensor.Tensor) ([]*tensor.Tensor, *Stats, error) {
	n := p.Mesh.NumDevices()
	if len(inputs) != len(p.Graph.Inputs) {
		return nil, nil, fmt.Errorf("spmd: %d inputs for %d graph inputs", len(inputs), len(p.Graph.Inputs))
	}
	if err := p.compile(); err != nil {
		return nil, nil, err
	}
	envs := make([]map[int]*tensor.Tensor, n)
	for d := range envs {
		envs[d] = make(map[int]*tensor.Tensor)
	}
	stats := newStats()

	specs := make(map[int]mesh.Spec)
	for i, v := range p.Graph.Inputs {
		specs[v.ID] = p.In[i]
		for d := 0; d < n; d++ {
			sh, err := Shard(inputs[i], p.In[i], p.Mesh, d)
			if err != nil {
				return nil, nil, fmt.Errorf("spmd: sharding input %d: %w", i, err)
			}
			envs[d][v.ID] = sh
		}
	}

	for _, st := range p.steps {
		if st.prog != nil {
			// Compiled segment: run the local program on every device slot.
			args := make([]*tensor.Tensor, len(st.inIDs))
			for d := 0; d < n; d++ {
				for j, id := range st.inIDs {
					args[j] = envs[d][id]
				}
				outs, err := st.prog.Run(args)
				if err != nil {
					return nil, nil, fmt.Errorf("spmd: eqns [%d,%d) device %d: %w", st.lo, st.hi, d, err)
				}
				for j, id := range st.outIDs {
					envs[d][id] = outs[j]
				}
			}
			for i := st.lo; i < st.hi; i++ {
				stats.LocalFLOPs += p.Eqns[i].DeviceFLOPs
				specs[p.Graph.Eqns[i].Outputs[0].ID] = p.Eqns[i].OutSpec
			}
			continue
		}
		i := st.lo
		e := p.Graph.Eqns[i]
		ep := p.Eqns[i]
		// Pre-gathers: materialize resharded operand copies for this
		// equation only. The canonical shards in envs keep the propagated
		// spec, since other consumers were planned against it.
		local := make([][]*tensor.Tensor, len(e.Inputs)) // [operand][device]
		for j, v := range e.Inputs {
			cur := specs[v.ID]
			want := ep.OperandSpecs[j]
			if cur.Equal(want) {
				continue
			}
			global, err := Gather(collectShards(envs, v.ID), cur, p.Mesh, v.Shape)
			if err != nil {
				return nil, nil, fmt.Errorf("spmd: eqn %d reshard: %w", i, err)
			}
			local[j] = make([]*tensor.Tensor, n)
			for d := 0; d < n; d++ {
				sh, err := Shard(global, want, p.Mesh, d)
				if err != nil {
					return nil, nil, fmt.Errorf("spmd: eqn %d reshard: %w", i, err)
				}
				local[j][d] = sh
			}
			stats.CollectiveCount[AllGather]++
			stats.CollectiveElems[AllGather] += v.Size()
		}
		// Local op on every device.
		for d := 0; d < n; d++ {
			args := make([]*tensor.Tensor, len(e.Inputs))
			for j, v := range e.Inputs {
				if local[j] != nil {
					args[j] = local[j][d]
				} else {
					args[j] = envs[d][v.ID]
				}
			}
			out, err := applyLocal(e, ep, args, p.Mesh)
			if err != nil {
				return nil, nil, fmt.Errorf("spmd: eqn %d device %d: %w", i, d, err)
			}
			if ep.ScaleCorrection != 1 {
				out = tensor.Scale(out, ep.ScaleCorrection)
			}
			envs[d][e.Outputs[0].ID] = out
		}
		stats.LocalFLOPs += ep.DeviceFLOPs
		// Post collectives.
		for _, c := range ep.Post {
			applyCollective(envs, p.Mesh, e.Outputs[0].ID, c)
			stats.CollectiveCount[c.Kind]++
			stats.CollectiveElems[c.Kind] += c.Elems
		}
		specs[e.Outputs[0].ID] = ep.OutSpec
	}

	outs := make([]*tensor.Tensor, len(p.Graph.Outputs))
	for i, o := range p.Graph.Outputs {
		g, err := Gather(collectShards(envs, o.ID), specs[o.ID], p.Mesh, o.Shape)
		if err != nil {
			return nil, nil, fmt.Errorf("spmd: gathering output %d: %w", i, err)
		}
		outs[i] = g
	}
	return outs, stats, nil
}

// applyLocal executes the local portion of an equation. Shape-carrying ops
// whose attrs reference global shapes are only planned with replicated
// outputs, so the global attrs are valid locally.
func applyLocal(e *ir.Equation, ep EqnPlan, args []*tensor.Tensor, m *mesh.Mesh) (*tensor.Tensor, error) {
	return interp.Apply(e.Op, e.Attrs, args)
}

func collectShards(envs []map[int]*tensor.Tensor, id int) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(envs))
	for d := range envs {
		out[d] = envs[d][id]
	}
	return out
}

// applyCollective performs an all-reduce (sum or mean) over the named mesh
// axis: devices differing only in that axis coordinate exchange and combine
// their local tensors.
func applyCollective(envs []map[int]*tensor.Tensor, m *mesh.Mesh, id int, c Collective) {
	groups := axisGroups(m, c.Axis)
	for _, g := range groups {
		sum := envs[g[0]][id].Clone()
		for _, d := range g[1:] {
			sum = tensor.Add(sum, envs[d][id])
		}
		if c.Kind == AllReduceMean {
			sum = tensor.Scale(sum, 1/float64(len(g)))
		}
		for _, d := range g {
			envs[d][id] = sum
		}
	}
}

// axisGroups partitions device slots into groups that differ only in the
// coordinate of the named axis.
func axisGroups(m *mesh.Mesh, axis string) [][]int {
	ai := m.AxisIndex(axis)
	if ai < 0 {
		panic(fmt.Sprintf("spmd: unknown mesh axis %q", axis))
	}
	byKey := map[string][]int{}
	var order []string
	for d := 0; d < m.NumDevices(); d++ {
		c := m.Coords(d)
		c[ai] = -1
		key := fmt.Sprint(c)
		if _, ok := byKey[key]; !ok {
			order = append(order, key)
		}
		byKey[key] = append(byKey[key], d)
	}
	out := make([][]int, 0, len(order))
	for _, k := range order {
		out = append(out, byKey[k])
	}
	return out
}

// Shard extracts device slot d's shard of a global tensor under spec.
func Shard(t *tensor.Tensor, spec mesh.Spec, m *mesh.Mesh, d int) (*tensor.Tensor, error) {
	shape := t.Shape()
	if err := spec.Validate(m, shape); err != nil {
		return nil, err
	}
	coords := m.Coords(d)
	starts := make([]int, len(shape))
	sizes := append([]int(nil), shape...)
	for i, name := range spec {
		if name == "" {
			continue
		}
		ai := m.AxisIndex(name)
		sz := shape[i] / m.Axes[ai].Size
		starts[i] = coords[ai] * sz
		sizes[i] = sz
	}
	return extractBlock(t, starts, sizes), nil
}

// Gather reconstructs the global tensor from per-device shards.
func Gather(shards []*tensor.Tensor, spec mesh.Spec, m *mesh.Mesh, globalShape []int) (*tensor.Tensor, error) {
	if err := spec.Validate(m, globalShape); err != nil {
		return nil, err
	}
	out := tensor.New(globalShape...)
	for d, sh := range shards {
		if sh == nil {
			return nil, fmt.Errorf("spmd: device %d has no shard", d)
		}
		coords := m.Coords(d)
		starts := make([]int, len(globalShape))
		for i, name := range spec {
			if name == "" {
				continue
			}
			ai := m.AxisIndex(name)
			sz := globalShape[i] / m.Axes[ai].Size
			starts[i] = coords[ai] * sz
		}
		insertBlock(out, sh, starts)
	}
	return out, nil
}

// extractBlock copies the block starting at starts with the given sizes.
func extractBlock(t *tensor.Tensor, starts, sizes []int) *tensor.Tensor {
	out := tensor.New(sizes...)
	if out.Size() == 0 {
		return out
	}
	srcShape := t.Shape()
	idx := make([]int, len(sizes))
	for flat := 0; flat < out.Size(); flat++ {
		// Decode flat into idx over sizes.
		rem := flat
		for i := len(sizes) - 1; i >= 0; i-- {
			idx[i] = rem % sizes[i]
			rem /= sizes[i]
		}
		src := 0
		for i := range srcShape {
			src = src*srcShape[i] + starts[i] + idx[i]
		}
		out.Data()[flat] = t.Data()[src]
	}
	return out
}

// insertBlock writes block into dst at the given start offsets.
func insertBlock(dst, block *tensor.Tensor, starts []int) {
	dstShape := dst.Shape()
	sizes := block.Shape()
	if block.Size() == 0 {
		return
	}
	idx := make([]int, len(sizes))
	for flat := 0; flat < block.Size(); flat++ {
		rem := flat
		for i := len(sizes) - 1; i >= 0; i-- {
			idx[i] = rem % sizes[i]
			rem /= sizes[i]
		}
		d := 0
		for i := range dstShape {
			d = d*dstShape[i] + starts[i] + idx[i]
		}
		dst.Data()[d] = block.Data()[flat]
	}
}
