// Package spmd implements a GSPMD-style SPMD partitioner and a sharded
// executor for IR graphs. Given a device mesh and partition specs for the
// graph inputs, Plan propagates shardings through every equation and decides
// which collective operations (all-reduce, all-gather) each equation needs —
// the role XLA's SPMD partitioner plays under JAX (§2.1 of the paper). Run
// then executes the plan with real per-device shards, which lets tests prove
// that data-parallel and tensor-parallel instantiations (Fig. 1c) match the
// unsharded numerics exactly.
package spmd

import (
	"fmt"
	"sync"

	"repro/internal/ir"
	"repro/internal/mesh"
)

// CollectiveKind enumerates the collectives the partitioner inserts.
type CollectiveKind string

const (
	AllReduce     CollectiveKind = "all_reduce"      // sum across a mesh axis
	AllReduceMean CollectiveKind = "all_reduce_mean" // mean across a mesh axis
	AllGather     CollectiveKind = "all_gather"      // gather a sharded value to replicated
)

// Collective describes one inserted communication op.
type Collective struct {
	Kind  CollectiveKind
	Axis  string // mesh axis the collective runs over
	Elems int    // global element count involved (for cost accounting)
}

// EqnPlan is the partitioning decision for one equation.
type EqnPlan struct {
	// OperandSpecs are the specs operands are brought to before the local op
	// (after any pre-gathers).
	OperandSpecs []mesh.Spec
	// PreGathers lists collectives needed to reshard operands.
	PreGathers []Collective
	// OutSpec is the sharding of the (single) output after Post collectives.
	OutSpec mesh.Spec
	// Post lists collectives applied to the local result (e.g. the all-reduce
	// completing a contraction over a sharded dimension).
	Post []Collective
	// ScaleCorrection rescales the local result before Post collectives;
	// 1 means none. Used for mean-loss semantics under batch sharding.
	ScaleCorrection float64
	// DeviceFLOPs is the per-device floating point cost of the local op.
	DeviceFLOPs int64
}

// Plan is a fully partitioned graph.
type Plan struct {
	Graph *ir.Graph
	Mesh  *mesh.Mesh
	In    []mesh.Spec
	Out   []mesh.Spec
	Eqns  []EqnPlan

	specs map[int]mesh.Spec // value ID -> spec

	// Cached compiled execution (see compile.go): collective-free equation
	// runs lowered to interp.Programs over local shapes, built on first Run.
	compileOnce sync.Once
	compileErr  error
	steps       []execStep
}

// TotalCollectives aggregates collective element counts by kind.
func (p *Plan) TotalCollectives() map[CollectiveKind]int {
	tot := map[CollectiveKind]int{}
	for _, ep := range p.Eqns {
		for _, c := range ep.PreGathers {
			tot[c.Kind] += c.Elems
		}
		for _, c := range ep.Post {
			tot[c.Kind] += c.Elems
		}
	}
	return tot
}

// ValueSpec returns the inferred spec for a value ID.
func (p *Plan) ValueSpec(id int) (mesh.Spec, bool) {
	s, ok := p.specs[id]
	return s, ok
}

// Partition runs sharding propagation over g.
func Partition(g *ir.Graph, m *mesh.Mesh, inSpecs []mesh.Spec) (*Plan, error) {
	if len(inSpecs) != len(g.Inputs) {
		return nil, fmt.Errorf("spmd: %d input specs for %d inputs", len(inSpecs), len(g.Inputs))
	}
	p := &Plan{Graph: g, Mesh: m, In: inSpecs, specs: make(map[int]mesh.Spec)}
	for i, v := range g.Inputs {
		if err := inSpecs[i].Validate(m, v.Shape); err != nil {
			return nil, fmt.Errorf("spmd: input %d (%s): %w", i, v, err)
		}
		p.specs[v.ID] = inSpecs[i].Clone()
	}
	for i, e := range g.Eqns {
		ep, err := p.planEqn(e)
		if err != nil {
			return nil, fmt.Errorf("spmd: eqn %d (%s): %w", i, e.Op, err)
		}
		p.Eqns = append(p.Eqns, ep)
		p.specs[e.Outputs[0].ID] = ep.OutSpec
	}
	for _, o := range g.Outputs {
		p.Out = append(p.Out, p.specs[o.ID].Clone())
	}
	return p, nil
}

func (p *Plan) axisSize(name string) int {
	s, err := p.Mesh.AxisSize(name)
	if err != nil {
		panic(err)
	}
	return s
}

// gatherOperand returns a pre-gather collective bringing operand v (currently
// spec s) to fully replicated.
func gatherOperand(v *ir.Value, s mesh.Spec) (Collective, mesh.Spec) {
	return Collective{Kind: AllGather, Elems: v.Size()}, mesh.Replicated(len(v.Shape))
}

func (p *Plan) planEqn(e *ir.Equation) (EqnPlan, error) {
	in := e.Inputs
	specs := make([]mesh.Spec, len(in))
	for i, v := range in {
		s, ok := p.specs[v.ID]
		if !ok {
			return EqnPlan{}, fmt.Errorf("no spec for operand %s", v)
		}
		specs[i] = s.Clone()
	}
	ep := EqnPlan{OperandSpecs: specs, ScaleCorrection: 1}

	// gather forces operand i to be fully replicated.
	gather := func(i int) {
		if specs[i].IsReplicated() {
			return
		}
		c, rs := gatherOperand(in[i], specs[i])
		c.Axis = firstShardedAxis(specs[i])
		ep.PreGathers = append(ep.PreGathers, c)
		specs[i] = rs
	}

	switch e.Op {
	case ir.OpMatMul:
		sa, sb := specs[0], specs[1]
		switch {
		case sa[1] != "" && sa[1] == sb[0]:
			// Contraction over a sharded dimension: local partial matmuls
			// followed by an all-reduce over that mesh axis (Megatron-style
			// row-parallel second matmul, Fig. 1c bottom).
			if sa[0] != "" && sa[0] == sb[1] {
				gather(1)
				return p.planEqn(e) // replan with the gathered operand
			}
			kAxis := sa[1]
			ep.OutSpec = mesh.P(sa[0], sb[1])
			ep.Post = append(ep.Post, Collective{Kind: AllReduce, Axis: kAxis, Elems: outSize(e)})
			ep.DeviceFLOPs = matmulFLOPs(p, in[0], sa, in[1], sb)
			return ep, nil
		case sa[1] == "" && sb[0] == "":
			if sa[0] != "" && sa[0] == sb[1] {
				// Same mesh axis would shard both output dims; gather B.
				gather(1)
				sb = specs[1]
			}
			ep.OutSpec = mesh.P(sa[0], sb[1])
			ep.DeviceFLOPs = matmulFLOPs(p, in[0], sa, in[1], specs[1])
			return ep, nil
		default:
			// Mismatched contraction sharding: gather whichever operand has a
			// sharded contraction axis, then replan.
			if sa[1] != "" {
				gather(0)
			}
			if specs[1][0] != "" {
				gather(1)
			}
			sa, sb = specs[0], specs[1]
			if sa[0] != "" && sa[0] == sb[1] {
				gather(1)
				sb = specs[1]
			}
			ep.OutSpec = mesh.P(sa[0], sb[1])
			ep.DeviceFLOPs = matmulFLOPs(p, in[0], sa, in[1], sb)
			return ep, nil
		}

	case ir.OpAdd, ir.OpSub, ir.OpMul:
		// Scalar operands broadcast; otherwise operand specs must agree, or
		// we gather both to replicated.
		a, b := specs[0], specs[1]
		switch {
		case len(in[1].Shape) == 0:
			gather(1)
			ep.OutSpec = a.Clone()
		case len(in[0].Shape) == 0:
			gather(0)
			ep.OutSpec = b.Clone()
		case a.Equal(b):
			ep.OutSpec = a.Clone()
		default:
			gather(0)
			gather(1)
			ep.OutSpec = mesh.Replicated(len(in[0].Shape))
		}
		return ep, nil

	case ir.OpTanhGrad:
		if !specs[0].Equal(specs[1]) {
			gather(0)
			gather(1)
		}
		ep.OutSpec = specs[0].Clone()
		return ep, nil

	case ir.OpScale, ir.OpReLU, ir.OpReLUMask, ir.OpTanh, ir.OpYield:
		ep.OutSpec = specs[0].Clone()
		return ep, nil

	case ir.OpTranspose:
		ep.OutSpec = mesh.P(specs[0][1], specs[0][0])
		return ep, nil

	case ir.OpReshape:
		gather(0)
		ep.OutSpec = mesh.Replicated(len(e.Attrs.Shape))
		return ep, nil

	case ir.OpSum:
		ep.OutSpec = mesh.Replicated(0)
		for _, ax := range shardedAxes(specs[0]) {
			ep.Post = append(ep.Post, Collective{Kind: AllReduce, Axis: ax, Elems: 1})
		}
		return ep, nil

	case ir.OpSumAxis0:
		s := specs[0]
		ep.OutSpec = s[1:].Clone()
		if s[0] != "" {
			ep.Post = append(ep.Post, Collective{Kind: AllReduce, Axis: s[0], Elems: outSize(e)})
		}
		return ep, nil

	case ir.OpBroadcast0:
		ep.OutSpec = append(mesh.P(""), specs[0]...)
		return ep, nil

	case ir.OpBroadcastS:
		ep.OutSpec = mesh.Replicated(len(e.Attrs.Shape))
		return ep, nil

	case ir.OpSoftmax:
		if specs[0][1] != "" {
			gather(0)
		}
		ep.OutSpec = specs[0].Clone()
		return ep, nil

	case ir.OpXent:
		// Class axis must be local; batch axis may be sharded, in which case
		// the local mean loss is averaged across the group (equal shard
		// sizes make the mean of means exact).
		if specs[0][1] != "" {
			gather(0)
		}
		if specs[1][1] != "" {
			gather(1)
		}
		if !specs[0].Equal(specs[1]) {
			gather(0)
			gather(1)
		}
		ep.OutSpec = mesh.Replicated(0)
		if specs[0][0] != "" {
			ep.Post = append(ep.Post, Collective{Kind: AllReduceMean, Axis: specs[0][0], Elems: 1})
		}
		return ep, nil

	case ir.OpXentGrad:
		if specs[0][1] != "" {
			gather(0)
		}
		if specs[1][1] != "" {
			gather(1)
		}
		if !specs[0].Equal(specs[1]) {
			gather(0)
			gather(1)
		}
		ep.OutSpec = specs[0].Clone()
		if specs[0][0] != "" {
			// Local grads divide by local rows; global mean needs /global
			// rows, so scale by 1/groupSize.
			ep.ScaleCorrection = 1 / float64(p.axisSize(specs[0][0]))
		}
		return ep, nil

	case ir.OpZeros, ir.OpConst:
		ep.OutSpec = mesh.Replicated(len(e.Attrs.Shape))
		return ep, nil

	default:
		return EqnPlan{}, fmt.Errorf("unsupported op")
	}
}

func outSize(e *ir.Equation) int { return e.Outputs[0].Size() }

func firstShardedAxis(s mesh.Spec) string {
	for _, n := range s {
		if n != "" {
			return n
		}
	}
	return ""
}

func shardedAxes(s mesh.Spec) []string {
	var out []string
	for _, n := range s {
		if n != "" {
			out = append(out, n)
		}
	}
	return out
}

func matmulFLOPs(p *Plan, a *ir.Value, sa mesh.Spec, b *ir.Value, sb mesh.Spec) int64 {
	m, k := a.Shape[0], a.Shape[1]
	n := b.Shape[1]
	if sa[0] != "" {
		m /= p.axisSize(sa[0])
	}
	if sa[1] != "" {
		k /= p.axisSize(sa[1])
	}
	if sb[1] != "" {
		n /= p.axisSize(sb[1])
	}
	return 2 * int64(m) * int64(k) * int64(n)
}
