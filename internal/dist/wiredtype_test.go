package dist

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"testing"

	"repro/internal/tensor"
)

// TestLossyRoundTripF32Canaries pins the f32 value mapping on the IEEE edge
// cases: denormals flush through float32 conversion deterministically,
// signed zeros keep their sign, NaN stays NaN, and infinities survive.
func TestLossyRoundTripF32Canaries(t *testing.T) {
	in := []float64{0, math.Copysign(0, -1), 5e-324, -5e-324, 1e-45, math.NaN(), math.Inf(1), math.Inf(-1), 1.0 / 3.0}
	got := append([]float64(nil), in...)
	LossyRoundTrip(DTF32, got)
	for i, v := range got {
		want := float64(float32(in[i]))
		if math.IsNaN(want) {
			if !math.IsNaN(v) {
				t.Fatalf("elem %d: %v, want NaN", i, v)
			}
			continue
		}
		if math.Float64bits(v) != math.Float64bits(want) {
			t.Fatalf("elem %d: bits %x, want %x", i, math.Float64bits(v), math.Float64bits(want))
		}
	}
	if math.Signbit(got[1]) != true {
		t.Fatal("-0.0 lost its sign through the f32 round trip")
	}
}

// TestLossyRoundTripInt8Q pins the quantizer's scale-edge behavior: the
// max-magnitude element maps to exactly ±127 steps (so requantizing an
// already quantized payload is the identity in value space), NaN maps to
// zero, infinities clamp to the extremes, and an all-zero (or all-nonfinite)
// bucket ships scale 0 and decodes to all zeros instead of dividing by zero.
func TestLossyRoundTripInt8Q(t *testing.T) {
	t.Run("max maps to extreme", func(t *testing.T) {
		in := []float64{3.7, -9.25, 0.01, 9.25}
		got := append([]float64(nil), in...)
		LossyRoundTrip(DTInt8Q, got)
		scale := 9.25 / 127
		if got[1] != -127*scale || got[3] != 127*scale {
			t.Fatalf("extremes %v / %v, want ±%v", got[1], got[3], 127*scale)
		}
		for i, v := range got {
			if math.Abs(v-in[i]) > scale/2+1e-12 {
				t.Fatalf("elem %d: %v strays more than half a step from %v", i, v, in[i])
			}
		}
	})
	t.Run("all zero", func(t *testing.T) {
		got := []float64{0, 0, math.Copysign(0, -1)}
		LossyRoundTrip(DTInt8Q, got)
		for i, v := range got {
			if v != 0 {
				t.Fatalf("elem %d: %v, want 0", i, v)
			}
		}
	})
	t.Run("nan and inf", func(t *testing.T) {
		got := []float64{math.NaN(), math.Inf(1), math.Inf(-1), 1}
		LossyRoundTrip(DTInt8Q, got)
		scale := 1.0 / 127
		if got[0] != 0 {
			t.Fatalf("NaN quantized to %v, want 0", got[0])
		}
		if got[1] != 127*scale || got[2] != -127*scale {
			t.Fatalf("infinities quantized to %v / %v, want clamp to ±%v", got[1], got[2], 127*scale)
		}
	})
	t.Run("idempotent", func(t *testing.T) {
		rng := rand.New(rand.NewSource(11))
		data := make([]float64, 257)
		for i := range data {
			data[i] = rng.NormFloat64() * 42
		}
		LossyRoundTrip(DTInt8Q, data)
		again := append([]float64(nil), data...)
		LossyRoundTrip(DTInt8Q, again)
		for i := range data {
			if math.Float64bits(again[i]) != math.Float64bits(data[i]) {
				t.Fatalf("elem %d drifted on requantization: %v -> %v", i, data[i], again[i])
			}
		}
	})
}

// TestFrameRoundTripInt8Q drives quantized frames through encode→decode (both
// CRC settings) and checks the decoded values equal the LossyRoundTrip
// mapping of the input — the equivalence the error-feedback residual
// computation depends on.
func TestFrameRoundTripInt8Q(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, crc := range []bool{false, true} {
		for _, n := range []int{0, 1, 5, 129} {
			data := make([]float64, n)
			for i := range data {
				data[i] = rng.NormFloat64() * 1e2
			}
			want := append([]float64(nil), data...)
			LossyRoundTrip(DTInt8Q, want)
			h := Header{Kind: frameData, From: 0, To: 1, Tag: 7, DType: DTInt8Q, Shape: []int{n}}
			var stream bytes.Buffer
			encodeToStream(t, &stream, &h, data, crc)
			gh, ten, err := NewDecoder(&stream).ReadFrame()
			if err != nil {
				t.Fatalf("crc %v n %d: %v", crc, n, err)
			}
			if gh.DType != DTInt8Q {
				t.Fatalf("decoded dtype %v", gh.DType)
			}
			for i, v := range ten.Data() {
				if math.Float64bits(v) != math.Float64bits(want[i]) {
					t.Fatalf("crc %v n %d elem %d: %v, want %v", crc, n, i, v, want[i])
				}
			}
			tensor.Recycle(ten)
		}
	}
}

// TestDecodeCorruptInt8QFrames covers the quantized payload's own validation:
// a non-finite or negative scale prefix and truncated/padded payloads must be
// rejected as corrupt, never panic or decode garbage.
func TestDecodeCorruptInt8QFrames(t *testing.T) {
	mk := func(crc bool) []byte {
		h := Header{Kind: frameData, From: 0, To: 1, Tag: 4, DType: DTInt8Q, Shape: []int{4}}
		buf := EncodeFrame(&h, []float64{1, -2, 3, -4}, crc)
		out := append([]byte(nil), buf...)
		recycleFrameBuf(buf)
		return out
	}
	plain := mk(false)
	scaleOff := len(plain) - 4 - 8 // payload tail: 8-byte scale + 4 int8
	cases := []struct {
		name   string
		mutate func() []byte
	}{
		{"nan scale", func() []byte {
			b := mk(false)
			putF64(b[scaleOff:], math.NaN())
			return b
		}},
		{"inf scale", func() []byte {
			b := mk(false)
			putF64(b[scaleOff:], math.Inf(1))
			return b
		}},
		{"negative scale", func() []byte {
			b := mk(false)
			putF64(b[scaleOff:], -1.0)
			return b
		}},
		{"truncated payload", func() []byte {
			b := mk(false)
			// Shrink the frame length so the payload is one quantized byte
			// short of the 4-element shape.
			putU32(b, uint32(len(b)-4-1))
			return b[:len(b)-1]
		}},
		{"padded payload", func() []byte {
			b := mk(false)
			putU32(b, uint32(len(b)-4+1))
			return append(b, 0x7f)
		}},
		{"flipped quantized byte fails crc", func() []byte {
			b := mk(true)
			b[len(b)-5] ^= 0xFF // last int8 before the CRC trailer
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := NewDecoder(bytes.NewReader(tc.mutate())).ReadFrame()
			if err == nil {
				t.Fatal("corrupt int8q frame decoded successfully")
			}
		})
	}
}

// TestBatchFrameRoundTrip coalesces several small frames (mixed dtypes, with
// and without an outer CRC) into one batch frame and checks the decoder
// transparently yields each inner frame in order, then clean EOF.
func TestBatchFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, outerCRC := range []bool{false, true} {
		var inner [][]byte
		var want []struct {
			h    Header
			data []float64
		}
		for i, dt := range []DType{DTF64, DTF32, DTF64, DTInt8Q} {
			n := rng.Intn(6)
			data := make([]float64, n)
			for j := range data {
				data[j] = rng.NormFloat64() * 10
			}
			h := Header{Kind: frameData, From: 2, To: 3, Tag: 100 + i, DType: dt, Shape: []int{n}}
			inner = append(inner, append([]byte(nil), EncodeFrame(&h, data, i%2 == 0)...))
			exp := append([]float64(nil), data...)
			LossyRoundTrip(dt, exp)
			want = append(want, struct {
				h    Header
				data []float64
			}{h, exp})
		}
		batch := EncodeBatchFrame(2, 3, inner, outerCRC)
		dec := NewDecoder(bytes.NewReader(append([]byte(nil), batch...)))
		recycleFrameBuf(batch)
		for i, w := range want {
			h, ten, err := dec.ReadFrame()
			if err != nil {
				t.Fatalf("outerCRC %v inner %d: %v", outerCRC, i, err)
			}
			if h.Tag != w.h.Tag || h.DType != w.h.DType || h.From != 2 || h.To != 3 {
				t.Fatalf("inner %d header %+v, want %+v", i, h, w.h)
			}
			for j, v := range ten.Data() {
				if math.Float64bits(v) != math.Float64bits(w.data[j]) {
					t.Fatalf("inner %d elem %d: %v, want %v", i, j, v, w.data[j])
				}
			}
			tensor.Recycle(ten)
		}
		if _, _, err := dec.ReadFrame(); err != io.EOF {
			t.Fatalf("after batch: err %v, want io.EOF", err)
		}
	}
}

// TestBatchFrameCorrupt pins the batch envelope's failure modes: an empty
// batch, a truncated inner frame, a nested batch, and trailing garbage are
// all corrupt — rejected with an error, never a panic or a silent skip.
func TestBatchFrameCorrupt(t *testing.T) {
	mkInner := func(tag int) []byte {
		h := Header{Kind: frameData, From: 0, To: 1, Tag: tag, DType: DTF64, Shape: []int{2}}
		buf := EncodeFrame(&h, []float64{1, 2}, false)
		out := append([]byte(nil), buf...)
		recycleFrameBuf(buf)
		return out
	}
	cases := []struct {
		name string
		mk   func() []byte
	}{
		{"empty batch", func() []byte {
			b := EncodeBatchFrame(0, 1, nil, false)
			out := append([]byte(nil), b...)
			recycleFrameBuf(b)
			return out
		}},
		{"truncated inner frame", func() []byte {
			inner := mkInner(1)
			b := EncodeBatchFrame(0, 1, [][]byte{inner[:len(inner)-3]}, false)
			out := append([]byte(nil), b...)
			recycleFrameBuf(b)
			return out
		}},
		{"nested batch", func() []byte {
			leaf := EncodeBatchFrame(0, 1, [][]byte{mkInner(2)}, false)
			nested := EncodeBatchFrame(0, 1, [][]byte{append([]byte(nil), leaf...)}, false)
			recycleFrameBuf(leaf)
			out := append([]byte(nil), nested...)
			recycleFrameBuf(nested)
			return out
		}},
		{"trailing garbage", func() []byte {
			b := EncodeBatchFrame(0, 1, [][]byte{mkInner(3)}, false)
			out := append([]byte(nil), b...)
			recycleFrameBuf(b)
			// Grow the batch payload by 3 junk bytes the inner walk cannot
			// consume: patch both the outer length and the shape dim.
			out = append(out, 0xA7, 0x01, 0x00)
			putU32(out, uint32(len(out)-4))
			putU32(out[headerFixed:], uint32(int(readU32(out[headerFixed:]))+3))
			return out
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := NewDecoder(bytes.NewReader(tc.mk())).ReadFrame()
			if err == nil {
				t.Fatal("corrupt batch decoded successfully")
			}
		})
	}
}

// putU32/putF64/readU32 are little test shims over the wire's endianness.
func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func readU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putF64(b []byte, v float64) {
	u := math.Float64bits(v)
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
}

// TestLossyTagWindowSelectsDType sends one tensor inside and one outside the
// armed lossy window across a two-endpoint mesh and checks only the
// in-window payload lost precision — the property that keeps losses and
// checkpoints lossless while gradients compress.
func TestLossyTagWindowSelectsDType(t *testing.T) {
	mesh, err := NewLocalMesh(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Close()
	mesh.SetWireDType(DTF32)
	mesh.SetLossyTagWindow(1000, 2000)

	v := 1.0 / 3.0 // not f32-representable
	send := func(tag int) {
		ten := tensor.Scalar(v)
		mesh.Send(0, 1, tag, ten)
		tensor.Recycle(ten)
	}
	send(1500) // in window: f32
	send(2000) // half-open upper bound: lossless
	send(999)  // below window: lossless

	in, err := mesh.Recv(1, 0, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Data()[0]; got != float64(float32(v)) {
		t.Fatalf("in-window payload %v, want f32-rounded %v", got, float64(float32(v)))
	}
	tensor.Recycle(in)
	for _, tag := range []int{2000, 999} {
		out, err := mesh.Recv(1, 0, tag)
		if err != nil {
			t.Fatal(err)
		}
		if got := out.Data()[0]; math.Float64bits(got) != math.Float64bits(v) {
			t.Fatalf("tag %d outside window arrived as %v, want bit-exact %v", tag, got, v)
		}
		tensor.Recycle(out)
	}
}

// TestLoopbackMatchesRemoteLossiness pins the self-send contract under a
// lossy dtype: a rank sending to itself must observe the same quantized
// values its peers decode, or collective results would diverge by rank.
func TestLoopbackMatchesRemoteLossiness(t *testing.T) {
	mesh, err := NewLocalMesh(2, Options{DType: DTF32})
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Close()
	v := 1.0 / 3.0
	ten := tensor.Scalar(v)
	mesh.Send(0, 0, 42, ten)
	tensor.Recycle(ten)
	got, err := mesh.Recv(0, 0, 42)
	if err != nil {
		t.Fatal(err)
	}
	defer tensor.Recycle(got)
	if g := got.Data()[0]; g != float64(float32(v)) {
		t.Fatalf("loopback payload %v, want f32-rounded %v", g, float64(float32(v)))
	}
}

// TestSmallSendBurstSurvivesCoalescing floods one link with small tensors —
// the pattern the sender-side coalescer batches — and requires every payload
// to arrive intact and in tag order.
func TestSmallSendBurstSurvivesCoalescing(t *testing.T) {
	mesh, err := NewLocalMesh(2, Options{CRC: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Close()
	const n = 400
	for i := 0; i < n; i++ {
		ten := tensor.GetScratch(3)
		ten.Data()[0], ten.Data()[1], ten.Data()[2] = float64(i), float64(2*i), -float64(i)
		mesh.Send(0, 1, 10000+i, ten)
		tensor.Recycle(ten)
	}
	for i := 0; i < n; i++ {
		got, err := mesh.Recv(1, 0, 10000+i)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if got.Data()[0] != float64(i) || got.Data()[1] != float64(2*i) || got.Data()[2] != -float64(i) {
			t.Fatalf("payload %d arrived as %v", i, got.Data())
		}
		tensor.Recycle(got)
	}
}
