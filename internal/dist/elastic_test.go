package dist

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/tensor"
)

// TestSessionOptionDefaults pins the tuning contract flags and JobSpecs rely
// on: the package defaults themselves, and the interval×misses derivation of
// the heartbeat timeout.
func TestSessionOptionDefaults(t *testing.T) {
	var o SessionOptions
	o.fill()
	if o.HeartbeatInterval != 1*time.Second {
		t.Fatalf("default heartbeat interval %v, want 1s", o.HeartbeatInterval)
	}
	if o.HeartbeatMisses != 5 {
		t.Fatalf("default heartbeat misses %d, want 5", o.HeartbeatMisses)
	}
	if o.HeartbeatTimeout != 5*time.Second {
		t.Fatalf("default heartbeat timeout %v, want 5s (interval × misses)", o.HeartbeatTimeout)
	}
	if o.JoinGrace != 3*time.Second {
		t.Fatalf("default join grace %v, want 3s", o.JoinGrace)
	}
	if o.RendezvousTimeout != 60*time.Second {
		t.Fatalf("default rendezvous timeout %v, want 60s", o.RendezvousTimeout)
	}

	o = SessionOptions{HeartbeatInterval: 100 * time.Millisecond, HeartbeatMisses: 3}
	o.fill()
	if o.HeartbeatTimeout != 300*time.Millisecond {
		t.Fatalf("derived heartbeat timeout %v, want interval × misses = 300ms", o.HeartbeatTimeout)
	}
	// An explicit timeout wins over the derivation.
	o = SessionOptions{HeartbeatTimeout: 2 * time.Second, HeartbeatMisses: 100}
	o.fill()
	if o.HeartbeatTimeout != 2*time.Second {
		t.Fatalf("explicit heartbeat timeout overridden: %v", o.HeartbeatTimeout)
	}
}

// flexOpts is the fast tuning the flexible-rendezvous tests share.
func flexOpts() SessionOptions {
	return SessionOptions{
		RendezvousTimeout: 20 * time.Second,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		JoinGrace:         300 * time.Millisecond,
		Transport:         Options{RecvTimeout: 10 * time.Second},
	}
}

func joinRetry(addr string, o SessionOptions) (*Session, error) {
	var s *Session
	var err error
	for i := 0; i < 150; i++ {
		s, err = Join(addr, o)
		if err == nil || !strings.Contains(err.Error(), "connect") {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	return s, err
}

// TestFlexibleRendezvousFormsSmallerWorld: a coordinator asking for up to 4
// processes but accepting 2 forms a 2-world once the join-grace window
// expires with only one worker present — the elastic reform path.
func TestFlexibleRendezvousFormsSmallerWorld(t *testing.T) {
	opts := flexOpts()
	opts.MinWorld = 2
	addr := freeAddr(t)

	var worker *Session
	var workerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		worker, workerErr = joinRetry(addr, opts)
	}()
	var sawProcs int
	sess, err := CoordinateFlexible(addr, 4, opts, func(procs int) (int, []byte) {
		sawProcs = procs
		return procs, []byte(`{"n":1}`)
	})
	wg.Wait()
	if err != nil {
		t.Fatalf("flexible coordinate: %v", err)
	}
	defer sess.Close()
	if workerErr != nil {
		t.Fatalf("worker join: %v", workerErr)
	}
	defer worker.Close()
	if sawProcs != 2 || sess.World != 2 || worker.World != 2 {
		t.Fatalf("formed world %d/%d (jobFor saw %d procs), want 2", sess.World, worker.World, sawProcs)
	}
	if len(sess.Book) != 2 || sess.Book[0] == "" || sess.Book[1] == "" {
		t.Fatalf("address book %v, want both ranks", sess.Book)
	}
	if string(sess.Job) != `{"n":1}` || string(worker.Job) != `{"n":1}` {
		t.Fatalf("job payloads %q / %q", sess.Job, worker.Job)
	}
}

// TestFlexibleRendezvousReleasesSurplus: when jobFor sizes the world below
// the joined pool, the unseated workers get a clean release (ErrReleased),
// not a failure, and the seated world trains normally.
func TestFlexibleRendezvousReleasesSurplus(t *testing.T) {
	opts := flexOpts()
	opts.MinWorld = 4
	addr := freeAddr(t)

	const joiners = 3
	errs := make([]error, joiners)
	var wg sync.WaitGroup
	for w := 0; w < joiners; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := joinRetry(addr, opts)
			errs[w] = err
			if s != nil {
				t.Cleanup(func() { s.Close() })
			}
		}(w)
	}
	sess, err := CoordinateFlexible(addr, 4, opts, func(procs int) (int, []byte) {
		if procs != 4 {
			t.Errorf("jobFor saw %d procs, want 4", procs)
		}
		return 2, nil // seat half the pool
	})
	wg.Wait()
	if err != nil {
		t.Fatalf("flexible coordinate: %v", err)
	}
	defer sess.Close()
	if sess.World != 2 {
		t.Fatalf("world %d, want 2", sess.World)
	}
	released := 0
	for w, jerr := range errs {
		if jerr == nil {
			continue
		}
		if !errors.Is(jerr, ErrReleased) {
			t.Fatalf("worker %d join failed with %v, want ErrReleased", w, jerr)
		}
		released++
	}
	if released != 2 {
		t.Fatalf("%d workers released, want 2", released)
	}
}

// TestCoordinatorFailureFanOutOrdering pins the fan-out sequence a worker
// death triggers: the coordinator poisons its own data plane first (fail sees
// Transport.Poison before any control sends), then relays the failure to
// every surviving worker, whose transports poison with the coordinator-
// reported cause even though no data-plane stream from the victim exists.
func TestCoordinatorFailureFanOutOrdering(t *testing.T) {
	sessions := testWorld(t, 4, nil)
	coord := sessions[0]

	sessions[3].Abort() // SIGKILL-faithful: both planes slam shut, no goodbye

	waitPoisoned := func(s *Session, who string) error {
		deadline := time.Now().Add(15 * time.Second)
		for time.Now().Before(deadline) {
			if err := s.Transport.Err(); err != nil {
				return err
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("%s transport never poisoned after worker death", who)
		return nil
	}
	coordErr := waitPoisoned(coord, "coordinator")
	if !strings.Contains(coordErr.Error(), "rank 3") {
		t.Fatalf("coordinator poison cause %q does not name the dead rank", coordErr)
	}
	// Survivors 1 and 2 have no direct data-plane stream from rank 3; only
	// the coordinator's fail relay can poison them — and because fail poisons
	// the coordinator before sending, the relayed cause must already carry
	// the dead rank's identity.
	for _, r := range []int{1, 2} {
		err := waitPoisoned(sessions[r], "survivor")
		if !strings.Contains(err.Error(), "coordinator reported failure") && !strings.Contains(err.Error(), "rank 3") {
			t.Fatalf("rank %d poison cause %q is neither a relay nor names the dead rank", r, err)
		}
	}
}

// TestPoisonPropagationUnderConcurrentSends hammers a transport with
// concurrent senders while the peer dies abruptly, under the race detector:
// sends must stay safe (no panic, no race) against the asynchronous poison,
// every pending and future receive must error, and the poison cause must
// stick (first writer wins, not last).
func TestPoisonPropagationUnderConcurrentSends(t *testing.T) {
	a, err := NewTransport(0, Options{RecvTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTransport(1, Options{RecvTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	book := map[int]string{0: a.Addr(), 1: b.Addr()}
	a.Connect(book)
	b.Connect(book)

	// Establish the a→b stream so the senders write into a live conn.
	a.Send(0, 1, 1, tensor.Scalar(1))
	if got, err := b.Recv(1, 0, 1); err != nil {
		t.Fatal(err)
	} else {
		tensor.Recycle(got)
	}

	const senders, perSender = 8, 200
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < senders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			for i := 0; i < perSender; i++ {
				// Unique tags: nothing ever receives these; the point is the
				// sender worker racing the poison.
				a.Send(0, 1, 10_000+g*perSender+i, tensor.Scalar(float64(i)))
			}
		}(g)
	}
	// The queue-depth gauge must stay readable while TryPut races the
	// teardown: hammer QueueDepth concurrently with the senders and the
	// poison (the race detector turns an unsynchronized read into a failure).
	depthStop := make(chan struct{})
	depthDone := make(chan struct{})
	go func() {
		defer close(depthDone)
		for {
			if d := a.QueueDepth(); d < 0 {
				t.Error("negative queue depth")
				return
			}
			select {
			case <-depthStop:
				return
			default:
			}
		}
	}()
	close(start)
	b.Abort() // peer dies mid-hammer
	wg.Wait()
	close(depthStop)
	<-depthDone

	// A send into a dead peer must have poisoned a (the sender worker's write
	// fails); poll briefly since the mailbox drains asynchronously.
	deadline := time.Now().Add(10 * time.Second)
	for a.Err() == nil && time.Now().Before(deadline) {
		a.Send(0, 1, 5, tensor.Scalar(9)) // keep traffic flowing at the broken conn
		time.Sleep(10 * time.Millisecond)
	}
	first := a.Err()
	if first == nil {
		t.Fatal("transport never poisoned despite sends into a dead peer")
	}
	if _, err := a.Recv(0, 1, 99); err == nil {
		t.Fatal("recv succeeded on a poisoned transport")
	}
	// Poison cause is stable: later failures must not overwrite the first.
	a.Poison(errors.New("late cause"))
	if got := a.Err(); got == nil || got.Error() != first.Error() {
		t.Fatalf("poison cause changed from %q to %q", first, got)
	}
}

// TestReleaseStragglersAnswersLateJoiner: a worker still dialing the
// rendezvous after the job finished gets a clean release (ErrReleased) from
// the coordinator's post-completion drain window, instead of grinding
// through failed joins against a dead address. This is the straggler path of
// the elastic reform: a survivor that missed the join-grace window when the
// world reformed smaller.
func TestReleaseStragglersAnswersLateJoiner(t *testing.T) {
	opts := flexOpts()
	addr := freeAddr(t)

	var joinErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// joinRetry keeps dialing while the drain listener comes up, exactly
		// like a straggler's in-Join retry loop.
		var s *Session
		s, joinErr = joinRetry(addr, opts)
		if s != nil {
			s.Close()
		}
	}()

	released := ReleaseStragglers(addr, 2*time.Second)
	wg.Wait()
	if released != 1 {
		t.Fatalf("released %d workers, want 1", released)
	}
	if !errors.Is(joinErr, ErrReleased) {
		t.Fatalf("straggler join error %v, want ErrReleased", joinErr)
	}

	// An empty window (nobody dials) returns promptly with zero releases.
	start := time.Now()
	if n := ReleaseStragglers(addr, 200*time.Millisecond); n != 0 {
		t.Fatalf("idle drain released %d workers, want 0", n)
	}
	if since := time.Since(start); since > 2*time.Second {
		t.Fatalf("idle drain took %v, want ~the 200ms window", since)
	}
}
