package dist

import (
	"testing"
	"time"

	"repro/internal/tensor"
)

// shapedPair builds a 2-endpoint mesh with endpoint 0's send path wrapped in
// a shaper. Frames from 0 to 1 cross the modeled network; everything else is
// direct.
func shapedPair(t *testing.T, opts Options, shape ShapeOpts) (*LocalMesh, *ShapedTransport) {
	t.Helper()
	mesh, err := NewLocalMesh(2, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mesh.Close() })
	st := NewShapedTransport(mesh.Endpoint(0), shape)
	t.Cleanup(st.Stop)
	return mesh, st
}

// TestShapedLatencyFloor checks a frame can never arrive earlier than the
// configured one-way latency: arrival is stamped txEnd+latency and the
// delivery stage sleeps until then.
func TestShapedLatencyFloor(t *testing.T) {
	const latency = 30 * time.Millisecond
	mesh, st := shapedPair(t, Options{}, ShapeOpts{Latency: latency, Seed: 1})

	ten := tensor.Scalar(42)
	start := time.Now()
	st.Send(0, 1, 500, ten)
	tensor.Recycle(ten)
	got, err := mesh.Recv(1, 0, 500)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data()[0] != 42 {
		t.Fatalf("payload %v, want 42", got.Data()[0])
	}
	tensor.Recycle(got)
	// time.Sleep guarantees at-least semantics; allow 2ms of clock-read slop
	// between our start stamp and the pacer's.
	if elapsed < latency-2*time.Millisecond {
		t.Fatalf("frame arrived after %v, latency floor is %v", elapsed, latency)
	}
}

// TestShapedBandwidthPacing checks the serialization delay of a bulk frame at
// a tight bandwidth cap: bytes/GBs nanoseconds must elapse before delivery.
func TestShapedBandwidthPacing(t *testing.T) {
	const elems = 1 << 14 // 128 KiB payload
	// 0.01 GB/s -> ~13.1ms serialization delay for 128 KiB.
	mesh, st := shapedPair(t, Options{}, ShapeOpts{BandwidthGBs: 0.01, Seed: 1})

	ten := tensor.GetScratchZero(elems)
	start := time.Now()
	st.Send(0, 1, 501, ten)
	tensor.Recycle(ten)
	if _, err := mesh.Recv(1, 0, 501); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("128 KiB at 0.01 GB/s delivered in %v, want >= ~13ms of serialization", elapsed)
	}
}

// TestShapedJitterKeepsFIFO floods one (src, dst, tag) stream under jitter
// comparable to the latency and requires in-order delivery: arrival times are
// clamped monotone per link, so jitter widens spacing but never reorders.
func TestShapedJitterKeepsFIFO(t *testing.T) {
	mesh, st := shapedPair(t, Options{}, ShapeOpts{
		Latency: 2 * time.Millisecond,
		Jitter:  2 * time.Millisecond,
		Seed:    99,
	})

	const n = 64
	for i := 0; i < n; i++ {
		ten := tensor.Scalar(float64(i))
		st.Send(0, 1, 777, ten)
		tensor.Recycle(ten)
	}
	for i := 0; i < n; i++ {
		got, err := mesh.Recv(1, 0, 777)
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if v := got.Data()[0]; v != float64(i) {
			t.Fatalf("frame %d arrived out of order: payload %v", i, v)
		}
		tensor.Recycle(got)
	}
}

// TestShapedLossPoisonsNotHangs drops every frame and requires the receiver
// to fail by timeout — retransmit-free loss surfaces as the standard
// poison-not-hang contract, never a silent stall.
func TestShapedLossPoisonsNotHangs(t *testing.T) {
	mesh, st := shapedPair(t, Options{RecvTimeout: 300 * time.Millisecond}, ShapeOpts{
		Latency:  time.Millisecond,
		LossProb: 1,
		Seed:     5,
	})

	ten := tensor.Scalar(7)
	st.Send(0, 1, 600, ten)
	tensor.Recycle(ten)
	if _, err := mesh.Recv(1, 0, 600); err == nil {
		t.Fatal("recv of a dropped frame succeeded")
	}
}

// TestShapedSelfSendBypasses checks loopback skips the modeled network: a
// self-send under a huge latency still arrives immediately.
func TestShapedSelfSendBypasses(t *testing.T) {
	mesh, st := shapedPair(t, Options{}, ShapeOpts{Latency: 10 * time.Second, Seed: 1})

	ten := tensor.Scalar(3)
	start := time.Now()
	st.Send(0, 0, 601, ten)
	tensor.Recycle(ten)
	got, err := mesh.Recv(0, 0, 601)
	if err != nil {
		t.Fatal(err)
	}
	tensor.Recycle(got)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("self-send took %v, should bypass the 10s modeled latency", elapsed)
	}
}

// TestShapedStopDrainsInFlight checks Stop's drain contract: frames already
// captured by Send still deliver on their shaped schedule before Stop
// returns, so a job teardown never strands a peer waiting on a frame the
// sender already promised.
func TestShapedStopDrainsInFlight(t *testing.T) {
	mesh, err := NewLocalMesh(2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer mesh.Close()
	st := NewShapedTransport(mesh.Endpoint(0), ShapeOpts{Latency: 20 * time.Millisecond, Seed: 2})

	const n = 5
	for i := 0; i < n; i++ {
		ten := tensor.Scalar(float64(i))
		st.Send(0, 1, 700+i, ten)
		tensor.Recycle(ten)
	}
	st.Stop()
	for i := 0; i < n; i++ {
		got, err := mesh.Recv(1, 0, 700+i)
		if err != nil {
			t.Fatalf("frame %d lost across Stop: %v", i, err)
		}
		if v := got.Data()[0]; v != float64(i) {
			t.Fatalf("frame %d payload %v", i, v)
		}
		tensor.Recycle(got)
	}
}
