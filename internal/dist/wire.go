// Package dist is the multi-process distributed runtime: a binary wire
// protocol for tagged tensor frames, persistent per-destination sender
// workers, a TCP point-to-point transport implementing the runtime's
// Transport contract across OS processes, and a coordinator/worker
// rendezvous service with heartbeats and failure detection. It plays the
// role Ray RPC + NCCL P2P play in the paper: long-lived remote actors driven
// by a single controller over real sockets.
package dist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// Wire format. Every frame is length-prefixed so a reader can skip or reject
// it without understanding the body:
//
//	u32  frameLen           length of everything after this field
//	u8   magic (0xA7)
//	u8   version (1)
//	u8   flags              bit0: payload CRC32 trailer present
//	u8   kind               frameData | frameHello | frameGoodbye
//	i32  from, i32 to       transport actor IDs
//	i64  tag
//	u8   dtype              DTF64 | DTF32
//	u8   rank               number of dims (<= maxWireRank)
//	i32  × rank             dims
//	...  payload            elems × dtype-size bytes, little-endian
//	u32  crc (optional)     CRC32-IEEE of everything after the length prefix
//	                        (header + dims + payload — a flipped tag, shape,
//	                        or routing byte must fail the check, not just a
//	                        flipped payload bit)
//
// Payloads are raw little-endian tensor bytes — no reflection, no gob type
// streams — so a frame's cost is one memcpy per side plus the header.
const (
	wireMagic   = 0xA7
	wireVersion = 1

	flagCRC = 1 << 0

	frameData    = 0
	frameHello   = 1
	frameGoodbye = 2

	// maxWireRank bounds the shape a frame may carry; a corrupt header cannot
	// make the reader allocate an absurd dims slice.
	maxWireRank = 16

	// maxFrameElems bounds a single frame's payload (2^28 float64s = 2 GiB);
	// a corrupt length field fails fast instead of OOMing the process.
	maxFrameElems = 1 << 28

	headerFixed = 4 + 1 + 1 + 1 + 1 + 4 + 4 + 8 + 1 + 1 // through rank byte
)

// KindData is the data-frame kind, exported for non-transport users of the
// codec (checkpoint shard files reuse the wire format verbatim, so a shard
// gets the same CRC coverage and zero-copy pooled decode as a socket frame).
const KindData = frameData

// WriteFrame encodes header + data and writes the complete frame to w in one
// call, returning the staging buffer to the frame pool afterwards. It is the
// io.Writer counterpart of the transport's send path, shared by checkpoint
// shard writers.
func WriteFrame(w io.Writer, h *Header, data []float64, withCRC bool) error {
	buf := EncodeFrame(h, data, withCRC)
	_, err := w.Write(buf)
	putFrameBuf(buf)
	return err
}

// DType identifies the element encoding of a frame payload.
type DType uint8

const (
	// DTF64 ships float64 elements verbatim — the lossless default, and the
	// only encoding the training runtime uses (bit-for-bit loss equality
	// across process counts depends on it).
	DTF64 DType = 0
	// DTF32 ships float32-truncated elements, halving wire bytes at the cost
	// of precision. Opt-in for bandwidth-bound workloads.
	DTF32 DType = 1
)

func (d DType) size() int {
	if d == DTF32 {
		return 4
	}
	return 8
}

func (d DType) valid() bool { return d == DTF64 || d == DTF32 }

// Header describes one frame.
type Header struct {
	Kind  uint8
	From  int
	To    int
	Tag   int
	DType DType
	Shape []int
}

// frameBufs pools encode/decode staging buffers: steady-state frame traffic
// reuses a small set of []byte backing arrays instead of allocating per
// message.
var frameBufs sync.Pool

func getFrameBuf(n int) []byte {
	if v := frameBufs.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

func putFrameBuf(b []byte) {
	frameBufs.Put(&b)
}

// EncodeFrame serializes header + data into a pooled buffer ready for one
// Write call. The returned slice belongs to the wire layer: hand it to
// putFrameBuf (via a conn writer) after the write completes. data may be nil
// for control frames. withCRC appends a CRC32-IEEE trailer over the payload.
func EncodeFrame(h *Header, data []float64, withCRC bool) []byte {
	if !h.DType.valid() {
		panic(fmt.Sprintf("dist: encode with invalid dtype %d", h.DType))
	}
	if len(h.Shape) > maxWireRank {
		panic(fmt.Sprintf("dist: encode rank %d exceeds wire limit %d", len(h.Shape), maxWireRank))
	}
	esz := h.DType.size()
	payload := len(data) * esz
	total := headerFixed + 4*len(h.Shape) + payload
	if withCRC {
		total += 4
	}
	buf := getFrameBuf(total)
	binary.LittleEndian.PutUint32(buf[0:], uint32(total-4))
	buf[4] = wireMagic
	buf[5] = wireVersion
	var flags uint8
	if withCRC {
		flags |= flagCRC
	}
	buf[6] = flags
	buf[7] = h.Kind
	binary.LittleEndian.PutUint32(buf[8:], uint32(int32(h.From)))
	binary.LittleEndian.PutUint32(buf[12:], uint32(int32(h.To)))
	binary.LittleEndian.PutUint64(buf[16:], uint64(int64(h.Tag)))
	buf[24] = byte(h.DType)
	buf[25] = byte(len(h.Shape))
	off := headerFixed
	for _, d := range h.Shape {
		binary.LittleEndian.PutUint32(buf[off:], uint32(int32(d)))
		off += 4
	}
	switch h.DType {
	case DTF64:
		for _, v := range data {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
			off += 8
		}
	case DTF32:
		for _, v := range data {
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(float32(v)))
			off += 4
		}
	}
	if withCRC {
		crc := crc32.ChecksumIEEE(buf[4:off]) // header + dims + payload
		binary.LittleEndian.PutUint32(buf[off:], crc)
	}
	return buf
}

// recycleFrameBuf returns an encoded frame's storage to the pool. Exposed to
// the conn writer; callers must hold the only reference.
func recycleFrameBuf(b []byte) { putFrameBuf(b) }

// Decoder reads frames from a stream, reusing one staging buffer across
// calls. Not safe for concurrent use (one Decoder per connection).
type Decoder struct {
	r   io.Reader
	buf []byte
	// dims is the reusable shape scratch handed out via Header.Shape; callers
	// must not retain it across ReadFrame calls.
	dims [maxWireRank]int
}

// NewDecoder wraps r (typically a bufio.Reader over a conn).
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r} }

// ErrCorruptFrame wraps all header-validation failures so transports can
// distinguish "the stream is broken" from a clean EOF.
type ErrCorruptFrame struct{ Reason string }

func (e *ErrCorruptFrame) Error() string { return "dist: corrupt frame: " + e.Reason }

func corrupt(format string, args ...any) error {
	return &ErrCorruptFrame{Reason: fmt.Sprintf(format, args...)}
}

// ReadFrame reads the next frame. For data frames it returns a pooled tensor
// decoded from the payload — the receive buffer is pool-owned: the consumer
// must tensor.Recycle it (or transfer ownership onward) after use, per the
// serialized-tensor ownership rule. For control frames the tensor is nil.
// The returned Header (including its Shape slice) is only valid until the
// next ReadFrame call. A clean EOF at a frame boundary returns io.EOF;
// mid-frame truncation returns io.ErrUnexpectedEOF.
//
// The fixed header and dims are read and validated before the payload buffer
// is sized, so a corrupt or desynced length prefix fails on its garbage
// header bytes instead of driving a giant allocation.
func (d *Decoder) ReadFrame() (Header, *tensor.Tensor, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(d.r, lenBuf[:]); err != nil {
		return Header{}, nil, err // io.EOF at a frame boundary is clean
	}
	frameLen := int(binary.LittleEndian.Uint32(lenBuf[:]))
	// The decode span opens after the length prefix arrives: blocking on an
	// idle stream is wait, not decode; once a frame has started, the rest
	// follows in the same burst.
	hd := obs.Track(scWireDecode)
	h, t, err := d.readFrameBody(frameLen)
	hd.StopBytes(int64(frameLen) + 4)
	if err == nil && h.Kind == frameData {
		obs.Add(cFramesRecvd, 1)
		obs.Add(cBytesRecvd, int64(frameLen)+4)
	}
	return h, t, err
}

func (d *Decoder) readFrameBody(frameLen int) (Header, *tensor.Tensor, error) {
	const fixed = headerFixed - 4 // header bytes after the length prefix
	if frameLen < fixed {
		return Header{}, nil, corrupt("frame length %d shorter than header", frameLen)
	}
	if frameLen > maxFrameElems*8+headerFixed+4*maxWireRank {
		return Header{}, nil, corrupt("frame length %d exceeds limit", frameLen)
	}
	var hdr [fixed + 4*maxWireRank]byte
	if _, err := io.ReadFull(d.r, hdr[:fixed]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Header{}, nil, fmt.Errorf("dist: truncated frame: %w", err)
	}
	if hdr[0] != wireMagic {
		return Header{}, nil, corrupt("bad magic 0x%02x", hdr[0])
	}
	if hdr[1] != wireVersion {
		return Header{}, nil, corrupt("unsupported wire version %d", hdr[1])
	}
	flags := hdr[2]
	h := Header{
		Kind:  hdr[3],
		From:  int(int32(binary.LittleEndian.Uint32(hdr[4:]))),
		To:    int(int32(binary.LittleEndian.Uint32(hdr[8:]))),
		Tag:   int(int64(binary.LittleEndian.Uint64(hdr[12:]))),
		DType: DType(hdr[20]),
	}
	rank := int(hdr[21])
	if !h.DType.valid() {
		return Header{}, nil, corrupt("unknown dtype %d", h.DType)
	}
	if rank > maxWireRank {
		return Header{}, nil, corrupt("rank %d exceeds wire limit %d", rank, maxWireRank)
	}
	if frameLen < fixed+4*rank {
		return Header{}, nil, corrupt("frame too short for %d dims", rank)
	}
	if _, err := io.ReadFull(d.r, hdr[fixed:fixed+4*rank]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Header{}, nil, fmt.Errorf("dist: truncated frame: %w", err)
	}
	elems := 1
	dims := d.dims[:rank]
	for i := range dims {
		dim := int(int32(binary.LittleEndian.Uint32(hdr[fixed+4*i:])))
		if dim < 0 {
			return Header{}, nil, corrupt("negative dim %d", dim)
		}
		dims[i] = dim
		elems *= dim
		// Checked per dim: the running product stays ≤ maxFrameElems×2^31, so
		// it can never wrap an int64 and sneak a huge shape past the cap.
		if elems > maxFrameElems {
			return Header{}, nil, corrupt("payload of %d+ elements exceeds limit", elems)
		}
	}
	h.Shape = dims
	esz := h.DType.size()
	rest := elems * esz // payload (+ CRC trailer) still on the stream
	if flags&flagCRC != 0 {
		rest += 4
	}
	if frameLen != fixed+4*rank+rest {
		return Header{}, nil, corrupt("frame length %d does not match header (want %d)", frameLen, fixed+4*rank+rest)
	}
	if cap(d.buf) < rest {
		d.buf = make([]byte, rest)
	}
	buf := d.buf[:rest]
	if _, err := io.ReadFull(d.r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Header{}, nil, fmt.Errorf("dist: truncated frame: %w", err)
	}
	payload := buf[:elems*esz]
	if flags&flagCRC != 0 {
		got := binary.LittleEndian.Uint32(buf[elems*esz:])
		crc := crc32.ChecksumIEEE(hdr[:fixed+4*rank])
		crc = crc32.Update(crc, crc32.IEEETable, payload)
		if crc != got {
			obs.Add(cCRCFail, 1)
			return Header{}, nil, corrupt("frame CRC mismatch: computed %08x, frame carries %08x", crc, got)
		}
	}
	if h.Kind != frameData {
		return h, nil, nil
	}
	// Zero-copy into the scratch pool: the payload lands directly in a pooled
	// tensor's storage, which the consumer recycles after use.
	t := tensor.GetScratchShaped(dims...)
	dst := t.Data()
	switch h.DType {
	case DTF64:
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
		}
	case DTF32:
		for i := range dst {
			dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:])))
		}
	}
	return h, t, nil
}
