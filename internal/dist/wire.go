// Package dist is the multi-process distributed runtime: a binary wire
// protocol for tagged tensor frames, persistent per-destination sender
// workers, a TCP point-to-point transport implementing the runtime's
// Transport contract across OS processes, and a coordinator/worker
// rendezvous service with heartbeats and failure detection. It plays the
// role Ray RPC + NCCL P2P play in the paper: long-lived remote actors driven
// by a single controller over real sockets.
package dist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// Wire format. Every frame is length-prefixed so a reader can skip or reject
// it without understanding the body:
//
//	u32  frameLen           length of everything after this field
//	u8   magic (0xA7)
//	u8   version (1)
//	u8   flags              bit0: payload CRC32 trailer present
//	u8   kind               frameData | frameHello | frameGoodbye | frameBatch
//	i32  from, i32 to       transport actor IDs
//	i64  tag
//	u8   dtype              DTF64 | DTF32 | DTInt8Q
//	u8   rank               number of dims (<= maxWireRank)
//	i32  × rank             dims
//	...  payload            dtype-encoded elements, little-endian (DTInt8Q
//	                        prefixes an 8-byte f64 scale; frameBatch carries
//	                        raw concatenated inner frames, shape [byteLen])
//	u32  crc (optional)     CRC32-IEEE of everything after the length prefix
//	                        (header + dims + payload — a flipped tag, shape,
//	                        or routing byte must fail the check, not just a
//	                        flipped payload bit)
//
// Payloads are raw little-endian tensor bytes — no reflection, no gob type
// streams — so a frame's cost is one memcpy per side plus the header.
const (
	wireMagic   = 0xA7
	wireVersion = 1

	flagCRC = 1 << 0

	frameData    = 0
	frameHello   = 1
	frameGoodbye = 2
	// frameBatch coalesces several complete small frames into one wire frame:
	// the payload is the byte-concatenation of the inner frames (each with its
	// own length prefix, header, and optional CRC), the shape is [payloadLen].
	// The decoder unwraps transparently — consumers only ever see the inner
	// frames — so batching changes syscall and header costs, never semantics.
	frameBatch = 3

	// maxWireRank bounds the shape a frame may carry; a corrupt header cannot
	// make the reader allocate an absurd dims slice.
	maxWireRank = 16

	// maxFrameElems bounds a single frame's payload (2^28 float64s = 2 GiB);
	// a corrupt length field fails fast instead of OOMing the process.
	maxFrameElems = 1 << 28

	headerFixed = 4 + 1 + 1 + 1 + 1 + 4 + 4 + 8 + 1 + 1 // through rank byte
)

// KindData is the data-frame kind, exported for non-transport users of the
// codec (checkpoint shard files reuse the wire format verbatim, so a shard
// gets the same CRC coverage and zero-copy pooled decode as a socket frame).
const KindData = frameData

// WriteFrame encodes header + data and writes the complete frame to w in one
// call, returning the staging buffer to the frame pool afterwards. It is the
// io.Writer counterpart of the transport's send path, shared by checkpoint
// shard writers.
func WriteFrame(w io.Writer, h *Header, data []float64, withCRC bool) error {
	buf := EncodeFrame(h, data, withCRC)
	_, err := w.Write(buf)
	putFrameBuf(buf)
	return err
}

// DType identifies the element encoding of a frame payload.
type DType uint8

const (
	// DTF64 ships float64 elements verbatim — the lossless default. Control,
	// loss, and checkpoint frames always use it (bit-for-bit loss equality
	// across process counts depends on it).
	DTF64 DType = 0
	// DTF32 ships float32-truncated elements, halving wire bytes at the cost
	// of precision. Opt-in for bandwidth-bound gradient traffic.
	DTF32 DType = 1
	// DTInt8Q ships an 8-byte float64 scale followed by one signed byte per
	// element: k = round(v/scale) clamped to [-127, 127], scale = maxabs/127
	// over the frame (0 for an all-zero frame). NaN encodes as 0 and ±Inf
	// clamps to ±127 — gradient-only traffic, paired with rank-local
	// error-feedback residuals at the distrun layer. Re-quantizing an already
	// quantized frame is value-stable (the max element maps back to ±127), so
	// multi-hop ring traffic degrades once, not per hop.
	DTInt8Q DType = 2
)

func (d DType) size() int {
	switch d {
	case DTF32:
		return 4
	case DTInt8Q:
		return 1
	}
	return 8
}

// payloadBytes is the encoded payload size for a data frame of elems
// elements (DTInt8Q carries a scale prefix on top of its 1 byte/elem).
func (d DType) payloadBytes(elems int) int {
	if d == DTInt8Q {
		return 8 + elems
	}
	return elems * d.size()
}

func (d DType) valid() bool { return d == DTF64 || d == DTF32 || d == DTInt8Q }

// Lossless reports whether encode→decode returns every float64 bit-exactly.
func (d DType) Lossless() bool { return d == DTF64 }

// String names the dtype the way the -wire-dtype flag spells it.
func (d DType) String() string {
	switch d {
	case DTF32:
		return "f32"
	case DTInt8Q:
		return "int8q"
	}
	return "f64"
}

// ParseDType maps a -wire-dtype flag value to a DType. The empty string is
// the lossless default.
func ParseDType(s string) (DType, error) {
	switch s {
	case "", "f64":
		return DTF64, nil
	case "f32":
		return DTF32, nil
	case "int8q":
		return DTInt8Q, nil
	}
	return DTF64, fmt.Errorf("dist: unknown wire dtype %q (want f64, f32, or int8q)", s)
}

// quantScale returns the DTInt8Q scale for a payload: max finite |v| / 127,
// or 0 when every element is zero or non-finite.
func quantScale(data []float64) float64 {
	maxAbs := 0.0
	for _, v := range data {
		if a := math.Abs(v); a > maxAbs && !math.IsInf(v, 0) && !math.IsNaN(v) {
			maxAbs = a
		}
	}
	return maxAbs / 127
}

func quantElem(v, scale float64) int8 {
	if math.IsNaN(v) || scale == 0 {
		return 0
	}
	q := math.Round(v / scale) // ±Inf survives the divide and clamps below
	if q > 127 {
		q = 127
	} else if q < -127 {
		q = -127
	}
	return int8(q)
}

// LossyRoundTrip applies dt's encode→decode value mapping to data in place —
// exactly what a receiver would see had the slice crossed the wire as one
// dt-encoded frame. The distrun error-feedback path uses it to compute the
// residual a lossy send leaves behind, and transport loopback uses it so a
// self-send observes the same values remote ranks do. DTF64 is the identity.
func LossyRoundTrip(dt DType, data []float64) {
	switch dt {
	case DTF32:
		for i, v := range data {
			data[i] = float64(float32(v))
		}
	case DTInt8Q:
		scale := quantScale(data)
		for i, v := range data {
			data[i] = float64(quantElem(v, scale)) * scale
		}
	}
}

// Header describes one frame.
type Header struct {
	Kind  uint8
	From  int
	To    int
	Tag   int
	DType DType
	Shape []int
}

// frameBufs pools encode/decode staging buffers: steady-state frame traffic
// reuses a small set of []byte backing arrays instead of allocating per
// message.
var frameBufs sync.Pool

func getFrameBuf(n int) []byte {
	if v := frameBufs.Get(); v != nil {
		b := *(v.(*[]byte))
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

func putFrameBuf(b []byte) {
	frameBufs.Put(&b)
}

// EncodeFrame serializes header + data into a pooled buffer ready for one
// Write call. The returned slice belongs to the wire layer: hand it to
// putFrameBuf (via a conn writer) after the write completes. data may be nil
// for control frames. withCRC appends a CRC32-IEEE trailer over the payload.
func EncodeFrame(h *Header, data []float64, withCRC bool) []byte {
	if !h.DType.valid() {
		panic(fmt.Sprintf("dist: encode with invalid dtype %d", h.DType))
	}
	if len(h.Shape) > maxWireRank {
		panic(fmt.Sprintf("dist: encode rank %d exceeds wire limit %d", len(h.Shape), maxWireRank))
	}
	payload := h.DType.payloadBytes(len(data))
	total := headerFixed + 4*len(h.Shape) + payload
	if withCRC {
		total += 4
	}
	buf := getFrameBuf(total)
	off := putFrameHeader(buf, h, withCRC, total)
	switch h.DType {
	case DTF64:
		for _, v := range data {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
			off += 8
		}
	case DTF32:
		for _, v := range data {
			binary.LittleEndian.PutUint32(buf[off:], math.Float32bits(float32(v)))
			off += 4
		}
	case DTInt8Q:
		scale := quantScale(data)
		binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(scale))
		off += 8
		for _, v := range data {
			buf[off] = byte(quantElem(v, scale))
			off++
		}
	}
	if withCRC {
		crc := crc32.ChecksumIEEE(buf[4:off]) // header + dims + payload
		binary.LittleEndian.PutUint32(buf[off:], crc)
	}
	return buf
}

// putFrameHeader writes the length prefix, fixed header, and dims into buf,
// returning the payload offset. Shared by EncodeFrame and EncodeBatchFrame.
func putFrameHeader(buf []byte, h *Header, withCRC bool, total int) int {
	binary.LittleEndian.PutUint32(buf[0:], uint32(total-4))
	buf[4] = wireMagic
	buf[5] = wireVersion
	var flags uint8
	if withCRC {
		flags |= flagCRC
	}
	buf[6] = flags
	buf[7] = h.Kind
	binary.LittleEndian.PutUint32(buf[8:], uint32(int32(h.From)))
	binary.LittleEndian.PutUint32(buf[12:], uint32(int32(h.To)))
	binary.LittleEndian.PutUint64(buf[16:], uint64(int64(h.Tag)))
	buf[24] = byte(h.DType)
	buf[25] = byte(len(h.Shape))
	off := headerFixed
	for _, d := range h.Shape {
		binary.LittleEndian.PutUint32(buf[off:], uint32(int32(d)))
		off += 4
	}
	return off
}

// EncodeBatchFrame wraps already-encoded frames into one batch frame whose
// payload is their byte-concatenation. The sender worker calls this to
// coalesce a burst of small frames (losses, scalar telemetry, sub-4KiB
// buckets) into a single header + write; inner frames keep whatever CRC they
// were encoded with, and withCRC additionally covers the batch envelope. The
// caller still owns (and must recycle) the inner frame buffers.
func EncodeBatchFrame(from, to int, frames [][]byte, withCRC bool) []byte {
	payload := 0
	for _, f := range frames {
		payload += len(f)
	}
	var shape [1]int
	shape[0] = payload
	h := Header{Kind: frameBatch, From: from, To: to, DType: DTF64, Shape: shape[:]}
	total := headerFixed + 4 + payload
	if withCRC {
		total += 4
	}
	buf := getFrameBuf(total)
	off := putFrameHeader(buf, &h, withCRC, total)
	for _, f := range frames {
		off += copy(buf[off:], f)
	}
	if withCRC {
		crc := crc32.ChecksumIEEE(buf[4:off])
		binary.LittleEndian.PutUint32(buf[off:], crc)
	}
	return buf
}

// recycleFrameBuf returns an encoded frame's storage to the pool. Exposed to
// the conn writer; callers must hold the only reference.
func recycleFrameBuf(b []byte) { putFrameBuf(b) }

// Decoder reads frames from a stream, reusing one staging buffer across
// calls. Not safe for concurrent use (one Decoder per connection).
type Decoder struct {
	r   io.Reader
	buf []byte
	// dims is the reusable shape scratch handed out via Header.Shape; callers
	// must not retain it across ReadFrame calls.
	dims [maxWireRank]int
	// q holds inner frames unwrapped from a batch frame, handed out by
	// subsequent ReadFrame calls before the stream is touched again. The
	// backing array is reused across batches.
	q    []queuedFrame
	qPos int
	// batchPayload aliases d.buf between readFrameBody returning a batch
	// frame and unwrapBatch consuming it.
	batchPayload []byte
	// inBatch marks the throwaway sub-decoder unwrapBatch runs over a batch
	// payload. The coalescer never nests batches, so a batch frame inside a
	// batch payload is corruption — and rejecting it here (rather than
	// unwrapping recursively) keeps a crafted deeply-nested frame from
	// recursing the decoder.
	inBatch bool
}

// queuedFrame is one unwrapped inner frame of a batch: header, decoded
// payload, and an inline copy of the dims (the sub-decoder's shape scratch
// does not outlive the unwrap loop).
type queuedFrame struct {
	h    Header
	t    *tensor.Tensor
	rank int
	dims [maxWireRank]int
}

// NewDecoder wraps r (typically a bufio.Reader over a conn).
func NewDecoder(r io.Reader) *Decoder { return &Decoder{r: r} }

// ErrCorruptFrame wraps all header-validation failures so transports can
// distinguish "the stream is broken" from a clean EOF.
type ErrCorruptFrame struct{ Reason string }

func (e *ErrCorruptFrame) Error() string { return "dist: corrupt frame: " + e.Reason }

func corrupt(format string, args ...any) error {
	return &ErrCorruptFrame{Reason: fmt.Sprintf(format, args...)}
}

// ReadFrame reads the next frame. For data frames it returns a pooled tensor
// decoded from the payload — the receive buffer is pool-owned: the consumer
// must tensor.Recycle it (or transfer ownership onward) after use, per the
// serialized-tensor ownership rule. For control frames the tensor is nil.
// The returned Header (including its Shape slice) is only valid until the
// next ReadFrame call. A clean EOF at a frame boundary returns io.EOF;
// mid-frame truncation returns io.ErrUnexpectedEOF.
//
// The fixed header and dims are read and validated before the payload buffer
// is sized, so a corrupt or desynced length prefix fails on its garbage
// header bytes instead of driving a giant allocation.
func (d *Decoder) ReadFrame() (Header, *tensor.Tensor, error) {
	if d.qPos < len(d.q) {
		f := &d.q[d.qPos]
		d.qPos++
		h := f.h
		h.Shape = f.dims[:f.rank]
		return h, f.t, nil
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(d.r, lenBuf[:]); err != nil {
		return Header{}, nil, err // io.EOF at a frame boundary is clean
	}
	frameLen := int(binary.LittleEndian.Uint32(lenBuf[:]))
	// The decode span opens after the length prefix arrives: blocking on an
	// idle stream is wait, not decode; once a frame has started, the rest
	// follows in the same burst.
	hd := obs.Track(scWireDecode)
	h, t, err := d.readFrameBody(frameLen)
	hd.StopBytes(int64(frameLen) + 4)
	if err == nil && h.Kind == frameBatch {
		if d.inBatch {
			return Header{}, nil, corrupt("nested batch frame")
		}
		// Inner data frames are counted by the sub-decoder as they unwrap;
		// counting the envelope too would double-book the payload bytes.
		return d.unwrapBatch()
	}
	if err == nil && h.Kind == frameData {
		obs.Add(cFramesRecvd, 1)
		obs.Add(cBytesRecvd, int64(frameLen)+4)
	}
	return h, t, err
}

// unwrapBatch parses the batch payload sitting in d.buf into the inner-frame
// queue and returns the first inner frame. An empty or malformed batch is a
// corrupt frame: the coalescer never emits empty batches, and a truncated
// inner frame means the envelope lied about its contents.
func (d *Decoder) unwrapBatch() (Header, *tensor.Tensor, error) {
	d.q = d.q[:0]
	d.qPos = 0
	sub := NewDecoder(bytes.NewReader(d.batchPayload))
	sub.inBatch = true
	for {
		h, t, err := sub.ReadFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			d.recycleQueued()
			return Header{}, nil, corrupt("batch inner frame: %v", err)
		}
		if len(h.Shape) > maxWireRank {
			d.recycleQueued()
			return Header{}, nil, corrupt("batch inner rank %d", len(h.Shape))
		}
		qf := queuedFrame{h: h, t: t, rank: len(h.Shape)}
		copy(qf.dims[:], h.Shape)
		qf.h.Shape = nil
		d.q = append(d.q, qf)
	}
	if len(d.q) == 0 {
		return Header{}, nil, corrupt("empty batch frame")
	}
	return d.ReadFrame()
}

// recycleQueued returns any tensors already unwrapped from a failed batch to
// the pool.
func (d *Decoder) recycleQueued() {
	for i := range d.q {
		if d.q[i].t != nil {
			tensor.Recycle(d.q[i].t)
			d.q[i].t = nil
		}
	}
	d.q = d.q[:0]
	d.qPos = 0
}

func (d *Decoder) readFrameBody(frameLen int) (Header, *tensor.Tensor, error) {
	const fixed = headerFixed - 4 // header bytes after the length prefix
	if frameLen < fixed {
		return Header{}, nil, corrupt("frame length %d shorter than header", frameLen)
	}
	if frameLen > maxFrameElems*8+headerFixed+4*maxWireRank {
		return Header{}, nil, corrupt("frame length %d exceeds limit", frameLen)
	}
	var hdr [fixed + 4*maxWireRank]byte
	if _, err := io.ReadFull(d.r, hdr[:fixed]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Header{}, nil, fmt.Errorf("dist: truncated frame: %w", err)
	}
	if hdr[0] != wireMagic {
		return Header{}, nil, corrupt("bad magic 0x%02x", hdr[0])
	}
	if hdr[1] != wireVersion {
		return Header{}, nil, corrupt("unsupported wire version %d", hdr[1])
	}
	flags := hdr[2]
	h := Header{
		Kind:  hdr[3],
		From:  int(int32(binary.LittleEndian.Uint32(hdr[4:]))),
		To:    int(int32(binary.LittleEndian.Uint32(hdr[8:]))),
		Tag:   int(int64(binary.LittleEndian.Uint64(hdr[12:]))),
		DType: DType(hdr[20]),
	}
	rank := int(hdr[21])
	if !h.DType.valid() {
		return Header{}, nil, corrupt("unknown dtype %d", h.DType)
	}
	if rank > maxWireRank {
		return Header{}, nil, corrupt("rank %d exceeds wire limit %d", rank, maxWireRank)
	}
	if frameLen < fixed+4*rank {
		return Header{}, nil, corrupt("frame too short for %d dims", rank)
	}
	if _, err := io.ReadFull(d.r, hdr[fixed:fixed+4*rank]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Header{}, nil, fmt.Errorf("dist: truncated frame: %w", err)
	}
	elems := 1
	dims := d.dims[:rank]
	for i := range dims {
		dim := int(int32(binary.LittleEndian.Uint32(hdr[fixed+4*i:])))
		if dim < 0 {
			return Header{}, nil, corrupt("negative dim %d", dim)
		}
		dims[i] = dim
		elems *= dim
		// Checked per dim: the running product stays ≤ maxFrameElems×2^31, so
		// it can never wrap an int64 and sneak a huge shape past the cap.
		if elems > maxFrameElems {
			return Header{}, nil, corrupt("payload of %d+ elements exceeds limit", elems)
		}
	}
	h.Shape = dims
	payloadLen := h.DType.payloadBytes(elems)
	if h.Kind == frameBatch {
		// A batch payload is raw inner-frame bytes: shape [byteLen], one byte
		// per "element" regardless of the dtype byte.
		if rank != 1 {
			return Header{}, nil, corrupt("batch frame rank %d, want 1", rank)
		}
		payloadLen = elems
	}
	rest := payloadLen // payload (+ CRC trailer) still on the stream
	if flags&flagCRC != 0 {
		rest += 4
	}
	if frameLen != fixed+4*rank+rest {
		return Header{}, nil, corrupt("frame length %d does not match header (want %d)", frameLen, fixed+4*rank+rest)
	}
	if cap(d.buf) < rest {
		d.buf = make([]byte, rest)
	}
	buf := d.buf[:rest]
	if _, err := io.ReadFull(d.r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Header{}, nil, fmt.Errorf("dist: truncated frame: %w", err)
	}
	payload := buf[:payloadLen]
	if flags&flagCRC != 0 {
		got := binary.LittleEndian.Uint32(buf[payloadLen:])
		crc := crc32.ChecksumIEEE(hdr[:fixed+4*rank])
		crc = crc32.Update(crc, crc32.IEEETable, payload)
		if crc != got {
			obs.Add(cCRCFail, 1)
			return Header{}, nil, corrupt("frame CRC mismatch: computed %08x, frame carries %08x", crc, got)
		}
	}
	if h.Kind == frameBatch {
		d.batchPayload = payload
		return h, nil, nil
	}
	if h.Kind != frameData {
		return h, nil, nil
	}
	// Zero-copy into the scratch pool: the payload lands directly in a pooled
	// tensor's storage, which the consumer recycles after use.
	t := tensor.GetScratchShaped(dims...)
	dst := t.Data()
	switch h.DType {
	case DTF64:
		for i := range dst {
			dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[8*i:]))
		}
	case DTF32:
		for i := range dst {
			dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(payload[4*i:])))
		}
	case DTInt8Q:
		scale := math.Float64frombits(binary.LittleEndian.Uint64(payload))
		if math.IsNaN(scale) || math.IsInf(scale, 0) || scale < 0 {
			tensor.Recycle(t)
			return Header{}, nil, corrupt("int8q scale %v", scale)
		}
		q := payload[8:]
		for i := range dst {
			dst[i] = float64(int8(q[i])) * scale
		}
	}
	return h, t, nil
}
