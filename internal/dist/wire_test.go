package dist

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/tensor"
)

// encodeToStream is the test-side sender: encode one data frame and write it.
func encodeToStream(t *testing.T, w io.Writer, h *Header, data []float64, crc bool) {
	t.Helper()
	buf := EncodeFrame(h, data, crc)
	if _, err := w.Write(buf); err != nil {
		t.Fatal(err)
	}
	recycleFrameBuf(buf)
}

// TestFrameRoundTripProperty drives random shapes (including empty and
// scalar), both dtypes, and both CRC settings through encode→decode and
// checks header fields and payload equality.
func TestFrameRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][]int{
		{},           // scalar
		{0},          // empty
		{1},          // single element
		{4, 0, 3},    // empty with nonzero dims
		{7},          // odd flat
		{3, 5},       // matrix
		{2, 3, 4, 5}, // rank 4
	}
	for i := 0; i < 64; i++ {
		shapes = append(shapes, []int{rng.Intn(9), rng.Intn(9)})
	}
	for _, dt := range []DType{DTF64, DTF32} {
		for _, crc := range []bool{false, true} {
			var stream bytes.Buffer
			var want []struct {
				h    Header
				data []float64
			}
			for i, shape := range shapes {
				n := tensor.NumElements(shape)
				data := make([]float64, n)
				for j := range data {
					data[j] = rng.NormFloat64() * 1e3
				}
				h := Header{Kind: frameData, From: i, To: i * 31, Tag: i*1000003 - 7, DType: dt, Shape: shape}
				encodeToStream(t, &stream, &h, data, crc)
				want = append(want, struct {
					h    Header
					data []float64
				}{h, data})
			}
			dec := NewDecoder(&stream)
			for i, w := range want {
				h, ten, err := dec.ReadFrame()
				if err != nil {
					t.Fatalf("dtype %d crc %v frame %d: %v", dt, crc, i, err)
				}
				if h.From != w.h.From || h.To != w.h.To || h.Tag != w.h.Tag || h.DType != dt {
					t.Fatalf("frame %d header %+v, want %+v", i, h, w.h)
				}
				if !ten.HasShape(w.h.Shape) {
					t.Fatalf("frame %d shape %v, want %v", i, ten.Shape(), w.h.Shape)
				}
				for j, v := range ten.Data() {
					wantV := w.data[j]
					if dt == DTF32 {
						wantV = float64(float32(wantV))
					}
					if v != wantV {
						t.Fatalf("frame %d elem %d = %v, want %v", i, j, v, wantV)
					}
				}
				tensor.Recycle(ten)
			}
			if _, _, err := dec.ReadFrame(); err != io.EOF {
				t.Fatalf("after last frame: err %v, want io.EOF", err)
			}
		}
	}
}

// TestFrameRoundTripF64BitExact pins the lossless guarantee bit-for-bit loss
// equality across process counts rests on: DTF64 payloads survive the wire
// with identical bit patterns, including negative zero and denormals.
func TestFrameRoundTripF64BitExact(t *testing.T) {
	special := []float64{0, -0.0, 1.0 / 3.0, 5e-324, -5e-324, 1e308, -1e-308}
	h := Header{Kind: frameData, From: 1, To: 2, Tag: 3, DType: DTF64, Shape: []int{len(special)}}
	var stream bytes.Buffer
	encodeToStream(t, &stream, &h, special, true)
	_, ten, err := NewDecoder(&stream).ReadFrame()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range ten.Data() {
		if math.Float64bits(v) != math.Float64bits(special[i]) {
			t.Fatalf("elem %d: bits %x, want %x", i, math.Float64bits(v), math.Float64bits(special[i]))
		}
	}
}

// TestDecodeTruncatedFrame covers every truncation point: inside the length
// prefix, inside the header, inside the payload.
func TestDecodeTruncatedFrame(t *testing.T) {
	h := Header{Kind: frameData, From: 0, To: 1, Tag: 9, DType: DTF64, Shape: []int{8}}
	full := EncodeFrame(&h, make([]float64, 8), false)
	defer recycleFrameBuf(full)
	for _, cut := range []int{1, 3, 5, 12, len(full) / 2, len(full) - 1} {
		dec := NewDecoder(bytes.NewReader(full[:cut]))
		_, _, err := dec.ReadFrame()
		if err == nil {
			t.Fatalf("cut at %d decoded successfully", cut)
		}
		if err == io.EOF && cut >= 4 {
			t.Fatalf("cut at %d reported clean EOF mid-frame", cut)
		}
	}
}

// TestDecodeCorruptFrames covers header validation: bad magic, bad version,
// unknown dtype, oversized rank, length/shape mismatch, CRC mismatch.
func TestDecodeCorruptFrames(t *testing.T) {
	mk := func() []byte {
		h := Header{Kind: frameData, From: 0, To: 1, Tag: 4, DType: DTF64, Shape: []int{4}}
		buf := EncodeFrame(&h, []float64{1, 2, 3, 4}, true)
		out := append([]byte(nil), buf...)
		recycleFrameBuf(buf)
		return out
	}
	cases := []struct {
		name   string
		mutate func(b []byte)
	}{
		{"bad magic", func(b []byte) { b[4] = 0x00 }},
		{"bad version", func(b []byte) { b[5] = 99 }},
		{"unknown dtype", func(b []byte) { b[24] = 77 }},
		{"oversized rank", func(b []byte) { b[25] = maxWireRank + 1 }},
		{"length/shape mismatch", func(b []byte) { b[25] = 2 }},
		{"payload corruption fails CRC", func(b []byte) { b[len(b)-9] ^= 0xFF }},
		{"header corruption fails CRC", func(b []byte) { b[17] ^= 0xFF }}, // tag byte: would re-route silently without header coverage
		{"crc trailer corruption", func(b []byte) { b[len(b)-1] ^= 0xFF }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := mk()
			tc.mutate(b)
			_, _, err := NewDecoder(bytes.NewReader(b)).ReadFrame()
			if err == nil {
				t.Fatal("corrupt frame decoded successfully")
			}
		})
	}
}

// TestDecodeRejectsAbsurdLength pins the allocation guard: a corrupt length
// prefix may not drive a giant allocation.
func TestDecodeRejectsAbsurdLength(t *testing.T) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], 1<<31)
	_, _, err := NewDecoder(bytes.NewReader(b[:])).ReadFrame()
	if err == nil {
		t.Fatal("absurd frame length accepted")
	}
}

// TestMailboxOrderAndReuse checks FIFO delivery across concurrent producers'
// interleavings and that Stop drains outstanding items.
func TestMailboxOrderAndReuse(t *testing.T) {
	var got []int
	done := make(chan struct{})
	m := NewMailbox[int](0, func(v int) {
		got = append(got, v)
		if len(got) == 1000 {
			close(done)
		}
	})
	for i := 0; i < 1000; i++ {
		m.Put(i)
	}
	<-done
	m.Stop()
	for i, v := range got {
		if v != i {
			t.Fatalf("item %d = %d, want %d (FIFO violated)", i, v, i)
		}
	}
}

// TestMailboxStopDrains pins the shutdown contract: items enqueued before
// Stop are all delivered.
func TestMailboxStopDrains(t *testing.T) {
	block := make(chan struct{})
	var n int
	m := NewMailbox[int](0, func(int) {
		<-block
		n++
	})
	for i := 0; i < 10; i++ {
		m.Put(i)
	}
	close(block)
	m.Stop()
	if n != 10 {
		t.Fatalf("sink ran %d times, want 10", n)
	}
}

// TestMailboxPutNeverBlocks enqueues against a sink that is blocked for the
// duration — every Put must return immediately (the deadlock-freedom
// property the sender workers exist for).
func TestMailboxPutNeverBlocks(t *testing.T) {
	release := make(chan struct{})
	m := NewMailbox[int](0, func(int) { <-release })
	doneAll := make(chan struct{})
	go func() {
		for i := 0; i < 10000; i++ {
			m.Put(i)
		}
		close(doneAll)
	}()
	<-doneAll // would hang here if Put blocked on the stalled sink
	close(release)
	m.Stop()
}

// TestMailboxLenIncludesInflight pins the queue-depth gauge's contract: a
// batch the worker has swapped out but not yet sunk still counts, so depth
// falls item by item through a drain burst instead of snapping to zero the
// moment the worker claims the batch.
func TestMailboxLenIncludesInflight(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 16)
	m := NewMailbox[int](0, func(int) {
		started <- struct{}{}
		<-gate
	})
	defer m.Stop()
	const items = 5
	for i := 0; i < items; i++ {
		m.Put(i)
	}
	<-started // worker swapped the batch out and is blocked in the sink
	if got := m.Len(); got != items {
		t.Fatalf("Len during in-flight batch = %d, want %d", got, items)
	}
	gate <- struct{}{} // release exactly one item
	<-started
	if got := m.Len(); got != items-1 {
		t.Fatalf("Len after one sunk item = %d, want %d", got, items-1)
	}
	close(gate)
	deadline := time.Now().Add(5 * time.Second)
	for m.Len() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := m.Len(); got != 0 {
		t.Fatalf("Len after full drain = %d, want 0", got)
	}
}

// TestMailboxLenConcurrent reads Len while producers and teardown race —
// meaningful mostly under -race, where an unsynchronized depth read fails.
func TestMailboxLenConcurrent(t *testing.T) {
	m := NewMailbox[int](0, func(int) {})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if m.Len() < 0 {
				t.Error("negative mailbox depth")
				return
			}
		}
	}()
	for i := 0; i < 5000; i++ {
		if !m.TryPut(i) {
			t.Fatal("TryPut refused before stop")
		}
	}
	m.Stop()
	if m.TryPut(1) {
		t.Fatal("TryPut accepted after stop")
	}
	close(stop)
	wg.Wait()
}
