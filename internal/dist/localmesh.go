package dist

import (
	"repro/internal/tensor"
)

// LocalMesh hosts n dist endpoints inside one process, wired over real
// localhost TCP sockets — the single-binary multi-actor topology the old
// gob-based rpcx transport served, now on the binary wire protocol. It
// implements the runtime's Transport contract for a whole cluster by routing
// each call to the owning endpoint, so `jaxpp-train -tcp` exercises the
// exact frame encode/decode and sender-worker path the multi-process runtime
// uses, without a coordinator.
type LocalMesh struct {
	eps []*Transport
}

// NewLocalMesh provisions one endpoint per actor and connects them.
func NewLocalMesh(actors int, opts Options) (*LocalMesh, error) {
	m := &LocalMesh{}
	book := make(map[int]string, actors)
	for r := 0; r < actors; r++ {
		ep, err := NewTransport(r, opts)
		if err != nil {
			m.Close()
			return nil, err
		}
		m.eps = append(m.eps, ep)
		book[r] = ep.Addr()
	}
	for _, ep := range m.eps {
		ep.Connect(book)
	}
	return m, nil
}

// Addr returns the listen address of one actor's endpoint.
func (m *LocalMesh) Addr(actor int) string { return m.eps[actor].Addr() }

// Endpoint exposes one actor's transport (bench harnesses wrap individual
// endpoints in shapers).
func (m *LocalMesh) Endpoint(actor int) *Transport { return m.eps[actor] }

// SetWireDType forwards the lossy data-frame encoding to every endpoint.
func (m *LocalMesh) SetWireDType(dt DType) {
	for _, ep := range m.eps {
		ep.SetWireDType(dt)
	}
}

// SetLossyTagWindow forwards the lossy tag window to every endpoint.
func (m *LocalMesh) SetLossyTagWindow(lo, hi int) {
	for _, ep := range m.eps {
		ep.SetLossyTagWindow(lo, hi)
	}
}

// Send implements runtime.Transport.
func (m *LocalMesh) Send(from, to, tag int, t *tensor.Tensor) {
	m.eps[from].Send(from, to, tag, t)
}

// SenderOwnsSent mirrors Transport.SenderOwnsSent: every send serializes.
func (m *LocalMesh) SenderOwnsSent() bool { return true }

// Recv implements runtime.Transport.
func (m *LocalMesh) Recv(to, from, tag int) (*tensor.Tensor, error) {
	return m.eps[to].Recv(to, from, tag)
}

// Poison fails every endpoint: pending and future receives on any actor
// error out promptly. A multi-actor driver whose goroutines share the mesh
// uses it the way a process crash poisons the distributed transport — one
// failed actor must not leave its peers blocked in ring receives until
// their timeouts.
func (m *LocalMesh) Poison(err error) {
	for _, ep := range m.eps {
		ep.Poison(err)
	}
}

// Err returns the first endpoint poison error, if any.
func (m *LocalMesh) Err() error {
	for _, ep := range m.eps {
		if err := ep.Err(); err != nil {
			return err
		}
	}
	return nil
}

// SendCount aggregates messages and payload bytes across endpoints.
func (m *LocalMesh) SendCount() (int, int64) {
	var n int
	var bytes int64
	for _, ep := range m.eps {
		sn, sb := ep.SendCount()
		n += sn
		bytes += sb
	}
	return n, bytes
}

// Close shuts down every endpoint.
func (m *LocalMesh) Close() error {
	var first error
	for _, ep := range m.eps {
		if err := ep.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
