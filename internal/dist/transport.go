package dist

import (
	"bufio"
	"fmt"
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/flight"
	"repro/internal/tensor"
)

// Wire-layer profiling: frame/byte counters on both directions, encode and
// decode spans (serialization cost, distinct from socket wait), CRC failures,
// and the sender-worker queue depth sampled at each enqueue.
var (
	scWireEncode = obs.Scope("wire/encode")
	scWireDecode = obs.Scope("wire/decode")
	scSendQueue  = obs.Scope("wire/send_queue")
	cFramesSent  = obs.Counter("wire/frames_sent")
	cBytesSent   = obs.Counter("wire/bytes_sent")
	cFramesRecvd = obs.Counter("wire/frames_recvd")
	cBytesRecvd  = obs.Counter("wire/bytes_recvd")
	cCRCFail     = obs.Counter("wire/crc_fail")
	// cCompressedBytes counts bytes of data frames that left this endpoint
	// lossy-encoded (f32/int8q) — the numerator of the wire-compression win.
	cCompressedBytes = obs.Counter("wire/compressed_bytes")
	// cCoalesced counts small frames that shipped inside a batch envelope
	// instead of as their own write.
	cCoalesced = obs.Counter("wire/frames_coalesced")
)

// DefaultRecvTimeout mirrors runtime.DefaultRecvTimeout: a receive whose tag
// no peer ever matches errors out instead of hanging the process.
const DefaultRecvTimeout = 30 * time.Second

// closeWriteGrace bounds how long a graceful Close waits for queued frames
// to drain to each peer. A wedged-but-alive peer (stopped reading, TCP
// buffers full) would otherwise block the sender worker inside a socket
// write forever — poisoning cannot interrupt a blocked syscall — and hang
// Close behind the worker drain.
const closeWriteGrace = 10 * time.Second

// Options configures a Transport.
type Options struct {
	// Listen is the data-plane listen address ("127.0.0.1:0" when empty, so
	// the kernel picks a free port; the chosen address is Addr()).
	Listen string
	// RecvTimeout bounds every Recv; zero uses DefaultRecvTimeout, negative
	// waits forever.
	RecvTimeout time.Duration
	// CRC appends a CRC32 trailer to every outgoing data frame; incoming
	// frames are verified whenever the sender set the flag regardless.
	CRC bool
	// DType selects the payload encoding for outgoing data frames (default
	// DTF64, lossless). A lossy DType here applies to every data frame —
	// control frames always ship DTF64 — which is what the bench tiers want;
	// jobs that must keep losses and checkpoints exact instead leave this
	// DTF64 and arm a gradient-only tag window via SetWireDType +
	// SetLossyTagWindow after rendezvous.
	DType DType
}

// Transport is one process's endpoint of the multi-process data plane: a
// runtime.Transport whose peers live in other OS processes. Each endpoint
// owns a TCP listener; outgoing links dial lazily and are serviced by one
// persistent sender worker per destination (a Mailbox of encoded frames), so
// asynchronous sends never block the caller and never head-of-line block
// traffic to other peers. Incoming frames decode into pooled tensors
// (receivers Recycle after use).
//
// Send serializes the payload before returning: the moment Send returns, the
// caller may recycle or mutate the tensor — the same completion semantics as
// the in-process ChanTransport, which is what lets the runtime's
// store-deletion protocol (§4.3) work unchanged across processes.
type Transport struct {
	// rank is atomic because Join listens (starting reader goroutines)
	// before the coordinator assigns the final rank.
	rank atomic.Int32
	opts Options

	ln     net.Listener
	mu     sync.Mutex
	book   map[int]string
	peers  map[int]*peerLink
	conns  []net.Conn
	closed bool

	shards [numInboxShards]inboxShard

	// Lossy-encoding plane: wireDType is the encoding for lossy-eligible data
	// frames; lossyLo/lossyHi bound the half-open tag window those frames
	// live in ([MinInt64, MaxInt64) when Options.DType was lossy, empty until
	// SetLossyTagWindow otherwise). Frames outside the window — and every
	// control frame — ship DTF64.
	wireDType atomic.Uint32
	lossyLo   atomic.Int64
	lossyHi   atomic.Int64

	// err is the poison state: the first transport-level failure (peer died,
	// corrupt stream, coordinator-reported death). Every pending and future
	// Recv fails with it, because after a lost or dropped message, tag reuse
	// could silently match a later payload to an earlier receive.
	err  atomic.Pointer[error]
	dead chan struct{} // closed when poisoned

	sent      atomic.Int64
	sentBytes atomic.Int64
	recvd     atomic.Int64
}

// peerLink is one outgoing connection: a lazily dialed conn plus the sender
// worker that owns all writes to it. pending/pendingBytes are the worker's
// coalescing buffer — touched only on the worker goroutine.
type peerLink struct {
	mb           *Mailbox[[]byte]
	w            *bufio.Writer
	c            net.Conn
	pending      [][]byte
	pendingBytes int
}

type inboxKey struct {
	from, tag int
}

const numInboxShards = 32

// zeroShape is the payload-free shape control frames carry (a rank-0 shape
// would denote a scalar, which has one element).
var zeroShape = []int{0}

// controlFrame is the single choke point for control-frame construction:
// hello, goodbye, and any future handshake frame are always DTF64 and never
// CRC'd (they carry no payload to protect, and the receiver validates the
// header fields it acts on). A dtype audit of the control plane starts and
// ends here.
func controlFrame(kind uint8, from, to int) []byte {
	return EncodeFrame(&Header{Kind: kind, From: from, To: to, DType: DTF64, Shape: zeroShape}, nil, false)
}

// Coalescing thresholds: frames at or under coalesceMaxFrame bytes (losses,
// scalar telemetry, sub-4KiB gradient buckets) accumulate in the sender
// worker and ship as one batch frame per burst; an accumulation crossing
// coalesceFlushBytes flushes early so a long burst of small frames cannot
// grow an unbounded batch.
const (
	coalesceMaxFrame   = 4096
	coalesceFlushBytes = 1 << 16
)

type inboxShard struct {
	mu  sync.Mutex
	chs map[inboxKey]chan *tensor.Tensor
	_   [48]byte // pad to a cache line; see runtime.ChanTransport
}

func (k inboxKey) shard() int {
	h := uint64(k.from)*0x9e3779b97f4a7c15 ^ uint64(k.tag)*0xbf58476d1ce4e5b9
	h ^= h >> 29
	return int(h & (numInboxShards - 1))
}

// NewTransport opens the data-plane listener for one rank. Peers are
// unreachable until Connect installs the address book (rendezvous provides
// it).
func NewTransport(rank int, opts Options) (*Transport, error) {
	if opts.Listen == "" {
		opts.Listen = "127.0.0.1:0"
	}
	if opts.RecvTimeout == 0 {
		opts.RecvTimeout = DefaultRecvTimeout
	}
	if opts.DType == 0 {
		opts.DType = DTF64
	}
	ln, err := net.Listen("tcp", opts.Listen)
	if err != nil {
		return nil, fmt.Errorf("dist: rank %d listen %s: %w", rank, opts.Listen, err)
	}
	t := &Transport{
		opts:  opts,
		ln:    ln,
		peers: map[int]*peerLink{},
		dead:  make(chan struct{}),
	}
	t.rank.Store(int32(rank))
	t.wireDType.Store(uint32(opts.DType))
	if opts.DType != DTF64 {
		t.lossyLo.Store(math.MinInt64)
		t.lossyHi.Store(math.MaxInt64)
	}
	for i := range t.shards {
		t.shards[i].chs = map[inboxKey]chan *tensor.Tensor{}
	}
	go t.acceptLoop()
	return t, nil
}

// SetWireDType switches the encoding for lossy-eligible data frames at
// runtime — workers learn the job's wire mode from the rendezvous payload,
// after the transport exists. Panics on an invalid dtype (a flag typo must
// not silently train lossless).
func (t *Transport) SetWireDType(dt DType) {
	if !dt.valid() {
		panic(fmt.Sprintf("dist: SetWireDType(%d): invalid dtype", dt))
	}
	t.wireDType.Store(uint32(dt))
}

// SetLossyTagWindow restricts lossy encoding to data frames whose tag falls
// in [lo, hi) — in practice the gradient communicator's collective tag
// window, so loss exchange, pipeline activations, and control traffic stay
// DTF64 while gradient buckets compress.
func (t *Transport) SetLossyTagWindow(lo, hi int) {
	t.lossyLo.Store(int64(lo))
	t.lossyHi.Store(int64(hi))
}

// wireDTypeFor picks the encoding for one outgoing data frame.
func (t *Transport) wireDTypeFor(tag int) DType {
	dt := DType(t.wireDType.Load())
	if dt == DTF64 {
		return DTF64
	}
	if lo, hi := t.lossyLo.Load(), t.lossyHi.Load(); int64(tag) >= lo && int64(tag) < hi {
		return dt
	}
	return DTF64
}

// Rank returns this endpoint's transport actor ID.
func (t *Transport) Rank() int { return int(t.rank.Load()) }

// Addr returns the data-plane listen address (for the rendezvous address
// book).
func (t *Transport) Addr() string { return t.ln.Addr().String() }

// Connect installs the rank → address book. Links dial lazily on first send.
func (t *Transport) Connect(book map[int]string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.book = make(map[int]string, len(book))
	for r, a := range book {
		t.book[r] = a
	}
}

func (t *Transport) acceptLoop() {
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		if t.closed {
			t.mu.Unlock()
			conn.Close()
			return
		}
		t.conns = append(t.conns, conn)
		t.mu.Unlock()
		go t.readLoop(conn)
	}
}

// readLoop decodes frames off one accepted connection into the inbox. The
// first frame must be a hello identifying the sending rank; any decode error
// after that poisons the transport (a broken stream means messages may have
// been lost, and tag matching can no longer be trusted).
func (t *Transport) readLoop(conn net.Conn) {
	dec := NewDecoder(bufio.NewReaderSize(conn, 1<<16))
	h, _, err := dec.ReadFrame()
	if err != nil || h.Kind != frameHello {
		conn.Close()
		return // never identified itself; nothing can have been lost
	}
	peer := h.From
	for {
		h, ten, err := dec.ReadFrame()
		if err != nil {
			if t.isClosed() {
				return
			}
			t.Poison(fmt.Errorf("dist: rank %d: stream from peer %d broke: %w", t.Rank(), peer, err))
			return
		}
		switch h.Kind {
		case frameGoodbye:
			return
		case frameData:
			if h.To != t.Rank() {
				t.Poison(fmt.Errorf("dist: rank %d received frame addressed to %d (corrupt routing)", t.Rank(), h.To))
				return
			}
			if !t.deliver(inboxKey{h.From, h.Tag}, ten) {
				tensor.Recycle(ten) // poisoned while delivering; undelivered payload goes back to the pool
				return
			}
			t.recvd.Add(1)
		}
	}
}

// deliver places a decoded tensor into its tag mailbox, blocking (bounded by
// RecvTimeout) if the previous message under the same tag is unconsumed —
// the same cap-1 backpressure discipline as the in-process transport. A
// delivery that cannot drain within the timeout poisons the transport.
func (t *Transport) deliver(k inboxKey, ten *tensor.Tensor) bool {
	ch := t.ch(k)
	select {
	case ch <- ten:
		return true
	default:
	}
	timeout := t.opts.RecvTimeout
	if timeout <= 0 {
		select {
		case ch <- ten:
			return true
		case <-t.dead:
			return false
		}
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case ch <- ten:
		return true
	case <-t.dead:
		return false
	case <-timer.C:
		t.Poison(fmt.Errorf("dist: rank %d: mailbox (from %d, tag %d) full for %v: receiver stalled or tag aliased", t.Rank(), k.from, k.tag, timeout))
		return false
	}
}

func (t *Transport) ch(k inboxKey) chan *tensor.Tensor {
	s := &t.shards[k.shard()]
	s.mu.Lock()
	ch, ok := s.chs[k]
	if !ok {
		ch = make(chan *tensor.Tensor, 1)
		s.chs[k] = ch
	}
	s.mu.Unlock()
	return ch
}

// link returns the sender worker for a destination, dialing on first use.
func (t *Transport) link(to int) (*peerLink, error) {
	t.mu.Lock()
	if pl, ok := t.peers[to]; ok {
		t.mu.Unlock()
		return pl, nil
	}
	addr, ok := t.book[to]
	t.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("dist: rank %d has no address for peer %d (rendezvous incomplete?)", t.Rank(), to)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("dist: rank %d dial peer %d at %s: %w", t.Rank(), to, addr, err)
	}
	t.mu.Lock()
	if existing, raced := t.peers[to]; raced {
		t.mu.Unlock()
		conn.Close()
		return existing, nil
	}
	w := bufio.NewWriterSize(conn, 1<<16)
	pl := &peerLink{w: w, c: conn}
	// The sender worker owns all writes to this conn: frames arrive encoded,
	// the worker writes them and recycles the buffers, and the drain hook
	// flushes once per burst (after the last queued frame) — one syscall per
	// burst, not one per frame. Small frames additionally coalesce: they
	// accumulate in pending (worker-local, no locking) and ship as one batch
	// frame when a large frame, the flush threshold, or the end of the burst
	// arrives — one header + write for a flurry of losses and scalars. FIFO
	// holds because pending always drains before anything later is written.
	write := func(frame []byte) {
		if _, err := w.Write(frame); err != nil && !t.isClosed() {
			t.Poison(fmt.Errorf("dist: rank %d write to peer %d: %w", t.Rank(), to, err))
		}
		recycleFrameBuf(frame)
	}
	flushPending := func() {
		switch len(pl.pending) {
		case 0:
			return
		case 1:
			// A lone small frame gains nothing from an envelope.
			write(pl.pending[0])
		default:
			batch := EncodeBatchFrame(t.Rank(), to, pl.pending, t.opts.CRC)
			write(batch)
			obs.Add(cCoalesced, int64(len(pl.pending)))
			for _, f := range pl.pending {
				recycleFrameBuf(f)
			}
		}
		pl.pending = pl.pending[:0]
		pl.pendingBytes = 0
	}
	pl.mb = NewMailboxDrain(0, func(frame []byte) {
		if len(frame) <= coalesceMaxFrame {
			pl.pending = append(pl.pending, frame)
			pl.pendingBytes += len(frame)
			if pl.pendingBytes >= coalesceFlushBytes {
				flushPending()
			}
			return
		}
		flushPending()
		write(frame)
	}, func() {
		flushPending()
		if err := w.Flush(); err != nil && !t.isClosed() {
			t.Poison(fmt.Errorf("dist: rank %d flush to peer %d: %w", t.Rank(), to, err))
		}
	})
	// Identify ourselves so the peer's readLoop can attribute the stream. The
	// hello must be queued before the link is published: a concurrent Send
	// that finds the link in t.peers could otherwise enqueue a data frame
	// ahead of the hello, and the peer drops un-attributed streams.
	pl.mb.Put(controlFrame(frameHello, t.Rank(), to))
	t.peers[to] = pl
	t.conns = append(t.conns, conn)
	t.mu.Unlock()
	return pl, nil
}

// Send implements runtime.Transport. from must be this endpoint's rank
// (every caller is an actor hosted by this process); a send to self
// short-circuits through the local inbox. The payload is fully serialized
// before Send returns, so ownership transfer follows the in-process rules.
func (t *Transport) Send(from, to, tag int, ten *tensor.Tensor) {
	self := t.Rank()
	if from != self {
		panic(fmt.Sprintf("dist: rank %d asked to send as rank %d (one actor per process)", self, from))
	}
	dt := t.wireDTypeFor(tag)
	t.sent.Add(1)
	t.sentBytes.Add(int64(dt.payloadBytes(ten.Size())))
	if to == self {
		// Loopback: match in-process semantics — the receiver owns a pooled
		// copy, the caller keeps the original. A lossy dtype applies here too,
		// so a self-send observes the same values remote ranks decode.
		cp := tensor.GetScratchShaped(ten.Shape()...)
		cp.CopyFrom(ten.Data())
		if dt != DTF64 {
			LossyRoundTrip(dt, cp.Data())
		}
		if !t.deliver(inboxKey{from, tag}, cp) {
			tensor.Recycle(cp)
		}
		return
	}
	pl, err := t.link(to)
	if err != nil {
		t.Poison(err)
		return
	}
	h := Header{Kind: frameData, From: from, To: to, Tag: tag, DType: dt, Shape: ten.Shape()}
	he := obs.TrackTid(scWireEncode, self)
	frame := EncodeFrame(&h, ten.Data(), t.opts.CRC)
	he.StopBytes(int64(len(frame)))
	obs.Add(cFramesSent, 1)
	obs.Add(cBytesSent, int64(len(frame)))
	if dt != DTF64 {
		obs.Add(cCompressedBytes, int64(len(frame)))
	}
	if !pl.mb.TryPut(frame) {
		// Teardown raced this send: the endpoint is shutting down and the
		// frame can never reach the wire. Drop it — the peer's broken stream
		// (or the poison that triggered the close) carries the failure.
		recycleFrameBuf(frame)
		return
	}
	if obs.Enabled() {
		obs.Observe(scSendQueue, int64(pl.mb.Len()))
	}
}

// Recv implements runtime.Transport. to must be this endpoint's rank. The
// returned tensor is pool-owned: Recycle it (or hand ownership onward) after
// consuming, per the serialized-tensor ownership rule.
func (t *Transport) Recv(to, from, tag int) (*tensor.Tensor, error) {
	if to != t.Rank() {
		panic(fmt.Sprintf("dist: rank %d asked to receive as rank %d (one actor per process)", t.Rank(), to))
	}
	if err := t.Err(); err != nil {
		return nil, err
	}
	ch := t.ch(inboxKey{from, tag})
	select {
	case ten := <-ch:
		return ten, nil
	default:
	}
	timeout := t.opts.RecvTimeout
	if timeout <= 0 {
		select {
		case ten := <-ch:
			return ten, nil
		case <-t.dead:
			return nil, t.Err()
		}
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case ten := <-ch:
		return ten, nil
	case <-t.dead:
		return nil, t.Err()
	case <-timer.C:
		return nil, fmt.Errorf("dist: recv on rank %d from %d tag %d timed out after %v: no matching send (mismatched tag, peer stall, or communication deadlock)", to, from, tag, timeout)
	}
}

// Poison records the first transport-level failure and fails every pending
// and future Recv with it. Idempotent; later errors are dropped.
func (t *Transport) Poison(err error) {
	if err == nil {
		return
	}
	if t.err.CompareAndSwap(nil, &err) {
		flight.Log("poison", t.Rank(), -1, err.Error())
		close(t.dead)
	}
}

// QueueDepth reports the deepest sender-worker mailbox across peers — the
// per-step queue-depth gauge the telemetry plane samples (a persistently
// growing depth marks this rank's downstream as a straggler suspect).
func (t *Transport) QueueDepth() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	depth := 0
	for _, pl := range t.peers {
		if pl == nil || pl.mb == nil {
			continue
		}
		if n := pl.mb.Len(); n > depth {
			depth = n
		}
	}
	return depth
}

// Err returns the poison error, or nil while the transport is healthy.
func (t *Transport) Err() error {
	if p := t.err.Load(); p != nil {
		return *p
	}
	return nil
}

func (t *Transport) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

// SendCount reports messages sent and total payload bytes moved.
func (t *Transport) SendCount() (int, int64) {
	return int(t.sent.Load()), t.sentBytes.Load()
}

// SenderOwnsSent reports the Send ownership contract: this transport
// serializes the payload before returning, so the caller keeps the tensor
// and may recycle it immediately — unlike ChanTransport, whose Send hands
// the reference itself to the receiver. Pooled-buffer producers (collective
// ring chunks, calibration echoes) probe for this capability to recycle
// sender-side scratch that would otherwise be orphaned to GC.
func (t *Transport) SenderOwnsSent() bool { return true }

// Close stops the listener, drains sender workers (goodbye frames flush
// behind any queued data), and closes every connection. Peers treat a
// goodbye as a clean stream end, so a graceful Close does not poison them.
// Safe to call more than once.
func (t *Transport) Close() error {
	t.shutdown(true)
	return nil
}

// Abort tears the endpoint down the way a crash would: listener and
// connections slam shut with no goodbye, so every peer's reader sees the
// stream break and poisons its transport. Failure-injection counterpart of
// Close (a SIGKILLed process aborts, it never closes).
func (t *Transport) Abort() {
	t.shutdown(false)
}

func (t *Transport) shutdown(graceful bool) {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	peers := make([]*peerLink, 0, len(t.peers))
	for _, pl := range t.peers {
		peers = append(peers, pl)
	}
	conns := t.conns
	ln := t.ln
	t.mu.Unlock()

	if graceful {
		// Bound the drain: past the deadline, writes to a wedged peer fail
		// instead of blocking Stop (and therefore Close) forever.
		deadline := time.Now().Add(closeWriteGrace)
		for _, pl := range peers {
			pl.c.SetWriteDeadline(deadline)
			pl.mb.Put(controlFrame(frameGoodbye, t.Rank(), -1))
		}
		for _, pl := range peers {
			pl.mb.Stop()
		}
	}
	ln.Close()
	for _, c := range conns {
		c.Close()
	}
	if !graceful {
		// The conns are already slammed shut, so queued writes fail fast;
		// Stop still drains each worker (recycling queued frame buffers) and
		// retires its goroutine — an aborted endpoint must not leak workers
		// to a process that rebuilds a session and carries on.
		for _, pl := range peers {
			pl.mb.Stop()
		}
	}
}
