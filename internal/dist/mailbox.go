package dist

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Mailbox is the sender-worker primitive behind the §4.2 deadlock-freedom
// guarantee at process scale: one persistent worker goroutine drains a
// non-blocking multi-producer queue, so initiating a send never blocks the
// caller (the actor's compute thread) no matter how slow the destination is.
// One mailbox serves one (actor, destination) pair — or one outgoing
// connection — so a stalled destination backpressures only its own queue,
// never head-of-line blocking traffic to other peers.
//
// Put never blocks: items append to a growable queue whose backing arrays
// are reused once the worker drains them, so steady-state traffic enqueues
// with zero allocations. DefaultMailboxBound caps outstanding items as a
// backstop against leaks (a correct program's outstanding sends are bounded
// by its instruction program).
type Mailbox[T any] struct {
	mu      sync.Mutex
	queue   []T
	standby []T // drained buffer waiting to become the next queue
	wake    chan struct{}
	stop    chan struct{}
	done    chan struct{}
	stopped bool
	bound   int
	// inflight counts items the worker has swapped out of queue but not yet
	// pushed through the sink. Set under mu at swap time, decremented per
	// item without mu — so Len (queue + inflight) never momentarily drops to
	// zero while a drained batch is still being sunk, and the queue-depth
	// gauge reads consistently under the race detector during teardown.
	inflight atomic.Int64
}

// DefaultMailboxBound is the outstanding-item cap: far above any real
// program's in-flight send count, low enough that a producer leak fails
// loudly instead of consuming all memory.
const DefaultMailboxBound = 1 << 20

// NewMailbox starts a worker goroutine that calls sink for every item in
// enqueue order. sink runs on the worker; it may block (a slow destination)
// without affecting producers. bound <= 0 uses DefaultMailboxBound.
func NewMailbox[T any](bound int, sink func(T)) *Mailbox[T] {
	return NewMailboxDrain(bound, sink, nil)
}

// NewMailboxDrain is NewMailbox with a drain hook: onDrain runs on the
// worker each time it empties the queue after processing at least one item —
// i.e. once per burst, after its last item. A transport sink uses it to
// flush a buffered writer, coalescing one syscall per burst instead of one
// per frame. nil disables the hook.
func NewMailboxDrain[T any](bound int, sink func(T), onDrain func()) *Mailbox[T] {
	if bound <= 0 {
		bound = DefaultMailboxBound
	}
	m := &Mailbox[T]{
		wake:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		bound: bound,
	}
	go m.run(sink, onDrain)
	return m
}

// Put enqueues an item. It never blocks; ordering is FIFO per mailbox.
// Put panics if the mailbox has been stopped or the bound is exceeded —
// both are programming errors, not load conditions. Producers that can
// legitimately race a teardown use TryPut instead.
func (m *Mailbox[T]) Put(it T) {
	if !m.TryPut(it) {
		panic("dist: Put on a stopped mailbox")
	}
}

// TryPut is Put for producers that race a teardown: it reports false instead
// of panicking when the mailbox has already been stopped (the caller owns the
// item again and must release it). A transport send in flight while the
// endpoint shuts down lands here — the frame can never reach the wire, so
// dropping it is the correct outcome, not a bug. Overflow is still a
// programming error and still panics.
func (m *Mailbox[T]) TryPut(it T) bool {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		return false
	}
	if len(m.queue) >= m.bound {
		n := len(m.queue)
		m.mu.Unlock()
		panic(fmt.Sprintf("dist: mailbox overflow: %d outstanding items (bound %d)", n, m.bound))
	}
	m.queue = append(m.queue, it)
	m.mu.Unlock()
	select {
	case m.wake <- struct{}{}:
	default:
	}
	return true
}

// Len reports the items enqueued or swapped out but not yet sunk by the
// worker — the sender-worker queue depth the observability layer samples.
// Including the in-flight batch means a drain burst shows as depth falling
// item by item, not as an instantaneous drop to zero at swap time.
func (m *Mailbox[T]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue) + int(m.inflight.Load())
}

// Stop drains remaining items through the sink, then terminates the worker.
// It blocks until the drain completes. Idempotent.
func (m *Mailbox[T]) Stop() {
	m.mu.Lock()
	if m.stopped {
		m.mu.Unlock()
		<-m.done
		return
	}
	m.stopped = true
	m.mu.Unlock()
	close(m.stop)
	<-m.done
}

func (m *Mailbox[T]) run(sink func(T), onDrain func()) {
	defer close(m.done)
	var batch []T
	var zero T
	for {
		select {
		case <-m.wake:
		case <-m.stop:
			// Final drain: producers are gone (Put panics after stop), so one
			// swap empties the queue for good.
			m.mu.Lock()
			batch, m.queue = m.queue, batch[:0]
			m.inflight.Store(int64(len(batch)))
			m.mu.Unlock()
			for i := range batch {
				sink(batch[i])
				batch[i] = zero
				m.inflight.Add(-1)
			}
			if onDrain != nil && len(batch) > 0 {
				onDrain()
			}
			return
		}
		drained := false
		for {
			// Swap the produced queue for the drained standby buffer; both
			// retain capacity, so the steady state recycles two arrays.
			m.mu.Lock()
			batch, m.queue, m.standby = m.queue, m.standby[:0], nil
			m.inflight.Store(int64(len(batch)))
			m.mu.Unlock()
			if len(batch) == 0 {
				m.mu.Lock()
				m.standby = batch
				m.mu.Unlock()
				if onDrain != nil && drained {
					onDrain()
				}
				break
			}
			drained = true
			for i := range batch {
				sink(batch[i])
				batch[i] = zero // release the payload reference promptly
				m.inflight.Add(-1)
			}
			m.mu.Lock()
			m.standby = batch[:0]
			m.mu.Unlock()
		}
	}
}
