package dist

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/tensor"
)

// ShapedTransport wraps any Transport-shaped endpoint and degrades its send
// path the way a real network would: a bandwidth cap serializes frames onto
// the link, a one-way latency (± uniform jitter) delays arrival, and a
// probabilistic frame loss silently drops frames. It exists so the degraded
// -network CI tier and the calibration model's off-localhost validation run
// without root/netem — the wrapped transport still moves real bytes (over
// TCP or channels); shaping only controls *when* they move, and whether.
//
// Semantics preserved from the wrapped transport:
//   - Send returns once the payload is captured (SenderOwnsSent is true: the
//     shaper copies into a pooled tensor immediately, so callers recycle
//     or mutate their tensor the moment Send returns).
//   - Per-(src,dst) FIFO: frames serialize through a per-link pacer and
//     arrival times are clamped monotone, so jitter never reorders a link.
//   - Loss is retransmit-free: a dropped frame is simply never delivered,
//     so the receiver's Recv times out and poisons its transport — the same
//     poison-not-hang contract every other failure follows.
//
// Self-sends bypass shaping (loopback never crosses the modeled network).
type ShapedTransport struct {
	inner ShapeableTransport
	opts  ShapeOpts

	mu     sync.Mutex
	links  map[int]*shapedLink
	closed bool
}

// ShapeableTransport is what a transport must provide to be wrapped; the
// dist TCP Transport, LocalMesh endpoints, and the in-process ChanTransport
// all satisfy it.
type ShapeableTransport interface {
	Send(from, to, tag int, ten *tensor.Tensor)
	Recv(to, from, tag int) (*tensor.Tensor, error)
	Rank() int
}

// ShapeOpts configures the modeled network.
type ShapeOpts struct {
	// Latency is the one-way propagation delay added to every frame.
	Latency time.Duration
	// Jitter widens each frame's latency uniformly by ±Jitter (arrival order
	// per link is still FIFO: a frame never overtakes its predecessor).
	Jitter time.Duration
	// BandwidthGBs caps the link's serialization rate in GB/s (0 = no cap).
	// Frames queue behind each other at the cap, so a burst sees queueing
	// delay grow linearly — the behavior the calibration model predicts.
	BandwidthGBs float64
	// LossProb drops each frame independently with this probability. No
	// retransmit: the receive side times out and poisons, as with any lost
	// message.
	LossProb float64
	// Seed makes the jitter/loss sequence deterministic per link (each link
	// derives its own stream from Seed, from, and to).
	Seed uint64
}

// enabled reports whether the options shape anything at all.
func (o ShapeOpts) enabled() bool {
	return o.Latency > 0 || o.Jitter > 0 || o.BandwidthGBs > 0 || o.LossProb > 0
}

// shapedFrame is one in-flight frame between the pacer and delivery stages.
type shapedFrame struct {
	from, to, tag int
	ten           *tensor.Tensor
	arriveAt      time.Time
	drop          bool
}

// shapedLink shapes one (src, dst) direction: the tx mailbox worker models
// the serialization (bandwidth) delay and stamps arrival times; the fly
// mailbox worker sleeps until each arrival time and performs the real send.
// Two stages so a frame's propagation delay overlaps the next frame's
// serialization, exactly like a store-and-forward link.
type shapedLink struct {
	tx  *Mailbox[shapedFrame]
	fly *Mailbox[shapedFrame]
}

// NewShapedTransport wraps inner. Stop the returned transport (before
// closing inner) to drain in-flight frames.
func NewShapedTransport(inner ShapeableTransport, opts ShapeOpts) *ShapedTransport {
	return &ShapedTransport{inner: inner, opts: opts, links: map[int]*shapedLink{}}
}

func (s *ShapedTransport) Rank() int { return s.inner.Rank() }

// SenderOwnsSent: the shaper copies the payload before Send returns, so the
// caller keeps its tensor regardless of the wrapped transport's contract.
func (s *ShapedTransport) SenderOwnsSent() bool { return true }

// Send captures the payload and routes it through the link shaper. from must
// be the wrapped endpoint's rank (same single-actor contract as the TCP
// transport).
func (s *ShapedTransport) Send(from, to, tag int, ten *tensor.Tensor) {
	if !s.opts.enabled() || to == from {
		s.inner.Send(from, to, tag, ten)
		return
	}
	cp := tensor.GetScratchShaped(ten.Shape()...)
	cp.CopyFrom(ten.Data())
	l := s.link(to)
	if l == nil || !l.tx.TryPut(shapedFrame{from: from, to: to, tag: tag, ten: cp}) {
		tensor.Recycle(cp) // raced teardown; the frame can never be delivered
	}
}

// Recv, Err, Poison, QueueDepth, SendCount delegate: shaping models the
// network between endpoints, not the endpoints themselves.
func (s *ShapedTransport) Recv(to, from, tag int) (*tensor.Tensor, error) {
	return s.inner.Recv(to, from, tag)
}

func (s *ShapedTransport) Err() error {
	if e, ok := s.inner.(interface{ Err() error }); ok {
		return e.Err()
	}
	return nil
}

func (s *ShapedTransport) Poison(err error) {
	if p, ok := s.inner.(interface{ Poison(error) }); ok {
		p.Poison(err)
	}
}

func (s *ShapedTransport) QueueDepth() int {
	depth := 0
	if q, ok := s.inner.(interface{ QueueDepth() int }); ok {
		depth = q.QueueDepth()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, l := range s.links {
		if n := l.tx.Len() + l.fly.Len(); n > depth {
			depth = n
		}
	}
	return depth
}

func (s *ShapedTransport) SendCount() (int, int64) {
	if c, ok := s.inner.(interface{ SendCount() (int, int64) }); ok {
		return c.SendCount()
	}
	return 0, 0
}

// link returns (creating on first use) the shaper for one destination.
func (s *ShapedTransport) link(to int) *shapedLink {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if l, ok := s.links[to]; ok {
		return l
	}
	l := &shapedLink{}
	// Deterministic per-link randomness: jitter and loss replay identically
	// for a given (seed, src, dst), so a CI failure reproduces locally.
	rng := rand.New(rand.NewSource(int64(s.opts.Seed ^ uint64(s.inner.Rank())<<20 ^ uint64(to))))
	opts := s.opts
	inner := s.inner
	innerOwns := false
	if so, ok := inner.(interface{ SenderOwnsSent() bool }); ok {
		innerOwns = so.SenderOwnsSent()
	}
	// Delivery stage: sleep until the stamped arrival, then perform the real
	// send (or drop). Runs strictly FIFO per link.
	l.fly = NewMailbox[shapedFrame](0, func(f shapedFrame) {
		if d := time.Until(f.arriveAt); d > 0 {
			time.Sleep(d)
		}
		if f.drop {
			tensor.Recycle(f.ten)
			return
		}
		inner.Send(f.from, f.to, f.tag, f.ten)
		if innerOwns {
			tensor.Recycle(f.ten)
		}
	})
	// Pacer stage: model serialization onto the link at the bandwidth cap,
	// stamp the arrival time (latency ± jitter, clamped monotone so the link
	// stays FIFO), and decide loss. All state is worker-local.
	var lastTxEnd, lastArrive time.Time
	l.tx = NewMailbox[shapedFrame](0, func(f shapedFrame) {
		now := time.Now()
		start := lastTxEnd
		if now.After(start) {
			start = now
		}
		txEnd := start
		if opts.BandwidthGBs > 0 {
			bytes := float64(f.ten.Size()*8 + headerFixed)
			txEnd = start.Add(time.Duration(bytes / opts.BandwidthGBs)) // bytes/GBs = ns
		}
		lastTxEnd = txEnd
		if d := time.Until(txEnd); d > 0 {
			time.Sleep(d)
		}
		delay := opts.Latency
		if opts.Jitter > 0 {
			delay += time.Duration((2*rng.Float64() - 1) * float64(opts.Jitter))
		}
		f.arriveAt = txEnd.Add(delay)
		if f.arriveAt.Before(lastArrive) {
			f.arriveAt = lastArrive
		}
		lastArrive = f.arriveAt
		f.drop = opts.LossProb > 0 && rng.Float64() < opts.LossProb
		l.fly.Put(f)
	})
	s.links[to] = l
	return l
}

// Stop drains every link (frames already captured still deliver, on their
// shaped schedule) and retires the shaper workers. Call before closing the
// wrapped transport. Idempotent.
func (s *ShapedTransport) Stop() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	links := make([]*shapedLink, 0, len(s.links))
	for _, l := range s.links {
		links = append(links, l)
	}
	s.mu.Unlock()
	for _, l := range links {
		l.tx.Stop()
	}
	for _, l := range links {
		l.fly.Stop()
	}
}

// String summarizes the shape for logs.
func (o ShapeOpts) String() string {
	return fmt.Sprintf("latency=%v jitter=%v bw=%.2fGB/s loss=%.3f", o.Latency, o.Jitter, o.BandwidthGBs, o.LossProb)
}
