package dist

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/tensor"
)

// testWorld bootstraps a world of n sessions inside the test process (real
// TCP control and data planes, goroutine "processes").
func testWorld(t *testing.T, n int, job []byte) []*Session {
	t.Helper()
	opts := SessionOptions{
		RendezvousTimeout: 20 * time.Second,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		Transport:         Options{RecvTimeout: 10 * time.Second},
	}
	sessions := make([]*Session, n)
	errs := make([]error, n)
	var wg sync.WaitGroup

	// The coordinator must be listening before workers dial: start it first
	// with a known port by grabbing a free one.
	addrCh := make(chan string, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Bind on :0 via a probe listener is racy; instead let Coordinate
		// bind :0 directly and report its control address... Coordinate takes
		// the address literally, so pre-pick one.
		s, err := Coordinate(<-addrCh, n, job, opts)
		sessions[0], errs[0] = s, err
	}()
	addr := freeAddr(t)
	addrCh <- addr
	for r := 1; r < n; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Retry while the coordinator's listener comes up.
			var s *Session
			var err error
			for i := 0; i < 100; i++ {
				s, err = Join(addr, opts)
				if err == nil || !strings.Contains(err.Error(), "connect") {
					break
				}
				time.Sleep(20 * time.Millisecond)
			}
			idx := -1
			if s != nil {
				idx = s.Rank
			}
			if idx < 0 {
				t.Errorf("join: %v", err)
				return
			}
			sessions[idx], errs[idx] = s, err
		}()
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d bootstrap: %v", r, err)
		}
	}
	t.Cleanup(func() {
		for _, s := range sessions {
			if s != nil {
				s.Close()
			}
		}
	})
	return sessions
}

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestBootstrapAndEcho brings up a 4-rank world, checks rank/book/job
// distribution, and round-trips tagged tensors across every pair.
func TestBootstrapAndEcho(t *testing.T) {
	job, _ := json.Marshal(map[string]int{"width": 32})
	sessions := testWorld(t, 4, job)
	for r, s := range sessions {
		if s.Rank != r || s.World != 4 {
			t.Fatalf("session %d: rank %d world %d", r, s.Rank, s.World)
		}
		if r > 0 && string(s.Job) != string(job) {
			t.Fatalf("rank %d job %q, want %q", r, s.Job, job)
		}
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for r, s := range sessions {
		wg.Add(1)
		go func(r int, s *Session) {
			defer wg.Done()
			tr := s.Transport
			// Send a distinctive tensor to every other rank.
			for to := 0; to < 4; to++ {
				if to == r {
					continue
				}
				payload := tensor.MustFromSlice([]float64{float64(r*100 + to), 2, 3}, 3)
				tr.Send(r, to, 1000+r, payload)
			}
			for from := 0; from < 4; from++ {
				if from == r {
					continue
				}
				got, err := tr.Recv(r, from, 1000+from)
				if err != nil {
					errCh <- fmt.Errorf("rank %d recv from %d: %w", r, from, err)
					return
				}
				if got.At(0) != float64(from*100+r) {
					errCh <- fmt.Errorf("rank %d got %v from %d", r, got.Data(), from)
					return
				}
				tensor.Recycle(got)
			}
		}(r, s)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestSessionBarrier checks the control-plane barrier across all ranks.
func TestSessionBarrier(t *testing.T) {
	sessions := testWorld(t, 3, nil)
	var wg sync.WaitGroup
	errs := make([]error, len(sessions))
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *Session) {
			defer wg.Done()
			for round := 0; round < 3; round++ {
				if errs[i] = s.Barrier(); errs[i] != nil {
					return
				}
			}
		}(i, s)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("rank %d barrier: %v", i, err)
		}
	}
}

// TestWorkerDeathPoisonsTransport is the worker-kill regression: when a
// worker vanishes abruptly (no goodbye — its control conn just dies), the
// coordinator's pending Recv must surface a transport-poisoned error instead
// of hanging forever.
func TestWorkerDeathPoisonsTransport(t *testing.T) {
	sessions := testWorld(t, 3, nil)
	coord := sessions[0]

	// "Kill" rank 2: slam its sockets shut without any goodbye, exactly what
	// a SIGKILL does to the process's descriptors.
	victim := sessions[2]
	victim.coord.c.Close()
	victim.Transport.Close()

	// The coordinator is blocked in a receive that rank 2 will never serve.
	done := make(chan error, 1)
	go func() {
		_, err := coord.Transport.Recv(0, 2, 42)
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("recv from a dead worker succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("recv from a dead worker hung; transport was not poisoned")
	}
	if coord.Transport.Err() == nil {
		t.Fatal("coordinator transport not poisoned after worker death")
	}
}

// TestPeerConnBreakPoisons pins the data-plane half of failure detection:
// an established stream that breaks mid-conversation poisons the receiving
// transport.
func TestPeerConnBreakPoisons(t *testing.T) {
	a, err := NewTransport(0, Options{RecvTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewTransport(1, Options{RecvTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	book := map[int]string{0: a.Addr(), 1: b.Addr()}
	a.Connect(book)
	b.Connect(book)

	// Establish the b→a stream, then kill b without a goodbye.
	b.Send(1, 0, 7, tensor.Scalar(3))
	got, err := a.Recv(0, 1, 7)
	if err != nil || got.At() != 3 {
		t.Fatalf("recv: %v %v", got, err)
	}
	tensor.Recycle(got)

	pending := make(chan error, 1)
	go func() {
		_, err := a.Recv(0, 1, 8)
		pending <- err
	}()
	// Abrupt close: the reader on a's side sees the stream break.
	b.mu.Lock()
	for _, c := range b.conns {
		c.Close()
	}
	b.mu.Unlock()
	select {
	case err := <-pending:
		if err == nil {
			t.Fatal("recv over a broken stream succeeded")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("recv hung after the peer stream broke")
	}
	b.Close()
}

// TestLocalMeshRoundTrip exercises the in-process multi-endpoint topology
// (the rpcx successor) including CRC frames.
func TestLocalMeshRoundTrip(t *testing.T) {
	m, err := NewLocalMesh(3, Options{CRC: true, RecvTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	want := tensor.MustFromSlice([]float64{1.5, -2.5, 3.25, 0}, 2, 2)
	m.Send(0, 2, 5, want)
	got, err := m.Recv(2, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.AllClose(got, want, 0, 0) {
		t.Fatalf("got %v want %v", got, want)
	}
	tensor.Recycle(got)
	n, bytes := m.SendCount()
	if n != 1 || bytes != 32 {
		t.Fatalf("SendCount = %d, %d; want 1, 32", n, bytes)
	}
}

// TestLocalMeshTrainsLikeChanTransport is wired in the runtime-facing test
// (see internal/distrun); here we only pin self-sends.
func TestTransportSelfSend(t *testing.T) {
	a, err := NewTransport(0, Options{RecvTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	orig := tensor.MustFromSlice([]float64{9, 8}, 2)
	a.Send(0, 0, 3, orig)
	// Loopback must copy: mutating the original after Send cannot affect the
	// delivered payload.
	orig.Data()[0] = -1
	got, err := a.Recv(0, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0) != 9 || got.At(1) != 8 {
		t.Fatalf("self-send delivered %v", got.Data())
	}
	tensor.Recycle(got)
}

// TestJoinRejectsUnavailableRank pins the explicit-rank contract: a worker
// that requests a rank already taken (two processes pinned to the same rank)
// or outside the world is rejected at rendezvous instead of silently
// reassigned to an arrival-order rank the operator did not ask for.
func TestJoinRejectsUnavailableRank(t *testing.T) {
	opts := SessionOptions{
		RendezvousTimeout: 20 * time.Second,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
	}
	addr := freeAddr(t)
	var coordSess *Session
	var coordErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		coordSess, coordErr = Coordinate(addr, 3, nil, opts)
	}()

	joinRetry := func(o SessionOptions) (*Session, error) {
		var s *Session
		var err error
		for i := 0; i < 100; i++ {
			s, err = Join(addr, o)
			if err == nil || !strings.Contains(err.Error(), "connect") {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		return s, err
	}

	// First claimant of rank 1 wins.
	firstDone := make(chan *Session, 1)
	go func() {
		o := opts
		o.WantRank = 1
		s, err := joinRetry(o)
		if err != nil {
			t.Errorf("first rank-1 join: %v", err)
		}
		firstDone <- s
	}()
	time.Sleep(300 * time.Millisecond) // let the first hello land

	// Duplicate explicit rank: rejected, not reassigned.
	o := opts
	o.WantRank = 1
	if _, err := Join(addr, o); err == nil || !strings.Contains(err.Error(), "rank 1 unavailable") {
		t.Fatalf("duplicate rank-1 join: err = %v, want rejection", err)
	}
	// Out-of-world explicit rank: rejected.
	o.WantRank = 7
	if _, err := Join(addr, o); err == nil || !strings.Contains(err.Error(), "rank 7 unavailable") {
		t.Fatalf("rank-7 join in world of 3: err = %v, want rejection", err)
	}

	// A coordinator-assigned join completes the world.
	last, err := joinRetry(opts)
	if err != nil {
		t.Fatalf("final join: %v", err)
	}
	<-done
	if coordErr != nil {
		t.Fatalf("coordinate: %v", coordErr)
	}
	first := <-firstDone
	if first == nil || first.Rank != 1 {
		t.Fatalf("first claimant got rank %v, want 1", first)
	}
	if last.Rank != 2 {
		t.Fatalf("assigned join got rank %d, want 2", last.Rank)
	}
	for _, s := range []*Session{coordSess, first, last} {
		s.Close()
	}
}

// TestHeartbeatMetricsPiggyback pins the telemetry streaming path end to
// end: a worker's pinger drains the step ring, encodes a frame, attaches it
// to a heartbeat ping, and the coordinator's OnMetrics hook receives samples
// that decode back bit-for-bit.
func TestHeartbeatMetricsPiggyback(t *testing.T) {
	var mu sync.Mutex
	got := map[int64]obs.StepSample{} // step -> sample
	total := 0                        // every delivered sample, re-deliveries included
	fromRank := -1

	opts := SessionOptions{
		RendezvousTimeout: 20 * time.Second,
		HeartbeatInterval: 50 * time.Millisecond,
		HeartbeatTimeout:  2 * time.Second,
		Transport:         Options{RecvTimeout: 10 * time.Second},
	}
	coordOpts := opts
	coordOpts.OnMetrics = func(rank int, frame []byte) {
		samples, err := obs.DecodeStepFrame(frame)
		if err != nil {
			t.Errorf("coordinator received corrupt telemetry frame: %v", err)
			return
		}
		mu.Lock()
		defer mu.Unlock()
		fromRank = rank
		for _, s := range samples {
			got[s.Step] = s
			total++
		}
	}

	addr := freeAddr(t)
	var coord, worker *Session
	var coordErr, workerErr error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		coord, coordErr = Coordinate(addr, 2, nil, coordOpts)
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			worker, workerErr = Join(addr, opts)
			if workerErr == nil || !strings.Contains(workerErr.Error(), "connect") {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
	}()
	wg.Wait()
	if coordErr != nil || workerErr != nil {
		t.Fatalf("bootstrap: coord %v worker %v", coordErr, workerErr)
	}
	defer coord.Close()
	defer worker.Close()

	obs.EnableSteps()
	defer obs.DisableSteps()
	want := obs.StepSample{Rank: 1, Step: 3, WallNs: 7e6, ComputeNs: 5e6,
		WireNs: 1e6, IdleNs: 1e6, BytesSent: 4096, QueueDepth: 2, PoolHit: 8, PoolMiss: 2, Allocs: 44}
	obs.RecordStep(want)

	deadline := time.Now().Add(10 * time.Second)
	for {
		mu.Lock()
		s, ok := got[want.Step]
		rank := fromRank
		mu.Unlock()
		if ok {
			if s != want {
				t.Fatalf("streamed sample = %+v, want %+v", s, want)
			}
			if rank != 1 {
				t.Fatalf("frame attributed to rank %d, want 1", rank)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("coordinator never received the piggybacked telemetry frame")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Idle heartbeats (no new samples) must not re-deliver old frames.
	mu.Lock()
	before := total
	mu.Unlock()
	time.Sleep(5 * opts.HeartbeatInterval)
	mu.Lock()
	after := total
	mu.Unlock()
	if after != before {
		t.Fatalf("idle heartbeats re-delivered %d samples", after-before)
	}
}
