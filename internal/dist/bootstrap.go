package dist

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Rendezvous: one process is elected coordinator (by convention the rank-0
// training process); every worker dials its control address, reports its
// data-plane listen address, and receives back a rank, the world size, the
// full address book, and the job payload. A start barrier follows, so no
// rank begins its program before every data-plane listener is reachable.
// After bootstrap the control connections stay open carrying heartbeats:
// a vanished or wedged process is detected within HeartbeatTimeout and the
// data transport is poisoned on every surviving rank — pending receives
// surface an error instead of hanging the training job.

// Control-plane message. One JSON object per line.
type ctrlMsg struct {
	Type string `json:"type"` // hello, welcome, ready, start, ping, pong, barrier, barrier_ok, prof, bye, fail, release
	Addr string `json:"addr,omitempty"`
	Rank int    `json:"rank,omitempty"`
	// WantRank is the worker's requested rank in a hello; -1 lets the
	// coordinator assign arrival order.
	WantRank int             `json:"want_rank,omitempty"`
	World    int             `json:"world,omitempty"`
	Book     map[int]string  `json:"book,omitempty"`
	Job      json.RawMessage `json:"job,omitempty"`
	// Prof carries a worker's end-of-job profile snapshot to the coordinator
	// (see SendProfile/GatherProfiles).
	Prof json.RawMessage `json:"prof,omitempty"`
	// Metrics piggybacks a compact step-frame (obs.AppendStepFrame) onto a
	// worker's heartbeat ping — the telemetry plane streams without a new
	// message kind or extra round trips. Absent unless telemetry is armed
	// and new samples exist (JSON []byte rides as base64).
	Metrics []byte `json:"metrics,omitempty"`
	Err     string `json:"err,omitempty"`
}

const (
	// HeartbeatInterval is how often liveness pings travel each control conn.
	HeartbeatInterval = 1 * time.Second
	// DefaultHeartbeatMisses is how many silent intervals a peer is granted
	// before it is declared dead: slow CI machines jitter, dead processes
	// don't. The effective timeout is interval × misses.
	DefaultHeartbeatMisses = 5
	// HeartbeatTimeout is the default silence budget
	// (HeartbeatInterval × DefaultHeartbeatMisses).
	HeartbeatTimeout = HeartbeatInterval * DefaultHeartbeatMisses
	// DefaultJoinGrace is how long a flexible rendezvous keeps admitting
	// late joiners once the minimum world has formed; the window restarts on
	// every join, so a steadily arriving pool is never cut off mid-stream.
	DefaultJoinGrace = 3 * time.Second
)

// ErrReleased is returned by Join when the coordinator formed a smaller world
// than the joined pool and this worker was not seated — a clean "not needed",
// not a failure. Elastic workers exit 0 on it.
var ErrReleased = errors.New("dist: released by coordinator (not needed in the formed world)")

// SessionOptions configures bootstrap.
type SessionOptions struct {
	// Transport options for the data plane.
	Transport Options
	// RendezvousTimeout bounds the whole bootstrap (default 60s).
	RendezvousTimeout time.Duration
	// HeartbeatInterval / HeartbeatTimeout override the defaults (tests use
	// short ones). Zero keeps the package defaults; a zero HeartbeatTimeout
	// is derived as HeartbeatInterval × HeartbeatMisses.
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// HeartbeatMisses is the miss threshold the timeout is derived from when
	// HeartbeatTimeout is zero (default DefaultHeartbeatMisses).
	HeartbeatMisses int
	// WantRank requests a specific rank when joining (-1 or 0-value accepts
	// coordinator assignment; Join treats 0 as "any" since rank 0 is the
	// coordinator itself).
	WantRank int
	// MinWorld is the smallest world a flexible rendezvous may form
	// (CoordinateFlexible only; zero means the full requested world, i.e.
	// strict). JoinGrace is how long to keep admitting joiners once MinWorld
	// is met, restarted on every join (zero = DefaultJoinGrace).
	MinWorld  int
	JoinGrace time.Duration
	// OnMetrics, set on the coordinator, receives each worker's
	// heartbeat-piggybacked telemetry frame (see ctrlMsg.Metrics). Called
	// from the per-worker serve goroutine; implementations must be
	// concurrency-safe and quick (ClusterTimeline.IngestFrame qualifies).
	OnMetrics func(rank int, frame []byte)
}

func (o *SessionOptions) fill() {
	if o.RendezvousTimeout == 0 {
		o.RendezvousTimeout = 60 * time.Second
	}
	if o.HeartbeatInterval == 0 {
		o.HeartbeatInterval = HeartbeatInterval
	}
	if o.HeartbeatMisses <= 0 {
		o.HeartbeatMisses = DefaultHeartbeatMisses
	}
	if o.HeartbeatTimeout == 0 {
		o.HeartbeatTimeout = o.HeartbeatInterval * time.Duration(o.HeartbeatMisses)
	}
	if o.JoinGrace == 0 {
		o.JoinGrace = DefaultJoinGrace
	}
}

// Session is one process's membership in a bootstrapped world: its rank, the
// data-plane transport, and the control-plane machinery (heartbeats,
// barrier, shutdown).
type Session struct {
	Rank      int
	World     int
	Transport *Transport
	// Job is the coordinator-provided job payload (on the coordinator, the
	// payload it distributed — flexible rendezvous sizes it to the world that
	// actually formed).
	Job json.RawMessage
	// Book is the data-plane address book the mesh formed with, and Pinned
	// lists the operator-pinned ranks — both recorded for cluster-state
	// persistence (populated on the coordinator).
	Book   map[int]string
	Pinned []int

	opts SessionOptions

	// Coordinator side.
	ctrlLn  net.Listener
	workers []*ctrlConn // indexed by rank-1

	// Worker side.
	coord *ctrlConn

	// Telemetry piggyback state, touched only by the worker's pinger
	// goroutine: the ring cursor, a drain scratch, and the reused frame
	// buffer (heartbeats with no new samples attach nothing).
	metricsCursor  int64
	metricsScratch [64]obs.StepSample
	metricsBuf     []byte

	// closing marks a locally initiated teardown, so the serve loops can
	// tell "we closed our own sockets" from "the peer's process died".
	closing   atomic.Bool
	closeOnce sync.Once
	closeErr  error
}

// ctrlConn is one control connection with line-JSON framing and a demux
// between heartbeat traffic and protocol replies.
type ctrlConn struct {
	c    net.Conn
	r    *bufio.Reader
	wmu  sync.Mutex
	rank int // peer's rank

	// departed is set when the peer says goodbye: a graceful departure must
	// not be misdiagnosed as death once its heartbeats stop.
	departed atomic.Bool

	// replies receives non-ping protocol messages (barrier_ok, bye, ...).
	replies chan ctrlMsg
	// lastHeard is guarded by hmu; the heartbeat monitor reads it.
	hmu       sync.Mutex
	lastHeard time.Time
}

func newCtrlConn(c net.Conn) *ctrlConn {
	return &ctrlConn{c: c, r: bufio.NewReader(c), replies: make(chan ctrlMsg, 8), lastHeard: time.Now()}
}

func (cc *ctrlConn) send(m ctrlMsg) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	_, err = cc.c.Write(append(data, '\n'))
	return err
}

func (cc *ctrlConn) read() (ctrlMsg, error) {
	line, err := cc.r.ReadBytes('\n')
	if err != nil {
		return ctrlMsg{}, err
	}
	var m ctrlMsg
	if err := json.Unmarshal(line, &m); err != nil {
		return ctrlMsg{}, fmt.Errorf("dist: malformed control message %q: %w", line, err)
	}
	// Every successful read proves liveness — including the rendezvous
	// exchanges that happen before the serve loops (and their touch() calls)
	// take over. Without this, a rendezvous slower than HeartbeatTimeout
	// (workers launched by hand, seconds apart) leaves lastHeard at
	// conn-creation time and the monitors spuriously fail the world right
	// after start.
	cc.touch()
	return m, nil
}

func (cc *ctrlConn) touch() {
	cc.hmu.Lock()
	cc.lastHeard = time.Now()
	cc.hmu.Unlock()
}

func (cc *ctrlConn) silentFor() time.Duration {
	cc.hmu.Lock()
	defer cc.hmu.Unlock()
	return time.Since(cc.lastHeard)
}

// Coordinate elects this process coordinator (rank 0) of a world-process
// group: it listens on ctrlAddr, admits world-1 workers, assigns ranks,
// distributes the address book and job payload, and runs the start barrier.
// The returned session's transport is connected and ready for traffic.
func Coordinate(ctrlAddr string, world int, job []byte, opts SessionOptions) (*Session, error) {
	opts.MinWorld = world // strict: the full world or nothing
	return CoordinateFlexible(ctrlAddr, world, opts, func(int) (int, []byte) { return world, job })
}

// CoordinateFlexible is the elastic rendezvous: it admits up to maxWorld-1
// workers, but once opts.MinWorld-1 have joined and no new joiner arrives
// within opts.JoinGrace, it forms the world from whoever is present. jobFor
// receives the final process count (joined workers + this coordinator) and
// returns the world size to seat (≤ procs; the remainder are released with a
// clean "not needed") plus the job payload for that world — the hook that
// lets a shrinking training job re-derive its data-parallel width. jobFor
// returning world < 1 aborts the rendezvous (no viable topology).
func CoordinateFlexible(ctrlAddr string, maxWorld int, opts SessionOptions, jobFor func(procs int) (int, []byte)) (*Session, error) {
	opts.fill()
	if maxWorld < 1 {
		return nil, fmt.Errorf("dist: world size %d", maxWorld)
	}
	minJoin := opts.MinWorld - 1
	if opts.MinWorld <= 0 || minJoin > maxWorld-1 {
		minJoin = maxWorld - 1
	}
	tr, err := NewTransport(0, opts.Transport)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", ctrlAddr)
	if err != nil {
		tr.Close()
		return nil, fmt.Errorf("dist: coordinator listen %s: %w", ctrlAddr, err)
	}
	s := &Session{Rank: 0, Transport: tr, opts: opts, ctrlLn: ln}
	deadline := time.Now().Add(opts.RendezvousTimeout)

	pinned := map[int]bool{0: true}
	var pending []*ctrlConn
	addrs := map[*ctrlConn]string{}
	// failPending tears down an aborted rendezvous: every already-admitted
	// worker gets a fail message and a closed conn, so it errors out promptly
	// instead of sitting blocked on welcome/start until its own timeout.
	// (s.close only covers s.workers, which is not set until bootstrap
	// succeeds.)
	failPending := func(reason string) {
		for _, cc := range pending {
			cc.send(ctrlMsg{Type: "fail", Err: reason})
			cc.c.Close()
		}
		s.close(nil)
	}
	lastJoin := time.Now()
	for len(pending) < maxWorld-1 {
		// Past the minimum, each accept only waits out the join-grace window
		// (measured from the last join): an elastic reform proceeds with the
		// survivors instead of blocking the full rendezvous timeout on a
		// worker that is never coming back.
		accDeadline := deadline
		if len(pending) >= minJoin {
			if g := lastJoin.Add(opts.JoinGrace); g.Before(accDeadline) {
				accDeadline = g
			}
		}
		if tcpLn, ok := ln.(*net.TCPListener); ok {
			tcpLn.SetDeadline(accDeadline)
		}
		conn, err := ln.Accept()
		if err != nil {
			if len(pending) >= minJoin {
				break // grace expired with a viable pool: form the world
			}
			failPending(fmt.Sprintf("rendezvous aborted: %d of %d workers joined before timeout", len(pending), maxWorld-1))
			return nil, fmt.Errorf("dist: rendezvous accept: %w (joined %d of %d workers)", err, len(pending), maxWorld-1)
		}
		cc := newCtrlConn(conn)
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		m, err := cc.read()
		if err != nil || m.Type != "hello" || m.Addr == "" {
			conn.Close()
			continue // not a worker hello; ignore strays
		}
		conn.SetReadDeadline(time.Time{})
		if m.WantRank > 0 && (m.WantRank >= maxWorld || pinned[m.WantRank]) {
			// An explicitly requested rank that conflicts with another pin or
			// lies outside the world is an operator error (two processes
			// pinned to the same rank) — reject loudly rather than silently
			// reassigning and running a topology the operator did not ask
			// for.
			cc.send(ctrlMsg{Type: "fail", Err: fmt.Sprintf("requested rank %d unavailable (world %d)", m.WantRank, maxWorld)})
			conn.Close()
			continue
		}
		// Pinned ranks claim their slot now; auto workers (WantRank <= 0) are
		// assigned only after every hello has arrived, so an early auto
		// arrival can never steal a later worker's pinned rank.
		cc.rank = -1
		if m.WantRank > 0 {
			cc.rank = m.WantRank
			pinned[m.WantRank] = true
		}
		addrs[cc] = m.Addr
		pending = append(pending, cc)
		lastJoin = time.Now()
	}

	world, job := jobFor(len(pending) + 1)
	if world < 1 || world > len(pending)+1 {
		failPending(fmt.Sprintf("rendezvous aborted: no viable world for %d processes", len(pending)+1))
		return nil, fmt.Errorf("dist: no viable world for %d processes (job reported %d)", len(pending)+1, world)
	}
	// Seat world-1 workers: pinned ranks that fit the formed world first
	// (their slots are reserved), then unpinned joiners in arrival order.
	// Everyone else is released — a clean "not needed", not a failure — and
	// told so before the welcomes go out.
	var seated, released []*ctrlConn
	for _, cc := range pending {
		if cc.rank > 0 && cc.rank < world {
			seated = append(seated, cc)
		}
	}
	for _, cc := range pending {
		if cc.rank < 0 && len(seated) < world-1 {
			seated = append(seated, cc)
		} else if cc.rank < 0 || cc.rank >= world {
			released = append(released, cc)
		}
	}
	if len(seated) != world-1 {
		failPending(fmt.Sprintf("rendezvous aborted: %d seatable workers for world %d", len(seated), world))
		return nil, fmt.Errorf("dist: %d seatable workers for world %d (conflicting rank pins?)", len(seated), world)
	}
	for _, cc := range released {
		cc.send(ctrlMsg{Type: "release", Err: fmt.Sprintf("world formed at %d; not needed", world)})
		cc.c.Close()
	}
	pending = seated
	s.World = world
	s.Job = job

	book := map[int]string{0: tr.Addr()}
	next := 1
	for _, cc := range pending {
		if cc.rank < 0 {
			for pinned[next] {
				next++
			}
			cc.rank = next
			pinned[next] = true
		}
		book[cc.rank] = addrs[cc]
	}
	s.Book = book
	for r := range pinned {
		if r != 0 {
			s.Pinned = append(s.Pinned, r)
		}
	}
	sort.Ints(s.Pinned)
	// Welcome every worker with the complete book, collect readiness, start.
	for _, cc := range pending {
		if err := cc.send(ctrlMsg{Type: "welcome", Rank: cc.rank, World: world, Book: book, Job: job}); err != nil {
			failPending(fmt.Sprintf("rendezvous aborted: welcome to rank %d failed", cc.rank))
			return nil, fmt.Errorf("dist: welcome rank %d: %w", cc.rank, err)
		}
	}
	for _, cc := range pending {
		cc.c.SetReadDeadline(time.Now().Add(opts.RendezvousTimeout))
		m, err := cc.read()
		if err != nil || m.Type != "ready" {
			failPending(fmt.Sprintf("rendezvous aborted: rank %d never reported ready", cc.rank))
			return nil, fmt.Errorf("dist: rank %d never reported ready: %v", cc.rank, err)
		}
		cc.c.SetReadDeadline(time.Time{})
	}
	for _, cc := range pending {
		if err := cc.send(ctrlMsg{Type: "start"}); err != nil {
			failPending(fmt.Sprintf("rendezvous aborted: start to rank %d failed", cc.rank))
			return nil, fmt.Errorf("dist: start rank %d: %w", cc.rank, err)
		}
	}
	s.workers = pending
	tr.Connect(book)
	for _, cc := range pending {
		go s.coordinatorServe(cc)
	}
	go s.coordinatorMonitor()
	return s, nil
}

// Join connects to a coordinator, completes the rendezvous, and returns the
// worker's session once the start barrier releases. Workers may start before
// the coordinator: the dial retries until RendezvousTimeout, so arrival
// order never matters.
func Join(ctrlAddr string, opts SessionOptions) (*Session, error) {
	opts.fill()
	deadline := time.Now().Add(opts.RendezvousTimeout)
	var conn net.Conn
	var err error
	for {
		conn, err = net.DialTimeout("tcp", ctrlAddr, opts.RendezvousTimeout)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dist: join %s: %w", ctrlAddr, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
	cc := newCtrlConn(conn)
	// Listen before hello so the reported address is live.
	tr, err := NewTransport(-1, opts.Transport)
	if err != nil {
		conn.Close()
		return nil, err
	}
	if err := cc.send(ctrlMsg{Type: "hello", Addr: tr.Addr(), WantRank: opts.WantRank}); err != nil {
		conn.Close()
		tr.Close()
		return nil, fmt.Errorf("dist: hello: %w", err)
	}
	conn.SetReadDeadline(time.Now().Add(opts.RendezvousTimeout))
	m, err := cc.read()
	if err != nil {
		conn.Close()
		tr.Close()
		return nil, fmt.Errorf("dist: awaiting welcome: %w", err)
	}
	if m.Type == "fail" {
		conn.Close()
		tr.Close()
		return nil, fmt.Errorf("dist: coordinator rejected join: %s", m.Err)
	}
	if m.Type == "release" {
		conn.Close()
		tr.Close()
		return nil, fmt.Errorf("%w: %s", ErrReleased, m.Err)
	}
	if m.Type != "welcome" {
		conn.Close()
		tr.Close()
		return nil, fmt.Errorf("dist: expected welcome, got %q", m.Type)
	}
	tr.setRank(m.Rank)
	tr.Connect(m.Book)
	if err := cc.send(ctrlMsg{Type: "ready"}); err != nil {
		conn.Close()
		tr.Close()
		return nil, fmt.Errorf("dist: ready: %w", err)
	}
	start, err := cc.read()
	if err != nil || start.Type != "start" {
		conn.Close()
		tr.Close()
		return nil, fmt.Errorf("dist: awaiting start: %v (got %q)", err, start.Type)
	}
	conn.SetReadDeadline(time.Time{})
	s := &Session{Rank: m.Rank, World: m.World, Transport: tr, Job: m.Job, opts: opts, coord: cc}
	go s.workerServe()
	go s.workerMonitor()
	return s, nil
}

// setRank rebinds a transport created before its rank was known (Join
// listens before the coordinator assigns ranks).
func (t *Transport) setRank(rank int) {
	t.rank.Store(int32(rank))
}

// coordinatorServe pumps one worker's control conn: heartbeats refresh
// liveness, everything else lands in the reply channel. A broken conn (the
// worker process died) poisons the data plane immediately.
func (s *Session) coordinatorServe(cc *ctrlConn) {
	cc.touch() // heartbeat accounting starts now, not at conn creation
	stopPing := startPinger(cc, s.opts.HeartbeatInterval, nil)
	defer stopPing()
	for {
		m, err := cc.read()
		if err != nil {
			if !s.closing.Load() && !s.Transport.isClosed() {
				s.fail(fmt.Errorf("dist: worker rank %d control connection broke: %v", cc.rank, err))
			}
			return
		}
		cc.touch()
		switch m.Type {
		case "ping":
			if s.opts.OnMetrics != nil && len(m.Metrics) > 0 {
				s.opts.OnMetrics(cc.rank, m.Metrics)
			}
			cc.send(ctrlMsg{Type: "pong"})
		case "pong":
		case "bye":
			cc.departed.Store(true)
			return
		default:
			select {
			case cc.replies <- m:
			default: // protocol violation; drop rather than wedge heartbeats
			}
		}
	}
}

// fail poisons the local data plane and, on the coordinator, fans the
// failure out to every worker's control conn — a rank that has no data-plane
// stream from the dead process would otherwise block until its receive
// timeout instead of learning promptly.
func (s *Session) fail(cause error) {
	s.Transport.Poison(cause)
	for _, cc := range s.workers {
		cc.send(ctrlMsg{Type: "fail", Err: cause.Error()})
	}
}

// coordinatorMonitor fails the world when any worker goes silent for longer
// than the heartbeat timeout (a wedged-but-connected process).
func (s *Session) coordinatorMonitor() {
	tick := time.NewTicker(s.opts.HeartbeatInterval)
	defer tick.Stop()
	for range tick.C {
		if s.Transport.isClosed() || s.Transport.Err() != nil {
			return
		}
		for _, cc := range s.workers {
			if !cc.departed.Load() && cc.silentFor() > s.opts.HeartbeatTimeout {
				s.fail(fmt.Errorf("dist: worker rank %d missed heartbeats for %v", cc.rank, s.opts.HeartbeatTimeout))
				return
			}
		}
	}
}

// workerServe pumps the coordinator conn on a worker.
func (s *Session) workerServe() {
	cc := s.coord
	cc.touch() // heartbeat accounting starts now, not at conn creation
	stopPing := startPinger(cc, s.opts.HeartbeatInterval, s.collectMetrics)
	defer stopPing()
	for {
		m, err := cc.read()
		if err != nil {
			if !s.closing.Load() && !s.Transport.isClosed() {
				s.Transport.Poison(fmt.Errorf("dist: coordinator connection broke: %v", err))
			}
			return
		}
		cc.touch()
		switch m.Type {
		case "ping":
			cc.send(ctrlMsg{Type: "pong"})
		case "pong":
		case "fail":
			// Coordinator-relayed death of another rank: poison locally so
			// receives waiting on the dead rank error out promptly even
			// without a direct data-plane stream from it.
			s.Transport.Poison(fmt.Errorf("dist: coordinator reported failure: %s", m.Err))
		case "bye":
			cc.departed.Store(true)
			return
		default:
			select {
			case cc.replies <- m:
			default:
			}
		}
	}
}

// startPinger sends liveness pings on cc until the returned stop function
// runs (when the serve loop exits, on conn error or shutdown). A non-nil
// attach is called before each ping and its result rides along as the
// Metrics payload — the telemetry piggyback (workers attach, the
// coordinator pings plain).
func startPinger(cc *ctrlConn, interval time.Duration, attach func() []byte) func() {
	done := make(chan struct{})
	go func() {
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				m := ctrlMsg{Type: "ping"}
				if attach != nil {
					m.Metrics = attach()
				}
				if cc.send(m) != nil {
					return
				}
			}
		}
	}()
	return func() { close(done) }
}

// collectMetrics drains newly published step samples into a reusable frame
// buffer for the next heartbeat, or returns nil when telemetry is off or
// idle. Runs only on the worker's pinger goroutine, so the cursor and
// buffers need no locking.
func (s *Session) collectMetrics() []byte {
	if !obs.StepsEnabled() {
		return nil
	}
	total := 0
	buf := s.metricsBuf[:0]
	var samples []obs.StepSample
	for {
		n := obs.ReadStepsSince(&s.metricsCursor, s.metricsScratch[:])
		if n == 0 {
			break
		}
		samples = append(samples, s.metricsScratch[:n]...)
		total += n
	}
	if total == 0 {
		return nil
	}
	buf = obs.AppendStepFrame(buf, samples)
	s.metricsBuf = buf
	return buf
}

// workerMonitor poisons the data plane when the coordinator goes silent.
func (s *Session) workerMonitor() {
	tick := time.NewTicker(s.opts.HeartbeatInterval)
	defer tick.Stop()
	for range tick.C {
		if s.Transport.isClosed() || s.Transport.Err() != nil {
			return
		}
		if s.coord.departed.Load() {
			return // graceful coordinator goodbye is not a death
		}
		if s.coord.silentFor() > s.opts.HeartbeatTimeout {
			s.Transport.Poison(fmt.Errorf("dist: coordinator missed heartbeats for %v", s.opts.HeartbeatTimeout))
			return
		}
	}
}

// Barrier blocks until every rank of the session reaches it: workers send a
// barrier message and wait for the coordinator's release; the coordinator
// waits for all workers, then releases them. Errors surface transport
// poisoning (a dead rank fails the barrier everywhere instead of hanging).
func (s *Session) Barrier() error {
	timeout := s.opts.HeartbeatTimeout * 4
	if s.Rank == 0 {
		for _, cc := range s.workers {
			select {
			case m := <-cc.replies:
				if m.Type != "barrier" {
					return fmt.Errorf("dist: barrier: rank %d sent %q", cc.rank, m.Type)
				}
			case <-s.Transport.dead:
				return s.Transport.Err()
			case <-time.After(timeout):
				return fmt.Errorf("dist: barrier: rank %d silent for %v", cc.rank, timeout)
			}
		}
		for _, cc := range s.workers {
			if err := cc.send(ctrlMsg{Type: "barrier_ok"}); err != nil {
				return fmt.Errorf("dist: barrier release rank %d: %w", cc.rank, err)
			}
		}
		return nil
	}
	if err := s.coord.send(ctrlMsg{Type: "barrier"}); err != nil {
		return fmt.Errorf("dist: barrier: %w", err)
	}
	select {
	case m := <-s.coord.replies:
		if m.Type != "barrier_ok" {
			return fmt.Errorf("dist: barrier: coordinator sent %q", m.Type)
		}
		return nil
	case <-s.Transport.dead:
		return s.Transport.Err()
	case <-time.After(timeout):
		return fmt.Errorf("dist: barrier: coordinator silent for %v", timeout)
	}
}

// SendProfile ships this worker's profile snapshot to the coordinator as a
// control frame. Call it strictly after the end-of-job Barrier: the shared
// reply channel carries both barrier and profile traffic, and the ordering
// (everyone past the barrier, then profiles) is what keeps the two phases
// from interleaving. Coordinator-side callers should use their snapshot
// directly instead.
func (s *Session) SendProfile(data []byte) error {
	if s.Rank == 0 {
		return fmt.Errorf("dist: SendProfile on the coordinator (rank 0 collects, it does not send)")
	}
	if err := s.coord.send(ctrlMsg{Type: "prof", Prof: data}); err != nil {
		return fmt.Errorf("dist: send profile: %w", err)
	}
	return nil
}

// GatherProfiles collects one profile snapshot from every worker (coordinator
// only), in no particular order — snapshots identify their rank themselves.
// Call it strictly after the end-of-job Barrier, mirroring SendProfile.
func (s *Session) GatherProfiles() ([][]byte, error) {
	if s.Rank != 0 {
		return nil, fmt.Errorf("dist: GatherProfiles on a worker (rank %d)", s.Rank)
	}
	timeout := s.opts.HeartbeatTimeout * 4
	out := make([][]byte, 0, len(s.workers))
	for _, cc := range s.workers {
		select {
		case m := <-cc.replies:
			if m.Type != "prof" {
				return nil, fmt.Errorf("dist: gather profiles: rank %d sent %q", cc.rank, m.Type)
			}
			out = append(out, m.Prof)
		case <-s.Transport.dead:
			return nil, s.Transport.Err()
		case <-time.After(timeout):
			return nil, fmt.Errorf("dist: gather profiles: rank %d silent for %v", cc.rank, timeout)
		}
	}
	return out, nil
}

// Close tears the session down gracefully: a bye on every control conn, then
// transport shutdown. Safe to call more than once.
func (s *Session) Close() error {
	s.closeOnce.Do(func() {
		s.closing.Store(true)
		s.closeErr = s.close(nil)
	})
	return s.closeErr
}

// Abort tears the session down the way a process crash would: control conns
// and the data plane slam shut with no goodbye, so every surviving rank
// detects the death (stream break or heartbeat loss) and poisons itself.
// Failure-injection counterpart of Close.
func (s *Session) Abort() {
	s.closeOnce.Do(func() {
		s.closing.Store(true)
		if s.coord != nil {
			s.coord.c.Close()
		}
		for _, cc := range s.workers {
			cc.c.Close()
		}
		if s.ctrlLn != nil {
			s.ctrlLn.Close()
		}
		s.Transport.Abort()
		s.closeErr = nil
	})
}

func (s *Session) close(cause error) error {
	if s.coord != nil {
		s.coord.send(ctrlMsg{Type: "bye"})
		s.coord.c.Close()
	}
	for _, cc := range s.workers {
		cc.send(ctrlMsg{Type: "bye"})
		cc.c.Close()
	}
	if s.ctrlLn != nil {
		s.ctrlLn.Close()
	}
	err := s.Transport.Close()
	if cause != nil && err == nil {
		err = cause
	}
	return err
}

// ReleaseStragglers re-opens the control address after a job has finished
// and answers any worker still dialing the rendezvous with a clean release.
// An elastic world that reformed without a slow-to-rejoin survivor leaves
// that survivor retrying joins against an address nobody will ever listen on
// again once the job completes — it would burn MaxJoinFailures full
// RendezvousTimeout join attempts before concluding the coordinator is gone,
// and exit with an error for a world that finished fine without it. The
// coordinator instead lingers here for the drain window, releasing each
// straggler the moment its next dial lands (they retry on sub-second
// cadence, so the window only has to cover one retry gap). Best-effort by
// design: a listen failure or a straggler that never dials inside the window
// degrades to the old give-up path. Returns the number of workers released.
func ReleaseStragglers(ctrlAddr string, window time.Duration) int {
	ln, err := net.Listen("tcp", ctrlAddr)
	if err != nil {
		return 0
	}
	defer ln.Close()
	deadline := time.Now().Add(window)
	released := 0
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return released
		}
		if tl, ok := ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		conn, err := ln.Accept()
		if err != nil {
			return released // window elapsed (or the listener died)
		}
		cc := newCtrlConn(conn)
		conn.SetReadDeadline(deadline)
		if m, rerr := cc.read(); rerr == nil && m.Type == "hello" {
			cc.send(ctrlMsg{Type: "release", Err: "job already complete"})
			released++
		}
		conn.Close()
	}
}
