package taskgraph

import (
	"fmt"
	"sort"

	"repro/internal/schedule"
	"repro/internal/stage"
)

// segOfEntry maps a schedule entry to the segment it executes, or -1 for the
// backward entry of the last stage (already fused into the forward segment,
// like the paper's f3b3 task).
func segOfEntry(e schedule.Entry, numStages int) int {
	if e.Type == schedule.Forward {
		return e.Stage
	}
	if e.Stage == numStages-1 {
		return -1
	}
	return 2*numStages - 2 - e.Stage
}

// unroll walks the schedule in a global topological order (the cooperative
// round-robin execution that Validate proved drains) and expands every entry
// into run/send/recv/accum instructions. Sends and the matching receives are
// emitted immediately after the producing task, which is exactly the
// deadlock-avoiding order of §4.2: receives land in the receiver's program
// no later than the first task consuming them, and every send precedes any
// instruction that could block its actor.
func (c *compiler) unroll() error {
	s := c.sched
	c.prog.Losses = make([]Placement, s.NumMB)
	heads := make([]int, s.NumActors)
	doneF := map[[2]int]bool{}
	doneB := map[[2]int]bool{}
	ready := func(e schedule.Entry) bool {
		if e.Type == schedule.Forward {
			return e.Stage == 0 || doneF[[2]int{e.MB, e.Stage - 1}]
		}
		if !doneF[[2]int{e.MB, e.Stage}] {
			return false
		}
		return e.Stage == s.NumStages-1 || doneB[[2]int{e.MB, e.Stage + 1}]
	}
	for {
		progressed := false
		finished := true
		for a := 0; a < s.NumActors; a++ {
			if heads[a] >= len(s.Actors[a]) {
				continue
			}
			finished = false
			e := s.Actors[a][heads[a]]
			if !ready(e) {
				continue
			}
			if err := c.expand(a, e); err != nil {
				return err
			}
			if e.Type == schedule.Forward {
				doneF[[2]int{e.MB, e.Stage}] = true
			} else {
				doneB[[2]int{e.MB, e.Stage}] = true
			}
			heads[a]++
			progressed = true
		}
		if finished {
			return nil
		}
		if !progressed {
			return fmt.Errorf("taskgraph: schedule stalled during unrolling")
		}
	}
}

// localBuf returns the buffer of (value, mb) on the given actor.
func (c *compiler) localBuf(id, mb, actor int) (BufID, bool) {
	for _, p := range c.vals[[2]int{id, mb}] {
		if p.Actor == actor {
			return p.Buf, true
		}
	}
	return 0, false
}

func (c *compiler) expand(actor int, e schedule.Entry) error {
	segIdx := segOfEntry(e, c.split.NumStages)
	if segIdx < 0 {
		return nil // backward of the last stage: fused into the forward task
	}
	seg := c.split.Segments[segIdx]
	if got := c.actorOfSeg(segIdx); got != actor {
		return fmt.Errorf("taskgraph: segment %d expected on actor %d, schedule says %d", segIdx, got, actor)
	}

	// Naive ordering (Fig. 5): flush this task's deferred receives now,
	// right before the run — the ordering that can deadlock with
	// synchronous sends.
	if c.opts.NaiveCommOrdering {
		for _, rin := range c.pendingRecvs[[2]int{segIdx, e.MB}] {
			c.emit(actor, rin)
		}
		delete(c.pendingRecvs, [2]int{segIdx, e.MB})
	}

	run := Instr{Kind: OpRun, Seg: segIdx, MB: e.MB}
	for _, pi := range seg.ParamIn {
		if c.isBatch[pi] {
			pl := c.prog.Batch[pi][e.MB]
			if pl.Actor != actor {
				return fmt.Errorf("taskgraph: batch input %d for mb %d on actor %d, needed on %d", pi, e.MB, pl.Actor, actor)
			}
			run.Ins = append(run.Ins, pl.Buf)
			continue
		}
		buf, err := c.paramBufOn(pi, actor)
		if err != nil {
			return err
		}
		run.Ins = append(run.Ins, buf)
	}
	for _, cv := range seg.ActIn {
		buf, ok := c.localBuf(cv.ID, e.MB, actor)
		if !ok {
			return fmt.Errorf("taskgraph: segment %d mb %d: activation %d not present on actor %d", segIdx, e.MB, cv.ID, actor)
		}
		run.Ins = append(run.Ins, buf)
	}
	outBufs := make([]BufID, len(seg.OutIDs))
	for i, id := range seg.OutIDs {
		b := c.newBuf()
		outBufs[i] = b
		c.vals[[2]int{id, e.MB}] = append(c.vals[[2]int{id, e.MB}], Placement{Actor: actor, Buf: b})
	}
	run.Outs = outBufs
	c.emit(actor, run)

	// Loss collection.
	if segIdx == c.split.LossSeg {
		lossID := c.split.Source.Outputs[0].ID
		if pos := c.split.OutPos(segIdx, lossID); pos >= 0 {
			c.prog.Losses[e.MB] = Placement{Actor: actor, Buf: outBufs[pos]}
		}
	}

	// Gradient accumulation: partials produced by this segment fold into
	// their per-actor accumulator right away.
	for _, gr := range c.split.Grads {
		for _, p := range gr.Partials {
			if p.Seg != segIdx {
				continue
			}
			pos := c.split.OutPos(segIdx, p.ValueID)
			if pos < 0 {
				return fmt.Errorf("taskgraph: partial %d not an output of segment %d", p.ValueID, segIdx)
			}
			acc, ok := c.accum[p.ValueID]
			if !ok {
				acc = Placement{Actor: actor, Buf: c.newBuf()}
				c.accum[p.ValueID] = acc
			}
			c.emit(actor, Instr{Kind: OpAccum, Dst: acc.Buf, Buf: outBufs[pos]})
		}
	}

	// Communication: ship each produced value to every other actor that
	// consumes it, immediately after production (§4.2 ordering).
	for i, id := range seg.OutIDs {
		sent := map[int]bool{}
		for _, cs := range c.consumersOf[id] {
			peer := c.actorOfSeg(cs)
			if peer == actor || sent[peer] {
				continue
			}
			sent[peer] = true
			tag := c.nextTag
			c.nextTag++
			c.emit(actor, Instr{Kind: OpSend, Buf: outBufs[i], Peer: peer, Tag: tag})
			rb := c.newBuf()
			recv := Instr{Kind: OpRecv, Buf: rb, Peer: actor, Tag: tag}
			if c.opts.NaiveCommOrdering {
				// Defer the receive to just before the first consuming task
				// on that peer.
				firstSeg := -1
				for _, cs2 := range c.consumersOf[id] {
					if c.actorOfSeg(cs2) == peer && (firstSeg == -1 || cs2 < firstSeg) {
						firstSeg = cs2
					}
				}
				c.pendingRecvs[[2]int{firstSeg, e.MB}] = append(c.pendingRecvs[[2]int{firstSeg, e.MB}], recv)
			} else {
				c.emit(peer, recv)
			}
			c.vals[[2]int{id, e.MB}] = append(c.vals[[2]int{id, e.MB}], Placement{Actor: peer, Buf: rb})
		}
	}
	return nil
}

// finalMerges emits the post-loop additions for commuted tied-weight
// gradients (§3.4): each stage accumulated its own partial across
// microbatches; one transfer per extra partial (instead of per microbatch)
// brings them to the weight owner's actor, where they are summed.
func (c *compiler) finalMerges() {
	c.prog.Grads = make([]Placement, len(c.split.Grads))
	for gi, gr := range c.split.Grads {
		if len(gr.Partials) == 1 {
			c.prog.Grads[gi] = c.accum[gr.Partials[0].ValueID]
			continue
		}
		// Owner: the actor of the earliest *stage* among the partials — the
		// stage that first uses the shared weight, which is where §3.3
		// placed the weight itself.
		parts := append([]stage.GradPartial(nil), gr.Partials...)
		sort.Slice(parts, func(i, j int) bool {
			return c.split.Segments[parts[i].Seg].Stage < c.split.Segments[parts[j].Seg].Stage
		})
		owner := c.actorOfSeg(parts[0].Seg)
		cur := c.accum[parts[0].ValueID]
		for _, p := range parts[1:] {
			acc := c.accum[p.ValueID]
			src := acc.Buf
			if acc.Actor != owner {
				tag := c.nextTag
				c.nextTag++
				c.emit(acc.Actor, Instr{Kind: OpSend, Buf: acc.Buf, Peer: owner, Tag: tag})
				src = c.newBuf()
				c.emit(owner, Instr{Kind: OpRecv, Buf: src, Peer: acc.Actor, Tag: tag})
			}
			dst := c.newBuf()
			c.emit(owner, Instr{Kind: OpAdd, Dst: dst, A: cur.Buf, B: src})
			cur = Placement{Actor: owner, Buf: dst}
		}
		c.prog.Grads[gi] = cur
	}
}

// insertDeletions runs the buffer-liveness pass (§4.3): after each buffer's
// last local use, an OpDelete reclaims it. Long-lived buffers (weights and
// their replicas, final gradients, losses) are exempt; the driver owns their
// lifetime.
func (c *compiler) insertDeletions() {
	persistent := map[BufID]bool{}
	for _, p := range c.prog.Params {
		if p != nil {
			persistent[p.Buf] = true
		}
	}
	for _, reps := range c.prog.ParamReplicas {
		for _, r := range reps {
			persistent[r.Buf] = true
		}
	}
	for _, g := range c.prog.Grads {
		persistent[g.Buf] = true
	}
	for _, l := range c.prog.Losses {
		persistent[l.Buf] = true
	}

	for a, list := range c.prog.Actors {
		lastUse := map[BufID]int{}
		written := map[BufID]int{}
		reads := func(in Instr) []BufID {
			switch in.Kind {
			case OpRun:
				return in.Ins
			case OpSend:
				return []BufID{in.Buf}
			case OpAccum:
				return []BufID{in.Buf, in.Dst}
			case OpAdd:
				return []BufID{in.A, in.B}
			}
			return nil
		}
		writes := func(in Instr) []BufID {
			switch in.Kind {
			case OpRun:
				return in.Outs
			case OpRecv:
				return []BufID{in.Buf}
			case OpAccum:
				return []BufID{in.Dst}
			case OpAdd:
				return []BufID{in.Dst}
			}
			return nil
		}
		for i, in := range list {
			for _, b := range reads(in) {
				lastUse[b] = i
			}
			for _, b := range writes(in) {
				if _, ok := written[b]; !ok {
					written[b] = i
				}
				// A write is also a liveness point: never delete before it.
				if lastUse[b] < i {
					lastUse[b] = i
				}
			}
		}
		// Batch inputs are written by the driver before the step; their last
		// use is their only read.
		byIndex := make([][]BufID, len(list))
		for b, li := range lastUse {
			if !persistent[b] {
				byIndex[li] = append(byIndex[li], b)
			}
		}
		out := make([]Instr, 0, len(list))
		for i, in := range list {
			out = append(out, in)
			cands := byIndex[i]
			sort.Slice(cands, func(x, y int) bool { return cands[x] < cands[y] })
			for _, b := range cands {
				out = append(out, Instr{Kind: OpDelete, Buf: b})
			}
		}
		c.prog.Actors[a] = out
	}
}
