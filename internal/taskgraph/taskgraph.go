// Package taskgraph unrolls a stage-split microbatch graph under a pipeline
// schedule into one fused instruction program per actor (§4.2–§4.4 of the
// paper): it maps schedule entries to segment executions, infers send/receive
// pairs in global topological order (so communication cannot deadlock),
// inserts gradient accumulation, post-loop merges for commuted tied-weight
// partials, and buffer deletions.
package taskgraph

import (
	"fmt"

	"repro/internal/schedule"
	"repro/internal/stage"
)

// BufID identifies a buffer in an actor's object store. IDs are global to a
// compiled program; each actor only ever touches its own buffers.
type BufID int

// InstrKind enumerates runtime instructions.
type InstrKind int

const (
	// OpRun executes a compiled segment graph.
	OpRun InstrKind = iota
	// OpSend asynchronously sends a buffer to a peer actor.
	OpSend
	// OpRecv receives a buffer from a peer actor.
	OpRecv
	// OpAccum adds Src into Dst (initializing Dst on first use).
	OpAccum
	// OpDelete drops a buffer from the object store (deferred while sends of
	// it are in flight, per §4.3).
	OpDelete
	// OpAdd computes Dst = A + B (post-loop merge of commuted partials).
	OpAdd
)

func (k InstrKind) String() string {
	switch k {
	case OpRun:
		return "run"
	case OpSend:
		return "send"
	case OpRecv:
		return "recv"
	case OpAccum:
		return "accum"
	case OpDelete:
		return "delete"
	case OpAdd:
		return "add"
	}
	return "?"
}

// Instr is one instruction in an actor's program.
type Instr struct {
	Kind InstrKind

	// OpRun fields.
	Seg  int // segment index
	MB   int // microbatch
	Ins  []BufID
	Outs []BufID

	// Communication / memory fields.
	Buf  BufID // OpSend/OpRecv/OpDelete subject; OpAccum source
	Dst  BufID // OpAccum / OpAdd destination
	A, B BufID // OpAdd operands
	Peer int   // OpSend destination actor / OpRecv source actor
	Tag  int   // unique send/recv matching tag
}

func (in Instr) String() string {
	switch in.Kind {
	case OpRun:
		return fmt.Sprintf("run(seg=%d, mb=%d, in=%v, out=%v)", in.Seg, in.MB, in.Ins, in.Outs)
	case OpSend:
		return fmt.Sprintf("send(buf=%d, to=%d, tag=%d)", in.Buf, in.Peer, in.Tag)
	case OpRecv:
		return fmt.Sprintf("recv(buf=%d, from=%d, tag=%d)", in.Buf, in.Peer, in.Tag)
	case OpAccum:
		return fmt.Sprintf("accum(dst=%d, src=%d)", in.Dst, in.Buf)
	case OpDelete:
		return fmt.Sprintf("delete(buf=%d)", in.Buf)
	case OpAdd:
		return fmt.Sprintf("add(dst=%d, a=%d, b=%d)", in.Dst, in.A, in.B)
	}
	return "?"
}

// Placement records which actor owns a buffer.
type Placement struct {
	Actor int
	Buf   BufID
}

// Program is the compiled MPMD step: one instruction list per actor,
// dispatched in a single RPC per actor per step (§4.4).
type Program struct {
	Split    *stage.Split
	Schedule *schedule.Schedule

	Actors [][]Instr

	// Params[i] is the placement of graph input i (nil entry for batch
	// inputs). Tied weights used on several actors additionally appear in
	// ParamReplicas.
	Params        []*Placement
	ParamReplicas map[int][]Placement // input idx -> extra copies

	// Batch[i][mb] is the placement of per-microbatch input i (only for
	// batch input positions).
	Batch map[int][]Placement

	// Grads[gi] is where the final gradient for output gi+1 lives.
	Grads []Placement

	// Losses[mb] is where microbatch mb's loss lives.
	Losses []Placement

	NumBufs int
	NumTags int
}

// Options configures compilation.
type Options struct {
	// BatchInputs lists graph-input positions that vary per microbatch.
	BatchInputs []int
	// DisableDeletion skips the buffer-deletion pass (for ablation).
	DisableDeletion bool
	// NaiveCommOrdering reproduces the deadlock-prone schedule of the
	// paper's Fig. 5: receives are emitted immediately before the consuming
	// task instead of at production time in global topological order. With
	// synchronous rendezvous sends this deadlocks (see runtime tests);
	// JaxPP's default ordering does not.
	NaiveCommOrdering bool
}

type compiler struct {
	split *stage.Split
	sched *schedule.Schedule
	opts  Options

	prog    *Program
	nextBuf BufID
	nextTag int

	isBatch map[int]bool

	// vals maps (original value ID, mb) -> per-actor buffer placements.
	vals map[[2]int][]Placement

	// consumersOf maps original value ID -> segments consuming it.
	consumersOf map[int][]int

	// accum maps (grad partial value ID) -> accumulator placement.
	accum map[int]Placement

	// pendingRecvs defers receive instructions until just before the
	// consuming task (NaiveCommOrdering only), keyed by (segment, mb).
	pendingRecvs map[[2]int][]Instr
}

// Compile builds the MPMD program for one training step.
func Compile(split *stage.Split, sched *schedule.Schedule, opts Options) (*Program, error) {
	if sched.NumStages != split.NumStages {
		return nil, fmt.Errorf("taskgraph: schedule has %d stages, split has %d", sched.NumStages, split.NumStages)
	}
	if err := sched.Validate(); err != nil {
		return nil, fmt.Errorf("taskgraph: %w", err)
	}
	c := &compiler{
		split: split,
		sched: sched,
		opts:  opts,
		prog: &Program{
			Split:         split,
			Schedule:      sched,
			Actors:        make([][]Instr, sched.NumActors),
			Params:        make([]*Placement, len(split.Source.Inputs)),
			ParamReplicas: map[int][]Placement{},
			Batch:         map[int][]Placement{},
		},
		vals:         map[[2]int][]Placement{},
		consumersOf:  map[int][]int{},
		accum:        map[int]Placement{},
		isBatch:      map[int]bool{},
		pendingRecvs: map[[2]int][]Instr{},
	}
	for _, bi := range opts.BatchInputs {
		if bi < 0 || bi >= len(split.Source.Inputs) {
			return nil, fmt.Errorf("taskgraph: batch input %d out of range", bi)
		}
		c.isBatch[bi] = true
	}
	for _, seg := range split.Segments {
		for _, cv := range seg.ActIn {
			c.consumersOf[cv.ID] = append(c.consumersOf[cv.ID], seg.Index)
		}
	}
	if err := c.placeInputs(); err != nil {
		return nil, err
	}
	if err := c.unroll(); err != nil {
		return nil, err
	}
	c.finalMerges()
	if !opts.DisableDeletion {
		c.insertDeletions()
	}
	c.prog.NumBufs = int(c.nextBuf)
	c.prog.NumTags = c.nextTag
	return c.prog, nil
}

func (c *compiler) newBuf() BufID {
	b := c.nextBuf
	c.nextBuf++
	return b
}

func (c *compiler) actorOfSeg(seg int) int {
	return c.sched.StageActor[c.split.Segments[seg].Stage]
}

// placeInputs pins every graph input on the actor of its first-use segment
// (§3.3) and pre-loop-replicates params needed on additional actors.
func (c *compiler) placeInputs() error {
	for i := range c.split.Source.Inputs {
		owner := c.actorOfSeg(c.split.InputSeg[i])
		if c.isBatch[i] {
			// One buffer per microbatch. If a batch input is consumed by
			// segments on several actors, each consuming segment's actor gets
			// its own copy placed by the driver (placement propagation to
			// the computation preceding the loop).
			actors := c.paramActors(i)
			pl := make([]Placement, c.sched.NumMB)
			for mb := 0; mb < c.sched.NumMB; mb++ {
				pl[mb] = Placement{Actor: owner, Buf: c.newBuf()}
			}
			c.prog.Batch[i] = pl
			for _, a := range actors {
				if a == owner {
					continue
				}
				return fmt.Errorf("taskgraph: batch input %d consumed on multiple actors (%d and %d); per-microbatch replication unsupported", i, owner, a)
			}
			continue
		}
		buf := c.newBuf()
		c.prog.Params[i] = &Placement{Actor: owner, Buf: buf}
		// Tied weights: replicate to other consuming actors before the loop.
		for _, a := range c.paramActors(i) {
			if a == owner {
				continue
			}
			rep := Placement{Actor: a, Buf: c.newBuf()}
			c.prog.ParamReplicas[i] = append(c.prog.ParamReplicas[i], rep)
			tag := c.nextTag
			c.nextTag++
			c.emit(owner, Instr{Kind: OpSend, Buf: buf, Peer: a, Tag: tag})
			c.emit(a, Instr{Kind: OpRecv, Buf: rep.Buf, Peer: owner, Tag: tag})
		}
	}
	return nil
}

// paramActors returns the distinct actors whose segments consume input i.
func (c *compiler) paramActors(i int) []int {
	seen := map[int]bool{}
	var out []int
	for _, seg := range c.split.Segments {
		for _, pi := range seg.ParamIn {
			if pi == i {
				a := c.actorOfSeg(seg.Index)
				if !seen[a] {
					seen[a] = true
					out = append(out, a)
				}
			}
		}
	}
	return out
}

func (c *compiler) emit(actor int, in Instr) {
	c.prog.Actors[actor] = append(c.prog.Actors[actor], in)
}

// paramBufOn returns the local buffer of input i on the given actor.
func (c *compiler) paramBufOn(i, actor int) (BufID, error) {
	if p := c.prog.Params[i]; p != nil && p.Actor == actor {
		return p.Buf, nil
	}
	for _, r := range c.prog.ParamReplicas[i] {
		if r.Actor == actor {
			return r.Buf, nil
		}
	}
	return 0, fmt.Errorf("taskgraph: input %d has no copy on actor %d", i, actor)
}
