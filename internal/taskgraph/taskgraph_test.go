package taskgraph

import (
	"testing"
	"testing/quick"

	"repro/internal/autodiff"
	"repro/internal/ir"
	"repro/internal/schedule"
	"repro/internal/stage"
	"repro/internal/trace"
)

// buildSplit traces an S-stage MLP microbatch grad graph and splits it.
func buildSplit(t *testing.T, stages, width int, commute bool) *stage.Split {
	t.Helper()
	g, err := trace.Trace("mlp", func(b *trace.Builder) []*ir.Value {
		x := b.Input("x", 4, width)
		y := b.Input("y", 4, width)
		var ws []*ir.Value
		for i := 0; i < stages; i++ {
			ws = append(ws, b.Input("w", width, width))
		}
		h := x
		for i, w := range ws {
			h = b.ReLU(b.MatMul(h, w))
			if i+1 < len(ws) {
				h = b.PipelineYield(h)
			}
		}
		return []*ir.Value{b.CrossEntropy(h, y)}
	})
	if err != nil {
		t.Fatal(err)
	}
	gg, err := autodiff.ValueAndGrad(g, g.Inputs[2:])
	if err != nil {
		t.Fatal(err)
	}
	s, err := stage.SplitGraph(gg, stage.Options{CommuteGradAccumulation: commute})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func compile(t *testing.T, split *stage.Split, sched *schedule.Schedule, opts Options) *Program {
	t.Helper()
	if len(opts.BatchInputs) == 0 {
		opts.BatchInputs = []int{0, 1}
	}
	p, err := Compile(split, sched, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCompileStageMismatch(t *testing.T) {
	split := buildSplit(t, 3, 4, false)
	if _, err := Compile(split, schedule.GPipe(2, 2), Options{BatchInputs: []int{0, 1}}); err == nil {
		t.Fatal("want stage-count mismatch error")
	}
}

// sendRecvMatched checks every send has exactly one matching recv with the
// same tag on the right peer, and vice versa.
func sendRecvMatched(t *testing.T, p *Program) {
	t.Helper()
	type sr struct{ from, to, tag int }
	sends := map[sr]int{}
	recvs := map[sr]int{}
	for a, list := range p.Actors {
		for _, in := range list {
			switch in.Kind {
			case OpSend:
				sends[sr{a, in.Peer, in.Tag}]++
			case OpRecv:
				recvs[sr{in.Peer, a, in.Tag}]++
			}
		}
	}
	if len(sends) != len(recvs) {
		t.Fatalf("%d sends vs %d recvs", len(sends), len(recvs))
	}
	for k, n := range sends {
		if n != 1 || recvs[k] != 1 {
			t.Fatalf("send/recv %v not uniquely matched (%d/%d)", k, n, recvs[k])
		}
	}
}

func TestSendRecvMatching(t *testing.T) {
	split := buildSplit(t, 4, 4, false)
	for _, sched := range []*schedule.Schedule{
		schedule.GPipe(4, 8),
		schedule.OneFOneB(4, 8),
	} {
		p := compile(t, split, sched, Options{})
		sendRecvMatched(t, p)
	}
}

func TestInterleavedCompile(t *testing.T) {
	split := buildSplit(t, 4, 4, false) // 4 stages on 2 actors, repeat 2
	sched, err := schedule.Interleaved1F1B(2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := compile(t, split, sched, Options{})
	sendRecvMatched(t, p)
	// With circular placement stages 0,2 are on actor 0 and 1,3 on actor 1:
	// every stage transition crosses actors.
	runs := 0
	for _, list := range p.Actors {
		for _, in := range list {
			if in.Kind == OpRun {
				runs++
			}
		}
	}
	// 4 microbatches x 7 segments.
	if runs != 4*7 {
		t.Fatalf("run count %d, want 28", runs)
	}
}

// recvPrecedesUse: every buffer read by an instruction is produced earlier in
// the same actor's list (run output, recv, accum, or driver placement).
func recvPrecedesUse(t *testing.T, p *Program) {
	t.Helper()
	placed := map[BufID]bool{}
	for _, pp := range p.Params {
		if pp != nil {
			placed[pp.Buf] = true
		}
	}
	for _, reps := range p.ParamReplicas {
		for _, r := range reps {
			placed[r.Buf] = true
		}
	}
	for _, pl := range p.Batch {
		for _, b := range pl {
			placed[b.Buf] = true
		}
	}
	for _, list := range p.Actors {
		avail := map[BufID]bool{}
		for _, in := range list {
			check := func(b BufID) {
				if !avail[b] && !placed[b] {
					t.Fatalf("instruction %s reads buffer %d before it exists", in, b)
				}
			}
			switch in.Kind {
			case OpRun:
				for _, b := range in.Ins {
					check(b)
				}
				for _, b := range in.Outs {
					avail[b] = true
				}
			case OpSend:
				check(in.Buf)
			case OpRecv:
				avail[in.Buf] = true
			case OpAccum:
				check(in.Buf)
				avail[in.Dst] = true
			case OpAdd:
				check(in.A)
				check(in.B)
				avail[in.Dst] = true
			case OpDelete:
				delete(avail, in.Buf)
			}
		}
	}
}

func TestDataflowOrdering(t *testing.T) {
	split := buildSplit(t, 3, 4, false)
	for _, sched := range []*schedule.Schedule{
		schedule.GPipe(3, 6),
		schedule.OneFOneB(3, 6),
	} {
		p := compile(t, split, sched, Options{})
		recvPrecedesUse(t, p)
	}
}

// noUseAfterDelete: deletion never precedes a read of the same buffer.
func TestNoUseAfterDelete(t *testing.T) {
	split := buildSplit(t, 3, 4, false)
	p := compile(t, split, schedule.OneFOneB(3, 6), Options{})
	for a, list := range p.Actors {
		deleted := map[BufID]bool{}
		for _, in := range list {
			reads := func(bs ...BufID) {
				for _, b := range bs {
					if deleted[b] {
						t.Fatalf("actor %d: %s reads deleted buffer %d", a, in, b)
					}
				}
			}
			switch in.Kind {
			case OpRun:
				reads(in.Ins...)
			case OpSend:
				reads(in.Buf)
			case OpAccum:
				reads(in.Buf, in.Dst)
			case OpAdd:
				reads(in.A, in.B)
			case OpDelete:
				deleted[in.Buf] = true
			}
		}
	}
}

func TestDeletionPassFreesTransients(t *testing.T) {
	split := buildSplit(t, 3, 4, false)
	with := compile(t, split, schedule.OneFOneB(3, 6), Options{})
	without := compile(t, split, schedule.OneFOneB(3, 6), Options{DisableDeletion: true})
	countDeletes := func(p *Program) int {
		n := 0
		for _, list := range p.Actors {
			for _, in := range list {
				if in.Kind == OpDelete {
					n++
				}
			}
		}
		return n
	}
	if countDeletes(without) != 0 {
		t.Fatal("DisableDeletion still emitted deletes")
	}
	if countDeletes(with) == 0 {
		t.Fatal("deletion pass emitted nothing")
	}
}

func TestGradAndLossPlacements(t *testing.T) {
	split := buildSplit(t, 3, 4, false)
	p := compile(t, split, schedule.OneFOneB(3, 6), Options{})
	if len(p.Grads) != 3 {
		t.Fatalf("grads %d", len(p.Grads))
	}
	// Gradient for weight i must live on the actor owning stage i.
	for gi, g := range p.Grads {
		if g.Actor != p.Schedule.StageActor[gi] {
			t.Fatalf("grad %d on actor %d, want %d", gi, g.Actor, p.Schedule.StageActor[gi])
		}
	}
	// Losses live on the last stage's actor.
	last := p.Schedule.StageActor[p.Schedule.NumStages-1]
	for mb, l := range p.Losses {
		if l.Actor != last {
			t.Fatalf("loss mb %d on actor %d, want %d", mb, l.Actor, last)
		}
	}
}

func TestSingleRPCFusion(t *testing.T) {
	// §4.4: the entire step is one instruction list per actor — nothing in
	// the program requires mid-step driver involvement. We assert the
	// program covers all microbatches and segments per actor contiguously.
	split := buildSplit(t, 2, 4, false)
	p := compile(t, split, schedule.OneFOneB(2, 4), Options{})
	if len(p.Actors) != 2 {
		t.Fatalf("actors %d", len(p.Actors))
	}
	for a, list := range p.Actors {
		if len(list) == 0 {
			t.Fatalf("actor %d has empty program", a)
		}
	}
}

// Property: compilation succeeds and stays structurally sound across a sweep
// of stage counts, schedules, and microbatch counts.
func TestCompileProperty(t *testing.T) {
	f := func(seed uint64) bool {
		stages := 2 + int(seed%3)
		mbs := stages * (1 + int((seed/3)%4))
		split := buildSplit(t, stages, 4, seed%2 == 0)
		var sched *schedule.Schedule
		if seed%3 == 0 {
			sched = schedule.GPipe(stages, mbs)
		} else {
			sched = schedule.OneFOneB(stages, mbs)
		}
		p, err := Compile(split, sched, Options{BatchInputs: []int{0, 1}})
		if err != nil {
			t.Logf("compile: %v", err)
			return false
		}
		sendRecvMatched(t, p)
		recvPrecedesUse(t, p)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCountsMatchSchedule(t *testing.T) {
	split := buildSplit(t, 3, 4, false)
	mbs := 6
	p := compile(t, split, schedule.OneFOneB(3, mbs), Options{})
	// Segments: 0,1 fwd; 2 fused; 3,4 bwd. Each runs once per microbatch.
	counts := map[int]int{}
	for _, list := range p.Actors {
		for _, in := range list {
			if in.Kind == OpRun {
				counts[in.Seg]++
			}
		}
	}
	for seg := 0; seg < 5; seg++ {
		if counts[seg] != mbs {
			t.Fatalf("segment %d ran %d times, want %d", seg, counts[seg], mbs)
		}
	}
}
