package baselines

import (
	"testing"

	"repro/internal/model"
	"repro/internal/perf"
	"repro/internal/sim"
)

func TestFSDPBaselineRow(t *testing.T) {
	res, err := FSDPSimulate(FSDPConfig{
		Model: model.GPT3_175B(), Cluster: perf.EOS(), GPUs: 64, GlobalBatch: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 10.63s / 415 TFLOPS.
	if res.StepTime < 9.9 || res.StepTime > 11.4 {
		t.Fatalf("FSDP step %.2fs, paper 10.63s", res.StepTime)
	}
	if !res.Remat {
		t.Fatal("FSDP at 175B must checkpoint activations")
	}
}

func TestFSDPWeakScalingDroop(t *testing.T) {
	small, err := FSDPSimulate(FSDPConfig{Model: model.GPT3_175B(), Cluster: perf.EOS(), GPUs: 64, GlobalBatch: 128})
	if err != nil {
		t.Fatal(err)
	}
	big, err := FSDPSimulate(FSDPConfig{Model: model.GPT3_175B(), Cluster: perf.EOS(), GPUs: 1024, GlobalBatch: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if big.TFLOPSPerDevice >= small.TFLOPSPerDevice {
		t.Fatal("weak scaling must droop")
	}
	eff := big.TFLOPSPerDevice / small.TFLOPSPerDevice
	if eff < 0.90 || eff > 0.99 {
		t.Fatalf("FSDP 64→1024 efficiency %.1f%%, paper 93.97%%", 100*eff)
	}
}

func TestJaxPPBeatsFSDP(t *testing.T) {
	// Headline: JaxPP improves throughput by 1.11× over JAX FSDP (Fig. 9).
	j, err := JaxPPSimulate(sim.Config{
		Model: model.GPT3_175B(), Cluster: perf.EOS(),
		GPUs: 128, TP: 8, PP: 8, DP: 2, GlobalBatch: 256, Microbatch: 4, CircularRepeat: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := FSDPSimulate(FSDPConfig{Model: model.GPT3_175B(), Cluster: perf.EOS(), GPUs: 128, GlobalBatch: 256})
	if err != nil {
		t.Fatal(err)
	}
	ratio := j.TFLOPSPerDevice / f.TFLOPSPerDevice
	if ratio < 1.05 || ratio > 1.20 {
		t.Fatalf("JaxPP/FSDP = %.3f, paper 1.11", ratio)
	}
}

func TestSPMDPPSlowest(t *testing.T) {
	s, err := SPMDPPSimulate(sim.Config{
		Model: model.GPT3_175B(), Cluster: perf.EOS(),
		GPUs: 128, TP: 4, PP: 16, DP: 2, GlobalBatch: 256, Microbatch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	j, err := JaxPPSimulate(sim.Config{
		Model: model.GPT3_175B(), Cluster: perf.EOS(),
		GPUs: 128, TP: 8, PP: 8, DP: 2, GlobalBatch: 256, Microbatch: 4, CircularRepeat: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 44.6% faster (13.96 vs 9.64). Accept 25–60%.
	speedup := s.StepTime/j.StepTime - 1
	if speedup < 0.25 || speedup > 0.60 {
		t.Fatalf("JaxPP speedup over SPMD PP %.1f%%, paper 44.6%%", 100*speedup)
	}
}

func TestNeMoFastestStepOnLlama(t *testing.T) {
	// Paper Table 1 Llama2: NeMo 7.02s < JaxPP 8.42s ≈ FSDP 8.44s.
	n, err := NeMoSimulate(sim.Config{
		Model: model.Llama2_70B(), Cluster: perf.EOS(),
		GPUs: 64, TP: 4, PP: 4, DP: 4, GlobalBatch: 128, Microbatch: 1, CircularRepeat: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	j, err := JaxPPSimulate(sim.Config{
		Model: model.Llama2_70B(), Cluster: perf.EOS(),
		GPUs: 64, TP: 8, PP: 4, DP: 2, GlobalBatch: 128, Microbatch: 4, CircularRepeat: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := FSDPSimulate(FSDPConfig{Model: model.Llama2_70B(), Cluster: perf.EOS(), GPUs: 64, GlobalBatch: 128})
	if err != nil {
		t.Fatal(err)
	}
	if !(n.StepTime < j.StepTime) {
		t.Fatalf("NeMo (%.2fs) should beat JaxPP (%.2fs) on Llama2", n.StepTime, j.StepTime)
	}
	// JaxPP ≈ FSDP on Llama2 (paper: 8.42 vs 8.44).
	rel := j.StepTime / f.StepTime
	if rel < 0.92 || rel > 1.08 {
		t.Fatalf("JaxPP/FSDP Llama2 step ratio %.3f, paper ≈1.0", rel)
	}
}

func TestFSDPDegreeDefaultCap(t *testing.T) {
	res, err := FSDPSimulate(FSDPConfig{Model: model.GPT3_175B(), Cluster: perf.EOS(), GPUs: 1024, GlobalBatch: 2048})
	if err != nil {
		t.Fatal(err)
	}
	// Weights sharded over at most 128 GPUs: 175e9×18/128 ≈ 22.9 GiB.
	if res.WeightsMemGiB < 20 || res.WeightsMemGiB > 26 {
		t.Fatalf("FSDP weight shard %.1f GiB, want ≈23", res.WeightsMemGiB)
	}
}
