// Package baselines models the comparison systems of §5: JAX FSDP (fully
// sharded data parallelism), the GSPMD SPMD-encoded pipeline parallelism
// baseline, and NeMo/Megatron (whose edge the paper attributes to custom
// high-performance kernels, modeled as a better kernel-efficiency curve).
package baselines

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/perf"
	"repro/internal/sim"
)

// FSDPConfig is a fully-sharded data-parallel run (a JAX FSDP row of
// Table 1).
type FSDPConfig struct {
	Model       model.TransformerConfig
	Cluster     perf.ClusterSpec
	GPUs        int
	GlobalBatch int
	// FSDPDegree is the sharding group size (Table 1 caps it at 128 with DP
	// across groups); 0 means min(GPUs, 128).
	FSDPDegree int
}

// Calibration constants for the FSDP model. Exposed as variables so the
// ablation benches can perturb them.
var (
	// FSDPOverlap is the fraction of gather/scatter traffic hidden under
	// compute.
	FSDPOverlap = 0.95
	// FSDPJitterPerLog2 is the straggler/jitter cost per log2(GPUs), in
	// seconds, matching the paper's mild weak-scaling droop (93.97%).
	FSDPJitterPerLog2 = 0.1
)

// FSDPSimulate returns the simulated step time and throughput for FSDP.
func FSDPSimulate(c FSDPConfig) (*sim.Result, error) {
	if c.GlobalBatch%c.GPUs != 0 && c.GlobalBatch < c.GPUs {
		return nil, fmt.Errorf("baselines: global batch %d below GPU count %d", c.GlobalBatch, c.GPUs)
	}
	if c.FSDPDegree == 0 {
		c.FSDPDegree = c.GPUs
		if c.FSDPDegree > 128 {
			c.FSDPDegree = 128
		}
	}
	dev := c.Cluster.Device
	m := c.Model

	localSeqs := float64(c.GlobalBatch) / float64(c.GPUs)
	tokensPerRank := localSeqs * float64(m.Seq)
	eta := perf.MatmulEfficiency(tokensPerRank)
	compute := m.StepFLOPs(c.GlobalBatch) / float64(c.GPUs) / (dev.PeakTFLOPS * 1e12 * eta)

	// At these model sizes the local activations (all layers × local batch)
	// vastly exceed HBM, so FSDP trains with full activation checkpointing:
	// one extra forward pass of compute.
	actNoRemat := m.ActivationBytesPerLayer(int(localSeqs)) * float64(m.Layers)
	weightsResident := float64(m.Params()) * perf.OptimizerBytesPerParam / float64(minInt(c.GPUs, 128))
	remat := actNoRemat > dev.HBMBytes-weightsResident-6e9
	if remat {
		compute *= 1 + perf.RematOverheadFactor
	}

	// ZeRO-3 traffic: all-gather BF16 params for forward and again for
	// backward, reduce-scatter BF16 grads — three volumes of 2N bytes moved
	// hierarchically; the inter-node leg dominates. Per-node NIC pool is
	// GPUsPerNode × per-GPU bandwidth.
	nodes := float64(c.GPUs) / float64(c.Cluster.GPUsPerNode)
	if nodes < 1 {
		nodes = 1
	}
	paramBytes := float64(m.Params()) * 2
	nodeBW := dev.NetGBs * float64(c.Cluster.GPUsPerNode) * 1e9
	interFrac := (nodes - 1) / nodes
	commTotal := 3 * paramBytes * interFrac / nodeBW
	exposed := commTotal * (1 - FSDPOverlap)

	jitter := FSDPJitterPerLog2 * math.Log2(float64(c.GPUs))
	step := compute + exposed + jitter

	// Memory: fully sharded training state + per-layer gathered weights +
	// activations of the local batch (FSDP checkpoints activations per
	// layer block; model the remat footprint).
	weights := float64(m.Params()) * perf.OptimizerBytesPerParam / float64(c.FSDPDegree)
	act := m.ActivationBytesPerLayerRemat(int(localSeqs)) * float64(m.Layers)

	res := &sim.Result{
		StepTime:        step,
		TFLOPSPerDevice: m.StepFLOPs(c.GlobalBatch) / step / float64(c.GPUs) / 1e12,
		Breakdown: sim.Breakdown{
			ComputeCollectives: compute,
			P2P:                exposed,
			Bubble:             jitter,
		},
		Remat:           remat,
		WeightsMemGiB:   weights / perf.GiB,
		ActivationGiB:   act / perf.GiB,
		PeakMemGiB:      (weights + act) / perf.GiB,
		NumMicrobatches: 1,
		Stages:          1,
	}
	return res, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// NeMoEfficiency is the kernel-efficiency multiplier NeMo's fused kernels
// achieve over the XLA baseline curve, calibrated so the GPT-3 175B and
// Llama2 70B step times at 128/64 GPUs land near the paper's 9.78s / 7.02s.
// (Note: NeMo's *reported* TFLOPS additionally counts selective-recompute
// FLOPs as useful work; EXPERIMENTS.md discusses the metric difference.)
var NeMoEfficiency = 1.12

// NeMoSimulate runs the pipeline simulator with NeMo's kernel efficiency,
// distributed optimizer (required to fit 175B at TP4×PP8), and selective
// attention recomputation.
func NeMoSimulate(c sim.Config) (*sim.Result, error) {
	c.KernelEfficiency = NeMoEfficiency
	c.OverlapP2P = true
	c.AutoRemat = true
	c.DistributedOptimizer = true
	c.SelectiveRecompute = true
	if c.Schedule == "" {
		if c.CircularRepeat > 1 {
			c.Schedule = sim.SchedInterleaved
		} else {
			c.Schedule = sim.Sched1F1B
		}
	}
	return sim.Simulate(c)
}

// SPMDPPSimulate runs the GSPMD stacked-loop pipeline encoding (§2.2.2):
// GPipe schedule, per-iteration synchronization, synchronous boundary
// communication, GPipe memory footprint (hence rematerialization for large
// models).
func SPMDPPSimulate(c sim.Config) (*sim.Result, error) {
	c.Schedule = sim.SchedGPipe
	c.SyncPerIteration = true
	c.OverlapP2P = false
	c.AutoRemat = true
	c.CircularRepeat = 1
	return sim.Simulate(c)
}

// JaxPPSimulate runs the paper's system: interleaved 1F1B (or plain 1F1B
// when CircularRepeat == 1), overlapped asynchronous P2P, capacity-driven
// rematerialization.
func JaxPPSimulate(c sim.Config) (*sim.Result, error) {
	if c.Schedule == "" {
		if c.CircularRepeat > 1 {
			c.Schedule = sim.SchedInterleaved
		} else {
			c.Schedule = sim.Sched1F1B
		}
	}
	c.OverlapP2P = true
	c.AutoRemat = true
	return sim.Simulate(c)
}
