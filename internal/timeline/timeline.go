// Package timeline renders pipeline schedules as per-actor timelines — the
// Fig. 2 style GPipe vs 1F1B comparison — in ASCII, and exports Chrome
// trace-event JSON for visual inspection.
package timeline

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/schedule"
)

// Span is one executed task on an actor's timeline.
type Span struct {
	Actor int
	Start float64
	End   float64
	Label string
	Bwd   bool
}

// Build simulates the schedule under unit task durations (forward = 1,
// backward = bwdRatio) and returns the resulting spans.
func Build(s *schedule.Schedule, bwdRatio float64) []Span {
	type key struct {
		mb, stage int
		ty        schedule.TaskType
	}
	doneAt := map[key]float64{}
	heads := make([]int, s.NumActors)
	now := make([]float64, s.NumActors)
	var spans []Span

	readyAt := func(e schedule.Entry) (float64, bool) {
		switch e.Type {
		case schedule.Forward:
			if e.Stage == 0 {
				return 0, true
			}
			t, ok := doneAt[key{e.MB, e.Stage - 1, schedule.Forward}]
			return t, ok
		default:
			tf, ok := doneAt[key{e.MB, e.Stage, schedule.Forward}]
			if !ok {
				return 0, false
			}
			if e.Stage == s.NumStages-1 {
				return tf, true
			}
			tb, ok := doneAt[key{e.MB, e.Stage + 1, schedule.Backward}]
			if !ok {
				return 0, false
			}
			if tb > tf {
				return tb, true
			}
			return tf, true
		}
	}
	for {
		progressed := false
		finished := true
		for a := 0; a < s.NumActors; a++ {
			if heads[a] >= len(s.Actors[a]) {
				continue
			}
			finished = false
			e := s.Actors[a][heads[a]]
			r, ok := readyAt(e)
			if !ok {
				continue
			}
			start := now[a]
			if r > start {
				start = r
			}
			dur := 1.0
			if e.Type == schedule.Backward {
				dur = bwdRatio
			}
			end := start + dur
			doneAt[key{e.MB, e.Stage, e.Type}] = end
			now[a] = end
			heads[a]++
			spans = append(spans, Span{
				Actor: a, Start: start, End: end,
				Label: fmt.Sprintf("%d", e.MB+1),
				Bwd:   e.Type == schedule.Backward,
			})
			progressed = true
		}
		if finished || !progressed {
			return spans
		}
	}
}

// RenderASCII draws the spans as one row per actor. Forward tasks print
// their microbatch number; backward tasks print it bracketed.
func RenderASCII(w io.Writer, s *schedule.Schedule, bwdRatio float64, width int) {
	spans := Build(s, bwdRatio)
	makespan := 0.0
	for _, sp := range spans {
		if sp.End > makespan {
			makespan = sp.End
		}
	}
	if makespan == 0 || width <= 0 {
		return
	}
	scale := float64(width) / makespan
	rows := make([][]byte, s.NumActors)
	for a := range rows {
		rows[a] = []byte(strings.Repeat(".", width))
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	for _, sp := range spans {
		lo := int(sp.Start * scale)
		hi := int(sp.End * scale)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		ch := sp.Label[len(sp.Label)-1]
		for x := lo; x < hi; x++ {
			if sp.Bwd {
				rows[sp.Actor][x] = 'a' + ch - '0' // backward: letters
			} else {
				rows[sp.Actor][x] = ch // forward: digits
			}
		}
	}
	fmt.Fprintf(w, "%s  (fwd = microbatch digit, bwd = letter; bubble = '.')\n", s.Name)
	for a, row := range rows {
		fmt.Fprintf(w, "actor %d |%s|\n", a, string(row))
	}
	fmt.Fprintf(w, "bubble fraction: %.3f\n", s.BubbleFraction(bwdRatio))
}

// traceEvent is one Chrome trace-event entry.
type traceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// WriteChromeTrace exports the schedule as Chrome trace-event JSON
// (chrome://tracing / Perfetto compatible).
func WriteChromeTrace(w io.Writer, s *schedule.Schedule, bwdRatio float64) error {
	spans := Build(s, bwdRatio)
	events := make([]traceEvent, 0, len(spans))
	for _, sp := range spans {
		name := "F" + sp.Label
		if sp.Bwd {
			name = "B" + sp.Label
		}
		events = append(events, traceEvent{
			Name: name, Ph: "X",
			Ts: sp.Start * 1e3, Dur: (sp.End - sp.Start) * 1e3,
			Pid: 0, Tid: sp.Actor,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(map[string]any{"traceEvents": events})
}
