package timeline

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/obs"
)

func sampleSnapshots() []*obs.Snapshot {
	return []*obs.Snapshot{
		{Rank: 0, Spans: []obs.Span{
			{Scope: "seg/0", Tid: 0, StartUs: 10, DurUs: 40},
			{Scope: "actor/recv", Tid: 0, StartUs: 50, DurUs: 20},
			{Scope: "step/actor", Tid: 0, StartUs: 0, DurUs: 100}, // envelope, skipped in render
		}},
		{Rank: 1, Spans: []obs.Span{
			{Scope: "seg/1", Tid: 1, StartUs: 30, DurUs: 50},
			{Scope: "coll/send", Tid: 1, StartUs: 80, DurUs: 10},
		}},
	}
}

func TestEventsRoundTrip(t *testing.T) {
	events := EventsFromSnapshots(sampleSnapshots())
	if len(events) != 5 {
		t.Fatalf("got %d events, want 5", len(events))
	}
	var buf bytes.Buffer
	if err := WriteChromeTraceEvents(&buf, events); err != nil {
		t.Fatal(err)
	}
	back, err := ReadChromeTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(events) {
		t.Fatalf("round trip: got %d events, want %d", len(back), len(events))
	}
	for i, e := range back {
		if e != events[i] {
			t.Fatalf("event %d changed in round trip: %+v vs %+v", i, e, events[i])
		}
	}
}

func TestReadChromeTraceBareArray(t *testing.T) {
	events, err := ReadChromeTrace(strings.NewReader(
		`[{"name":"seg/2","ph":"X","ts":1,"dur":2,"pid":3,"tid":4},{"name":"meta","ph":"M"}]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].Name != "seg/2" || events[0].Pid != 3 {
		t.Fatalf("bare-array parse: %+v", events)
	}
}

func TestRenderEventsASCII(t *testing.T) {
	var buf bytes.Buffer
	RenderEventsASCII(&buf, EventsFromSnapshots(sampleSnapshots()), 40)
	out := buf.String()
	for _, want := range []string{"rank 0 actor 0", "rank 1 actor 1", "0", "1", ".", "~"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "|"); got != 4 { // 2 lanes × 2 borders
		t.Fatalf("want 2 lanes (4 pipes), got %d:\n%s", got, out)
	}

	buf.Reset()
	RenderEventsASCII(&buf, nil, 40)
	if !strings.Contains(buf.String(), "(no spans)") {
		t.Fatalf("empty render: %q", buf.String())
	}
}
