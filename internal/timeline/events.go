package timeline

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/obs"
)

// Executed-trace support: the same Chrome trace-event export and ASCII
// per-actor rendering the simulated schedules get, fed by real obs spans
// instead of unit-time simulation. Pid is the process rank, Tid the actor (or
// rank-local recorder) lane, so a merged multi-process trace reads as one
// machine-wide step timeline.

// Event is one executed span in Chrome trace-event terms (ts/dur in µs).
type Event struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
}

// EventsFromSnapshots flattens per-rank obs snapshots into trace events. Each
// snapshot's Rank becomes the event pid; span start times are wall-anchored
// by obs, so snapshots recorded by different processes on one machine align
// without adjustment.
func EventsFromSnapshots(snaps []*obs.Snapshot) []Event {
	var events []Event
	for _, s := range snaps {
		for _, sp := range s.Spans {
			events = append(events, Event{
				Name: sp.Scope, Ph: "X",
				Ts: sp.StartUs, Dur: sp.DurUs,
				Pid: s.Rank, Tid: sp.Tid,
			})
		}
	}
	return events
}

// WriteChromeTraceEvents writes events as a Chrome trace-event JSON document
// (chrome://tracing / Perfetto compatible), mirroring WriteChromeTrace for
// simulated schedules.
func WriteChromeTraceEvents(w io.Writer, events []Event) error {
	if events == nil {
		events = []Event{} // an empty trace is still valid JSON
	}
	return json.NewEncoder(w).Encode(map[string]any{"traceEvents": events})
}

// ReadChromeTrace parses a Chrome trace-event JSON document back into events
// (complete "X" spans only), accepting both the object form this package
// writes and the bare-array form other tools emit.
func ReadChromeTrace(r io.Reader) ([]Event, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var doc struct {
		TraceEvents []Event `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		var arr []Event
		if err2 := json.Unmarshal(data, &arr); err2 != nil {
			return nil, fmt.Errorf("timeline: not a Chrome trace document: %w", err)
		}
		doc.TraceEvents = arr
	}
	events := doc.TraceEvents[:0]
	for _, e := range doc.TraceEvents {
		if e.Ph == "" || e.Ph == "X" {
			events = append(events, e)
		}
	}
	return events, nil
}

// eventGlyph maps a span's scope name to its timeline character: segment
// compute prints the segment digit (matching the simulated renderer's
// microbatch digits), collective/wire activity prints '~', the DP-sync
// epilogue 's', accumulate/add '+', and receive-wait prints the same '.'
// bubble the simulator uses for idle.
func eventGlyph(name string) byte {
	switch {
	case strings.HasPrefix(name, "seg/"):
		return name[len(name)-1]
	case name == "actor/recv", name == "coll/wait":
		return '.'
	case strings.HasPrefix(name, "coll/"), strings.HasPrefix(name, "wire/"):
		return '~'
	case name == "step/dp_sync":
		return 's'
	case name == "actor/accum", name == "actor/add":
		return '+'
	}
	return '-'
}

// RenderEventsASCII draws executed events as one row per (rank, actor) lane —
// the executed counterpart of RenderASCII, so real bubbles line up under the
// analytic Fig. 2 schedule. Envelope scopes (step/*) other than dp_sync are
// skipped: they would paint over the leaf activity inside them.
func RenderEventsASCII(w io.Writer, events []Event, width int) {
	if len(events) == 0 || width <= 0 {
		fmt.Fprintln(w, "(no spans)")
		return
	}
	type lane struct{ pid, tid int }
	var (
		lanes []lane
		seen  = map[lane]bool{}
		t0    = events[0].Ts
		t1    = events[0].Ts + events[0].Dur
		kept  []Event
	)
	for _, e := range events {
		if strings.HasPrefix(e.Name, "step/") && e.Name != "step/dp_sync" {
			continue
		}
		kept = append(kept, e)
		if e.Ts < t0 {
			t0 = e.Ts
		}
		if e.Ts+e.Dur > t1 {
			t1 = e.Ts + e.Dur
		}
		l := lane{e.Pid, e.Tid}
		if !seen[l] {
			seen[l] = true
			lanes = append(lanes, l)
		}
	}
	if len(kept) == 0 || t1 <= t0 {
		fmt.Fprintln(w, "(no spans)")
		return
	}
	sort.Slice(lanes, func(i, j int) bool {
		if lanes[i].pid != lanes[j].pid {
			return lanes[i].pid < lanes[j].pid
		}
		return lanes[i].tid < lanes[j].tid
	})
	rowOf := make(map[lane]int, len(lanes))
	rows := make([][]byte, len(lanes))
	for i, l := range lanes {
		rowOf[l] = i
		rows[i] = []byte(strings.Repeat(" ", width))
	}
	scale := float64(width) / (t1 - t0)
	sort.Slice(kept, func(i, j int) bool { return kept[i].Ts < kept[j].Ts })
	for _, e := range kept {
		lo := int((e.Ts - t0) * scale)
		hi := int((e.Ts - t0 + e.Dur) * scale)
		if hi <= lo {
			hi = lo + 1
		}
		if hi > width {
			hi = width
		}
		row := rows[rowOf[lane{e.Pid, e.Tid}]]
		ch := eventGlyph(e.Name)
		for x := lo; x < hi; x++ {
			row[x] = ch
		}
	}
	fmt.Fprintf(w, "executed trace  (%.3fms span; seg digit = compute, '~' = wire, '.' = wait, 's' = dp sync)\n", (t1-t0)/1e3)
	for i, l := range lanes {
		fmt.Fprintf(w, "rank %d actor %d |%s|\n", l.pid, l.tid, string(rows[i]))
	}
}
