package timeline

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/schedule"
)

func TestBuildSpansComplete(t *testing.T) {
	s := schedule.OneFOneB(3, 6)
	spans := Build(s, 2)
	// 3 stages × 6 mb × (fwd + bwd).
	if len(spans) != 3*6*2 {
		t.Fatalf("spans %d, want 36", len(spans))
	}
	for _, sp := range spans {
		if sp.End <= sp.Start {
			t.Fatalf("empty span %+v", sp)
		}
		if sp.Actor < 0 || sp.Actor >= 3 {
			t.Fatalf("bad actor %d", sp.Actor)
		}
	}
}

func TestSpansNonOverlappingPerActor(t *testing.T) {
	s := schedule.GPipe(4, 8)
	spans := Build(s, 2)
	last := make([]float64, 4)
	for _, sp := range spans {
		if sp.Start < last[sp.Actor]-1e-12 {
			t.Fatalf("actor %d spans overlap at %v", sp.Actor, sp.Start)
		}
		if sp.End > last[sp.Actor] {
			last[sp.Actor] = sp.End
		}
	}
}

func TestRenderASCII(t *testing.T) {
	var buf bytes.Buffer
	s := schedule.OneFOneB(3, 6)
	RenderASCII(&buf, s, 2, 80)
	out := buf.String()
	if !strings.Contains(out, "actor 0") || !strings.Contains(out, "bubble fraction") {
		t.Fatalf("render missing rows:\n%s", out)
	}
	if len(strings.Split(out, "\n")) < 5 {
		t.Fatal("render too short")
	}
}

func TestRenderDegenerate(t *testing.T) {
	var buf bytes.Buffer
	s := schedule.OneFOneB(2, 2)
	RenderASCII(&buf, s, 2, 0) // zero width: no output, no panic
	if buf.Len() != 0 {
		t.Fatal("expected no output at width 0")
	}
}

func TestChromeTrace(t *testing.T) {
	var buf bytes.Buffer
	s := schedule.GPipe(2, 3)
	if err := WriteChromeTrace(&buf, s, 2); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Dur  float64 `json:"dur"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 2*3*2 {
		t.Fatalf("events %d, want 12", len(doc.TraceEvents))
	}
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" || e.Dur <= 0 {
			t.Fatalf("bad event %+v", e)
		}
	}
}
