// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulator: Fig. 6 (circular repeat sweep), Fig. 7
// (microbatch-count sweep), Fig. 8 (weak scaling vs FSDP), Fig. 9 / Table 1
// (cross-system comparison), and Fig. 10 (step-time breakdown). Each
// function returns structured rows (with the paper's reported numbers
// alongside) and can print itself in the paper's format.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/baselines"
	"repro/internal/model"
	"repro/internal/perf"
	"repro/internal/sim"
)

// Row is one measurement with the paper's reference value attached.
type Row struct {
	Figure        string
	System        string
	Label         string
	GBS           int
	GA            int
	GPUs          int
	PP, TP        int
	DP            int
	FSDP          int
	MBS           int
	CR            int
	Result        *sim.Result
	PaperStepTime float64 // seconds; 0 if the paper reports only TFLOPS
	PaperTFLOPS   float64 // TFLOPS/device; 0 if unreported
}

// gpt3Config builds a JaxPP GPT-3 config.
func gpt3Config(gpus, tp, pp, dp, gbs, mbs, cr int) sim.Config {
	return sim.Config{
		Model:          model.GPT3_175B(),
		Cluster:        perf.EOS(),
		GPUs:           gpus,
		TP:             tp,
		PP:             pp,
		DP:             dp,
		GlobalBatch:    gbs,
		Microbatch:     mbs,
		CircularRepeat: cr,
	}
}

func llamaConfig(gpus, tp, pp, dp, gbs, mbs, cr int) sim.Config {
	c := gpt3Config(gpus, tp, pp, dp, gbs, mbs, cr)
	c.Model = model.Llama2_70B()
	return c
}

// Fig6 sweeps the circular repeat size for GPT-3 175B on 64 GPUs (TP8×PP8,
// global batch 128) across microbatch-size/accumulation pairs 1-128, 2-64,
// 4-32 — the interleaving/dispatch-overhead tradeoff.
func Fig6() ([]Row, error) {
	var rows []Row
	for _, mbsGA := range [][2]int{{1, 128}, {2, 64}, {4, 32}} {
		mbs, ga := mbsGA[0], mbsGA[1]
		for _, cr := range []int{1, 2, 3, 6, 8, 12} {
			cfg := gpt3Config(64, 8, 8, 1, 128, mbs, cr)
			res, err := baselines.JaxPPSimulate(cfg)
			if err != nil {
				return nil, fmt.Errorf("fig6 mbs=%d cr=%d: %w", mbs, cr, err)
			}
			rows = append(rows, Row{
				Figure: "fig6", System: "JaxPP",
				Label: fmt.Sprintf("MBS-GA %d-%d", mbs, ga),
				GBS:   128, GA: ga, GPUs: 64, PP: 8, TP: 8, DP: 1, MBS: mbs, CR: cr,
				Result: res,
			})
		}
	}
	return rows, nil
}

// Fig7 sweeps the number of microbatches at circular repeat 6 for MBS 1, 2,
// 4 — the utilization tradeoff (§5.1.2). Global batch = DP × MBS × GA.
func Fig7() ([]Row, error) {
	var rows []Row
	for _, mbs := range []int{1, 2, 4} {
		for _, ga := range []int{8, 16, 32, 64, 128, 256, 512} {
			gbs := mbs * ga
			cfg := gpt3Config(64, 8, 8, 1, gbs, mbs, 6)
			res, err := baselines.JaxPPSimulate(cfg)
			if err != nil {
				return nil, fmt.Errorf("fig7 mbs=%d ga=%d: %w", mbs, ga, err)
			}
			rows = append(rows, Row{
				Figure: "fig7", System: "JaxPP",
				Label: fmt.Sprintf("MBS %d", mbs),
				GBS:   gbs, GA: ga, GPUs: 64, PP: 8, TP: 8, DP: 1, MBS: mbs, CR: 6,
				Result: res,
			})
		}
	}
	return rows, nil
}

// Fig8 runs the weak-scaling experiment: GPT-3 175B, global batch 2×GPUs,
// 32 microbatches, circular repeat 6, JaxPP vs JAX FSDP, 64→1024 GPUs.
func Fig8() ([]Row, error) {
	paperJaxPP := map[int]float64{64: 462, 128: 457, 256: 452, 512: 454, 1024: 430}
	paperFSDP := map[int]float64{64: 415, 128: 412, 256: 404, 512: 400, 1024: 390}
	var rows []Row
	for _, gpus := range []int{64, 128, 256, 512, 1024} {
		gbs := 2 * gpus
		dp := gpus / 64
		mbs := gbs / (dp * 32)
		cfg := gpt3Config(gpus, 8, 8, dp, gbs, mbs, 6)
		res, err := baselines.JaxPPSimulate(cfg)
		if err != nil {
			return nil, fmt.Errorf("fig8 jaxpp %d gpus: %w", gpus, err)
		}
		rows = append(rows, Row{
			Figure: "fig8", System: "JaxPP", Label: "JaxPP",
			GBS: gbs, GA: 32, GPUs: gpus, PP: 8, TP: 8, DP: dp, MBS: mbs, CR: 6,
			Result: res, PaperTFLOPS: paperJaxPP[gpus],
		})
		fres, err := baselines.FSDPSimulate(baselines.FSDPConfig{
			Model: model.GPT3_175B(), Cluster: perf.EOS(), GPUs: gpus, GlobalBatch: gbs,
		})
		if err != nil {
			return nil, fmt.Errorf("fig8 fsdp %d gpus: %w", gpus, err)
		}
		rows = append(rows, Row{
			Figure: "fig8", System: "JAX FSDP", Label: "JAX FSDP",
			GBS: gbs, GA: 1, GPUs: gpus, PP: 1, TP: 1, DP: gpus, MBS: gbs / gpus,
			Result: fres, PaperTFLOPS: paperFSDP[gpus],
		})
	}
	return rows, nil
}

// Table1 reproduces every row of Table 1 (which also contains the Fig. 9
// bars): GPT-3 175B and Llama2 70B across JaxPP, JAX FSDP, JAX SPMD PP, and
// NeMo.
func Table1() ([]Row, error) {
	var rows []Row
	add := func(r Row, err error) error {
		if err != nil {
			return err
		}
		rows = append(rows, r)
		return nil
	}

	// JaxPP GPT-3 weak-scaling rows.
	type jrow struct {
		gbs, gpus, dp int
		stepS, tflops float64
	}
	for _, jr := range []jrow{
		{128, 64, 1, 9.53, 462},
		{256, 128, 2, 9.64, 457},
		{512, 256, 4, 9.74, 452},
		{1024, 512, 8, 9.71, 454},
		{2048, 1024, 16, 10.26, 430},
	} {
		mbs := jr.gbs / (jr.dp * 32)
		cfg := gpt3Config(jr.gpus, 8, 8, jr.dp, jr.gbs, mbs, 6)
		res, err := baselines.JaxPPSimulate(cfg)
		if err := add(Row{
			Figure: "table1", System: "JaxPP", Label: "GPT-3 175B",
			GBS: jr.gbs, GA: 32, GPUs: jr.gpus, PP: 8, TP: 8, DP: jr.dp, FSDP: 1, MBS: mbs, CR: 6,
			Result: res, PaperStepTime: jr.stepS, PaperTFLOPS: jr.tflops,
		}, err); err != nil {
			return nil, err
		}
	}

	// JAX FSDP GPT-3 rows.
	for _, fr := range []jrow{
		{128, 64, 64, 10.63, 415},
		{256, 128, 128, 10.70, 412},
		{512, 256, 128, 10.91, 404},
		{1024, 512, 128, 11.01, 400},
		{2048, 1024, 128, 11.30, 390},
	} {
		res, err := baselines.FSDPSimulate(baselines.FSDPConfig{
			Model: model.GPT3_175B(), Cluster: perf.EOS(), GPUs: fr.gpus, GlobalBatch: fr.gbs,
			FSDPDegree: fr.dp,
		})
		if err := add(Row{
			Figure: "table1", System: "JAX FSDP", Label: "GPT-3 175B",
			GBS: fr.gbs, GA: 1, GPUs: fr.gpus, PP: 1, TP: 1, DP: fr.gpus / fr.dp, FSDP: fr.dp,
			MBS: fr.gbs / fr.gpus, Result: res, PaperStepTime: fr.stepS, PaperTFLOPS: fr.tflops,
		}, err); err != nil {
			return nil, err
		}
	}

	// JAX SPMD PP GPT-3 (GBS 256, 128 GPUs, PP16 TP4 DP2, GA 128).
	{
		cfg := gpt3Config(128, 4, 16, 2, 256, 1, 1)
		res, err := baselines.SPMDPPSimulate(cfg)
		if err := add(Row{
			Figure: "table1", System: "JAX SPMD PP", Label: "GPT-3 175B",
			GBS: 256, GA: 128, GPUs: 128, PP: 16, TP: 4, DP: 2, FSDP: 1, MBS: 1, CR: 1,
			Result: res, PaperStepTime: 13.96, PaperTFLOPS: 316,
		}, err); err != nil {
			return nil, err
		}
	}

	// NeMo GPT-3 (GBS 256, 128 GPUs, PP8 TP4 DP4, GA 64).
	{
		cfg := gpt3Config(128, 4, 8, 4, 256, 1, 6)
		res, err := baselines.NeMoSimulate(cfg)
		if err := add(Row{
			Figure: "table1", System: "NeMo", Label: "GPT-3 175B",
			GBS: 256, GA: 64, GPUs: 128, PP: 8, TP: 4, DP: 4, FSDP: 1, MBS: 1, CR: 6,
			Result: res, PaperStepTime: 9.78, PaperTFLOPS: 500,
		}, err); err != nil {
			return nil, err
		}
	}

	// Llama2 70B rows.
	{
		cfg := llamaConfig(64, 8, 4, 2, 128, 4, 1)
		res, err := baselines.JaxPPSimulate(cfg)
		if err := add(Row{
			Figure: "table1", System: "JaxPP", Label: "Llama2 70B",
			GBS: 128, GA: 16, GPUs: 64, PP: 4, TP: 8, DP: 2, FSDP: 1, MBS: 4, CR: 1,
			Result: res, PaperStepTime: 8.42, PaperTFLOPS: 432,
		}, err); err != nil {
			return nil, err
		}
	}
	{
		res, err := baselines.FSDPSimulate(baselines.FSDPConfig{
			Model: model.Llama2_70B(), Cluster: perf.EOS(), GPUs: 64, GlobalBatch: 128, FSDPDegree: 64,
		})
		if err := add(Row{
			Figure: "table1", System: "JAX FSDP", Label: "Llama2 70B",
			GBS: 128, GA: 1, GPUs: 64, PP: 1, TP: 1, DP: 1, FSDP: 64, MBS: 2,
			Result: res, PaperStepTime: 8.44, PaperTFLOPS: 431,
		}, err); err != nil {
			return nil, err
		}
	}
	{
		cfg := llamaConfig(64, 4, 4, 4, 128, 1, 5)
		res, err := baselines.NeMoSimulate(cfg)
		if err := add(Row{
			Figure: "table1", System: "NeMo", Label: "Llama2 70B",
			GBS: 128, GA: 32, GPUs: 64, PP: 4, TP: 4, DP: 4, FSDP: 1, MBS: 1, CR: 5,
			Result: res, PaperStepTime: 7.02, PaperTFLOPS: 519,
		}, err); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// Fig9 extracts the cross-system comparison bars from the Table 1 configs.
func Fig9() ([]Row, error) {
	rows, err := Table1()
	if err != nil {
		return nil, err
	}
	var out []Row
	for _, r := range rows {
		keep := (r.Label == "GPT-3 175B" && r.GBS == 256) || r.Label == "Llama2 70B"
		if keep {
			r.Figure = "fig9"
			out = append(out, r)
		}
	}
	return out, nil
}

// Fig10 produces the step-time breakdown of JAX SPMD PP vs JaxPP on GPT-3
// 175B (rematerialization and synchronous-vs-overlapped P2P account for the
// gap).
func Fig10() ([]Row, error) {
	spmd, err := baselines.SPMDPPSimulate(gpt3Config(128, 4, 16, 2, 256, 1, 1))
	if err != nil {
		return nil, err
	}
	jaxpp, err := baselines.JaxPPSimulate(gpt3Config(128, 8, 8, 2, 256, 4, 6))
	if err != nil {
		return nil, err
	}
	return []Row{
		{Figure: "fig10", System: "JAX SPMD PP", Label: "GPT-3 175B", GBS: 256, GPUs: 128,
			PP: 16, TP: 4, DP: 2, GA: 128, MBS: 1, Result: spmd, PaperStepTime: 13.96},
		{Figure: "fig10", System: "JaxPP", Label: "GPT-3 175B", GBS: 256, GPUs: 128,
			PP: 8, TP: 8, DP: 2, GA: 32, MBS: 4, CR: 6, Result: jaxpp, PaperStepTime: 9.64},
	}, nil
}

// Print renders rows in the paper's tabular style, with paper references.
func Print(w io.Writer, title string, rows []Row) {
	fmt.Fprintf(w, "%s\n", title)
	fmt.Fprintf(w, "%-12s %-12s %-14s %5s %4s %5s %3s %3s %4s %4s %3s  %10s %9s | %9s %9s\n",
		"System", "Model", "Label", "GBS", "GA", "GPUs", "PP", "TP", "DP", "MBS", "CR",
		"Step(s)", "TFLOPS", "PaperStep", "PaperTF")
	for _, r := range rows {
		ps, pt := "-", "-"
		if r.PaperStepTime > 0 {
			ps = fmt.Sprintf("%9.2f", r.PaperStepTime)
		}
		if r.PaperTFLOPS > 0 {
			pt = fmt.Sprintf("%9.0f", r.PaperTFLOPS)
		}
		fmt.Fprintf(w, "%-12s %-12s %-14s %5d %4d %5d %3d %3d %4d %4d %3d  %10.2f %9.0f | %9s %9s\n",
			r.System, r.Figure, r.Label, r.GBS, r.GA, r.GPUs, r.PP, r.TP, r.DP, r.MBS, r.CR,
			r.Result.StepTime, r.Result.TFLOPSPerDevice, ps, pt)
	}
}

// PrintBreakdown renders Fig. 10 style bars.
func PrintBreakdown(w io.Writer, rows []Row) {
	fmt.Fprintf(w, "GPT-3 175B training step time breakdown (Fig. 10)\n")
	for _, r := range rows {
		b := r.Result.Breakdown
		fmt.Fprintf(w, "%-12s step=%6.2fs  compute+collectives=%6.2fs  remat=%6.2fs  p2p=%6.2fs  bubble=%6.2fs  dp_sync=%6.2fs  dispatch=%6.3fs  (paper step %.2fs)\n",
			r.System, r.Result.StepTime, b.ComputeCollectives, b.Rematerialization, b.P2P, b.Bubble, b.DPGradSync, b.Dispatch, r.PaperStepTime)
	}
}
