package experiments

import (
	"fmt"
	"io"
	"time"

	"repro/internal/autodiff"
	"repro/internal/ir"
	"repro/internal/runtime"
	"repro/internal/schedule"
	"repro/internal/stage"
	"repro/internal/taskgraph"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// Ablations runs the design-choice ablations of DESIGN.md §7 on the *real*
// functional runtime (not the simulator) and prints a summary:
//
//  1. buffer deletion (§4.3) on/off → peak object-store bytes,
//  2. loop commuting (§3.4) on/off → sends per step for a tied-weight model,
//  3. communication ordering (§4.2, Fig. 5): naive ordering + synchronous
//     rendezvous sends deadlocks; JaxPP's topological ordering completes.
func Ablations(w io.Writer) error {
	const stages, mbRows, numMB, width = 3, 4, 8, 16

	// Shared tied-weight model: W used at stage 0 and (transposed) at the
	// last stage, V in the middle.
	buildTied := func() (*ir.Graph, error) {
		g, err := trace.Trace("tied", func(b *trace.Builder) []*ir.Value {
			x := b.Input("x", mbRows, width)
			y := b.Input("y", mbRows, width)
			wv := b.Input("w", width, width)
			v := b.Input("v", width, width)
			h := b.ReLU(b.MatMul(x, wv))
			h = b.PipelineYield(h)
			h = b.ReLU(b.MatMul(h, v))
			h = b.PipelineYield(h)
			return []*ir.Value{b.CrossEntropy(b.MatMul(h, b.Transpose(wv)), y)}
		})
		if err != nil {
			return nil, err
		}
		return autodiff.ValueAndGrad(g, g.Inputs[2:])
	}

	makeInputs := func() []*tensor.Tensor {
		rng := tensor.NewRNG(5)
		return []*tensor.Tensor{
			rng.Normal(1, numMB*mbRows, width),
			rng.OneHotBatch(numMB*mbRows, width),
			rng.Normal(0.5, width, width),
			rng.Normal(0.5, width, width),
		}
	}

	run := func(opts taskgraph.Options, splitOpts stage.Options, load runtime.LoadOptions, tr runtime.Transport, timeout time.Duration) (peak int64, sends int, completed bool, err error) {
		g, err := buildTied()
		if err != nil {
			return 0, 0, false, err
		}
		split, err := stage.SplitGraph(g, splitOpts)
		if err != nil {
			return 0, 0, false, err
		}
		opts.BatchInputs = []int{0, 1}
		prog, err := taskgraph.Compile(split, schedule.OneFOneB(stages, numMB), opts)
		if err != nil {
			return 0, 0, false, err
		}
		var cl *runtime.Cluster
		if tr != nil {
			cl = runtime.NewClusterWithTransport(stages, tr)
		} else {
			cl = runtime.NewCluster(stages)
		}
		exe, err := cl.Load(prog, load)
		if err != nil {
			return 0, 0, false, err
		}
		done := make(chan error, 1)
		go func() {
			_, _, err := exe.Step(makeInputs())
			done <- err
		}()
		select {
		case err := <-done:
			if err != nil {
				return 0, 0, false, err
			}
		case <-time.After(timeout):
			return 0, 0, false, nil
		}
		for _, st := range exe.StoreStatsAll() {
			if st.PeakBytes > peak {
				peak = st.PeakBytes
			}
		}
		for _, list := range prog.Actors {
			for _, in := range list {
				if in.Kind == taskgraph.OpSend {
					sends++
				}
			}
		}
		return peak, sends, true, nil
	}

	fmt.Fprintln(w, "Ablations (functional runtime, tied-weight model, 1F1B, 3 actors, 8 microbatches)")

	// 1. Buffer deletion.
	pOn, _, _, err := run(taskgraph.Options{}, stage.Options{}, runtime.LoadOptions{}, nil, 10*time.Second)
	if err != nil {
		return err
	}
	pOff, _, _, err := run(taskgraph.Options{DisableDeletion: true}, stage.Options{}, runtime.LoadOptions{}, nil, 10*time.Second)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  buffer deletion (§4.3):  on: peak %6.1f KiB   off: peak %6.1f KiB   (%.1f×)\n",
		float64(pOn)/1024, float64(pOff)/1024, float64(pOff)/float64(pOn))

	// 2. Loop commuting.
	_, sOff, _, err := run(taskgraph.Options{}, stage.Options{}, runtime.LoadOptions{}, nil, 10*time.Second)
	if err != nil {
		return err
	}
	_, sOn, _, err := run(taskgraph.Options{}, stage.Options{CommuteGradAccumulation: true}, runtime.LoadOptions{}, nil, 10*time.Second)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "  loop commuting (§3.4):   on: %d sends/step     off: %d sends/step\n", sOn, sOff)

	// 3. Fig. 5 communication ordering under rendezvous sends.
	_, _, okTopo, err := run(taskgraph.Options{}, stage.Options{}, runtime.LoadOptions{SyncSends: true},
		runtime.NewRendezvousTransport(), 5*time.Second)
	if err != nil {
		return err
	}
	_, _, okNaive, err := run(taskgraph.Options{NaiveCommOrdering: true}, stage.Options{}, runtime.LoadOptions{SyncSends: true},
		runtime.NewRendezvousTransport(), 500*time.Millisecond)
	if err != nil {
		return err
	}
	verdict := func(ok bool) string {
		if ok {
			return "completes"
		}
		return "DEADLOCKS"
	}
	fmt.Fprintf(w, "  comm ordering (§4.2):    topological: %s     naive (Fig. 5): %s\n",
		verdict(okTopo), verdict(okNaive))
	return nil
}
