package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestAblationsOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := Ablations(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"buffer deletion", "loop commuting", "comm ordering",
		"topological: completes", "naive (Fig. 5): DEADLOCKS",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("ablations output missing %q:\n%s", want, out)
		}
	}
}
