package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestTable1MatchesPaperWithin10Percent(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("Table 1 has %d rows, want 15", len(rows))
	}
	for _, r := range rows {
		if r.PaperStepTime == 0 {
			continue
		}
		// NeMo rows: the paper's TFLOPS use NeMo's FLOP counter (includes
		// selective-recompute FLOPs); step-time agreement is looser there.
		tol := 0.10
		if r.System == "NeMo" {
			tol = 0.12
		}
		err := math.Abs(r.Result.StepTime/r.PaperStepTime - 1)
		if err > tol {
			t.Errorf("%s %s GBS %d: step %.2fs vs paper %.2fs (%.1f%% off)",
				r.System, r.Label, r.GBS, r.Result.StepTime, r.PaperStepTime, 100*err)
		}
	}
}

func TestTable1Ordering(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	get := func(system, label string, gbs int) *Row {
		for i := range rows {
			if rows[i].System == system && rows[i].Label == label && rows[i].GBS == gbs {
				return &rows[i]
			}
		}
		t.Fatalf("row %s/%s/%d missing", system, label, gbs)
		return nil
	}
	jax := get("JaxPP", "GPT-3 175B", 256)
	fsdp := get("JAX FSDP", "GPT-3 175B", 256)
	spmd := get("JAX SPMD PP", "GPT-3 175B", 256)
	// Who wins (paper's central claims): JaxPP beats FSDP and SPMD PP.
	if !(jax.Result.StepTime < fsdp.Result.StepTime) {
		t.Error("JaxPP must beat FSDP on GPT-3")
	}
	if !(jax.Result.StepTime < spmd.Result.StepTime) {
		t.Error("JaxPP must beat SPMD PP on GPT-3")
	}
	// By roughly what factor: 44.6% over SPMD PP, 1.11x over FSDP.
	if f := spmd.Result.StepTime / jax.Result.StepTime; f < 1.25 || f > 1.6 {
		t.Errorf("SPMD PP/JaxPP step ratio %.2f, paper 1.45", f)
	}
	if f := jax.Result.TFLOPSPerDevice / fsdp.Result.TFLOPSPerDevice; f < 1.05 || f > 1.2 {
		t.Errorf("JaxPP/FSDP throughput %.2f, paper 1.11", f)
	}
	// Llama2: JaxPP ≈ FSDP; NeMo fastest.
	jl := get("JaxPP", "Llama2 70B", 128)
	fl := get("JAX FSDP", "Llama2 70B", 128)
	nl := get("NeMo", "Llama2 70B", 128)
	if r := jl.Result.StepTime / fl.Result.StepTime; r < 0.93 || r > 1.07 {
		t.Errorf("JaxPP/FSDP Llama2 ratio %.3f, paper ≈1.00", r)
	}
	if !(nl.Result.StepTime < jl.Result.StepTime) {
		t.Error("NeMo must be fastest on Llama2")
	}
}

func TestFig6Shape(t *testing.T) {
	rows, err := Fig6()
	if err != nil {
		t.Fatal(err)
	}
	// 3 MBS series × 6 CR points.
	if len(rows) != 18 {
		t.Fatalf("fig6 rows %d", len(rows))
	}
	series := map[string]map[int]float64{}
	for _, r := range rows {
		if series[r.Label] == nil {
			series[r.Label] = map[int]float64{}
		}
		series[r.Label][r.CR] = r.Result.TFLOPSPerDevice
	}
	for label, s := range series {
		// Interior peak (§5.1.1): some interleaving degree beats both no
		// interleaving (CR1) and over-interleaving (CR12). Where the peak
		// falls depends on microbatch size (smaller microbatches peak at
		// lower repeat because per-task dispatch overhead bites sooner).
		peak := math.Max(math.Max(s[2], s[3]), math.Max(s[6], s[8]))
		if !(peak > s[1]) {
			t.Errorf("%s: no improvement from interleaving (CR1 %.0f vs peak %.0f)", label, s[1], peak)
		}
		if !(peak > s[12]) {
			t.Errorf("%s: no dispatch-overhead drop at CR12 (%.0f vs peak %.0f)", label, s[12], peak)
		}
	}
	// MBS separation at CR6: 4-32 > 2-64 > 1-128.
	if !(series["MBS-GA 4-32"][6] > series["MBS-GA 2-64"][6] && series["MBS-GA 2-64"][6] > series["MBS-GA 1-128"][6]) {
		t.Error("MBS ordering at CR6 wrong")
	}
}

func TestFig7Saturates(t *testing.T) {
	rows, err := Fig7()
	if err != nil {
		t.Fatal(err)
	}
	for _, mbs := range []string{"MBS 1", "MBS 2", "MBS 4"} {
		var prev float64
		for _, r := range rows {
			if r.Label != mbs {
				continue
			}
			if r.Result.TFLOPSPerDevice <= prev {
				t.Errorf("%s: TFLOPS not increasing with GA at GA=%d", mbs, r.GA)
			}
			prev = r.Result.TFLOPSPerDevice
		}
	}
}

func TestFig8Efficiencies(t *testing.T) {
	rows, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	var j64, j1024, f64, f1024 float64
	for _, r := range rows {
		switch {
		case r.System == "JaxPP" && r.GPUs == 64:
			j64 = r.Result.TFLOPSPerDevice
		case r.System == "JaxPP" && r.GPUs == 1024:
			j1024 = r.Result.TFLOPSPerDevice
		case r.System == "JAX FSDP" && r.GPUs == 64:
			f64 = r.Result.TFLOPSPerDevice
		case r.System == "JAX FSDP" && r.GPUs == 1024:
			f1024 = r.Result.TFLOPSPerDevice
		}
		// JaxPP wins at every scale (Fig. 8).
	}
	for _, gpus := range []int{64, 128, 256, 512, 1024} {
		var j, f float64
		for _, r := range rows {
			if r.GPUs == gpus && r.System == "JaxPP" {
				j = r.Result.TFLOPSPerDevice
			}
			if r.GPUs == gpus && r.System == "JAX FSDP" {
				f = r.Result.TFLOPSPerDevice
			}
		}
		if !(j > f) {
			t.Errorf("at %d GPUs JaxPP (%.0f) must beat FSDP (%.0f)", gpus, j, f)
		}
	}
	jeff := j1024 / j64
	feff := f1024 / f64
	if jeff < 0.88 || feff < 0.88 {
		t.Errorf("weak scaling efficiencies too low: jaxpp %.3f fsdp %.3f", jeff, feff)
	}
}

func TestFig10Breakdown(t *testing.T) {
	rows, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	var spmd, jax *Row
	for i := range rows {
		if rows[i].System == "JAX SPMD PP" {
			spmd = &rows[i]
		} else {
			jax = &rows[i]
		}
	}
	// §5.3: rematerialization accounts for ≈20% of the SPMD PP step and is
	// absent in JaxPP; P2P is exposed in SPMD PP and overlapped in JaxPP.
	rematFrac := spmd.Result.Breakdown.Rematerialization / spmd.Result.StepTime
	if rematFrac < 0.12 || rematFrac > 0.35 {
		t.Errorf("SPMD PP remat fraction %.2f, paper ≈0.20", rematFrac)
	}
	if jax.Result.Breakdown.Rematerialization != 0 {
		t.Error("JaxPP must not rematerialize")
	}
	if !(spmd.Result.Breakdown.P2P > jax.Result.Breakdown.P2P) {
		t.Error("SPMD PP must expose more P2P time")
	}
}

func TestPrintFormats(t *testing.T) {
	rows, err := Fig9()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	Print(&buf, "Fig 9", rows)
	out := buf.String()
	for _, want := range []string{"Fig 9", "JaxPP", "NeMo", "TFLOPS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("print output missing %q", want)
		}
	}
	b10, err := Fig10()
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	PrintBreakdown(&buf, b10)
	if !strings.Contains(buf.String(), "remat=") {
		t.Fatal("breakdown print missing remat")
	}
}
