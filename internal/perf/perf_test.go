package perf

import (
	"testing"
	"testing/quick"
)

func TestEfficiencyMonotonicAndBounded(t *testing.T) {
	f := func(seed uint64) bool {
		x := float64(1 + seed%100000)
		y := x * 2
		ex, ey := MatmulEfficiency(x), MatmulEfficiency(y)
		return ex > 0 && ex < 1 && ey >= ex
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if MatmulEfficiency(0) != 0 || MatmulEfficiency(-5) != 0 {
		t.Fatal("non-positive tokens should give zero efficiency")
	}
}

func TestEfficiencyCalibrationPoints(t *testing.T) {
	// The curve was calibrated so MBS 1 vs MBS 4 at TP8 (256 vs 1024
	// tokens/rank) differ by roughly the paper's Fig. 6 separation (~8%).
	r := MatmulEfficiency(256) / MatmulEfficiency(1024)
	if r < 0.88 || r > 0.96 {
		t.Fatalf("256/1024 token efficiency ratio %v, want ≈0.92", r)
	}
}

func TestRingAllReduce(t *testing.T) {
	if RingAllReduceTime(0, 8, 100, 1e-6) != 0 {
		t.Fatal("zero bytes should cost zero")
	}
	if RingAllReduceTime(1e9, 1, 100, 1e-6) != 0 {
		t.Fatal("single participant should cost zero")
	}
	// 2(n-1)/n factor: for large n, ≈ 2×bytes/bw.
	got := RingAllReduceTime(1e9, 1000, 100, 0)
	want := 2 * 0.999 * 1e9 / 100e9
	if diff := got - want; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("ring allreduce %v want %v", got, want)
	}
}

func TestNVSwitchBeatsRing(t *testing.T) {
	ring := RingAllReduceTime(1e8, 8, 450, 3e-6)
	nvls := NVSwitchAllReduceTime(1e8, 8, 450, 3e-6)
	if nvls >= ring {
		t.Fatalf("NVLS (%v) should beat ring (%v)", nvls, ring)
	}
}

func TestAllGatherAndP2P(t *testing.T) {
	if RingAllGatherTime(1e9, 4, 100, 0) <= 0 {
		t.Fatal("allgather must cost time")
	}
	p := P2PTime(50e6, 50, 8e-6)
	if p < 1e-3 || p > 1.2e-3 {
		t.Fatalf("p2p of 50MB over 50GB/s = %v, want ≈1ms", p)
	}
	if P2PTime(0, 50, 8e-6) != 0 {
		t.Fatal("zero bytes p2p should be free")
	}
}

func TestH100Spec(t *testing.T) {
	d := H100()
	if d.PeakTFLOPS != 989 || d.HBMBytes != 80e9 {
		t.Fatalf("H100 spec wrong: %+v", d)
	}
	c := EOS()
	if c.GPUsPerNode != 8 {
		t.Fatalf("EOS nodes have %d GPUs", c.GPUsPerNode)
	}
}

func TestEffectiveBandwidthShare(t *testing.T) {
	if EffectiveBandwidthShare(100, 4) != 25 {
		t.Fatal("bandwidth share wrong")
	}
	if EffectiveBandwidthShare(100, 0) != 100 {
		t.Fatal("degenerate share wrong")
	}
}

func TestRoundup(t *testing.T) {
	if Roundup(5, 4) != 8 || Roundup(8, 4) != 8 || Roundup(1, 0) != 1 {
		t.Fatal("roundup wrong")
	}
}
