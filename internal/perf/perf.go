// Package perf is the hardware cost model: an analytic description of the
// NVIDIA EOS-class cluster the paper evaluates on (DGX H100 nodes, NVLink
// intra-node, InfiniBand NDR inter-node), with achievable-efficiency curves,
// collective and point-to-point cost formulas, dispatch overheads, and the
// HBM capacity model that decides rematerialization. The simulator in
// package sim consumes these numbers; nothing here depends on real hardware.
package perf

import "math"

// DeviceSpec describes one accelerator.
type DeviceSpec struct {
	Name           string
	PeakTFLOPS     float64 // dense BF16 tensor-core peak
	HBMBytes       float64
	NVLinkGBs      float64 // per-GPU NVLink bandwidth (one direction)
	NetGBs         float64 // per-GPU inter-node bandwidth (one direction)
	NVLinkLatency  float64 // seconds per collective hop
	NetLatency     float64 // seconds per message
	DispatchOverhd float64 // seconds per asynchronously dispatched task
}

// H100 returns the DGX H100 device model (EOS, §5).
func H100() DeviceSpec {
	return DeviceSpec{
		Name:           "H100-SXM",
		PeakTFLOPS:     989,
		HBMBytes:       80e9,
		NVLinkGBs:      450,
		NetGBs:         50, // NDR400 per GPU
		NVLinkLatency:  3e-6,
		NetLatency:     8e-6,
		DispatchOverhd: 45e-6,
	}
}

// ClusterSpec describes the machine layout.
type ClusterSpec struct {
	Device      DeviceSpec
	GPUsPerNode int
}

// EOS returns the evaluation cluster: DGX H100 nodes of 8 GPUs.
func EOS() ClusterSpec {
	return ClusterSpec{Device: H100(), GPUsPerNode: 8}
}

// MatmulEfficiency returns the achievable fraction of peak for transformer
// kernels at the given per-GPU matmul "M dimension" (tokens per microbatch
// per model-parallel rank). Small microbatches under-fill tensor cores and
// pay relatively more kernel launch and memory traffic — the driver of the
// MBS separation in Figs. 6–7. The curve saturates around 62% of peak, in
// line with measured end-to-end MFU on H100 BF16 training.
func MatmulEfficiency(tokensPerRank float64) float64 {
	if tokensPerRank <= 0 {
		return 0
	}
	// Calibrated against the paper's Table 1 / Figs. 6-7: ≈57% of peak at
	// 1k tokens/rank, with a mild (~8%) penalty from 1k down to 256
	// tokens/rank matching the MBS 4→1 separation at circular repeat 6.
	const etaMax = 0.605
	const halfPoint = 32.0
	return etaMax * tokensPerRank / (tokensPerRank + halfPoint)
}

// RingAllReduceTime returns the time of a ring all-reduce of `bytes` over n
// participants at bw GB/s per link with the given per-hop latency.
func RingAllReduceTime(bytes float64, n int, bwGBs, latency float64) float64 {
	if n <= 1 || bytes <= 0 {
		return 0
	}
	vol := 2 * float64(n-1) / float64(n) * bytes
	return vol/(bwGBs*1e9) + float64(2*(n-1))*latency
}

// NVSwitchAllReduceTime returns the time of an intra-node all-reduce using
// NVLink SHARP (NVLS) in-switch reduction: each GPU moves ≈1× the payload
// through the switch instead of the ring's 2(n-1)/n.
func NVSwitchAllReduceTime(bytes float64, n int, bwGBs, latency float64) float64 {
	if n <= 1 || bytes <= 0 {
		return 0
	}
	return bytes/(bwGBs*1e9) + 2*latency
}

// RingAllGatherTime returns the time of a ring all-gather producing `bytes`
// total on each rank.
func RingAllGatherTime(bytes float64, n int, bwGBs, latency float64) float64 {
	if n <= 1 || bytes <= 0 {
		return 0
	}
	vol := float64(n-1) / float64(n) * bytes
	return vol/(bwGBs*1e9) + float64(n-1)*latency
}

// Link is a calibrated point-to-point channel model: the (bandwidth,
// latency) pair every collective cost formula consumes. The simulator builds
// Links from DeviceSpec fields; the executable collective engine builds them
// by measuring a real transport (collective.Calibrate), which is what lets
// executed collective wall-times be validated against the same analytic
// formulas the simulator uses.
type Link struct {
	BwGBs   float64 // one-direction bandwidth, GB/s
	Latency float64 // per-hop latency, seconds
}

// AllReduce returns the analytic ring all-reduce time over this link — the
// exact dpSync formula of the simulator's cost model.
func (l Link) AllReduce(bytes float64, n int) float64 {
	return RingAllReduceTime(bytes, n, l.BwGBs, l.Latency)
}

// AllGather returns the analytic ring all-gather time over this link.
func (l Link) AllGather(bytes float64, n int) float64 {
	return RingAllGatherTime(bytes, n, l.BwGBs, l.Latency)
}

// P2P returns the analytic point-to-point transfer time over this link.
func (l Link) P2P(bytes float64) float64 {
	return P2PTime(bytes, l.BwGBs, l.Latency)
}

// P2PTime returns the time to move bytes point-to-point over the network.
func P2PTime(bytes float64, bwGBs, latency float64) float64 {
	if bytes <= 0 {
		return 0
	}
	return bytes/(bwGBs*1e9) + latency
}

// OptimizerBytesPerParam is the training-state footprint per parameter in
// BF16 mixed-precision Adam: bf16 weights (2) + bf16 grads (2) + fp32 master
// weights (4) + fp32 Adam moments (8) = 18 bytes.
const OptimizerBytesPerParam = 18.0

// WeightBytesPerParam is the live forward/backward weight footprint (BF16).
const WeightBytesPerParam = 2.0

// GiB is 2^30 bytes, for reporting.
const GiB = 1024.0 * 1024.0 * 1024.0

// Seconds formats are left to callers; helpers below keep formulas readable.

// RematOverheadFactor is the extra compute fraction full rematerialization
// adds to the backward pass: one extra forward ≈ 1/3 of the fwd+bwd total.
const RematOverheadFactor = 1.0 / 3.0

// EffectiveBandwidthShare divides bandwidth among c concurrent flows.
func EffectiveBandwidthShare(bwGBs float64, flows int) float64 {
	if flows <= 1 {
		return bwGBs
	}
	return bwGBs / float64(flows)
}

// Roundup returns x rounded up to the next multiple of q.
func Roundup(x, q int) int {
	if q <= 0 {
		return x
	}
	return int(math.Ceil(float64(x)/float64(q))) * q
}
