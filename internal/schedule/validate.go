package schedule

import (
	"fmt"
)

// Validate checks the structural invariants every legal gradient-accumulation
// schedule must satisfy:
//
//  1. every (mb, stage) forward and backward task appears exactly once,
//  2. the backward of a stage runs on the same actor as its forward (§3.3's
//     co-location assumption),
//  3. the task lists are executable without deadlock: simulated round-robin
//     execution respecting data dependencies drains all lists.
func (s *Schedule) Validate() error {
	type key struct {
		mb, stage int
		ty        TaskType
	}
	seen := map[key]int{}
	for a, list := range s.Actors {
		for _, e := range list {
			if e.MB < 0 || e.MB >= s.NumMB {
				return fmt.Errorf("schedule %s: actor %d: microbatch %d out of range", s.Name, a, e.MB)
			}
			if e.Stage < 0 || e.Stage >= s.NumStages {
				return fmt.Errorf("schedule %s: actor %d: stage %d out of range", s.Name, a, e.Stage)
			}
			k := key{e.MB, e.Stage, e.Type}
			if prev, dup := seen[k]; dup {
				return fmt.Errorf("schedule %s: task %s on actors %d and %d", s.Name, e, prev, a)
			}
			seen[k] = a
			if s.StageActor[e.Stage] != a {
				return fmt.Errorf("schedule %s: %s on actor %d but stage %d belongs to actor %d", s.Name, e, a, e.Stage, s.StageActor[e.Stage])
			}
		}
	}
	for mb := 0; mb < s.NumMB; mb++ {
		for st := 0; st < s.NumStages; st++ {
			for _, ty := range []TaskType{Forward, Backward} {
				if _, ok := seen[key{mb, st, ty}]; !ok {
					return fmt.Errorf("schedule %s: missing %s for mb %d stage %d", s.Name, ty, mb, st)
				}
			}
		}
	}
	if !s.drains() {
		return fmt.Errorf("schedule %s: task lists deadlock under data dependencies", s.Name)
	}
	return nil
}

// ready reports whether entry e can execute given completed tasks.
func (s *Schedule) ready(e Entry, doneF, doneB map[[2]int]bool) bool {
	switch e.Type {
	case Forward:
		return e.Stage == 0 || doneF[[2]int{e.MB, e.Stage - 1}]
	default:
		if !doneF[[2]int{e.MB, e.Stage}] {
			return false
		}
		return e.Stage == s.NumStages-1 || doneB[[2]int{e.MB, e.Stage + 1}]
	}
}

// drains simulates cooperative execution of the per-actor lists: each round,
// every actor executes its head entry if its dependencies are met. Returns
// false if progress stalls with work remaining (deadlock).
func (s *Schedule) drains() bool {
	heads := make([]int, s.NumActors)
	doneF := map[[2]int]bool{}
	doneB := map[[2]int]bool{}
	for {
		progressed := false
		finished := true
		for a := 0; a < s.NumActors; a++ {
			if heads[a] >= len(s.Actors[a]) {
				continue
			}
			finished = false
			e := s.Actors[a][heads[a]]
			if s.ready(e, doneF, doneB) {
				if e.Type == Forward {
					doneF[[2]int{e.MB, e.Stage}] = true
				} else {
					doneB[[2]int{e.MB, e.Stage}] = true
				}
				heads[a]++
				progressed = true
			}
		}
		if finished {
			return true
		}
		if !progressed {
			return false
		}
	}
}

// PeakInFlight returns, per actor, the maximum number of microbatch forward
// activations held at once: each forward adds one, the matching backward
// releases it. This is the activation-memory proxy behind the GPipe-vs-1F1B
// comparison (§2.2.1, Fig. 10).
func (s *Schedule) PeakInFlight() []int {
	peaks := make([]int, s.NumActors)
	heads := make([]int, s.NumActors)
	live := make([]int, s.NumActors)
	doneF := map[[2]int]bool{}
	doneB := map[[2]int]bool{}
	for {
		progressed := false
		finished := true
		for a := 0; a < s.NumActors; a++ {
			if heads[a] >= len(s.Actors[a]) {
				continue
			}
			finished = false
			e := s.Actors[a][heads[a]]
			if !s.ready(e, doneF, doneB) {
				continue
			}
			if e.Type == Forward {
				doneF[[2]int{e.MB, e.Stage}] = true
				live[a]++
				if live[a] > peaks[a] {
					peaks[a] = live[a]
				}
			} else {
				doneB[[2]int{e.MB, e.Stage}] = true
				live[a]--
			}
			heads[a]++
			progressed = true
		}
		if finished {
			return peaks
		}
		if !progressed {
			return peaks // unreachable for validated schedules
		}
	}
}

// BubbleFraction computes the idle fraction of the pipeline under unit task
// times (forward = 1, backward = bwdRatio), using a list simulation where an
// actor may only run its next task once dependencies complete. It returns
// the fraction of total actor-time spent idle.
func (s *Schedule) BubbleFraction(bwdRatio float64) float64 {
	type doneKey struct {
		mb, stage int
		ty        TaskType
	}
	doneAt := map[doneKey]float64{}
	heads := make([]int, s.NumActors)
	now := make([]float64, s.NumActors)
	busy := make([]float64, s.NumActors)

	depsReadyAt := func(e Entry) (float64, bool) {
		switch e.Type {
		case Forward:
			if e.Stage == 0 {
				return 0, true
			}
			t, ok := doneAt[doneKey{e.MB, e.Stage - 1, Forward}]
			return t, ok
		default:
			tf, okf := doneAt[doneKey{e.MB, e.Stage, Forward}]
			if !okf {
				return 0, false
			}
			if e.Stage == s.NumStages-1 {
				return tf, true
			}
			tb, okb := doneAt[doneKey{e.MB, e.Stage + 1, Backward}]
			if !okb {
				return 0, false
			}
			if tb > tf {
				return tb, true
			}
			return tf, true
		}
	}

	for {
		progressed := false
		finished := true
		for a := 0; a < s.NumActors; a++ {
			if heads[a] >= len(s.Actors[a]) {
				continue
			}
			finished = false
			e := s.Actors[a][heads[a]]
			readyAt, ok := depsReadyAt(e)
			if !ok {
				continue
			}
			start := now[a]
			if readyAt > start {
				start = readyAt
			}
			dur := 1.0
			if e.Type == Backward {
				dur = bwdRatio
			}
			end := start + dur
			doneAt[doneKey{e.MB, e.Stage, e.Type}] = end
			now[a] = end
			busy[a] += dur
			heads[a]++
			progressed = true
		}
		if finished {
			break
		}
		if !progressed {
			return 1 // deadlock: treat as fully idle
		}
	}
	makespan := 0.0
	for a := range now {
		if now[a] > makespan {
			makespan = now[a]
		}
	}
	totalBusy := 0.0
	for _, b := range busy {
		totalBusy += b
	}
	if makespan == 0 {
		return 0
	}
	return 1 - totalBusy/(makespan*float64(s.NumActors))
}
