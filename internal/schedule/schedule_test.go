package schedule

import (
	"testing"
	"testing/quick"
)

func TestGPipeValidates(t *testing.T) {
	for _, cfg := range [][2]int{{2, 4}, {3, 6}, {4, 8}, {8, 32}} {
		s := GPipe(cfg[0], cfg[1])
		if err := s.Validate(); err != nil {
			t.Fatalf("gpipe(%v): %v", cfg, err)
		}
	}
}

func TestOneFOneBValidates(t *testing.T) {
	for _, cfg := range [][2]int{{2, 4}, {3, 6}, {4, 8}, {8, 32}, {4, 2}} {
		s := OneFOneB(cfg[0], cfg[1])
		if err := s.Validate(); err != nil {
			t.Fatalf("1f1b(%v): %v", cfg, err)
		}
	}
}

func TestInterleavedValidates(t *testing.T) {
	for _, cfg := range [][3]int{{2, 4, 2}, {4, 8, 3}, {8, 32, 6}, {4, 8, 1}, {8, 128, 12}} {
		s, err := Interleaved1F1B(cfg[0], cfg[1], cfg[2])
		if err != nil {
			t.Fatalf("interleaved(%v): %v", cfg, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("interleaved(%v): %v", cfg, err)
		}
		if s.NumStages != cfg[0]*cfg[2] {
			t.Fatalf("interleaved(%v): stages=%d", cfg, s.NumStages)
		}
	}
}

func TestInterleavedRejectsBadConfigs(t *testing.T) {
	if _, err := Interleaved1F1B(4, 6, 2); err == nil {
		t.Fatal("want error: microbatches not divisible by actors")
	}
	if _, err := Interleaved1F1B(4, 8, 0); err == nil {
		t.Fatal("want error: repeat 0")
	}
}

// Property: all three generators validate across a sweep of shapes.
func TestGeneratorsValidateProperty(t *testing.T) {
	f := func(seed uint64) bool {
		actors := 2 + int(seed%6)           // 2..7
		mbs := actors * (1 + int(seed/7%8)) // multiple of actors
		repeat := 1 + int(seed/61%4)
		if err := GPipe(actors, mbs).Validate(); err != nil {
			return false
		}
		if err := OneFOneB(actors, mbs).Validate(); err != nil {
			return false
		}
		s, err := Interleaved1F1B(actors, mbs, repeat)
		if err != nil {
			return false
		}
		return s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesDuplicates(t *testing.T) {
	s := GPipe(2, 2)
	s.Actors[0] = append(s.Actors[0], Entry{MB: 0, Stage: 0, Type: Forward})
	if err := s.Validate(); err == nil {
		t.Fatal("want duplicate-task error")
	}
}

func TestValidateCatchesMissing(t *testing.T) {
	s := GPipe(2, 2)
	s.Actors[1] = s.Actors[1][:len(s.Actors[1])-1]
	if err := s.Validate(); err == nil {
		t.Fatal("want missing-task error")
	}
}

func TestValidateCatchesWrongActor(t *testing.T) {
	s := GPipe(2, 2)
	// Move a backward of stage 1 to actor 0: violates co-location.
	var moved Entry
	for i, e := range s.Actors[1] {
		if e.Type == Backward {
			moved = e
			s.Actors[1] = append(s.Actors[1][:i], s.Actors[1][i+1:]...)
			break
		}
	}
	s.Actors[0] = append(s.Actors[0], moved)
	if err := s.Validate(); err == nil {
		t.Fatal("want co-location error")
	}
}

func TestValidateCatchesDeadlock(t *testing.T) {
	// Actor 0 waits for a backward before producing the forward the
	// downstream actor needs -> cycle.
	actors := [][]Entry{
		{{MB: 0, Stage: 0, Type: Backward}, {MB: 0, Stage: 0, Type: Forward}},
		{{MB: 0, Stage: 1, Type: Forward}, {MB: 0, Stage: 1, Type: Backward}},
	}
	s := &Schedule{Name: "deadlock", NumActors: 2, NumStages: 2, NumMB: 1,
		StageActor: []int{0, 1}, Actors: actors}
	if err := s.Validate(); err == nil {
		t.Fatal("want deadlock error")
	}
}

func TestFromListsRoundTrip(t *testing.T) {
	ref := OneFOneB(3, 6)
	s, err := FromLists("custom", ref.NumStages, ref.NumMB, ref.Actors)
	if err != nil {
		t.Fatal(err)
	}
	if s.StageActor[2] != 2 {
		t.Fatalf("stage actor inference wrong: %v", s.StageActor)
	}
}

func TestPeakInFlightGPipeGrowsWithMicrobatches(t *testing.T) {
	// GPipe stage 0 holds all M activations; 1F1B holds at most S.
	actors := 4
	for _, mbs := range []int{4, 8, 16} {
		gp := GPipe(actors, mbs).PeakInFlight()
		if gp[0] != mbs {
			t.Fatalf("gpipe peak on actor 0 = %d, want %d", gp[0], mbs)
		}
		ob := OneFOneB(actors, mbs).PeakInFlight()
		if ob[0] > actors {
			t.Fatalf("1f1b peak on actor 0 = %d, want <= %d", ob[0], actors)
		}
	}
}

func TestPeakInFlight1F1BLessThanGPipe(t *testing.T) {
	f := func(seed uint64) bool {
		actors := 2 + int(seed%6)
		mbs := actors * (2 + int(seed/7%6))
		gp := GPipe(actors, mbs).PeakInFlight()
		ob := OneFOneB(actors, mbs).PeakInFlight()
		for a := range gp {
			if ob[a] > gp[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBubbleFractionShrinksWithMicrobatches(t *testing.T) {
	actors := 4
	prev := 1.0
	for _, mbs := range []int{4, 8, 16, 32} {
		b := OneFOneB(actors, mbs).BubbleFraction(2)
		if b >= prev {
			t.Fatalf("bubble did not shrink: mbs=%d bubble=%v prev=%v", mbs, b, prev)
		}
		prev = b
	}
}

func TestBubbleFractionTheory(t *testing.T) {
	// For 1F1B with uniform fwd=1, bwd=2: bubble ≈ (S-1)/(M + S - 1) per the
	// standard pipeline analysis. Check within tolerance.
	actors, mbs := 4, 16
	b := OneFOneB(actors, mbs).BubbleFraction(2)
	want := float64(actors-1) / float64(mbs+actors-1)
	if diff := b - want; diff < -0.02 || diff > 0.05 {
		t.Fatalf("1f1b bubble %v, theory %v", b, want)
	}
}

func TestInterleavingReducesBubble(t *testing.T) {
	actors, mbs := 4, 8
	base := OneFOneB(actors, mbs).BubbleFraction(2)
	inter, err := Interleaved1F1B(actors, mbs, 4)
	if err != nil {
		t.Fatal(err)
	}
	bi := inter.BubbleFraction(2)
	if bi >= base {
		t.Fatalf("interleaving should reduce bubble: base=%v interleaved=%v", base, bi)
	}
}

func TestGPipeBubbleExceeds1F1BWithMemoryPressure(t *testing.T) {
	// With uniform task times GPipe and 1F1B have the same bubble; the 1F1B
	// advantage comes from memory (rematerialization), covered by the perf
	// model. Here we only check both are finite and in [0, 1).
	for _, s := range []*Schedule{GPipe(4, 8), OneFOneB(4, 8)} {
		b := s.BubbleFraction(2)
		if b < 0 || b >= 1 {
			t.Fatalf("%s bubble %v out of range", s.Name, b)
		}
	}
}

func TestRepeatAccessor(t *testing.T) {
	s, err := Interleaved1F1B(4, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Repeat() != 3 {
		t.Fatalf("repeat=%d", s.Repeat())
	}
}

func TestStageActorRoundRobin(t *testing.T) {
	s, err := Interleaved1F1B(2, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Stages 0,1,2,3 -> actors 0,1,0,1.
	want := []int{0, 1, 0, 1}
	for st, a := range s.StageActor {
		if a != want[st] {
			t.Fatalf("stage %d on actor %d want %d", st, a, want[st])
		}
	}
}
