// Package schedule implements pipeline schedules for gradient accumulation:
// GPipe, 1F1B, and Interleaved 1F1B (circular repeat), plus user-defined
// schedules as per-actor task lists exactly as in §4.2 of the paper. It also
// provides validation (every forward/backward executed once, dependencies
// satisfiable, backward co-located with forward) and analytic properties
// (bubble fraction, peak in-flight activations) used by the simulator and by
// tests.
package schedule

import (
	"fmt"
)

// TaskType distinguishes forward and backward pipeline tasks.
type TaskType int

const (
	Forward TaskType = iota
	Backward
)

func (t TaskType) String() string {
	if t == Forward {
		return "fwd"
	}
	return "bwd"
}

// Entry is one task in an actor's local schedule: run TaskType for stage
// Stage on microbatch MB — the Task(i=..., ty=..., stage=...) triple of §4.2.
type Entry struct {
	MB    int
	Stage int
	Type  TaskType
}

func (e Entry) String() string {
	return fmt.Sprintf("Task(i=%d, ty=%q, stage=%d)", e.MB, e.Type, e.Stage)
}

// Schedule assigns every (microbatch, stage, type) task to an actor and gives
// each actor a total order over its tasks.
type Schedule struct {
	Name       string
	NumActors  int
	NumStages  int // total pipeline stages (NumActors × circular repeat)
	NumMB      int // microbatches per training step
	StageActor []int
	Actors     [][]Entry
}

// Repeat returns the circular repeat degree (stages per actor).
func (s *Schedule) Repeat() int { return s.NumStages / s.NumActors }

// roundRobinStages assigns stage v*A+a to actor a (circular placement).
func roundRobinStages(actors, stages int) []int {
	sa := make([]int, stages)
	for st := range sa {
		sa[st] = st % actors
	}
	return sa
}

// GPipe builds the GPipe schedule (Huang et al. 2019): every actor runs all
// forward microbatches for its stage, then all backward microbatches.
// Memory grows with the number of microbatches.
func GPipe(actors, microbatches int) *Schedule {
	s := &Schedule{
		Name:       "gpipe",
		NumActors:  actors,
		NumStages:  actors,
		NumMB:      microbatches,
		StageActor: roundRobinStages(actors, actors),
	}
	s.Actors = make([][]Entry, actors)
	for a := 0; a < actors; a++ {
		for mb := 0; mb < microbatches; mb++ {
			s.Actors[a] = append(s.Actors[a], Entry{MB: mb, Stage: a, Type: Forward})
		}
		for mb := 0; mb < microbatches; mb++ {
			s.Actors[a] = append(s.Actors[a], Entry{MB: mb, Stage: a, Type: Backward})
		}
	}
	return s
}

// OneFOneB builds the 1F1B schedule (Narayanan et al. 2019): after a warmup
// of (S - a - 1) forwards, actor a alternates one-forward-one-backward,
// bounding in-flight activations by the stage count instead of the
// microbatch count.
func OneFOneB(actors, microbatches int) *Schedule {
	s := &Schedule{
		Name:       "1f1b",
		NumActors:  actors,
		NumStages:  actors,
		NumMB:      microbatches,
		StageActor: roundRobinStages(actors, actors),
	}
	s.Actors = make([][]Entry, actors)
	for a := 0; a < actors; a++ {
		warmup := actors - a - 1
		if warmup > microbatches {
			warmup = microbatches
		}
		var list []Entry
		for mb := 0; mb < warmup; mb++ {
			list = append(list, Entry{MB: mb, Stage: a, Type: Forward})
		}
		nextF, nextB := warmup, 0
		for nextF < microbatches || nextB < microbatches {
			if nextF < microbatches {
				list = append(list, Entry{MB: nextF, Stage: a, Type: Forward})
				nextF++
			}
			if nextB < microbatches {
				list = append(list, Entry{MB: nextB, Stage: a, Type: Backward})
				nextB++
			}
		}
		s.Actors[a] = list
	}
	return s
}

// Interleaved1F1B builds the interleaved 1F1B schedule (Narayanan et al.
// 2021): each actor owns `repeat` stages (the circular repeat / number of
// model chunks), reducing the pipeline bubble at the cost of more, smaller
// tasks and more P2P communication. The ordering follows Megatron-LM's
// virtual-pipeline schedule. The number of microbatches must be a multiple
// of the actor count.
func Interleaved1F1B(actors, microbatches, repeat int) (*Schedule, error) {
	if repeat < 1 {
		return nil, fmt.Errorf("schedule: repeat must be >= 1, got %d", repeat)
	}
	if microbatches%actors != 0 {
		return nil, fmt.Errorf("schedule: interleaved 1F1B needs microbatches (%d) divisible by actors (%d)", microbatches, actors)
	}
	if repeat == 1 {
		s := OneFOneB(actors, microbatches)
		s.Name = "interleaved_1f1b(r=1)"
		return s, nil
	}
	stages := actors * repeat
	s := &Schedule{
		Name:       fmt.Sprintf("interleaved_1f1b(r=%d)", repeat),
		NumActors:  actors,
		NumStages:  stages,
		NumMB:      microbatches,
		StageActor: roundRobinStages(actors, stages),
	}
	s.Actors = make([][]Entry, actors)

	total := microbatches * repeat // virtual iterations per direction
	group := actors * repeat

	// chunk/mb decoding per Megatron's get_model_chunk_id.
	chunkOf := func(it int, forward bool) int {
		inGroup := it % group
		c := inGroup / actors
		if !forward {
			c = repeat - c - 1
		}
		return c
	}
	mbOf := func(it int) int {
		return (it/group)*actors + it%actors
	}

	for a := 0; a < actors; a++ {
		warmup := (actors-a-1)*2 + (repeat-1)*actors
		if warmup > total {
			warmup = total
		}
		var list []Entry
		f, b := 0, 0
		for ; f < warmup; f++ {
			c := chunkOf(f, true)
			list = append(list, Entry{MB: mbOf(f), Stage: c*actors + a, Type: Forward})
		}
		for f < total {
			c := chunkOf(f, true)
			list = append(list, Entry{MB: mbOf(f), Stage: c*actors + a, Type: Forward})
			f++
			cb := chunkOf(b, false)
			list = append(list, Entry{MB: mbOf(b), Stage: cb*actors + a, Type: Backward})
			b++
		}
		for b < total {
			cb := chunkOf(b, false)
			list = append(list, Entry{MB: mbOf(b), Stage: cb*actors + a, Type: Backward})
			b++
		}
		s.Actors[a] = list
	}
	return s, nil
}

// FromLists builds a user-defined schedule from explicit per-actor task
// lists (§4.2). StageActor is inferred from the forward entries.
func FromLists(name string, numStages, numMB int, actors [][]Entry) (*Schedule, error) {
	s := &Schedule{
		Name:      name,
		NumActors: len(actors),
		NumStages: numStages,
		NumMB:     numMB,
		Actors:    actors,
	}
	s.StageActor = make([]int, numStages)
	for i := range s.StageActor {
		s.StageActor[i] = -1
	}
	for a, list := range actors {
		for _, e := range list {
			if e.Stage < 0 || e.Stage >= numStages {
				return nil, fmt.Errorf("schedule: actor %d has out-of-range stage %d", a, e.Stage)
			}
			if e.Type == Forward {
				if cur := s.StageActor[e.Stage]; cur != -1 && cur != a {
					return nil, fmt.Errorf("schedule: stage %d scheduled on actors %d and %d", e.Stage, cur, a)
				}
				s.StageActor[e.Stage] = a
			}
		}
	}
	for st, a := range s.StageActor {
		if a == -1 {
			return nil, fmt.Errorf("schedule: stage %d never scheduled", st)
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
