package stage

import (
	"testing"

	"repro/internal/autodiff"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/tensor"
	"repro/internal/trace"
)

// traceGradMLP builds the differentiated microbatch graph of an S-stage MLP:
// inputs [x, y, w_0..w_{S-1}], outputs [loss, dw_0..dw_{S-1}].
func traceGradMLP(t *testing.T, stages int, width int) *ir.Graph {
	t.Helper()
	g, err := trace.Trace("mlp", func(b *trace.Builder) []*ir.Value {
		x := b.Input("x", 4, width)
		y := b.Input("y", 4, width)
		var ws []*ir.Value
		for i := 0; i < stages; i++ {
			ws = append(ws, b.Input("w", width, width))
		}
		h := x
		for i, w := range ws {
			h = b.ReLU(b.MatMul(h, w))
			if i+1 < len(ws) {
				h = b.PipelineYield(h)
			}
		}
		return []*ir.Value{b.CrossEntropy(h, y)}
	})
	if err != nil {
		t.Fatal(err)
	}
	gg, err := autodiff.ValueAndGrad(g, g.Inputs[2:])
	if err != nil {
		t.Fatal(err)
	}
	return gg
}

func mlpGradInputs(stages, width int, seed uint64) []*tensor.Tensor {
	rng := tensor.NewRNG(seed)
	ins := []*tensor.Tensor{rng.Normal(1, 4, width), rng.OneHotBatch(4, width)}
	for i := 0; i < stages; i++ {
		ins = append(ins, rng.Normal(0.5, width, width))
	}
	return ins
}

// runSplitSequentially executes all segments in dataflow order, wiring cut
// values through an environment, and returns [loss, grads...] with commuted
// partials re-summed.
func runSplitSequentially(t *testing.T, s *Split, inputs []*tensor.Tensor) []*tensor.Tensor {
	t.Helper()
	vals := map[int]*tensor.Tensor{} // original value ID -> tensor
	for _, seg := range s.Segments {
		args := make([]*tensor.Tensor, 0, len(seg.ParamIn)+len(seg.ActIn))
		for _, pi := range seg.ParamIn {
			args = append(args, inputs[pi])
		}
		for _, cv := range seg.ActIn {
			v, ok := vals[cv.ID]
			if !ok {
				t.Fatalf("segment %d needs value %d from segment %d before it was produced", seg.Index, cv.ID, cv.FromSeg)
			}
			args = append(args, v)
		}
		outs, err := interp.Eval(seg.Graph, args)
		if err != nil {
			t.Fatalf("segment %d: %v", seg.Index, err)
		}
		for i, id := range seg.OutIDs {
			vals[id] = outs[i]
		}
	}
	res := []*tensor.Tensor{vals[s.Source.Outputs[0].ID]}
	for _, gr := range s.Grads {
		sum := vals[gr.Partials[0].ValueID]
		for _, p := range gr.Partials[1:] {
			sum = tensor.Add(sum, vals[p.ValueID])
		}
		res = append(res, sum)
	}
	return res
}

func TestSplitSegmentCount(t *testing.T) {
	for _, stages := range []int{1, 2, 3, 4} {
		g := traceGradMLP(t, stages, 6)
		s, err := SplitGraph(g, Options{})
		if err != nil {
			t.Fatalf("stages=%d: %v", stages, err)
		}
		if s.NumStages != stages {
			t.Fatalf("NumStages=%d want %d", s.NumStages, stages)
		}
		if len(s.Segments) != 2*stages-1 {
			t.Fatalf("segments=%d want %d", len(s.Segments), 2*stages-1)
		}
	}
}

func TestSplitMatchesWholeGraph(t *testing.T) {
	for _, stages := range []int{2, 3, 4} {
		g := traceGradMLP(t, stages, 6)
		inputs := mlpGradInputs(stages, 6, uint64(stages))
		want, err := interp.Eval(g, inputs)
		if err != nil {
			t.Fatal(err)
		}
		s, err := SplitGraph(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := runSplitSequentially(t, s, inputs)
		for i := range want {
			if !tensor.AllClose(got[i], want[i], 1e-12, 1e-12) {
				t.Fatalf("stages=%d output %d differs by %v", stages, i, tensor.MaxAbsDiff(got[i], want[i]))
			}
		}
	}
}

func TestSegmentKinds(t *testing.T) {
	g := traceGradMLP(t, 3, 6)
	s, err := SplitGraph(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantKinds := []Kind{Fwd, Fwd, FwdLossBwd, Bwd, Bwd}
	wantStages := []int{0, 1, 2, 1, 0}
	for i, seg := range s.Segments {
		if seg.Kind != wantKinds[i] {
			t.Fatalf("segment %d kind %v want %v", i, seg.Kind, wantKinds[i])
		}
		if seg.Stage != wantStages[i] {
			t.Fatalf("segment %d stage %d want %d", i, seg.Stage, wantStages[i])
		}
	}
}

func TestStageOfSegmentMirrors(t *testing.T) {
	// 4 stages: segments 0..6 map to stages 0,1,2,3,2,1,0.
	want := []int{0, 1, 2, 3, 2, 1, 0}
	for seg, st := range want {
		if got := StageOfSegment(seg, 4); got != st {
			t.Fatalf("StageOfSegment(%d, 4)=%d want %d", seg, got, st)
		}
	}
}

func TestBackwardColocatedWithForward(t *testing.T) {
	// Weights used in forward stage s must have their gradient produced in
	// the segment whose Stage is also s (backward co-location assumption of
	// §3.3).
	g := traceGradMLP(t, 3, 6)
	s, err := SplitGraph(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for gi, gr := range s.Grads {
		if len(gr.Partials) != 1 {
			t.Fatalf("grad %d has %d partials without weight sharing", gi, len(gr.Partials))
		}
		p := gr.Partials[0]
		// Weight i feeds forward stage i (inputs: x, y, w0, w1, w2).
		wantStage := gi
		if got := s.Segments[p.Seg].Stage; got != wantStage {
			t.Fatalf("grad %d produced on stage %d, want %d", gi, got, wantStage)
		}
	}
}

func TestInputPlacement(t *testing.T) {
	g := traceGradMLP(t, 3, 6)
	s, err := SplitGraph(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// x first used by segment 0; y first used at the loss (fused segment 2);
	// w_i first used in forward segment i.
	if s.InputSeg[0] != 0 {
		t.Fatalf("x placed on segment %d", s.InputSeg[0])
	}
	if s.InputSeg[1] != 2 {
		t.Fatalf("y placed on segment %d, want loss segment 2", s.InputSeg[1])
	}
	for i := 0; i < 3; i++ {
		if s.InputSeg[2+i] != i {
			t.Fatalf("w%d placed on segment %d want %d", i, s.InputSeg[2+i], i)
		}
	}
	if s.LossSeg != 2 {
		t.Fatalf("loss segment %d", s.LossSeg)
	}
}

func TestCrossSegmentEdgesAreForward(t *testing.T) {
	g := traceGradMLP(t, 4, 8)
	s, err := SplitGraph(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range s.Segments {
		for _, cv := range seg.ActIn {
			if cv.FromSeg >= seg.Index {
				t.Fatalf("segment %d consumes value from segment %d (not earlier)", seg.Index, cv.FromSeg)
			}
		}
	}
	if len(s.CrossSegmentEdges()) == 0 {
		t.Fatal("expected cross-segment edges")
	}
}

func traceTiedGrad(t *testing.T) *ir.Graph {
	t.Helper()
	// Tied embedding: W used in stage 0 and (transposed) in the last stage.
	g, err := trace.Trace("tied", func(b *trace.Builder) []*ir.Value {
		x := b.Input("x", 4, 6)
		y := b.Input("y", 4, 6)
		w := b.Input("w", 6, 6)
		v := b.Input("v", 6, 6)
		h := b.ReLU(b.MatMul(x, w)) // stage 0: embedding-ish
		h = b.PipelineYield(h)
		h = b.ReLU(b.MatMul(h, v)) // stage 1
		h = b.PipelineYield(h)
		out := b.MatMul(h, b.Transpose(w)) // stage 2: tied projection
		return []*ir.Value{b.CrossEntropy(out, y)}
	})
	if err != nil {
		t.Fatal(err)
	}
	gg, err := autodiff.ValueAndGrad(g, []*ir.Value{g.Inputs[2], g.Inputs[3]})
	if err != nil {
		t.Fatal(err)
	}
	return gg
}

func tiedInputs(seed uint64) []*tensor.Tensor {
	rng := tensor.NewRNG(seed)
	return []*tensor.Tensor{
		rng.Normal(1, 4, 6), rng.OneHotBatch(4, 6),
		rng.Normal(0.5, 6, 6), rng.Normal(0.5, 6, 6),
	}
}

func TestLoopCommutingSplitsTiedGradient(t *testing.T) {
	g := traceTiedGrad(t)
	s, err := SplitGraph(g, Options{CommuteGradAccumulation: true})
	if err != nil {
		t.Fatal(err)
	}
	if s.CommutedAdds == 0 {
		t.Fatal("expected at least one commuted merge add")
	}
	// Gradient of the tied weight must have two partials on different segments.
	tied := s.Grads[0]
	if len(tied.Partials) != 2 {
		t.Fatalf("tied grad partials = %d, want 2", len(tied.Partials))
	}
	if tied.Partials[0].Seg == tied.Partials[1].Seg {
		t.Fatal("partials on the same segment")
	}
	// The untied weight keeps a single partial.
	if len(s.Grads[1].Partials) != 1 {
		t.Fatalf("untied grad partials = %d", len(s.Grads[1].Partials))
	}
}

func TestLoopCommutingPreservesNumerics(t *testing.T) {
	g := traceTiedGrad(t)
	inputs := tiedInputs(11)
	want, err := interp.Eval(g, inputs)
	if err != nil {
		t.Fatal(err)
	}
	for _, commute := range []bool{false, true} {
		s, err := SplitGraph(g.Clone(), Options{CommuteGradAccumulation: commute})
		if err != nil {
			t.Fatalf("commute=%v: %v", commute, err)
		}
		got := runSplitSequentially(t, s, inputs)
		for i := range want {
			if !tensor.AllClose(got[i], want[i], 1e-12, 1e-12) {
				t.Fatalf("commute=%v output %d differs by %v", commute, i, tensor.MaxAbsDiff(got[i], want[i]))
			}
		}
	}
}

func TestLoopCommutingReducesInLoopTraffic(t *testing.T) {
	// Without commuting, the tied-weight merge forces a cross-segment edge
	// carrying a full gradient every microbatch. With commuting, partials
	// stay local; count cross-segment activation bytes touching grads.
	g := traceTiedGrad(t)
	edgeBytes := func(commute bool) int {
		s, err := SplitGraph(g.Clone(), Options{CommuteGradAccumulation: commute})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, cv := range s.CrossSegmentEdges() {
			total += tensor.NumElements(cv.Shape)
		}
		return total
	}
	without := edgeBytes(false)
	with := edgeBytes(true)
	if with >= without {
		t.Fatalf("loop commuting should cut cross-segment traffic: %d -> %d", without, with)
	}
}

func TestSplitRejectsUndifferentiatedGraph(t *testing.T) {
	g, err := trace.Trace("fwdonly", func(b *trace.Builder) []*ir.Value {
		x := b.Input("x", 2, 2)
		h := b.PipelineYield(b.ReLU(x))
		return []*ir.Value{b.Sum(h)}
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SplitGraph(g, Options{}); err == nil {
		t.Fatal("want error for graph without backward yields")
	}
}

func TestSingleStageDegenerate(t *testing.T) {
	g := traceGradMLP(t, 1, 4)
	s, err := SplitGraph(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Segments) != 1 || s.Segments[0].Kind != FwdLossBwd {
		t.Fatalf("degenerate split: %d segments kind %v", len(s.Segments), s.Segments[0].Kind)
	}
	inputs := mlpGradInputs(1, 4, 99)
	want, err := interp.Eval(g, inputs)
	if err != nil {
		t.Fatal(err)
	}
	got := runSplitSequentially(t, s, inputs)
	if !tensor.AllClose(got[0], want[0], 1e-12, 1e-12) {
		t.Fatal("single-stage loss differs")
	}
}

func TestSegmentGraphsVerify(t *testing.T) {
	g := traceGradMLP(t, 4, 6)
	s, err := SplitGraph(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range s.Segments {
		if err := seg.Graph.Verify(); err != nil {
			t.Fatalf("segment %d: %v", seg.Index, err)
		}
		if len(seg.Graph.Eqns) == 0 {
			t.Fatalf("segment %d is empty", seg.Index)
		}
	}
}
