package stage

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// extractSegments builds a standalone subgraph per segment. Segment inputs
// are ordered as: original graph inputs used by the segment (ParamIn), then
// cross-segment activations (ActIn). Segment outputs are every value
// produced in the segment consumed by a later segment, by a commuted partial,
// or by the loop outputs.
func (s *Split) extractSegments() error {
	g := s.Source
	numSegs := 2*s.NumStages - 1
	prod := g.Producer()

	inputPos := make(map[int]int, len(g.Inputs)) // value ID -> input index
	for i, v := range g.Inputs {
		inputPos[v.ID] = i
	}

	// Needed outputs per value: graph outputs (loss) and grad partials.
	needed := map[int]bool{}
	if len(g.Outputs) > 0 {
		needed[g.Outputs[0].ID] = true
	}
	for _, gr := range s.Grads {
		for _, p := range gr.Partials {
			needed[p.ValueID] = true
		}
	}

	segEqns := make([][]int, numSegs)
	for i, sg := range s.EqnSeg {
		if sg < 0 {
			continue // removed by loop commuting
		}
		if sg >= numSegs {
			return fmt.Errorf("stage: eqn %d assigned to segment %d of %d", i, sg, numSegs)
		}
		segEqns[sg] = append(segEqns[sg], i)
	}

	valueByID := map[int]*ir.Value{}
	for _, v := range g.Inputs {
		valueByID[v.ID] = v
	}
	for _, e := range g.Eqns {
		for _, o := range e.Outputs {
			valueByID[o.ID] = o
		}
	}

	s.Segments = make([]*Segment, numSegs)
	for si := 0; si < numSegs; si++ {
		seg := &Segment{
			Index: si,
			Stage: StageOfSegment(si, s.NumStages),
		}
		switch {
		case si == s.NumStages-1:
			seg.Kind = FwdLossBwd
		case si < s.NumStages:
			seg.Kind = Fwd
		default:
			seg.Kind = Bwd
		}

		sub := ir.NewGraph(fmt.Sprintf("%s.seg%d", g.Name, si))
		local := map[int]*ir.Value{} // original value ID -> sub value

		// Collect the segment's external needs first (deterministic order).
		var paramIn []int
		var actIn []CutValue
		seenIn := map[int]bool{}
		for _, ei := range segEqns[si] {
			for _, in := range g.Eqns[ei].Inputs {
				if seenIn[in.ID] {
					continue
				}
				if pi, ok := inputPos[in.ID]; ok {
					seenIn[in.ID] = true
					paramIn = append(paramIn, pi)
					continue
				}
				p := prod[in.ID]
				if p < 0 {
					return fmt.Errorf("stage: value %s has no producer and is not an input", in)
				}
				if s.EqnSeg[p] != si {
					if s.EqnSeg[p] < 0 {
						return fmt.Errorf("stage: segment %d consumes commuted value %s", si, in)
					}
					seenIn[in.ID] = true
					from := s.EqnSeg[p]
					actIn = append(actIn, CutValue{ID: in.ID, FromSeg: from, Shape: in.Shape})
				}
			}
		}
		sort.Ints(paramIn)
		sort.Slice(actIn, func(a, b int) bool { return actIn[a].ID < actIn[b].ID })

		for _, pi := range paramIn {
			orig := g.Inputs[pi]
			local[orig.ID] = sub.AddInput(orig.Shape, orig.Name)
		}
		for _, cv := range actIn {
			orig := valueByID[cv.ID]
			local[orig.ID] = sub.AddInput(orig.Shape, orig.Name)
		}

		// Re-emit the segment's equations.
		for _, ei := range segEqns[si] {
			e := g.Eqns[ei]
			ins := make([]*ir.Value, len(e.Inputs))
			for j, in := range e.Inputs {
				lv, ok := local[in.ID]
				if !ok {
					return fmt.Errorf("stage: segment %d: operand %s unavailable", si, in)
				}
				ins[j] = lv
			}
			out, err := sub.Emit(e.Op, e.Attrs, ins...)
			if err != nil {
				return fmt.Errorf("stage: segment %d re-emit: %w", si, err)
			}
			local[e.Outputs[0].ID] = out
		}

		// Outputs: values produced here needed elsewhere.
		usedLater := map[int]bool{}
		for sj := si + 1; sj < numSegs; sj++ {
			for _, ej := range segEqns[sj] {
				for _, in := range g.Eqns[ej].Inputs {
					p, ok := prod[in.ID]
					if ok && p >= 0 && s.EqnSeg[p] == si {
						usedLater[in.ID] = true
					}
				}
			}
		}
		var outIDs []int
		for id := range usedLater {
			outIDs = append(outIDs, id)
		}
		for id := range needed {
			p, ok := prod[id]
			if ok && p >= 0 && s.EqnSeg[p] == si && !usedLater[id] {
				outIDs = append(outIDs, id)
			}
		}
		sort.Ints(outIDs)
		outs := make([]*ir.Value, len(outIDs))
		for i, id := range outIDs {
			lv, ok := local[id]
			if !ok {
				return fmt.Errorf("stage: segment %d: output value %d not computed", si, id)
			}
			outs[i] = lv
		}
		sub.SetOutputs(outs...)
		if err := sub.Verify(); err != nil {
			return fmt.Errorf("stage: segment %d invalid: %w", si, err)
		}
		seg.Graph = sub
		seg.ParamIn = paramIn
		seg.ActIn = actIn
		seg.OutIDs = outIDs
		s.Segments[si] = seg
	}
	return nil
}

// inferInputPlacement assigns each original graph input to the segment of its
// first use (§3.3: inputs are pinned where the pipeline first needs them; the
// driver materializes them there before the loop).
func (s *Split) inferInputPlacement() {
	s.InputSeg = make([]int, len(s.Source.Inputs))
	for i := range s.InputSeg {
		s.InputSeg[i] = -1
	}
	for _, seg := range s.Segments {
		for _, pi := range seg.ParamIn {
			if s.InputSeg[pi] == -1 || seg.Index < s.InputSeg[pi] {
				s.InputSeg[pi] = seg.Index
			}
		}
	}
	// Inputs never used anywhere default to segment 0.
	for i, sg := range s.InputSeg {
		if sg == -1 {
			s.InputSeg[i] = 0
		}
	}
}

// SegmentOfGrad returns the segment that produces the given partial.
func (s *Split) SegmentOfGrad(p GradPartial) *Segment { return s.Segments[p.Seg] }

// CrossSegmentEdges enumerates every (producer segment, consumer segment,
// value) activation edge — the communication JaxPP must infer.
func (s *Split) CrossSegmentEdges() []CutValue {
	var edges []CutValue
	seen := map[[2]int]bool{}
	for _, seg := range s.Segments {
		for _, cv := range seg.ActIn {
			key := [2]int{cv.ID, seg.Index}
			if seen[key] {
				continue
			}
			seen[key] = true
			edges = append(edges, cv)
		}
	}
	return edges
}

// OutPos returns the position of original value id in segment si's outputs,
// or -1.
func (s *Split) OutPos(si, id int) int {
	for i, oid := range s.Segments[si].OutIDs {
		if oid == id {
			return i
		}
	}
	return -1
}
