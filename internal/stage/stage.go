// Package stage implements the JaxPP compiler front half: splitting a traced
// and differentiated microbatch graph into pipeline-stage segments at the
// pipeline_yield boundaries, inferring the placement of computations and
// loop inputs/outputs (§3.3 of the paper), and the loop-commuting rewrite for
// shared-weight gradient accumulation (§3.4).
package stage

import (
	"fmt"

	"repro/internal/ir"
)

// Kind classifies a segment.
type Kind int

const (
	// Fwd is a pure forward stage segment.
	Fwd Kind = iota
	// FwdLossBwd is the fused last-stage segment: forward of the final stage,
	// the loss, and the backward of the final stage (the "f3b3" task in the
	// paper's Fig. 3).
	FwdLossBwd
	// Bwd is a pure backward stage segment.
	Bwd
)

func (k Kind) String() string {
	switch k {
	case Fwd:
		return "fwd"
	case FwdLossBwd:
		return "fwd_loss_bwd"
	case Bwd:
		return "bwd"
	}
	return "?"
}

// CutValue is a value crossing a segment boundary.
type CutValue struct {
	ID      int   // value ID in the original graph
	FromSeg int   // producing segment
	Shape   []int // element shape (for buffer sizing)
}

// Segment is one schedulable unit of the microbatch computation.
type Segment struct {
	Index int  // 0..2S-2 in dataflow order
	Stage int  // forward stage this segment belongs to (mirrored for bwd)
	Kind  Kind // fwd / fused / bwd

	Graph *ir.Graph // extracted subgraph

	// ParamIn lists original graph-input positions consumed by this segment,
	// in the order they appear as the leading inputs of Graph.
	ParamIn []int
	// ActIn lists cross-segment activation inputs, in the order they appear
	// as the trailing inputs of Graph.
	ActIn []CutValue
	// OutIDs lists the original value IDs of Graph's outputs: every value
	// produced here that a later segment or the loop output consumes.
	OutIDs []int
}

// GradPartial is one per-stage contribution to a (possibly shared-weight)
// gradient after loop commuting.
type GradPartial struct {
	ValueID int // value ID of the partial inside the microbatch graph
	Seg     int // segment producing it
}

// GradOutput describes one gradient output of the microbatch graph. After
// loop commuting a tied-weight gradient has several partials, summed once
// after the accumulation loop instead of per microbatch.
type GradOutput struct {
	OutputIdx int // index into the original graph outputs
	Partials  []GradPartial
}

// Split is the result of stage splitting a microbatch grad graph.
type Split struct {
	Source    *ir.Graph
	NumStages int
	Segments  []*Segment

	// EqnSeg[i] is the segment index assigned to Source.Eqns[i]; -1 marks
	// equations removed by loop commuting.
	EqnSeg []int

	// InputSeg[i] is the segment whose actor input i is placed on (first
	// use), per the placement-inference heuristic of §3.3.
	InputSeg []int

	// LossSeg is the segment producing output 0 (the loss).
	LossSeg int

	// Grads describes outputs 1..N (the gradients), including commuted
	// partials for shared weights.
	Grads []GradOutput

	// CommutedAdds counts merge additions moved out of the loop by §3.4.
	CommutedAdds int
}

// StageOfSegment maps a segment index to its pipeline stage given S forward
// stages: segments 0..S-1 are forward (the last fused with loss+backward),
// segments S..2S-2 are backward stages S-2..0.
func StageOfSegment(seg, numStages int) int {
	if seg < numStages {
		return seg
	}
	return 2*numStages - 2 - seg
}

// Options configures the splitter.
type Options struct {
	// CommuteGradAccumulation enables the §3.4 loop-commuting rewrite.
	CommuteGradAccumulation bool
}

// SplitGraph splits a differentiated microbatch graph (outputs: loss followed
// by gradients) into pipeline segments.
func SplitGraph(g *ir.Graph, opts Options) (*Split, error) {
	if err := g.Verify(); err != nil {
		return nil, fmt.Errorf("stage: input graph invalid: %w", err)
	}
	fwdY, bwdY := g.YieldBoundaries()
	if len(fwdY) != len(bwdY) {
		return nil, fmt.Errorf("stage: %d forward yields but %d backward yields; differentiate the graph first", len(fwdY), len(bwdY))
	}
	numStages := len(fwdY) + 1
	numSegs := 2*numStages - 1

	// Boundaries in equation order: forward yields (ascending) then backward
	// yields (autodiff emits them in reverse stage order).
	boundaries := append(append([]int{}, fwdY...), bwdY...)
	for i := 1; i < len(boundaries); i++ {
		if boundaries[i] <= boundaries[i-1] {
			return nil, fmt.Errorf("stage: yield boundaries out of order")
		}
	}

	merges := findMergeAdds(g)
	seg := assignSegments(g, boundaries, numSegs, merges)

	s := &Split{Source: g, NumStages: numStages, EqnSeg: seg}

	if err := checkSegConsistency(g, seg); err != nil {
		return nil, err
	}

	// Loop commuting (§3.4): replace merged tied-weight gradients with
	// per-stage partials.
	prod := g.Producer()
	s.Grads = make([]GradOutput, 0, len(g.Outputs)-1)
	commuted := map[int]bool{} // eqn index -> removed merge add
	for oi := 1; oi < len(g.Outputs); oi++ {
		out := g.Outputs[oi]
		var partials []GradPartial
		if opts.CommuteGradAccumulation {
			partials = commutePartials(g, prod, seg, out, commuted)
		} else {
			partials = []GradPartial{{ValueID: out.ID, Seg: valueSeg(prod, seg, out.ID)}}
		}
		s.Grads = append(s.Grads, GradOutput{OutputIdx: oi, Partials: partials})
	}
	s.CommutedAdds = len(commuted)
	for ei := range commuted {
		s.EqnSeg[ei] = -1
	}
	if len(g.Outputs) > 0 {
		s.LossSeg = valueSeg(prod, s.EqnSeg, g.Outputs[0].ID)
	}

	if err := s.extractSegments(); err != nil {
		return nil, err
	}
	s.inferInputPlacement()
	return s, nil
}

// findMergeAdds structurally identifies gradient-merge additions: adds whose
// results feed nothing but graph outputs or other merge adds. These are the
// "gradient merging operations that do not belong to any function" of §3.2;
// the placement pass must not pull partial-gradient producers toward them.
func findMergeAdds(g *ir.Graph) map[int]bool {
	prod := g.Producer()
	uses := g.Uses()
	merge := map[int]bool{}
	var visit func(vid int)
	visit = func(vid int) {
		p, ok := prod[vid]
		if !ok || p < 0 {
			return
		}
		e := g.Eqns[p]
		if e.Op != ir.OpAdd || len(e.Inputs) != 2 {
			return
		}
		for _, u := range uses[vid] {
			if u == len(g.Eqns) {
				continue
			}
			if !merge[u] {
				return
			}
		}
		merge[p] = true
		visit(e.Inputs[0].ID)
		visit(e.Inputs[1].ID)
	}
	for oi := 1; oi < len(g.Outputs); oi++ {
		visit(g.Outputs[oi].ID)
	}
	return merge
}

// assignSegments implements the placement heuristic of §3.3: each yield's
// backward slice claims its unclaimed ancestors; remaining equations are
// placed as close to their uses as dependencies allow. Consumers in merges
// are ignored as placement constraints so partial gradients stay on the
// stage that produced them.
func assignSegments(g *ir.Graph, boundaries []int, numSegs int, merges map[int]bool) []int {
	n := len(g.Eqns)
	seg := make([]int, n)
	for i := range seg {
		seg[i] = -1
	}
	prod := g.Producer()

	// Pass 1: for each boundary j (segment j), claim unclaimed ancestors.
	for j, bIdx := range boundaries {
		var stack []int
		stack = append(stack, bIdx)
		for len(stack) > 0 {
			ei := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seg[ei] != -1 {
				continue
			}
			seg[ei] = j
			for _, in := range g.Eqns[ei].Inputs {
				p := prod[in.ID]
				if p >= 0 && seg[p] == -1 {
					stack = append(stack, p)
				}
			}
		}
	}

	// Pass 2 (forward): the earliest segment each equation's operands permit
	// (yield operands become available one segment later). For unclaimed
	// producers the bound chains through their own earliest segment, which is
	// already computed because equations are in definition order.
	early := make([]int, n)
	avail := func(vid int) int {
		p := prod[vid]
		if p < 0 {
			return 0
		}
		sp := seg[p]
		if sp < 0 {
			sp = early[p]
		}
		if g.Eqns[p].Op == ir.OpYield {
			return sp + 1
		}
		return sp
	}
	for i, e := range g.Eqns {
		lo := 0
		for _, in := range e.Inputs {
			if a := avail(in.ID); a > lo {
				lo = a
			}
		}
		if seg[i] >= 0 {
			early[i] = seg[i]
		} else {
			early[i] = lo
		}
	}

	// Pass 3 (reverse): place unclaimed equations as late as their consumers
	// allow ("scheduled closer to its use, to minimize communication").
	// Equations consumed only by the loop outputs (gradient contractions, the
	// loss itself) stay where their operands live: gradients accumulate on
	// the actor that produced them.
	uses := g.Uses()
	for i := n - 1; i >= 0; i-- {
		if seg[i] != -1 {
			continue
		}
		late := -1
		for _, o := range g.Eqns[i].Outputs {
			for _, u := range uses[o.ID] {
				if u == n || merges[u] {
					continue // graph output / merge add: no upper constraint
				}
				us := seg[u]
				if us == -1 {
					us = early[u] // consumer itself unassigned yet: bound by its earliest
				}
				if late == -1 || us < late {
					late = us
				}
			}
		}
		if late == -1 || late < early[i] {
			late = early[i]
		}
		seg[i] = late
	}
	return seg
}

// checkSegConsistency verifies that every equation's operands are available
// at or before its segment.
func checkSegConsistency(g *ir.Graph, seg []int) error {
	prod := g.Producer()
	for i, e := range g.Eqns {
		for _, in := range e.Inputs {
			p := prod[in.ID]
			if p < 0 {
				continue
			}
			a := seg[p]
			if g.Eqns[p].Op == ir.OpYield {
				a++
			}
			if a > seg[i] {
				return fmt.Errorf("stage: eqn %d (%s, seg %d) consumes %s available only at seg %d", i, e.Op, seg[i], in, a)
			}
		}
	}
	return nil
}

func valueSeg(prod map[int]int, seg []int, vid int) int {
	p, ok := prod[vid]
	if !ok || p < 0 {
		return 0
	}
	if seg[p] < 0 {
		return 0
	}
	return seg[p]
}

// commutePartials walks the gradient-merge addition tree above a gradient
// output. An addition whose operands come from different segments is a
// cross-stage merge: it is removed from the loop body and its leaves become
// separate loop-carried partial gradients (§3.4).
func commutePartials(g *ir.Graph, prod map[int]int, seg []int, out *ir.Value, commuted map[int]bool) []GradPartial {
	uses := g.Uses()
	var leaves []GradPartial
	var walk func(vid int) // appends leaves for subtree at vid
	walk = func(vid int) {
		p := prod[vid]
		if p >= 0 && g.Eqns[p].Op == ir.OpAdd && len(g.Eqns[p].Inputs) == 2 {
			a, b := g.Eqns[p].Inputs[0], g.Eqns[p].Inputs[1]
			sa := valueSeg(prod, seg, a.ID)
			sb := valueSeg(prod, seg, b.ID)
			// Only commute cross-segment merges whose result feeds nothing
			// except further merges / the graph output.
			if sa != sb && soleUseIsMergeOrOutput(g, uses, vid, commuted) {
				commuted[p] = true
				walk(a.ID)
				walk(b.ID)
				return
			}
		}
		leaves = append(leaves, GradPartial{ValueID: vid, Seg: valueSeg(prod, seg, vid)})
	}
	walk(out.ID)
	return leaves
}

func soleUseIsMergeOrOutput(g *ir.Graph, uses map[int][]int, vid int, commuted map[int]bool) bool {
	for _, u := range uses[vid] {
		if u == len(g.Eqns) {
			continue // graph output
		}
		// The walk is top-down, so a use inside the merge tree has already
		// been commuted. Any other use means the merged value is genuinely
		// needed inside the loop and must not be removed.
		if !commuted[u] {
			return false
		}
	}
	return true
}
