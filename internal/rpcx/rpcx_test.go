package rpcx

import (
	"sync"
	"testing"

	"repro/internal/tensor"
)

func TestSendRecvRoundTrip(t *testing.T) {
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	want := tensor.MustFromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	done := make(chan *tensor.Tensor)
	go func() {
		got, err := tr.Recv(1, 0, 7)
		if err != nil {
			t.Error(err)
		}
		done <- got
	}()
	tr.Send(0, 1, 7, want)
	got := <-done
	if !tensor.AllClose(got, want, 0, 0) {
		t.Fatalf("payload mismatch: %v", got)
	}
	n, elems := tr.SendCount()
	if n != 1 || elems != 6 {
		t.Fatalf("count=%d elems=%d", n, elems)
	}
}

func TestOutOfOrderTags(t *testing.T) {
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	a := tensor.MustFromSlice([]float64{1}, 1)
	b := tensor.MustFromSlice([]float64{2}, 1)
	tr.Send(0, 1, 100, a)
	tr.Send(0, 1, 200, b)
	// Receive in reverse tag order: the demux must match by tag.
	got2, err := tr.Recv(1, 0, 200)
	if err != nil {
		t.Fatal(err)
	}
	got1, err := tr.Recv(1, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got1.Data()[0] != 1 || got2.Data()[0] != 2 {
		t.Fatalf("tag matching broken: %v %v", got1, got2)
	}
}

func TestConcurrentPairs(t *testing.T) {
	const actors = 4
	tr, err := NewTCPTransport(actors)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	var wg sync.WaitGroup
	for from := 0; from < actors; from++ {
		for to := 0; to < actors; to++ {
			if from == to {
				continue
			}
			wg.Add(2)
			tag := from*100 + to
			payload := tensor.Scalar(float64(tag))
			go func(from, to, tag int) {
				defer wg.Done()
				tr.Send(from, to, tag, payload)
			}(from, to, tag)
			go func(from, to, tag int) {
				defer wg.Done()
				got, err := tr.Recv(to, from, tag)
				if err != nil {
					t.Error(err)
					return
				}
				if got.Data()[0] != float64(tag) {
					t.Errorf("pair %d->%d tag %d got %v", from, to, tag, got.Data()[0])
				}
			}(from, to, tag)
		}
	}
	wg.Wait()
}

func TestAddrAssigned(t *testing.T) {
	tr, err := NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if tr.Addr(0) == "" || tr.Addr(1) == "" || tr.Addr(0) == tr.Addr(1) {
		t.Fatalf("bad addrs %q %q", tr.Addr(0), tr.Addr(1))
	}
}
