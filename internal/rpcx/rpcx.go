// Package rpcx provides a TCP transport for the MPMD runtime: actors
// exchange tagged tensors over real localhost sockets with gob encoding,
// standing in for the Ray RPC + NCCL P2P layer of the paper. One persistent
// connection per (sender, receiver) pair carries all tagged messages; a
// per-receiver demultiplexer matches them to blocking receives.
package rpcx

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"repro/internal/tensor"
)

// message is the wire format of one P2P transfer.
type message struct {
	From  int
	Tag   int
	Shape []int
	Data  []float64
}

type inboxKey struct{ to, from, tag int }

// TCPTransport implements runtime.Transport over localhost TCP.
type TCPTransport struct {
	mu        sync.Mutex
	addrs     map[int]string
	listeners []net.Listener
	encoders  map[[2]int]*sendConn // (from, to) -> connection
	conns     []net.Conn
	inbox     map[inboxKey]chan *tensor.Tensor
	closed    bool

	sent      int
	sentElems int64
}

// NewTCPTransport provisions one listener per actor on 127.0.0.1.
func NewTCPTransport(actors int) (*TCPTransport, error) {
	t := &TCPTransport{
		addrs:    map[int]string{},
		encoders: map[[2]int]*sendConn{},
		inbox:    map[inboxKey]chan *tensor.Tensor{},
	}
	for id := 0; id < actors; id++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("rpcx: listen for actor %d: %w", id, err)
		}
		t.listeners = append(t.listeners, ln)
		t.addrs[id] = ln.Addr().String()
		go t.acceptLoop(id, ln)
	}
	return t, nil
}

// Addr returns the listen address of an actor (for diagnostics).
func (t *TCPTransport) Addr(actor int) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.addrs[actor]
}

func (t *TCPTransport) acceptLoop(id int, ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.mu.Lock()
		t.conns = append(t.conns, conn)
		t.mu.Unlock()
		go t.readLoop(id, conn)
	}
}

func (t *TCPTransport) readLoop(to int, conn net.Conn) {
	dec := gob.NewDecoder(conn)
	for {
		var m message
		if err := dec.Decode(&m); err != nil {
			return
		}
		ten, err := tensor.FromSlice(m.Data, m.Shape...)
		if err != nil {
			return
		}
		t.ch(inboxKey{to, m.From, m.Tag}) <- ten
	}
}

func (t *TCPTransport) ch(k inboxKey) chan *tensor.Tensor {
	t.mu.Lock()
	defer t.mu.Unlock()
	c, ok := t.inbox[k]
	if !ok {
		c = make(chan *tensor.Tensor, 1)
		t.inbox[k] = c
	}
	return c
}

// sendConn is one persistent outgoing connection; gob encoders are not safe
// for concurrent use, so each carries its own mutex (the runtime's
// asynchronous send goroutines may overlap on the same pair).
type sendConn struct {
	mu  sync.Mutex
	enc *gob.Encoder
}

// Send implements runtime.Transport: asynchronous w.r.t. the receiver (the
// kernel buffers and the buffered inbox absorb the payload).
func (t *TCPTransport) Send(from, to, tag int, ten *tensor.Tensor) {
	t.mu.Lock()
	sc, ok := t.encoders[[2]int{from, to}]
	if !ok {
		addr := t.addrs[to]
		t.mu.Unlock()
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			panic(fmt.Sprintf("rpcx: dial %d->%d: %v", from, to, err))
		}
		t.mu.Lock()
		if existing, raced := t.encoders[[2]int{from, to}]; raced {
			conn.Close()
			sc = existing
		} else {
			sc = &sendConn{enc: gob.NewEncoder(conn)}
			t.encoders[[2]int{from, to}] = sc
			t.conns = append(t.conns, conn)
		}
	}
	t.sent++
	t.sentElems += int64(ten.Size())
	t.mu.Unlock()
	sc.mu.Lock()
	defer sc.mu.Unlock()
	m := message{From: from, Tag: tag, Shape: ten.Shape(), Data: ten.Data()}
	if err := sc.enc.Encode(&m); err != nil {
		panic(fmt.Sprintf("rpcx: encode from %d tag %d: %v", from, tag, err))
	}
}

// Recv implements runtime.Transport: blocks until the tagged message lands.
func (t *TCPTransport) Recv(to, from, tag int) (*tensor.Tensor, error) {
	k := inboxKey{to, from, tag}
	ten := <-t.ch(k)
	t.mu.Lock()
	delete(t.inbox, k)
	t.mu.Unlock()
	return ten, nil
}

// SendCount reports messages and elements sent (for tests).
func (t *TCPTransport) SendCount() (int, int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sent, t.sentElems
}

// Close shuts down listeners and connections.
func (t *TCPTransport) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return
	}
	t.closed = true
	for _, ln := range t.listeners {
		ln.Close()
	}
	for _, c := range t.conns {
		c.Close()
	}
}
