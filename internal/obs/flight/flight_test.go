package flight

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func TestRecordReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{WallNs: 100, Kind: "rendezvous", Rank: -1, Step: -1, Detail: "attempt 1 world 4"},
		{WallNs: 200, Kind: "poison", Rank: 2, Step: 17, Detail: "peer 3 gone"},
		{WallNs: 300, Kind: "ckpt_commit", Rank: 0, Step: 20, Detail: ""},
	}
	for _, ev := range want {
		if err := r.Record(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestRotationBoundsDisk(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, Options{SegmentBytes: 256, MaxSegments: 3, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		if err := r.Record(Event{WallNs: int64(i), Kind: "tick", Rank: i, Step: i, Detail: "padding-padding-padding"}); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	seqs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) > 3 {
		t.Fatalf("%d segments on disk, want <= 3", len(seqs))
	}
	evs, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) == 0 {
		t.Fatal("no events survived rotation")
	}
	// The newest events must be the ones retained, in order.
	last := evs[len(evs)-1]
	if last.Rank != 199 {
		t.Fatalf("newest surviving event rank = %d, want 199", last.Rank)
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Rank != evs[i-1].Rank+1 {
			t.Fatalf("retained events not consecutive at %d: %d then %d", i, evs[i-1].Rank, evs[i].Rank)
		}
	}
}

func TestReplayTornTail(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := r.Record(Event{WallNs: int64(i), Kind: "ev", Rank: i, Detail: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	r.Close()
	seqs, _ := listSegments(dir)
	path := filepath.Join(dir, segName(seqs[len(seqs)-1]))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate SIGKILL mid-write: chop the file mid-way through the last frame.
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	evs, err := Replay(dir)
	if err != nil {
		t.Fatalf("replay of torn segment errored: %v", err)
	}
	if len(evs) != 4 {
		t.Fatalf("replayed %d events from torn segment, want 4", len(evs))
	}

	// Now corrupt a byte inside the (new) last frame's payload: CRC must stop
	// the replay at the corruption, keeping everything before it.
	data, _ = os.ReadFile(path)
	flip := append([]byte(nil), data...)
	// Find the start of the last intact frame: walk frames forward.
	off := 0
	lastStart := 0
	for off+4 <= len(flip) {
		inner := int(binary.LittleEndian.Uint32(flip[off:]))
		if inner <= 0 || off+4+inner > len(flip) {
			break
		}
		lastStart = off
		off += 4 + inner
	}
	flip[lastStart+10] ^= 0xFF
	if err := os.WriteFile(path, flip, 0o644); err != nil {
		t.Fatal(err)
	}
	evs, err = Replay(dir)
	if err != nil {
		t.Fatalf("replay of corrupt segment errored: %v", err)
	}
	if len(evs) != 3 {
		t.Fatalf("replayed %d events past corruption, want 3", len(evs))
	}
}

func TestReopenContinuesNumbering(t *testing.T) {
	dir := t.TempDir()
	r, err := Open(dir, Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	r.Record(Event{Kind: "first-life"})
	r.Close()

	r2, err := Open(dir, Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	r2.Record(Event{Kind: "second-life"})
	r2.Close()

	evs, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Kind != "first-life" || evs[1].Kind != "second-life" {
		t.Fatalf("reopen lost or reordered events: %+v", evs)
	}
	seqs, _ := listSegments(dir)
	if len(seqs) != 2 {
		t.Fatalf("%d segments after reopen, want 2 (no overwrite)", len(seqs))
	}
}

func TestGlobalLog(t *testing.T) {
	// No recorder installed: must be a silent no-op.
	Install(nil)
	Log("noop", 0, 0, "nothing listening")

	dir := t.TempDir()
	r, err := Open(dir, Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	prev := Install(r)
	defer Install(prev)
	Log("hello", 1, 2, "world")
	r.Close()
	Install(nil)

	evs, err := Replay(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Kind != "hello" || evs[0].Rank != 1 || evs[0].Step != 2 || evs[0].Detail != "world" {
		t.Fatalf("global log round trip: %+v", evs)
	}
	if evs[0].WallNs == 0 {
		t.Fatal("Log did not stamp wall time")
	}
}

func TestReplayEmptyAndMissingDir(t *testing.T) {
	dir := t.TempDir()
	evs, err := Replay(dir)
	if err != nil || len(evs) != 0 {
		t.Fatalf("empty dir: %d events, err %v", len(evs), err)
	}
	if _, err := Replay(filepath.Join(dir, "nope")); err == nil {
		t.Fatal("missing dir replayed without error")
	}
}
