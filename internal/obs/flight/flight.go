// Package flight is a crash-surviving flight recorder: a bounded on-disk ring
// of CRC-framed structured events (rendezvous transitions, checkpoint commits,
// transport poisonings, straggler flags) that replays a post-mortem timeline
// even when the process was SIGKILL'd mid-write. Records are fsync'd by
// default, segments rotate at a byte budget with the oldest deleted, and
// Replay tolerates a torn tail — it reads each segment up to the first frame
// that fails its length or CRC check and keeps whatever came before.
//
// The package imports only the standard library so every layer (obs, dist,
// distrun, the binaries) can log to the process-global recorder without an
// import cycle.
package flight

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one flight-recorder record. Kind is a short stable identifier
// ("rendezvous", "poison", "ckpt_commit", "straggler", ...); Detail is free
// text; Rank and Step are -1 when not meaningful.
type Event struct {
	WallNs int64  `json:"wall_ns"`
	Kind   string `json:"kind"`
	Rank   int    `json:"rank"`
	Step   int    `json:"step"`
	Detail string `json:"detail"`
}

// Frame layout (little-endian), designed so a torn tail is detectable:
//
//	u32 frameLen (bytes after this field, including CRC)
//	u8  magic (0xF1)   u8 version (1)
//	i64 wallNs   i32 rank   i32 step
//	u16 kindLen   kind bytes   u16 detailLen   detail bytes
//	u32 CRC32 (IEEE) over everything after frameLen
const (
	frameMagic   = 0xF1
	frameVersion = 1
	frameFixed   = 1 + 1 + 8 + 4 + 4 + 2 + 2 // magic..detailLen, sans strings+CRC
	maxFrameLen  = 1 << 20                   // sanity bound when replaying
)

// Options tunes a Recorder. Zero values take the defaults noted per field.
type Options struct {
	// SegmentBytes rotates to a new segment once the current one exceeds
	// this size (default 256 KiB).
	SegmentBytes int64
	// MaxSegments bounds the on-disk ring; the oldest segment is deleted
	// when a rotation would exceed it (default 8).
	MaxSegments int
	// Fsync syncs after every record (default true — the recorder exists
	// for crashes; set NoFsync to trade durability for speed in tests).
	NoFsync bool
}

// Recorder appends events to a directory of numbered segment files
// (flight-000042.bin). Safe for concurrent use.
type Recorder struct {
	dir  string
	opt  Options
	mu   sync.Mutex
	f    *os.File
	seq  int   // index of the open segment
	size int64 // bytes written to the open segment
	buf  []byte
}

func segName(seq int) string { return fmt.Sprintf("flight-%06d.bin", seq) }

func segSeq(name string) (int, bool) {
	if !strings.HasPrefix(name, "flight-") || !strings.HasSuffix(name, ".bin") {
		return 0, false
	}
	n, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "flight-"), ".bin"))
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

func listSegments(dir string) ([]int, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []int
	for _, e := range ents {
		if s, ok := segSeq(e.Name()); ok && !e.IsDir() {
			seqs = append(seqs, s)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

// Open creates (or continues) a recorder in dir. An existing ring is
// continued after its highest segment index, so a restarted process never
// overwrites the evidence of the run that crashed.
func Open(dir string, opt Options) (*Recorder, error) {
	if opt.SegmentBytes <= 0 {
		opt.SegmentBytes = 256 << 10
	}
	if opt.MaxSegments <= 0 {
		opt.MaxSegments = 8
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("flight: %w", err)
	}
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("flight: %w", err)
	}
	seq := 0
	if len(seqs) > 0 {
		seq = seqs[len(seqs)-1] + 1
	}
	r := &Recorder{dir: dir, opt: opt, seq: seq - 1}
	if err := r.rotateLocked(); err != nil {
		return nil, err
	}
	return r, nil
}

// rotateLocked opens the next segment and prunes the ring. Caller holds mu
// (or is Open, pre-publication).
func (r *Recorder) rotateLocked() error {
	if r.f != nil {
		r.f.Close()
	}
	r.seq++
	f, err := os.OpenFile(filepath.Join(r.dir, segName(r.seq)), os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	r.f, r.size = f, 0
	if seqs, err := listSegments(r.dir); err == nil && len(seqs) > r.opt.MaxSegments {
		for _, s := range seqs[:len(seqs)-r.opt.MaxSegments] {
			os.Remove(filepath.Join(r.dir, segName(s)))
		}
	}
	return nil
}

// Record appends one event, fsyncing unless Options.NoFsync. Errors are
// returned but safe to ignore: the recorder is diagnostics, never control
// flow.
func (r *Recorder) Record(ev Event) error {
	if len(ev.Kind) > 1<<15 {
		ev.Kind = ev.Kind[:1<<15]
	}
	if len(ev.Detail) > 1<<15 {
		ev.Detail = ev.Detail[:1<<15]
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return fmt.Errorf("flight: recorder closed")
	}
	b := r.buf[:0]
	inner := frameFixed + len(ev.Kind) + len(ev.Detail) + 4
	b = binary.LittleEndian.AppendUint32(b, uint32(inner))
	b = append(b, frameMagic, frameVersion)
	b = binary.LittleEndian.AppendUint64(b, uint64(ev.WallNs))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(ev.Rank)))
	b = binary.LittleEndian.AppendUint32(b, uint32(int32(ev.Step)))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(ev.Kind)))
	b = append(b, ev.Kind...)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(ev.Detail)))
	b = append(b, ev.Detail...)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b[4:]))
	r.buf = b
	if _, err := r.f.Write(b); err != nil {
		return fmt.Errorf("flight: %w", err)
	}
	if !r.opt.NoFsync {
		if err := r.f.Sync(); err != nil {
			return fmt.Errorf("flight: %w", err)
		}
	}
	r.size += int64(len(b))
	if r.size >= r.opt.SegmentBytes {
		return r.rotateLocked()
	}
	return nil
}

// Close flushes and closes the open segment.
func (r *Recorder) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.f == nil {
		return nil
	}
	err := r.f.Close()
	r.f = nil
	return err
}

// Replay reads every segment in dir in ring order and returns the events in
// the order they were recorded. Each segment is read up to its first corrupt
// or torn frame (SIGKILL mid-write leaves at most one), which is skipped
// along with the rest of that segment — never an error, the recorder's whole
// point is reading after a crash.
func Replay(dir string) ([]Event, error) {
	seqs, err := listSegments(dir)
	if err != nil {
		return nil, fmt.Errorf("flight: %w", err)
	}
	var evs []Event
	for _, s := range seqs {
		data, err := os.ReadFile(filepath.Join(dir, segName(s)))
		if err != nil {
			return nil, fmt.Errorf("flight: %w", err)
		}
		evs = append(evs, decodeSegment(data)...)
	}
	return evs, nil
}

func decodeSegment(data []byte) []Event {
	var evs []Event
	for len(data) >= 4 {
		inner := int(binary.LittleEndian.Uint32(data))
		if inner < frameFixed+4 || inner > maxFrameLen || 4+inner > len(data) {
			break // torn or corrupt tail
		}
		body := data[4 : 4+inner]
		payload, crcB := body[:inner-4], body[inner-4:]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(crcB) {
			break
		}
		if payload[0] != frameMagic || payload[1] != frameVersion {
			break
		}
		wallNs := int64(binary.LittleEndian.Uint64(payload[2:]))
		rank := int(int32(binary.LittleEndian.Uint32(payload[10:])))
		step := int(int32(binary.LittleEndian.Uint32(payload[14:])))
		kl := int(binary.LittleEndian.Uint16(payload[18:]))
		if 20+kl+2 > len(payload) {
			break
		}
		kind := string(payload[20 : 20+kl])
		dl := int(binary.LittleEndian.Uint16(payload[20+kl:]))
		if 22+kl+dl > len(payload) {
			break
		}
		detail := string(payload[22+kl : 22+kl+dl])
		evs = append(evs, Event{WallNs: wallNs, Kind: kind, Rank: rank, Step: step, Detail: detail})
		data = data[4+inner:]
	}
	return evs
}

// Process-global recorder: packages log through Log without plumbing a
// *Recorder everywhere; when none is installed Log is a single atomic load.
var global atomic.Pointer[Recorder]

// Install makes r the process-global recorder (nil uninstalls) and returns
// the previous one, if any.
func Install(r *Recorder) *Recorder {
	return global.Swap(r)
}

// Log records an event on the global recorder, stamping the current wall
// time. A no-op (one atomic load) when no recorder is installed; errors are
// deliberately dropped — diagnostics must never fail the operation they
// describe.
func Log(kind string, rank, step int, detail string) {
	r := global.Load()
	if r == nil {
		return
	}
	_ = r.Record(Event{WallNs: time.Now().UnixNano(), Kind: kind, Rank: rank, Step: step, Detail: detail})
}
