// Package obs is the process-wide runtime-profiling registry: named timing
// scopes (Track/Stop spans aggregated into per-scope count/total/min/max),
// monotonic counters (frames, bytes, pool hits), value observations (queue
// depths), and a span ring that feeds Chrome trace-event export — the
// per-segment observability layer the runtime, collective engine, and dist
// transport report into.
//
// The registry is gated by one package-level atomic. Disabled — the default —
// every hot-path entry point (Track, Stop, Add, Observe) is a single atomic
// load and a branch: zero heap allocations, no time syscalls, no shared-cache
// traffic beyond the read-mostly gate word. Instrumentation can therefore
// live permanently inside per-chunk collective loops and per-instruction
// actor dispatch without moving the benchmarks that gate the repo.
//
// Enabled, recording stays lock-free: scope aggregates are atomics, and spans
// land in fixed-size shard rings via an atomic cursor (a full ring drops new
// spans and counts them, it never blocks a recorder).
//
// Snapshot lifetime (ownership rule): SnapshotAndReset drains the registry at
// a quiescent point — a step boundary or job end, when instrumented goroutines
// are parked. The returned Snapshot is caller-owned, detached from registry
// state. Spans recorded concurrently with the reset may be attributed to
// either side or dropped (never corrupted: slots are claim-stamped), so
// drivers snapshot between steps, not during them. Peek reads aggregate
// totals without resetting and is safe at any time.
package obs

import (
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

const (
	maxScopes   = 256
	maxCounters = 256

	// Span ring geometry: shards are picked by recorder ID (actor/rank), so
	// concurrent recorders claim slots from different cursors.
	numSpanShards = 8
	spanShardCap  = 1 << 12
)

// gate is the package-level enable switch every hot path loads first.
var gate atomic.Bool

// epoch anchors monotonic span timestamps; epochWallNs converts them to
// wall-clock microseconds so traces from different processes on one machine
// line up without clock-sync machinery.
var (
	epoch       = time.Now()
	epochWallNs = epoch.UnixNano()
)

func init() {
	// Zero-config enablement for tools that cannot thread a flag through
	// (benchmark harnesses, CI smokes): any non-empty JAXPP_PROF enables.
	if os.Getenv("JAXPP_PROF") != "" {
		Enable()
	}
}

// Enable turns recording on. Idempotent.
func Enable() { gate.Store(true) }

// Disable turns recording off; in-flight Stop calls still record. Idempotent.
func Disable() { gate.Store(false) }

// Enabled reports the gate state — for callers that must pay a real cost
// (computing a queue depth, formatting a summary) before calling in.
func Enabled() bool { return gate.Load() }

// ScopeID indexes a registered timing scope. The zero value is a reserved
// invalid scope, so a zero Handle is always a no-op.
type ScopeID int32

// CounterID indexes a registered counter.
type CounterID int32

// scopeAgg is one scope's lock-free aggregate.
type scopeAgg struct {
	count atomic.Int64
	total atomic.Int64 // span ns, or observed-value sum for Observe scopes
	min   atomic.Int64
	max   atomic.Int64
	bytes atomic.Int64
}

var (
	regMu        sync.Mutex
	scopeNames   = []string{"<invalid>"} // index 0 reserved
	counterNames = []string{"<invalid>"}
	scopeIdx     = map[string]ScopeID{}
	counterIdx   = map[string]CounterID{}

	scopes   [maxScopes]scopeAgg
	counters [maxCounters]atomic.Int64

	// scopeClass caches the breakdown class of every registered scope at
	// registration time, and numScopes publishes how many are registered —
	// together they let BreakdownNow classify live aggregates with no string
	// work, no lock, and no allocations (the StepSample fast path).
	scopeClass [maxScopes]atomic.Uint32
	numScopes  atomic.Int32

	dropped atomic.Int64
	gen     atomic.Uint64
	lastNs  atomic.Int64 // ns-since-epoch of the last reset (snapshot wall base)
)

// Scope registers (or looks up) a named timing scope and returns its ID.
// Registration takes a lock; call it once at init or load time and keep the
// ID — hot paths touch only the aggregate array.
func Scope(name string) ScopeID {
	regMu.Lock()
	defer regMu.Unlock()
	if id, ok := scopeIdx[name]; ok {
		return id
	}
	if len(scopeNames) >= maxScopes {
		panic("obs: scope registry full")
	}
	id := ScopeID(len(scopeNames))
	scopeNames = append(scopeNames, name)
	scopeIdx[name] = id
	scopes[id].min.Store(int64(^uint64(0) >> 1)) // MaxInt64
	scopeClass[id].Store(uint32(classCode(name)))
	numScopes.Store(int32(len(scopeNames)))
	return id
}

// Counter registers (or looks up) a named counter and returns its ID.
func Counter(name string) CounterID {
	regMu.Lock()
	defer regMu.Unlock()
	if id, ok := counterIdx[name]; ok {
		return id
	}
	if len(counterNames) >= maxCounters {
		panic("obs: counter registry full")
	}
	id := CounterID(len(counterNames))
	counterNames = append(counterNames, name)
	counterIdx[name] = id
	return id
}

// CounterNames returns every registered counter's name and current value,
// index-aligned, skipping the reserved slot 0. Cold path (allocates) — the
// /metrics passthrough.
func CounterNames() ([]string, []int64) {
	regMu.Lock()
	names := counterNames[1:]
	regMu.Unlock()
	out := make([]string, len(names))
	vals := make([]int64, len(names))
	for i, n := range names {
		out[i] = n
		vals[i] = counters[i+1].Load()
	}
	return out, vals
}

// ScopeTotals returns every registered scope's name and cumulative total
// (nanoseconds for timed scopes, value sums for Observe scopes),
// index-aligned. Cold path (allocates) — the /metrics passthrough.
func ScopeTotals() ([]string, []int64) {
	regMu.Lock()
	names := scopeNames[1:]
	regMu.Unlock()
	out := make([]string, len(names))
	vals := make([]int64, len(names))
	for i, n := range names {
		out[i] = n
		vals[i] = scopes[i+1].total.Load()
	}
	return out, vals
}

// Add bumps a counter by n. Disabled: one atomic load and a branch.
func Add(c CounterID, n int64) {
	if !gate.Load() {
		return
	}
	counters[c].Add(n)
}

// Handle is an open span returned by Track. The zero value (disabled gate)
// makes Stop a branch-only no-op; handles are plain stack values, so the
// whole Track/Stop pair performs zero heap allocations in either state.
type Handle struct {
	scope ScopeID
	tid   int32
	start int64
}

// Track opens a span on a scope (recorder ID 0). Disabled: one atomic load.
func Track(s ScopeID) Handle { return TrackTid(s, 0) }

// TrackTid opens a span attributed to a recorder ID (an actor or rank) — the
// Chrome-trace thread lane the span renders into, and the shard its record
// lands in.
func TrackTid(s ScopeID, tid int) Handle {
	if !gate.Load() {
		return Handle{}
	}
	n := int64(time.Since(epoch))
	if n == 0 {
		n = 1 // keep the zero Handle unambiguous as "disabled"
	}
	return Handle{scope: s, tid: int32(tid), start: n}
}

// Stop closes the span, folding its duration into the scope aggregate and
// recording a trace event. No-op on a zero handle.
func (h Handle) Stop() { h.StopBytes(0) }

// StopBytes is Stop plus a byte attribution (payload moved under the span),
// folded into the scope's byte counter.
func (h Handle) StopBytes(n int64) {
	if h.start == 0 {
		return
	}
	end := int64(time.Since(epoch))
	a := &scopes[h.scope]
	d := end - h.start
	a.count.Add(1)
	a.total.Add(d)
	if n != 0 {
		a.bytes.Add(n)
	}
	atomicMin(&a.min, d)
	atomicMax(&a.max, d)
	recordSpan(h.scope, h.tid, h.start, end)
}

// Observe folds a sampled value (a queue depth, a batch size) into a scope's
// count/total/min/max without recording a trace span. Disabled: one atomic
// load and a branch.
func Observe(s ScopeID, v int64) {
	if !gate.Load() {
		return
	}
	a := &scopes[s]
	a.count.Add(1)
	a.total.Add(v)
	atomicMin(&a.min, v)
	atomicMax(&a.max, v)
}

func atomicMin(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func atomicMax(a *atomic.Int64, v int64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// spanSlot is one trace event. Fields are written plainly by the slot's
// claiming recorder, then published with a release-store of stamp; readers
// acquire-load the stamp and accept the slot only when it matches the
// expected (generation, ticket) pair, so a mid-write slot is skipped, never
// torn.
type spanSlot struct {
	stamp atomic.Uint64 // generation<<32 | ticket+1
	scope int32
	tid   int32
	start int64
	end   int64
}

type spanShard struct {
	cursor atomic.Int64
	_      [56]byte // keep shard cursors off each other's cache line
}

var (
	shardCursors [numSpanShards]spanShard
	spanSlots    [numSpanShards][spanShardCap]spanSlot
)

func recordSpan(scope ScopeID, tid int32, start, end int64) {
	g := gen.Load()
	sh := int(uint32(tid)) & (numSpanShards - 1)
	t := shardCursors[sh].cursor.Add(1) - 1
	if t >= spanShardCap {
		dropped.Add(1)
		return
	}
	sl := &spanSlots[sh][t]
	sl.scope = int32(scope)
	sl.tid = tid
	sl.start = start
	sl.end = end
	sl.stamp.Store(g<<32 | uint64(t) + 1)
}

// ScopeStats is one scope's aggregate in a snapshot. For Track scopes Total/
// Min/Max are nanoseconds; for Observe scopes they are the observed values.
type ScopeStats struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
	Total int64  `json:"total_ns"`
	Min   int64  `json:"min_ns"`
	Max   int64  `json:"max_ns"`
	Bytes int64  `json:"bytes,omitempty"`
}

// CounterStat is one counter's value in a snapshot.
type CounterStat struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Span is one trace event, wall-clock anchored in microseconds (the Chrome
// trace-event unit) so per-process traces from one machine merge coherently.
type Span struct {
	Scope   string  `json:"scope"`
	Tid     int     `json:"tid"`
	StartUs float64 `json:"start_us"`
	DurUs   float64 `json:"dur_us"`
}

// Snapshot is a detached copy of the registry at one point in time. It
// marshals to JSON as-is: distributed ranks ship it over the control plane as
// the end-of-job profile frame.
type Snapshot struct {
	// Rank stamps which process recorded this snapshot (set by the driver).
	Rank int `json:"rank"`
	// WallNs is the wall time covered since the previous reset.
	WallNs   int64         `json:"wall_ns"`
	Scopes   []ScopeStats  `json:"scopes"`
	Counters []CounterStat `json:"counters"`
	Spans    []Span        `json:"spans,omitempty"`
	Dropped  int64         `json:"dropped_spans,omitempty"`
}

// SnapshotAndReset drains the registry: scope aggregates and counters swap to
// zero, span rings restart, and everything drained returns as a caller-owned
// Snapshot. Call at a quiescent point (see the package ownership rule).
func SnapshotAndReset() *Snapshot {
	now := int64(time.Since(epoch))
	s := &Snapshot{WallNs: now - lastNs.Swap(now)}
	regMu.Lock()
	names := scopeNames
	cnames := counterNames
	regMu.Unlock()

	for id := 1; id < len(names); id++ {
		a := &scopes[id]
		count := a.count.Swap(0)
		total := a.total.Swap(0)
		min := a.min.Swap(int64(^uint64(0) >> 1))
		max := a.max.Swap(0)
		bytes := a.bytes.Swap(0)
		if count == 0 {
			continue
		}
		s.Scopes = append(s.Scopes, ScopeStats{
			Name: names[id], Count: count, Total: total, Min: min, Max: max, Bytes: bytes,
		})
	}
	for id := 1; id < len(cnames); id++ {
		if v := counters[id].Swap(0); v != 0 {
			s.Counters = append(s.Counters, CounterStat{Name: cnames[id], Value: v})
		}
	}

	// Drain span shards under the current generation, then advance it so a
	// straggling recorder's stamp can never validate against the next drain.
	g := gen.Load()
	for sh := 0; sh < numSpanShards; sh++ {
		n := shardCursors[sh].cursor.Load()
		if n > spanShardCap {
			n = spanShardCap
		}
		for t := int64(0); t < n; t++ {
			sl := &spanSlots[sh][t]
			if sl.stamp.Load() != g<<32|uint64(t)+1 {
				continue // claimed but unpublished (or stale generation)
			}
			s.Spans = append(s.Spans, Span{
				Scope:   names[sl.scope],
				Tid:     int(sl.tid),
				StartUs: wallUs(sl.start),
				DurUs:   float64(sl.end-sl.start) / 1e3,
			})
		}
	}
	gen.Add(1)
	for sh := 0; sh < numSpanShards; sh++ {
		shardCursors[sh].cursor.Store(0)
	}
	s.Dropped = dropped.Swap(0)
	sort.Slice(s.Spans, func(i, j int) bool { return s.Spans[i].StartUs < s.Spans[j].StartUs })
	return s
}

// Peek copies the scope aggregates and counters without resetting anything —
// the per-step-summary read, safe concurrent with recording (values may be
// mid-update torn across scopes, never within one atomic).
func Peek() *Snapshot {
	s := &Snapshot{WallNs: int64(time.Since(epoch)) - lastNs.Load()}
	regMu.Lock()
	names := scopeNames
	cnames := counterNames
	regMu.Unlock()
	for id := 1; id < len(names); id++ {
		a := &scopes[id]
		count := a.count.Load()
		if count == 0 {
			continue
		}
		s.Scopes = append(s.Scopes, ScopeStats{
			Name: names[id], Count: count, Total: a.total.Load(),
			Min: a.min.Load(), Max: a.max.Load(), Bytes: a.bytes.Load(),
		})
	}
	for id := 1; id < len(cnames); id++ {
		if v := counters[id].Load(); v != 0 {
			s.Counters = append(s.Counters, CounterStat{Name: cnames[id], Value: v})
		}
	}
	return s
}

func wallUs(ns int64) float64 { return float64(epochWallNs+ns) / 1e3 }

// Classification: scope names follow a layer/phase convention, and the
// compute/wire/idle breakdown the bench trajectory gates on is derived from
// it. Only leaf scopes classify — envelope scopes (step/*, which contain
// other instrumented work) stay out so the three fractions never double
// count.
const (
	ClassCompute = "compute"
	ClassWire    = "wire"
	ClassIdle    = "idle"
	ClassOther   = "other"
)

// Class maps a scope name to its breakdown class.
func Class(name string) string {
	switch {
	case hasPrefix(name, "seg/"), name == "actor/accum", name == "actor/add", name == "step/sgd":
		return ClassCompute
	case name == "actor/recv", name == "coll/wait":
		return ClassIdle
	case name == "coll/send", name == "coll/reduce", name == "coll/copy",
		name == "wire/encode", name == "wire/decode":
		return ClassWire
	}
	return ClassOther
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }

// Compact class codes cached per scope at registration (see scopeClass).
const (
	codeOther = iota
	codeCompute
	codeWire
	codeIdle
)

func classCode(name string) int {
	switch Class(name) {
	case ClassCompute:
		return codeCompute
	case ClassWire:
		return codeWire
	case ClassIdle:
		return codeIdle
	}
	return codeOther
}

// BreakdownNow sums the live scope aggregates into the compute/wire/idle
// classes without snapshotting: no lock, no string work, zero allocations.
// It is the per-step telemetry read (RecordStep deltas two of these), where
// Peek+Breakdown would allocate a Snapshot every step. Values are cumulative
// since the last reset and may be mid-update across scopes (never within
// one atomic) — the same concurrency contract as Peek.
func BreakdownNow() (computeNs, wireNs, idleNs int64) {
	n := int(numScopes.Load())
	for id := 1; id < n; id++ {
		t := scopes[id].total.Load()
		if t == 0 {
			continue
		}
		switch scopeClass[id].Load() {
		case codeCompute:
			computeNs += t
		case codeWire:
			wireNs += t
		case codeIdle:
			idleNs += t
		}
	}
	return computeNs, wireNs, idleNs
}

// CounterNow reads one counter's live value without snapshotting or
// allocating — cumulative since the last reset, safe at any time.
func CounterNow(c CounterID) int64 {
	if c <= 0 || int(c) >= maxCounters {
		return 0
	}
	return counters[c].Load()
}

// Breakdown sums the snapshot's leaf-scope time into the three classes.
func (s *Snapshot) Breakdown() (compute, wire, idle time.Duration) {
	for _, sc := range s.Scopes {
		switch Class(sc.Name) {
		case ClassCompute:
			compute += time.Duration(sc.Total)
		case ClassWire:
			wire += time.Duration(sc.Total)
		case ClassIdle:
			idle += time.Duration(sc.Total)
		}
	}
	return compute, wire, idle
}

// CounterValue returns a counter's value from the snapshot (0 if absent).
func (s *Snapshot) CounterValue(name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// ScopeByName returns a scope's stats from the snapshot (zero value, false if
// absent).
func (s *Snapshot) ScopeByName(name string) (ScopeStats, bool) {
	for _, sc := range s.Scopes {
		if sc.Name == name {
			return sc, true
		}
	}
	return ScopeStats{}, false
}
