package obs

import (
	"io"
	"log"
	"strings"
	"testing"
	"time"
)

// captureLog redirects the standard logger into w; the returned func restores it.
func captureLog(w io.Writer) func() {
	prev := log.Writer()
	log.SetOutput(w)
	return func() { log.SetOutput(prev) }
}

func fastSample(rank, step int64) StepSample {
	return StepSample{Rank: rank, Step: step, WallNs: int64(10 * time.Millisecond)}
}

func slowSample(rank, step int64) StepSample {
	return StepSample{Rank: rank, Step: step, WallNs: int64(50 * time.Millisecond)}
}

// TestStragglerDelayedRank is the synthetic delayed-rank harness: four ranks
// step together, rank 2 runs 5× slower for a stretch, and the flag must fire
// for rank 2 only — then clear once it catches back up.
func TestStragglerDelayedRank(t *testing.T) {
	tl := NewClusterTimeline(StragglerConfig{Factor: 2.0, Strikes: 3})
	const world = 4
	const slowRank = 2

	// Warm-up: everyone healthy.
	for step := int64(0); step < 3; step++ {
		for r := int64(0); r < world; r++ {
			tl.Ingest(fastSample(r, step))
		}
	}
	if got := tl.FlagCount(); got != 0 {
		t.Fatalf("healthy warm-up raised %d flags", got)
	}

	// Rank 2 falls behind for 5 steps (needs Strikes=3 to flag).
	for step := int64(3); step < 8; step++ {
		for r := int64(0); r < world; r++ {
			if r == slowRank {
				tl.Ingest(slowSample(r, step))
			} else {
				tl.Ingest(fastSample(r, step))
			}
		}
	}
	if !tl.IsStraggler(slowRank) {
		t.Fatal("slow rank was not flagged")
	}
	for r := int64(0); r < world; r++ {
		if r != slowRank && tl.IsStraggler(r) {
			t.Fatalf("healthy rank %d was flagged", r)
		}
	}
	if got := tl.FlagCount(); got != 1 {
		t.Fatalf("flag transitions = %d, want exactly 1 (no re-flagging while already flagged)", got)
	}
	snap := tl.Snapshot()
	if len(snap.Stragglers) != 1 || snap.Stragglers[0] != slowRank {
		t.Fatalf("snapshot stragglers = %v, want [%d]", snap.Stragglers, slowRank)
	}
	if snap.Ranks[slowRank].Reason != "step-time" {
		t.Fatalf("reason = %q, want step-time", snap.Ranks[slowRank].Reason)
	}

	// Rank 2 catches up: the flag clears.
	for step := int64(8); step < 10; step++ {
		for r := int64(0); r < world; r++ {
			tl.Ingest(fastSample(r, step))
		}
	}
	if tl.IsStraggler(slowRank) {
		t.Fatal("straggler flag did not clear after catch-up")
	}
	if got := tl.FlagCount(); got != 1 {
		t.Fatalf("flag transitions after clear = %d, want 1", got)
	}
}

// A single slow step must not flag (strikes reset on a healthy step).
func TestStragglerOneSlowStepIsNoise(t *testing.T) {
	tl := NewClusterTimeline(StragglerConfig{Factor: 2.0, Strikes: 3})
	for step := int64(0); step < 10; step++ {
		for r := int64(0); r < 4; r++ {
			if r == 1 && step%3 == 0 { // slow, but never 3 in a row
				tl.Ingest(slowSample(r, step))
			} else {
				tl.Ingest(fastSample(r, step))
			}
		}
	}
	if tl.FlagCount() != 0 {
		t.Fatal("intermittent slowness was flagged as straggling")
	}
}

// Sub-MinWall steps are jitter, not signal — never flagged even at 10×.
func TestStragglerMinWallFloor(t *testing.T) {
	tl := NewClusterTimeline(StragglerConfig{Factor: 2.0, Strikes: 3, MinWall: time.Millisecond})
	for step := int64(0); step < 10; step++ {
		for r := int64(0); r < 4; r++ {
			wall := int64(10 * time.Microsecond)
			if r == 0 {
				wall = int64(100 * time.Microsecond)
			}
			tl.Ingest(StepSample{Rank: r, Step: step, WallNs: wall})
		}
	}
	if tl.FlagCount() != 0 {
		t.Fatal("microsecond-scale jitter was flagged")
	}
}

// A lone rank has no median to compare against — never flagged.
func TestStragglerNeedsTwoRanks(t *testing.T) {
	tl := NewClusterTimeline(StragglerConfig{})
	for step := int64(0); step < 10; step++ {
		tl.Ingest(slowSample(0, step))
	}
	if tl.FlagCount() != 0 {
		t.Fatal("single-rank timeline flagged itself")
	}
}

func TestStragglerQueueGrowth(t *testing.T) {
	tl := NewClusterTimeline(StragglerConfig{QueueStrikes: 5, QueueFloor: 4})
	// Two ranks; rank 1's sender queue grows monotonically past the floor.
	depth := int64(4)
	for step := int64(0); step < 8; step++ {
		tl.Ingest(fastSample(0, step))
		depth++
		s := fastSample(1, step)
		s.QueueDepth = depth
		tl.Ingest(s)
	}
	if !tl.IsStraggler(1) {
		t.Fatal("persistent queue growth was not flagged")
	}
	snap := tl.Snapshot()
	if snap.Ranks[1].Reason != "queue-growth" {
		t.Fatalf("reason = %q, want queue-growth", snap.Ranks[1].Reason)
	}
	if tl.IsStraggler(0) {
		t.Fatal("healthy rank flagged")
	}

	// Queue drains: flag clears.
	for step := int64(8); step < 10; step++ {
		tl.Ingest(fastSample(0, step))
		s := fastSample(1, step)
		s.QueueDepth = 0
		tl.Ingest(s)
	}
	if tl.IsStraggler(1) {
		t.Fatal("queue-growth flag did not clear after drain")
	}
}

func TestIngestFrameRoundTrip(t *testing.T) {
	tl := NewClusterTimeline(StragglerConfig{})
	samples := []StepSample{fastSample(3, 41), fastSample(3, 42)}
	frame := AppendStepFrame(nil, samples)
	tl.IngestFrame(3, frame)
	snap := tl.Snapshot()
	rs, ok := snap.Ranks[3]
	if !ok || rs.Samples != 2 || rs.Last.Step != 42 {
		t.Fatalf("frame ingest: %+v", rs)
	}

	// Corrupt frame: dropped whole, timeline unchanged.
	bad := append([]byte(nil), frame...)
	bad[7] ^= 0xFF
	tl.IngestFrame(3, bad)
	if got := tl.Snapshot().Ranks[3].Samples; got != 2 {
		t.Fatalf("corrupt frame changed sample count to %d", got)
	}

	// Empty payload (heartbeat without telemetry): no-op.
	tl.IngestFrame(3, nil)
}

func TestSyncLocalDrainsGlobalRing(t *testing.T) {
	resetStepsForTest()
	EnableSteps()
	defer DisableSteps()
	tl := NewClusterTimeline(StragglerConfig{})
	RecordStep(fastSample(0, 7))
	RecordStep(fastSample(0, 8))
	tl.SyncLocal()
	snap := tl.Snapshot()
	if rs := snap.Ranks[0]; rs.Samples != 2 || rs.Last.Step != 8 {
		t.Fatalf("SyncLocal: %+v", rs)
	}
	// Second sync with nothing new: no change.
	tl.SyncLocal()
	if got := tl.Snapshot().Ranks[0].Samples; got != 2 {
		t.Fatalf("idle SyncLocal changed samples to %d", got)
	}
}

func TestStragglerWarnLine(t *testing.T) {
	// The WARN must be a single greppable line.
	var sb strings.Builder
	tl := NewClusterTimeline(StragglerConfig{Strikes: 1})
	restore := captureLog(&sb)
	for step := int64(0); step < 2; step++ {
		tl.Ingest(fastSample(0, step))
		tl.Ingest(fastSample(1, step))
		tl.Ingest(slowSample(2, step))
	}
	restore()
	out := sb.String()
	if !strings.Contains(out, "WARN: obs: rank 2 straggling") {
		t.Fatalf("WARN line missing from log output:\n%s", out)
	}
}
